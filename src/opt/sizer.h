// Statistical gate sizing under a yield/delay constraint — the subroutine
// the paper imports from [3] (Choi et al., "Novel Sizing Algorithm for
// Yield Improvement under Process Variation", DAC 2004): an iterative
// Lagrangian-relaxation loop that minimizes total cell area subject to a
// statistical delay target.
//
// Formulation.  With per-gate sizes x and the stage's canonical-SSTA delay
// D(x) ~ N(mu(x), sigma(x)), the stage meets yield y at target T iff
//
//   D_stat(x) = mu(x) + z * sigma(x) <= T,   z = Phi^-1(y)
//
// The solver relaxes the arrival-time constraints with per-gate multipliers
// lambda (flow-conserving: each gate's lambda is the sum of its share of
// every fanout's criticality, distributed over fanins by an arrival-time
// softmax — the projection step of LR subgradient methods), then updates
// each size by the closed-form stationary point of the local Lagrangian:
//
//   dL/dx_g = area_g - lambda_g * tau * C_g / x_g^2
//           + sum_{p in fanin} lambda_p * tau * g_le,g / x_p  = 0
//
// Upsizing also *reduces* sigma (RDF ~ 1/sqrt(x)) — the statistical effect
// that distinguishes [3] from deterministic sizing; it enters through the
// z * sigma term of the per-gate effective delay.
#pragma once

#include <cstddef>

#include "device/delay_model.h"
#include "netlist/netlist.h"
#include "process/variation.h"
#include "sta/characterize.h"
#include "stats/gaussian.h"

namespace statpipe::opt {

struct SizerOptions {
  double t_target = 100.0;     ///< statistical delay target [ps]
  double yield_target = 0.95;  ///< per-stage yield -> z = Phi^-1(y)
  double min_size = 0.5;
  double max_size = 20.0;
  std::size_t max_iterations = 60;
  double softmax_theta_ps = 1.5;  ///< criticality smoothing temperature
  double damping = 0.5;           ///< size-update damping in (0,1]
  double output_load = 2.0;
  double tolerance_ps = 0.05;     ///< convergence window on D_stat

  /// Worker cap for the per-gate timing/size-update loops inside one LR
  /// iteration: 0 = every shared-pool thread, 1 = serial.  The loops run
  /// level-synchronously (gates of one logic level in parallel, levels in
  /// sequence), and every dependency of a gate's update — fanin arrivals
  /// and sizes at earlier levels, fanout loads at later levels — crosses
  /// levels, so the schedule computes exactly the serial loop's values:
  /// results are bitwise-invariant to this knob, only wall-clock changes.
  /// Small stages (under an internal gate-count threshold) stay serial
  /// regardless — the per-level fan-out overhead would dominate.
  std::size_t threads = 0;
};

struct SizerResult {
  bool feasible = false;       ///< D_stat <= t_target at exit
  double area = 0.0;           ///< final cell area
  stats::Gaussian delay;       ///< final SSTA (mu, sigma)
  double stat_delay = 0.0;     ///< mu + z*sigma at exit
  std::size_t iterations = 0;
};

/// Sizes `nl` in place: minimizes area subject to
/// mu + Phi^-1(yield)*sigma <= t_target.  If the target is unreachable even
/// at maximum sizes, returns feasible=false with the fastest sizing found.
SizerResult size_stage(netlist::Netlist& nl,
                       const device::AlphaPowerModel& model,
                       const process::VariationSpec& spec,
                       const SizerOptions& opt);

/// Statistical delay mu + z*sigma of a stage at its current sizes.
double stat_delay(const netlist::Netlist& nl,
                  const device::AlphaPowerModel& model,
                  const process::VariationSpec& spec, double yield_target,
                  double output_load = 2.0);

}  // namespace statpipe::opt
