#include "opt/sweep.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <stdexcept>

#include "sim/engine.h"
#include "sta/characterize.h"
#include "sta/ssta_batch.h"
#include "stats/gaussian.h"

namespace statpipe::opt {

namespace {

bool same_bits(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

}  // namespace

bool bitwise_equal(const SweepResult& a, const SweepResult& b) {
  if (!same_bits(a.min_stat_delay, b.min_stat_delay)) return false;
  const auto& pa = a.curve.points();
  const auto& pb = b.curve.points();
  if (pa.size() != pb.size() || a.sizes.size() != b.sizes.size()) return false;
  for (std::size_t i = 0; i < pa.size(); ++i)
    if (!same_bits(pa[i].delay, pb[i].delay) ||
        !same_bits(pa[i].area, pb[i].area))
      return false;
  for (std::size_t i = 0; i < a.sizes.size(); ++i) {
    if (a.sizes[i].size() != b.sizes[i].size()) return false;
    for (std::size_t g = 0; g < a.sizes[i].size(); ++g)
      if (!same_bits(a.sizes[i][g], b.sizes[i][g])) return false;
  }
  return true;
}


SweepResult area_delay_sweep(netlist::Netlist& nl,
                             const device::AlphaPowerModel& model,
                             const process::VariationSpec& spec,
                             const SweepOptions& opt) {
  if (opt.points < 2)
    throw std::invalid_argument("area_delay_sweep: need >= 2 points");
  if (opt.slow_factor <= 1.0)
    throw std::invalid_argument("area_delay_sweep: slow_factor must be > 1");

  // Find the fastest achievable statistical delay: size everything at an
  // aggressive (tiny) target; the sizer saturates at its speed limit.
  SizerOptions fast = opt.sizer;
  fast.yield_target = opt.yield_target;
  fast.t_target = 1e-3;
  (void)size_stage(nl, model, spec, fast);
  const double d_min =
      stat_delay(nl, model, spec, opt.yield_target, opt.sizer.output_load);

  // Candidate delay targets all size independent copies of the fast-point
  // netlist, so the design-space points evaluate concurrently and the
  // outcome does not depend on sweep (or thread) order.
  (void)nl.topological_order();  // warm the cache the copies inherit
  const double d_max = d_min * opt.slow_factor;
  auto target_at = [&](std::size_t k) {
    return d_min * 1.02 + (d_max - d_min * 1.02) * static_cast<double>(k) /
                              static_cast<double>(opt.points - 1);
  };
  std::vector<std::vector<double>> cand_sizes(opt.points);
  sim::parallel_for(opt.points, [&](std::size_t k) {
    netlist::Netlist work = nl;
    SizerOptions so = opt.sizer;
    so.yield_target = opt.yield_target;
    so.t_target = target_at(k);
    (void)size_stage(work, model, spec, so);
    cand_sizes[k] = work.sizes();
  });

  // Score the whole candidate grid in one batched SSTA pass: one topological
  // walk, opt.points size lanes.  Stat-delay, area and feasibility are
  // bitwise-equal to what each sizer run reported (its final evaluation is
  // analyze_ssta at the restored best sizes, and feasibility is the same
  // tolerance test against the candidate's target).  With opt.grid set the
  // same grid runs on a cluster instead — bitwise-identical either way.
  sta::SstaOptions ssta_opt;
  ssta_opt.output_load = opt.sizer.output_load;
  const auto chars =
      sta::characterize_grid(nl, model, cand_sizes, spec, ssta_opt, opt.grid);
  const double z = stats::normal_icdf(opt.yield_target);

  // Deterministic selection in target order with the usual monotone filter:
  // accept only points that trade delay for strictly less area.
  std::vector<core::AreaDelayCurve::Point> pts;
  std::vector<std::vector<double>> all_sizes;
  for (std::size_t k = 0; k < cand_sizes.size(); ++k) {
    const double sd = chars[k].delay.mean + z * chars[k].delay.sigma;
    const double area = chars[k].area;
    if (sd > target_at(k) + opt.sizer.tolerance_ps) continue;  // infeasible
    if (!pts.empty() && area >= pts.back().area) continue;
    if (!pts.empty() && sd <= pts.back().delay) continue;
    pts.push_back({sd, area});
    all_sizes.push_back(std::move(cand_sizes[k]));
  }
  if (pts.size() < 2)
    throw std::runtime_error(
        "area_delay_sweep: fewer than two feasible sweep points for '" +
        nl.name() + "'");

  // Leave the netlist at the fastest point.
  nl.set_sizes(all_sizes.front());

  SweepResult out{core::AreaDelayCurve(pts), d_min, std::move(all_sizes)};
  return out;
}

core::StageFamily stage_family_from_sweep(netlist::Netlist& nl,
                                          const device::AlphaPowerModel& model,
                                          const process::VariationSpec& spec,
                                          const SweepOptions& opt) {
  const std::vector<double> saved = nl.sizes();

  const auto sweep = area_delay_sweep(nl, model, spec, opt);

  // Re-characterize every sweep point in terms of (mu, sigma, inter frac) —
  // one batched SSTA pass over all points (one topological walk, one size
  // lane per point) instead of a netlist copy + scalar SSTA per point.
  sta::SstaOptions ssta_opt;
  ssta_opt.output_load = opt.sizer.output_load;
  const auto chars =
      sta::characterize_grid(nl, model, sweep.sizes, spec, ssta_opt, opt.grid);
  nl.set_sizes(saved);

  std::vector<double> mus, sigmas;
  std::vector<core::AreaDelayCurve::Point> mu_curve;
  double inter_frac_sum = 0.0;
  for (const auto& c : chars) {
    // Guard monotonicity in mu (stat-delay monotone does not strictly
    // imply mu monotone when sigma shrinks with upsizing).
    if (!mu_curve.empty() && (c.delay.mean <= mu_curve.back().delay ||
                              c.area >= mu_curve.back().area))
      continue;
    mu_curve.push_back({c.delay.mean, c.area});
    mus.push_back(c.delay.mean);
    sigmas.push_back(c.delay.sigma);
    inter_frac_sum += c.delay.sigma > 0.0 ? c.sigma_inter / c.delay.sigma : 0.0;
  }
  if (mu_curve.size() < 2)
    throw std::runtime_error("stage_family_from_sweep: degenerate curve for '" +
                             nl.name() + "'");

  auto sigma_of_mu = [mus, sigmas](double mu) {
    if (mu <= mus.front()) return sigmas.front();
    if (mu >= mus.back()) return sigmas.back();
    const auto it = std::lower_bound(mus.begin(), mus.end(), mu);
    const std::size_t hi = static_cast<std::size_t>(it - mus.begin());
    const std::size_t lo = hi - 1;
    const double t = (mu - mus[lo]) / (mus[hi] - mus[lo]);
    return sigmas[lo] + t * (sigmas[hi] - sigmas[lo]);
  };

  return core::StageFamily{
      nl.name(), core::AreaDelayCurve(std::move(mu_curve)),
      std::move(sigma_of_mu),
      inter_frac_sum / static_cast<double>(mus.size())};
}

}  // namespace statpipe::opt
