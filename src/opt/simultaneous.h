// Simultaneous whole-pipeline sizing — the reference the paper's
// divide-and-conquer flow is measured against (section 4: sizing all m
// stages' gates jointly costs O(m^2 n^2) with the LR sizer, vs O(m n^2)
// for one-stage-at-a-time with incremental pipeline timing).
//
// All gates of all stages are updated in every iteration under a single
// Lagrange multiplier on the *pipeline-level* statistical delay; each
// stage's gate weights are scaled by the stage's criticality (a softmax of
// how close its statistical delay is to the pipeline max).  This is the
// honest "size everything at once" formulation — used by the ablation
// bench and available to users who prefer one joint solve.
#pragma once

#include <vector>

#include "device/latch.h"
#include "netlist/netlist.h"
#include "opt/sizer.h"

namespace statpipe::opt {

struct SimultaneousOptions {
  double t_target = 200.0;     ///< pipeline delay target (incl. latch) [ps]
  double yield_target = 0.80;  ///< pipeline yield target
  SizerOptions sizer;          ///< per-gate update knobs (t_target ignored)
  double stage_softmax_theta = 0.02;  ///< stage-criticality temperature,
                                      ///< relative to the target
};

struct SimultaneousResult {
  bool feasible = false;
  double area = 0.0;
  double pipeline_yield = 0.0;
  std::size_t iterations = 0;
};

/// Sizes all stages in place to minimize total area subject to the
/// pipeline yield target at t_target.
SimultaneousResult size_pipeline_simultaneous(
    std::vector<netlist::Netlist*>& stages,
    const device::AlphaPowerModel& model, const process::VariationSpec& spec,
    const device::LatchModel& latch, const SimultaneousOptions& opt);

}  // namespace statpipe::opt
