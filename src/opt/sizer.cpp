#include "opt/sizer.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "sta/ssta.h"
#include "sta/sta.h"

namespace statpipe::opt {

namespace {

using netlist::GateId;
using netlist::Netlist;

/// Flow-conserving criticality multipliers: seed every primary output with
/// weight softmax(arrival), then push each gate's weight back onto its
/// fanins proportional to exp(arrival/theta) — the LR projection step.
std::vector<double> criticality_weights(const Netlist& nl,
                                        const std::vector<double>& arrival,
                                        double theta) {
  std::vector<double> w(nl.size(), 0.0);

  // Output seeding.
  double amax = 0.0;
  for (GateId o : nl.outputs()) amax = std::max(amax, arrival[o]);
  double norm = 0.0;
  for (GateId o : nl.outputs()) norm += std::exp((arrival[o] - amax) / theta);
  for (GateId o : nl.outputs())
    w[o] += std::exp((arrival[o] - amax) / theta) / norm;

  // Reverse-topological back-propagation.
  const auto& topo = nl.topological_order();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const GateId id = *it;
    const auto& g = nl.gate(id);
    if (w[id] <= 0.0 || g.fanins.empty()) continue;
    double fmax = 0.0;
    for (GateId f : g.fanins) fmax = std::max(fmax, arrival[f]);
    double fsum = 0.0;
    for (GateId f : g.fanins) fsum += std::exp((arrival[f] - fmax) / theta);
    for (GateId f : g.fanins)
      w[f] += w[id] * std::exp((arrival[f] - fmax) / theta) / fsum;
  }
  return w;
}

}  // namespace

double stat_delay(const Netlist& nl, const device::AlphaPowerModel& model,
                  const process::VariationSpec& spec, double yield_target,
                  double output_load) {
  sta::SstaOptions so;
  so.output_load = output_load;
  const auto d = sta::analyze_ssta(nl, model, spec, so);
  const double z = stats::normal_icdf(yield_target);
  return d.mu + z * d.sigma();
}

SizerResult size_stage(Netlist& nl, const device::AlphaPowerModel& model,
                       const process::VariationSpec& spec,
                       const SizerOptions& opt) {
  if (!(opt.yield_target > 0.0 && opt.yield_target < 1.0))
    throw std::invalid_argument("size_stage: yield_target outside (0,1)");
  if (opt.min_size <= 0.0 || opt.max_size < opt.min_size)
    throw std::invalid_argument("size_stage: bad size bounds");
  if (opt.damping <= 0.0 || opt.damping > 1.0)
    throw std::invalid_argument("size_stage: damping outside (0,1]");

  const double z = stats::normal_icdf(opt.yield_target);
  const double tau = model.technology().tau_ps;
  sta::StaOptions sta_opt;
  sta_opt.output_load = opt.output_load;
  sta::SstaOptions ssta_opt;
  ssta_opt.output_load = opt.output_load;

  // Lagrange multiplier on the delay constraint: scales the criticality
  // weights against area in the size update; grown/shrunk by subgradient
  // steps on the constraint violation.
  double lambda_scale = 1.0;
  double best_stat = std::numeric_limits<double>::infinity();
  std::vector<double> best_sizes(nl.size());
  for (std::size_t i = 0; i < nl.size(); ++i) best_sizes[i] = nl.gate(i).size;
  SizerResult result;

  auto record_if_best = [&](double ds) {
    // Track the closest-to-target feasible point, or the fastest seen.
    const bool feas = ds <= opt.t_target + opt.tolerance_ps;
    const bool best_feas = best_stat <= opt.t_target + opt.tolerance_ps;
    const double area = nl.total_area();
    bool take = false;
    if (feas && best_feas)
      take = area < result.area;   // both meet target: prefer smaller area
    else if (feas != best_feas)
      take = feas;                 // feasibility first
    else
      take = ds < best_stat;       // both infeasible: prefer faster
    if (take || result.iterations == 1) {  // first evaluation always recorded
      best_stat = ds;
      result.area = area;
      for (std::size_t i = 0; i < nl.size(); ++i)
        best_sizes[i] = nl.gate(i).size;
    }
  };

  for (std::size_t iter = 0; iter < opt.max_iterations; ++iter) {
    // --- timing at current sizes: deterministic arrivals padded per gate
    //     with its z*sigma contribution (statistical effect of [3]).
    std::vector<double> arrival(nl.size(), 0.0);
    for (GateId id : nl.topological_order()) {
      const auto& g = nl.gate(id);
      if (g.is_pseudo()) continue;
      double in_arr = 0.0;
      for (GateId f : g.fanins) in_arr = std::max(in_arr, arrival[f]);
      const double load = nl.load_of(id, opt.output_load);
      const auto sig = model.delay_sigmas(g.kind, g.size, load, spec);
      arrival[id] = in_arr + model.nominal_delay(g.kind, g.size, load) +
                    z * sig.total() /
                        std::sqrt(static_cast<double>(std::max<std::size_t>(
                            nl.depth(), 1)));
    }

    const double ds = stat_delay(nl, model, spec, opt.yield_target,
                                 opt.output_load);
    ++result.iterations;
    record_if_best(ds);
    if (std::abs(ds - opt.t_target) <= opt.tolerance_ps) break;

    // --- subgradient step on the constraint multiplier.
    const double violation = (ds - opt.t_target) / std::max(opt.t_target, 1.0);
    lambda_scale *= std::exp(std::clamp(2.0 * violation, -0.7, 0.7));
    lambda_scale = std::clamp(lambda_scale, 1e-4, 1e6);

    // --- LR projection: flow-conserving criticality weights.
    const auto w = criticality_weights(nl, arrival, opt.softmax_theta_ps);

    // --- closed-form coordinate update of every size.
    for (GateId id : nl.topological_order()) {
      auto& g = nl.gate(id);
      if (g.is_pseudo()) continue;
      const auto& t = device::traits(g.kind);
      const double load = nl.load_of(id, opt.output_load);
      const double lam_g = lambda_scale * w[id];

      // Pressure from this gate's own delay: lam_g * tau * load / x^2.
      // Pressure from loading predecessors: sum over fanins p of
      //   lam_p * tau * g_le / x_p  (per unit of our size).
      double pred_cost = 0.0;
      for (GateId f : g.fanins) {
        const auto& pg = nl.gate(f);
        if (pg.is_pseudo()) continue;
        pred_cost += lambda_scale * w[f] * tau * t.logical_effort / pg.size;
      }
      const double denom = t.area + pred_cost;
      const double x_star = std::sqrt(
          std::max(lam_g * tau * std::max(load, 1e-6) / denom, 1e-12));
      const double x_new = std::clamp(x_star, opt.min_size, opt.max_size);
      g.size = g.size * (1.0 - opt.damping) + x_new * opt.damping;
    }
  }

  // Restore the best sizes seen.
  for (std::size_t i = 0; i < nl.size(); ++i) nl.gate(i).size = best_sizes[i];
  const auto final_d = sta::analyze_ssta(nl, model, spec, ssta_opt);
  result.delay = final_d.as_gaussian();
  result.stat_delay = final_d.mu + z * final_d.sigma();
  result.area = nl.total_area();
  result.feasible = result.stat_delay <= opt.t_target + opt.tolerance_ps;
  return result;
}

}  // namespace statpipe::opt
