#include "opt/sizer.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "obs/telemetry.h"
#include "sim/engine.h"
#include "sim/thread_pool.h"
#include "sta/ssta.h"
#include "sta/sta.h"

namespace statpipe::opt {

namespace {

using netlist::GateId;
using netlist::Netlist;

/// Below this gate count the per-gate loops stay serial even when
/// SizerOptions::threads allows more: a level of a small stage holds a
/// handful of gates, and handing each level to the pool costs more than
/// the arithmetic it parallelizes.
constexpr std::size_t kParallelMinGates = 256;

/// Level-synchronous schedule of the per-gate LR loops: the topological
/// order bucketed by logic level (netlist::Netlist::levels()), preserving
/// topo order within each bucket.  A gate's update reads fanins (strictly
/// earlier levels — already updated, the Gauss-Seidel half) and fanout
/// loads (strictly later levels — not yet updated), never a same-level
/// gate, so running one bucket's gates concurrently computes exactly what
/// the serial in-topo-order loop computes.
struct LevelSchedule {
  std::vector<std::vector<GateId>> buckets;
  bool parallel = false;      ///< whether to fan buckets out to the pool
  std::size_t threads = 1;    ///< worker cap when parallel

  LevelSchedule(const Netlist& nl, std::size_t opt_threads) {
    const auto& topo = nl.topological_order();  // materialized before any
                                                // parallel region (the one
                                                // mutable Netlist cache)
    const std::vector<std::size_t> level = nl.levels();
    std::size_t n_levels = 0;
    for (GateId id : topo) n_levels = std::max(n_levels, level[id] + 1);
    buckets.resize(n_levels);
    for (GateId id : topo) buckets[level[id]].push_back(id);
    threads = sim::resolve_threads(opt_threads);
    parallel = threads > 1 && nl.size() >= kParallelMinGates;
  }

  /// Runs fn(id) for every gate, level by level; gates of one level run
  /// concurrently when the schedule is parallel.  fn must touch only
  /// per-gate state (see class comment) — that is what makes the result
  /// thread-count-invariant bitwise.
  template <class Fn>
  void for_each_gate(const Fn& fn) const {
    for (const auto& bucket : buckets) {
      if (parallel && bucket.size() > 1) {
        sim::parallel_for(
            bucket.size(), [&](std::size_t i) { fn(bucket[i]); }, threads);
      } else {
        for (GateId id : bucket) fn(id);
      }
    }
  }
};

/// Flow-conserving criticality multipliers: seed every primary output with
/// weight softmax(arrival), then push each gate's weight back onto its
/// fanins proportional to exp(arrival/theta) — the LR projection step.
std::vector<double> criticality_weights(const Netlist& nl,
                                        const std::vector<double>& arrival,
                                        double theta) {
  std::vector<double> w(nl.size(), 0.0);

  // Output seeding.
  double amax = 0.0;
  for (GateId o : nl.outputs()) amax = std::max(amax, arrival[o]);
  double norm = 0.0;
  for (GateId o : nl.outputs()) norm += std::exp((arrival[o] - amax) / theta);
  for (GateId o : nl.outputs())
    w[o] += std::exp((arrival[o] - amax) / theta) / norm;

  // Reverse-topological back-propagation.
  const auto& topo = nl.topological_order();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const GateId id = *it;
    const auto& g = nl.gate(id);
    if (w[id] <= 0.0 || g.fanins.empty()) continue;
    double fmax = 0.0;
    for (GateId f : g.fanins) fmax = std::max(fmax, arrival[f]);
    double fsum = 0.0;
    for (GateId f : g.fanins) fsum += std::exp((arrival[f] - fmax) / theta);
    for (GateId f : g.fanins)
      w[f] += w[id] * std::exp((arrival[f] - fmax) / theta) / fsum;
  }
  return w;
}

}  // namespace

double stat_delay(const Netlist& nl, const device::AlphaPowerModel& model,
                  const process::VariationSpec& spec, double yield_target,
                  double output_load) {
  sta::SstaOptions so;
  so.output_load = output_load;
  const auto d = sta::analyze_ssta(nl, model, spec, so);
  const double z = stats::normal_icdf(yield_target);
  return d.mu + z * d.sigma();
}

SizerResult size_stage(Netlist& nl, const device::AlphaPowerModel& model,
                       const process::VariationSpec& spec,
                       const SizerOptions& opt) {
  if (!(opt.yield_target > 0.0 && opt.yield_target < 1.0))
    throw std::invalid_argument("size_stage: yield_target outside (0,1)");
  if (opt.min_size <= 0.0 || opt.max_size < opt.min_size)
    throw std::invalid_argument("size_stage: bad size bounds");
  if (opt.damping <= 0.0 || opt.damping > 1.0)
    throw std::invalid_argument("size_stage: damping outside (0,1]");

  const double z = stats::normal_icdf(opt.yield_target);
  const double tau = model.technology().tau_ps;
  sta::StaOptions sta_opt;
  sta_opt.output_load = opt.output_load;
  sta::SstaOptions ssta_opt;
  ssta_opt.output_load = opt.output_load;

  // Lagrange multiplier on the delay constraint: scales the criticality
  // weights against area in the size update; grown/shrunk by subgradient
  // steps on the constraint violation.
  double lambda_scale = 1.0;
  double best_stat = std::numeric_limits<double>::infinity();
  std::vector<double> best_sizes(nl.size());
  for (std::size_t i = 0; i < nl.size(); ++i) best_sizes[i] = nl.gate(i).size;
  SizerResult result;

  auto record_if_best = [&](double ds) {
    // Track the closest-to-target feasible point, or the fastest seen.
    const bool feas = ds <= opt.t_target + opt.tolerance_ps;
    const bool best_feas = best_stat <= opt.t_target + opt.tolerance_ps;
    const double area = nl.total_area();
    bool take = false;
    if (feas && best_feas)
      take = area < result.area;   // both meet target: prefer smaller area
    else if (feas != best_feas)
      take = feas;                 // feasibility first
    else
      take = ds < best_stat;       // both infeasible: prefer faster
    if (take || result.iterations == 1) {  // first evaluation always recorded
      best_stat = ds;
      result.area = area;
      for (std::size_t i = 0; i < nl.size(); ++i)
        best_sizes[i] = nl.gate(i).size;
    }
  };

  // Structure-dependent schedule and padding divisor, fixed across
  // iterations (only sizes change inside the loop).
  const LevelSchedule sched(nl, opt.threads);
  const double sqrt_depth = std::sqrt(
      static_cast<double>(std::max<std::size_t>(nl.depth(), 1)));

  for (std::size_t iter = 0; iter < opt.max_iterations; ++iter) {
    // --- timing at current sizes: deterministic arrivals padded per gate
    //     with its z*sigma contribution (statistical effect of [3]).
    //     Level-parallel: a gate reads only fanin arrivals (earlier
    //     levels) and gate sizes, which this loop never writes.
    std::vector<double> arrival(nl.size(), 0.0);
    sched.for_each_gate([&](GateId id) {
      const auto& g = nl.gate(id);
      if (g.is_pseudo()) return;
      double in_arr = 0.0;
      for (GateId f : g.fanins) in_arr = std::max(in_arr, arrival[f]);
      const double load = nl.load_of(id, opt.output_load);
      const auto sig = model.delay_sigmas(g.kind, g.size, load, spec);
      arrival[id] = in_arr + model.nominal_delay(g.kind, g.size, load) +
                    z * sig.total() / sqrt_depth;
    });

    const double ds = stat_delay(nl, model, spec, opt.yield_target,
                                 opt.output_load);
    ++result.iterations;
    static obs::Counter c_iters("opt.sizer.iterations");
    c_iters.add();
    record_if_best(ds);
    if (std::abs(ds - opt.t_target) <= opt.tolerance_ps) break;

    // --- subgradient step on the constraint multiplier.
    const double violation = (ds - opt.t_target) / std::max(opt.t_target, 1.0);
    lambda_scale *= std::exp(std::clamp(2.0 * violation, -0.7, 0.7));
    lambda_scale = std::clamp(lambda_scale, 1e-4, 1e6);

    // --- LR projection: flow-conserving criticality weights.
    const auto w = criticality_weights(nl, arrival, opt.softmax_theta_ps);

    // --- closed-form coordinate update of every size.  Level-parallel
    //     Gauss-Seidel: a gate reads updated fanin sizes (earlier levels,
    //     finished buckets) and pre-update fanout sizes via load_of (later
    //     levels, untouched buckets) — the exact serial-loop visibility.
    sched.for_each_gate([&](GateId id) {
      auto& g = nl.gate(id);
      if (g.is_pseudo()) return;
      const auto& t = device::traits(g.kind);
      const double load = nl.load_of(id, opt.output_load);
      const double lam_g = lambda_scale * w[id];

      // Pressure from this gate's own delay: lam_g * tau * load / x^2.
      // Pressure from loading predecessors: sum over fanins p of
      //   lam_p * tau * g_le / x_p  (per unit of our size).
      double pred_cost = 0.0;
      for (GateId f : g.fanins) {
        const auto& pg = nl.gate(f);
        if (pg.is_pseudo()) continue;
        pred_cost += lambda_scale * w[f] * tau * t.logical_effort / pg.size;
      }
      const double denom = t.area + pred_cost;
      const double x_star = std::sqrt(
          std::max(lam_g * tau * std::max(load, 1e-6) / denom, 1e-12));
      const double x_new = std::clamp(x_star, opt.min_size, opt.max_size);
      g.size = g.size * (1.0 - opt.damping) + x_new * opt.damping;
    });
  }

  // Restore the best sizes seen.
  for (std::size_t i = 0; i < nl.size(); ++i) nl.gate(i).size = best_sizes[i];
  const auto final_d = sta::analyze_ssta(nl, model, spec, ssta_opt);
  result.delay = final_d.as_gaussian();
  result.stat_delay = final_d.mu + z * final_d.sigma();
  result.area = nl.total_area();
  result.feasible = result.stat_delay <= opt.t_target + opt.tolerance_ps;
  return result;
}

}  // namespace statpipe::opt
