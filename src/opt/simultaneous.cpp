#include "opt/simultaneous.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/characterized_pipeline.h"
#include "obs/telemetry.h"
#include "sta/ssta.h"

namespace statpipe::opt {

namespace {

using netlist::GateId;
using netlist::Netlist;

// Same flow-conserving criticality back-propagation as the per-stage sizer
// (see sizer.cpp); duplicated at file scope to keep the two solvers
// independently tunable.
std::vector<double> stage_gate_weights(const Netlist& nl,
                                       const std::vector<double>& arrival,
                                       double theta) {
  std::vector<double> w(nl.size(), 0.0);
  double amax = 0.0;
  for (GateId o : nl.outputs()) amax = std::max(amax, arrival[o]);
  double norm = 0.0;
  for (GateId o : nl.outputs()) norm += std::exp((arrival[o] - amax) / theta);
  for (GateId o : nl.outputs())
    w[o] += std::exp((arrival[o] - amax) / theta) / norm;
  const auto& topo = nl.topological_order();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const GateId id = *it;
    const auto& g = nl.gate(id);
    if (w[id] <= 0.0 || g.fanins.empty()) continue;
    double fmax = 0.0;
    for (GateId f : g.fanins) fmax = std::max(fmax, arrival[f]);
    double fsum = 0.0;
    for (GateId f : g.fanins) fsum += std::exp((arrival[f] - fmax) / theta);
    for (GateId f : g.fanins)
      w[f] += w[id] * std::exp((arrival[f] - fmax) / theta) / fsum;
  }
  return w;
}

}  // namespace

SimultaneousResult size_pipeline_simultaneous(
    std::vector<netlist::Netlist*>& stages,
    const device::AlphaPowerModel& model, const process::VariationSpec& spec,
    const device::LatchModel& latch, const SimultaneousOptions& opt) {
  if (stages.empty())
    throw std::invalid_argument("size_pipeline_simultaneous: no stages");
  for (auto* s : stages)
    if (s == nullptr)
      throw std::invalid_argument("size_pipeline_simultaneous: null stage");
  const SizerOptions& so = opt.sizer;
  if (!(opt.yield_target > 0.0 && opt.yield_target < 1.0))
    throw std::invalid_argument(
        "size_pipeline_simultaneous: yield outside (0,1)");

  const std::size_t m = stages.size();
  const double z = stats::normal_icdf(opt.yield_target);
  const double tau = model.technology().tau_ps;

  auto pipeline_model = [&] {
    std::vector<const Netlist*> views(stages.begin(), stages.end());
    return core::build_pipeline_ssta(views, model, spec, latch);
  };

  double lambda_scale = 1.0;
  SimultaneousResult result;
  double best_metric = -std::numeric_limits<double>::infinity();
  std::vector<std::vector<double>> best_sizes(m);
  for (std::size_t s = 0; s < m; ++s) {
    best_sizes[s].resize(stages[s]->size());
    for (std::size_t g = 0; g < stages[s]->size(); ++g)
      best_sizes[s][g] = stages[s]->gate(g).size;
  }

  for (std::size_t iter = 0; iter < so.max_iterations; ++iter) {
    // --- pipeline-level statistical timing (the coupling the paper's
    //     divide-and-conquer flow evaluates incrementally).
    const auto pipe = pipeline_model();
    const double y = pipe.yield(opt.t_target);
    const double t_req = pipe.target_delay_for_yield(opt.yield_target);
    ++result.iterations;
    static obs::Counter c_iters("opt.simultaneous.iterations");
    c_iters.add();

    // Track the best design seen: feasibility first, then area.
    {
      double area = 0.0;
      for (auto* s : stages) area += s->total_area();
      const bool feas = y >= opt.yield_target - 1e-9;
      const double metric = feas ? 1e12 - area : y * 1e6;
      if (metric > best_metric) {
        best_metric = metric;
        result.feasible = feas;
        result.area = area;
        result.pipeline_yield = y;
        for (std::size_t s = 0; s < m; ++s)
          for (std::size_t g = 0; g < stages[s]->size(); ++g)
            best_sizes[s][g] = stages[s]->gate(g).size;
      }
    }

    // --- subgradient on the joint multiplier: violation measured as how
    //     far the yield-quantile delay overshoots the target.
    const double violation = (t_req - opt.t_target) / opt.t_target;
    lambda_scale *= std::exp(std::clamp(2.0 * violation, -0.7, 0.7));
    lambda_scale = std::clamp(lambda_scale, 1e-4, 1e6);

    // --- stage criticalities: softmax over per-stage statistical delays.
    std::vector<double> stage_stat(m);
    double smax = 0.0;
    for (std::size_t s = 0; s < m; ++s) {
      const auto d = pipe.stage_delay(s);
      stage_stat[s] = d.mean + z * d.sigma;
      smax = std::max(smax, stage_stat[s]);
    }
    const double theta_s = opt.stage_softmax_theta * opt.t_target;
    std::vector<double> crit(m);
    double csum = 0.0;
    for (std::size_t s = 0; s < m; ++s) {
      crit[s] = std::exp((stage_stat[s] - smax) / theta_s);
      csum += crit[s];
    }
    for (auto& c : crit) c /= csum;

    // --- joint gate update: every gate of every stage, weighted by its
    //     stage criticality.
    for (std::size_t s = 0; s < m; ++s) {
      Netlist& nl = *stages[s];
      std::vector<double> arrival(nl.size(), 0.0);
      for (GateId id : nl.topological_order()) {
        const auto& g = nl.gate(id);
        if (g.is_pseudo()) continue;
        double in_arr = 0.0;
        for (GateId f : g.fanins) in_arr = std::max(in_arr, arrival[f]);
        const double load = nl.load_of(id, so.output_load);
        const auto sig = model.delay_sigmas(g.kind, g.size, load, spec);
        arrival[id] = in_arr + model.nominal_delay(g.kind, g.size, load) +
                      z * sig.total() /
                          std::sqrt(static_cast<double>(
                              std::max<std::size_t>(nl.depth(), 1)));
      }
      const auto w = stage_gate_weights(nl, arrival, so.softmax_theta_ps);
      const double lam_stage = lambda_scale * static_cast<double>(m) * crit[s];
      for (GateId id : nl.topological_order()) {
        auto& g = nl.gate(id);
        if (g.is_pseudo()) continue;
        const auto& t = device::traits(g.kind);
        const double load = nl.load_of(id, so.output_load);
        double pred_cost = 0.0;
        for (GateId f : g.fanins) {
          const auto& pg = nl.gate(f);
          if (pg.is_pseudo()) continue;
          pred_cost += lam_stage * w[f] * tau * t.logical_effort / pg.size;
        }
        const double denom = t.area + pred_cost;
        const double x_star = std::sqrt(std::max(
            lam_stage * w[id] * tau * std::max(load, 1e-6) / denom, 1e-12));
        const double x_new = std::clamp(x_star, so.min_size, so.max_size);
        g.size = g.size * (1.0 - so.damping) + x_new * so.damping;
      }
    }
  }

  // Restore the best joint design.
  for (std::size_t s = 0; s < m; ++s)
    for (std::size_t g = 0; g < stages[s]->size(); ++g)
      stages[s]->gate(g).size = best_sizes[s][g];
  const auto pipe = pipeline_model();
  result.pipeline_yield = pipe.yield(opt.t_target);
  result.area = pipe.total_area();
  result.feasible = result.pipeline_yield >= opt.yield_target - 1e-9;
  return result;
}

}  // namespace statpipe::opt
