// Area-delay curve extraction: sweep a stage's delay target through the
// statistical sizer and record (delay, area) at each feasible point —
// producing the curves of Fig. 8 that drive the R_i ordering heuristic.
#pragma once

#include <vector>

#include "core/area_delay.h"
#include "core/balance.h"
#include "device/delay_model.h"
#include "netlist/netlist.h"
#include "opt/sizer.h"
#include "process/variation.h"
#include "sta/ssta_batch.h"

namespace statpipe::opt {

struct SweepOptions {
  std::size_t points = 12;        ///< number of delay targets to probe
  double yield_target = 0.95;     ///< statistical metric mu + z*sigma
  double slow_factor = 2.0;       ///< slowest target = fastest * slow_factor
  SizerOptions sizer;             ///< inner sizing options (t_target ignored)
  /// Whole-grid characterization backend for the sweep's candidate grids
  /// (an ExecutionOptions-style switch): empty = the local SstaBatch path;
  /// dist::grid_characterizer(...) = submit each grid to a cluster.  Any
  /// backend must honor the bitwise contract in sta/ssta_batch.h, so the
  /// sweep result never depends on this knob (docs/DETERMINISM.md).
  sta::GridCharacterizer grid;
};

struct SweepResult {
  core::AreaDelayCurve curve;               ///< area(delay) polyline
  double min_stat_delay = 0.0;              ///< fastest achievable D_stat
  std::vector<std::vector<double>> sizes;   ///< gate sizes per curve point
};

/// Bit-exact equality of two sweep results (every double compared by its
/// IEEE-754 bit pattern) — the distributed-vs-local acceptance predicate
/// shared by statpipe-run --check-local and tests/test_dist.cpp, kept in
/// one place so the CI gate and the tests can never drift apart.
bool bitwise_equal(const SweepResult& a, const SweepResult& b);

/// Builds the stage's area-delay curve.  Leaves `nl` sized at the *fastest*
/// point.  Throws std::runtime_error if no target is feasible.
SweepResult area_delay_sweep(netlist::Netlist& nl,
                             const device::AlphaPowerModel& model,
                             const process::VariationSpec& spec,
                             const SweepOptions& opt = {});

/// Packages a sweep into a core::StageFamily for BalanceAnalyzer: the
/// area-delay curve re-expressed over *mean* delay, a sigma(mu) model
/// interpolated from per-point SSTA, and the mean inter-die fraction.
/// Restores the netlist's sizes on return.
core::StageFamily stage_family_from_sweep(netlist::Netlist& nl,
                                          const device::AlphaPowerModel& model,
                                          const process::VariationSpec& spec,
                                          const SweepOptions& opt = {});

}  // namespace statpipe::opt
