// Global yield-driven pipeline optimization — the Fig. 9 flow.
//
// Divide-and-conquer over stages: instead of sizing all m stages' n gates
// simultaneously (O(m^2 n^2) with the LR sizer), stages are sized one at a
// time (O(m n^2)) while the *pipeline-level* statistical timing (Clark
// reduction over SSTA-characterized stages) is re-evaluated after every
// stage — so each stage's delay budget reflects what the rest of the
// pipeline actually achieves, not an a-priori equal split.
//
// Stage ordering follows the area-delay-curve position heuristic of
// eq. (14): stages are visited in increasing elasticity R_i, so cheap
// yield (receivers, R_i < 1) is bought first and cheap area (donors,
// R_i > 1) is recovered first.
//
// Two modes, matching the paper's two result tables:
//  * kEnsureYield (Table II): lift pipeline yield to the target with
//    minimum extra area, starting from individually-optimized stages.
//  * kMinimizeArea (Table III): recover as much area as possible while
//    keeping pipeline yield at/above the target.
//
// Layer contract (src/opt, see docs/ARCHITECTURE.md): the top layer.  Owns
// optimization policy — the LR sizer, area-delay sweeps and this global
// flow — and may depend on every other subsystem.  Nothing in src/ may
// include opt headers; only bench/, examples/ and tests/ sit above it.
#pragma once

#include <string>
#include <vector>

#include "core/pipeline_model.h"
#include "device/latch.h"
#include "netlist/netlist.h"
#include "opt/sizer.h"
#include "opt/sweep.h"
#include "sta/characterize.h"

namespace statpipe::opt {

enum class OptimizationMode { kEnsureYield, kMinimizeArea };

struct GlobalOptimizerOptions {
  double t_target = 200.0;     ///< pipeline delay target A_0 [ps]
  double yield_target = 0.80;  ///< pipeline yield target Y
  OptimizationMode mode = OptimizationMode::kEnsureYield;
  std::size_t max_outer_rounds = 3;   ///< passes over the stage list
  std::size_t budget_probes = 10;     ///< bisection depth per stage
  SizerOptions sizer;                 ///< inner LR sizer options
  SweepOptions sweep;                 ///< curve-extraction options
  /// Whole-grid characterization backend for the pre-phase and probe
  /// candidate grids: empty = local SstaBatch,
  /// dist::grid_characterizer(...) = cluster submission.  Never changes
  /// results (the bitwise contract in sta/ssta_batch.h); note it is
  /// separate from sweep.grid, which covers the curve-extraction grids.
  sta::GridCharacterizer grid;
};

struct StageReport {
  std::string name;
  double area_before = 0.0;
  double area_after = 0.0;
  double yield_before = 0.0;  ///< per-stage Pr{SD_i <= T}
  double yield_after = 0.0;
  double elasticity = 0.0;    ///< R_i at the starting point
  bool chosen_for_speedup = false;  ///< receiver (highlighted rows)
};

struct GlobalOptimizerResult {
  std::vector<StageReport> stages;
  double pipeline_yield_before = 0.0;
  double pipeline_yield_after = 0.0;
  double total_area_before = 0.0;
  double total_area_after = 0.0;
  core::PipelineModel final_model;
};

class GlobalPipelineOptimizer {
 public:
  /// Stage netlists are sized in place.
  GlobalPipelineOptimizer(std::vector<netlist::Netlist*> stages,
                          const device::AlphaPowerModel& model,
                          const process::VariationSpec& spec,
                          const device::LatchModel& latch);

  /// Baseline flow: size each stage independently for per-stage yield
  /// Y^(1/N) at the pipeline target (the "Individually Optimized" columns
  /// of Tables II/III).  Returns the resulting pipeline model.
  core::PipelineModel optimize_individually(double t_target,
                                            double pipeline_yield,
                                            const SizerOptions& sizer = {});

  /// The Fig. 9 global flow.  Call after optimize_individually (or any
  /// other initial sizing).
  GlobalOptimizerResult optimize(const GlobalOptimizerOptions& opt);

  /// Pipeline model (SSTA characterization) at the current sizes.
  core::PipelineModel current_model() const;

 private:
  /// Per-stage SSTA characterizations at the current sizes — the cached
  /// "all other stages" half of a candidate-grid evaluation.  Candidate
  /// grids batch-characterize the changed stage's size lanes (sta::SstaBatch)
  /// and substitute each lane into a copy of this vector, which reproduces
  /// the full per-candidate pipeline rebuild bitwise at 1/N of the SSTA cost.
  std::vector<sta::StageCharacterization> characterize_stages() const;
  /// Pipeline yield assembled from explicit stage characterizations.
  double yield_from(const std::vector<sta::StageCharacterization>& cs,
                    double t_target) const;

  std::vector<netlist::Netlist*> stages_;
  const device::AlphaPowerModel* model_;
  process::VariationSpec spec_;
  device::LatchModel latch_;
};

}  // namespace statpipe::opt
