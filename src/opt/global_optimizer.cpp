#include "opt/global_optimizer.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "core/characterized_pipeline.h"

namespace statpipe::opt {

GlobalPipelineOptimizer::GlobalPipelineOptimizer(
    std::vector<netlist::Netlist*> stages,
    const device::AlphaPowerModel& model, const process::VariationSpec& spec,
    const device::LatchModel& latch)
    : stages_(std::move(stages)), model_(&model), spec_(spec), latch_(latch) {
  if (stages_.empty())
    throw std::invalid_argument("GlobalPipelineOptimizer: no stages");
  for (auto* s : stages_)
    if (s == nullptr)
      throw std::invalid_argument("GlobalPipelineOptimizer: null stage");
}

core::PipelineModel GlobalPipelineOptimizer::current_model() const {
  std::vector<const netlist::Netlist*> views(stages_.begin(), stages_.end());
  return core::build_pipeline_ssta(views, *model_, spec_, latch_);
}

double GlobalPipelineOptimizer::pipeline_yield(double t_target) const {
  return current_model().yield(t_target);
}

core::PipelineModel GlobalPipelineOptimizer::optimize_individually(
    double t_target, double pipeline_yield_target, const SizerOptions& sizer) {
  // Per-stage yield requirement from eq. (12): y_i = Y^(1/N).
  const double y_stage = std::pow(
      pipeline_yield_target, 1.0 / static_cast<double>(stages_.size()));
  const double latch_overhead = latch_.timing().nominal_overhead();
  for (netlist::Netlist* nl : stages_) {
    SizerOptions so = sizer;
    so.yield_target = y_stage;
    // The stage's combinational budget excludes the latch overhead.
    so.t_target = t_target - latch_overhead;
    if (so.t_target <= 0.0)
      throw std::invalid_argument(
          "optimize_individually: latch overhead exceeds target");
    const auto r = size_stage(*nl, *model_, spec_, so);
    if (!r.feasible) {
      // The stage cannot meet its per-stage yield at this target: push it
      // to its fastest sizing (deterministic best effort, the same point a
      // designer's max-effort run lands on) rather than leaving it at a
      // trajectory-dependent intermediate.
      SizerOptions fastest = so;
      fastest.t_target = 1e-3;
      (void)size_stage(*nl, *model_, spec_, fastest);
    }
  }
  return current_model();
}

GlobalOptimizerResult GlobalPipelineOptimizer::optimize(
    const GlobalOptimizerOptions& opt) {
  const double latch_overhead = latch_.timing().nominal_overhead();
  const double comb_target = opt.t_target - latch_overhead;
  if (comb_target <= 0.0)
    throw std::invalid_argument("optimize: latch overhead exceeds target");

  // --- step 1: area-delay curves + elasticities at current operating point.
  const std::size_t n = stages_.size();
  std::vector<double> elasticity(n, 1.0);
  {
    for (std::size_t i = 0; i < n; ++i) {
      // Save sizes; the sweep perturbs them.
      std::vector<double> saved(stages_[i]->size());
      for (std::size_t g = 0; g < saved.size(); ++g)
        saved[g] = stages_[i]->gate(g).size;
      const double d_now = stat_delay(*stages_[i], *model_, spec_,
                                      opt.sizer.yield_target,
                                      opt.sizer.output_load);
      SweepOptions sw = opt.sweep;
      sw.yield_target = opt.sizer.yield_target;
      try {
        const auto sweep = area_delay_sweep(*stages_[i], *model_, spec_, sw);
        elasticity[i] = sweep.curve.elasticity_at(d_now);
      } catch (const std::runtime_error&) {
        elasticity[i] = 1.0;  // flat/degenerate curve: treat as neutral
      }
      for (std::size_t g = 0; g < saved.size(); ++g)
        stages_[i]->gate(g).size = saved[g];
    }
  }

  // --- snapshot "before" state.
  GlobalOptimizerResult result{.stages = {},
                               .pipeline_yield_before = 0.0,
                               .pipeline_yield_after = 0.0,
                               .total_area_before = 0.0,
                               .total_area_after = 0.0,
                               .final_model = current_model()};
  {
    const auto before = current_model();
    result.pipeline_yield_before = before.yield(opt.t_target);
    result.total_area_before = before.total_area();
    for (std::size_t i = 0; i < n; ++i) {
      StageReport r;
      r.name = stages_[i]->name();
      r.area_before = stages_[i]->total_area();
      r.yield_before = before.stage_delay(i).cdf(opt.t_target);
      r.elasticity = elasticity[i];
      result.stages.push_back(std::move(r));
    }
  }

  // --- step 2: order stages by their area-delay-curve position (eq. 14).
  // Yield mode: increasing R_i — cheap yield (receivers) is bought first.
  // Area mode: decreasing R_i — donors shed area first, while the yield
  // headroom bought in the pre-phase still exists.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](auto a, auto b) {
    return opt.mode == OptimizationMode::kEnsureYield
               ? elasticity[a] < elasticity[b]
               : elasticity[a] > elasticity[b];
  });

  // --- snapshot for the final revert-if-worse guard.
  std::vector<std::vector<double>> snapshot;
  for (auto* s : stages_) {
    std::vector<double> sz(s->size());
    for (std::size_t g = 0; g < s->size(); ++g) sz[g] = s->gate(g).size;
    snapshot.push_back(std::move(sz));
  }

  // --- area-mode pre-phase: buy yield headroom on cheap (receiver)
  // stages so the expensive donors can shed more area afterwards.  The
  // paper's Table III shows exactly this pattern: receiver stages raised
  // to ~99% while donors are cut.
  if (opt.mode == OptimizationMode::kMinimizeArea) {
    const double y_headroom = std::sqrt(opt.yield_target);  // e.g. .80->.894
    for (std::size_t i = 0; i < n; ++i) {
      if (elasticity[i] >= 1.0) continue;  // receivers only
      netlist::Netlist& nl = *stages_[i];
      std::vector<double> saved(nl.size());
      for (std::size_t g = 0; g < nl.size(); ++g) saved[g] = nl.gate(g).size;
      const double area0 = nl.total_area();
      const double y0 = pipeline_yield(opt.t_target);
      if (y0 >= y_headroom) continue;

      const double d_now = stat_delay(nl, *model_, spec_,
                                      opt.sizer.yield_target,
                                      opt.sizer.output_load);
      double best_area = std::numeric_limits<double>::infinity();
      std::vector<double> best_sizes = saved;
      bool found = false;
      for (double f : {0.97, 0.93, 0.88, 0.82}) {
        for (std::size_t g = 0; g < nl.size(); ++g)
          nl.gate(g).size = saved[g];
        SizerOptions so = opt.sizer;
        so.t_target = d_now * f;
        (void)size_stage(nl, *model_, spec_, so);
        if (pipeline_yield(opt.t_target) >= y_headroom &&
            nl.total_area() < best_area) {
          best_area = nl.total_area();
          for (std::size_t g = 0; g < nl.size(); ++g)
            best_sizes[g] = nl.gate(g).size;
          found = true;
        }
      }
      for (std::size_t g = 0; g < nl.size(); ++g) nl.gate(g).size = best_sizes[g];
      // Cap the headroom bill: a receiver may spend at most 5% of the
      // pipeline's area here (the savings must come from donors).
      if (!found || nl.total_area() - area0 >
                        0.05 * result.total_area_before) {
        for (std::size_t g = 0; g < nl.size(); ++g) nl.gate(g).size = saved[g];
      } else if (nl.total_area() != area0) {
        result.stages[i].chosen_for_speedup = true;
      }
    }
  }

  // --- steps 3-9: size one stage at a time against the global yield.
  //
  // For the chosen stage we bisect its combinational stat-delay target:
  //  * kEnsureYield: find the largest stage target that still lifts the
  //    pipeline to the yield goal (no over-spending); if even the fastest
  //    sizing cannot reach the goal, take the fastest and let later stages
  //    compensate.
  //  * kMinimizeArea: find the largest stage target (most area recovered)
  //    that keeps pipeline yield >= the goal.
  for (std::size_t round = 0; round < opt.max_outer_rounds; ++round) {
    bool changed = false;
    for (std::size_t oi = 0; oi < n; ++oi) {
      const std::size_t i = order[oi];
      netlist::Netlist& nl = *stages_[i];

      const double y_now = pipeline_yield(opt.t_target);
      const bool need_speed = y_now < opt.yield_target;
      // EnsureYield mode never disturbs a pipeline that already meets the
      // goal — recovering area at the cost of yield is kMinimizeArea's job.
      if (opt.mode == OptimizationMode::kEnsureYield && !need_speed) continue;

      std::vector<double> saved(nl.size());
      for (std::size_t g = 0; g < nl.size(); ++g) saved[g] = nl.gate(g).size;
      const double area_before_stage = nl.total_area();

      double lo = comb_target * 0.3;  // aggressive end
      double hi = comb_target * 1.5;  // relaxed end
      std::vector<double> best_sizes = saved;
      double best_area = area_before_stage;
      bool best_meets = y_now >= opt.yield_target;
      bool found_meeting = best_meets;

      for (std::size_t probe = 0; probe < opt.budget_probes; ++probe) {
        const double t_stage = 0.5 * (lo + hi);
        // Restore and size fresh for this probe.
        for (std::size_t g = 0; g < nl.size(); ++g)
          nl.gate(g).size = saved[g];
        SizerOptions so = opt.sizer;
        so.t_target = t_stage;
        (void)size_stage(nl, *model_, spec_, so);
        const double y = pipeline_yield(opt.t_target);
        const double area = nl.total_area();

        if (y >= opt.yield_target) {
          // Meets the goal: try relaxing further (recover more area)...
          if (!found_meeting || area < best_area) {
            best_area = area;
            best_meets = true;
            found_meeting = true;
            for (std::size_t g = 0; g < nl.size(); ++g)
              best_sizes[g] = nl.gate(g).size;
          }
          lo = t_stage;
        } else {
          // Misses: tighten.
          hi = t_stage;
          if (!found_meeting) {
            // Track the best-yield point as a fallback.
            const double y_best_fallback = best_meets ? 1.0 : y;
            (void)y_best_fallback;
            if (y > y_now || probe == 0) {
              best_area = area;
              for (std::size_t g = 0; g < nl.size(); ++g)
                best_sizes[g] = nl.gate(g).size;
            }
          }
        }
      }

      // Adopt the probe result only if it helps the current objective.
      for (std::size_t g = 0; g < nl.size(); ++g) nl.gate(g).size = best_sizes[g];
      const double y_after = pipeline_yield(opt.t_target);
      const double area_after_stage = nl.total_area();

      // Economy guard: when the pipeline goal was not reached, a fallback
      // speedup must buy a meaningful yield gain, not a fraction of a
      // point for a large area bill.
      const bool reaches_goal = y_after >= opt.yield_target;
      const bool worthwhile_fallback = y_after > y_now + 0.005;
      const bool helps =
          opt.mode == OptimizationMode::kEnsureYield
              ? (reaches_goal
                     ? area_after_stage <= area_before_stage + 1e-9 ||
                           y_now < opt.yield_target
                     : worthwhile_fallback)
              : (reaches_goal && area_after_stage < area_before_stage - 1e-9);
      if (!helps) {
        for (std::size_t g = 0; g < nl.size(); ++g) nl.gate(g).size = saved[g];
      } else {
        changed = true;
        result.stages[i].chosen_for_speedup =
            area_after_stage > area_before_stage;
      }
    }
    if (!changed) break;
  }

  // --- revert-if-worse guard: the optimized design must not be strictly
  // worse than the input on the mode's own objective.
  {
    const auto m = current_model();
    const double y_after = m.yield(opt.t_target);
    const double a_after = m.total_area();
    const bool worse =
        opt.mode == OptimizationMode::kMinimizeArea
            ? (a_after >= result.total_area_before &&
               y_after <= result.pipeline_yield_before) ||
                  y_after < opt.yield_target - 1e-9
            : y_after < result.pipeline_yield_before - 1e-9;
    if (worse && (opt.mode != OptimizationMode::kMinimizeArea ||
                  result.pipeline_yield_before >= opt.yield_target)) {
      for (std::size_t i = 0; i < n; ++i)
        for (std::size_t g = 0; g < stages_[i]->size(); ++g)
          stages_[i]->gate(g).size = snapshot[i][g];
    }
  }

  // --- final snapshot.
  result.final_model = current_model();
  result.pipeline_yield_after = result.final_model.yield(opt.t_target);
  result.total_area_after = result.final_model.total_area();
  for (std::size_t i = 0; i < n; ++i) {
    result.stages[i].area_after = stages_[i]->total_area();
    result.stages[i].yield_after =
        result.final_model.stage_delay(i).cdf(opt.t_target);
  }
  return result;
}

}  // namespace statpipe::opt
