#include "opt/global_optimizer.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "core/characterized_pipeline.h"
#include "obs/telemetry.h"
#include "sim/engine.h"
#include "sta/ssta_batch.h"

namespace statpipe::opt {


GlobalPipelineOptimizer::GlobalPipelineOptimizer(
    std::vector<netlist::Netlist*> stages,
    const device::AlphaPowerModel& model, const process::VariationSpec& spec,
    const device::LatchModel& latch)
    : stages_(std::move(stages)), model_(&model), spec_(spec), latch_(latch) {
  if (stages_.empty())
    throw std::invalid_argument("GlobalPipelineOptimizer: no stages");
  for (auto* s : stages_)
    if (s == nullptr)
      throw std::invalid_argument("GlobalPipelineOptimizer: null stage");
}

core::PipelineModel GlobalPipelineOptimizer::current_model() const {
  std::vector<const netlist::Netlist*> views(stages_.begin(), stages_.end());
  return core::build_pipeline_ssta(views, *model_, spec_, latch_);
}

std::vector<sta::StageCharacterization>
GlobalPipelineOptimizer::characterize_stages() const {
  // Same characterization build_pipeline_ssta runs internally (default
  // CharacterizeOptions), so assembled yields match current_model() bitwise.
  for (const netlist::Netlist* nl : stages_) (void)nl->topological_order();
  std::vector<sta::StageCharacterization> cs(stages_.size());
  sim::parallel_for(stages_.size(), [&](std::size_t i) {
    cs[i] = sta::characterize_ssta(*stages_[i], *model_, spec_, {});
  });
  return cs;
}

double GlobalPipelineOptimizer::yield_from(
    const std::vector<sta::StageCharacterization>& cs, double t_target) const {
  std::vector<const netlist::Netlist*> views(stages_.begin(), stages_.end());
  return core::assemble_pipeline(views, cs, latch_, spec_).yield(t_target);
}

core::PipelineModel GlobalPipelineOptimizer::optimize_individually(
    double t_target, double pipeline_yield_target, const SizerOptions& sizer) {
  // Per-stage yield requirement from eq. (12): y_i = Y^(1/N).
  const double y_stage = std::pow(
      pipeline_yield_target, 1.0 / static_cast<double>(stages_.size()));
  const double latch_overhead = latch_.timing().nominal_overhead();
  if (t_target - latch_overhead <= 0.0)
    throw std::invalid_argument(
        "optimize_individually: latch overhead exceeds target");
  // Every stage sizes against only its own netlist: the per-stage solves
  // are independent and fan out over the sim engine.
  sim::parallel_for(stages_.size(), [&](std::size_t i) {
    netlist::Netlist* nl = stages_[i];
    SizerOptions so = sizer;
    so.yield_target = y_stage;
    // The stage's combinational budget excludes the latch overhead.
    so.t_target = t_target - latch_overhead;
    const auto r = size_stage(*nl, *model_, spec_, so);
    if (!r.feasible) {
      // The stage cannot meet its per-stage yield at this target: push it
      // to its fastest sizing (deterministic best effort, the same point a
      // designer's max-effort run lands on) rather than leaving it at a
      // trajectory-dependent intermediate.
      SizerOptions fastest = so;
      fastest.t_target = 1e-3;
      (void)size_stage(*nl, *model_, spec_, fastest);
    }
  });
  return current_model();
}

GlobalOptimizerResult GlobalPipelineOptimizer::optimize(
    const GlobalOptimizerOptions& opt) {
  const double latch_overhead = latch_.timing().nominal_overhead();
  const double comb_target = opt.t_target - latch_overhead;
  if (comb_target <= 0.0)
    throw std::invalid_argument("optimize: latch overhead exceeds target");

  // --- step 1: area-delay curves + elasticities at current operating point.
  // Each stage's sweep runs on a private copy of its netlist, so all stages
  // evaluate concurrently with nothing to save/restore.
  const std::size_t n = stages_.size();
  std::vector<double> elasticity(n, 1.0);
  sim::parallel_for(n, [&](std::size_t i) {
    netlist::Netlist work = *stages_[i];
    const double d_now = stat_delay(work, *model_, spec_,
                                    opt.sizer.yield_target,
                                    opt.sizer.output_load);
    SweepOptions sw = opt.sweep;
    sw.yield_target = opt.sizer.yield_target;
    try {
      const auto sweep = area_delay_sweep(work, *model_, spec_, sw);
      elasticity[i] = sweep.curve.elasticity_at(d_now);
    } catch (const std::runtime_error&) {
      elasticity[i] = 1.0;  // flat/degenerate curve: treat as neutral
    }
  });

  // --- snapshot "before" state.
  GlobalOptimizerResult result{.stages = {},
                               .pipeline_yield_before = 0.0,
                               .pipeline_yield_after = 0.0,
                               .total_area_before = 0.0,
                               .total_area_after = 0.0,
                               .final_model = current_model()};
  {
    const auto before = current_model();
    result.pipeline_yield_before = before.yield(opt.t_target);
    result.total_area_before = before.total_area();
    for (std::size_t i = 0; i < n; ++i) {
      StageReport r;
      r.name = stages_[i]->name();
      r.area_before = stages_[i]->total_area();
      r.yield_before = before.stage_delay(i).cdf(opt.t_target);
      r.elasticity = elasticity[i];
      result.stages.push_back(std::move(r));
    }
  }

  // --- step 2: order stages by their area-delay-curve position (eq. 14).
  // Yield mode: increasing R_i — cheap yield (receivers) is bought first.
  // Area mode: decreasing R_i — donors shed area first, while the yield
  // headroom bought in the pre-phase still exists.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](auto a, auto b) {
    return opt.mode == OptimizationMode::kEnsureYield
               ? elasticity[a] < elasticity[b]
               : elasticity[a] > elasticity[b];
  });

  // --- snapshot for the final revert-if-worse guard.
  std::vector<std::vector<double>> snapshot;
  for (auto* s : stages_) snapshot.push_back(s->sizes());

  // Stage characterizations at the current sizes, maintained incrementally
  // through both phases below: only an adopted candidate changes a stage's
  // sizes, and its refreshed entry is the candidate's own batched SSTA lane
  // — bitwise what characterize_stages() would recompute from scratch.
  std::vector<sta::StageCharacterization> cs = characterize_stages();

  // --- area-mode pre-phase: buy yield headroom on cheap (receiver)
  // stages so the expensive donors can shed more area afterwards.  The
  // paper's Table III shows exactly this pattern: receiver stages raised
  // to ~99% while donors are cut.
  if (opt.mode == OptimizationMode::kMinimizeArea) {
    const double y_headroom = std::sqrt(opt.yield_target);  // e.g. .80->.894
    for (std::size_t i = 0; i < n; ++i) {
      if (elasticity[i] >= 1.0) continue;  // receivers only
      netlist::Netlist& nl = *stages_[i];
      const std::vector<double> saved = nl.sizes();
      const double area0 = nl.total_area();
      const double y0 = yield_from(cs, opt.t_target);
      if (y0 >= y_headroom) continue;

      const double d_now = stat_delay(nl, *model_, spec_,
                                      opt.sizer.yield_target,
                                      opt.sizer.output_load);
      // Evaluate the speed-up factors as independent candidates: each sizes
      // a copy of the stage; the grid's SSTA then runs as one batch (one
      // topological walk, one size lane per factor), and each lane scores
      // the pipeline by substituting into the cached characterizations.
      static constexpr double kFactors[] = {0.97, 0.93, 0.88, 0.82};
      constexpr std::size_t kNf = std::size(kFactors);
      std::vector<std::vector<double>> cand_sizes(kNf);
      (void)nl.topological_order();
      sim::parallel_for(kNf, [&](std::size_t j) {
        netlist::Netlist work = nl;  // starts at `saved` sizes
        SizerOptions so = opt.sizer;
        so.t_target = d_now * kFactors[j];
        (void)size_stage(work, *model_, spec_, so);
        cand_sizes[j] = work.sizes();
      });
      const auto cand_chars =
          sta::characterize_grid(nl, *model_, cand_sizes, spec_, {}, opt.grid);
      const sta::StageCharacterization cs_saved = cs[i];
      double best_area = std::numeric_limits<double>::infinity();
      std::size_t best_j = kNf;  // sentinel: no candidate met the headroom
      for (std::size_t j = 0; j < kNf; ++j) {
        cs[i] = cand_chars[j];
        const double yield = yield_from(cs, opt.t_target);
        if (yield >= y_headroom && cand_chars[j].area < best_area) {
          best_area = cand_chars[j].area;
          best_j = j;
        }
      }
      // Cap the headroom bill: a receiver may spend at most 5% of the
      // pipeline's area here (the savings must come from donors).
      if (best_j != kNf && best_area - area0 <= 0.05 * result.total_area_before) {
        nl.set_sizes(cand_sizes[best_j]);
        cs[i] = cand_chars[best_j];
        if (nl.total_area() != area0) result.stages[i].chosen_for_speedup = true;
      } else {
        nl.set_sizes(saved);
        cs[i] = cs_saved;
      }
    }
  }

  // --- steps 3-9: size one stage at a time against the global yield.
  //
  // For the chosen stage we scan a deterministic grid of combinational
  // stat-delay targets; every grid point sizes a private copy of the stage
  // and scores pipeline yield with the copy substituted, so all candidates
  // evaluate concurrently on the sim engine.  Selection then picks, in
  // fixed target order:
  //  * the cheapest (minimum-area) candidate that meets the pipeline yield
  //    goal — kEnsureYield buys the goal without over-spending, and
  //    kMinimizeArea recovers the most area that still keeps the goal; or
  //  * failing that, the candidate with the best pipeline yield, as the
  //    fallback speedup later stages must compensate for.
  for (std::size_t round = 0; round < opt.max_outer_rounds; ++round) {
    bool changed = false;
    for (std::size_t oi = 0; oi < n; ++oi) {
      const std::size_t i = order[oi];
      netlist::Netlist& nl = *stages_[i];

      // The incrementally-maintained characterizations serve both the y_now
      // evaluation and the candidate substitutions below.
      const double y_now = yield_from(cs, opt.t_target);
      const bool need_speed = y_now < opt.yield_target;
      // EnsureYield mode never disturbs a pipeline that already meets the
      // goal — recovering area at the cost of yield is kMinimizeArea's job.
      if (opt.mode == OptimizationMode::kEnsureYield && !need_speed) continue;

      const std::vector<double> saved = nl.sizes();
      const double area_before_stage = nl.total_area();

      const double lo = comb_target * 0.3;  // aggressive end
      const double hi = comb_target * 1.5;  // relaxed end
      const std::size_t probes = std::max<std::size_t>(opt.budget_probes, 1);
      static obs::Counter c_probes("opt.global.probes");
      c_probes.add(probes);
      std::vector<std::vector<double>> grid_sizes(probes);
      (void)nl.topological_order();
      sim::parallel_for(probes, [&](std::size_t p) {
        const double t_stage =
            lo + (hi - lo) * static_cast<double>(p + 1) /
                     static_cast<double>(probes + 1);
        netlist::Netlist work = nl;  // starts at `saved` sizes
        SizerOptions so = opt.sizer;
        so.t_target = t_stage;
        (void)size_stage(work, *model_, spec_, so);
        grid_sizes[p] = work.sizes();
      });
      // One batched SSTA over the whole probe grid (the changed stage's K
      // size lanes); each lane's pipeline yield substitutes that lane into
      // the cached characterizations of the unchanged stages.
      const auto grid_chars =
          sta::characterize_grid(nl, *model_, grid_sizes, spec_, {}, opt.grid);
      const sta::StageCharacterization cs_saved = cs[i];
      std::vector<double> grid_yield(probes);
      for (std::size_t p = 0; p < probes; ++p) {
        cs[i] = grid_chars[p];
        grid_yield[p] = yield_from(cs, opt.t_target);
      }

      // Deterministic selection in grid order.
      std::size_t best_p = probes;  // sentinel: no candidate chosen
      double best_area = std::numeric_limits<double>::infinity();
      bool found_meeting = false;
      for (std::size_t p = 0; p < probes; ++p) {
        if (grid_yield[p] >= opt.yield_target &&
            grid_chars[p].area < best_area) {
          best_area = grid_chars[p].area;
          best_p = p;
          found_meeting = true;
        }
      }
      if (!found_meeting) {
        double best_y = y_now;
        for (std::size_t p = 0; p < probes; ++p) {
          if (grid_yield[p] > best_y) {
            best_y = grid_yield[p];
            best_p = p;
          }
        }
      }

      // Adopt the chosen candidate only if it helps the current objective.
      // Its pipeline yield is already in hand as the candidate's lane yield
      // (bitwise what a full rebuild would recompute).
      double y_after = y_now;
      if (best_p != probes) {
        nl.set_sizes(grid_sizes[best_p]);
        cs[i] = grid_chars[best_p];
        y_after = grid_yield[best_p];
      } else {
        cs[i] = cs_saved;
      }
      const double area_after_stage = nl.total_area();

      // Economy guard: when the pipeline goal was not reached, a fallback
      // speedup must buy a meaningful yield gain, not a fraction of a
      // point for a large area bill.
      const bool reaches_goal = y_after >= opt.yield_target;
      const bool worthwhile_fallback = y_after > y_now + 0.005;
      const bool helps =
          opt.mode == OptimizationMode::kEnsureYield
              ? (reaches_goal
                     ? area_after_stage <= area_before_stage + 1e-9 ||
                           y_now < opt.yield_target
                     : worthwhile_fallback)
              : (reaches_goal && area_after_stage < area_before_stage - 1e-9);
      if (!helps) {
        nl.set_sizes(saved);
        cs[i] = cs_saved;
      } else {
        changed = true;
        result.stages[i].chosen_for_speedup =
            area_after_stage > area_before_stage;
      }
    }
    if (!changed) break;
  }

  // --- revert-if-worse guard: the optimized design must not be strictly
  // worse than the input on the mode's own objective.
  {
    const auto m = current_model();
    const double y_after = m.yield(opt.t_target);
    const double a_after = m.total_area();
    const bool worse =
        opt.mode == OptimizationMode::kMinimizeArea
            ? (a_after >= result.total_area_before &&
               y_after <= result.pipeline_yield_before) ||
                  y_after < opt.yield_target - 1e-9
            : y_after < result.pipeline_yield_before - 1e-9;
    if (worse && (opt.mode != OptimizationMode::kMinimizeArea ||
                  result.pipeline_yield_before >= opt.yield_target)) {
      for (std::size_t i = 0; i < n; ++i)
        stages_[i]->set_sizes(snapshot[i]);
    }
  }

  // --- final snapshot.
  result.final_model = current_model();
  result.pipeline_yield_after = result.final_model.yield(opt.t_target);
  result.total_area_after = result.final_model.total_area();
  for (std::size_t i = 0; i < n; ++i) {
    result.stages[i].area_after = stages_[i]->total_area();
    result.stages[i].yield_after =
        result.final_model.stage_delay(i).cdf(opt.t_target);
  }
  return result;
}

}  // namespace statpipe::opt
