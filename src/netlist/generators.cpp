#include "netlist/generators.h"

#include <algorithm>
#include <cmath>
#include <random>
#include <stdexcept>

namespace statpipe::netlist {

Netlist inverter_chain(std::size_t depth, double size) {
  if (depth == 0) throw std::invalid_argument("inverter_chain: depth == 0");
  Netlist nl("inv_chain_" + std::to_string(depth));
  GateId prev = nl.add_input("in");
  for (std::size_t i = 0; i < depth; ++i)
    prev = nl.add_gate("inv" + std::to_string(i), device::GateKind::kNot,
                       {prev}, size);
  nl.mark_output(prev);
  nl.assign_linear_positions();
  return nl;
}

Netlist inverter_grid(std::size_t width, std::size_t depth, double size) {
  if (width == 0 || depth == 0)
    throw std::invalid_argument("inverter_grid: zero dimension");
  Netlist nl("inv_grid_" + std::to_string(width) + "x" + std::to_string(depth));
  const GateId in = nl.add_input("in");
  for (std::size_t w = 0; w < width; ++w) {
    GateId prev = in;
    for (std::size_t d = 0; d < depth; ++d)
      prev = nl.add_gate("inv_" + std::to_string(w) + "_" + std::to_string(d),
                         device::GateKind::kNot, {prev}, size);
    nl.mark_output(prev);
  }
  nl.assign_linear_positions();
  return nl;
}

CircuitStats iscas_stats(const std::string& name) {
  // Published ISCAS85 figures: (gates, PIs, POs, levels).
  if (name == "c432") return {"c432", 160, 36, 7, 17};
  if (name == "c499") return {"c499", 202, 41, 32, 11};
  if (name == "c880") return {"c880", 383, 60, 26, 24};
  if (name == "c1355") return {"c1355", 546, 41, 32, 24};
  if (name == "c1908" || name == "c1980") return {"c1908", 880, 33, 25, 40};
  if (name == "c2670") return {"c2670", 1193, 233, 140, 32};
  if (name == "c3540") return {"c3540", 1669, 50, 22, 47};
  if (name == "c5315") return {"c5315", 2307, 178, 123, 49};
  if (name == "c6288") return {"c6288", 2416, 32, 32, 124};
  if (name == "c7552") return {"c7552", 3512, 207, 108, 43};
  throw std::invalid_argument("iscas_stats: unknown circuit '" + name + "'");
}

Netlist synthesize_like(const CircuitStats& stats, std::uint64_t seed) {
  if (stats.gates == 0 || stats.depth == 0 || stats.inputs == 0)
    throw std::invalid_argument("synthesize_like: degenerate stats");
  std::mt19937_64 rng(seed ^ 0x9e3779b97f4a7c15ULL);

  Netlist nl(stats.name + "_like");

  std::vector<GateId> level_pool;  // candidate drivers for the next level
  for (std::size_t i = 0; i < stats.inputs; ++i)
    level_pool.push_back(nl.add_input("pi" + std::to_string(i)));

  // Distribute gates over levels with a mild bulge in the middle, at least
  // one gate per level so the target depth is met exactly.
  std::vector<std::size_t> per_level(stats.depth, 1);
  std::size_t assigned = stats.depth;
  if (assigned > stats.gates)
    throw std::invalid_argument("synthesize_like: depth exceeds gate count");
  std::vector<double> weight(stats.depth);
  for (std::size_t l = 0; l < stats.depth; ++l) {
    const double x =
        (static_cast<double>(l) + 0.5) / static_cast<double>(stats.depth);
    weight[l] = 0.25 + std::sin(x * 3.14159265358979323846);  // mid bulge
  }
  std::discrete_distribution<std::size_t> level_dist(weight.begin(),
                                                     weight.end());
  while (assigned < stats.gates) {
    ++per_level[level_dist(rng)];
    ++assigned;
  }

  // Cell mix typical of mapped ISCAS85 netlists.
  using device::GateKind;
  const std::vector<std::pair<GateKind, double>> mix = {
      {GateKind::kNot, 0.26},   {GateKind::kNand2, 0.28},
      {GateKind::kNand3, 0.08}, {GateKind::kNand4, 0.04},
      {GateKind::kNor2, 0.12},  {GateKind::kNor3, 0.04},
      {GateKind::kAnd2, 0.08},  {GateKind::kOr2, 0.05},
      {GateKind::kBuf, 0.03},   {GateKind::kXor2, 0.02}};
  std::vector<double> mix_w;
  for (const auto& [k, w] : mix) mix_w.push_back(w);
  std::discrete_distribution<std::size_t> kind_dist(mix_w.begin(),
                                                    mix_w.end());

  std::vector<GateId> prev_levels = level_pool;  // all gates so far
  std::vector<GateId> last_level = level_pool;
  std::size_t gid = 0;
  for (std::size_t l = 0; l < stats.depth; ++l) {
    std::vector<GateId> this_level;
    for (std::size_t g = 0; g < per_level[l]; ++g) {
      const GateKind kind = mix[kind_dist(rng)].first;
      const auto fanin_n =
          static_cast<std::size_t>(device::traits(kind).max_fanin);
      std::vector<GateId> fins;
      // First fanin from the immediately preceding level (guarantees the
      // level structure == logic depth); the rest from any earlier gate,
      // biased toward recent levels.
      fins.push_back(
          last_level[std::uniform_int_distribution<std::size_t>(
              0, last_level.size() - 1)(rng)]);
      int attempts = 0;
      while (fins.size() < fanin_n) {
        const std::size_t span = prev_levels.size();
        // Geometric-ish bias to recent drivers.
        const double u = std::uniform_real_distribution<double>(0.0, 1.0)(rng);
        const auto back =
            static_cast<std::size_t>(std::pow(u, 3.0) * static_cast<double>(span));
        const GateId cand = prev_levels[span - 1 - std::min(back, span - 1)];
        // Allow a duplicate fanin after repeated collisions (tiny pools);
        // structurally legal and electrically just a doubled input.
        if (std::find(fins.begin(), fins.end(), cand) == fins.end() ||
            ++attempts > 64)
          fins.push_back(cand);
      }
      this_level.push_back(
          nl.add_gate("g" + std::to_string(gid++), kind, fins));
    }
    for (GateId id : this_level) prev_levels.push_back(id);
    last_level = std::move(this_level);
  }

  // Mark outputs: the final level plus random earlier gates up to the
  // published PO count.
  std::size_t marked = 0;
  for (GateId id : last_level) {
    if (marked == stats.outputs) break;
    nl.mark_output(id);
    ++marked;
  }
  while (marked < stats.outputs) {
    const GateId cand =
        prev_levels[std::uniform_int_distribution<std::size_t>(
            stats.inputs, prev_levels.size() - 1)(rng)];
    const auto& outs = nl.outputs();
    if (std::find(outs.begin(), outs.end(), cand) == outs.end()) {
      nl.mark_output(cand);
      ++marked;
    }
  }

  nl.assign_linear_positions();
  nl.validate();
  return nl;
}

Netlist iscas_like(const std::string& name, std::uint64_t seed) {
  return synthesize_like(iscas_stats(name), seed);
}

Netlist iscas_c17() {
  Netlist nl("c17");
  const GateId g1 = nl.add_input("1");
  const GateId g2 = nl.add_input("2");
  const GateId g3 = nl.add_input("3");
  const GateId g6 = nl.add_input("6");
  const GateId g7 = nl.add_input("7");
  const GateId g10 = nl.add_gate("10", device::GateKind::kNand2, {g1, g3});
  const GateId g11 = nl.add_gate("11", device::GateKind::kNand2, {g3, g6});
  const GateId g16 = nl.add_gate("16", device::GateKind::kNand2, {g2, g11});
  const GateId g19 = nl.add_gate("19", device::GateKind::kNand2, {g11, g7});
  const GateId g22 = nl.add_gate("22", device::GateKind::kNand2, {g10, g16});
  const GateId g23 = nl.add_gate("23", device::GateKind::kNand2, {g16, g19});
  nl.mark_output(g22);
  nl.mark_output(g23);
  nl.assign_linear_positions();
  nl.validate();
  return nl;
}

}  // namespace statpipe::netlist
