#include "netlist/bench_parser.h"

#include <cctype>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace statpipe::netlist {

namespace {

std::string strip(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

[[noreturn]] void fail(std::size_t line, const std::string& msg) {
  throw std::runtime_error("bench parse error at line " +
                           std::to_string(line) + ": " + msg);
}

// Widen a generic NAND/NOR/AND/OR to the cell matching the actual fanin
// count (the .bench dialect is arity-free).
device::GateKind widen(device::GateKind k, std::size_t fanin,
                       std::size_t line) {
  using device::GateKind;
  auto pick = [&](GateKind k2, GateKind k3, GateKind k4) {
    switch (fanin) {
      case 1: return GateKind::kBuf;  // degenerate single-input AND/OR
      case 2: return k2;
      case 3: return k3;
      case 4: return k4;
      default:
        fail(line, "fanin " + std::to_string(fanin) +
                       " exceeds library arity (max 4)");
    }
  };
  switch (k) {
    case GateKind::kNand2: return pick(GateKind::kNand2, GateKind::kNand3,
                                       GateKind::kNand4);
    case GateKind::kNor2:
      return pick(GateKind::kNor2, GateKind::kNor3, GateKind::kNor4);
    case GateKind::kAnd2:
      if (fanin > 3) fail(line, "AND fanin > 3 unsupported");
      return fanin == 3 ? GateKind::kAnd3 : GateKind::kAnd2;
    case GateKind::kOr2:
      if (fanin > 3) fail(line, "OR fanin > 3 unsupported");
      return fanin == 3 ? GateKind::kOr3 : GateKind::kOr2;
    case GateKind::kNot:
    case GateKind::kBuf:
      if (fanin != 1) fail(line, "NOT/BUFF must have exactly one fanin");
      return k;
    case GateKind::kXor2:
    case GateKind::kXnor2:
      if (fanin != 2) fail(line, "XOR/XNOR must have exactly two fanins");
      return k;
    // Arity-explicit names (NAND3, NOR4, ...) pass through after a check.
    case GateKind::kNand3:
    case GateKind::kNor3:
    case GateKind::kAnd3:
    case GateKind::kOr3:
      if (fanin != 3) fail(line, "3-input cell with fanin != 3");
      return k;
    case GateKind::kNand4:
    case GateKind::kNor4:
      if (fanin != 4) fail(line, "4-input cell with fanin != 4");
      return k;
    default:
      fail(line, "unsupported cell in .bench");
  }
}

struct PendingGate {
  std::string name;
  device::GateKind kind;
  std::vector<std::string> fanins;
  std::size_t line;
};

}  // namespace

Netlist parse_bench(std::istream& in, const std::string& name) {
  Netlist nl(name);
  std::map<std::string, GateId> defined;
  std::vector<std::string> output_names;
  std::vector<PendingGate> pending;

  std::string raw;
  std::size_t lineno = 0;
  while (std::getline(in, raw)) {
    ++lineno;
    std::string line = strip(raw);
    if (auto pos = line.find('#'); pos != std::string::npos)
      line = strip(line.substr(0, pos));
    if (line.empty()) continue;

    // INPUT(x) / OUTPUT(x)
    auto paren = line.find('(');
    auto eq = line.find('=');
    if (eq == std::string::npos) {
      if (paren == std::string::npos || line.back() != ')')
        fail(lineno, "expected INPUT(...), OUTPUT(...) or assignment");
      const std::string head = strip(line.substr(0, paren));
      const std::string arg =
          strip(line.substr(paren + 1, line.size() - paren - 2));
      if (arg.empty()) fail(lineno, "empty signal name");
      if (head == "INPUT") {
        if (defined.count(arg)) fail(lineno, "duplicate definition of " + arg);
        defined[arg] = nl.add_input(arg);
      } else if (head == "OUTPUT") {
        output_names.push_back(arg);
      } else {
        fail(lineno, "unknown directive '" + head + "'");
      }
      continue;
    }

    // name = KIND(a, b, ...)
    const std::string lhs = strip(line.substr(0, eq));
    std::string rhs = strip(line.substr(eq + 1));
    paren = rhs.find('(');
    if (lhs.empty() || paren == std::string::npos || rhs.back() != ')')
      fail(lineno, "malformed assignment");
    const std::string kind_name = strip(rhs.substr(0, paren));
    if (kind_name == "DFF" || kind_name == "dff")
      fail(lineno,
           "DFF not supported: stage netlists are combinational; model "
           "latches with device::LatchModel");
    device::GateKind kind;
    try {
      kind = device::gate_kind_from_string(kind_name);
    } catch (const std::invalid_argument& e) {
      fail(lineno, e.what());
    }
    std::vector<std::string> fanins;
    std::string args = rhs.substr(paren + 1, rhs.size() - paren - 2);
    std::istringstream as(args);
    std::string tok;
    while (std::getline(as, tok, ',')) {
      tok = strip(tok);
      if (tok.empty()) fail(lineno, "empty fanin name");
      fanins.push_back(tok);
    }
    if (fanins.empty()) fail(lineno, "gate with no fanins");
    pending.push_back({lhs, kind, std::move(fanins), lineno});
  }

  // Resolve gates in dependency order (bench files may reference forward).
  std::size_t remaining = pending.size();
  std::vector<bool> done(pending.size(), false);
  while (remaining > 0) {
    bool progress = false;
    for (std::size_t i = 0; i < pending.size(); ++i) {
      if (done[i]) continue;
      const auto& pg = pending[i];
      std::vector<GateId> ids;
      ids.reserve(pg.fanins.size());
      bool ok = true;
      for (const auto& f : pg.fanins) {
        auto it = defined.find(f);
        if (it == defined.end()) {
          ok = false;
          break;
        }
        ids.push_back(it->second);
      }
      if (!ok) continue;
      if (defined.count(pg.name))
        fail(pg.line, "duplicate definition of " + pg.name);
      const auto kind = widen(pg.kind, ids.size(), pg.line);
      defined[pg.name] = nl.add_gate(pg.name, kind, ids);
      done[i] = true;
      --remaining;
      progress = true;
    }
    if (!progress) {
      // Either an undefined signal or a combinational cycle.
      for (std::size_t i = 0; i < pending.size(); ++i)
        if (!done[i])
          fail(pending[i].line, "undefined signal or cycle involving '" +
                                    pending[i].name + "'");
    }
  }

  for (const auto& on : output_names) {
    auto it = defined.find(on);
    if (it == defined.end())
      throw std::runtime_error("bench parse error: OUTPUT(" + on +
                               ") never defined");
    nl.mark_output(it->second);
  }
  nl.assign_linear_positions();
  nl.validate();
  return nl;
}

Netlist parse_bench_string(const std::string& text, const std::string& name) {
  std::istringstream is(text);
  return parse_bench(is, name);
}

Netlist parse_bench_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open bench file: " + path);
  auto slash = path.find_last_of('/');
  return parse_bench(f, slash == std::string::npos ? path
                                                   : path.substr(slash + 1));
}

std::string write_bench(const Netlist& nl) {
  std::ostringstream os;
  os << "# " << nl.name() << " (" << nl.gate_count() << " gates)\n";
  for (GateId id : nl.inputs()) os << "INPUT(" << nl.gate(id).name << ")\n";
  for (GateId id : nl.outputs()) os << "OUTPUT(" << nl.gate(id).name << ")\n";
  for (GateId id : nl.topological_order()) {
    const auto& g = nl.gate(id);
    if (g.is_pseudo()) continue;
    os << g.name << " = " << device::to_string(g.kind) << "(";
    for (std::size_t i = 0; i < g.fanins.size(); ++i) {
      if (i) os << ", ";
      os << nl.gate(g.fanins[i]).name;
    }
    os << ")\n";
  }
  return os.str();
}

}  // namespace statpipe::netlist
