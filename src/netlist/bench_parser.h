// Parser and writer for the ISCAS85/89 ".bench" netlist dialect:
//
//   # comment
//   INPUT(G1)
//   OUTPUT(G17)
//   G10 = NAND(G1, G3)
//   G11 = NOT(G10)
//
// Real ISCAS85 benchmark files (c432, c1908, c2670, c3540, ...) drop in
// unmodified; the repository also ships synthetic generators matched to the
// published ISCAS85 statistics (see generators.h) for when the original
// files are unavailable.  DFF cells are rejected — this library models
// combinational pipe-stage logic; latches live in the device module.
#pragma once

#include <istream>
#include <string>

#include "netlist/netlist.h"

namespace statpipe::netlist {

/// Parses .bench text.  Throws std::runtime_error with a line number on
/// malformed input, unknown cells, undefined signals or duplicate defs.
Netlist parse_bench(std::istream& in, const std::string& name = "bench");
Netlist parse_bench_string(const std::string& text,
                           const std::string& name = "bench");
Netlist parse_bench_file(const std::string& path);

/// Serializes a netlist back to .bench (round-trips with parse_bench).
std::string write_bench(const Netlist& nl);

}  // namespace statpipe::netlist
