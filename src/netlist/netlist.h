// Gate-level combinational netlist: a DAG of cell instances.
//
// This is the substrate on which per-stage statistical timing and the
// paper's gate-sizing optimization run.  Nodes are gates (including
// primary-input/output pseudo-gates); edges are driver -> fanout.
//
// Layer contract (src/netlist, see docs/ARCHITECTURE.md): owns circuit
// structure — the DAG, .bench parsing and deterministic generators — plus
// purely structural quantities (loads, areas, levels).  May depend on
// src/device (for GateKind and cell traits) and src/stats; must not
// compute timing, sample variation, or reach into sta/sim/mc/core/opt.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "device/gate_library.h"

namespace statpipe::netlist {

using GateId = std::size_t;
inline constexpr GateId kInvalidGate = std::numeric_limits<GateId>::max();

/// 64-bit FNV-1a fold of one value's 8 bytes (low byte first) into a
/// running hash.  Seed new hashes with kFnvOffsetBasis.  Shared by
/// Netlist::structural_hash and the distributed workload identity
/// (dist::hash_stages) — both sides of the cross-process hash check MUST
/// fold with this exact function.
inline constexpr std::uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ULL;
constexpr std::uint64_t fnv1a_fold(std::uint64_t h, std::uint64_t v) noexcept {
  constexpr std::uint64_t kPrime = 0x00000100000001b3ULL;
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffULL;
    h *= kPrime;
  }
  return h;
}

struct Gate {
  std::string name;
  device::GateKind kind = device::GateKind::kNot;
  std::vector<GateId> fanins;
  std::vector<GateId> fanouts;
  double size = 1.0;       ///< continuous sizing factor (optimizer variable)
  double position = 0.5;   ///< normalized die coordinate (spatial correlation)

  bool is_pseudo() const { return device::traits(kind).is_pseudo; }
};

class Netlist {
 public:
  explicit Netlist(std::string name = "netlist") : name_(std::move(name)) {}

  const std::string& name() const noexcept { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  /// Adds a primary input; returns its id.
  GateId add_input(const std::string& name);
  /// Adds a gate driven by `fanins`; returns its id.
  GateId add_gate(const std::string& name, device::GateKind kind,
                  const std::vector<GateId>& fanins, double size = 1.0);
  /// Marks an existing gate as driving a primary output.
  void mark_output(GateId id);

  std::size_t size() const noexcept { return gates_.size(); }
  const Gate& gate(GateId id) const { return gates_.at(id); }
  Gate& gate(GateId id) { return gates_.at(id); }
  const std::vector<Gate>& gates() const noexcept { return gates_; }

  const std::vector<GateId>& inputs() const noexcept { return inputs_; }
  const std::vector<GateId>& outputs() const noexcept { return outputs_; }

  /// Gate ids in topological order (inputs first).  Cached; invalidated by
  /// structural edits.  Throws std::logic_error on a combinational cycle.
  const std::vector<GateId>& topological_order() const;

  /// Logic level of each gate: inputs at 0, gate = 1 + max(fanin levels).
  std::vector<std::size_t> levels() const;

  /// Maximum logic level over all gates (the netlist's logic depth).
  std::size_t depth() const;

  /// Number of real (non-pseudo) gates.
  std::size_t gate_count() const;

  /// Total cell area given current sizes [min-inverter areas].
  double total_area() const;

  /// Capacitive load seen by gate `id`: sum of fanout input caps plus
  /// `output_load` for primary-output drivers [inverter-cap units].
  double load_of(GateId id, double output_load = 2.0) const;

  /// Assigns evenly spaced positions along [0,1] in topological order —
  /// a simple placement so spatial correlation has geometry to act on.
  void assign_linear_positions();

  /// Multiplies every gate size by `s` (area-delay curve sweeps).
  void scale_sizes(double s);

  /// Snapshot of every gate's size — the optimizers' checkpoint format.
  std::vector<double> sizes() const;

  /// Restores a snapshot taken by sizes().  Throws std::invalid_argument
  /// on length mismatch.
  void set_sizes(const std::vector<double>& sizes);

  /// Structural sanity check: fanin/fanout symmetry, arity within cell
  /// limits, pseudo-gates wired legally.  Throws std::logic_error on
  /// violation; returns gate count on success.
  std::size_t validate() const;

  /// Lookup by name (linear scan; netlists here are small).
  GateId find(const std::string& name) const;

  /// Order-sensitive FNV-1a digest of everything that affects timing and
  /// sampling: per-gate kind, size and position bit patterns, fanin lists,
  /// and the input/output id lists.  Gate names are display-only and
  /// excluded.  Two netlists with equal hashes are (up to a 2^-64 collision)
  /// interchangeable as simulation workloads — the check a distributed
  /// worker runs to prove it rebuilt the coordinator's exact circuit before
  /// contributing shards.
  std::uint64_t structural_hash() const;

 private:
  std::string name_;
  std::vector<Gate> gates_;
  std::vector<GateId> inputs_;
  std::vector<GateId> outputs_;
  mutable std::vector<GateId> topo_cache_;
  mutable bool topo_valid_ = false;
};

}  // namespace statpipe::netlist
