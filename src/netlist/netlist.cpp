#include "netlist/netlist.h"

#include <algorithm>
#include <bit>
#include <queue>
#include <stdexcept>

namespace statpipe::netlist {

GateId Netlist::add_input(const std::string& name) {
  Gate g;
  g.name = name;
  g.kind = device::GateKind::kInput;
  gates_.push_back(std::move(g));
  const GateId id = gates_.size() - 1;
  inputs_.push_back(id);
  topo_valid_ = false;
  return id;
}

GateId Netlist::add_gate(const std::string& name, device::GateKind kind,
                         const std::vector<GateId>& fanins, double size) {
  if (device::traits(kind).is_pseudo && kind != device::GateKind::kOutput)
    throw std::invalid_argument("add_gate: use add_input for inputs");
  if (size <= 0.0) throw std::invalid_argument("add_gate: size <= 0");
  Gate g;
  g.name = name;
  g.kind = kind;
  g.fanins = fanins;
  g.size = size;
  gates_.push_back(std::move(g));
  const GateId id = gates_.size() - 1;
  for (GateId f : fanins) {
    if (f >= id) throw std::invalid_argument("add_gate: fanin id out of range");
    gates_[f].fanouts.push_back(id);
  }
  topo_valid_ = false;
  return id;
}

void Netlist::mark_output(GateId id) {
  if (id >= gates_.size()) throw std::out_of_range("mark_output: bad id");
  if (std::find(outputs_.begin(), outputs_.end(), id) == outputs_.end())
    outputs_.push_back(id);
}

const std::vector<GateId>& Netlist::topological_order() const {
  if (topo_valid_) return topo_cache_;
  const std::size_t n = gates_.size();
  std::vector<std::size_t> indeg(n, 0);
  for (std::size_t i = 0; i < n; ++i) indeg[i] = gates_[i].fanins.size();
  std::queue<GateId> ready;
  for (std::size_t i = 0; i < n; ++i)
    if (indeg[i] == 0) ready.push(i);
  topo_cache_.clear();
  topo_cache_.reserve(n);
  while (!ready.empty()) {
    const GateId id = ready.front();
    ready.pop();
    topo_cache_.push_back(id);
    for (GateId s : gates_[id].fanouts)
      if (--indeg[s] == 0) ready.push(s);
  }
  if (topo_cache_.size() != n)
    throw std::logic_error("Netlist: combinational cycle detected");
  topo_valid_ = true;
  return topo_cache_;
}

std::vector<std::size_t> Netlist::levels() const {
  std::vector<std::size_t> lvl(gates_.size(), 0);
  for (GateId id : topological_order()) {
    std::size_t m = 0;
    for (GateId f : gates_[id].fanins) m = std::max(m, lvl[f] + 1);
    lvl[id] = gates_[id].fanins.empty() ? 0 : m;
  }
  return lvl;
}

std::size_t Netlist::depth() const {
  const auto lvl = levels();
  std::size_t d = 0;
  for (std::size_t i = 0; i < gates_.size(); ++i)
    if (!gates_[i].is_pseudo()) d = std::max(d, lvl[i]);
  return d;
}

std::size_t Netlist::gate_count() const {
  return static_cast<std::size_t>(
      std::count_if(gates_.begin(), gates_.end(),
                    [](const Gate& g) { return !g.is_pseudo(); }));
}

double Netlist::total_area() const {
  double a = 0.0;
  for (const auto& g : gates_) a += device::cell_area(g.kind, g.size);
  return a;
}

double Netlist::load_of(GateId id, double output_load) const {
  const Gate& g = gates_.at(id);
  double c = 0.0;
  for (GateId s : g.fanouts) {
    const Gate& snk = gates_[s];
    c += device::input_cap(snk.kind, snk.size);
  }
  if (std::find(outputs_.begin(), outputs_.end(), id) != outputs_.end())
    c += output_load;
  return c;
}

void Netlist::assign_linear_positions() {
  const auto& topo = topological_order();
  const double n = static_cast<double>(topo.size());
  for (std::size_t i = 0; i < topo.size(); ++i)
    gates_[topo[i]].position =
        n > 1 ? static_cast<double>(i) / (n - 1.0) : 0.5;
}

void Netlist::scale_sizes(double s) {
  if (s <= 0.0) throw std::invalid_argument("scale_sizes: s <= 0");
  for (auto& g : gates_)
    if (!g.is_pseudo()) g.size *= s;
}

std::vector<double> Netlist::sizes() const {
  std::vector<double> sizes(gates_.size());
  for (std::size_t i = 0; i < gates_.size(); ++i) sizes[i] = gates_[i].size;
  return sizes;
}

void Netlist::set_sizes(const std::vector<double>& sizes) {
  if (sizes.size() != gates_.size())
    throw std::invalid_argument("set_sizes: size-vector length mismatch");
  for (std::size_t i = 0; i < gates_.size(); ++i) gates_[i].size = sizes[i];
}

std::size_t Netlist::validate() const {
  for (std::size_t i = 0; i < gates_.size(); ++i) {
    const Gate& g = gates_[i];
    const auto& t = device::traits(g.kind);
    if (g.kind == device::GateKind::kInput && !g.fanins.empty())
      throw std::logic_error("validate: input '" + g.name + "' has fanins");
    if (!t.is_pseudo && g.fanins.empty())
      throw std::logic_error("validate: gate '" + g.name + "' has no fanins");
    if (!t.is_pseudo && t.max_fanin > 0 &&
        g.fanins.size() > static_cast<std::size_t>(t.max_fanin))
      throw std::logic_error("validate: gate '" + g.name +
                             "' exceeds cell arity");
    if (g.size <= 0.0 && !t.is_pseudo)
      throw std::logic_error("validate: gate '" + g.name + "' has size <= 0");
    for (GateId f : g.fanins) {
      if (f >= gates_.size())
        throw std::logic_error("validate: dangling fanin");
      const auto& fo = gates_[f].fanouts;
      if (std::find(fo.begin(), fo.end(), i) == fo.end())
        throw std::logic_error("validate: fanin/fanout asymmetry at '" +
                               g.name + "'");
    }
  }
  (void)topological_order();  // throws on cycles
  return gates_.size();
}

GateId Netlist::find(const std::string& name) const {
  for (std::size_t i = 0; i < gates_.size(); ++i)
    if (gates_[i].name == name) return i;
  return kInvalidGate;
}

std::uint64_t Netlist::structural_hash() const {
  std::uint64_t h = kFnvOffsetBasis;
  h = fnv1a_fold(h, gates_.size());
  for (const Gate& g : gates_) {
    h = fnv1a_fold(h, static_cast<std::uint64_t>(g.kind));
    h = fnv1a_fold(h, std::bit_cast<std::uint64_t>(g.size));
    h = fnv1a_fold(h, std::bit_cast<std::uint64_t>(g.position));
    h = fnv1a_fold(h, g.fanins.size());
    for (GateId f : g.fanins) h = fnv1a_fold(h, f);
  }
  h = fnv1a_fold(h, inputs_.size());
  for (GateId i : inputs_) h = fnv1a_fold(h, i);
  h = fnv1a_fold(h, outputs_.size());
  for (GateId o : outputs_) h = fnv1a_fold(h, o);
  return h;
}

}  // namespace statpipe::netlist
