// Deterministic netlist generators.
//
// Two families:
//  * inverter chains / trees — the paper's model-verification workloads
//    (Fig. 2, 3, 5 all use inverter-chain pipelines);
//  * ISCAS85-like synthetic circuits — random layered DAGs matched to the
//    published gate count, depth and I/O statistics of the four ISCAS85
//    benchmarks the paper pipelines in Tables II/III.  These stand in for
//    the original netlists (see DESIGN.md, substitutions); real .bench
//    files can replace them via parse_bench_file without code changes.
//
// All generators are pure functions of their arguments (fixed internal
// seeds), so experiments are bit-reproducible.
#pragma once

#include <cstdint>
#include <string>

#include "netlist/netlist.h"

namespace statpipe::netlist {

/// A chain of `depth` inverters: INPUT -> NOT -> ... -> NOT -> OUTPUT.
Netlist inverter_chain(std::size_t depth, double size = 1.0);

/// `width` parallel inverter chains of length `depth` sharing one input,
/// all chain tails marked as outputs.  Gives the max-of-paths structure a
/// wider combinational stage exhibits.
Netlist inverter_grid(std::size_t width, std::size_t depth, double size = 1.0);

/// Published statistics of an ISCAS85 circuit used to shape a synthetic
/// equivalent.
struct CircuitStats {
  std::string name;
  std::size_t gates;
  std::size_t inputs;
  std::size_t outputs;
  std::size_t depth;
};

/// Statistics for the benchmarks used in the paper's Tables II/III.
/// "c1908" is the standard benchmark; the paper's "c1980" is a typo for it.
CircuitStats iscas_stats(const std::string& name);  // c432,c499,c880,c1355,c1908,c2670,c3540,c5315,c6288,c7552

/// Random layered DAG matching `stats`: `stats.gates` cells drawn from
/// {NOT, NAND2..4, NOR2..3, AND2, OR2, XOR2} arranged into `stats.depth`
/// levels, every gate's fanins drawn from nearby earlier levels.
/// Deterministic for a given (stats, seed).
Netlist synthesize_like(const CircuitStats& stats, std::uint64_t seed = 1);

/// Convenience: synthesize_like(iscas_stats(name)).
Netlist iscas_like(const std::string& name, std::uint64_t seed = 1);

/// The real ISCAS85 c17 benchmark (6 NAND2 gates, 5 inputs, 2 outputs) —
/// small enough to embed verbatim; serves as the parser's reference
/// vector and a ground-truth netlist for tests.
Netlist iscas_c17();

}  // namespace statpipe::netlist
