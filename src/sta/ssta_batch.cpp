#include "sta/ssta_batch.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "device/gate_library.h"
#include "obs/telemetry.h"
#include "sim/thread_pool.h"

namespace statpipe::sta {

std::vector<SstaConfig> make_configs(
    const std::vector<std::vector<double>>& size_grid,
    const process::VariationSpec& spec) {
  std::vector<SstaConfig> cfgs(size_grid.size());
  for (std::size_t k = 0; k < size_grid.size(); ++k) {
    cfgs[k].sizes = size_grid[k];
    cfgs[k].spec = spec;
  }
  return cfgs;
}

sim::ExecutionOptions batch_exec(std::size_t lanes) {
  sim::ExecutionOptions exec;
  const std::size_t workers =
      std::max<std::size_t>(sim::ThreadPool::shared().thread_count(), 1);
  // ~2 blocks per worker for load balance, but keep blocks narrow (<= 8
  // lanes) so the optimizer's small grids still occupy the pool.
  const std::size_t blocks = 2 * workers;
  exec.samples_per_shard =
      std::clamp<std::size_t>((lanes + blocks - 1) / blocks, 1, 8);
  return exec;
}

std::vector<StageCharacterization> characterize_grid(
    const netlist::Netlist& nl, const device::AlphaPowerModel& model,
    const std::vector<std::vector<double>>& size_grid,
    const process::VariationSpec& spec, const SstaOptions& opt,
    const GridCharacterizer& hook) {
  if (hook) return hook(nl, model, size_grid, spec, opt);
  const SstaBatch batch(nl, model, opt);
  return batch.characterize(make_configs(size_grid, spec));
}

SstaBatch::SstaBatch(const netlist::Netlist& nl,
                     const device::AlphaPowerModel& model,
                     const SstaOptions& opt)
    : model_(&model), opt_(opt) {
  if (nl.outputs().empty())
    throw std::logic_error("SstaBatch: netlist has no primary outputs");
  topo_ = nl.topological_order();
  outputs_ = nl.outputs();
  gates_.resize(nl.size());
  for (netlist::GateId id = 0; id < nl.size(); ++id) {
    const auto& g = nl.gate(id);
    BoundGate& b = gates_[id];
    b.kind = g.kind;
    b.pseudo = g.is_pseudo();
    b.drives_output =
        std::find(outputs_.begin(), outputs_.end(), id) != outputs_.end();
    b.base_size = g.size;
    b.fanins = g.fanins;
    b.fanouts = g.fanouts;
  }
}

namespace {

/// Owning SoA lane storage: four parallel vectors of `gates * lanes`
/// doubles, gate-major (gate g's lanes are contiguous at [g*lanes, ...)).
struct LaneArrays {
  std::vector<double> mu, b_inter, sigma_ind, b_sys;
  std::size_t lanes = 0;

  LaneArrays(std::size_t gates, std::size_t n_lanes)
      : mu(gates * n_lanes, 0.0),
        b_inter(gates * n_lanes, 0.0),
        sigma_ind(gates * n_lanes, 0.0),
        b_sys(gates * n_lanes, 0.0),
        lanes(n_lanes) {}

  CanonicalLanes at(netlist::GateId id) {
    const std::size_t off = id * lanes;
    return {mu.data() + off, b_inter.data() + off, sigma_ind.data() + off,
            b_sys.data() + off};
  }

  /// Copies gate `src`'s lanes into the fold workspace `dst` — the "first
  /// element initializes the fold" step of both the fanin and output max.
  void copy_lanes(netlist::GateId src, const CanonicalLanes& dst) const {
    const std::size_t s = src * lanes;
    std::copy_n(mu.data() + s, lanes, dst.mu);
    std::copy_n(b_inter.data() + s, lanes, dst.b_inter);
    std::copy_n(sigma_ind.data() + s, lanes, dst.sigma_ind);
    std::copy_n(b_sys.data() + s, lanes, dst.b_sys);
  }
};

}  // namespace

void SstaBatch::run_block(const std::vector<SstaConfig>& configs,
                          std::size_t lane_begin, std::size_t lane_count,
                          CanonicalDelay* out,
                          StageCharacterization* chars) const {
  static const obs::SpanId kGridBlock("sta.grid_block");
  obs::ScopedSpan block_span(kGridBlock,
                             static_cast<std::int64_t>(lane_count));
  static obs::Counter c_lanes("sta.grid_lanes");
  c_lanes.add(lane_count);
  const std::size_t n = gates_.size();
  const std::size_t L = lane_count;
  auto size_of = [&](netlist::GateId id, std::size_t k) {
    const auto& sizes = configs[lane_begin + k].sizes;
    return sizes.empty() ? gates_[id].base_size : sizes[id];
  };

  LaneArrays arrival(n, L);
  // Fold workspace for the fanin max (the scalar path's `in` accumulator).
  LaneArrays work(1, L);
  // Nominal (variation-free) arrivals ride along in the same walk when a
  // full characterization is requested; they reuse the per-lane load and
  // nominal-delay values, which the scalar path computes identically in its
  // separate sta::analyze pass.
  std::vector<double> nom_arrival;
  if (chars != nullptr) nom_arrival.assign(n * L, 0.0);

  for (netlist::GateId id : topo_) {
    const BoundGate& g = gates_[id];
    if (g.pseudo) continue;

    // in = fold canonical_max over fanins (first fanin copies).
    CanonicalLanes acc = work.at(0);
    if (g.fanins.empty()) {
      std::fill_n(acc.mu, L, 0.0);
      std::fill_n(acc.b_inter, L, 0.0);
      std::fill_n(acc.sigma_ind, L, 0.0);
      std::fill_n(acc.b_sys, L, 0.0);
    } else {
      arrival.copy_lanes(g.fanins.front(), acc);
      for (std::size_t fi = 1; fi < g.fanins.size(); ++fi)
        canonical_max_lanes(acc, arrival.at(g.fanins[fi]), L);
    }

    // arrival[id] = in + gate canonical delay, per lane.
    CanonicalLanes dst = arrival.at(id);
    for (std::size_t k = 0; k < L; ++k) {
      // load_of with this lane's sizes: fanout input caps in list order,
      // plus the primary-output load.
      double load = 0.0;
      for (netlist::GateId s : g.fanouts)
        load += device::input_cap(gates_[s].kind, size_of(s, k));
      if (g.drives_output) load += opt_.output_load;

      const double size = size_of(id, k);
      const auto sig =
          model_->delay_sigmas(g.kind, size, load, configs[lane_begin + k].spec);
      CanonicalDelay d;
      d.mu = model_->nominal_delay(g.kind, size, load);
      d.b_inter = sig.inter;
      d.b_sys = sig.systematic;
      d.sigma_ind = sig.random;
      dst.store(k, acc.load(k) + d);

      if (chars != nullptr) {
        double in_arr = 0.0;
        for (netlist::GateId f : g.fanins)
          in_arr = std::max(in_arr, nom_arrival[f * L + k]);
        nom_arrival[id * L + k] = in_arr + d.mu;
      }
    }
  }

  // out = fold canonical_max over primary outputs (first output copies).
  CanonicalLanes res = work.at(0);
  arrival.copy_lanes(outputs_.front(), res);
  for (std::size_t oi = 1; oi < outputs_.size(); ++oi)
    canonical_max_lanes(res, arrival.at(outputs_[oi]), L);

  for (std::size_t k = 0; k < L; ++k) {
    const CanonicalDelay d = res.load(k);
    if (out != nullptr) out[lane_begin + k] = d;
    if (chars != nullptr) {
      StageCharacterization c;
      c.delay = d.as_gaussian();
      c.sigma_inter = std::abs(d.b_inter);
      // Same split as characterize_ssta: systematic is shared within the
      // stage but private across stages.
      c.sigma_private = std::sqrt(d.b_sys * d.b_sys + d.sigma_ind * d.sigma_ind);
      double area = 0.0;
      for (netlist::GateId id = 0; id < n; ++id)
        area += device::cell_area(gates_[id].kind, size_of(id, k));
      c.area = area;
      double critical = 0.0;
      for (netlist::GateId o : outputs_)
        if (nom_arrival[o * L + k] >= critical) critical = nom_arrival[o * L + k];
      c.nominal_delay = critical;
      chars[lane_begin + k] = c;
    }
  }
}

namespace {

void validate_configs(const std::vector<SstaConfig>& configs,
                      std::size_t n_gates) {
  for (const auto& c : configs)
    if (!c.sizes.empty() && c.sizes.size() != n_gates)
      throw std::invalid_argument("SstaBatch: config size-vector length "
                                  "does not match the bound netlist");
}

}  // namespace

std::vector<CanonicalDelay> SstaBatch::analyze(
    const std::vector<SstaConfig>& configs,
    const sim::ExecutionOptions& exec) const {
  validate_configs(configs, gates_.size());
  std::vector<CanonicalDelay> out(configs.size());
  if (configs.empty()) return out;
  const auto shards = sim::plan_shards(
      configs.size(), std::max<std::size_t>(exec.samples_per_shard, 1));
  sim::parallel_for(
      shards.size(),
      [&](std::size_t i) {
        run_block(configs, shards[i].begin, shards[i].count, out.data(),
                  nullptr);
      },
      exec.threads);
  return out;
}

std::vector<StageCharacterization> SstaBatch::characterize(
    const std::vector<SstaConfig>& configs,
    const sim::ExecutionOptions& exec) const {
  validate_configs(configs, gates_.size());
  std::vector<StageCharacterization> out(configs.size());
  if (configs.empty()) return out;
  const auto shards = sim::plan_shards(
      configs.size(), std::max<std::size_t>(exec.samples_per_shard, 1));
  sim::parallel_for(
      shards.size(),
      [&](std::size_t i) {
        run_block(configs, shards[i].begin, shards[i].count, nullptr,
                  out.data());
      },
      exec.threads);
  return out;
}

}  // namespace statpipe::sta
