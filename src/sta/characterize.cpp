#include "sta/characterize.h"

#include <cmath>
#include <stdexcept>

#include "stats/descriptive.h"

namespace statpipe::sta {

StageCharacterization characterize_mc(const netlist::Netlist& nl,
                                      const device::AlphaPowerModel& model,
                                      const process::VariationSpec& spec,
                                      stats::Rng& rng,
                                      const CharacterizeOptions& opt) {
  if (opt.mc_samples < 2)
    throw std::invalid_argument("characterize_mc: need >= 2 samples");

  std::vector<double> positions;
  positions.reserve(nl.size());
  for (const auto& g : nl.gates()) positions.push_back(g.position);
  process::VariationSampler sampler(model.technology(), spec, positions);

  StaOptions sta_opt;
  sta_opt.output_load = opt.output_load;

  std::vector<double> delays, inters;
  delays.reserve(opt.mc_samples);
  inters.reserve(opt.mc_samples);
  for (std::size_t i = 0; i < opt.mc_samples; ++i) {
    const auto die = sampler.sample(rng);
    delays.push_back(analyze_sample(nl, model, die, sta_opt).critical_delay);
    inters.push_back(die.dvth_inter);
  }

  StageCharacterization c;
  c.delay = {stats::mean(delays), stats::stddev(delays)};
  c.area = nl.total_area();
  c.nominal_delay = analyze(nl, model, sta_opt).critical_delay;

  // Split sigma into the part explained by the shared inter-die draw
  // (slope * sigma_inter) and the residual.
  if (spec.sigma_vth_inter > 0.0) {
    const double r = stats::pearson(delays, inters);
    c.sigma_inter = std::abs(r) * c.delay.sigma;
    const double resid = c.delay.variance() - c.sigma_inter * c.sigma_inter;
    c.sigma_private = resid > 0.0 ? std::sqrt(resid) : 0.0;
  } else {
    c.sigma_inter = 0.0;
    c.sigma_private = c.delay.sigma;
  }
  return c;
}

StageCharacterization characterize_ssta(const netlist::Netlist& nl,
                                        const device::AlphaPowerModel& model,
                                        const process::VariationSpec& spec,
                                        const CharacterizeOptions& opt) {
  SstaOptions ssta_opt;
  ssta_opt.output_load = opt.output_load;
  const CanonicalDelay d = analyze_ssta(nl, model, spec, ssta_opt);

  StaOptions sta_opt;
  sta_opt.output_load = opt.output_load;

  StageCharacterization c;
  c.delay = d.as_gaussian();
  c.sigma_inter = std::abs(d.b_inter);
  // Systematic is shared within the stage but private across stages (the
  // spatial field decorrelates between stage placements).
  c.sigma_private =
      std::sqrt(d.b_sys * d.b_sys + d.sigma_ind * d.sigma_ind);
  c.area = nl.total_area();
  c.nominal_delay = analyze(nl, model, sta_opt).critical_delay;
  return c;
}

}  // namespace statpipe::sta
