// Gate-level statistical static timing analysis (SSTA) in a reduced
// canonical first-order form.
//
// Every arrival time is represented as
//
//   A = mu + b_inter * Z_inter + b_sys * Z_sys + sigma_ind * Z_local
//
// where Z_inter is the single die-wide standard normal shared by all gates
// (inter-die variation), Z_sys is the stage-wide systematic normal (the
// spatially-correlated intra-die field: its correlation length spans a
// whole pipe stage, so within one stage netlist it acts as a single shared
// variable — matching process::VariationSampler's geometry), and Z_local
// is the gate-private RDF residual (treated as independent between paths;
// reconvergent-path residual correlation is the standard first-order SSTA
// approximation, quantified against full Monte-Carlo in tests/bench).
//
//   SUM:  mus add, b's add linearly, sigma_ind adds in quadrature.
//   MAX:  Clark's operator with rho = (b1i*b2i + b1s*b2s) / (s1*s2); the
//         result's b's are split back out by matching covariance with each
//         shared normal (Cov(max, Z) = b1*Phi(alpha) + b2*Phi(-alpha),
//         Clark eq. 6), the residual keeps the total variance exact.
#pragma once

#include "device/delay_model.h"
#include "netlist/netlist.h"
#include "process/variation.h"
#include "stats/clark.h"
#include "stats/gaussian.h"

namespace statpipe::sta {

/// First-order canonical arrival time.  (b_sys is declared after
/// sigma_ind so two-/three-value aggregate initializers keep their
/// historical meaning {mu, b_inter, sigma_ind}.)
struct CanonicalDelay {
  double mu = 0.0;
  double b_inter = 0.0;    ///< coefficient on the shared inter-die normal
  double sigma_ind = 0.0;  ///< independent residual sigma
  double b_sys = 0.0;      ///< coefficient on the stage-wide systematic normal

  double variance() const noexcept {
    return b_inter * b_inter + b_sys * b_sys + sigma_ind * sigma_ind;
  }
  double sigma() const noexcept;
  stats::Gaussian as_gaussian() const;

  /// Correlation with another canonical delay (shared Z_inter only).
  double correlation(const CanonicalDelay& other) const noexcept;

  friend CanonicalDelay operator+(const CanonicalDelay& a,
                                  const CanonicalDelay& b) noexcept;
};

/// Clark max of two canonical delays, re-projected onto the canonical form.
CanonicalDelay canonical_max(const CanonicalDelay& a, const CanonicalDelay& b);

/// Structure-of-arrays view over K parallel canonical delays (one sweep lane
/// each) — the layout the batched SSTA propagation keeps per gate: four
/// contiguous K-wide vectors instead of K interleaved structs.
struct CanonicalLanes {
  double* mu = nullptr;
  double* b_inter = nullptr;
  double* sigma_ind = nullptr;
  double* b_sys = nullptr;

  CanonicalDelay load(std::size_t k) const {
    return {mu[k], b_inter[k], sigma_ind[k], b_sys[k]};
  }
  void store(std::size_t k, const CanonicalDelay& d) const {
    mu[k] = d.mu;
    b_inter[k] = d.b_inter;
    sigma_ind[k] = d.sigma_ind;
    b_sys[k] = d.b_sys;
  }
};

/// acc[k] = canonical_max(acc[k], other[k]) for every lane — exactly the
/// scalar operator per lane (bitwise-identical), evaluated over contiguous
/// lane blocks via stats::clark_max_lanes so one gate visit of the batched
/// propagation services all K sweep configurations.
void canonical_max_lanes(const CanonicalLanes& acc, const CanonicalLanes& other,
                         std::size_t lanes);

struct SstaOptions {
  double output_load = 2.0;
};

/// Canonical delay of one cell instance under the variation spec.
CanonicalDelay gate_canonical_delay(const netlist::Netlist& nl,
                                    netlist::GateId id,
                                    const device::AlphaPowerModel& model,
                                    const process::VariationSpec& spec,
                                    const SstaOptions& opt = {});

/// Full-netlist SSTA: canonical arrival at the critical output.
CanonicalDelay analyze_ssta(const netlist::Netlist& nl,
                            const device::AlphaPowerModel& model,
                            const process::VariationSpec& spec,
                            const SstaOptions& opt = {});

}  // namespace statpipe::sta
