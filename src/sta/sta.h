// Deterministic static timing analysis over a gate-level netlist.
//
// Arrival times propagate in topological order; the critical (maximum)
// arrival over primary outputs is the combinational delay T_comb that the
// paper's stage-delay decomposition SD = Tc-q + T_comb + T_setup consumes.
//
// Layer contract (src/sta, see docs/ARCHITECTURE.md): owns timing analysis
// over one netlist — deterministic STA, canonical-form SSTA, the batched
// SstaBatch and stage characterization.  May depend on stats/process/
// device/netlist, and on src/sim only to fan batched lanes out; must not
// know about Monte-Carlo engines, pipeline models or optimizers.
#pragma once

#include <vector>

#include "device/delay_model.h"
#include "netlist/netlist.h"
#include "process/variation.h"

namespace statpipe::sta {

struct StaOptions {
  double output_load = 2.0;  ///< cap on primary outputs [inv-cap units]
};

struct StaResult {
  double critical_delay = 0.0;          ///< max arrival over outputs [ps]
  std::vector<double> arrival;          ///< per-gate arrival [ps]
  netlist::GateId critical_output = netlist::kInvalidGate;

  /// Gates on the critical path, input-side first.
  std::vector<netlist::GateId> critical_path(const netlist::Netlist& nl,
                                             const device::AlphaPowerModel& model,
                                             const StaOptions& opt = {}) const;
};

/// Nominal (variation-free) STA.
StaResult analyze(const netlist::Netlist& nl,
                  const device::AlphaPowerModel& model,
                  const StaOptions& opt = {});

/// STA under a sampled die: per-gate delays scaled by the alpha-power
/// variation factor at each gate's site.  `site_of_gate[i]` maps gate id to
/// the DieSample site index (identity when the netlist was sampled alone).
StaResult analyze_sample(const netlist::Netlist& nl,
                         const device::AlphaPowerModel& model,
                         const process::DieSample& die,
                         const std::vector<std::size_t>& site_of_gate,
                         const StaOptions& opt = {});

/// Convenience: identity site map (site i == gate i).
StaResult analyze_sample(const netlist::Netlist& nl,
                         const device::AlphaPowerModel& model,
                         const process::DieSample& die,
                         const StaOptions& opt = {});

/// Caller-owned arrival-time arena for tight sample-STA loops (one per
/// Monte-Carlo shard): steady-state sample STA then allocates nothing.
struct StaWorkspace {
  std::vector<double> arrival;
};

/// Reentrant sample STA: returns only the critical delay, propagating
/// through the caller's workspace.  Const-safe for concurrent use on the
/// same netlist provided its topological order has been materialized first
/// (call nl.topological_order() — or any STA entry point — once before
/// fanning out; the lazy cache is the one mutable member).
double critical_delay_sample(const netlist::Netlist& nl,
                             const device::AlphaPowerModel& model,
                             const process::DieSample& die,
                             const std::vector<std::size_t>& site_of_gate,
                             const StaOptions& opt, StaWorkspace& ws);

}  // namespace statpipe::sta
