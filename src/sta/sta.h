// Deterministic static timing analysis over a gate-level netlist.
//
// Arrival times propagate in topological order; the critical (maximum)
// arrival over primary outputs is the combinational delay T_comb that the
// paper's stage-delay decomposition SD = Tc-q + T_comb + T_setup consumes.
//
// Layer contract (src/sta, see docs/ARCHITECTURE.md): owns timing analysis
// over one netlist — deterministic STA, canonical-form SSTA, the batched
// SstaBatch and stage characterization.  May depend on stats/process/
// device/netlist, and on src/sim only to fan batched lanes out; must not
// know about Monte-Carlo engines, pipeline models or optimizers.
#pragma once

#include <vector>

#include "device/delay_model.h"
#include "netlist/netlist.h"
#include "process/variation.h"

namespace statpipe::sta {

struct StaOptions {
  double output_load = 2.0;  ///< cap on primary outputs [inv-cap units]
};

struct StaResult {
  double critical_delay = 0.0;          ///< max arrival over outputs [ps]
  std::vector<double> arrival;          ///< per-gate arrival [ps]
  netlist::GateId critical_output = netlist::kInvalidGate;

  /// Gates on the critical path, input-side first.
  std::vector<netlist::GateId> critical_path(const netlist::Netlist& nl,
                                             const device::AlphaPowerModel& model,
                                             const StaOptions& opt = {}) const;
};

/// Nominal (variation-free) STA.
StaResult analyze(const netlist::Netlist& nl,
                  const device::AlphaPowerModel& model,
                  const StaOptions& opt = {});

/// STA under a sampled die: per-gate delays scaled by the alpha-power
/// variation factor at each gate's site.  `site_of_gate[i]` maps gate id to
/// the DieSample site index (identity when the netlist was sampled alone).
StaResult analyze_sample(const netlist::Netlist& nl,
                         const device::AlphaPowerModel& model,
                         const process::DieSample& die,
                         const std::vector<std::size_t>& site_of_gate,
                         const StaOptions& opt = {});

/// Convenience: identity site map (site i == gate i).
StaResult analyze_sample(const netlist::Netlist& nl,
                         const device::AlphaPowerModel& model,
                         const process::DieSample& die,
                         const StaOptions& opt = {});

/// Caller-owned arrival-time arena for tight sample-STA loops (one per
/// Monte-Carlo shard): steady-state sample STA then allocates nothing.
struct StaWorkspace {
  std::vector<double> arrival;
};

/// Reentrant sample STA: returns only the critical delay, propagating
/// through the caller's workspace.  Const-safe for concurrent use on the
/// same netlist provided its topological order has been materialized first
/// (call nl.topological_order() — or any STA entry point — once before
/// fanning out; the lazy cache is the one mutable member).
double critical_delay_sample(const netlist::Netlist& nl,
                             const device::AlphaPowerModel& model,
                             const process::DieSample& die,
                             const std::vector<std::size_t>& site_of_gate,
                             const StaOptions& opt, StaWorkspace& ws);

/// Caller-owned SoA arena for the block sample STA (one per Monte-Carlo
/// shard and stage): gate-major arrival lanes plus per-gate lane scratch,
/// all reused so steady-state block STA allocates nothing.
///
/// The workspace also caches the lane-invariant stage structure — the
/// bind-once/stream-many half of the block kernel: flattened topo order,
/// per-gate site, capacitive load, nominal delay, sqrt(size) and CSR fanin
/// spans.  Every cached value is exactly what the scalar path recomputes
/// per die, so reuse cannot change results.  The cache keys on the
/// ADDRESSES of the netlist, model and site map plus opt.output_load: a
/// caller that reuses one workspace across stages must keep those objects
/// alive and structurally unmodified between calls (the Monte-Carlo engine
/// owns one workspace per stage for exactly this reason).
struct StaBlockWorkspace {
  std::vector<double> arrival;  ///< [gates * width], gate-major lane rows
  std::vector<double> dvth;     ///< [width] per-gate Vth shifts
  std::vector<double> dl;       ///< [width] per-gate dL/L shifts
  std::vector<double> vf;       ///< [width] per-gate variation factors

  // Bound stage structure (managed by critical_delay_sample_block).
  const netlist::Netlist* bound_nl = nullptr;
  const device::AlphaPowerModel* bound_model = nullptr;
  const std::vector<std::size_t>* bound_sites = nullptr;
  double bound_output_load = 0.0;
  std::vector<netlist::GateId> gate_ids;  ///< topo order, pseudo skipped
  std::vector<std::size_t> site;          ///< per bound gate
  std::vector<double> nominal;            ///< nominal delay per bound gate
  std::vector<double> sqrt_size;          ///< sqrt(gate size) per bound gate
  std::vector<std::size_t> fanin_begin;   ///< CSR offsets, size gate_ids+1
  std::vector<netlist::GateId> fanins;    ///< CSR fanin ids
};

/// Block sample STA: evaluates the alpha-power delay model and the topo max
/// for all `block.width` dies of one SoA DieBlock in a single walk, writing
/// the per-die critical delays to critical[0 .. width).  The walk runs as
/// one kernel of the active SIMD backend (stats/simd.h; width validated
/// against the backend's max_width()).  Per die the operation order is
/// unchanged from the scalar path — lane-invariant work (gate load,
/// nominal delay, sqrt(size)) is hoisted out of the lane loop but produces
/// the exact values the scalar path computes per call — so each die's
/// delay is bitwise-identical to critical_delay_sample on that die under
/// every backend.  Same reentrancy contract as critical_delay_sample.
void critical_delay_sample_block(const netlist::Netlist& nl,
                                 const device::AlphaPowerModel& model,
                                 const process::DieBlock& block,
                                 const std::vector<std::size_t>& site_of_gate,
                                 const StaOptions& opt, StaBlockWorkspace& ws,
                                 double* critical);

}  // namespace statpipe::sta
