#include "sta/ssta.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace statpipe::sta {

double CanonicalDelay::sigma() const noexcept { return std::sqrt(variance()); }

stats::Gaussian CanonicalDelay::as_gaussian() const { return {mu, sigma()}; }

double CanonicalDelay::correlation(const CanonicalDelay& other) const noexcept {
  const double s1 = sigma(), s2 = other.sigma();
  if (s1 <= 0.0 || s2 <= 0.0) return 0.0;
  return std::clamp(
      (b_inter * other.b_inter + b_sys * other.b_sys) / (s1 * s2), -1.0, 1.0);
}

CanonicalDelay operator+(const CanonicalDelay& a,
                         const CanonicalDelay& b) noexcept {
  return {a.mu + b.mu, a.b_inter + b.b_inter,
          std::sqrt(a.sigma_ind * a.sigma_ind + b.sigma_ind * b.sigma_ind),
          a.b_sys + b.b_sys};
}

namespace {

// Re-projection of a pairwise Clark result onto the canonical form: each
// shared coefficient matches Cov(max, Z) = b_a*Phi(alpha) + b_b*Phi(-alpha)
// (Clark eq. 6).  Shared by the scalar and the lane-batched max so both
// paths execute the identical floating-point sequence.
CanonicalDelay reproject_max(const CanonicalDelay& a, const CanonicalDelay& b,
                             const stats::ClarkMax& cm) {
  const double w = cm.phi_a;
  double bi = a.b_inter * w + b.b_inter * (1.0 - w);
  double bs = a.b_sys * w + b.b_sys * (1.0 - w);
  const double var = cm.max.variance();
  const double resid = var - bi * bi - bs * bs;
  CanonicalDelay r;
  r.mu = cm.max.mean;
  if (resid >= 0.0) {
    r.b_inter = bi;
    r.b_sys = bs;
    r.sigma_ind = std::sqrt(resid);
  } else if (var > 0.0) {
    // Moment matching overshot the shared part: rescale the b's so the
    // total variance is preserved exactly.
    const double scale = std::sqrt(var / (bi * bi + bs * bs));
    r.b_inter = bi * scale;
    r.b_sys = bs * scale;
    r.sigma_ind = 0.0;
  }
  return r;
}

}  // namespace

CanonicalDelay canonical_max(const CanonicalDelay& a, const CanonicalDelay& b) {
  const double rho = a.correlation(b);
  const auto cm = stats::clark_max(a.as_gaussian(), b.as_gaussian(), rho);
  return reproject_max(a, b, cm);
}

void canonical_max_lanes(const CanonicalLanes& acc, const CanonicalLanes& other,
                         std::size_t lanes) {
  // Fixed-size chunks keep the SoA scratch (sigmas, correlations, Clark
  // outputs) on the stack while feeding clark_max_lanes contiguous blocks.
  // Per lane the sequence is exactly canonical_max's: correlation ->
  // clark_max -> reproject, so results are bitwise-identical to scalar
  // folding lane by lane.  No per-lane dispatch into the scalar operator:
  // the sigma/correlation prologue below and the Clark kernel itself are
  // straight-line loops over the canonical-form arrays.
  constexpr std::size_t kChunk = stats::lanes::kMaxWidth;  // 64: widest
  // block any SIMD backend accepts, so one chunk feeds even the AVX-512
  // kernel full rows while the stack scratch stays at 4 KiB.
  double s1[kChunk], s2[kChunk], rho[kChunk];
  double cmean[kChunk], csigma[kChunk], calpha[kChunk], ca[kChunk],
      cphi[kChunk];
  for (std::size_t base = 0; base < lanes; base += kChunk) {
    const std::size_t n = std::min(kChunk, lanes - base);
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t i = base + k;
      // sigma() of each side, then the shared-normal correlation — the exact
      // expressions of CanonicalDelay::sigma / ::correlation, with the
      // degenerate zero-sigma case resolved by select on a sanitized divisor.
      const double v1 = acc.b_inter[i] * acc.b_inter[i] +
                        acc.b_sys[i] * acc.b_sys[i] +
                        acc.sigma_ind[i] * acc.sigma_ind[i];
      const double v2 = other.b_inter[i] * other.b_inter[i] +
                        other.b_sys[i] * other.b_sys[i] +
                        other.sigma_ind[i] * other.sigma_ind[i];
      s1[k] = std::sqrt(v1);
      s2[k] = std::sqrt(v2);
      const bool zero = s1[k] <= 0.0 || s2[k] <= 0.0;
      const double denom = stats::lanes::select(zero, 1.0, s1[k] * s2[k]);
      const double num = acc.b_inter[i] * other.b_inter[i] +
                         acc.b_sys[i] * other.b_sys[i];
      rho[k] = stats::lanes::select(zero, 0.0,
                                    std::clamp(num / denom, -1.0, 1.0));
    }
    const stats::GaussianLanesView ga{acc.mu + base, s1};
    const stats::GaussianLanesView gb{other.mu + base, s2};
    stats::clark_max_lanes(ga, gb, rho, n,
                           {cmean, csigma, calpha, ca, cphi});
    for (std::size_t k = 0; k < n; ++k) {
      const stats::ClarkMax cm{{cmean[k], csigma[k]}, calpha[k], ca[k],
                               cphi[k]};
      acc.store(base + k,
                reproject_max(acc.load(base + k), other.load(base + k), cm));
    }
  }
}

CanonicalDelay gate_canonical_delay(const netlist::Netlist& nl,
                                    netlist::GateId id,
                                    const device::AlphaPowerModel& model,
                                    const process::VariationSpec& spec,
                                    const SstaOptions& opt) {
  const auto& g = nl.gate(id);
  if (g.is_pseudo()) return {};
  const double load = nl.load_of(id, opt.output_load);
  const auto sig = model.delay_sigmas(g.kind, g.size, load, spec);
  CanonicalDelay d;
  d.mu = model.nominal_delay(g.kind, g.size, load);
  d.b_inter = sig.inter;
  d.b_sys = sig.systematic;  // stage-wide shared (correlation length >> stage)
  d.sigma_ind = sig.random;
  return d;
}

CanonicalDelay analyze_ssta(const netlist::Netlist& nl,
                            const device::AlphaPowerModel& model,
                            const process::VariationSpec& spec,
                            const SstaOptions& opt) {
  if (nl.outputs().empty())
    throw std::logic_error("ssta: netlist has no primary outputs");
  std::vector<CanonicalDelay> arrival(nl.size());
  for (netlist::GateId id : nl.topological_order()) {
    const auto& g = nl.gate(id);
    if (g.is_pseudo()) continue;
    CanonicalDelay in{};
    bool first = true;
    for (netlist::GateId f : g.fanins) {
      in = first ? arrival[f] : canonical_max(in, arrival[f]);
      first = false;
    }
    arrival[id] = in + gate_canonical_delay(nl, id, model, spec, opt);
  }
  CanonicalDelay out{};
  bool first = true;
  for (netlist::GateId o : nl.outputs()) {
    out = first ? arrival[o] : canonical_max(out, arrival[o]);
    first = false;
  }
  return out;
}

}  // namespace statpipe::sta
