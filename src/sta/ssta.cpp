#include "sta/ssta.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace statpipe::sta {

double CanonicalDelay::sigma() const noexcept { return std::sqrt(variance()); }

stats::Gaussian CanonicalDelay::as_gaussian() const { return {mu, sigma()}; }

double CanonicalDelay::correlation(const CanonicalDelay& other) const noexcept {
  const double s1 = sigma(), s2 = other.sigma();
  if (s1 <= 0.0 || s2 <= 0.0) return 0.0;
  return std::clamp(
      (b_inter * other.b_inter + b_sys * other.b_sys) / (s1 * s2), -1.0, 1.0);
}

CanonicalDelay operator+(const CanonicalDelay& a,
                         const CanonicalDelay& b) noexcept {
  return {a.mu + b.mu, a.b_inter + b.b_inter,
          std::sqrt(a.sigma_ind * a.sigma_ind + b.sigma_ind * b.sigma_ind),
          a.b_sys + b.b_sys};
}

CanonicalDelay canonical_max(const CanonicalDelay& a, const CanonicalDelay& b) {
  const double rho = a.correlation(b);
  const auto cm = stats::clark_max(a.as_gaussian(), b.as_gaussian(), rho);

  // Re-project onto the canonical form: each shared coefficient matches
  // Cov(max, Z) = b_a*Phi(alpha) + b_b*Phi(-alpha)   (Clark eq. 6)
  const double w = cm.phi_a;
  double bi = a.b_inter * w + b.b_inter * (1.0 - w);
  double bs = a.b_sys * w + b.b_sys * (1.0 - w);
  const double var = cm.max.variance();
  const double resid = var - bi * bi - bs * bs;
  CanonicalDelay r;
  r.mu = cm.max.mean;
  if (resid >= 0.0) {
    r.b_inter = bi;
    r.b_sys = bs;
    r.sigma_ind = std::sqrt(resid);
  } else if (var > 0.0) {
    // Moment matching overshot the shared part: rescale the b's so the
    // total variance is preserved exactly.
    const double scale = std::sqrt(var / (bi * bi + bs * bs));
    r.b_inter = bi * scale;
    r.b_sys = bs * scale;
    r.sigma_ind = 0.0;
  }
  return r;
}

CanonicalDelay gate_canonical_delay(const netlist::Netlist& nl,
                                    netlist::GateId id,
                                    const device::AlphaPowerModel& model,
                                    const process::VariationSpec& spec,
                                    const SstaOptions& opt) {
  const auto& g = nl.gate(id);
  if (g.is_pseudo()) return {};
  const double load = nl.load_of(id, opt.output_load);
  const auto sig = model.delay_sigmas(g.kind, g.size, load, spec);
  CanonicalDelay d;
  d.mu = model.nominal_delay(g.kind, g.size, load);
  d.b_inter = sig.inter;
  d.b_sys = sig.systematic;  // stage-wide shared (correlation length >> stage)
  d.sigma_ind = sig.random;
  return d;
}

CanonicalDelay analyze_ssta(const netlist::Netlist& nl,
                            const device::AlphaPowerModel& model,
                            const process::VariationSpec& spec,
                            const SstaOptions& opt) {
  if (nl.outputs().empty())
    throw std::logic_error("ssta: netlist has no primary outputs");
  std::vector<CanonicalDelay> arrival(nl.size());
  for (netlist::GateId id : nl.topological_order()) {
    const auto& g = nl.gate(id);
    if (g.is_pseudo()) continue;
    CanonicalDelay in{};
    bool first = true;
    for (netlist::GateId f : g.fanins) {
      in = first ? arrival[f] : canonical_max(in, arrival[f]);
      first = false;
    }
    arrival[id] = in + gate_canonical_delay(nl, id, model, spec, opt);
  }
  CanonicalDelay out{};
  bool first = true;
  for (netlist::GateId o : nl.outputs()) {
    out = first ? arrival[o] : canonical_max(out, arrival[o]);
    first = false;
  }
  return out;
}

}  // namespace statpipe::sta
