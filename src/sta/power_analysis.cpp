#include "sta/power_analysis.h"

#include <stdexcept>

#include "sta/sta.h"

namespace statpipe::sta {

PowerReport analyze_power(const netlist::Netlist& nl,
                          const device::PowerModel& power, double f_ghz) {
  PowerReport r;
  for (const auto& g : nl.gates()) {
    if (g.is_pseudo()) continue;
    r.dynamic_uw += power.dynamic_uw(g.kind, g.size, f_ghz);
    r.leakage_uw += power.leakage_uw(g.kind, g.size);
  }
  return r;
}

double sample_leakage_uw(const netlist::Netlist& nl,
                         const device::PowerModel& power,
                         const process::DieSample& die,
                         const std::vector<std::size_t>& site_of_gate) {
  if (site_of_gate.size() != nl.size())
    throw std::invalid_argument("sample_leakage_uw: site map size mismatch");
  double total = 0.0;
  for (std::size_t i = 0; i < nl.size(); ++i) {
    const auto& g = nl.gate(i);
    if (g.is_pseudo()) continue;
    total += power.leakage_uw(g.kind, g.size,
                              die.dvth_at(site_of_gate[i], g.size));
  }
  return total;
}

double sample_leakage_uw(const netlist::Netlist& nl,
                         const device::PowerModel& power,
                         const process::DieSample& die) {
  std::vector<std::size_t> identity(nl.size());
  for (std::size_t i = 0; i < identity.size(); ++i) identity[i] = i;
  return sample_leakage_uw(nl, power, die, identity);
}

std::vector<DelayLeakageSample> delay_leakage_mc(
    const netlist::Netlist& nl, const device::AlphaPowerModel& delay_model,
    const device::PowerModel& power, const process::VariationSpec& spec,
    std::size_t n_samples, stats::Rng& rng, double output_load) {
  if (n_samples == 0)
    throw std::invalid_argument("delay_leakage_mc: zero samples");
  std::vector<double> positions;
  positions.reserve(nl.size());
  for (const auto& g : nl.gates()) positions.push_back(g.position);
  process::VariationSampler sampler(delay_model.technology(), spec,
                                    positions);
  StaOptions opt;
  opt.output_load = output_load;

  std::vector<DelayLeakageSample> out;
  out.reserve(n_samples);
  for (std::size_t k = 0; k < n_samples; ++k) {
    const auto die = sampler.sample(rng);
    out.push_back({analyze_sample(nl, delay_model, die, opt).critical_delay,
                   sample_leakage_uw(nl, power, die)});
  }
  return out;
}

}  // namespace statpipe::sta
