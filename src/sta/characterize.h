// Stage characterization: turns a stage netlist into the (mu_i, sigma_i)
// Gaussian the paper's analytical pipeline model consumes — the role SPICE
// Monte-Carlo plays in section 2.4.
#pragma once

#include <cstddef>
#include <vector>

#include "device/delay_model.h"
#include "netlist/netlist.h"
#include "process/variation.h"
#include "sta/ssta.h"
#include "sta/sta.h"
#include "stats/gaussian.h"
#include "stats/rng.h"

namespace statpipe::sta {

/// Combinational-delay statistics of one stage netlist.
struct StageCharacterization {
  stats::Gaussian delay;        ///< total T_comb distribution [ps]
  double sigma_inter = 0.0;     ///< shared (inter-die) sigma component
  double sigma_private = 0.0;   ///< stage-private sigma component
  double area = 0.0;            ///< total cell area [min-inv areas]
  double nominal_delay = 0.0;   ///< variation-free critical delay [ps]
};

struct CharacterizeOptions {
  std::size_t mc_samples = 2000;
  double output_load = 2.0;
};

/// Monte-Carlo characterization (the SPICE stand-in): samples dies, runs
/// sample STA, returns mean/sigma.  The inter/private split is estimated by
/// regressing delay on the inter-die draw.
StageCharacterization characterize_mc(const netlist::Netlist& nl,
                                      const device::AlphaPowerModel& model,
                                      const process::VariationSpec& spec,
                                      stats::Rng& rng,
                                      const CharacterizeOptions& opt = {});

/// Analytical characterization via canonical-form SSTA — orders of
/// magnitude faster; used inside the sizing optimizer's inner loop.
StageCharacterization characterize_ssta(const netlist::Netlist& nl,
                                        const device::AlphaPowerModel& model,
                                        const process::VariationSpec& spec,
                                        const CharacterizeOptions& opt = {});

}  // namespace statpipe::sta
