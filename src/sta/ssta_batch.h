// Batched gate-level SSTA: one netlist topology, K sweep configurations,
// one topological walk.
//
// The yield/area optimizer's inner loops (area-delay sweeps, the global
// optimizer's candidate grids) evaluate the *same* netlist structure under
// many per-gate size assignments.  The scalar path pays the full structural
// cost per point: a deep netlist copy, a topological walk, fanin/fanout list
// chasing and a primary-output membership scan per gate.  SstaBatch binds
// the structure once and propagates all K configurations together: gate
// arrival forms are laid out as structure-of-arrays (four K-wide vectors —
// mu, b_inter, sigma_ind, b_sys — per gate) and every gate visit performs
// the Clark max/add over all K lanes before moving on.
//
// Determinism contract: per lane, the propagation executes exactly the
// floating-point sequence of the scalar path, so
//
//   SstaBatch(nl, model, opt).analyze(configs)[k]
//     == analyze_ssta(nl_with(configs[k].sizes), model, configs[k].spec, opt)
//
// bitwise, for every k — and likewise characterize() vs characterize_ssta.
// Lanes carry no random state, so results are also independent of how the
// batch is sharded over the sim engine and of the thread count
// (tests/test_sta.cpp enforces both equalities).
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "device/delay_model.h"
#include "netlist/netlist.h"
#include "process/variation.h"
#include "sim/engine.h"
#include "sta/characterize.h"
#include "sta/ssta.h"

namespace statpipe::sta {

/// One lane of a batched SSTA run: a full per-gate size assignment plus the
/// variation spec it is evaluated under.
struct SstaConfig {
  /// Per-gate sizes (netlist::Netlist::sizes() layout).  Empty = the bound
  /// netlist's own sizes.  Any other length is an error.
  std::vector<double> sizes;
  process::VariationSpec spec;
};

/// Builds the common grid shape: one shared spec, one size vector per lane.
std::vector<SstaConfig> make_configs(
    const std::vector<std::vector<double>>& size_grid,
    const process::VariationSpec& spec);

/// Shard granularity that splits `lanes` into enough blocks to occupy the
/// shared pool.  Purely a throughput knob: lane results carry no random
/// state, so they are bitwise-identical under any partitioning.
sim::ExecutionOptions batch_exec(std::size_t lanes);

/// Pluggable whole-grid characterization backend: given one netlist
/// structure, the delay model, a K-lane size grid (every lane a FULL
/// per-gate size vector) and a shared variation spec, return one
/// StageCharacterization per lane.  The optimizer layers
/// (`opt::SweepOptions::grid`, `opt::GlobalOptimizerOptions::grid`) route
/// their candidate grids through this seam; an empty function means the
/// local SstaBatch path.  `src/dist` provides a cluster-backed
/// implementation (dist::grid_characterizer) — this typedef lives down
/// here in sta so opt and dist can compose without ever including each
/// other.
///
/// Contract for alternative backends: lane k of the returned vector must
/// be bitwise-identical to what
/// `SstaBatch(nl, model, opt).characterize(make_configs(grid, spec))[k]`
/// computes locally — which is why the model is part of the signature: a
/// backend must replay model.technology() exactly, not assume defaults
/// (tests/test_dist.cpp enforces it for the cluster backend; see
/// docs/DETERMINISM.md).
using GridCharacterizer =
    std::function<std::vector<StageCharacterization>(
        const netlist::Netlist& nl, const device::AlphaPowerModel& model,
        const std::vector<std::vector<double>>& size_grid,
        const process::VariationSpec& spec, const SstaOptions& opt)>;

/// Characterizes a whole size grid through `hook` when set, else through a
/// freshly bound local SstaBatch — the one-liner the optimizer layers call
/// at every candidate-grid site.
std::vector<StageCharacterization> characterize_grid(
    const netlist::Netlist& nl, const device::AlphaPowerModel& model,
    const std::vector<std::vector<double>>& size_grid,
    const process::VariationSpec& spec, const SstaOptions& opt,
    const GridCharacterizer& hook = {});

class SstaBatch {
 public:
  /// Binds the structural part of `nl` once: topological order, gate kinds,
  /// fanin/fanout lists, the primary-output set and the current sizes (the
  /// fallback for configs with empty `sizes`).  `model` must outlive the
  /// batch; later structural edits to `nl` are not seen.
  /// Throws std::logic_error if `nl` has no primary outputs.
  SstaBatch(const netlist::Netlist& nl, const device::AlphaPowerModel& model,
            const SstaOptions& opt = {});

  std::size_t gate_count() const noexcept { return gates_.size(); }

  /// Canonical arrival at the critical output, one entry per config —
  /// bitwise-identical to one analyze_ssta run per config (see the file
  /// comment).  Lane blocks fan out over the sim engine per `exec`.
  std::vector<CanonicalDelay> analyze(const std::vector<SstaConfig>& configs,
                                      const sim::ExecutionOptions& exec) const;
  std::vector<CanonicalDelay> analyze(
      const std::vector<SstaConfig>& configs) const {
    return analyze(configs, batch_exec(configs.size()));
  }

  /// Full stage characterization per config (delay Gaussian, inter/private
  /// sigma split, area, nominal critical delay) — bitwise-identical to one
  /// characterize_ssta run per config.
  std::vector<StageCharacterization> characterize(
      const std::vector<SstaConfig>& configs,
      const sim::ExecutionOptions& exec) const;
  std::vector<StageCharacterization> characterize(
      const std::vector<SstaConfig>& configs) const {
    return characterize(configs, batch_exec(configs.size()));
  }

 private:
  /// Structure of one gate, flattened out of netlist::Gate: everything the
  /// propagation needs without touching the (string-carrying) source gates.
  struct BoundGate {
    device::GateKind kind;
    bool pseudo = false;
    bool drives_output = false;  ///< load includes opt.output_load
    double base_size = 1.0;      ///< fallback when a config has no sizes
    std::vector<netlist::GateId> fanins;
    std::vector<netlist::GateId> fanouts;
  };

  /// Propagates one contiguous lane block; writes per-lane canonical results
  /// (and, when `chars` is non-null, full characterizations) at their global
  /// lane indices.
  void run_block(const std::vector<SstaConfig>& configs, std::size_t lane_begin,
                 std::size_t lane_count, CanonicalDelay* out,
                 StageCharacterization* chars) const;

  const device::AlphaPowerModel* model_;
  SstaOptions opt_;
  std::vector<BoundGate> gates_;         // indexed by GateId
  std::vector<netlist::GateId> topo_;    // cached topological order
  std::vector<netlist::GateId> outputs_; // primary outputs, netlist order
};

}  // namespace statpipe::sta
