// Netlist-level power analysis: nominal totals, per-die sampled leakage,
// and the joint frequency/leakage view (fast dies leak more) that turns
// the paper's delay-only yield into a two-sided power-performance yield.
#pragma once

#include <cstddef>
#include <vector>

#include "device/delay_model.h"
#include "device/power.h"
#include "netlist/netlist.h"
#include "process/variation.h"
#include "stats/rng.h"

namespace statpipe::sta {

struct PowerReport {
  double dynamic_uw = 0.0;
  double leakage_uw = 0.0;
  double total_uw() const { return dynamic_uw + leakage_uw; }
};

/// Nominal (variation-free) power of a netlist at clock `f_ghz`.
PowerReport analyze_power(const netlist::Netlist& nl,
                          const device::PowerModel& power, double f_ghz);

/// Leakage of a netlist on one sampled die (per-gate Vth shifts applied;
/// RDF scaled by each gate's size).  `site_of_gate` as in analyze_sample.
double sample_leakage_uw(const netlist::Netlist& nl,
                         const device::PowerModel& power,
                         const process::DieSample& die,
                         const std::vector<std::size_t>& site_of_gate);
double sample_leakage_uw(const netlist::Netlist& nl,
                         const device::PowerModel& power,
                         const process::DieSample& die);

/// Joint Monte-Carlo of circuit delay and leakage over dies: the material
/// for a frequency-vs-leakage scatter (Bowman-style FMAX picture).  Returns
/// per-die (delay_ps, leakage_uw) pairs.
struct DelayLeakageSample {
  double delay_ps;
  double leakage_uw;
};
std::vector<DelayLeakageSample> delay_leakage_mc(
    const netlist::Netlist& nl, const device::AlphaPowerModel& delay_model,
    const device::PowerModel& power, const process::VariationSpec& spec,
    std::size_t n_samples, stats::Rng& rng, double output_load = 2.0);

}  // namespace statpipe::sta
