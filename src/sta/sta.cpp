#include "sta/sta.h"

#include <algorithm>
#include <stdexcept>

namespace statpipe::sta {

namespace {

// Core arrival propagation into a caller-owned arrival buffer; returns the
// critical output (arrival-breaking ties toward later outputs, as before).
template <typename DelayFn>
netlist::GateId propagate_into(const netlist::Netlist& nl,
                               DelayFn&& gate_delay,
                               std::vector<double>& arrival,
                               double& critical_delay) {
  arrival.assign(nl.size(), 0.0);
  for (netlist::GateId id : nl.topological_order()) {
    const auto& g = nl.gate(id);
    if (g.is_pseudo()) continue;
    double in_arr = 0.0;
    for (netlist::GateId f : g.fanins)
      in_arr = std::max(in_arr, arrival[f]);
    arrival[id] = in_arr + gate_delay(id);
  }
  if (nl.outputs().empty())
    throw std::logic_error("sta: netlist has no primary outputs");
  critical_delay = 0.0;
  netlist::GateId critical_output = netlist::kInvalidGate;
  for (netlist::GateId o : nl.outputs()) {
    if (arrival[o] >= critical_delay) {
      critical_delay = arrival[o];
      critical_output = o;
    }
  }
  return critical_output;
}

template <typename DelayFn>
StaResult propagate(const netlist::Netlist& nl, DelayFn&& gate_delay) {
  StaResult r;
  r.critical_output = propagate_into(nl, gate_delay, r.arrival, r.critical_delay);
  return r;
}

double sample_gate_delay(const netlist::Netlist& nl,
                         const device::AlphaPowerModel& model,
                         const process::DieSample& die,
                         const std::vector<std::size_t>& site_of_gate,
                         const StaOptions& opt, netlist::GateId id) {
  const auto& g = nl.gate(id);
  const std::size_t site = site_of_gate[id];
  const double dvth = die.dvth_at(site, g.size);
  const double dl = die.dl_rel_at(site);
  return model.delay(g.kind, g.size, nl.load_of(id, opt.output_load), dvth, dl);
}

}  // namespace

StaResult analyze(const netlist::Netlist& nl,
                  const device::AlphaPowerModel& model,
                  const StaOptions& opt) {
  return propagate(nl, [&](netlist::GateId id) {
    const auto& g = nl.gate(id);
    return model.nominal_delay(g.kind, g.size, nl.load_of(id, opt.output_load));
  });
}

StaResult analyze_sample(const netlist::Netlist& nl,
                         const device::AlphaPowerModel& model,
                         const process::DieSample& die,
                         const std::vector<std::size_t>& site_of_gate,
                         const StaOptions& opt) {
  if (site_of_gate.size() != nl.size())
    throw std::invalid_argument("analyze_sample: site map size mismatch");
  return propagate(nl, [&](netlist::GateId id) {
    return sample_gate_delay(nl, model, die, site_of_gate, opt, id);
  });
}

double critical_delay_sample(const netlist::Netlist& nl,
                             const device::AlphaPowerModel& model,
                             const process::DieSample& die,
                             const std::vector<std::size_t>& site_of_gate,
                             const StaOptions& opt, StaWorkspace& ws) {
  if (site_of_gate.size() != nl.size())
    throw std::invalid_argument("critical_delay_sample: site map size mismatch");
  double critical = 0.0;
  (void)propagate_into(
      nl,
      [&](netlist::GateId id) {
        return sample_gate_delay(nl, model, die, site_of_gate, opt, id);
      },
      ws.arrival, critical);
  return critical;
}

StaResult analyze_sample(const netlist::Netlist& nl,
                         const device::AlphaPowerModel& model,
                         const process::DieSample& die,
                         const StaOptions& opt) {
  std::vector<std::size_t> identity(nl.size());
  for (std::size_t i = 0; i < identity.size(); ++i) identity[i] = i;
  return analyze_sample(nl, model, die, identity, opt);
}

std::vector<netlist::GateId> StaResult::critical_path(
    const netlist::Netlist& nl, const device::AlphaPowerModel& model,
    const StaOptions& opt) const {
  std::vector<netlist::GateId> path;
  if (critical_output == netlist::kInvalidGate) return path;
  netlist::GateId cur = critical_output;
  for (;;) {
    path.push_back(cur);
    const auto& g = nl.gate(cur);
    if (g.fanins.empty()) break;
    // Predecessor with the largest arrival determined this gate's arrival.
    netlist::GateId best = g.fanins.front();
    for (netlist::GateId f : g.fanins)
      if (arrival[f] > arrival[best]) best = f;
    cur = best;
  }
  (void)model;
  (void)opt;
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace statpipe::sta
