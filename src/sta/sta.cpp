#include "sta/sta.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "stats/simd.h"

namespace statpipe::sta {

namespace {

// Core arrival propagation into a caller-owned arrival buffer; returns the
// critical output (arrival-breaking ties toward later outputs, as before).
template <typename DelayFn>
netlist::GateId propagate_into(const netlist::Netlist& nl,
                               DelayFn&& gate_delay,
                               std::vector<double>& arrival,
                               double& critical_delay) {
  arrival.assign(nl.size(), 0.0);
  for (netlist::GateId id : nl.topological_order()) {
    const auto& g = nl.gate(id);
    if (g.is_pseudo()) continue;
    double in_arr = 0.0;
    for (netlist::GateId f : g.fanins)
      in_arr = std::max(in_arr, arrival[f]);
    arrival[id] = in_arr + gate_delay(id);
  }
  if (nl.outputs().empty())
    throw std::logic_error("sta: netlist has no primary outputs");
  critical_delay = 0.0;
  netlist::GateId critical_output = netlist::kInvalidGate;
  for (netlist::GateId o : nl.outputs()) {
    if (arrival[o] >= critical_delay) {
      critical_delay = arrival[o];
      critical_output = o;
    }
  }
  return critical_output;
}

template <typename DelayFn>
StaResult propagate(const netlist::Netlist& nl, DelayFn&& gate_delay) {
  StaResult r;
  r.critical_output = propagate_into(nl, gate_delay, r.arrival, r.critical_delay);
  return r;
}

double sample_gate_delay(const netlist::Netlist& nl,
                         const device::AlphaPowerModel& model,
                         const process::DieSample& die,
                         const std::vector<std::size_t>& site_of_gate,
                         const StaOptions& opt, netlist::GateId id) {
  const auto& g = nl.gate(id);
  const std::size_t site = site_of_gate[id];
  const double dvth = die.dvth_at(site, g.size);
  const double dl = die.dl_rel_at(site);
  return model.delay(g.kind, g.size, nl.load_of(id, opt.output_load), dvth, dl);
}

}  // namespace

StaResult analyze(const netlist::Netlist& nl,
                  const device::AlphaPowerModel& model,
                  const StaOptions& opt) {
  return propagate(nl, [&](netlist::GateId id) {
    const auto& g = nl.gate(id);
    return model.nominal_delay(g.kind, g.size, nl.load_of(id, opt.output_load));
  });
}

StaResult analyze_sample(const netlist::Netlist& nl,
                         const device::AlphaPowerModel& model,
                         const process::DieSample& die,
                         const std::vector<std::size_t>& site_of_gate,
                         const StaOptions& opt) {
  if (site_of_gate.size() != nl.size())
    throw std::invalid_argument("analyze_sample: site map size mismatch");
  return propagate(nl, [&](netlist::GateId id) {
    return sample_gate_delay(nl, model, die, site_of_gate, opt, id);
  });
}

double critical_delay_sample(const netlist::Netlist& nl,
                             const device::AlphaPowerModel& model,
                             const process::DieSample& die,
                             const std::vector<std::size_t>& site_of_gate,
                             const StaOptions& opt, StaWorkspace& ws) {
  if (site_of_gate.size() != nl.size())
    throw std::invalid_argument("critical_delay_sample: site map size mismatch");
  double critical = 0.0;
  (void)propagate_into(
      nl,
      [&](netlist::GateId id) {
        return sample_gate_delay(nl, model, die, site_of_gate, opt, id);
      },
      ws.arrival, critical);
  return critical;
}

namespace {

// Bind-once half of the block kernel: flattens the lane-invariant stage
// structure into the workspace.  Every cached value is computed exactly as
// the scalar path computes it per die (same expressions, same order), so
// streaming many blocks through one binding cannot change results.
void bind_block_workspace(const netlist::Netlist& nl,
                          const device::AlphaPowerModel& model,
                          const std::vector<std::size_t>& site_of_gate,
                          const StaOptions& opt, StaBlockWorkspace& ws) {
  ws.gate_ids.clear();
  ws.site.clear();
  ws.nominal.clear();
  ws.sqrt_size.clear();
  ws.fanin_begin.clear();
  ws.fanins.clear();
  ws.fanin_begin.push_back(0);
  for (netlist::GateId id : nl.topological_order()) {
    const auto& g = nl.gate(id);
    if (g.is_pseudo()) continue;
    ws.gate_ids.push_back(id);
    ws.site.push_back(site_of_gate[id]);
    ws.nominal.push_back(
        model.nominal_delay(g.kind, g.size, nl.load_of(id, opt.output_load)));
    ws.sqrt_size.push_back(std::sqrt(g.size));
    ws.fanins.insert(ws.fanins.end(), g.fanins.begin(), g.fanins.end());
    ws.fanin_begin.push_back(ws.fanins.size());
  }
  ws.bound_nl = &nl;
  ws.bound_model = &model;
  ws.bound_sites = &site_of_gate;
  ws.bound_output_load = opt.output_load;
}

}  // namespace

void critical_delay_sample_block(const netlist::Netlist& nl,
                                 const device::AlphaPowerModel& model,
                                 const process::DieBlock& block,
                                 const std::vector<std::size_t>& site_of_gate,
                                 const StaOptions& opt, StaBlockWorkspace& ws,
                                 double* critical) {
  if (site_of_gate.size() != nl.size())
    throw std::invalid_argument(
        "critical_delay_sample_block: site map size mismatch");
  // Single source of truth for the kernel width rule (throws on 0 or
  // beyond kMaxWidth — validated, never clamped).
  const std::size_t W = stats::lanes::validated_width(block.width);
  if (nl.outputs().empty())
    throw std::logic_error("sta: netlist has no primary outputs");
  if (ws.bound_nl != &nl || ws.bound_model != &model ||
      ws.bound_sites != &site_of_gate ||
      ws.bound_output_load != opt.output_load)
    bind_block_workspace(nl, model, site_of_gate, opt, ws);

  ws.arrival.assign(nl.size() * W, 0.0);
  ws.dvth.resize(W);
  ws.dl.resize(W);
  ws.vf.resize(W);

  // The whole walk — fanin max fold, SoA parameter gather, variation-factor
  // pow sweep, output fold — runs as one dispatched kernel of the active
  // SIMD backend (stats/simd.h; body in stats/lanes_kernels.inl).  Per die
  // the operation order is the scalar path's, per gate the domain checks
  // are the scalar variation_factor's in the same lane order, so results
  // and rejections are unchanged from the pre-dispatch walk.
  stats::simd::StaWalkArgs args;
  args.width = W;
  args.n_gates = ws.gate_ids.size();
  args.gate_ids = ws.gate_ids.data();
  args.site = ws.site.data();
  args.nominal = ws.nominal.data();
  args.sqrt_size = ws.sqrt_size.data();
  args.fanin_begin = ws.fanin_begin.data();
  args.fanins = ws.fanins.data();
  args.dvth_inter = block.dvth_inter.data();
  args.dl_inter = block.dl_inter_rel.data();
  args.dvth_sys = block.dvth_systematic.empty()
                      ? nullptr
                      : block.dvth_systematic.data();
  args.dvth_rnd =
      block.dvth_random.empty() ? nullptr : block.dvth_random.data();
  args.dl_sys = block.dl_systematic_rel.empty()
                    ? nullptr
                    : block.dl_systematic_rel.data();
  const auto vp = model.variation_kernel_params();
  args.drive0 = vp.drive0;
  args.alpha = vp.alpha;
  args.min_ratio = vp.min_ratio;
  args.max_ratio = vp.max_ratio;
  args.arrival = ws.arrival.data();
  args.dvth = ws.dvth.data();
  args.dl = ws.dl.data();
  args.vf = ws.vf.data();
  args.outputs = nl.outputs().data();
  args.n_outputs = nl.outputs().size();
  args.critical = critical;

  const std::size_t fault = stats::simd::kernels().sta_block_walk(args);
  if (fault != stats::simd::kNoFault) {
    // The kernel stopped on the first gate whose lane row violates the
    // variation-factor domain, leaving that row's shifts in ws.dvth/ws.dl.
    // Regenerate the exact scalar exception (same message, same lane
    // precedence) by replaying the scalar check on those shifts.
    for (std::size_t j = 0; j < W; ++j)
      (void)model.variation_factor(ws.dvth[j], ws.dl[j]);
    throw std::logic_error(
        "critical_delay_sample_block: walk kernel reported a domain fault "
        "the scalar variation_factor does not reproduce");
  }
}

StaResult analyze_sample(const netlist::Netlist& nl,
                         const device::AlphaPowerModel& model,
                         const process::DieSample& die,
                         const StaOptions& opt) {
  std::vector<std::size_t> identity(nl.size());
  for (std::size_t i = 0; i < identity.size(); ++i) identity[i] = i;
  return analyze_sample(nl, model, die, identity, opt);
}

std::vector<netlist::GateId> StaResult::critical_path(
    const netlist::Netlist& nl, const device::AlphaPowerModel& model,
    const StaOptions& opt) const {
  std::vector<netlist::GateId> path;
  if (critical_output == netlist::kInvalidGate) return path;
  netlist::GateId cur = critical_output;
  for (;;) {
    path.push_back(cur);
    const auto& g = nl.gate(cur);
    if (g.fanins.empty()) break;
    // Predecessor with the largest arrival determined this gate's arrival.
    netlist::GateId best = g.fanins.front();
    for (netlist::GateId f : g.fanins)
      if (arrival[f] > arrival[best]) best = f;
    cur = best;
  }
  (void)model;
  (void)opt;
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace statpipe::sta
