#include "sim/thread_pool.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "obs/telemetry.h"

namespace statpipe::sim {

namespace {

// Set while a pool worker executes tasks, so nested parallel_for calls run
// inline on that worker instead of waiting on the pool they came from.
thread_local bool t_in_worker = false;

std::size_t default_thread_count() {
  if (const char* env = std::getenv("STATPIPE_THREADS"))
    return parse_thread_count(env);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? hw : 1;
}

}  // namespace

std::size_t parse_thread_count(const char* text) {
  const std::string raw = text == nullptr ? "" : text;
  auto fail = [&](const char* why) {
    throw std::invalid_argument("STATPIPE_THREADS=\"" + raw + "\": " + why +
                                " (expected a positive integer)");
  };
  const char* p = raw.c_str();
  while (std::isspace(static_cast<unsigned char>(*p))) ++p;
  if (*p == '-') fail("negative thread count");
  if (!std::isdigit(static_cast<unsigned char>(*p))) fail("not a number");
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(p, &end, 10);
  if (errno == ERANGE || v > std::size_t(-1) / 2) fail("value out of range");
  while (std::isspace(static_cast<unsigned char>(*end))) ++end;
  if (*end != '\0') fail("trailing garbage after the number");
  if (v == 0) fail("zero thread count");
  return static_cast<std::size_t>(v);
}

ThreadPool::ThreadPool(std::size_t n_threads) {
  const std::size_t helpers = n_threads > 1 ? n_threads - 1 : 0;
  workers_.reserve(helpers);
  for (std::size_t i = 0; i < helpers; ++i)
    workers_.emplace_back([this] { worker_main(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(m_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::run_indices() {
  static obs::Counter c_tasks("sim.pool.tasks");
  for (;;) {
    const std::function<void(std::size_t)>* fn = nullptr;
    std::size_t i = 0;
    {
      std::lock_guard<std::mutex> lk(m_);
      if (next_ >= job_n_) return;
      i = next_++;
      fn = job_fn_;
    }
    c_tasks.add();
    try {
      (*fn)(i);
    } catch (...) {
      std::lock_guard<std::mutex> lk(error_m_);
      if (!error_) error_ = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lk(m_);
      if (++done_ == job_n_) cv_done_.notify_all();
    }
  }
}

void ThreadPool::worker_main() {
  t_in_worker = true;
  std::unique_lock<std::mutex> lk(m_);
  std::uint64_t seen = 0;
  for (;;) {
    cv_work_.wait(lk, [&] { return stop_ || generation_ != seen; });
    if (stop_) return;
    seen = generation_;
    if (running_ >= job_cap_ || next_ >= job_n_) continue;
    ++running_;
    const std::int64_t publish_ns = job_publish_ns_;
    lk.unlock();
    // Queue wait: batch publication → this worker joining it.  Aggregate
    // only (no trace event) — one record per worker per batch is still a
    // lot under fine-grained optimizer fan-out.
    if (publish_ns > 0 && obs::enabled()) {
      static const obs::SpanId kQueueWait("sim.pool.queue_wait");
      obs::record_span(kQueueWait, publish_ns, obs::now_ns(), -1,
                       /*trace_event=*/false);
    }
    {
      static const obs::SpanId kWorkerRun("sim.pool.worker_run");
      obs::ScopedSpan run_span(kWorkerRun);
      run_indices();
    }
    lk.lock();
    --running_;
    cv_done_.notify_all();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn,
                              std::size_t max_threads) {
  if (n == 0) return;
  static obs::Counter c_batches("sim.pool.batches");
  static obs::Counter c_serial("sim.pool.serial_batches");
  static const obs::SpanId kBatch("sim.pool.batch");
  const bool serial =
      n == 1 || workers_.empty() || max_threads == 1 || t_in_worker;
  std::unique_lock<std::mutex> run_lk(run_m_, std::defer_lock);
  if (serial || !run_lk.try_lock()) {
    c_serial.add();
    static obs::Counter c_tasks("sim.pool.tasks");
    c_tasks.add(n);
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  c_batches.add();
  obs::ScopedSpan batch_span(kBatch, static_cast<std::int64_t>(n));
  {
    std::lock_guard<std::mutex> lk(m_);
    job_n_ = n;
    job_fn_ = &fn;
    next_ = 0;
    done_ = 0;
    job_cap_ = max_threads == 0 ? workers_.size()
                                : std::min(workers_.size(), max_threads - 1);
    job_publish_ns_ = obs::enabled() ? obs::now_ns() : 0;
    ++generation_;
  }
  cv_work_.notify_all();
  // Mark the caller as a worker while it participates: tasks it executes
  // that re-enter parallel_for must take the inline path above rather than
  // touch run_m_, which this thread already owns (try_lock on an owned
  // std::mutex is undefined behavior).
  t_in_worker = true;
  {
    static const obs::SpanId kWorkerRun("sim.pool.worker_run");
    obs::ScopedSpan run_span(kWorkerRun);
    run_indices();
  }
  t_in_worker = false;
  {
    std::unique_lock<std::mutex> lk(m_);
    cv_done_.wait(lk, [&] { return done_ == job_n_ && running_ == 0; });
    job_fn_ = nullptr;
    job_n_ = 0;
  }
  std::exception_ptr err;
  {
    std::lock_guard<std::mutex> lk(error_m_);
    std::swap(err, error_);
  }
  if (err) std::rethrow_exception(err);
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(default_thread_count());
  return pool;
}

std::size_t resolve_threads(std::size_t requested) {
  const std::size_t width = ThreadPool::shared().thread_count();
  return requested == 0 ? width : std::min(requested, width);
}

}  // namespace statpipe::sim
