// Persistent worker pool for the sharded simulation engine.
//
// One process-wide pool (ThreadPool::shared()) serves every parallel region
// in the library: Monte-Carlo shards, SSTA characterization fan-out and the
// optimizers' candidate evaluations.  The calling thread always participates
// in the work, so a 1-thread pool degrades to plain serial execution, and a
// parallel_for issued from inside a worker (nested parallelism) runs inline
// instead of deadlocking.
//
// Thread count resolution: STATPIPE_THREADS env var if set (>= 1), else
// std::thread::hardware_concurrency().
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace statpipe::sim {

class ThreadPool {
 public:
  /// Pool with `n_threads` total workers (the caller counts as one, so
  /// n_threads - 1 std::threads are spawned).  n_threads == 0 is clamped to 1.
  explicit ThreadPool(std::size_t n_threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total workers including the calling thread.
  std::size_t thread_count() const noexcept { return workers_.size() + 1; }

  /// Runs fn(i) for every i in [0, n), possibly concurrently, and blocks
  /// until all complete.  At most `max_threads` workers touch the batch
  /// (0 = no cap).  The first exception thrown by any task is rethrown on
  /// the caller after the batch drains.  Reentrant calls (from a worker, or
  /// while another batch is in flight) execute inline on the caller.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                    std::size_t max_threads = 0);

  /// Process-wide pool, sized once from STATPIPE_THREADS / hardware.
  /// Throws std::invalid_argument (via parse_thread_count) when
  /// STATPIPE_THREADS is set to something that is not a positive integer.
  static ThreadPool& shared();

 private:
  void worker_main();
  void run_indices();

  std::vector<std::thread> workers_;

  std::mutex m_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::uint64_t generation_ = 0;
  std::size_t job_n_ = 0;
  std::size_t job_cap_ = 0;  // max helper workers for the current batch
  const std::function<void(std::size_t)>* job_fn_ = nullptr;
  std::int64_t job_publish_ns_ = 0;  // obs timestamp of batch publication
                                     // (0 = telemetry off; guarded by m_)
  std::size_t next_ = 0;     // next unclaimed index (guarded by m_)
  std::size_t done_ = 0;     // completed indices (guarded by m_)
  std::size_t running_ = 0;  // helper workers inside the current batch
  bool stop_ = false;

  std::mutex error_m_;
  std::exception_ptr error_;

  std::mutex run_m_;  // serializes top-level batches
};

/// Worker count a run with `requested` threads actually uses (0 = the full
/// shared pool).  Capped by the shared pool's width.
std::size_t resolve_threads(std::size_t requested);

/// Strict parser for the STATPIPE_THREADS environment value: accepts a
/// positive decimal integer (optionally surrounded by spaces) and nothing
/// else.  Non-numeric text, trailing garbage, zero, negative values and
/// overflow all throw std::invalid_argument naming the offending value —
/// a misspelled thread count must fail loudly, not silently fall back to
/// hardware concurrency and misconfigure every run in the process.
std::size_t parse_thread_count(const char* text);

}  // namespace statpipe::sim
