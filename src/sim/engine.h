// Sharded sample scheduler: the execution layer under every Monte-Carlo
// engine and optimizer fan-out in the library.
//
// A run of n_samples is cut into fixed-size shards; each shard draws from
// its own counter-derived RNG stream (stats::Rng::fork(shard.index)) and
// accumulates into its own mergeable result.  Shard boundaries and stream
// assignment depend only on (n_samples, samples_per_shard) — NEVER on the
// thread count — and shard results are merged in ascending shard order, so
// a run is bitwise-identical at 1 and N threads for the same seed.
//
// Layer contract (src/sim, see docs/ARCHITECTURE.md): owns execution only —
// the shared thread pool, shard planning and deterministic reductions.  It
// schedules work for every layer above it but must know nothing about what
// it schedules: no include of any other src/ subsystem, ever — with one
// deliberate exception, src/obs, the cross-cutting telemetry leaf that
// depends on nothing and influences nothing.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "sim/thread_pool.h"

namespace statpipe::sim {

/// Execution knobs shared by every sharded run.
struct ExecutionOptions {
  /// Worker cap: 0 = every shared-pool thread, 1 = serial.  Results do not
  /// depend on this value, only wall-clock does.
  std::size_t threads = 0;
  /// Shard granularity.  Changing it re-partitions the RNG streams (results
  /// change deterministically); the thread count never does.
  std::size_t samples_per_shard = 1024;
  /// SoA lane width for engines with a block-vectorized sample path: full
  /// blocks of this many samples go through the block kernels, the shard
  /// tail runs scalar.  1 = fully scalar.  Engines validate it against
  /// their kernel cap — the active SIMD backend's stats::lanes::max_width()
  /// — via validate() below; a value of 0 or beyond the cap throws, it is
  /// never silently clamped.  The default of 8 is valid on every backend;
  /// stats::lanes::preferred_width() is the throughput-tuned choice.
  /// Like `threads` — and unlike `samples_per_shard` — results NEVER
  /// depend on this value: each sample's RNG stream is keyed on its
  /// shard-local index, and the block kernels are bitwise-identical per
  /// lane to the scalar path.
  std::size_t block_width = 8;

  /// Validates the options up front: samples_per_shard >= 1, block_width
  /// >= 1 and — when the caller states its kernel cap via max_block_width
  /// != 0 — block_width <= max_block_width.  Throws std::invalid_argument
  /// naming the offending field.  Engines call this before planning so a
  /// width of 0 or 64 fails loudly instead of being silently clamped into
  /// range (the sim layer knows no kernel widths itself, hence the cap
  /// parameter).
  void validate(std::size_t max_block_width = 0) const;
};

/// One contiguous slice of a sample run.  `index` doubles as the RNG
/// stream id.
struct Shard {
  std::size_t index = 0;
  std::size_t begin = 0;
  std::size_t count = 0;
};

/// Number of shards plan_shards would cut n samples into
/// (ceil(n / samples_per_shard)) without materializing them — what a run
/// or a distributed coordinator needs to size its bookkeeping.  Throws
/// std::invalid_argument when n == 0 or samples_per_shard == 0.
std::size_t shard_count(std::size_t n, std::size_t samples_per_shard);

/// Materializes only shards [shard_begin, shard_end) of the plan for n
/// samples — the shards a distributed worker actually executes, without
/// building the full O(n_shards) vector per assignment.  Validates the
/// range against the plan (check_shard_range).
std::vector<Shard> plan_shard_range(std::size_t n,
                                    std::size_t samples_per_shard,
                                    std::size_t shard_begin,
                                    std::size_t shard_end);

/// Cuts n samples into ceil(n / samples_per_shard) shards.  Throws
/// std::invalid_argument when n == 0 or samples_per_shard == 0.
std::vector<Shard> plan_shards(std::size_t n, std::size_t samples_per_shard);

/// Validates a contiguous shard subrange [begin, end) against a plan of
/// n_shards shards: throws std::invalid_argument on an empty or
/// out-of-bounds range.  The up-front range check shared by the engines'
/// subrange entry points and the distributed coordinator's assignments.
void check_shard_range(std::size_t n_shards, std::size_t begin,
                       std::size_t end);

/// Convenience forward to the shared pool.
inline void parallel_for(std::size_t n,
                         const std::function<void(std::size_t)>& fn,
                         std::size_t max_threads = 0) {
  ThreadPool::shared().parallel_for(n, fn, max_threads);
}

/// Pool of reusable per-shard workspaces, owned by the execution layer so
/// engines don't reallocate their arenas (die blocks, arrival lanes, RNG
/// lane arrays) once per shard.  A shard body acquires a lease, works in
/// the borrowed workspace and returns it on scope exit; at most one lease
/// per concurrently running shard exists, so the pool's high-water mark is
/// the worker count, not the shard count.  W must be default-constructible;
/// the pool knows nothing else about it (the sim layer stays ignorant of
/// what it schedules).  Workspaces are scratch: nothing in a reused W may
/// influence results, which every engine's determinism tests enforce.
template <class W>
class WorkspacePool {
 public:
  class Lease {
   public:
    Lease(WorkspacePool& pool, std::unique_ptr<W> ws)
        : pool_(&pool), ws_(std::move(ws)) {}
    Lease(Lease&&) = default;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    Lease& operator=(Lease&&) = delete;
    ~Lease() {
      if (ws_) pool_->release(std::move(ws_));
    }
    W& operator*() noexcept { return *ws_; }
    W* operator->() noexcept { return ws_.get(); }

   private:
    WorkspacePool* pool_;
    std::unique_ptr<W> ws_;
  };

  /// Borrows a free workspace, constructing one only when none is idle.
  Lease acquire() {
    {
      std::lock_guard<std::mutex> lk(m_);
      if (!free_.empty()) {
        std::unique_ptr<W> ws = std::move(free_.back());
        free_.pop_back();
        return Lease(*this, std::move(ws));
      }
    }
    return Lease(*this, std::make_unique<W>());
  }

 private:
  void release(std::unique_ptr<W> ws) {
    std::lock_guard<std::mutex> lk(m_);
    free_.push_back(std::move(ws));
  }

  std::mutex m_;
  std::vector<std::unique_ptr<W>> free_;
};

/// Runs body(shard) for every shard in the contiguous subrange
/// [shard_begin, shard_end) of `shards` (possibly concurrently) and returns
/// the per-shard results UNMERGED, in ascending shard order — the
/// distributed building block: a remote worker executes exactly this over
/// its assigned range and ships the parts, and the coordinator folds every
/// part in ascending shard order (the same left fold run_sharded applies),
/// so a run split across processes is bitwise-identical to a local one.
template <class Result, class Body>
std::vector<Result> run_shard_subrange(const std::vector<Shard>& shards,
                                       std::size_t shard_begin,
                                       std::size_t shard_end,
                                       const ExecutionOptions& exec,
                                       Body&& body) {
  check_shard_range(shards.size(), shard_begin, shard_end);
  std::vector<Result> parts(shard_end - shard_begin);
  parallel_for(
      parts.size(),
      [&](std::size_t i) { parts[i] = body(shards[shard_begin + i]); },
      exec.threads);
  return parts;
}

/// Runs body(shard) for every shard (possibly concurrently), then folds the
/// per-shard results in ascending shard order with merge(acc, part) — the
/// deterministic reduction that makes thread count invisible in the output.
/// Composed from run_shard_subrange over the full plan, so the local and
/// distributed paths share one scheduling implementation.
template <class Result, class Body, class Merge>
Result run_sharded(std::size_t n_samples, const ExecutionOptions& exec,
                   Body&& body, Merge&& merge) {
  const std::vector<Shard> shards =
      plan_shards(n_samples, exec.samples_per_shard);
  std::vector<Result> parts = run_shard_subrange<Result>(
      shards, 0, shards.size(), exec, std::forward<Body>(body));
  Result acc = std::move(parts.front());
  for (std::size_t i = 1; i < parts.size(); ++i)
    merge(acc, std::move(parts[i]));
  return acc;
}

}  // namespace statpipe::sim
