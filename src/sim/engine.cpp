#include "sim/engine.h"

#include <stdexcept>
#include <string>

namespace statpipe::sim {

void ExecutionOptions::validate(std::size_t max_block_width) const {
  if (samples_per_shard == 0)
    throw std::invalid_argument(
        "ExecutionOptions: samples_per_shard must be >= 1");
  if (block_width == 0)
    throw std::invalid_argument("ExecutionOptions: block_width must be >= 1");
  if (max_block_width != 0 && block_width > max_block_width)
    throw std::invalid_argument(
        "ExecutionOptions: block_width " + std::to_string(block_width) +
        " exceeds the engine's kernel cap " + std::to_string(max_block_width));
}

void check_shard_range(std::size_t n_shards, std::size_t begin,
                       std::size_t end) {
  if (begin >= end || end > n_shards)
    throw std::invalid_argument(
        "check_shard_range: bad shard range [" + std::to_string(begin) +
        ", " + std::to_string(end) + ") for a plan of " +
        std::to_string(n_shards) + " shard(s)");
}

std::size_t shard_count(std::size_t n, std::size_t samples_per_shard) {
  if (n == 0) throw std::invalid_argument("plan_shards: zero samples");
  if (samples_per_shard == 0)
    throw std::invalid_argument("plan_shards: zero samples_per_shard");
  return (n + samples_per_shard - 1) / samples_per_shard;
}

std::vector<Shard> plan_shard_range(std::size_t n,
                                    std::size_t samples_per_shard,
                                    std::size_t shard_begin,
                                    std::size_t shard_end) {
  check_shard_range(shard_count(n, samples_per_shard), shard_begin,
                    shard_end);
  std::vector<Shard> shards;
  shards.reserve(shard_end - shard_begin);
  for (std::size_t i = shard_begin; i < shard_end; ++i) {
    const std::size_t begin = i * samples_per_shard;
    shards.push_back({i, begin, std::min(samples_per_shard, n - begin)});
  }
  return shards;
}

std::vector<Shard> plan_shards(std::size_t n, std::size_t samples_per_shard) {
  return plan_shard_range(n, samples_per_shard, 0,
                          shard_count(n, samples_per_shard));
}

}  // namespace statpipe::sim
