#include "sim/engine.h"

#include <stdexcept>

namespace statpipe::sim {

std::vector<Shard> plan_shards(std::size_t n, std::size_t samples_per_shard) {
  if (n == 0) throw std::invalid_argument("plan_shards: zero samples");
  if (samples_per_shard == 0)
    throw std::invalid_argument("plan_shards: zero samples_per_shard");
  const std::size_t n_shards = (n + samples_per_shard - 1) / samples_per_shard;
  std::vector<Shard> shards;
  shards.reserve(n_shards);
  for (std::size_t i = 0; i < n_shards; ++i) {
    const std::size_t begin = i * samples_per_shard;
    shards.push_back({i, begin, std::min(samples_per_shard, n - begin)});
  }
  return shards;
}

}  // namespace statpipe::sim
