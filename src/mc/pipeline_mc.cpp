#include "mc/pipeline_mc.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "obs/telemetry.h"

namespace statpipe::mc {

namespace {

// Block-MC phase instrumentation (docs/OBSERVABILITY.md): mc.walk / mc.latch
// / mc.fold bracket the per-block phases below; mc.draw / mc.chol live in
// process::VariationSampler::sample_block_into.  bench/sample_sta_block.cpp
// reads its per-phase numbers from these same spans — one clock, no
// bench-local timers.
const obs::SpanId& span_shard() {
  static const obs::SpanId s("mc.shard");
  return s;
}
const obs::SpanId& span_walk() {
  static const obs::SpanId s("mc.walk");
  return s;
}
const obs::SpanId& span_latch() {
  static const obs::SpanId s("mc.latch");
  return s;
}
const obs::SpanId& span_fold() {
  static const obs::SpanId s("mc.fold");
  return s;
}

}  // namespace

namespace {

std::string run_name(const McResult& r) {
  return r.label.empty() ? std::string("<unnamed>") : r.label;
}

}  // namespace

void McResult::merge(McResult&& other) {
  if (&other == this)
    throw std::invalid_argument(
        "McResult::merge: run '" + run_name(*this) +
        "' merged into itself (would double-count every sample)");
  if (stage_stats.size() != other.stage_stats.size())
    throw std::invalid_argument("McResult::merge: stage count mismatch (" +
                                std::to_string(stage_stats.size()) + " vs " +
                                std::to_string(other.stage_stats.size()) + ")");
  if (label.empty()) label = std::move(other.label);
  tp_samples.insert(tp_samples.end(), other.tp_samples.begin(),
                    other.tp_samples.end());
  for (std::size_t i = 0; i < stage_stats.size(); ++i)
    stage_stats[i].merge(other.stage_stats[i]);
}

stats::Gaussian McResult::tp_estimate() const {
  if (tp_samples.size() < 2)
    throw std::logic_error("McResult::tp_estimate: run '" + run_name(*this) +
                           "' has " + std::to_string(tp_samples.size()) +
                           " sample(s); need >= 2");
  return {stats::mean(tp_samples), stats::stddev(tp_samples)};
}

double McResult::yield_at(double t_target) const {
  if (tp_samples.empty())
    throw std::logic_error("McResult::yield_at: run '" + run_name(*this) +
                           "' is empty");
  return stats::empirical_cdf_at(tp_samples, t_target);
}

double McResult::yield_ci95(double t_target) const {
  if (tp_samples.empty())
    throw std::logic_error("McResult::yield_ci95: run '" + run_name(*this) +
                           "' is empty");
  const double p = yield_at(t_target);
  return 1.96 * stats::proportion_stderr(p, tp_samples.size());
}

// ------------------------------------------------------------ stage level

namespace {

stats::CorrelatedNormalSampler make_stage_sampler(
    const core::PipelineModel& model) {
  std::vector<double> mu, sg;
  for (const auto& sd : model.stage_delays()) {
    mu.push_back(sd.mean);
    sg.push_back(sd.sigma);
  }
  return {std::move(mu), std::move(sg), model.correlation()};
}

}  // namespace

StageLevelMonteCarlo::StageLevelMonteCarlo(const core::PipelineModel& model)
    : sampler_(make_stage_sampler(model)) {
  for (const auto& sd : model.stage_delays()) {
    means_.push_back(sd.mean);
    sigmas_.push_back(sd.sigma);
  }
}

McResult StageLevelMonteCarlo::run_shard(const sim::Shard& shard,
                                         const stats::Rng& root) const {
  stats::Rng rng = root.fork(shard.index);
  McResult r;
  r.tp_samples.reserve(shard.count);
  r.stage_stats.resize(means_.size());
  std::vector<double> z, sd;  // per-shard batch buffers
  for (std::size_t k = 0; k < shard.count; ++k) {
    sampler_.sample_into(rng, z, sd);
    double mx = sd[0];
    for (std::size_t i = 0; i < sd.size(); ++i) {
      r.stage_stats[i].add(sd[i]);
      mx = std::max(mx, sd[i]);
    }
    r.tp_samples.push_back(mx);
  }
  return r;
}

McResult StageLevelMonteCarlo::run(std::size_t n_samples, stats::Rng& rng,
                                   const sim::ExecutionOptions& exec) const {
  if (n_samples == 0)
    throw std::invalid_argument("StageLevelMonteCarlo: zero samples");
  exec.validate();  // no block kernel here, but a zero shard size is a bug
  // One engine draw keys the whole run: repeated runs differ, shard streams
  // stay independent of thread scheduling.
  const stats::Rng root = rng.fork();
  McResult r = sim::run_sharded<McResult>(
      n_samples, exec,
      [&](const sim::Shard& s) { return run_shard(s, root); },
      [](McResult& acc, McResult&& part) { acc.merge(std::move(part)); });
  r.label = "stage-level MC";
  return r;
}

// ------------------------------------------------------------- gate level

namespace {

struct Layout {
  std::vector<double> positions;
  std::vector<std::vector<std::size_t>> site_maps;
  std::vector<std::size_t> latch_sites;
};

Layout layout_stages(const std::vector<const netlist::Netlist*>& stages) {
  if (stages.empty())
    throw std::invalid_argument("GateLevelMonteCarlo: no stages");
  Layout l;
  const double n = static_cast<double>(stages.size());
  for (std::size_t s = 0; s < stages.size(); ++s) {
    const netlist::Netlist* nl = stages[s];
    if (nl == nullptr)
      throw std::invalid_argument("GateLevelMonteCarlo: null stage");
    std::vector<std::size_t> map(nl->size());
    for (std::size_t g = 0; g < nl->size(); ++g) {
      map[g] = l.positions.size();
      l.positions.push_back((static_cast<double>(s) + nl->gate(g).position) /
                            n);
    }
    l.site_maps.push_back(std::move(map));
    // The stage's capture latch sits at the stage's right edge.
    l.latch_sites.push_back(l.positions.size());
    l.positions.push_back((static_cast<double>(s) + 1.0) / n);
  }
  return l;
}

}  // namespace

GateLevelMonteCarlo::GateLevelMonteCarlo(
    std::vector<const netlist::Netlist*> stages,
    const device::AlphaPowerModel& model, const process::VariationSpec& spec,
    const device::LatchModel& latch, const sta::StaOptions& sta_opt)
    : stages_(std::move(stages)),
      model_(&model),
      spec_(spec),
      latch_(latch),
      sta_opt_(sta_opt),
      sampler_([&] {
        return process::VariationSampler(model.technology(), spec,
                                         layout_stages(stages_).positions);
      }()) {
  Layout l = layout_stages(stages_);
  site_maps_ = std::move(l.site_maps);
  latch_sites_ = std::move(l.latch_sites);
  // Materialize every stage's topological order now so the shards' sample
  // STA is read-only on shared netlists (the lazy cache is the one mutable
  // member of Netlist).
  for (const netlist::Netlist* s : stages_) (void)s->topological_order();
}

McResult GateLevelMonteCarlo::run_shard(const sim::Shard& shard,
                                        const stats::Rng& root,
                                        std::size_t block_width) const {
  // Per-sample streams: sample k of this shard draws from
  // shard_rng.fork(k) — die draws first, then the per-stage latch draws —
  // so the values a sample sees depend only on (seed, shard, k), never on
  // how samples are grouped into blocks.  That plus the per-lane bitwise
  // equality of the block kernels makes the run block-width-invariant.
  const stats::Rng shard_rng = root.fork(shard.index);
  obs::ScopedSpan shard_span(span_shard(),
                             static_cast<std::int64_t>(shard.index));
  static obs::Counter c_samples("mc.samples");
  static obs::Counter c_blocks("mc.blocks");
  static obs::Counter c_tail("mc.scalar_tail_samples");
  c_samples.add(shard.count);
  const std::size_t n_stages = stages_.size();
  McResult r;
  r.tp_samples.reserve(shard.count);
  r.stage_stats.resize(n_stages);
  // Sim-owned per-shard arenas: the loops below are allocation-free in
  // steady state (die block, systematic-field batch, arrival lane arena and
  // RNG streams all reused across shards via the workspace pool).
  auto ws = scratch_.acquire();
  const std::size_t W = block_width;
  ws->lane_rngs.resize(W);
  ws->latch_dvth.resize(W);
  ws->latch_overhead.resize(W);
  ws->stage_delay.resize(n_stages * W);
  ws->sta_block.resize(n_stages);

  std::size_t k = 0;
  for (; W > 1 && k + W <= shard.count; k += W) {
    c_blocks.add();
    for (std::size_t j = 0; j < W; ++j)
      ws->lane_rngs[j] = shard_rng.fork(k + j);
    sampler_.sample_block_into(ws->lane_rngs.data(), W, ws->block,
                               ws->block_ws);
    {
      obs::ScopedSpan walk_span(span_walk(), static_cast<std::int64_t>(W));
      for (std::size_t s = 0; s < n_stages; ++s)
        sta::critical_delay_sample_block(*stages_[s], *model_, ws->block,
                                         site_maps_[s], sta_opt_,
                                         ws->sta_block[s],
                                         ws->stage_delay.data() + s * W);
    }
    // Latch overheads, lane-batched per stage.  Per lane the draw order is
    // unchanged (stage 0, 1, ... — one normal each, after the die draws);
    // going stage-major merely interleaves the lanes, which no lane's
    // stream can observe.  Latch sees the shared shifts only; its internal
    // RDF is already in LatchTiming::random_sigma_rel (keeps MC consistent
    // with LatchModel::overhead_distribution on the analytical side).
    {
      obs::ScopedSpan latch_span(span_latch(), static_cast<std::int64_t>(W));
      ws->rng_block.pack(ws->lane_rngs.data(), W);
      for (std::size_t s = 0; s < n_stages; ++s) {
        for (std::size_t j = 0; j < W; ++j)
          ws->latch_dvth[j] = ws->block.dvth_shared_at(latch_sites_[s], j);
        latch_.sample_overhead_lanes(ws->latch_dvth.data(), W, ws->rng_block,
                                     ws->latch_overhead.data());
        double* row = ws->stage_delay.data() + s * W;
        for (std::size_t j = 0; j < W; ++j) row[j] += ws->latch_overhead[j];
      }
      ws->rng_block.unpack(ws->lane_rngs.data());
    }
    {
      obs::ScopedSpan fold_span(span_fold(), static_cast<std::int64_t>(W));
      for (std::size_t j = 0; j < W; ++j) {
        double tp = 0.0;
        for (std::size_t s = 0; s < n_stages; ++s) {
          const double sd = ws->stage_delay[s * W + j];
          r.stage_stats[s].add(sd);
          tp = std::max(tp, sd);
        }
        r.tp_samples.push_back(tp);
      }
    }
  }
  // Scalar tail (and the whole shard when block_width == 1).
  if (k < shard.count) c_tail.add(shard.count - k);
  for (; k < shard.count; ++k) {
    stats::Rng rng = shard_rng.fork(k);
    sampler_.sample_into(rng, ws->die, ws->die_ws);
    double tp = 0.0;
    for (std::size_t s = 0; s < n_stages; ++s) {
      const double comb = sta::critical_delay_sample(
          *stages_[s], *model_, ws->die, site_maps_[s], sta_opt_, ws->sta_ws);
      const double dvth_latch = ws->die.dvth_shared_at(latch_sites_[s]);
      const double sd = comb + latch_.sample_overhead(dvth_latch, rng);
      r.stage_stats[s].add(sd);
      tp = std::max(tp, sd);
    }
    r.tp_samples.push_back(tp);
  }
  return r;
}

std::vector<McResult> GateLevelMonteCarlo::run_shard_range(
    std::size_t n_samples, std::uint64_t root_seed, std::size_t shard_begin,
    std::size_t shard_end, const sim::ExecutionOptions& exec) const {
  if (n_samples == 0)
    throw std::invalid_argument("GateLevelMonteCarlo: zero samples");
  exec.validate(stats::lanes::max_width());
  // Materialize only the assigned subrange: a distributed worker must not
  // rebuild the full O(n_shards) plan for a two-shard assignment.
  const std::vector<sim::Shard> shards = sim::plan_shard_range(
      n_samples, exec.samples_per_shard, shard_begin, shard_end);
  // Rng(root_seed) reconstructs the exact root run() forks: fork(stream_id)
  // depends only on the construction seed, so a remote process holding just
  // the 64-bit key replays every shard's streams bit for bit.
  const stats::Rng root(root_seed);
  return sim::run_shard_subrange<McResult>(
      shards, 0, shards.size(), exec,
      [&](const sim::Shard& s) { return run_shard(s, root, exec.block_width); });
}

McResult GateLevelMonteCarlo::run(std::size_t n_samples, stats::Rng& rng,
                                  const sim::ExecutionOptions& exec) const {
  if (n_samples == 0)
    throw std::invalid_argument("GateLevelMonteCarlo: zero samples");
  exec.validate(stats::lanes::max_width());
  const stats::Rng root = rng.fork();
  const std::size_t n_shards =
      sim::shard_count(n_samples, exec.samples_per_shard);
  std::vector<McResult> parts =
      run_shard_range(n_samples, root.seed(), 0, n_shards, exec);
  McResult r = std::move(parts.front());
  for (std::size_t i = 1; i < parts.size(); ++i) r.merge(std::move(parts[i]));
  r.label = "gate-level MC";
  return r;
}

}  // namespace statpipe::mc
