#include "mc/pipeline_mc.h"

#include <algorithm>
#include <stdexcept>

namespace statpipe::mc {

stats::Gaussian McResult::tp_estimate() const {
  if (tp_samples.size() < 2)
    throw std::logic_error("McResult: too few samples");
  return {stats::mean(tp_samples), stats::stddev(tp_samples)};
}

double McResult::yield_at(double t_target) const {
  return stats::empirical_cdf_at(tp_samples, t_target);
}

double McResult::yield_ci95(double t_target) const {
  const double p = yield_at(t_target);
  return 1.96 * stats::proportion_stderr(p, tp_samples.size());
}

// ------------------------------------------------------------ stage level

namespace {

stats::CorrelatedNormalSampler make_stage_sampler(
    const core::PipelineModel& model) {
  std::vector<double> mu, sg;
  for (const auto& sd : model.stage_delays()) {
    mu.push_back(sd.mean);
    sg.push_back(sd.sigma);
  }
  return {std::move(mu), std::move(sg), model.correlation()};
}

}  // namespace

StageLevelMonteCarlo::StageLevelMonteCarlo(const core::PipelineModel& model)
    : sampler_(make_stage_sampler(model)) {
  for (const auto& sd : model.stage_delays()) {
    means_.push_back(sd.mean);
    sigmas_.push_back(sd.sigma);
  }
}

McResult StageLevelMonteCarlo::run(std::size_t n_samples,
                                   stats::Rng& rng) const {
  if (n_samples == 0)
    throw std::invalid_argument("StageLevelMonteCarlo: zero samples");
  McResult r;
  r.tp_samples.reserve(n_samples);
  r.stage_stats.resize(means_.size());
  for (std::size_t k = 0; k < n_samples; ++k) {
    const auto sd = sampler_.sample(rng);
    double mx = sd[0];
    for (std::size_t i = 0; i < sd.size(); ++i) {
      r.stage_stats[i].add(sd[i]);
      mx = std::max(mx, sd[i]);
    }
    r.tp_samples.push_back(mx);
  }
  return r;
}

// ------------------------------------------------------------- gate level

namespace {

struct Layout {
  std::vector<double> positions;
  std::vector<std::vector<std::size_t>> site_maps;
  std::vector<std::size_t> latch_sites;
};

Layout layout_stages(const std::vector<const netlist::Netlist*>& stages) {
  if (stages.empty())
    throw std::invalid_argument("GateLevelMonteCarlo: no stages");
  Layout l;
  const double n = static_cast<double>(stages.size());
  for (std::size_t s = 0; s < stages.size(); ++s) {
    const netlist::Netlist* nl = stages[s];
    if (nl == nullptr)
      throw std::invalid_argument("GateLevelMonteCarlo: null stage");
    std::vector<std::size_t> map(nl->size());
    for (std::size_t g = 0; g < nl->size(); ++g) {
      map[g] = l.positions.size();
      l.positions.push_back((static_cast<double>(s) + nl->gate(g).position) /
                            n);
    }
    l.site_maps.push_back(std::move(map));
    // The stage's capture latch sits at the stage's right edge.
    l.latch_sites.push_back(l.positions.size());
    l.positions.push_back((static_cast<double>(s) + 1.0) / n);
  }
  return l;
}

}  // namespace

GateLevelMonteCarlo::GateLevelMonteCarlo(
    std::vector<const netlist::Netlist*> stages,
    const device::AlphaPowerModel& model, const process::VariationSpec& spec,
    const device::LatchModel& latch, const sta::StaOptions& sta_opt)
    : stages_(std::move(stages)),
      model_(&model),
      spec_(spec),
      latch_(latch),
      sta_opt_(sta_opt),
      sampler_([&] {
        return process::VariationSampler(model.technology(), spec,
                                         layout_stages(stages_).positions);
      }()) {
  Layout l = layout_stages(stages_);
  site_maps_ = std::move(l.site_maps);
  latch_sites_ = std::move(l.latch_sites);
}

McResult GateLevelMonteCarlo::run(std::size_t n_samples,
                                  stats::Rng& rng) const {
  if (n_samples == 0)
    throw std::invalid_argument("GateLevelMonteCarlo: zero samples");
  McResult r;
  r.tp_samples.reserve(n_samples);
  r.stage_stats.resize(stages_.size());
  for (std::size_t k = 0; k < n_samples; ++k) {
    const auto die = sampler_.sample(rng);
    double tp = 0.0;
    for (std::size_t s = 0; s < stages_.size(); ++s) {
      const double comb =
          sta::analyze_sample(*stages_[s], *model_, die, site_maps_[s],
                              sta_opt_)
              .critical_delay;
      // Latch sees the shared shifts only; its internal RDF is already in
      // LatchTiming::random_sigma_rel (keeps MC consistent with
      // LatchModel::overhead_distribution on the analytical side).
      const double dvth_latch = die.dvth_shared_at(latch_sites_[s]);
      const double sd = comb + latch_.sample_overhead(dvth_latch, rng);
      r.stage_stats[s].add(sd);
      tp = std::max(tp, sd);
    }
    r.tp_samples.push_back(tp);
  }
  return r;
}

}  // namespace statpipe::mc
