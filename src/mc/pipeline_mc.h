// Monte-Carlo simulation of pipeline delay — the verification reference the
// analytical model is judged against (paper section 2.4), replacing the
// authors' SPICE testbench.
//
// Two granularities:
//  * StageLevelMonteCarlo — samples the per-stage Gaussian delays (with
//    their correlation matrix) and takes the max.  Verifies the Clark
//    reduction itself, exactly as eq. (2) defines yield.
//  * GateLevelMonteCarlo — samples process parameters per die (one shared
//    inter-die draw, one spatially-correlated systematic field spanning all
//    stages laid out along the die, independent RDF per gate), runs sample
//    STA on every stage netlist, adds latch overhead, and takes the max.
//    This is the full "silicon" reference: it knows nothing about
//    Gaussians, Clark, or stage decompositions.
//
// Both engines execute on the sharded sim layer: n_samples is partitioned
// into fixed-size shards, each shard draws from its own counter-derived RNG
// stream and reuses a pooled per-shard workspace (die block, STA lane
// arena, batch normal buffers), and shard results merge in ascending shard
// order.  For a given seed the result is bitwise-identical at any thread
// count.
//
// The gate-level engine additionally runs block-vectorized: each shard
// consumes SoA DieBlocks of exec.block_width dies (tail handled scalar)
// through process::VariationSampler::sample_block_into and
// sta::critical_delay_sample_block.  Every sample's RNG stream is keyed on
// its shard-local index (shard_rng.fork(k)), not on draw position, and the
// block kernels are bitwise-identical per lane to the scalar path — so for
// a given seed the result is ALSO bitwise-identical at any block width.
//
// Layer contract (src/mc, see docs/ARCHITECTURE.md): owns Monte-Carlo
// verification of pipeline delay.  May depend on everything below core's
// optimizers (stats, process, device, netlist, sta, sim) plus the
// analytical core::PipelineModel it verifies; must not depend on src/opt —
// the optimizers call MC, never the reverse.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/pipeline_model.h"
#include "device/latch.h"
#include "netlist/netlist.h"
#include "process/variation.h"
#include "sim/engine.h"
#include "sta/sta.h"
#include "stats/descriptive.h"
#include "stats/gaussian.h"
#include "stats/rng.h"

namespace statpipe::mc {

/// Result of a pipeline MC run.  Shard results combine exactly via merge().
struct McResult {
  std::string label;                             ///< run name (error messages)
  std::vector<double> tp_samples;                ///< pipeline delay draws [ps]
  std::vector<stats::RunningStats> stage_stats;  ///< per-stage delay stats

  /// Appends another run's samples and folds its per-stage accumulators.
  /// Throws std::invalid_argument on stage-count mismatch or self-merge
  /// (which would double-count every sample).  Note the fold is a left
  /// fold with a defined order everywhere in the library: RunningStats
  /// merging is only approximately associative in floating point, so
  /// reducing shards in any other shape than ascending-order left fold
  /// forfeits bitwise reproducibility.
  void merge(McResult&& other);

  stats::Gaussian tp_estimate() const;           ///< sample (mu, sigma)
  double yield_at(double t_target) const;        ///< fraction <= target
  /// 95% CI half-width of the yield estimate at t_target.
  double yield_ci95(double t_target) const;
};

/// Samples the analytical stage model: SD ~ correlated Gaussians, T_P = max.
class StageLevelMonteCarlo {
 public:
  explicit StageLevelMonteCarlo(const core::PipelineModel& model);

  /// Draws n_samples dies.  `rng` advances by exactly one engine draw (the
  /// run key); all sample draws come from per-shard child streams, so the
  /// result depends on (seed, n_samples, exec.samples_per_shard) but never
  /// on exec.threads.
  McResult run(std::size_t n_samples, stats::Rng& rng,
               const sim::ExecutionOptions& exec = {}) const;

 private:
  McResult run_shard(const sim::Shard& shard, const stats::Rng& root) const;

  std::vector<double> means_, sigmas_;
  stats::CorrelatedNormalSampler sampler_;
};

/// Full gate-level reference simulation.
class GateLevelMonteCarlo {
 public:
  /// Stage netlists are laid out left-to-right along the die; stage i's
  /// gates occupy die segment [i/N, (i+1)/N] so the systematic field
  /// correlates neighbouring stages more than distant ones.
  GateLevelMonteCarlo(std::vector<const netlist::Netlist*> stages,
                      const device::AlphaPowerModel& model,
                      const process::VariationSpec& spec,
                      const device::LatchModel& latch,
                      const sta::StaOptions& sta_opt = {});

  /// Same determinism contract as StageLevelMonteCarlo::run, strengthened
  /// for the block path: the result depends on (seed, n_samples,
  /// exec.samples_per_shard) but never on exec.threads or exec.block_width.
  /// Throws std::invalid_argument on exec.block_width outside
  /// [1, stats::lanes::max_width()] of the active SIMD backend (validated
  /// up front, never clamped).
  McResult run(std::size_t n_samples, stats::Rng& rng,
               const sim::ExecutionOptions& exec = {}) const;

  /// Distributed building block: plans the exact shard set run() plans for
  /// (n_samples, exec.samples_per_shard) and executes only the contiguous
  /// subrange [shard_begin, shard_end) on the local pool, returning one
  /// UNMERGED McResult per shard in ascending shard order.  `root_seed` is
  /// the run key — run() derives it as rng.fork().seed(), and a remote
  /// caller that folds every shard's part in ascending shard order
  /// reproduces run()'s result bit for bit, no matter how the shard space
  /// was split across processes or machines.  Same validation and
  /// determinism contract as run(); throws std::invalid_argument on an
  /// empty or out-of-bounds range.
  std::vector<McResult> run_shard_range(std::size_t n_samples,
                                        std::uint64_t root_seed,
                                        std::size_t shard_begin,
                                        std::size_t shard_end,
                                        const sim::ExecutionOptions& exec =
                                            {}) const;

  std::size_t stage_count() const noexcept { return stages_.size(); }

 private:
  /// Pooled per-shard scratch: block + scalar-tail sampling buffers, the
  /// SoA STA arena, per-lane RNG streams and the stage-major delay block.
  struct ShardScratch {
    std::vector<stats::Rng> lane_rngs;
    stats::RngBlock rng_block;          // SoA lane streams for latch draws
    std::vector<double> latch_dvth;     // [width] per-lane latch-site shift
    std::vector<double> latch_overhead; // [width] per-lane latch overhead
    process::DieBlock block;
    process::BlockWorkspace block_ws;
    std::vector<sta::StaBlockWorkspace> sta_block;  // one per stage, so each
                                                    // stays bound to its stage
    std::vector<double> stage_delay;  // [stage][lane], stage-major
    process::DieSample die;           // scalar tail
    process::DieWorkspace die_ws;
    sta::StaWorkspace sta_ws;
  };

  McResult run_shard(const sim::Shard& shard, const stats::Rng& root,
                     std::size_t block_width) const;

  std::vector<const netlist::Netlist*> stages_;
  const device::AlphaPowerModel* model_;
  process::VariationSpec spec_;
  device::LatchModel latch_;
  sta::StaOptions sta_opt_;
  process::VariationSampler sampler_;          // all sites, all stages
  std::vector<std::vector<std::size_t>> site_maps_;  // per stage: gate -> site
  std::vector<std::size_t> latch_sites_;       // site of each stage's latch
  mutable sim::WorkspacePool<ShardScratch> scratch_;  // sim-owned workspaces
};

}  // namespace statpipe::mc
