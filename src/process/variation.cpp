#include "process/variation.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/telemetry.h"
#include "stats/simd.h"

namespace statpipe::process {

double Technology::sigma_vth_rdf(double width_mult) const {
  if (width_mult <= 0.0)
    throw std::invalid_argument("sigma_vth_rdf: width_mult must be > 0");
  return avt / std::sqrt(width_mult * wmin * leff);
}

VariationSpec VariationSpec::intra_only() {
  VariationSpec s;
  s.sigma_vth_inter = 0.0;
  s.sigma_vth_systematic = 0.0;
  s.enable_rdf = true;
  return s;
}

VariationSpec VariationSpec::inter_only(double sigma_v) {
  VariationSpec s;
  s.sigma_vth_inter = sigma_v;
  s.sigma_vth_systematic = 0.0;
  s.enable_rdf = false;
  return s;
}

VariationSpec VariationSpec::inter_intra(double sigma_v_inter,
                                         double sigma_v_systematic,
                                         double corr_length) {
  VariationSpec s;
  s.sigma_vth_inter = sigma_v_inter;
  s.sigma_vth_systematic = sigma_v_systematic;
  s.correlation_length = corr_length;
  s.enable_rdf = true;
  return s;
}

double DieSample::dvth_at(std::size_t i, double width_mult) const {
  double d = dvth_inter;
  if (i < dvth_systematic.size()) d += dvth_systematic[i];
  if (i < dvth_random.size()) d += dvth_random[i] / std::sqrt(width_mult);
  return d;
}

double DieSample::dvth_shared_at(std::size_t i) const {
  double d = dvth_inter;
  if (i < dvth_systematic.size()) d += dvth_systematic[i];
  return d;
}

double DieSample::dl_rel_at(std::size_t i) const {
  double d = dl_inter_rel;
  if (i < dl_systematic_rel.size()) d += dl_systematic_rel[i];
  return d;
}

double DieBlock::dvth_at(std::size_t i, std::size_t j,
                         double width_mult) const {
  double d = dvth_inter[j];
  if (!dvth_systematic.empty()) d += dvth_systematic[i * width + j];
  if (!dvth_random.empty())
    d += dvth_random[i * width + j] / std::sqrt(width_mult);
  return d;
}

double DieBlock::dvth_shared_at(std::size_t i, std::size_t j) const {
  double d = dvth_inter[j];
  if (!dvth_systematic.empty()) d += dvth_systematic[i * width + j];
  return d;
}

double DieBlock::dl_rel_at(std::size_t i, std::size_t j) const {
  double d = dl_inter_rel[j];
  if (!dl_systematic_rel.empty()) d += dl_systematic_rel[i * width + j];
  return d;
}

VariationSampler::VariationSampler(Technology tech, VariationSpec spec,
                                   std::vector<double> site_positions)
    : tech_(tech), spec_(spec), positions_(std::move(site_positions)) {
  if (positions_.empty())
    throw std::invalid_argument("VariationSampler: no device sites");
  if (spec_.sigma_vth_inter < 0.0 || spec_.sigma_vth_systematic < 0.0)
    throw std::invalid_argument("VariationSampler: negative sigma");
  has_systematic_ = spec_.sigma_vth_systematic > 0.0 ||
                    spec_.sigma_l_systematic_rel > 0.0;
  if (has_systematic_) {
    systematic_chol_ = stats::cholesky_psd(
        stats::spatial_correlation(positions_, spec_.correlation_length));
  }
}

DieSample VariationSampler::sample(stats::Rng& rng) const {
  DieSample d;
  DieWorkspace ws;
  sample_into(rng, d, ws);
  return d;
}

void VariationSampler::sample_into(stats::Rng& rng, DieSample& d,
                                   DieWorkspace& ws) const {
  const std::size_t n = positions_.size();
  // Inter draws as sigma * normal() — phrased through the strided core so
  // the scalar path computes the exact expression the lane-batched kernel
  // writes (a literal normal(0.0, sigma) would prepend `0.0 +`, which
  // flushes a -0.0 draw to +0.0 and silently breaks the bitwise contract
  // in that one-in-2^55 corner).
  d.dvth_inter = 0.0;
  if (spec_.sigma_vth_inter > 0.0)
    rng.normal_fill_scaled(spec_.sigma_vth_inter, &d.dvth_inter, 1);
  d.dl_inter_rel = 0.0;
  if (spec_.sigma_l_inter_rel > 0.0)
    rng.normal_fill_scaled(spec_.sigma_l_inter_rel, &d.dl_inter_rel, 1);
  d.dvth_systematic.clear();
  d.dl_systematic_rel.clear();
  d.dvth_random.clear();

  if (has_systematic_) {
    // One correlated standard-normal field drives both Vth and L systematic
    // components (they share the same lithographic origin).
    rng.normal_fill(ws.z, n);
    ws.field.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      double s = 0.0;
      for (std::size_t j = 0; j <= i; ++j)
        s += systematic_chol_(i, j) * ws.z[j];
      ws.field[i] = s;
    }
    if (spec_.sigma_vth_systematic > 0.0) {
      d.dvth_systematic.resize(n);
      for (std::size_t i = 0; i < n; ++i)
        d.dvth_systematic[i] = spec_.sigma_vth_systematic * ws.field[i];
    }
    if (spec_.sigma_l_systematic_rel > 0.0) {
      d.dl_systematic_rel.resize(n);
      for (std::size_t i = 0; i < n; ++i)
        d.dl_systematic_rel[i] = spec_.sigma_l_systematic_rel * ws.field[i];
    }
  }

  if (spec_.enable_rdf) {
    const double s_rdf = tech_.sigma_vth_rdf(1.0);  // unit-width sigma
    d.dvth_random.resize(n);
    rng.normal_fill_scaled(s_rdf, d.dvth_random.data(), n);
  }
}

void VariationSampler::sample_block_into(stats::Rng* lane_rngs,
                                         std::size_t width, DieBlock& d,
                                         BlockWorkspace& ws) const {
  // Single source of truth for the kernel width rule: throws on 0 or
  // beyond the active SIMD backend's max_width() — validated, never
  // clamped.
  const std::size_t W = stats::lanes::validated_width(width);
  const std::size_t n = positions_.size();
  d.width = W;
  d.sites = n;
  d.dvth_inter.resize(W);
  d.dl_inter_rel.resize(W);
  const bool sys_vth = has_systematic_ && spec_.sigma_vth_systematic > 0.0;
  const bool sys_l = has_systematic_ && spec_.sigma_l_systematic_rel > 0.0;
  d.dvth_systematic.resize(sys_vth ? n * W : 0);
  d.dl_systematic_rel.resize(sys_l ? n * W : 0);
  d.dvth_random.resize(spec_.enable_rdf ? n * W : 0);

  // Lane j's draw sequence is exactly sample_into's on lane_rngs[j] (inter
  // draws, the field's standard normals, then per-site RDF); each lane owns
  // its stream, so batching the draws reorders them only *across* lanes,
  // which no lane's stream can observe.  All draws below run through one
  // RngBlock — W interleaved engine states advanced by the active SIMD
  // backend's draw kernels (stats/simd.h normal_fill_lanes), each lane
  // bitwise on its own stream — and the advanced states are written back
  // to lane_rngs at the end for the consumers that follow (latch draws).
  //
  // Phase 1 — inter shifts, then the field's standard normals drawn
  // site-major straight into ws.zt (lane j at [i*W + j]): the layout the
  // field multiply wants, with no per-lane transpose pass.
  // mc.draw / mc.chol spans: the block-MC phase breakdown the bench harness
  // and the Chrome trace both read (docs/OBSERVABILITY.md).  Phases 1 and 3
  // fold into one mc.draw aggregate; the field multiply is mc.chol.
  static const obs::SpanId kDraw("mc.draw");
  static const obs::SpanId kChol("mc.chol");
  stats::RngBlock rb;
  rb.pack(lane_rngs, W);
  {
    obs::ScopedSpan draw_span(kDraw, static_cast<std::int64_t>(W));
    if (spec_.sigma_vth_inter > 0.0)
      rb.normal_fill(spec_.sigma_vth_inter, d.dvth_inter.data(), 1, W);
    else
      std::fill(d.dvth_inter.begin(), d.dvth_inter.end(), 0.0);
    if (spec_.sigma_l_inter_rel > 0.0)
      rb.normal_fill(spec_.sigma_l_inter_rel, d.dl_inter_rel.data(), 1, W);
    else
      std::fill(d.dl_inter_rel.begin(), d.dl_inter_rel.end(), 0.0);
    if (has_systematic_) {
      ws.zt.resize(n * W);
      rb.normal_fill(1.0, ws.zt.data(), n, W);
    }
  }

  // Phase 2 — one lane-batched lower-triangular multiply for all W fields
  // (dispatched to the active SIMD backend; per lane the adds run k
  // ascending, exactly sample_into's order), then the per-component sigma
  // scaling as contiguous SoA sweeps.
  if (has_systematic_) {
    obs::ScopedSpan chol_span(kChol, static_cast<std::int64_t>(W));
    ws.fieldw.resize(n * W);
    stats::simd::kernels().chol_field_lanes(systematic_chol_.data(), n,
                                            systematic_chol_.size(),
                                            ws.zt.data(), W,
                                            ws.fieldw.data());
    if (sys_vth)
      for (std::size_t i = 0; i < n * W; ++i)
        d.dvth_systematic[i] = spec_.sigma_vth_systematic * ws.fieldw[i];
    if (sys_l)
      for (std::size_t i = 0; i < n * W; ++i)
        d.dl_systematic_rel[i] = spec_.sigma_l_systematic_rel * ws.fieldw[i];
  }

  // Phase 3 — RDF draws, batched site-major into the block (the target is
  // already [i*W + j], exactly the kernel's output layout).
  if (spec_.enable_rdf) {
    obs::ScopedSpan draw_span(kDraw, static_cast<std::int64_t>(W));
    const double s_rdf = tech_.sigma_vth_rdf(1.0);  // unit-width sigma
    rb.normal_fill(s_rdf, d.dvth_random.data(), n, W);
  }
  rb.unpack(lane_rngs);
}

double VariationSampler::implied_correlation(double sigma_shared,
                                             double sigma_private) {
  const double vs = sigma_shared * sigma_shared;
  const double vp = sigma_private * sigma_private;
  if (vs + vp == 0.0) return 0.0;
  return vs / (vs + vp);
}

std::vector<double> linear_sites(std::size_t n) {
  if (n == 0) throw std::invalid_argument("linear_sites: n == 0");
  std::vector<double> p(n);
  if (n == 1) {
    p[0] = 0.5;
    return p;
  }
  for (std::size_t i = 0; i < n; ++i)
    p[i] = static_cast<double>(i) / static_cast<double>(n - 1);
  return p;
}

}  // namespace statpipe::process
