// Process-variation model for sub-100nm CMOS, mirroring the decomposition
// used in the paper (section 2.1):
//
//   dVth(total) = dVth(inter-die)                 -- one draw per die,
//                                                    shared by every device
//             + dVth(intra, systematic/spatial)   -- correlated across the
//                                                    die with a decay length
//             + dVth(intra, random / RDF)         -- independent per device,
//                                                    sigma ~ Avt/sqrt(W L)
//
// Channel-length variation uses the same inter/systematic split (RDF does
// not apply to L).  These parameter shifts feed the device module's
// alpha-power delay model, which converts them into gate-delay shifts —
// the stand-in for the paper's 70nm-BPTM SPICE Monte-Carlo.
//
// Layer contract (src/process, see docs/ARCHITECTURE.md): owns the
// variation decomposition and correlated die sampling — parameter space
// only, never delays.  May depend on src/stats alone; must not know about
// devices, netlists, timing or anything above them.
#pragma once

#include <cstdint>
#include <vector>

#include "stats/lanes.h"
#include "stats/matrix.h"
#include "stats/rng.h"

namespace statpipe::process {

/// Nominal technology parameters, loosely matched to the 70nm Berkeley
/// Predictive Technology Model node the paper simulates.
struct Technology {
  double vdd = 1.0;          ///< supply voltage [V]
  double vth0 = 0.20;        ///< nominal NMOS threshold [V]
  double leff = 70e-9;       ///< nominal effective channel length [m]
  double wmin = 140e-9;      ///< minimum device width [m]
  double alpha = 1.3;        ///< alpha-power-law velocity-saturation index
  double tau_ps = 4.0;       ///< delay of a min inverter driving one copy [ps]

  /// Avt mismatch coefficient: sigma_Vth(RDF) = avt / sqrt(W*L) [V*m].
  /// Chosen so a minimum device (W=wmin, L=leff) sees ~30 mV RDF sigma,
  /// consistent with sub-100nm random-dopant-fluctuation data [6].
  double avt = 30e-3 * 9.899494936611665e-8;  // 30mV * sqrt(140e-9 * 70e-9)

  /// sigma_Vth(RDF) for a device of `width_mult` minimum widths.
  double sigma_vth_rdf(double width_mult) const;
};

/// Strengths of each variation component.
struct VariationSpec {
  double sigma_vth_inter = 0.020;      ///< inter-die Vth sigma [V]
  double sigma_vth_systematic = 0.0;   ///< intra-die spatially-correlated [V]
  double correlation_length = 0.5;     ///< decay length for systematic field,
                                       ///< in normalized die units
  bool enable_rdf = true;              ///< random (RDF) component on/off
  double sigma_l_inter_rel = 0.0;      ///< inter-die dL/L (relative)
  double sigma_l_systematic_rel = 0.0; ///< systematic dL/L (relative)

  /// Named presets used across benches (match the paper's figure legends).
  static VariationSpec intra_only();                  ///< RDF only
  static VariationSpec inter_only(double sigma_v = 0.040);
  static VariationSpec inter_intra(double sigma_v_inter,
                                   double sigma_v_systematic = 0.010,
                                   double corr_length = 0.5);
};

/// One sampled die: parameter shifts for every device site.
struct DieSample {
  double dvth_inter = 0.0;              ///< shared Vth shift [V]
  double dl_inter_rel = 0.0;            ///< shared relative L shift
  std::vector<double> dvth_systematic;  ///< per-site systematic Vth [V]
  std::vector<double> dl_systematic_rel;///< per-site systematic dL/L
  std::vector<double> dvth_random;      ///< per-site RDF Vth [V] (unit width;
                                        ///< scale by 1/sqrt(w) at the device)

  /// Total Vth shift at site i for a device of `width_mult` min-widths.
  double dvth_at(std::size_t i, double width_mult) const;
  /// Shared (inter + systematic) Vth shift at site i, excluding RDF — the
  /// shift seen by multi-transistor cells like latches whose internal RDF
  /// is modeled separately (device::LatchTiming::random_sigma_rel).
  double dvth_shared_at(std::size_t i) const;
  /// Total relative channel-length shift at site i.
  double dl_rel_at(std::size_t i) const;
};

/// Reusable scratch buffers for VariationSampler::sample_into — one per
/// Monte-Carlo shard, so the per-sample loop is allocation-free.
struct DieWorkspace {
  std::vector<double> z;      ///< standard-normal draws for the field
  std::vector<double> field;  ///< correlated systematic field
};

/// Structure-of-arrays block of `width` sampled dies — the unit the
/// block-vectorized sampling/STA kernel layer streams through the gate-level
/// Monte-Carlo hot path.  Per-site arrays are site-major with lanes
/// contiguous: value of site i on die (lane) j lives at [i * width + j], so
/// one gate visit of the block sample STA reads `width` consecutive doubles.
/// Component presence mirrors DieSample: an absent component's vector is
/// empty, and lane accessors execute exactly the scalar DieSample accessors'
/// floating-point sequence (same adds, same order) so per-die results are
/// bitwise-identical to the scalar path.
struct DieBlock {
  std::size_t width = 0;  ///< lanes (dies) per block, <= the active SIMD
                          ///< backend's stats::lanes::max_width()
  std::size_t sites = 0;  ///< device sites per die
  std::vector<double> dvth_inter;         ///< [width] shared Vth shift [V]
  std::vector<double> dl_inter_rel;       ///< [width] shared relative L shift
  std::vector<double> dvth_systematic;    ///< [sites*width] or empty
  std::vector<double> dl_systematic_rel;  ///< [sites*width] or empty
  std::vector<double> dvth_random;        ///< [sites*width] or empty (unit width)

  /// Total Vth shift at site i on lane j for a device of `width_mult`
  /// min-widths — DieSample::dvth_at, lane-indexed.
  double dvth_at(std::size_t i, std::size_t j, double width_mult) const;
  /// Shared (inter + systematic) Vth shift at site i on lane j, excluding
  /// RDF — DieSample::dvth_shared_at, lane-indexed.
  double dvth_shared_at(std::size_t i, std::size_t j) const;
  /// Total relative channel-length shift at site i on lane j.
  double dl_rel_at(std::size_t i, std::size_t j) const;
};

/// Reusable scratch for VariationSampler::sample_block_into — the SoA
/// buffers the lane-batched draw kernel writes and the field multiply
/// (stats/simd.h's chol_field_lanes) reads, one per Monte-Carlo shard.
/// Layout is backend-agnostic plain arrays: which SIMD backend consumes
/// them never changes their shape.
struct BlockWorkspace {
  std::vector<double> zt;     ///< [sites*width] site-major field draws
  std::vector<double> fieldw; ///< [sites*width] site-major correlated field
};

/// Generates correlated DieSamples for a fixed set of device sites.
///
/// Sites are positions in normalized die coordinates [0,1]; the systematic
/// field over sites has correlation exp(-d/correlation_length).  The
/// Cholesky factor of that field is computed once at construction.
/// Sampling is const and reentrant: concurrent sample()/sample_into calls
/// on one sampler are safe as long as each caller owns its Rng/workspace.
class VariationSampler {
 public:
  VariationSampler(Technology tech, VariationSpec spec,
                   std::vector<double> site_positions);

  const Technology& technology() const noexcept { return tech_; }
  const VariationSpec& spec() const noexcept { return spec_; }
  std::size_t site_count() const noexcept { return positions_.size(); }

  /// Draw one die.
  DieSample sample(stats::Rng& rng) const;

  /// Draw one die into caller-owned storage (identical draw sequence to
  /// sample()); `out` and `ws` are reused across calls.
  void sample_into(stats::Rng& rng, DieSample& out, DieWorkspace& ws) const;

  /// Draw `width` correlated dies into an SoA block in one call: every draw
  /// — inter shifts, the systematic field's standard normals (written
  /// site-major directly, no transpose pass) and RDF — runs lane-batched
  /// through the active SIMD backend's draw kernels (stats::RngBlock over
  /// stats/simd.h's normal_fill_lanes), and the field's lower-triangular
  /// multiply lane-batched through chol_field_lanes, per-lane add order
  /// unchanged.  Lane j consumes lane_rngs[j] with exactly the draw
  /// sequence of sample_into (lane_rngs[j] is left advanced accordingly),
  /// so lane j of the block is bitwise-identical to a scalar sample_into
  /// call on the same Rng state — the equivalence the block Monte-Carlo
  /// path's determinism rests on.  `out` and `ws` are reused across calls;
  /// width must be in [1, stats::lanes::max_width()] for the active backend
  /// (validated, never clamped).
  void sample_block_into(stats::Rng* lane_rngs, std::size_t width,
                         DieBlock& out, BlockWorkspace& ws) const;

  /// Effective stage-to-stage delay correlation implied by the spec when a
  /// stage's delay sigma decomposes into inter + systematic + random parts:
  /// rho = shared_variance / total_variance.  Used by the analytical side
  /// to build stage correlation matrices consistent with MC.
  static double implied_correlation(double sigma_shared, double sigma_private);

 private:
  Technology tech_;
  VariationSpec spec_;
  std::vector<double> positions_;
  stats::Matrix systematic_chol_;  // empty when sigma_vth_systematic == 0
  bool has_systematic_ = false;
};

/// Evenly spaced site positions in [0,1] — the default placement for a
/// pipeline's stages or a chain's gates along the die.
std::vector<double> linear_sites(std::size_t n);

}  // namespace statpipe::process
