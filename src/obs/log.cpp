#include "obs/log.h"

#include <cstdio>

#include "obs/telemetry.h"

namespace statpipe::obs {

namespace {

const char* severity_tag(Severity sev) {
  switch (sev) {
    case Severity::kInfo: return "info";
    case Severity::kWarn: return "warn";
    case Severity::kError: return "error";
  }
  return "?";
}

}  // namespace

void log_event(Severity sev, const char* subsystem, const std::string& message,
               bool console) {
  const bool print = sev != Severity::kInfo || console;
  if (!print && !enabled()) return;

  const std::int64_t ts = now_ns();
  if (print) {
    std::fprintf(stderr, "[%12.3fms] [%s] [%s] %s\n",
                 static_cast<double>(ts) / 1e6, severity_tag(sev), subsystem,
                 message.c_str());
  }
  if (enabled()) {
    static Counter c_info("obs.log.info");
    static Counter c_warn("obs.log.warn");
    static Counter c_error("obs.log.error");
    switch (sev) {
      case Severity::kInfo: c_info.add(); break;
      case Severity::kWarn: c_warn.add(); break;
      case Severity::kError: c_error.add(); break;
    }
    record_instant(subsystem, std::string(severity_tag(sev)) + ": " + message);
  }
}

}  // namespace statpipe::obs
