// Runtime telemetry: process-wide named counters, span timers and two
// exporters (JSON metrics snapshot, Chrome trace-event file) — strictly
// OUT-OF-BAND of the bitwise contract.
//
// Design constraints (docs/OBSERVABILITY.md):
//  * Compile-always, runtime-toggled.  Every instrumentation site costs one
//    relaxed atomic load + a predictable branch while telemetry is disabled
//    — no allocation, no clock read, no lock.  Toggle with set_enabled()
//    or by setting STATPIPE_TRACE=<path> in the environment (which also
//    arranges a Chrome trace dump at process exit; "%p" in the path is
//    replaced by the pid so spawned worker fleets don't clobber one file).
//  * Determinism: telemetry reads clocks and bumps counters but NEVER
//    feeds anything back into computation — results are bitwise-identical
//    with telemetry enabled and disabled at every thread count, block
//    width and process count (tests/test_obs.cpp enforces this).
//  * Counters are lock-free in steady state: each thread owns a cell per
//    counter (single-writer relaxed atomics), folded across threads —
//    live and exited — only when a snapshot is taken.
//  * Spans aggregate per thread (count/total/min/max ns, exact even when
//    the trace buffer saturates) and, when a trace is being collected,
//    append one bounded trace event per span; overflow is counted in
//    `obs.trace.dropped`, never reallocated without bound.
//
// Naming scheme: dotted lower-case paths, subsystem first — `mc.draw`,
// `sta.grid_block`, `sim.pool.tasks`, `dist.tx_frames` (see
// docs/OBSERVABILITY.md for the full vocabulary).  Counter and span names
// must be string literals (the registry stores pointers into them).
//
// Layer contract (src/obs, see docs/ARCHITECTURE.md): a cross-cutting LEAF
// subsystem — it includes nothing from src/ and every other layer may
// include it.  Nothing in obs may influence results.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace statpipe::obs {

namespace detail {
extern std::atomic<bool> g_enabled;
}  // namespace detail

/// One relaxed load: the gate every instrumentation site checks first.
inline bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Master switch.  Enabling starts accepting events; disabling stops them
/// (already-recorded data stays until reset()).  Never affects results.
void set_enabled(bool on) noexcept;

/// Monotonic nanoseconds since process telemetry start (steady clock).
/// Valid whether or not telemetry is enabled.
std::int64_t now_ns() noexcept;

/// Registered named counter.  Registration is process-wide and permanent
/// (names are never recycled); construct once per site, typically as a
/// function-local static:
///   static obs::Counter c("dist.tx_frames");
///   c.add(1);
/// `name` must be a string literal (or otherwise outlive the process).
/// Throws std::length_error when the registry slot budget is exhausted.
class Counter {
 public:
  explicit Counter(const char* name);
  /// Adds n to this thread's cell.  No-op (one relaxed load + branch)
  /// while telemetry is disabled.
  void add(std::uint64_t n = 1) const noexcept {
    if (enabled()) add_slow(id_, n);
  }

 private:
  static void add_slow(std::uint32_t id, std::uint64_t n) noexcept;
  std::uint32_t id_;
};

/// Registered span name — the span analogue of Counter.  Same rules:
/// function-local static, literal name, permanent registration.
class SpanId {
 public:
  explicit SpanId(const char* name);
  std::uint32_t id() const noexcept { return id_; }
  const char* name() const noexcept { return name_; }

 private:
  std::uint32_t id_;
  const char* name_;
};

/// Records one completed span [t0_ns, t1_ns) against `id`: folds into the
/// per-thread aggregate and, when `trace_event` is true, appends one trace
/// event (bounded; overflow counted, not grown).  `lane` is free context
/// (< 0 = none) shown as args.lane in the trace.  Call only when enabled()
/// — ScopedSpan does this for you; use record_span directly for spans
/// whose start and end live in different scopes (e.g. the coordinator's
/// assign→commit range latency).
void record_span(const SpanId& id, std::int64_t t0_ns, std::int64_t t1_ns,
                 std::int64_t lane = -1, bool trace_event = true) noexcept;

/// RAII span timer.  Disabled telemetry costs the enabled() check in the
/// constructor and a dead-branch in the destructor — no clock reads.
///   static const obs::SpanId kDraw("mc.draw");
///   obs::ScopedSpan span(kDraw, /*lane=*/W);
class ScopedSpan {
 public:
  explicit ScopedSpan(const SpanId& id, std::int64_t lane = -1,
                      bool trace_event = true) noexcept
      : id_(&id), lane_(lane), trace_(trace_event),
        t0_(enabled() ? now_ns() : kInactive) {}
  ~ScopedSpan() {
    if (t0_ != kInactive) record_span(*id_, t0_, now_ns(), lane_, trace_);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  static constexpr std::int64_t kInactive = -1;
  const SpanId* id_;
  std::int64_t lane_;
  bool trace_;
  std::int64_t t0_;
};

/// Appends an instant event (Chrome "i" phase) with a freeform message —
/// the trace face of the structured logger (obs/log.h).  No-op while
/// disabled.  `name` must be a string literal.
void record_instant(const char* name, const std::string& message) noexcept;

// ------------------------------------------------------------- snapshots

struct CounterValue {
  std::string name;
  std::uint64_t value = 0;
};

struct SpanStat {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t min_ns = 0;
  std::uint64_t max_ns = 0;
};

/// Folded process-wide view: every live thread's cells plus everything
/// retired by exited threads, both sorted by name.  Counters and span
/// aggregates are exact; zero-count registered names are included (value
/// 0), so a snapshot always carries the full registered vocabulary.
struct MetricsSnapshot {
  std::vector<CounterValue> counters;
  std::vector<SpanStat> spans;

  /// Value of a counter by name (0 when absent).
  std::uint64_t counter(const std::string& name) const noexcept;
  /// Aggregate for a span name (zeroed stat when absent).
  SpanStat span(const std::string& name) const noexcept;
};

MetricsSnapshot snapshot();

/// Stable machine-readable schema (pinned by tests/test_obs.cpp):
///   {"schema": "statpipe-metrics-v1",
///    "counters": {"<name>": <u64>, ...},            // name-sorted
///    "spans": {"<name>": {"count": <u64>, "total_ns": <u64>,
///                          "min_ns": <u64>, "max_ns": <u64>}, ...}}
std::string metrics_json(const MetricsSnapshot& snap);

/// snapshot() + metrics_json() to a file.  Throws std::runtime_error when
/// the file cannot be written.
void write_metrics_json(const std::string& path);

/// Writes every collected trace event (spans, instants, thread-name
/// metadata) as a Chrome trace-event JSON object — loadable by
/// chrome://tracing and Perfetto, validated by tools/trace_check.py.
/// Timestamps are microseconds since telemetry start; "pid" is the real
/// process id so multi-process traces stay distinguishable.  Throws
/// std::runtime_error when the file cannot be written.
void write_chrome_trace(const std::string& path);

/// Zeroes every counter cell, span aggregate and trace buffer (live and
/// retired) without unregistering names.  Test/bench support — production
/// code never resets.
void reset();

/// The trace path from STATPIPE_TRACE after %p substitution ("" when the
/// variable is unset).  When non-empty, telemetry was auto-enabled at
/// startup and write_chrome_trace(trace_env_path()) runs at process exit.
const std::string& trace_env_path();

}  // namespace statpipe::obs
