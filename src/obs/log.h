// Structured logging on top of the telemetry layer (obs/telemetry.h).
//
// Every record carries a monotonic timestamp (obs::now_ns), a severity and
// a subsystem tag.  A record goes to two sinks:
//  * console (stderr): severity kInfo is gated by the caller's `console`
//    flag (the old `verbose` toggles in src/dist map straight onto it);
//    kWarn and kError always print — they replace the previously
//    unconditional stderr warnings (e.g. abnormal worker exits).
//  * trace: when telemetry is enabled, an instant event lands in the
//    Chrome trace under the subsystem's name, and per-severity counters
//    (obs.log.info / obs.log.warn / obs.log.error) are bumped.
//
// Like all of obs, logging is out-of-band: it never alters results, and
// with telemetry disabled and console off a call costs one relaxed load
// plus a branch.  `subsystem` must be a string literal.
#pragma once

#include <string>

namespace statpipe::obs {

enum class Severity { kInfo, kWarn, kError };

/// Emits one structured log record.  `console` gates only kInfo; see above.
void log_event(Severity sev, const char* subsystem, const std::string& message,
               bool console);

/// Convenience wrappers.
inline void log_info(const char* subsystem, const std::string& message,
                     bool console) {
  log_event(Severity::kInfo, subsystem, message, console);
}
inline void log_warn(const char* subsystem, const std::string& message) {
  log_event(Severity::kWarn, subsystem, message, /*console=*/true);
}
inline void log_error(const char* subsystem, const std::string& message) {
  log_event(Severity::kError, subsystem, message, /*console=*/true);
}

}  // namespace statpipe::obs
