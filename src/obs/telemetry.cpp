#include "obs/telemetry.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string_view>
#include <unordered_map>

#include <unistd.h>

namespace statpipe::obs {

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

void set_enabled(bool on) noexcept {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

std::int64_t now_ns() noexcept {
  static const auto t0 = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

namespace {

// Registry slot budgets.  Instrumentation sites are function-local statics,
// so these bound the *vocabulary*, not the event volume; exceeding them is
// a programming error surfaced loudly at registration.
constexpr std::size_t kMaxCounters = 256;
constexpr std::size_t kMaxSpans = 256;
// Per-thread trace-event cap.  Overflow increments obs.trace.dropped
// (aggregates stay exact); the buffer is never grown past this.
constexpr std::size_t kMaxTraceEvents = 1u << 16;

struct SpanAgg {
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t min_ns = UINT64_MAX;
  std::uint64_t max_ns = 0;
};

struct TraceEvent {
  const char* name = nullptr;  // registered literal — stable for process life
  std::int64_t ts_ns = 0;
  std::int64_t dur_ns = 0;  // ignored for instants
  std::int64_t lane = -1;
  bool instant = false;
  std::string message;  // instants only
};

// All telemetry a single thread ever produced.  Counter cells are
// single-writer (the owning thread) relaxed atomics so snapshots can read
// them without stopping the world; span aggregates and trace events are
// colder (one clock-bracketed event at a time) and take the per-thread
// mutex, which is uncontended except against a concurrent snapshot.
struct ThreadState {
  std::atomic<std::uint64_t> cells[kMaxCounters];
  std::mutex mu;
  SpanAgg aggs[kMaxSpans];
  std::vector<TraceEvent> events;
  std::uint64_t dropped = 0;
  std::uint64_t tid = 0;

  ThreadState() {
    for (auto& c : cells) c.store(0, std::memory_order_relaxed);
  }
};

struct Registry {
  std::mutex mu;
  std::vector<const char*> counter_names;
  std::vector<const char*> span_names;
  std::unordered_map<std::string_view, std::uint32_t> counter_ids;
  std::unordered_map<std::string_view, std::uint32_t> span_ids;
  // Owns every thread's state for the life of the process — threads are
  // never "forgotten", so exited workers' counts keep contributing to
  // snapshots and the final trace.  Bounded by total threads ever created.
  std::vector<std::unique_ptr<ThreadState>> threads;
};

Registry& registry() {
  static Registry r;
  return r;
}

// Reserved counter ids, registered before any user counter.
std::uint32_t dropped_counter_id() {
  static const std::uint32_t id = [] {
    auto& r = registry();
    std::lock_guard<std::mutex> lk(r.mu);
    r.counter_names.push_back("obs.trace.dropped");
    r.counter_ids.emplace("obs.trace.dropped", 0u);
    return 0u;
  }();
  return id;
}

ThreadState* tls_state() {
  thread_local ThreadState* s = [] {
    auto st = std::make_unique<ThreadState>();
    auto& r = registry();
    std::lock_guard<std::mutex> lk(r.mu);
    st->tid = r.threads.size();
    r.threads.push_back(std::move(st));
    return r.threads.back().get();
  }();
  return s;
}

std::uint32_t register_name(std::vector<const char*>& names,
                            std::unordered_map<std::string_view, std::uint32_t>& ids,
                            std::size_t budget, const char* name,
                            const char* kind) {
  dropped_counter_id();  // reserve id 0 before any user registration
  auto& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  auto it = ids.find(name);
  if (it != ids.end()) return it->second;
  if (names.size() >= budget)
    throw std::length_error(std::string("obs: ") + kind +
                            " registry budget exhausted at \"" + name + "\"");
  const auto id = static_cast<std::uint32_t>(names.size());
  names.push_back(name);
  ids.emplace(name, id);
  return id;
}

void push_event(ThreadState* s, TraceEvent ev) {
  // Caller holds s->mu.
  if (s->events.size() >= kMaxTraceEvents) {
    ++s->dropped;
    return;
  }
  if (s->events.capacity() == 0) s->events.reserve(1024);
  s->events.push_back(std::move(ev));
}

std::string& trace_path_storage() {
  static std::string path;
  return path;
}

std::string json_escape(std::string_view in) {
  std::string out;
  out.reserve(in.size() + 8);
  for (char c : in) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_file_or_throw(const std::string& path, const std::string& body) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) throw std::runtime_error("obs: cannot open \"" + path + "\" for write");
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  if (std::fclose(f) != 0 || !ok)
    throw std::runtime_error("obs: short write to \"" + path + "\"");
}

}  // namespace

Counter::Counter(const char* name)
    : id_(register_name(registry().counter_names, registry().counter_ids,
                        kMaxCounters, name, "counter")) {}

void Counter::add_slow(std::uint32_t id, std::uint64_t n) noexcept {
  ThreadState* s = tls_state();
  auto& cell = s->cells[id];
  cell.store(cell.load(std::memory_order_relaxed) + n,
             std::memory_order_relaxed);
}

SpanId::SpanId(const char* name)
    : id_(register_name(registry().span_names, registry().span_ids, kMaxSpans,
                        name, "span")),
      name_(name) {}

void record_span(const SpanId& id, std::int64_t t0_ns, std::int64_t t1_ns,
                 std::int64_t lane, bool trace_event) noexcept {
  const std::int64_t dur = t1_ns > t0_ns ? t1_ns - t0_ns : 0;
  ThreadState* s = tls_state();
  std::lock_guard<std::mutex> lk(s->mu);
  SpanAgg& a = s->aggs[id.id()];
  ++a.count;
  a.total_ns += static_cast<std::uint64_t>(dur);
  a.min_ns = std::min(a.min_ns, static_cast<std::uint64_t>(dur));
  a.max_ns = std::max(a.max_ns, static_cast<std::uint64_t>(dur));
  if (trace_event) {
    TraceEvent ev;
    ev.name = id.name();
    ev.ts_ns = t0_ns;
    ev.dur_ns = dur;
    ev.lane = lane;
    push_event(s, std::move(ev));
  }
}

void record_instant(const char* name, const std::string& message) noexcept {
  if (!enabled()) return;
  ThreadState* s = tls_state();
  std::lock_guard<std::mutex> lk(s->mu);
  TraceEvent ev;
  ev.name = name;
  ev.ts_ns = now_ns();
  ev.instant = true;
  ev.message = message;
  push_event(s, std::move(ev));
}

std::uint64_t MetricsSnapshot::counter(const std::string& name) const noexcept {
  for (const auto& c : counters)
    if (c.name == name) return c.value;
  return 0;
}

SpanStat MetricsSnapshot::span(const std::string& name) const noexcept {
  for (const auto& s : spans)
    if (s.name == name) return s;
  SpanStat zero;
  zero.name = name;
  return zero;
}

MetricsSnapshot snapshot() {
  dropped_counter_id();
  auto& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);

  std::vector<std::uint64_t> counter_totals(r.counter_names.size(), 0);
  std::vector<SpanAgg> span_totals(r.span_names.size());
  for (const auto& t : r.threads) {
    for (std::size_t i = 0; i < counter_totals.size(); ++i)
      counter_totals[i] += t->cells[i].load(std::memory_order_relaxed);
    std::lock_guard<std::mutex> tlk(t->mu);
    counter_totals[dropped_counter_id()] += t->dropped;
    for (std::size_t i = 0; i < span_totals.size(); ++i) {
      const SpanAgg& a = t->aggs[i];
      if (a.count == 0) continue;
      SpanAgg& out = span_totals[i];
      out.count += a.count;
      out.total_ns += a.total_ns;
      out.min_ns = std::min(out.min_ns, a.min_ns);
      out.max_ns = std::max(out.max_ns, a.max_ns);
    }
  }

  MetricsSnapshot snap;
  snap.counters.reserve(counter_totals.size());
  for (std::size_t i = 0; i < counter_totals.size(); ++i)
    snap.counters.push_back({r.counter_names[i], counter_totals[i]});
  snap.spans.reserve(span_totals.size());
  for (std::size_t i = 0; i < span_totals.size(); ++i) {
    const SpanAgg& a = span_totals[i];
    SpanStat st;
    st.name = r.span_names[i];
    st.count = a.count;
    st.total_ns = a.total_ns;
    st.min_ns = a.count ? a.min_ns : 0;
    st.max_ns = a.max_ns;
    snap.spans.push_back(std::move(st));
  }
  auto by_name = [](const auto& a, const auto& b) { return a.name < b.name; };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.spans.begin(), snap.spans.end(), by_name);
  return snap;
}

std::string metrics_json(const MetricsSnapshot& snap) {
  std::string out = "{\"schema\":\"statpipe-metrics-v1\",\"counters\":{";
  bool first = true;
  for (const auto& c : snap.counters) {
    if (!first) out += ',';
    first = false;
    out += '"' + json_escape(c.name) + "\":" + std::to_string(c.value);
  }
  out += "},\"spans\":{";
  first = true;
  for (const auto& s : snap.spans) {
    if (!first) out += ',';
    first = false;
    out += '"' + json_escape(s.name) + "\":{\"count\":" +
           std::to_string(s.count) + ",\"total_ns\":" +
           std::to_string(s.total_ns) + ",\"min_ns\":" +
           std::to_string(s.min_ns) + ",\"max_ns\":" +
           std::to_string(s.max_ns) + '}';
  }
  out += "}}";
  return out;
}

void write_metrics_json(const std::string& path) {
  write_file_or_throw(path, metrics_json(snapshot()) + "\n");
}

void write_chrome_trace(const std::string& path) {
  const long pid = static_cast<long>(::getpid());
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  auto emit = [&](const std::string& obj) {
    if (!first) out += ',';
    first = false;
    out += '\n';
    out += obj;
  };

  auto& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  for (const auto& t : r.threads) {
    std::lock_guard<std::mutex> tlk(t->mu);
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "{\"ph\":\"M\",\"pid\":%ld,\"tid\":%llu,"
                  "\"name\":\"thread_name\",\"args\":{\"name\":\"statpipe-%llu\"}}",
                  pid, static_cast<unsigned long long>(t->tid),
                  static_cast<unsigned long long>(t->tid));
    emit(buf);
    for (const TraceEvent& ev : t->events) {
      std::string obj;
      char head[320];
      if (ev.instant) {
        std::snprintf(head, sizeof head,
                      "{\"name\":\"%s\",\"ph\":\"i\",\"ts\":%.3f,"
                      "\"pid\":%ld,\"tid\":%llu,\"s\":\"t\",\"args\":{\"message\":\"",
                      ev.name, static_cast<double>(ev.ts_ns) / 1000.0, pid,
                      static_cast<unsigned long long>(t->tid));
        obj = head;
        obj += json_escape(ev.message);
        obj += "\"}}";
      } else {
        std::snprintf(head, sizeof head,
                      "{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,"
                      "\"pid\":%ld,\"tid\":%llu",
                      ev.name, static_cast<double>(ev.ts_ns) / 1000.0,
                      static_cast<double>(ev.dur_ns) / 1000.0, pid,
                      static_cast<unsigned long long>(t->tid));
        obj = head;
        if (ev.lane >= 0) {
          obj += ",\"args\":{\"lane\":";
          obj += std::to_string(ev.lane);
          obj += '}';
        }
        obj += '}';
      }
      emit(obj);
    }
  }
  out += "\n]}\n";
  write_file_or_throw(path, out);
}

void reset() {
  auto& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  for (const auto& t : r.threads) {
    for (auto& c : t->cells) c.store(0, std::memory_order_relaxed);
    std::lock_guard<std::mutex> tlk(t->mu);
    for (auto& a : t->aggs) a = SpanAgg{};
    t->events.clear();
    t->dropped = 0;
  }
}

const std::string& trace_env_path() { return trace_path_storage(); }

namespace {

// Dynamic-init hook: resolves STATPIPE_TRACE before main().  Construction
// order matters for shutdown safety — registry() and the path storage are
// forced into existence BEFORE std::atexit registers the trace writer, so
// their destructors run after it; any thread pool created later (all pools
// are function-local statics) is destroyed — workers joined — before the
// writer runs.
struct EnvInit {
  EnvInit() {
    now_ns();                // pin the telemetry epoch early
    dropped_counter_id();    // force registry construction
    std::string& path = trace_path_storage();
    const char* p = std::getenv("STATPIPE_TRACE");
    if (!p || !*p) return;
    path = p;
    // "%p" → pid, so coordinator + spawned workers (which inherit the
    // environment) each write their own file instead of clobbering one.
    const auto pos = path.find("%p");
    if (pos != std::string::npos)
      path.replace(pos, 2, std::to_string(::getpid()));
    detail::g_enabled.store(true, std::memory_order_relaxed);
    std::atexit(+[] {
      try {
        write_chrome_trace(trace_env_path());
      } catch (...) {
        std::fprintf(stderr, "[obs] failed to write trace to %s\n",
                     trace_env_path().c_str());
      }
    });
  }
};
EnvInit g_env_init;

}  // namespace

}  // namespace statpipe::obs
