// Runtime-dispatched SIMD backend layer for the lane kernels.
//
// The lane kernels (stats/lanes.h's pow core, the branch-free Clark
// operator, the Cholesky field multiply, the block sample-STA walk) are
// straight-line loops a compiler can vectorize — but how *wide* it
// vectorizes is fixed at compile time by the -m flags of the translation
// unit.  This layer compiles the one kernel source (lanes_kernels.inl)
// into several per-ISA translation units (scalar baseline, SSE4.2, AVX2,
// AVX-512, NEON) and selects one KernelTable at runtime:
//
//     lanes_kernels.inl ──┬── simd_scalar.cpp  (baseline flags)
//        (one source)     ├── simd_sse42.cpp   (-msse4.2)
//                         ├── simd_avx2.cpp    (-mavx2)
//                         ├── simd_avx512.cpp  (-mavx512{f,dq,bw,vl})
//                         └── simd_neon.cpp    (aarch64 baseline)
//                                   │
//            CPUID / env ──► kernels() ──► one KernelTable of fn pointers
//
// Selection happens once, lazily, on the first kernels() call: the highest
// ISA the CPU supports wins, unless the STATPIPE_SIMD environment variable
// forces a specific backend (scalar | sse42 | avx2 | avx512 | neon) for
// testing or reproduction.  An unknown or unsupported value throws up
// front, listing what this machine detected — never a silent fallback.
//
// Determinism contract (docs/DETERMINISM.md): *per backend*.  Every
// backend compiles the identical C++ kernel bodies with IEEE-preserving
// options only — no -ffast-math, no -mfma, and the project-wide
// -ffp-contract=off (CMakeLists.txt; gcc's C++ default is =fast, which
// would silently fuse on FMA-capable targets) — so lane k of a width-W
// kernel still executes exactly
// the scalar path's floating-point sequence and a backend is bitwise
// self-consistent across widths, thread counts and process counts.
// Cross-backend equality additionally holds on these no-FMA paths (wider
// registers change scheduling, not IEEE semantics), and the test suite
// asserts it; but only the per-backend contract is load-bearing — a future
// backend that fuses or reassociates would relax cross-backend equality,
// not correctness.
//
// Layer contract (src/stats, see docs/ARCHITECTURE.md): foundation layer —
// standard library only.  The kernel ABI below is raw pointers and PODs
// (no vector types, no callers' classes) so the seam stays clean for a
// future offload backend.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace statpipe::stats::simd {

/// The compiled-in instruction-set backends.  Which ones are *usable* on
/// this machine is a runtime question — see detected_backends().
enum class Backend : std::uint8_t { kScalar, kSse42, kAvx2, kAvx512, kNeon };

/// Lower-case backend name as accepted by STATPIPE_SIMD.
const char* backend_name(Backend b) noexcept;

/// Arguments of the block sample-STA walk kernel: the flattened stage
/// structure (topo order, CSR fanins, per-gate site/nominal/sqrt-size), the
/// SoA die block's component arrays (absent components are null), the
/// alpha-power parameters, and caller-owned lane scratch.  Plain arrays
/// only, so the kernel compiles in any backend TU without pulling in the
/// netlist/device/process layers.
struct StaWalkArgs {
  std::size_t width = 0;    ///< lanes per block (validated by the caller)
  std::size_t n_gates = 0;  ///< bound (non-pseudo) gates, topo order

  // Lane-invariant stage structure, one entry per bound gate.
  const std::size_t* gate_ids = nullptr;     ///< arrival row of each gate
  const std::size_t* site = nullptr;         ///< die site of each gate
  const double* nominal = nullptr;           ///< nominal delay [ps]
  const double* sqrt_size = nullptr;         ///< sqrt(gate size)
  const std::size_t* fanin_begin = nullptr;  ///< CSR offsets [n_gates + 1]
  const std::size_t* fanins = nullptr;       ///< CSR fanin arrival rows

  // SoA die block (site-major, lanes contiguous); null when absent.
  const double* dvth_inter = nullptr;  ///< [width]
  const double* dl_inter = nullptr;    ///< [width]
  const double* dvth_sys = nullptr;    ///< [sites * width] or null
  const double* dvth_rnd = nullptr;    ///< [sites * width] or null
  const double* dl_sys = nullptr;      ///< [sites * width] or null

  // Alpha-power variation parameters (device::AlphaPowerModel's
  // variation_kernel_params(), flattened to doubles).
  double drive0 = 0.0;     ///< Vdd - Vth0
  double alpha = 0.0;      ///< velocity-saturation index
  double min_ratio = 0.0;  ///< drive-ratio window accepted by the pow core
  double max_ratio = 0.0;

  // Caller-owned output and scratch.
  double* arrival = nullptr;  ///< [total gates * width], gate-major rows
  double* dvth = nullptr;     ///< [width] scratch (holds the faulting
  double* dl = nullptr;       ///< [width]  gate's shifts on fault return)
  double* vf = nullptr;       ///< [width] scratch

  const std::size_t* outputs = nullptr;  ///< primary-output arrival rows
  std::size_t n_outputs = 0;
  double* critical = nullptr;  ///< [width] per-lane critical delay
};

/// sta_block_walk's "no domain fault" return value.
inline constexpr std::size_t kNoFault = static_cast<std::size_t>(-1);

/// One backend's kernel set.  Function pointers rather than virtuals: the
/// table is selected once and the calls sit inside per-sample loops.
struct KernelTable {
  Backend backend;
  const char* name;          ///< lower-case, == backend_name(backend)
  std::size_t max_width;     ///< widest block this backend accepts
  std::size_t default_width; ///< width the backend prefers (bench/CLI hint)

  /// out[i] = lanes::pow_pos(x[i], y) for i < n.
  void (*pow_pos_lanes)(const double* x, double y, std::size_t n,
                        double* out);

  /// out[j] = pow_pos(drive0 / (drive0 - dvth[j]), alpha) * lf * lf with
  /// lf = 1 + dl_rel[j] — the arithmetic half of variation_factor_lanes.
  /// Domain checks are the caller's (device::AlphaPowerModel's) job.
  void (*variation_factor_lanes)(double drive0, double alpha,
                                 const double* dvth, const double* dl_rel,
                                 std::size_t n, double* out);

  /// The branch-free Clark max arithmetic loop over n lanes (validation is
  /// the caller's job; see stats/clark.cpp).  Five SoA outputs mirror
  /// stats::ClarkLanes.
  void (*clark_max_lanes)(const double* mu1, const double* sg1,
                          const double* mu2, const double* sg2,
                          const double* rho, std::size_t n, double* out_mean,
                          double* out_sigma, double* out_alpha, double* out_a,
                          double* out_phi);

  /// Lane-batched lower-triangular multiply for the systematic field:
  /// field[i*w + j] = sum_{k <= i} chol[i*stride + k] * zt[k*w + j], with k
  /// ascending per lane (the scalar path's exact add order).  `zt` and
  /// `field` are site-major with lanes contiguous.
  void (*chol_field_lanes)(const double* chol, std::size_t n,
                           std::size_t stride, const double* zt,
                           std::size_t w, double* field);

  /// Advance w interleaved xoshiro256** streams by n steps each:
  /// out[i*stride + j] = the i-th raw u64 of lane j, states (four SoA word
  /// planes s0..s3, lane j at index j) advanced in place.  Lane j's output
  /// sequence is exactly Xoshiro256::operator()'s from the same state —
  /// pure integer ops, so "bitwise per lane" here is unconditional.
  void (*uniform_u64_lanes)(std::uint64_t* s0, std::uint64_t* s1,
                            std::uint64_t* s2, std::uint64_t* s3,
                            std::size_t w, std::size_t n, std::size_t stride,
                            std::uint64_t* out);

  /// Lane-batched ziggurat normal fill: out[i*stride + j] = sigma * (the
  /// i-th standard-normal deviate of lane j's stream), states advanced in
  /// place as in uniform_u64_lanes.  The ~98.8% rectangle-accept fast path
  /// runs branch-free across the lane row; a rejected lane replays the
  /// identical tail/wedge logic through ziggurat::normal_slow (stats/rng.h)
  /// on its own state, so lane j is bitwise-equal to the same draws issued
  /// one by one on lane j's Rng — on every backend.
  void (*normal_fill_lanes)(std::uint64_t* s0, std::uint64_t* s1,
                            std::uint64_t* s2, std::uint64_t* s3,
                            std::size_t w, double sigma, std::size_t n,
                            std::size_t stride, double* out);

  /// The full block sample-STA walk (see sta/sta.cpp for the scalar
  /// equivalence argument).  Returns kNoFault, or the index (into
  /// gate_ids/site/...) of the first gate whose lane row violates the
  /// variation-factor domain — the shifts of that row are left in
  /// a.dvth/a.dl so the caller can regenerate the exact scalar exception.
  std::size_t (*sta_block_walk)(const StaWalkArgs& a);
};

/// Backends usable on this machine, in increasing preference order (the
/// scalar reference is always first and always present).
std::vector<Backend> detected_backends();

/// Parses a STATPIPE_SIMD value ("scalar", "sse42", "avx2", "avx512",
/// "neon"); throws std::invalid_argument on an unknown name.
Backend parse_backend(const char* name);

/// The active backend's kernel table: STATPIPE_SIMD if set (throws
/// std::invalid_argument up front when the value is unknown or names a
/// backend this machine cannot run, listing what was detected), otherwise
/// the most preferred detected backend.  Resolved once on first call and
/// cached; the per-call cost is one atomic load.
const KernelTable& kernels();

/// The resolution core behind kernels() for one STATPIPE_SIMD value:
/// returns the named backend's table, or throws std::invalid_argument —
/// unknown name, or a backend this machine cannot run — with a message
/// listing the detected backends.  Exposed so tests can exercise the
/// forced-backend error paths without respawning processes.
const KernelTable& resolve_env(const char* value);

/// Kernel table of a specific backend, or nullptr when that backend is not
/// compiled in / not runnable on this CPU.  Lets tests iterate every
/// available backend inside one process.
const KernelTable* kernels_for(Backend b) noexcept;

/// Test hook: force kernels() to return backend `b` (must be available per
/// kernels_for) until clear_forced_backend_for_testing().  Not for
/// production use — switching backends mid-run changes max_width out from
/// under running engines; tests force only between runs.
void force_backend_for_testing(Backend b);
void clear_forced_backend_for_testing() noexcept;

namespace detail {
// One accessor per backend translation unit (simd_<backend>.cpp): returns
// that backend's table, or nullptr when the TU was compiled out for this
// architecture.  Internal — callers go through kernels()/kernels_for().
const KernelTable* scalar_table() noexcept;
const KernelTable* sse42_table() noexcept;
const KernelTable* avx2_table() noexcept;
const KernelTable* avx512_table() noexcept;
const KernelTable* neon_table() noexcept;
}  // namespace detail

}  // namespace statpipe::stats::simd
