// Clark's moment-matching approximation to the maximum of Gaussian random
// variables (C. E. Clark, "The Greatest of a Finite Set of Random
// Variables", Operations Research 9(2), 1961) — equations (4)-(6) of the
// paper.
//
// Given X1 ~ N(mu1, s1^2), X2 ~ N(mu2, s2^2) with correlation rho:
//
//   a^2   = s1^2 + s2^2 - 2 rho s1 s2
//   alpha = (mu1 - mu2) / a
//   E[max]      = mu1 Phi(alpha) + mu2 Phi(-alpha) + a phi(alpha)
//   E[max^2]    = (mu1^2+s1^2) Phi(alpha) + (mu2^2+s2^2) Phi(-alpha)
//                 + (mu1+mu2) a phi(alpha)
//   Var[max]    = E[max^2] - E[max]^2
//
// and the correlation of max(X1, X2) with a third variable X3 (eq. 6):
//
//   rho(X3, max) = [s1 rho13 Phi(alpha) + s2 rho23 Phi(-alpha)] / sd(max)
//
// The N-variable reduction applies the pairwise operator iteratively,
// approximating each intermediate max as Gaussian; the paper orders the
// variables by increasing mean to minimize the approximation error
// (section 2.4, citing Ross 2003).
#pragma once

#include <cstddef>
#include <vector>

#include "stats/gaussian.h"
#include "stats/lanes.h"
#include "stats/matrix.h"

namespace statpipe::stats {

/// Result of the pairwise Clark operator.
struct ClarkMax {
  Gaussian max;    ///< moment-matched Gaussian approximation of max(X1,X2)
  double alpha;    ///< (mu1-mu2)/a — the tie-breaking z-score
  double a;        ///< sd of X1 - X2
  double phi_a;    ///< Phi(alpha), cached for correlation propagation
};

/// Pairwise Clark operator (eqs. 4-5).  Handles the degenerate case a ~ 0
/// (perfectly correlated, equal-variance inputs) by returning the
/// pointwise-dominant input exactly.
ClarkMax clark_max(const Gaussian& x1, const Gaussian& x2, double rho = 0.0);

/// Correlation of max(X1, X2) with a third Gaussian X3 (eq. 6), given the
/// pairwise result `cm` of (x1, x2) and the input correlations rho13/rho23.
/// The result is clamped to [-1, 1] (moment matching can overshoot by eps).
double clark_correlation(const Gaussian& x1, const Gaussian& x2,
                         const ClarkMax& cm, double rho13, double rho23);

/// Branch-free lane Clark: the pairwise operator over `lanes` SoA lanes,
/// out.{mean,sigma,alpha,a,phi_a}[k] = clark_max(x1[k], x2[k], rho[k]).
///
/// Contract: each lane performs exactly the scalar operator's floating-point
/// sequence, so results are bitwise-identical to `lanes` independent
/// clark_max calls — including the degenerate a ~ 0 lanes (rho = ±1 with
/// matching sigmas, zero-variance inputs), which are resolved by value
/// selection (stats::lanes::select) on a sanitized divisor rather than a
/// per-lane branch into a separate code path.  Inputs are validated up
/// front exactly as clark_max validates (negative sigma / |rho| > 1 throw).
/// All arrays must hold `lanes` doubles; inputs and outputs may not alias.
void clark_max_lanes(const GaussianLanesView& x1, const GaussianLanesView& x2,
                     const double* rho, std::size_t lanes,
                     const ClarkLanes& out);

/// Variable-ordering policy for the N-way reduction.
enum class ClarkOrdering {
  kIncreasingMean,  ///< paper's choice: minimizes the approximation error
  kDecreasingMean,  ///< equivalent error bound per Ross 2003
  kAsGiven,         ///< document order (for the ordering ablation)
};

/// Moment-matched Gaussian approximation of max_i X_i for jointly Gaussian
/// X with the given correlation matrix.  Implements the full iterated
/// reduction of eq. (4): at each step the running max M is combined with
/// the next variable, and the correlations rho(M, X_j) of the running max
/// with every *remaining* variable are updated via eq. (6).
///
/// Preconditions: vars non-empty; correlation is vars.size()^2 and valid.
Gaussian clark_max_n(const std::vector<Gaussian>& vars,
                     const Matrix& correlation,
                     ClarkOrdering ordering = ClarkOrdering::kIncreasingMean);

/// Convenience overload for independent variables.
Gaussian clark_max_n(const std::vector<Gaussian>& vars,
                     ClarkOrdering ordering = ClarkOrdering::kIncreasingMean);

}  // namespace statpipe::stats
