// Small dense symmetric-matrix utilities: storage, Cholesky factorization,
// correlation-matrix construction and validation.
//
// Correlation matrices here are at pipeline-stage granularity (a handful of
// stages) or spatial-grid granularity (hundreds of cells), so a simple dense
// O(n^3) Cholesky is the right tool; no external linear-algebra dependency.
#pragma once

#include <cstddef>
#include <vector>

namespace statpipe::stats {

/// Dense row-major square matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  explicit Matrix(std::size_t n, double fill = 0.0) : n_(n), a_(n * n, fill) {}

  std::size_t size() const noexcept { return n_; }
  double& operator()(std::size_t i, std::size_t j) { return a_[i * n_ + j]; }
  double operator()(std::size_t i, std::size_t j) const { return a_[i * n_ + j]; }

  /// Row-major storage (row stride == size()); for handing a factor to the
  /// raw-pointer lane kernels (stats/simd.h) without copying.
  const double* data() const noexcept { return a_.data(); }

  static Matrix identity(std::size_t n);

  /// y = A * x.
  std::vector<double> apply(const std::vector<double>& x) const;

  bool is_symmetric(double tol = 1e-12) const noexcept;

 private:
  std::size_t n_ = 0;
  std::vector<double> a_;
};

/// Lower-triangular Cholesky factor L with A = L * L^T.
/// Throws std::domain_error when A is not (numerically) positive definite.
Matrix cholesky(const Matrix& a);

/// Cholesky with diagonal jitter fallback: if A is only positive
/// *semi*-definite (e.g. perfectly correlated stages, rho = 1), retries with
/// A + eps*I, growing eps geometrically up to max_jitter.  Returns the
/// factor of the jittered matrix; jitter this small is invisible at MC
/// sample sizes used here.
Matrix cholesky_psd(const Matrix& a, double max_jitter = 1e-6);

/// Builds the N x N correlation matrix with 1 on the diagonal and `rho`
/// everywhere else — the paper's uniform stage-correlation model
/// (Fig. 3(b), Fig. 5(b)).  Requires -1/(N-1) <= rho <= 1.
Matrix uniform_correlation(std::size_t n, double rho);

/// Exponential-decay spatial correlation: rho_ij = exp(-d_ij / length).
/// `positions` are 1-D coordinates (pipeline stages laid out along the die;
/// grid cells use their flattened index distance).
Matrix spatial_correlation(const std::vector<double>& positions, double length);

/// True iff m is a valid correlation matrix: symmetric, unit diagonal,
/// entries in [-1, 1] and positive semi-definite (checked via cholesky_psd).
bool is_valid_correlation(const Matrix& m);

}  // namespace statpipe::stats
