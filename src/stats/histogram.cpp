#include "stats/histogram.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace statpipe::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (bins == 0) throw std::invalid_argument("Histogram: bins == 0");
  // isfinite as well as the ordering check: hi > lo alone lets ±inf edges
  // through (hi = +inf satisfies it), after which every bin width is
  // inf/NaN and binning degenerates.  Bounds can arrive off the
  // distributed wire, so they are adversarial input, not programmer error.
  if (!std::isfinite(lo) || !std::isfinite(hi))
    throw std::invalid_argument("Histogram: non-finite bounds");
  if (!(hi > lo)) throw std::invalid_argument("Histogram: need hi > lo");
}

Histogram Histogram::from_samples(std::span<const double> xs, std::size_t bins) {
  if (xs.empty()) throw std::invalid_argument("Histogram::from_samples: empty");
  auto [mn, mx] = std::minmax_element(xs.begin(), xs.end());
  double lo = *mn, hi = *mx;
  const double pad = std::max((hi - lo) * 0.01, 1e-12);
  Histogram h(lo - pad, hi + pad, bins);
  h.add(xs);
  return h;
}

Histogram Histogram::from_counts(double lo, double hi,
                                 std::vector<std::size_t> counts) {
  Histogram h(lo, hi, counts.size());  // validates bins > 0, finite hi > lo
  h.counts_ = std::move(counts);
  for (std::size_t c : h.counts_) {
    // Hostile counts can be crafted to wrap the total (and with it every
    // density) around SIZE_MAX; overflow is a validation error, not UB.
    if (__builtin_add_overflow(h.total_, c, &h.total_))
      throw std::invalid_argument("Histogram::from_counts: total overflows");
  }
  return h;
}

void Histogram::merge(const Histogram& other) {
  if (lo_ != other.lo_ || hi_ != other.hi_ ||
      counts_.size() != other.counts_.size())
    throw std::invalid_argument(
        "Histogram::merge: binning mismatch ([" + std::to_string(lo_) + ", " +
        std::to_string(hi_) + ") x " + std::to_string(counts_.size()) +
        " vs [" + std::to_string(other.lo_) + ", " +
        std::to_string(other.hi_) + ") x " +
        std::to_string(other.counts_.size()) + ")");
  const std::size_t extra = other.total_;  // read first: self-merge aliases
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  total_ += extra;
}

void Histogram::add(double x) {
  const double w = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto idx = static_cast<long>((x - lo_) / w);
  idx = std::clamp<long>(idx, 0, static_cast<long>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

void Histogram::add(std::span<const double> xs) {
  for (double x : xs) add(x);
}

double Histogram::bin_width() const noexcept {
  return (hi_ - lo_) / static_cast<double>(counts_.size());
}

double Histogram::bin_center(std::size_t i) const {
  if (i >= counts_.size()) throw std::out_of_range("Histogram::bin_center");
  return lo_ + (static_cast<double>(i) + 0.5) * bin_width();
}

double Histogram::density(std::size_t i) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(count(i)) /
         (static_cast<double>(total_) * bin_width());
}

std::string Histogram::to_csv(const std::string& label) const {
  std::ostringstream os;
  os << "# histogram" << (label.empty() ? "" : " " + label) << "\n";
  os << "center,count,density\n";
  for (std::size_t i = 0; i < counts_.size(); ++i)
    os << bin_center(i) << "," << counts_[i] << "," << density(i) << "\n";
  return os.str();
}

}  // namespace statpipe::stats
