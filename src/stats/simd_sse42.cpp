// SSE4.2 backend (x86-64 only): the 2008-baseline target the lane layer
// was originally pinned to.  SSE4.2 supplies the packed int64 compare and
// blend ops pow_pos's bit tricks need, at 2 doubles per register.
//
// Width policy mirrors the pre-dispatch layer exactly — max 16, default 8
// — so forcing STATPIPE_SIMD=sse42 reproduces the historical kernel
// byte-for-byte in behavior and in accepted widths.
//
// The TU body is arch-gated: on non-x86 builds it compiles empty and the
// accessor reports the backend as unavailable.
#if defined(__x86_64__) || defined(_M_X64)

#define STATPIPE_SIMD_NS sse42
#include "stats/lanes_kernels.inl"

namespace statpipe::stats::simd::detail {

const KernelTable* sse42_table() noexcept {
  static constexpr KernelTable t{
      Backend::kSse42,
      "sse42",
      /*max_width=*/16,
      /*default_width=*/8,
      &sse42::pow_pos_lanes,
      &sse42::variation_factor_lanes,
      &sse42::clark_max_lanes,
      &sse42::chol_field_lanes,
      &sse42::uniform_u64_lanes,
      &sse42::normal_fill_lanes,
      &sse42::sta_block_walk,
  };
  return &t;
}

}  // namespace statpipe::stats::simd::detail

#else  // non-x86: backend compiled out

#include "stats/simd.h"

namespace statpipe::stats::simd::detail {
const KernelTable* sse42_table() noexcept { return nullptr; }
}  // namespace statpipe::stats::simd::detail

#endif
