#include "stats/matrix.h"

#include <cmath>
#include <stdexcept>
#include <string>

namespace statpipe::stats {

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

std::vector<double> Matrix::apply(const std::vector<double>& x) const {
  if (x.size() != n_) throw std::invalid_argument("Matrix::apply: size mismatch");
  std::vector<double> y(n_, 0.0);
  for (std::size_t i = 0; i < n_; ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < n_; ++j) s += a_[i * n_ + j] * x[j];
    y[i] = s;
  }
  return y;
}

bool Matrix::is_symmetric(double tol) const noexcept {
  for (std::size_t i = 0; i < n_; ++i)
    for (std::size_t j = i + 1; j < n_; ++j)
      if (std::abs((*this)(i, j) - (*this)(j, i)) > tol) return false;
  return true;
}

Matrix cholesky(const Matrix& a) {
  const std::size_t n = a.size();
  if (!a.is_symmetric(1e-9))
    throw std::domain_error("cholesky: matrix not symmetric");
  Matrix l(n);
  for (std::size_t j = 0; j < n; ++j) {
    double d = a(j, j);
    for (std::size_t k = 0; k < j; ++k) d -= l(j, k) * l(j, k);
    if (d <= 0.0)
      throw std::domain_error("cholesky: matrix not positive definite (pivot " +
                              std::to_string(j) + ")");
    l(j, j) = std::sqrt(d);
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = a(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= l(i, k) * l(j, k);
      l(i, j) = s / l(j, j);
    }
  }
  return l;
}

Matrix cholesky_psd(const Matrix& a, double max_jitter) {
  double jitter = 0.0;
  for (;;) {
    Matrix aj = a;
    if (jitter > 0.0)
      for (std::size_t i = 0; i < aj.size(); ++i) aj(i, i) += jitter;
    try {
      return cholesky(aj);
    } catch (const std::domain_error&) {
      jitter = jitter == 0.0 ? 1e-12 : jitter * 10.0;
      if (jitter > max_jitter)
        throw std::domain_error(
            "cholesky_psd: matrix not PSD even with jitter " +
            std::to_string(max_jitter));
    }
  }
}

Matrix uniform_correlation(std::size_t n, double rho) {
  if (n == 0) throw std::invalid_argument("uniform_correlation: n == 0");
  const double lo = n > 1 ? -1.0 / static_cast<double>(n - 1) : -1.0;
  if (rho < lo - 1e-12 || rho > 1.0 + 1e-12)
    throw std::invalid_argument("uniform_correlation: rho outside valid range");
  Matrix m(n, rho);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix spatial_correlation(const std::vector<double>& positions, double length) {
  if (length <= 0.0)
    throw std::invalid_argument("spatial_correlation: length must be > 0");
  const std::size_t n = positions.size();
  Matrix m(n);
  for (std::size_t i = 0; i < n; ++i) {
    m(i, i) = 1.0;
    for (std::size_t j = i + 1; j < n; ++j) {
      const double d = std::abs(positions[i] - positions[j]);
      m(i, j) = m(j, i) = std::exp(-d / length);
    }
  }
  return m;
}

bool is_valid_correlation(const Matrix& m) {
  const std::size_t n = m.size();
  if (n == 0) return false;
  if (!m.is_symmetric(1e-9)) return false;
  for (std::size_t i = 0; i < n; ++i) {
    if (std::abs(m(i, i) - 1.0) > 1e-9) return false;
    for (std::size_t j = 0; j < n; ++j)
      if (m(i, j) < -1.0 - 1e-9 || m(i, j) > 1.0 + 1e-9) return false;
  }
  try {
    (void)cholesky_psd(m);
  } catch (const std::domain_error&) {
    return false;
  }
  return true;
}

}  // namespace statpipe::stats
