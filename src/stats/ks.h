// Kolmogorov-Smirnov distances — used by tests and benches to quantify how
// well the analytical Gaussian approximation of the pipeline delay matches
// Monte-Carlo samples (the paper's Fig. 2 eyeball check, made numeric).
#pragma once

#include <span>

#include "stats/gaussian.h"

namespace statpipe::stats {

/// sup_x |F_n(x) - Phi((x-mu)/sigma)| for a sample against a Gaussian.
double ks_distance(std::span<const double> sample, const Gaussian& g);

/// Two-sample KS distance.
double ks_distance(std::span<const double> a, std::span<const double> b);

}  // namespace statpipe::stats
