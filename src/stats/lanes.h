// Lane abstraction for the block-vectorized kernel layer.
//
// A "lane block" is a fixed-width structure-of-arrays slice of doubles:
// every logical value (a die's Vth shift, a gate's arrival time, a Clark
// operand) is stored as `width` consecutive doubles, one per lane, so the
// hot kernels (block sample STA, the branch-free Clark operator, the
// batched SSTA propagation) iterate contiguous memory the compiler can
// auto-vectorize.  Widths are small powers of two; how wide a block a
// kernel accepts is a property of the active SIMD backend (stats/simd.h):
// each backend publishes its own maximum (16 for the 2-double SSE4.2/NEON
// backends up to the absolute cap of 64 for AVX-512), queried at runtime
// via max_width() / preferred_width() below.
//
// Determinism contract shared by every lane kernel in the repository
// (per SIMD backend — see stats/simd.h and docs/DETERMINISM.md):
// lane k executes exactly the scalar path's floating-point sequence, so a
// width-W kernel is bitwise-identical to W independent scalar calls.
// Data-dependent branches inside a kernel are expressed with lane_select
// (value blending) instead of control flow, keeping all lanes on one
// instruction stream ("branch-free") without changing any lane's result.
//
// Layer contract (src/stats, see docs/ARCHITECTURE.md): foundation layer —
// standard library only.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace statpipe::stats {

namespace lanes {

/// Portable default SoA block width for die-block sampling / block sample
/// STA — valid on every backend.  Backends that profit from wider blocks
/// advertise it via preferred_width().
inline constexpr std::size_t kWidth = 8;

/// Absolute upper bound on block width across all SIMD backends
/// (workspace sizing; eight 512-bit registers per lane row).  The width a
/// given run actually accepts is the *active backend's* maximum,
/// max_width() <= kMaxWidth.
inline constexpr std::size_t kMaxWidth = 64;

/// Widest block the active SIMD backend accepts (e.g. 16 under sse42/neon,
/// 32 under avx2, 64 under scalar/avx512).  Resolves the backend on first
/// use; see stats/simd.h for selection and the STATPIPE_SIMD override.
std::size_t max_width();

/// Block width the active SIMD backend prefers — the width benches and
/// CLIs should default to when the user did not pin one.  Never affects
/// results (the determinism contract makes results width-invariant); only
/// throughput.
std::size_t preferred_width();

/// Validates a requested block width: returns w when 1 <= w <= max_width()
/// of the active SIMD backend, throws std::invalid_argument (naming the
/// backend and its maximum) otherwise.  A width of 0, or beyond what the
/// active backend accepts, is a caller bug — it fails loudly up front
/// instead of being silently clamped into range (which would quietly
/// change the run's RNG-stream grouping a user thought they had asked
/// for).
std::size_t validated_width(std::size_t w);

/// Branch-free value select: take `a` when `cond`, else `b`.  Written as a
/// ternary so compilers lower it to cmov/blend rather than a branch; the
/// point is not the codegen per se but that both operands are always safe
/// to evaluate (kernels pre-sanitize divisors before dividing).
/// always_inline: this helper and pow_pos are compiled into every per-ISA
/// backend TU (stats/lanes_kernels.inl); if gcc ever emitted them
/// out-of-line, the linker would deduplicate the comdat copies and could
/// hand every backend one ISA's code — inlining removes the symbol
/// entirely.
__attribute__((always_inline)) inline double select(bool cond, double a,
                                                    double b) noexcept {
  return cond ? a : b;
}

/// Branch-free polynomial pow for positive normal finite x: the shared
/// exponentiation core of AlphaPowerModel::variation_factor, which std::pow
/// made ~80% of the block sample-STA kernel.  Evaluated as
/// exp2(y * log2(x)) with a bit-level exponent split, an atanh-series log2
/// on [sqrt(1/2), sqrt(2)) and a degree-12 Taylor exp — straight-line
/// arithmetic a compiler can vectorize across lanes, unlike the libm call.
///
/// Both the scalar and the lane paths call this exact function per element,
/// so the repository-wide bitwise scalar/block contract holds by
/// construction.  It is a distinct function from std::pow (results differ
/// from libm in the last couple of ulps; relative error < ~1e-13 over the
/// variation-factor domain), which is why BOTH paths must use it.
/// Exactness anchors: pow_pos(1.0, y) == 1.0 and pow_pos(x, 0.0) == 1.0.
/// Preconditions (the caller's to reject — variation_factor's domain
/// checks do): x positive, normal, finite; |y * log2(x)| <= 1020 so the
/// bit-built 2^k scale stays inside the normal exponent range.  There is
/// deliberately no internal clamp: a clamp's constant arm makes the rest
/// of the computation compile-time-constant, and gcc then specializes it
/// into a real branch — killing vectorization of every lane loop over
/// this function.
/// always_inline for the same ODR reason as select above: every SIMD
/// backend TU compiles this body under its own -m flags, and no
/// deduplicatable out-of-line copy may exist.
__attribute__((always_inline)) inline double pow_pos(double x,
                                                     double y) noexcept {
  // Split x = 2^e * m, then re-center m into [sqrt(1/2), sqrt(2)) so the
  // atanh argument t stays within +-0.1716.  The exponent is read as a
  // double by splicing the 11 exponent bits into the mantissa of 2^52 and
  // subtracting (2^52 + 1023) — exact, and free of int64<->double
  // converts: those need AVX-512DQ to vectorize, and keeping the bit
  // splices in pure integer/double ops lets every backend down to the
  // SSE2 baseline vectorize this body.
  constexpr double kSqrt2 = 1.4142135623730951;
  const std::uint64_t bits = std::bit_cast<std::uint64_t>(x);
  const double eb =
      std::bit_cast<double>(((bits >> 52) & 0x7ffULL) | 0x4330000000000000ULL);
  double e = eb - 4503599627371519.0;  // 2^52 + 1023
  double m = std::bit_cast<double>((bits & 0x000fffffffffffffULL) |
                                   0x3ff0000000000000ULL);
  // Re-centering select as a mask blend (not a ternary): gcc turns the
  // ternary into a real branch here, which blocks if-conversion and with
  // it vectorization of the lane loop.
  const std::uint64_t rmask = 0ULL - static_cast<std::uint64_t>(m >= kSqrt2);
  m = std::bit_cast<double>(
      (std::bit_cast<std::uint64_t>(0.5 * m) & rmask) |
      (std::bit_cast<std::uint64_t>(m) & ~rmask));
  e += std::bit_cast<double>(std::bit_cast<std::uint64_t>(1.0) & rmask);

  // log2(m) = (2/ln2) * atanh(t), t = (m-1)/(m+1); odd series through t^17
  // truncates below 1e-16 on this range.
  const double t = (m - 1.0) / (m + 1.0);
  const double t2 = t * t;
  double p = 1.0 / 17.0;
  p = p * t2 + 1.0 / 15.0;
  p = p * t2 + 1.0 / 13.0;
  p = p * t2 + 1.0 / 11.0;
  p = p * t2 + 1.0 / 9.0;
  p = p * t2 + 1.0 / 7.0;
  p = p * t2 + 1.0 / 5.0;
  p = p * t2 + 1.0 / 3.0;
  const double atanh_t = t + t * t2 * p;
  constexpr double kTwoOverLn2 = 2.8853900817779268;  // 2 / ln 2
  const double log2x = e + kTwoOverLn2 * atanh_t;

  // exp2(z): z = k + f with integer k (round-to-nearest via the 1.5*2^52
  // trick) and f in [-0.5, 0.5]; e^(f ln2) by degree-12 Taylor
  // (truncation < 2e-16), scaled by bit-built 2^k.
  const double z = y * log2x;  // |z| <= 1020 by precondition
  const double zr = z + 0x1.8p52;  // k lives in zr's low mantissa bits
  const double kd = zr - 0x1.8p52;
  constexpr double kLn2 = 0.6931471805599453;
  const double u = (z - kd) * kLn2;
  double q = 1.0 / 479001600.0;  // 1/12!
  q = q * u + 1.0 / 39916800.0;
  q = q * u + 1.0 / 3628800.0;
  q = q * u + 1.0 / 362880.0;
  q = q * u + 1.0 / 40320.0;
  q = q * u + 1.0 / 5040.0;
  q = q * u + 1.0 / 720.0;
  q = q * u + 1.0 / 120.0;
  q = q * u + 1.0 / 24.0;
  q = q * u + 1.0 / 6.0;
  q = q * u + 0.5;
  const double expu = 1.0 + u * (1.0 + u * q);
  // 2^k from zr's bit pattern: zr = 2^52 + 2^51 + k exactly, so zr's low 12
  // mantissa bits are k mod 2^12 (two's complement); adding the 1023 bias
  // and shifting into the exponent field builds 2^k with no int converts.
  const double scale = std::bit_cast<double>(
      (std::bit_cast<std::uint64_t>(zr) + 1023ULL) << 52);
  return expu * scale;
}

}  // namespace lanes

/// SoA view of `lanes` Gaussians: mean[k], sigma[k] describe lane k.
struct GaussianLanesView {
  const double* mean = nullptr;
  const double* sigma = nullptr;
};

/// SoA output of the branch-free lane Clark operator (stats/clark.h's
/// clark_max_lanes): per lane the moment-matched max (mean, sigma), the
/// tie z-score alpha, the difference sigma a, and Phi(alpha) — the same
/// fields as the scalar ClarkMax, laid out as five parallel arrays.
struct ClarkLanes {
  double* mean = nullptr;
  double* sigma = nullptr;
  double* alpha = nullptr;
  double* a = nullptr;
  double* phi_a = nullptr;
};

}  // namespace statpipe::stats
