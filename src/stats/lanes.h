// Lane abstraction for the block-vectorized kernel layer.
//
// A "lane block" is a fixed-width structure-of-arrays slice of doubles:
// every logical value (a die's Vth shift, a gate's arrival time, a Clark
// operand) is stored as `width` consecutive doubles, one per lane, so the
// hot kernels (block sample STA, the branch-free Clark operator, the
// batched SSTA propagation) iterate contiguous memory the compiler can
// auto-vectorize.  Widths are small powers of two — 8 by default, 16 at
// most — chosen so one lane row of the four canonical-form arrays stays
// within a pair of cache lines.
//
// Determinism contract shared by every lane kernel in the repository:
// lane k executes exactly the scalar path's floating-point sequence, so a
// width-W kernel is bitwise-identical to W independent scalar calls.
// Data-dependent branches inside a kernel are expressed with lane_select
// (value blending) instead of control flow, keeping all lanes on one
// instruction stream ("branch-free") without changing any lane's result.
//
// Layer contract (src/stats, see docs/ARCHITECTURE.md): foundation layer —
// standard library only.
#pragma once

#include <cstddef>

namespace statpipe::stats {

namespace lanes {

/// Default SoA block width for die-block sampling / block sample STA.
inline constexpr std::size_t kWidth = 8;

/// Upper bound accepted by the block kernels (workspace sizing).
inline constexpr std::size_t kMaxWidth = 16;

/// Clamps a requested block width into [1, kMaxWidth].
constexpr std::size_t clamp_width(std::size_t w) noexcept {
  return w == 0 ? 1 : (w > kMaxWidth ? kMaxWidth : w);
}

/// Branch-free value select: take `a` when `cond`, else `b`.  Written as a
/// ternary so compilers lower it to cmov/blend rather than a branch; the
/// point is not the codegen per se but that both operands are always safe
/// to evaluate (kernels pre-sanitize divisors before dividing).
inline double select(bool cond, double a, double b) noexcept {
  return cond ? a : b;
}

}  // namespace lanes

/// SoA view of `lanes` Gaussians: mean[k], sigma[k] describe lane k.
struct GaussianLanesView {
  const double* mean = nullptr;
  const double* sigma = nullptr;
};

/// SoA output of the branch-free lane Clark operator (stats/clark.h's
/// clark_max_lanes): per lane the moment-matched max (mean, sigma), the
/// tie z-score alpha, the difference sigma a, and Phi(alpha) — the same
/// fields as the scalar ClarkMax, laid out as five parallel arrays.
struct ClarkLanes {
  double* mean = nullptr;
  double* sigma = nullptr;
  double* alpha = nullptr;
  double* a = nullptr;
  double* phi_a = nullptr;
};

}  // namespace statpipe::stats
