#include "stats/ks.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace statpipe::stats {

double ks_distance(std::span<const double> sample, const Gaussian& g) {
  if (sample.empty()) throw std::invalid_argument("ks_distance: empty sample");
  std::vector<double> v(sample.begin(), sample.end());
  std::sort(v.begin(), v.end());
  const double n = static_cast<double>(v.size());
  double d = 0.0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    const double f = g.cdf(v[i]);
    const double lo = static_cast<double>(i) / n;
    const double hi = static_cast<double>(i + 1) / n;
    d = std::max({d, std::abs(f - lo), std::abs(f - hi)});
  }
  return d;
}

double ks_distance(std::span<const double> a, std::span<const double> b) {
  if (a.empty() || b.empty()) throw std::invalid_argument("ks_distance: empty");
  std::vector<double> va(a.begin(), a.end()), vb(b.begin(), b.end());
  std::sort(va.begin(), va.end());
  std::sort(vb.begin(), vb.end());
  const double na = static_cast<double>(va.size());
  const double nb = static_cast<double>(vb.size());
  double d = 0.0;
  std::size_t i = 0, j = 0;
  while (i < va.size() && j < vb.size()) {
    const double x = std::min(va[i], vb[j]);
    while (i < va.size() && va[i] <= x) ++i;
    while (j < vb.size() && vb[j] <= x) ++j;
    d = std::max(d, std::abs(static_cast<double>(i) / na -
                             static_cast<double>(j) / nb));
  }
  return d;
}

}  // namespace statpipe::stats
