#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace statpipe::stats {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

RunningStats RunningStats::from_state(const State& s) {
  if (!std::isfinite(s.mean) || !std::isfinite(s.m2) ||
      !std::isfinite(s.min) || !std::isfinite(s.max))
    throw std::invalid_argument(
        "RunningStats::from_state: non-finite field in state");
  if (s.m2 < 0.0)
    throw std::invalid_argument("RunningStats::from_state: negative m2");
  if (s.n > 0 && s.min > s.max)
    throw std::invalid_argument("RunningStats::from_state: min > max");
  if (s.n == 0 &&
      (s.mean != 0.0 || s.m2 != 0.0 || s.min != 0.0 || s.max != 0.0))
    throw std::invalid_argument(
        "RunningStats::from_state: empty state with nonzero moments");
  RunningStats r;
  r.n_ = s.n;
  r.mean_ = s.mean;
  r.m2_ = s.m2;
  r.min_ = s.min;
  r.max_ = s.max;
  return r;
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double mean(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("mean: empty sample");
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) throw std::invalid_argument("variance: need >= 2 samples");
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double quantile(std::span<const double> xs, double q) {
  if (xs.empty()) throw std::invalid_argument("quantile: empty sample");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile: q outside [0,1]");
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  const double pos = q * static_cast<double>(v.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

double empirical_cdf_at(std::span<const double> xs, double threshold) {
  if (xs.empty()) throw std::invalid_argument("empirical_cdf_at: empty sample");
  const auto n = static_cast<double>(
      std::count_if(xs.begin(), xs.end(), [=](double x) { return x <= threshold; }));
  return n / static_cast<double>(xs.size());
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size() || xs.size() < 2)
    throw std::invalid_argument("pearson: need two equal samples of size >= 2");
  const double mx = mean(xs), my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx, dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double proportion_stderr(double p, std::size_t n) {
  if (n == 0) throw std::invalid_argument("proportion_stderr: n == 0");
  return std::sqrt(std::max(p * (1.0 - p), 0.0) / static_cast<double>(n));
}

}  // namespace statpipe::stats
