// Fixed-bin histogram for reproducing the paper's delay-distribution plots
// (Fig. 2, Fig. 7(a)) as printable series.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace statpipe::stats {

class Histogram {
 public:
  /// Bins the half-open range [lo, hi) into `bins` equal cells; samples
  /// outside the range are clamped into the first/last bin so mass is
  /// never silently dropped.
  Histogram(double lo, double hi, std::size_t bins);

  /// Convenience: range = [min, max] of the sample padded by 1%.
  static Histogram from_samples(std::span<const double> xs, std::size_t bins);

  /// Rebuilds a histogram from its exact parts — the deserialization
  /// counterpart of (lo, hi, counts).  Inputs are treated as adversarial
  /// (they can arrive off the distributed wire): throws
  /// std::invalid_argument on an empty counts vector, non-finite or
  /// unordered bounds, or counts whose sum overflows std::size_t.
  static Histogram from_counts(double lo, double hi,
                               std::vector<std::size_t> counts);

  void add(double x);
  void add(std::span<const double> xs);

  /// Folds another histogram's mass into this one — the distributed /
  /// sharded aggregation primitive.  Both histograms must use the exact
  /// same binning (lo, hi and bin count, compared bitwise); anything else
  /// throws std::invalid_argument instead of silently misbinning mass.
  /// Self-merge doubles every bin, which is well-defined and allowed.
  void merge(const Histogram& other);

  std::size_t bins() const noexcept { return counts_.size(); }
  std::size_t total() const noexcept { return total_; }
  double lo() const noexcept { return lo_; }
  double hi() const noexcept { return hi_; }
  double bin_width() const noexcept;
  double bin_center(std::size_t i) const;
  std::size_t count(std::size_t i) const { return counts_.at(i); }

  /// Density estimate at bin i: count / (total * bin_width); integrates to 1.
  double density(std::size_t i) const;

  /// "center,count,density" CSV rows — what the benches print so the
  /// figures can be re-plotted with any tool.
  std::string to_csv(const std::string& label = "") const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace statpipe::stats
