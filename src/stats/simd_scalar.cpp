// Scalar reference backend: the lane kernels compiled with the target's
// baseline flags only.  This is the portable fallback every platform gets
// and the reference side of the per-backend self-consistency tests; on
// x86-64 "baseline" still means SSE2, but nothing beyond it.
//
// Width policy: kernels are width-agnostic loops, so the scalar backend
// accepts the absolute cap (lanes::kMaxWidth) — wide blocks still amortize
// the per-gate walk overhead even without wide registers — and prefers the
// historical default of 8.
#define STATPIPE_SIMD_NS scalar
#include "stats/lanes_kernels.inl"

namespace statpipe::stats::simd::detail {

const KernelTable* scalar_table() noexcept {
  static constexpr KernelTable t{
      Backend::kScalar,
      "scalar",
      /*max_width=*/lanes::kMaxWidth,
      /*default_width=*/8,
      &scalar::pow_pos_lanes,
      &scalar::variation_factor_lanes,
      &scalar::clark_max_lanes,
      &scalar::chol_field_lanes,
      &scalar::uniform_u64_lanes,
      &scalar::normal_fill_lanes,
      &scalar::sta_block_walk,
  };
  return &t;
}

}  // namespace statpipe::stats::simd::detail
