#include "stats/rng.h"

#include <stdexcept>

namespace statpipe::stats {

std::vector<double> Rng::normal_vector(std::size_t n) {
  std::vector<double> v(n);
  for (auto& x : v) x = normal();
  return v;
}

CorrelatedNormalSampler::CorrelatedNormalSampler(std::vector<double> means,
                                                 std::vector<double> sigmas,
                                                 const Matrix& correlation)
    : means_(std::move(means)), sigmas_(std::move(sigmas)) {
  if (means_.size() != sigmas_.size() || means_.size() != correlation.size())
    throw std::invalid_argument(
        "CorrelatedNormalSampler: means/sigmas/correlation size mismatch");
  for (double s : sigmas_)
    if (s < 0.0)
      throw std::invalid_argument("CorrelatedNormalSampler: negative sigma");
  chol_ = cholesky_psd(correlation);
}

std::vector<double> CorrelatedNormalSampler::sample(Rng& rng) const {
  const std::size_t n = means_.size();
  std::vector<double> z = rng.normal_vector(n);
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j <= i; ++j) s += chol_(i, j) * z[j];
    x[i] = means_[i] + sigmas_[i] * s;
  }
  return x;
}

}  // namespace statpipe::stats
