#include "stats/rng.h"

#include <cmath>
#include <stdexcept>

namespace statpipe::stats {

namespace {

// splitmix64 finalizer: full-avalanche 64-bit mix, the standard recipe for
// deriving independent seeds from a counter.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// 256-layer ziggurat tables for the standard normal (Marsaglia & Tsang,
// "The Ziggurat Method for Generating Random Variables", JSS 2000).  The
// density is covered by 255 equal-area horizontal strips plus a base strip
// of the same area v whose overhang past x = r is the exact Gaussian tail.
// x[i] is the right edge of layer i (x[1] = r, descending to x[256] = 0);
// x[0] = v/f(r) is the virtual base edge that makes layer 0's rectangle
// area equal v too.  y[i] = f(x[i]) are the strip boundaries for the wedge
// test.  Standard constants for N = 256 layers.
struct ZigguratTables {
  static constexpr int kLayers = 256;
  static constexpr double kR = 3.6541528853610088;      // tail cut
  static constexpr double kV = 4.92867323399e-3;        // area per strip
  double x[kLayers + 1];
  double y[kLayers + 1];

  ZigguratTables() {
    const double f_r = std::exp(-0.5 * kR * kR);
    x[0] = kV / f_r;
    x[1] = kR;
    y[0] = 0.0;  // base strip's lower bound (never used in a wedge test)
    y[1] = f_r;
    for (int i = 1; i < kLayers; ++i) {
      // Equal-area recurrence: f(x[i+1]) = v/x[i] + f(x[i]).
      const double fy = kV / x[i] + std::exp(-0.5 * x[i] * x[i]);
      if (fy >= 1.0) {
        x[i + 1] = 0.0;
        y[i + 1] = 1.0;
      } else {
        x[i + 1] = std::sqrt(-2.0 * std::log(fy));
        y[i + 1] = fy;
      }
    }
    x[kLayers] = 0.0;
    y[kLayers] = 1.0;
  }
};

const ZigguratTables& ziggurat() {
  static const ZigguratTables tables;
  return tables;
}

}  // namespace

void Xoshiro256::reseed(std::uint64_t seed) noexcept {
  // Four independent splitmix64 steps, the seeding Blackman/Vigna recommend;
  // the all-zero state (invalid for xoshiro) cannot survive the guard.
  std::uint64_t sm = seed;
  auto next_sm = [&sm] {
    sm += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = sm;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  };
  s_[0] = next_sm();
  s_[1] = next_sm();
  s_[2] = next_sm();
  s_[3] = next_sm();
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 0x9e3779b97f4a7c15ULL;
}

double Rng::normal() {
  const ZigguratTables& t = ziggurat();
  for (;;) {
    const std::uint64_t bits = gen_();
    const int i = static_cast<int>(bits & 0xFF);  // layer
    const bool neg = (bits >> 8) & 1;             // sign
    // Magnitude: 55 uniform bits scaled into [0, x[i]).
    const double u = static_cast<double>(bits >> 9) * 0x1.0p-55;
    const double mag = u * t.x[i];
    if (mag < t.x[i + 1]) return neg ? -mag : mag;  // fully inside the layer
    if (i == 0) {
      // Base-strip overhang: the exact Gaussian tail beyond r (Marsaglia's
      // exponential-rejection tail sampler).
      for (;;) {
        const double xx = -std::log(unit_pos()) / ZigguratTables::kR;
        const double yy = -std::log(unit_pos());
        if (yy + yy > xx * xx)
          return neg ? -(ZigguratTables::kR + xx) : ZigguratTables::kR + xx;
      }
    }
    // Wedge: uniform height within the strip vs the true density.
    const double yv = t.y[i] + unit() * (t.y[i + 1] - t.y[i]);
    if (yv < std::exp(-0.5 * mag * mag)) return neg ? -mag : mag;
  }
}

Rng Rng::fork(std::uint64_t stream_id) const {
  // Mix seed and counter through independent avalanche rounds so adjacent
  // stream ids land in unrelated regions of the seed space.
  return Rng(splitmix64(splitmix64(seed_) ^
                        splitmix64(stream_id ^ 0x51ed2701a49c8e5fULL)));
}

std::vector<double> Rng::normal_vector(std::size_t n) {
  std::vector<double> v(n);
  for (auto& x : v) x = normal();
  return v;
}

void Rng::normal_fill(std::vector<double>& out, std::size_t n) {
  out.resize(n);
  for (auto& x : out) x = normal();
}

void Rng::normal_fill_scaled(double sigma, double* out, std::size_t n,
                             std::size_t stride) {
  for (std::size_t i = 0; i < n; ++i) out[i * stride] = sigma * normal();
}

CorrelatedNormalSampler::CorrelatedNormalSampler(std::vector<double> means,
                                                 std::vector<double> sigmas,
                                                 const Matrix& correlation)
    : means_(std::move(means)), sigmas_(std::move(sigmas)) {
  if (means_.size() != sigmas_.size() || means_.size() != correlation.size())
    throw std::invalid_argument(
        "CorrelatedNormalSampler: means/sigmas/correlation size mismatch");
  for (double s : sigmas_)
    if (s < 0.0)
      throw std::invalid_argument("CorrelatedNormalSampler: negative sigma");
  chol_ = cholesky_psd(correlation);
}

std::vector<double> CorrelatedNormalSampler::sample(Rng& rng) const {
  std::vector<double> z, x;
  sample_into(rng, z, x);
  return x;
}

void CorrelatedNormalSampler::sample_into(Rng& rng, std::vector<double>& z,
                                          std::vector<double>& out) const {
  const std::size_t n = means_.size();
  rng.normal_fill(z, n);
  out.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j <= i; ++j) s += chol_(i, j) * z[j];
    out[i] = means_[i] + sigmas_[i] * s;
  }
}

}  // namespace statpipe::stats
