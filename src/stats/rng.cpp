#include "stats/rng.h"

#include <cmath>
#include <stdexcept>
#include <string>

#include "stats/simd.h"

namespace statpipe::stats {

namespace {

// splitmix64 finalizer: full-avalanche 64-bit mix, the standard recipe for
// deriving independent seeds from a counter.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// One xoshiro256** step on a raw 4-word state — the exact recurrence of
// Xoshiro256::operator(), for the slow path that advances a state the
// caller handed over by pointer.
std::uint64_t raw_next(std::uint64_t s[4]) noexcept {
  const auto rotl = [](std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  };
  const std::uint64_t result = rotl(s[1] * 5, 7) * 9;
  const std::uint64_t t = s[1] << 17;
  s[2] ^= s[0];
  s[3] ^= s[1];
  s[1] ^= s[2];
  s[0] ^= s[3];
  s[2] ^= t;
  s[3] = rotl(s[3], 45);
  return result;
}

// The [0,1) / (0,1] conversions of Rng::unit / Rng::unit_pos on a raw
// draw — duplicated formulas would be a resequencing bug waiting to happen,
// so both normal paths share these.
double raw_unit(std::uint64_t w) noexcept {
  return static_cast<double>(w >> 11) * 0x1.0p-53;
}
double raw_unit_pos(std::uint64_t w) noexcept {
  return static_cast<double>((w >> 11) + 1) * 0x1.0p-53;
}

}  // namespace

namespace ziggurat {

namespace {

// The density is covered by 255 equal-area horizontal strips plus a base
// strip of the same area v whose overhang past x = r is the exact Gaussian
// tail.  Standard constants for N = 256 layers (kR/kV in rng.h).
Tables build_tables() {
  Tables t;
  const double f_r = std::exp(-0.5 * kR * kR);
  t.x[0] = kV / f_r;
  t.x[1] = kR;
  t.y[0] = 0.0;  // base strip's lower bound (never used in a wedge test)
  t.y[1] = f_r;
  for (int i = 1; i < kLayers; ++i) {
    // Equal-area recurrence: f(x[i+1]) = v/x[i] + f(x[i]).
    const double fy = kV / t.x[i] + std::exp(-0.5 * t.x[i] * t.x[i]);
    if (fy >= 1.0) {
      t.x[i + 1] = 0.0;
      t.y[i + 1] = 1.0;
    } else {
      t.x[i + 1] = std::sqrt(-2.0 * std::log(fy));
      t.y[i + 1] = fy;
    }
  }
  t.x[kLayers] = 0.0;
  t.y[kLayers] = 1.0;
  return t;
}

}  // namespace

const Tables& tables() noexcept {
  static const Tables t = build_tables();
  return t;
}

double normal_slow(std::uint64_t bits, std::uint64_t s[4]) noexcept {
  const Tables& t = tables();
  for (;;) {
    const int i = static_cast<int>(bits & 0xFF);  // layer
    const bool neg = (bits >> 8) & 1;             // sign
    // Magnitude: 55 uniform bits scaled into [0, x[i]).
    const double u = static_cast<double>(bits >> 9) * 0x1.0p-55;
    const double mag = u * t.x[i];
    if (mag < t.x[i + 1]) return neg ? -mag : mag;  // fully inside the layer
    if (i == 0) {
      // Base-strip overhang: the exact Gaussian tail beyond r (Marsaglia's
      // exponential-rejection tail sampler).
      for (;;) {
        const double xx = -std::log(raw_unit_pos(raw_next(s))) / kR;
        const double yy = -std::log(raw_unit_pos(raw_next(s)));
        if (yy + yy > xx * xx) return neg ? -(kR + xx) : kR + xx;
      }
    }
    // Wedge: uniform height within the strip vs the true density.
    const double yv = t.y[i] + raw_unit(raw_next(s)) * (t.y[i + 1] - t.y[i]);
    if (yv < std::exp(-0.5 * mag * mag)) return neg ? -mag : mag;
    bits = raw_next(s);
  }
}

}  // namespace ziggurat

void Xoshiro256::reseed(std::uint64_t seed) noexcept {
  // Four independent splitmix64 steps, the seeding Blackman/Vigna recommend;
  // the all-zero state (invalid for xoshiro) cannot survive the guard.
  std::uint64_t sm = seed;
  auto next_sm = [&sm] {
    sm += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = sm;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  };
  s_[0] = next_sm();
  s_[1] = next_sm();
  s_[2] = next_sm();
  s_[3] = next_sm();
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 0x9e3779b97f4a7c15ULL;
}

double Rng::normal() {
  // Rectangle fast path inline (~98.8% of draws); everything rarer — wedge,
  // tail, re-draws — lives in ziggurat::normal_slow, the one implementation
  // the lane-batched kernels also fall back to.  The first engine draw and
  // the rectangle test here are exactly normal_slow's first iteration, so
  // handing the failed draw over changes nothing in the sequence.
  const ziggurat::Tables& t = ziggurat::tables();
  const std::uint64_t bits = gen_();
  const std::size_t i = static_cast<std::size_t>(bits & 0xFF);
  const double u = static_cast<double>(bits >> 9) * 0x1.0p-55;
  const double mag = u * t.x[i];
  if (mag < t.x[i + 1]) return (bits >> 8) & 1 ? -mag : mag;
  return ziggurat::normal_slow(bits, gen_.state());
}

Rng Rng::fork(std::uint64_t stream_id) const {
  // Mix seed and counter through independent avalanche rounds so adjacent
  // stream ids land in unrelated regions of the seed space.
  return Rng(splitmix64(splitmix64(seed_) ^
                        splitmix64(stream_id ^ 0x51ed2701a49c8e5fULL)));
}

std::vector<double> Rng::normal_vector(std::size_t n) {
  std::vector<double> v(n);
  normal_fill_scaled(1.0, v.data(), n);
  return v;
}

void Rng::normal_fill(std::vector<double>& out, std::size_t n) {
  out.resize(n);
  normal_fill_scaled(1.0, out.data(), n);
}

void Rng::normal_fill_scaled(double sigma, double* out, std::size_t n,
                             std::size_t stride) {
  for (std::size_t i = 0; i < n; ++i) out[i * stride] = sigma * normal();
}

void RngBlock::pack(const Rng* lane_rngs, std::size_t width) {
  if (width == 0 || width > lanes::kMaxWidth)
    throw std::invalid_argument(
        "RngBlock::pack: width " + std::to_string(width) +
        " outside [1, " + std::to_string(lanes::kMaxWidth) + "]");
  width_ = width;
  for (std::size_t j = 0; j < width; ++j) {
    const std::uint64_t* s = lane_rngs[j].engine().state();
    for (std::size_t k = 0; k < 4; ++k) s_[k][j] = s[k];
  }
}

void RngBlock::unpack(Rng* lane_rngs) const {
  require_packed("unpack");
  for (std::size_t j = 0; j < width_; ++j) {
    std::uint64_t* s = lane_rngs[j].engine().state();
    for (std::size_t k = 0; k < 4; ++k) s[k] = s_[k][j];
  }
}

void RngBlock::normal_fill(double sigma, double* out, std::size_t n,
                           std::size_t stride) {
  require_packed("normal_fill");
  simd::kernels().normal_fill_lanes(s_[0], s_[1], s_[2], s_[3], width_, sigma,
                                    n, stride, out);
}

void RngBlock::uniform_u64(std::uint64_t* out, std::size_t n,
                           std::size_t stride) {
  require_packed("uniform_u64");
  simd::kernels().uniform_u64_lanes(s_[0], s_[1], s_[2], s_[3], width_, n,
                                    stride, out);
}

void RngBlock::require_packed(const char* fn) const {
  if (width_ == 0)
    throw std::logic_error(std::string("RngBlock::") + fn +
                           ": no lanes packed");
}

CorrelatedNormalSampler::CorrelatedNormalSampler(std::vector<double> means,
                                                 std::vector<double> sigmas,
                                                 const Matrix& correlation)
    : means_(std::move(means)), sigmas_(std::move(sigmas)) {
  if (means_.size() != sigmas_.size() || means_.size() != correlation.size())
    throw std::invalid_argument(
        "CorrelatedNormalSampler: means/sigmas/correlation size mismatch");
  for (double s : sigmas_)
    if (s < 0.0)
      throw std::invalid_argument("CorrelatedNormalSampler: negative sigma");
  chol_ = cholesky_psd(correlation);
}

std::vector<double> CorrelatedNormalSampler::sample(Rng& rng) const {
  std::vector<double> z, x;
  sample_into(rng, z, x);
  return x;
}

void CorrelatedNormalSampler::sample_into(Rng& rng, std::vector<double>& z,
                                          std::vector<double>& out) const {
  const std::size_t n = means_.size();
  rng.normal_fill(z, n);
  out.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j <= i; ++j) s += chol_(i, j) * z[j];
    out[i] = means_[i] + sigmas_[i] * s;
  }
}

}  // namespace statpipe::stats
