#include "stats/rng.h"

#include <stdexcept>

namespace statpipe::stats {

namespace {

// splitmix64 finalizer: full-avalanche 64-bit mix, the standard recipe for
// deriving independent seeds from a counter.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

Rng Rng::fork(std::uint64_t stream_id) const {
  // Mix seed and counter through independent avalanche rounds so adjacent
  // stream ids land in unrelated regions of the seed space.
  return Rng(splitmix64(splitmix64(seed_) ^
                        splitmix64(stream_id ^ 0x51ed2701a49c8e5fULL)));
}

std::vector<double> Rng::normal_vector(std::size_t n) {
  std::vector<double> v(n);
  for (auto& x : v) x = normal();
  return v;
}

void Rng::normal_fill(std::vector<double>& out, std::size_t n) {
  out.resize(n);
  for (auto& x : out) x = normal();
}

CorrelatedNormalSampler::CorrelatedNormalSampler(std::vector<double> means,
                                                 std::vector<double> sigmas,
                                                 const Matrix& correlation)
    : means_(std::move(means)), sigmas_(std::move(sigmas)) {
  if (means_.size() != sigmas_.size() || means_.size() != correlation.size())
    throw std::invalid_argument(
        "CorrelatedNormalSampler: means/sigmas/correlation size mismatch");
  for (double s : sigmas_)
    if (s < 0.0)
      throw std::invalid_argument("CorrelatedNormalSampler: negative sigma");
  chol_ = cholesky_psd(correlation);
}

std::vector<double> CorrelatedNormalSampler::sample(Rng& rng) const {
  std::vector<double> z, x;
  sample_into(rng, z, x);
  return x;
}

void CorrelatedNormalSampler::sample_into(Rng& rng, std::vector<double>& z,
                                          std::vector<double>& out) const {
  const std::size_t n = means_.size();
  rng.normal_fill(z, n);
  out.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j <= i; ++j) s += chol_(i, j) * z[j];
    out[i] = means_[i] + sigmas_[i] * s;
  }
}

}  // namespace statpipe::stats
