#include "stats/clark.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "stats/simd.h"

namespace statpipe::stats {

namespace {
// Below this, X1 - X2 is treated as deterministic and the max is exact.
constexpr double kDegenerateA = 1e-12;
}  // namespace

ClarkMax clark_max(const Gaussian& x1, const Gaussian& x2, double rho) {
  if (x1.sigma < 0.0 || x2.sigma < 0.0)
    throw std::invalid_argument("clark_max: negative sigma");
  if (rho < -1.0 - 1e-9 || rho > 1.0 + 1e-9)
    throw std::invalid_argument("clark_max: |rho| > 1");
  rho = std::clamp(rho, -1.0, 1.0);

  const double s1 = x1.sigma, s2 = x2.sigma;
  const double a2 = std::max(s1 * s1 + s2 * s2 - 2.0 * rho * s1 * s2, 0.0);
  const double a = std::sqrt(a2);

  if (a < kDegenerateA) {
    // X1 - X2 is (numerically) a constant: the max is just the larger input.
    const Gaussian& m = x1.mean >= x2.mean ? x1 : x2;
    const double alpha = x1.mean >= x2.mean
                             ? std::numeric_limits<double>::infinity()
                             : -std::numeric_limits<double>::infinity();
    return {m, alpha, a, x1.mean >= x2.mean ? 1.0 : 0.0};
  }

  const double alpha = (x1.mean - x2.mean) / a;
  const double cdf_a = normal_cdf(alpha);
  const double cdf_ma = normal_cdf(-alpha);
  const double pdf_a = normal_pdf(alpha);

  const double m1 = x1.mean * cdf_a + x2.mean * cdf_ma + a * pdf_a;
  const double m2 = (x1.mean * x1.mean + s1 * s1) * cdf_a +
                    (x2.mean * x2.mean + s2 * s2) * cdf_ma +
                    (x1.mean + x2.mean) * a * pdf_a;
  const double var = std::max(m2 - m1 * m1, 0.0);

  return {{m1, std::sqrt(var)}, alpha, a, cdf_a};
}

double clark_correlation(const Gaussian& x1, const Gaussian& x2,
                         const ClarkMax& cm, double rho13, double rho23) {
  if (cm.max.sigma <= 0.0) return 0.0;
  // Cov(X3, max) = s3 * [s1 rho13 Phi(alpha) + s2 rho23 Phi(-alpha)]
  // => rho(X3, max) = [s1 rho13 Phi(alpha) + s2 rho23 Phi(-alpha)] / sd(max)
  const double num =
      x1.sigma * rho13 * cm.phi_a + x2.sigma * rho23 * (1.0 - cm.phi_a);
  return std::clamp(num / cm.max.sigma, -1.0, 1.0);
}

void clark_max_lanes(const GaussianLanesView& x1, const GaussianLanesView& x2,
                     const double* rho, std::size_t lanes,
                     const ClarkLanes& out) {
  // Validation pass first (same rejections as clark_max), so the dispatched
  // kernel is pure arithmetic with no data-dependent control flow.  The
  // degenerate-lane handling (X1 - X2 numerically constant: rho = ±1 with
  // matching sigmas, or two zero-variance inputs) lives in the kernel as
  // lane-wise selection on a sanitized divisor — see
  // stats/lanes_kernels.inl for the body, stats/simd.h for dispatch.
  for (std::size_t k = 0; k < lanes; ++k) {
    if (x1.sigma[k] < 0.0 || x2.sigma[k] < 0.0)
      throw std::invalid_argument("clark_max: negative sigma");
    if (rho[k] < -1.0 - 1e-9 || rho[k] > 1.0 + 1e-9)
      throw std::invalid_argument("clark_max: |rho| > 1");
  }
  simd::kernels().clark_max_lanes(x1.mean, x1.sigma, x2.mean, x2.sigma, rho,
                                  lanes, out.mean, out.sigma, out.alpha,
                                  out.a, out.phi_a);
}

namespace {

std::vector<std::size_t> make_order(const std::vector<Gaussian>& vars,
                                    ClarkOrdering ordering) {
  std::vector<std::size_t> order(vars.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  switch (ordering) {
    case ClarkOrdering::kIncreasingMean:
      std::stable_sort(order.begin(), order.end(), [&](auto i, auto j) {
        return vars[i].mean < vars[j].mean;
      });
      break;
    case ClarkOrdering::kDecreasingMean:
      std::stable_sort(order.begin(), order.end(), [&](auto i, auto j) {
        return vars[i].mean > vars[j].mean;
      });
      break;
    case ClarkOrdering::kAsGiven:
      break;
  }
  return order;
}

}  // namespace

Gaussian clark_max_n(const std::vector<Gaussian>& vars,
                     const Matrix& correlation, ClarkOrdering ordering) {
  const std::size_t n = vars.size();
  if (n == 0) throw std::invalid_argument("clark_max_n: no variables");
  if (correlation.size() != n)
    throw std::invalid_argument("clark_max_n: correlation size mismatch");
  if (n == 1) return vars[0];

  const auto order = make_order(vars, ordering);

  // Running max M and its correlation with every original variable.
  Gaussian m = vars[order[0]];
  std::vector<double> rho_m(n);  // rho(M, X_j), indexed by original id
  for (std::size_t j = 0; j < n; ++j) rho_m[j] = correlation(order[0], j);

  for (std::size_t k = 1; k < n; ++k) {
    const std::size_t idx = order[k];
    const Gaussian& x = vars[idx];
    const double rho_mx = rho_m[idx];
    const ClarkMax cm = clark_max(m, x, rho_mx);

    // Update rho(new M, X_j) for all not-yet-consumed variables (eq. 6).
    std::vector<double> rho_next(n, 0.0);
    for (std::size_t t = k + 1; t < n; ++t) {
      const std::size_t j = order[t];
      rho_next[j] =
          clark_correlation(m, x, cm, rho_m[j], correlation(idx, j));
    }
    rho_m = std::move(rho_next);
    m = cm.max;
  }
  return m;
}

Gaussian clark_max_n(const std::vector<Gaussian>& vars, ClarkOrdering ordering) {
  return clark_max_n(vars, Matrix::identity(vars.size()), ordering);
}

}  // namespace statpipe::stats
