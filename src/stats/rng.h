// Seeded random number generation for Monte-Carlo experiments.
//
// Every sampler in the repository takes an explicit Rng so all experiments
// are deterministic and reproducible from a printed seed.  For sharded
// parallel runs, fork(stream_id) splits a root Rng into disjoint child
// streams keyed only on (seed, stream_id) — independent of how many draws
// have already been made — so shard results never depend on thread count.
//
// The core engine is xoshiro256** (Blackman & Vigna, public domain) seeded
// through splitmix64: O(1) construction makes the per-sample fork of the
// block Monte-Carlo path essentially free (a mt19937 would pay a 312-word
// re-seed per die), and normal draws use a 256-layer ziggurat rejection
// sampler (~1 engine draw per deviate) instead of the much slower
// std::normal_distribution — the gate-level engines spend a per-site RDF
// draw per die, so deviate cost is hot-path cost.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "stats/matrix.h"

namespace statpipe::stats {

/// xoshiro256** uniform random bit generator: 256-bit state, 64-bit output,
/// O(1) seeding.  Satisfies std::uniform_random_bit_generator so the
/// std::*_distribution adapters keep working on top of it.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;
  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  explicit Xoshiro256(std::uint64_t seed = 0) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept;

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

/// Seeded generator with the convenience draws the samplers use.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL)
      : seed_(seed), gen_(seed) {}

  /// Standard normal draw (256-layer ziggurat).
  double normal();

  /// N(mean, sigma^2) draw.
  double normal(double mean, double sigma) { return mean + sigma * normal(); }

  /// Uniform in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0) {
    return lo + (hi - lo) * unit();
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(gen_);
  }

  /// Vector of n iid standard normals.
  std::vector<double> normal_vector(std::size_t n);

  /// Fills `out` (resized to n) with iid standard normals — the
  /// allocation-free form for per-shard workspaces.
  void normal_fill(std::vector<double>& out, std::size_t n);

  /// Writes n iid N(0, sigma^2) draws to out[0], out[stride], ... — one
  /// batched call for strided SoA targets (a DieBlock lane) and contiguous
  /// arrays alike.  Draw k equals normal(0.0, sigma) issued k-th, so scalar
  /// and lane-block samplers consuming the same stream stay bitwise-equal.
  void normal_fill_scaled(double sigma, double* out, std::size_t n,
                          std::size_t stride = 1);

  /// Derive an independent child stream by drawing from this engine.  The
  /// child depends on the current engine position (two forks give distinct
  /// streams) — use for sequential per-stage / per-run seeding.
  Rng fork() { return Rng(gen_()); }

  /// Counter-based stream split: the child depends only on this Rng's
  /// construction seed and `stream_id`, not on draw position.  Distinct ids
  /// give statistically independent, reproducible streams — the shard and
  /// per-sample streams of the parallel simulation engine.  O(1): cheap
  /// enough to fork one stream per Monte-Carlo die.
  Rng fork(std::uint64_t stream_id) const;

  /// Seed this Rng was constructed with (the stream key fork(id) mixes).
  std::uint64_t seed() const noexcept { return seed_; }

  Xoshiro256& engine() noexcept { return gen_; }

 private:
  /// Uniform double in [0, 1): the top 53 bits of one engine draw.
  double unit() { return static_cast<double>(gen_() >> 11) * 0x1.0p-53; }
  /// Uniform double in (0, 1]: safe as a log() argument (tail sampling).
  double unit_pos() {
    return static_cast<double>((gen_() >> 11) + 1) * 0x1.0p-53;
  }

  std::uint64_t seed_;
  Xoshiro256 gen_;
};

/// Draws from a multivariate normal with given means, sigmas and correlation
/// matrix.  The Cholesky factor of the correlation matrix is computed once
/// at construction (PSD-tolerant, so rho = 1 "inter-die only" cases work).
class CorrelatedNormalSampler {
 public:
  CorrelatedNormalSampler(std::vector<double> means, std::vector<double> sigmas,
                          const Matrix& correlation);

  /// One joint draw: x_i = mu_i + sigma_i * (L z)_i with z iid N(0,1).
  std::vector<double> sample(Rng& rng) const;

  /// Same draw into caller-owned buffers: `z` is the standard-normal
  /// workspace, `out` the joint sample.  Both are resized; no other
  /// allocation happens in steady state — the batched form the Monte-Carlo
  /// shards loop over.
  void sample_into(Rng& rng, std::vector<double>& z,
                   std::vector<double>& out) const;

  std::size_t dimension() const noexcept { return means_.size(); }

 private:
  std::vector<double> means_;
  std::vector<double> sigmas_;
  Matrix chol_;  // lower factor of the correlation matrix
};

}  // namespace statpipe::stats
