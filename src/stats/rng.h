// Seeded random number generation for Monte-Carlo experiments.
//
// Every sampler in the repository takes an explicit Rng so all experiments
// are deterministic and reproducible from a printed seed.  For sharded
// parallel runs, fork(stream_id) splits a root Rng into disjoint child
// streams keyed only on (seed, stream_id) — independent of how many draws
// have already been made — so shard results never depend on thread count.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "stats/matrix.h"

namespace statpipe::stats {

/// Thin wrapper over mt19937_64 with convenience draws.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL)
      : seed_(seed), gen_(seed) {}

  /// Standard normal draw.
  double normal() { return normal_(gen_); }

  /// N(mean, sigma^2) draw.
  double normal(double mean, double sigma) { return mean + sigma * normal_(gen_); }

  /// Uniform in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(gen_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(gen_);
  }

  /// Vector of n iid standard normals.
  std::vector<double> normal_vector(std::size_t n);

  /// Fills `out` (resized to n) with iid standard normals — the
  /// allocation-free form for per-shard workspaces.
  void normal_fill(std::vector<double>& out, std::size_t n);

  /// Derive an independent child stream by drawing from this engine.  The
  /// child depends on the current engine position (two forks give distinct
  /// streams) — use for sequential per-stage / per-run seeding.
  Rng fork() { return Rng(gen_()); }

  /// Counter-based stream split: the child depends only on this Rng's
  /// construction seed and `stream_id`, not on draw position.  Distinct ids
  /// give statistically independent, reproducible streams — the shard
  /// streams of the parallel simulation engine.
  Rng fork(std::uint64_t stream_id) const;

  /// Seed this Rng was constructed with (the stream key fork(id) mixes).
  std::uint64_t seed() const noexcept { return seed_; }

  std::mt19937_64& engine() noexcept { return gen_; }

 private:
  std::uint64_t seed_;
  std::mt19937_64 gen_;
  std::normal_distribution<double> normal_;
};

/// Draws from a multivariate normal with given means, sigmas and correlation
/// matrix.  The Cholesky factor of the correlation matrix is computed once
/// at construction (PSD-tolerant, so rho = 1 "inter-die only" cases work).
class CorrelatedNormalSampler {
 public:
  CorrelatedNormalSampler(std::vector<double> means, std::vector<double> sigmas,
                          const Matrix& correlation);

  /// One joint draw: x_i = mu_i + sigma_i * (L z)_i with z iid N(0,1).
  std::vector<double> sample(Rng& rng) const;

  /// Same draw into caller-owned buffers: `z` is the standard-normal
  /// workspace, `out` the joint sample.  Both are resized; no other
  /// allocation happens in steady state — the batched form the Monte-Carlo
  /// shards loop over.
  void sample_into(Rng& rng, std::vector<double>& z,
                   std::vector<double>& out) const;

  std::size_t dimension() const noexcept { return means_.size(); }

 private:
  std::vector<double> means_;
  std::vector<double> sigmas_;
  Matrix chol_;  // lower factor of the correlation matrix
};

}  // namespace statpipe::stats
