// Seeded random number generation for Monte-Carlo experiments.
//
// Every sampler in the repository takes an explicit Rng so all experiments
// are deterministic and reproducible from a printed seed.  For sharded
// parallel runs, fork(stream_id) splits a root Rng into disjoint child
// streams keyed only on (seed, stream_id) — independent of how many draws
// have already been made — so shard results never depend on thread count.
//
// The core engine is xoshiro256** (Blackman & Vigna, public domain) seeded
// through splitmix64: O(1) construction makes the per-sample fork of the
// block Monte-Carlo path essentially free (a mt19937 would pay a 312-word
// re-seed per die), and normal draws use a 256-layer ziggurat rejection
// sampler (~1 engine draw per deviate) instead of the much slower
// std::normal_distribution — the gate-level engines spend a per-site RDF
// draw per die, so deviate cost is hot-path cost.
//
// For the block Monte-Carlo path, RngBlock holds W lane streams in SoA
// form and batches their draws through the active SIMD backend
// (stats/simd.h's uniform_u64_lanes / normal_fill_lanes): lane j still
// consumes exactly its own stream's u64 sequence, so batching reorders
// draws only across lanes — unobservable per stream — and every lane stays
// bitwise-identical to the same draws issued one by one on that lane's Rng.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "stats/lanes.h"
#include "stats/matrix.h"

namespace statpipe::stats {

/// xoshiro256** uniform random bit generator: 256-bit state, 64-bit output,
/// O(1) seeding.  Satisfies std::uniform_random_bit_generator so the
/// std::*_distribution adapters keep working on top of it.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;
  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  explicit Xoshiro256(std::uint64_t seed = 0) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept;

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Raw 4-word state, for SoA pack/unpack (RngBlock) and the external
  /// ziggurat slow path.  Mutating it repositions the stream: only code
  /// that replays the exact engine recurrence (ziggurat::normal_slow, the
  /// lane-batched draw kernels) may write here.
  std::uint64_t* state() noexcept { return s_; }
  const std::uint64_t* state() const noexcept { return s_; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

/// The 256-layer ziggurat for the standard normal (Marsaglia & Tsang, "The
/// Ziggurat Method for Generating Random Variables", JSS 2000), split so
/// the scalar Rng::normal() and the lane-batched normal_fill_lanes kernels
/// share one table set and ONE implementation of the rare slow path — the
/// rejection tail/wedge logic both paths must execute identically for the
/// per-lane bitwise contract to hold.
namespace ziggurat {

inline constexpr int kLayers = 256;
inline constexpr double kR = 3.6541528853610088;  ///< tail cut
inline constexpr double kV = 4.92867323399e-3;    ///< area per strip

/// x[i] is the right edge of layer i (x[1] = r, descending to x[256] = 0);
/// x[0] = v/f(r) is the virtual base edge that makes layer 0's rectangle
/// area equal v too.  y[i] = f(x[i]) are the strip boundaries for the
/// wedge test.
struct Tables {
  double x[kLayers + 1];
  double y[kLayers + 1];
};

/// The process-wide tables, built once on first use.  Extern (one
/// default-target definition in rng.cpp) so every per-ISA kernel TU reads
/// the same construction — the lanes_kernels.inl rules forbid file-scope
/// state in the backend TUs.
const Tables& tables() noexcept;

/// Slow path of one ziggurat draw: `bits` is the engine draw whose
/// rectangle test failed (re-tested here — it fails again deterministically
/// — so the function replays Rng::normal()'s loop verbatim from that
/// draw), `s` the raw xoshiro256** state positioned just after `bits` was
/// produced, advanced in place by however many extra draws the tail /
/// wedge rejection consumes.  Returns exactly what Rng::normal() returns
/// from the same state — the shared fallback of the scalar fast path and
/// every backend's normal_fill_lanes.
double normal_slow(std::uint64_t bits, std::uint64_t s[4]) noexcept;

}  // namespace ziggurat

/// Seeded generator with the convenience draws the samplers use.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL)
      : seed_(seed), gen_(seed) {}

  /// Standard normal draw (256-layer ziggurat).
  double normal();

  /// N(mean, sigma^2) draw.
  double normal(double mean, double sigma) { return mean + sigma * normal(); }

  /// Uniform in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0) {
    return lo + (hi - lo) * unit();
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(gen_);
  }

  /// Vector of n iid standard normals.
  std::vector<double> normal_vector(std::size_t n);

  /// Fills `out` (resized to n) with iid standard normals — the
  /// allocation-free form for per-shard workspaces.
  void normal_fill(std::vector<double>& out, std::size_t n);

  /// Writes n iid N(0, sigma^2) draws to out[0], out[stride], ... — one
  /// batched call for strided SoA targets (a DieBlock lane) and contiguous
  /// arrays alike.  This is the single strided core every other normal
  /// batch form (normal_vector, normal_fill, CorrelatedNormalSampler)
  /// routes through; draw k equals sigma * normal() issued k-th, so scalar
  /// and lane-block samplers consuming the same stream stay bitwise-equal.
  void normal_fill_scaled(double sigma, double* out, std::size_t n,
                          std::size_t stride = 1);

  /// Derive an independent child stream by drawing from this engine.  The
  /// child depends on the current engine position (two forks give distinct
  /// streams) — use for sequential per-stage / per-run seeding.
  Rng fork() { return Rng(gen_()); }

  /// Counter-based stream split: the child depends only on this Rng's
  /// construction seed and `stream_id`, not on draw position.  Distinct ids
  /// give statistically independent, reproducible streams — the shard and
  /// per-sample streams of the parallel simulation engine.  O(1): cheap
  /// enough to fork one stream per Monte-Carlo die.
  Rng fork(std::uint64_t stream_id) const;

  /// Seed this Rng was constructed with (the stream key fork(id) mixes).
  std::uint64_t seed() const noexcept { return seed_; }

  Xoshiro256& engine() noexcept { return gen_; }
  const Xoshiro256& engine() const noexcept { return gen_; }

 private:
  /// Uniform double in [0, 1): the top 53 bits of one engine draw.
  double unit() { return static_cast<double>(gen_() >> 11) * 0x1.0p-53; }
  /// Uniform double in (0, 1]: safe as a log() argument (tail sampling).
  double unit_pos() {
    return static_cast<double>((gen_() >> 11) + 1) * 0x1.0p-53;
  }

  std::uint64_t seed_;
  Xoshiro256 gen_;
};

/// SoA block of up to lanes::kMaxWidth xoshiro256** lane streams — the
/// draw-side twin of process::DieBlock.  pack() transposes W Rng engines
/// into four word-planes (s_[k][j] = word k of lane j); the batched fills
/// then advance all lanes through the active SIMD backend's draw kernels,
/// and unpack() writes the advanced states back so the caller's Rng array
/// continues exactly where scalar draws would have left it.
///
/// Per-lane stream identity: lane j's state evolves by the same recurrence,
/// and its draws are consumed by the same consumers in the same per-lane
/// order, as if lane j's Rng had issued them one by one — batching reorders
/// draws only across lanes.  Rare ziggurat rejections drop the affected
/// lane into ziggurat::normal_slow, the same code the scalar path runs, so
/// the equality is exact, not approximate (the backend×width matrix in
/// tests/test_simd.cpp pins it).
///
/// Fixed-capacity (2 KB inline, no heap): cheap to keep in per-shard
/// workspaces or on the stack.
class RngBlock {
 public:
  /// Captures lane_rngs[0..width) into SoA form.  Throws
  /// std::invalid_argument when width is 0 or exceeds lanes::kMaxWidth.
  void pack(const Rng* lane_rngs, std::size_t width);

  /// Writes the (advanced) lane states back onto lane_rngs[0..width()) —
  /// engine state only; each Rng keeps its own seed/stream key.
  void unpack(Rng* lane_rngs) const;

  std::size_t width() const noexcept { return width_; }

  /// Batched strided normal fill: out[i*stride + j] = sigma * (the i-th
  /// standard-normal deviate of lane j), for i < n, j < width().  Lane j's
  /// i-th value is bitwise-equal to the i-th call of
  /// lane_j.normal_fill_scaled(sigma, ...) on the same state.  Dispatched
  /// to the active SIMD backend; stride must be >= width().
  void normal_fill(double sigma, double* out, std::size_t n,
                   std::size_t stride);

  /// Batched strided raw engine draws: out[i*stride + j] = the i-th u64 of
  /// lane j.  Same layout and stride rule as normal_fill.
  void uniform_u64(std::uint64_t* out, std::size_t n, std::size_t stride);

 private:
  void require_packed(const char* fn) const;

  std::size_t width_ = 0;
  std::uint64_t s_[4][lanes::kMaxWidth];
};

/// Draws from a multivariate normal with given means, sigmas and correlation
/// matrix.  The Cholesky factor of the correlation matrix is computed once
/// at construction (PSD-tolerant, so rho = 1 "inter-die only" cases work).
class CorrelatedNormalSampler {
 public:
  CorrelatedNormalSampler(std::vector<double> means, std::vector<double> sigmas,
                          const Matrix& correlation);

  /// One joint draw: x_i = mu_i + sigma_i * (L z)_i with z iid N(0,1).
  std::vector<double> sample(Rng& rng) const;

  /// Same draw into caller-owned buffers: `z` is the standard-normal
  /// workspace, `out` the joint sample.  Both are resized; no other
  /// allocation happens in steady state — the batched form the Monte-Carlo
  /// shards loop over.
  void sample_into(Rng& rng, std::vector<double>& z,
                   std::vector<double>& out) const;

  std::size_t dimension() const noexcept { return means_.size(); }

 private:
  std::vector<double> means_;
  std::vector<double> sigmas_;
  Matrix chol_;  // lower factor of the correlation matrix
};

}  // namespace statpipe::stats
