#include "stats/gaussian.h"

#include <cmath>
#include <limits>
#include <sstream>

namespace statpipe::stats {

namespace {
constexpr double kInvSqrt2 = 0.70710678118654752440;
constexpr double kInvSqrt2Pi = 0.39894228040143267794;
}  // namespace

double normal_pdf(double x) noexcept {
  return kInvSqrt2Pi * std::exp(-0.5 * x * x);
}

double normal_cdf(double x) noexcept {
  return 0.5 * std::erfc(-x * kInvSqrt2);
}

double normal_sf(double x) noexcept {
  return 0.5 * std::erfc(x * kInvSqrt2);
}

namespace {

// Acklam's rational approximation to the inverse normal CDF.
// |relative error| < 1.15e-9 before refinement.
double icdf_acklam(double p) {
  static constexpr double a[6] = {
      -3.969683028665376e+01, 2.209460984245205e+02,  -2.759285104469687e+02,
      1.383577518672690e+02,  -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[5] = {
      -5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
      6.680131188771972e+01,  -1.328068155288572e+01};
  static constexpr double c[6] = {
      -7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
      -2.549732539343734e+00, 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[4] = {
      7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
      3.754408661907416e+00};

  constexpr double p_low = 0.02425;
  constexpr double p_high = 1.0 - p_low;

  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p <= p_high) {
    const double q = p - 0.5;
    const double r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  }
  const double q = std::sqrt(-2.0 * std::log1p(-p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

}  // namespace

double normal_icdf(double p) {
  if (!(p > 0.0 && p < 1.0)) {
    throw std::domain_error("normal_icdf: p must lie in (0,1), got " +
                            std::to_string(p));
  }
  double x = icdf_acklam(p);
  // One Halley refinement: solves Phi(x) - p = 0 to near machine precision.
  const double e = normal_cdf(x) - p;
  const double u = e / normal_pdf(x);       // Newton step
  x -= u / (1.0 + 0.5 * x * u);             // Halley correction
  return x;
}

Gaussian iid_sum(const Gaussian& unit, double n) {
  if (n < 0.0) throw std::domain_error("iid_sum: n must be >= 0");
  return {n * unit.mean, std::sqrt(n) * unit.sigma};
}

std::string to_string(const Gaussian& g) {
  std::ostringstream os;
  os << "N(" << g.mean << ", " << g.sigma << ")";
  return os.str();
}

}  // namespace statpipe::stats
