// Descriptive statistics over Monte-Carlo sample vectors.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace statpipe::stats {

/// Single-pass running mean/variance accumulator (Welford's algorithm).
/// Numerically stable for the millions of MC samples the benches produce.
class RunningStats {
 public:
  /// Exact internal state, exposed so accumulators can cross process
  /// boundaries (dist/serialize) without losing a bit: a RunningStats
  /// rebuilt via from_state(state()) is indistinguishable from the
  /// original — same mean/variance/min/max down to the last ulp.
  struct State {
    std::size_t n = 0;
    double mean = 0.0;
    double m2 = 0.0;
    double min = 0.0;
    double max = 0.0;
  };

  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;

  State state() const noexcept { return {n_, mean_, m2_, min_, max_}; }
  /// Rebuilds an accumulator from a state snapshot.  The state is
  /// VALIDATED, not trusted: snapshots arrive off the distributed wire
  /// (dist/serialize), so a hostile or corrupt peer can put arbitrary bit
  /// patterns in every field.  Throws std::invalid_argument on anything no
  /// add()/merge() sequence can produce — non-finite mean/m2/min/max,
  /// negative m2, min > max, or n == 0 with nonzero moments — instead of
  /// letting NaN/inf poison every later fold.
  static RunningStats from_state(const State& s);

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance (n-1 denominator); 0 for fewer than 2 samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

double mean(std::span<const double> xs);
double variance(std::span<const double> xs);  ///< unbiased (n-1)
double stddev(std::span<const double> xs);

/// Empirical quantile with linear interpolation (type-7, the numpy default).
/// Requires 0 <= q <= 1 and a non-empty sample.  Sorts a copy.
double quantile(std::span<const double> xs, double q);

/// Fraction of samples <= threshold — the Monte-Carlo yield estimator
/// corresponding to eq. (2) of the paper.
double empirical_cdf_at(std::span<const double> xs, double threshold);

/// Pearson correlation coefficient of two equally-sized samples.
double pearson(std::span<const double> xs, std::span<const double> ys);

/// Standard error of a binomial proportion estimate (for yield CIs).
double proportion_stderr(double p, std::size_t n);

}  // namespace statpipe::stats
