// Gaussian (normal) distribution primitives.
//
// The paper's analytical machinery (Clark's operator, yield formulas,
// design-space bounds) is built entirely on the standard-normal pdf phi,
// cdf Phi and quantile Phi^-1.  These are hand-rolled here: the repository
// must not depend on anything beyond the C++ standard library.
//
// Layer contract (src/stats, see docs/ARCHITECTURE.md): the foundation
// layer.  Owns distribution primitives, Clark's max operator (scalar and
// lane-batched), the counter-splittable Rng, matrices and descriptive
// statistics.  Must not include any other src/ subsystem — only the C++
// standard library.
#pragma once

#include <cmath>
#include <stdexcept>
#include <string>

namespace statpipe::stats {

/// Standard normal probability density  phi(x) = exp(-x^2/2)/sqrt(2*pi).
double normal_pdf(double x) noexcept;

/// Standard normal cumulative distribution  Phi(x), via erfc for accuracy
/// in both tails (absolute error < 1e-15 over the double range).
double normal_cdf(double x) noexcept;

/// Upper-tail probability  Q(x) = 1 - Phi(x) = Phi(-x), tail-accurate.
double normal_sf(double x) noexcept;

/// Inverse standard normal cdf  Phi^-1(p) for p in (0, 1).
///
/// Implementation: Acklam's rational approximation refined with one step of
/// Halley's method on  Phi(x) - p = 0, giving |relative error| < 1e-12.
/// Throws std::domain_error for p outside (0, 1).
double normal_icdf(double p);

/// A scalar Gaussian random variable N(mean, sigma^2); the universal
/// currency of this library (stage delays, gate delays, parameter shifts).
struct Gaussian {
  double mean = 0.0;
  double sigma = 0.0;  ///< standard deviation, must be >= 0

  constexpr Gaussian() = default;
  constexpr Gaussian(double m, double s) : mean(m), sigma(s) {}

  double variance() const noexcept { return sigma * sigma; }

  /// sigma/mu — the paper's "variability" metric (section 3.1).
  /// Requires mean != 0.
  double variability() const {
    if (mean == 0.0) throw std::domain_error("variability undefined for zero mean");
    return sigma / mean;
  }

  /// Pr{X <= x}.
  double cdf(double x) const noexcept {
    if (sigma <= 0.0) return x >= mean ? 1.0 : 0.0;
    return normal_cdf((x - mean) / sigma);
  }

  /// Density at x.
  double pdf(double x) const noexcept {
    if (sigma <= 0.0) return 0.0;
    const double z = (x - mean) / sigma;
    return normal_pdf(z) / sigma;
  }

  /// x such that Pr{X <= x} = p.
  double quantile(double p) const { return mean + sigma * normal_icdf(p); }

  /// Sum of independent Gaussians.
  friend Gaussian operator+(const Gaussian& a, const Gaussian& b) noexcept {
    return {a.mean + b.mean, std::sqrt(a.sigma * a.sigma + b.sigma * b.sigma)};
  }

  /// Deterministic shift.
  friend Gaussian operator+(const Gaussian& a, double c) noexcept {
    return {a.mean + c, a.sigma};
  }

  /// Scaling: c*X ~ N(c*mu, (|c|*sigma)^2).
  friend Gaussian operator*(double c, const Gaussian& a) noexcept {
    return {c * a.mean, std::abs(c) * a.sigma};
  }

  bool operator==(const Gaussian&) const = default;
};

/// Sum of n iid copies: N(n*mu, n*sigma^2).  The inverter-chain relation
/// of eq. (13): mu = NL*mu_min, sigma = sqrt(NL)*sigma_min.
Gaussian iid_sum(const Gaussian& unit, double n);

/// Human-readable "N(mu, sigma)" for diagnostics.
std::string to_string(const Gaussian& g);

}  // namespace statpipe::stats
