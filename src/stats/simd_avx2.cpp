// AVX2 backend (x86-64 only): 4 doubles per register, full-width integer
// ops for pow_pos's exponent splicing.  Compiled with -mavx2 but never
// -mfma, and under the project-wide -ffp-contract=off, so the wider lanes
// execute the exact IEEE sequence of the scalar reference — which is what
// keeps this backend on the repository's bitwise determinism contract.
//
// Width policy: max 32 (one lane row of the four Clark SoA arrays at width
// 32 spans four cache lines — past that the walk turns memory-bound before
// the wider registers help), default 16.
#if defined(__x86_64__) || defined(_M_X64)

#define STATPIPE_SIMD_NS avx2
#include "stats/lanes_kernels.inl"

namespace statpipe::stats::simd::detail {

const KernelTable* avx2_table() noexcept {
  static constexpr KernelTable t{
      Backend::kAvx2,
      "avx2",
      /*max_width=*/32,
      /*default_width=*/16,
      &avx2::pow_pos_lanes,
      &avx2::variation_factor_lanes,
      &avx2::clark_max_lanes,
      &avx2::chol_field_lanes,
      &avx2::uniform_u64_lanes,
      &avx2::normal_fill_lanes,
      &avx2::sta_block_walk,
  };
  return &t;
}

}  // namespace statpipe::stats::simd::detail

#else  // non-x86: backend compiled out

#include "stats/simd.h"

namespace statpipe::stats::simd::detail {
const KernelTable* avx2_table() noexcept { return nullptr; }
}  // namespace statpipe::stats::simd::detail

#endif
