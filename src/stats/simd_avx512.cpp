// AVX-512 backend (x86-64 only): 8 doubles per register.  Requires the
// F+DQ+BW+VL subset — DQ for native packed int64 arithmetic in pow_pos's
// exponent splicing, VL so the compiler can use 512-bit-profile encodings
// at narrower widths for the tail loops.  -mprefer-vector-width=512 opts
// into full-width vectors (gcc's default of 256 leaves half the unit idle;
// the frequency-licensing downside mostly concerns pre-Ice-Lake parts).
// No -mfma, same rationale as the AVX2 backend.
//
// Width policy: the absolute cap (lanes::kMaxWidth = 64, eight full
// registers per lane row), default 32.
#if defined(__x86_64__) || defined(_M_X64)

#define STATPIPE_SIMD_NS avx512
#include "stats/lanes_kernels.inl"

namespace statpipe::stats::simd::detail {

const KernelTable* avx512_table() noexcept {
  static constexpr KernelTable t{
      Backend::kAvx512,
      "avx512",
      /*max_width=*/lanes::kMaxWidth,
      /*default_width=*/32,
      &avx512::pow_pos_lanes,
      &avx512::variation_factor_lanes,
      &avx512::clark_max_lanes,
      &avx512::chol_field_lanes,
      &avx512::uniform_u64_lanes,
      &avx512::normal_fill_lanes,
      &avx512::sta_block_walk,
  };
  return &t;
}

}  // namespace statpipe::stats::simd::detail

#else  // non-x86: backend compiled out

#include "stats/simd.h"

namespace statpipe::stats::simd::detail {
const KernelTable* avx512_table() noexcept { return nullptr; }
}  // namespace statpipe::stats::simd::detail

#endif
