// Lane-kernel bodies, compiled once per SIMD backend.
//
// This file is the single source of truth for the hot-loop arithmetic: each
// simd_<backend>.cpp translation unit defines STATPIPE_SIMD_NS and includes
// it, so the identical C++ compiles under different -m flags into
// statpipe::stats::simd::<backend>::* symbols.  The bodies contain only
// IEEE-preserving straight-line loops (no fast-math idioms, no manual
// intrinsics), which is what keeps every backend on the repository's
// bitwise determinism contract: lane j of any kernel executes exactly the
// scalar path's floating-point sequence, whatever register width the
// compiler picked.
//
// Rules for code in this file:
//   * no file-scope state, no non-inline definitions outside the backend
//     namespace (each TU would redefine them);
//   * helpers called from the loops must be always_inline (lanes::pow_pos,
//     lanes::select are) or extern default-target functions (normal_cdf /
//     normal_pdf are) — an inline-but-not-inlined helper emitted as a
//     comdat in several per-ISA TUs would let the linker pick one ISA's
//     copy for all callers;
//   * kernel signatures are raw pointers and PODs only (see simd.h).

#ifndef STATPIPE_SIMD_NS
#error "define STATPIPE_SIMD_NS before including lanes_kernels.inl"
#endif

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>

#include "stats/gaussian.h"
#include "stats/lanes.h"
#include "stats/simd.h"

namespace statpipe::stats::simd {
namespace STATPIPE_SIMD_NS {

void pow_pos_lanes(const double* x, double y, std::size_t n, double* out) {
  for (std::size_t i = 0; i < n; ++i) out[i] = lanes::pow_pos(x[i], y);
}

void variation_factor_lanes(double drive0, double alpha, const double* dvth,
                            const double* dl_rel, std::size_t n,
                            double* out) {
  for (std::size_t j = 0; j < n; ++j) {
    const double lf = 1.0 + dl_rel[j];
    out[j] =
        lanes::pow_pos(drive0 / (drive0 - dvth[j]), alpha) * lf * lf;
  }
}

void clark_max_lanes(const double* mu1v, const double* sg1, const double* mu2v,
                     const double* sg2, const double* rho, std::size_t n,
                     double* out_mean, double* out_sigma, double* out_alpha,
                     double* out_a, double* out_phi) {
  // Arithmetic half of stats::clark_max_lanes; inputs are pre-validated.
  // Below kDegenerateA, X1 - X2 is treated as deterministic (stats/clark.cpp
  // keeps the authoritative constant; the value is part of the per-lane
  // scalar/lane equivalence and must match clark_max's).
  constexpr double kDegenerateA = 1e-12;
  constexpr double kInf = std::numeric_limits<double>::infinity();
  for (std::size_t k = 0; k < n; ++k) {
    const double mu1 = mu1v[k], mu2 = mu2v[k];
    const double s1 = sg1[k], s2 = sg2[k];
    const double r = std::clamp(rho[k], -1.0, 1.0);
    const double a2 = std::max(s1 * s1 + s2 * s2 - 2.0 * r * s1 * s2, 0.0);
    const double a = std::sqrt(a2);

    // Degenerate lanes are handled by selection, not by a branch: the
    // non-degenerate formulas run on a sanitized divisor and their results
    // are discarded lane-wise.
    const bool deg = a < kDegenerateA;
    const bool first = mu1 >= mu2;
    const double a_safe = lanes::select(deg, 1.0, a);

    const double alpha = (mu1 - mu2) / a_safe;
    const double cdf_a = normal_cdf(alpha);
    const double cdf_ma = normal_cdf(-alpha);
    const double pdf_a = normal_pdf(alpha);

    const double m1 = mu1 * cdf_a + mu2 * cdf_ma + a * pdf_a;
    const double m2 = (mu1 * mu1 + s1 * s1) * cdf_a +
                      (mu2 * mu2 + s2 * s2) * cdf_ma + (mu1 + mu2) * a * pdf_a;
    const double var = std::max(m2 - m1 * m1, 0.0);

    out_mean[k] = lanes::select(deg, lanes::select(first, mu1, mu2), m1);
    out_sigma[k] =
        lanes::select(deg, lanes::select(first, s1, s2), std::sqrt(var));
    out_alpha[k] =
        lanes::select(deg, lanes::select(first, kInf, -kInf), alpha);
    out_a[k] = a;
    out_phi[k] = lanes::select(deg, lanes::select(first, 1.0, 0.0), cdf_a);
  }
}

void chol_field_lanes(const double* chol, std::size_t n, std::size_t stride,
                      const double* zt, std::size_t w, double* field) {
  // Lower-triangular multiply with the lane loop innermost: per lane j the
  // adds run k ascending — exactly VariationSampler::sample_into's order —
  // while the w contiguous lanes of each row vectorize.
  for (std::size_t i = 0; i < n; ++i) {
    const double* li = chol + i * stride;
    double* fi = field + i * w;
    for (std::size_t j = 0; j < w; ++j) fi[j] = 0.0;
    for (std::size_t k = 0; k <= i; ++k) {
      const double lik = li[k];
      const double* zk = zt + k * w;
      for (std::size_t j = 0; j < w; ++j) fi[j] += lik * zk[j];
    }
  }
}

std::size_t sta_block_walk(const StaWalkArgs& a) {
  const std::size_t W = a.width;
  // Hoist the scratch rows into __restrict locals: through the struct
  // members gcc must assume every a.* pointer may alias every other and
  // refuses to vectorize the lane loops ("latch block not empty" on the
  // pow sweep); the caller (sta/sta.cpp) owns these as distinct vectors.
  double* __restrict dvth = a.dvth;
  double* __restrict dl = a.dl;
  double* __restrict vf = a.vf;
  const double drive0 = a.drive0;
  const double alpha = a.alpha;
  const double min_ratio = a.min_ratio;
  const double max_ratio = a.max_ratio;
  for (std::size_t gi = 0; gi < a.n_gates; ++gi) {
    double* out = a.arrival + a.gate_ids[gi] * W;
    // in_arr per lane: the scalar fanin fold with the lane loop innermost —
    // same max sequence per die, contiguous lane rows.
    for (std::size_t j = 0; j < W; ++j) out[j] = 0.0;
    for (std::size_t fi = a.fanin_begin[gi]; fi < a.fanin_begin[gi + 1];
         ++fi) {
      const double* fa = a.arrival + a.fanins[fi] * W;
      for (std::size_t j = 0; j < W; ++j) out[j] = std::max(out[j], fa[j]);
    }
    const std::size_t site = a.site[gi];
    const double nominal = a.nominal[gi];
    const double sqrt_size = a.sqrt_size[gi];
    // Per-lane parameter shifts: the DieSample accessor sums, SoA-gathered.
    for (std::size_t j = 0; j < W; ++j) dvth[j] = a.dvth_inter[j];
    if (a.dvth_sys != nullptr) {
      const double* row = a.dvth_sys + site * W;
      for (std::size_t j = 0; j < W; ++j) dvth[j] += row[j];
    }
    if (a.dvth_rnd != nullptr) {
      const double* row = a.dvth_rnd + site * W;
      for (std::size_t j = 0; j < W; ++j) dvth[j] += row[j] / sqrt_size;
    }
    for (std::size_t j = 0; j < W; ++j) dl[j] = a.dl_inter[j];
    if (a.dl_sys != nullptr) {
      const double* row = a.dl_sys + site * W;
      for (std::size_t j = 0; j < W; ++j) dl[j] += row[j];
    }
    // Domain checks for this gate's lane row, hoisted out of the pow sweep
    // (and completed before it runs), matching the scalar variation_factor's
    // per-lane check order: saturation, channel length, drive-ratio window.
    // Branch-free accumulation — an early per-lane return would both keep
    // the loop from vectorizing and leak which lane tripped, which the
    // caller must not depend on (it rescans lane-ascending anyway).  On a
    // violating row the walk stops; the caller rebuilds the exact scalar
    // exception from the shifts left in a.dvth / a.dl.
    int bad = 0;
    for (std::size_t j = 0; j < W; ++j) {
      const double drive = drive0 - dvth[j];
      const double ratio = drive0 / drive;
      // Single-& conjunction, not &&: short-circuit evaluation is control
      // flow inside the lane loop and blocks vectorization.
      const int in_window = static_cast<int>(ratio >= min_ratio) &
                            static_cast<int>(ratio <= max_ratio);
      bad |= static_cast<int>(drive <= 0.0) |
             static_cast<int>(1.0 + dl[j] <= 0.0) | (1 - in_window);
    }
    if (bad != 0) return gi;
    // One vectorized pow sweep over the lane row — the kernel that was
    // ~80% of the block walk as W scalar std::pow calls.  Delegated to this
    // backend's own variation_factor_lanes: identical arithmetic, and the
    // clean pointer-argument loop is the shape gcc's vectorizer accepts.
    variation_factor_lanes(drive0, alpha, dvth, dl, W, vf);
    for (std::size_t j = 0; j < W; ++j) out[j] += nominal * vf[j];
  }

  double* __restrict critical = a.critical;
  for (std::size_t j = 0; j < W; ++j) critical[j] = 0.0;
  for (std::size_t o = 0; o < a.n_outputs; ++o) {
    const double* oa = a.arrival + a.outputs[o] * W;
    for (std::size_t j = 0; j < W; ++j)
      critical[j] = lanes::select(oa[j] >= critical[j], oa[j], critical[j]);
  }
  return kNoFault;
}

}  // namespace STATPIPE_SIMD_NS
}  // namespace statpipe::stats::simd
