// Lane-kernel bodies, compiled once per SIMD backend.
//
// This file is the single source of truth for the hot-loop arithmetic: each
// simd_<backend>.cpp translation unit defines STATPIPE_SIMD_NS and includes
// it, so the identical C++ compiles under different -m flags into
// statpipe::stats::simd::<backend>::* symbols.  The bodies contain only
// IEEE-preserving straight-line loops (no fast-math idioms, and no manual
// intrinsics in any arithmetic), which is what keeps every backend on the
// repository's bitwise determinism contract: lane j of any kernel executes
// exactly the scalar path's floating-point sequence, whatever register
// width the compiler picked.  The one sanctioned intrinsic use is pure
// DATA MOVEMENT: the ziggurat table-gather pass uses hardware gather loads
// where the TU's -m flags provide them (__AVX2__ / __AVX512F__ blocks
// below) — a load returns the stored bits either way, so the contract is
// untouched.
//
// Rules for code in this file:
//   * no file-scope state, no non-inline definitions outside the backend
//     namespace (each TU would redefine them);
//   * helpers called from the loops must be always_inline (lanes::pow_pos,
//     lanes::select are) or extern default-target functions (normal_cdf /
//     normal_pdf, ziggurat::tables / ziggurat::normal_slow are) — an
//     inline-but-not-inlined helper emitted as a
//     comdat in several per-ISA TUs would let the linker pick one ISA's
//     copy for all callers;
//   * kernel signatures are raw pointers and PODs only (see simd.h).

#ifndef STATPIPE_SIMD_NS
#error "define STATPIPE_SIMD_NS before including lanes_kernels.inl"
#endif

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>

#if defined(__AVX2__)
#include <immintrin.h>
#endif

#include "stats/gaussian.h"
#include "stats/lanes.h"
#include "stats/rng.h"
#include "stats/simd.h"

namespace statpipe::stats::simd {
namespace STATPIPE_SIMD_NS {

// One xoshiro256** step on SoA lane state — Xoshiro256::operator()'s exact
// recurrence with the four state words passed by reference.  Lives inside
// the backend namespace (a distinct symbol per TU, no comdat to
// deduplicate) and always_inline so each backend's draw loops compile it
// under their own -m flags.
__attribute__((always_inline)) inline std::uint64_t xoshiro_step(
    std::uint64_t& e0, std::uint64_t& e1, std::uint64_t& e2,
    std::uint64_t& e3) noexcept {
  const auto rotl = [](std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  };
  const std::uint64_t result = rotl(e1 * 5, 7) * 9;
  const std::uint64_t t = e1 << 17;
  e2 ^= e0;
  e3 ^= e1;
  e1 ^= e2;
  e0 ^= e3;
  e2 ^= t;
  e3 = rotl(e3, 45);
  return result;
}

void pow_pos_lanes(const double* x, double y, std::size_t n, double* out) {
  for (std::size_t i = 0; i < n; ++i) out[i] = lanes::pow_pos(x[i], y);
}

void variation_factor_lanes(double drive0, double alpha, const double* dvth,
                            const double* dl_rel, std::size_t n,
                            double* out) {
  for (std::size_t j = 0; j < n; ++j) {
    const double lf = 1.0 + dl_rel[j];
    out[j] =
        lanes::pow_pos(drive0 / (drive0 - dvth[j]), alpha) * lf * lf;
  }
}

void clark_max_lanes(const double* mu1v, const double* sg1, const double* mu2v,
                     const double* sg2, const double* rho, std::size_t n,
                     double* out_mean, double* out_sigma, double* out_alpha,
                     double* out_a, double* out_phi) {
  // Arithmetic half of stats::clark_max_lanes; inputs are pre-validated.
  // Below kDegenerateA, X1 - X2 is treated as deterministic (stats/clark.cpp
  // keeps the authoritative constant; the value is part of the per-lane
  // scalar/lane equivalence and must match clark_max's).
  constexpr double kDegenerateA = 1e-12;
  constexpr double kInf = std::numeric_limits<double>::infinity();
  for (std::size_t k = 0; k < n; ++k) {
    const double mu1 = mu1v[k], mu2 = mu2v[k];
    const double s1 = sg1[k], s2 = sg2[k];
    const double r = std::clamp(rho[k], -1.0, 1.0);
    const double a2 = std::max(s1 * s1 + s2 * s2 - 2.0 * r * s1 * s2, 0.0);
    const double a = std::sqrt(a2);

    // Degenerate lanes are handled by selection, not by a branch: the
    // non-degenerate formulas run on a sanitized divisor and their results
    // are discarded lane-wise.
    const bool deg = a < kDegenerateA;
    const bool first = mu1 >= mu2;
    const double a_safe = lanes::select(deg, 1.0, a);

    const double alpha = (mu1 - mu2) / a_safe;
    const double cdf_a = normal_cdf(alpha);
    const double cdf_ma = normal_cdf(-alpha);
    const double pdf_a = normal_pdf(alpha);

    const double m1 = mu1 * cdf_a + mu2 * cdf_ma + a * pdf_a;
    const double m2 = (mu1 * mu1 + s1 * s1) * cdf_a +
                      (mu2 * mu2 + s2 * s2) * cdf_ma + (mu1 + mu2) * a * pdf_a;
    const double var = std::max(m2 - m1 * m1, 0.0);

    out_mean[k] = lanes::select(deg, lanes::select(first, mu1, mu2), m1);
    out_sigma[k] =
        lanes::select(deg, lanes::select(first, s1, s2), std::sqrt(var));
    out_alpha[k] =
        lanes::select(deg, lanes::select(first, kInf, -kInf), alpha);
    out_a[k] = a;
    out_phi[k] = lanes::select(deg, lanes::select(first, 1.0, 0.0), cdf_a);
  }
}

void chol_field_lanes(const double* chol, std::size_t n, std::size_t stride,
                      const double* zt, std::size_t w, double* field) {
  // Lower-triangular multiply with the lane loop innermost: per lane j the
  // adds run k ascending — exactly VariationSampler::sample_into's order —
  // while the w contiguous lanes of each row vectorize.
  for (std::size_t i = 0; i < n; ++i) {
    const double* li = chol + i * stride;
    double* fi = field + i * w;
    for (std::size_t j = 0; j < w; ++j) fi[j] = 0.0;
    for (std::size_t k = 0; k <= i; ++k) {
      const double lik = li[k];
      const double* zk = zt + k * w;
      for (std::size_t j = 0; j < w; ++j) fi[j] += lik * zk[j];
    }
  }
}

// Row-chunk geometry for the RNG kernels.  A straight row-major loop
// reloads and rewrites the 4 SoA state words of every lane on every row —
// 8 memory ops per ~10-op xoshiro step, leaving pass A memory-bound — so
// the generate pass is unrolled kRngUnroll rows deep: state words are
// loaded into (vector) registers once per unrolled group and stored once,
// cutting state traffic 8x.  The ziggurat math then runs as separate flat
// SoA passes over a kRngRows x w chunk (long contiguous trip counts that
// every backend vectorizes; a fused per-row loop would be serialized by
// the table gathers in its middle).  Work is reordered only ACROSS lanes —
// each lane's draw sequence stays row-ascending, so the per-lane bitwise
// contract is unaffected.
constexpr std::size_t kRngRows = 8;
constexpr std::size_t kRngUnroll = 8;
static_assert(kRngRows % kRngUnroll == 0);

// Pass A: step every lane's engine rows times, bits laid out row-major
// [rows x w] (contiguous, stride w).  The t-loop is the vector loop; the
// unrolled steps inside it keep a0..a3 live in registers across
// kRngUnroll rows.  Two things gcc needs spelled out for the t-loop to
// actually vectorize: the 8 steps unrolled BY HAND (the loop-vectorizer
// only looks at innermost loops, and `#pragma GCC unroll` fires after it),
// and W as a COMPILE-TIME constant — with runtime w the 8 store streams
// base[k*w + t] cost 28 pairwise alias checks, past the versioning budget,
// and the loop silently stays scalar.  rng_generate_chunk below dispatches
// the power-of-two widths onto these instantiations.
template <std::size_t W>
inline void rng_generate_chunk_w(std::uint64_t* __restrict s0,
                                 std::uint64_t* __restrict s1,
                                 std::uint64_t* __restrict s2,
                                 std::uint64_t* __restrict s3,
                                 std::size_t rows,
                                 std::uint64_t* __restrict bits) {
  std::size_t r = 0;
  for (; r + kRngUnroll <= rows; r += kRngUnroll) {
    std::uint64_t* base = bits + r * W;
    for (std::size_t t = 0; t < W; ++t) {
      std::uint64_t a0 = s0[t], a1 = s1[t], a2 = s2[t], a3 = s3[t];
      base[0 * W + t] = xoshiro_step(a0, a1, a2, a3);
      base[1 * W + t] = xoshiro_step(a0, a1, a2, a3);
      base[2 * W + t] = xoshiro_step(a0, a1, a2, a3);
      base[3 * W + t] = xoshiro_step(a0, a1, a2, a3);
      base[4 * W + t] = xoshiro_step(a0, a1, a2, a3);
      base[5 * W + t] = xoshiro_step(a0, a1, a2, a3);
      base[6 * W + t] = xoshiro_step(a0, a1, a2, a3);
      base[7 * W + t] = xoshiro_step(a0, a1, a2, a3);
      s0[t] = a0;
      s1[t] = a1;
      s2[t] = a2;
      s3[t] = a3;
    }
  }
  for (; r < rows; ++r) {
    std::uint64_t* brow = bits + r * W;
    for (std::size_t t = 0; t < W; ++t)
      brow[t] = xoshiro_step(s0[t], s1[t], s2[t], s3[t]);
  }
}

inline void rng_generate_chunk(std::uint64_t* __restrict s0,
                               std::uint64_t* __restrict s1,
                               std::uint64_t* __restrict s2,
                               std::uint64_t* __restrict s3, std::size_t w,
                               std::size_t rows,
                               std::uint64_t* __restrict bits) {
  switch (w) {
    case 8:
      return rng_generate_chunk_w<8>(s0, s1, s2, s3, rows, bits);
    case 16:
      return rng_generate_chunk_w<16>(s0, s1, s2, s3, rows, bits);
    case 32:
      return rng_generate_chunk_w<32>(s0, s1, s2, s3, rows, bits);
    case 64:
      return rng_generate_chunk_w<64>(s0, s1, s2, s3, rows, bits);
    default:
      break;
  }
  // Odd widths (w=1 and test-only sizes): plain row-major stepping — the
  // same per-lane draw sequence, just without the unrolled state reuse.
  for (std::size_t r = 0; r < rows; ++r) {
    std::uint64_t* brow = bits + r * w;
    for (std::size_t t = 0; t < w; ++t)
      brow[t] = xoshiro_step(s0[t], s1[t], s2[t], s3[t]);
  }
}

void uniform_u64_lanes(std::uint64_t* s0, std::uint64_t* s1, std::uint64_t* s2,
                       std::uint64_t* s3, std::size_t w, std::size_t n,
                       std::size_t stride, std::uint64_t* out) {
  if (stride == w) {
    // Contiguous output: generate straight into it, amortizing state
    // traffic over kRngUnroll rows per load/store.
    rng_generate_chunk(s0, s1, s2, s3, w, n, out);
    return;
  }
  std::uint64_t bits[kRngRows * lanes::kMaxWidth];
  for (std::size_t c = 0; c < n; c += kRngRows) {
    const std::size_t rows = std::min(kRngRows, n - c);
    rng_generate_chunk(s0, s1, s2, s3, w, rows, bits);
    for (std::size_t r = 0; r < rows; ++r) {
      std::uint64_t* row = out + (c + r) * stride;
      const std::uint64_t* brow = bits + r * w;
      for (std::size_t t = 0; t < w; ++t) row[t] = brow[t];
    }
  }
}

void normal_fill_lanes(std::uint64_t* s0, std::uint64_t* s1, std::uint64_t* s2,
                       std::uint64_t* s3, std::size_t w, double sigma,
                       std::size_t n, std::size_t stride, double* out) {
  // One ziggurat draw per lane per row, one kRngRows x w chunk at a time:
  //  A  generate the chunk's raw draws (rng_generate_chunk above);
  //  B1 split each draw — layer index low 8 bits, sign bit 8 shifted onto
  //     bit 63, magnitude bits the top 55 converted to double;
  //  B2 gather the layer's rectangle bounds from the ziggurat table (the
  //     one serial pass; kept out of the others' way);
  //  B3 the branch-free rectangle fast path: mag = u * x[i], the sign bit
  //     XORed straight into the double's bit pattern (exactly the scalar
  //     `neg ? -mag : mag`), accept iff mag < x[i+1];
  //  B4 scatter values to the strided output rows, folding accept flags
  //     per lane;
  //  C  only for lanes with >=1 rejected row in the chunk: REPLAY the lane
  //     from its chunk-entry state scalar-side.  Accepted rows just
  //     re-step the engine (their stored value is already bitwise right);
  //     rejected rows re-enter the scalar rejection loop via
  //     ziggurat::normal_slow (extern default-target, shared with
  //     Rng::normal).  The replay consumes the lane's engine in exactly
  //     the scalar draw order, so lane j's values and stream position stay
  //     bitwise those of scalar draws on lane j's Rng, whatever the
  //     backend (~98.8% of draws accept; a 16-row lane replays with
  //     probability ~17%, at one int step per accepted row).
  const double* zx = ziggurat::tables().x;
  std::uint64_t bits[kRngRows * lanes::kMaxWidth];
  double xi[kRngRows * lanes::kMaxWidth];
  double xi1[kRngRows * lanes::kMaxWidth];
  std::uint64_t rej[kRngRows * lanes::kMaxWidth];
  std::uint64_t save0[lanes::kMaxWidth], save1[lanes::kMaxWidth],
      save2[lanes::kMaxWidth], save3[lanes::kMaxWidth];
  std::uint64_t lane_rej[lanes::kMaxWidth];
  for (std::size_t c = 0; c < n; c += kRngRows) {
    const std::size_t rows = std::min(kRngRows, n - c);
    const std::size_t n_el = rows * w;
    for (std::size_t t = 0; t < w; ++t) {
      save0[t] = s0[t];
      save1[t] = s1[t];
      save2[t] = s2[t];
      save3[t] = s3[t];
      lane_rej[t] = 0;
    }
    rng_generate_chunk(s0, s1, s2, s3, w, rows, bits);
    // Rectangle-bound gather pass.  The indexed loads are the one part gcc
    // will not vectorize on its own; where the TU's ISA has hardware
    // gathers they are used explicitly — gathers are loads, not
    // arithmetic, so every backend still reads the identical table bits.
    {
      std::size_t e = 0;
#if defined(__AVX512F__)
      const __m512i lmask = _mm512_set1_epi64(0xFF);
      for (; e + 8 <= n_el; e += 8) {
        const __m512i b =
            _mm512_loadu_si512(reinterpret_cast<const void*>(bits + e));
        const __m512i idx = _mm512_and_epi64(b, lmask);
        _mm512_storeu_pd(xi + e, _mm512_i64gather_pd(idx, zx, 8));
        _mm512_storeu_pd(xi1 + e, _mm512_i64gather_pd(idx, zx + 1, 8));
      }
#elif defined(__AVX2__)
      const __m256i lmask = _mm256_set1_epi64x(0xFF);
      for (; e + 4 <= n_el; e += 4) {
        const __m256i b =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bits + e));
        const __m256i idx = _mm256_and_si256(b, lmask);
        _mm256_storeu_pd(xi + e, _mm256_i64gather_pd(zx, idx, 8));
        _mm256_storeu_pd(xi1 + e, _mm256_i64gather_pd(zx + 1, idx, 8));
      }
#endif
      for (; e < n_el; ++e) {
        const double* zp = zx + (bits[e] & 0xFF);
        xi[e] = zp[0];
        xi1[e] = zp[1];
      }
    }
    for (std::size_t r = 0; r < rows; ++r) {
      double* row = out + (c + r) * stride;
      const std::uint64_t* brow = bits + r * w;
      const double* xrow = xi + r * w;
      const double* x1row = xi1 + r * w;
      std::uint64_t* rrow = rej + r * w;
      for (std::size_t t = 0; t < w; ++t) {
        const std::uint64_t b = brow[t];
        const std::uint64_t sgn = (b & 0x100ULL) << 55;
        // double(b >> 9) without the u64->f64 instruction (no vector form
        // before AVX-512): the 55-bit value split at bit 32, each half
        // made exact via the 2^52 mantissa-injection trick, recombined
        // with ONE rounding add — by uniqueness of round-to-nearest this
        // is bitwise the correctly-rounded conversion the scalar path
        // gets from the hardware instruction.
        const std::uint64_t v = b >> 9;
        const double hi =
            std::bit_cast<double>((v >> 32) | 0x4330000000000000ULL) -
            0x1.0p52;
        const double lo =
            std::bit_cast<double>((v & 0xffffffffULL) |
                                  0x4330000000000000ULL) -
            0x1.0p52;
        // Same rounding sequence as the scalar path: u = double(bits>>9)
        // * 2^-55 is exact (power-of-two scale), the one rounding is the
        // multiply by x[i].
        const double u = hi * 0x1.0p32 + lo;
        const double mag = (u * 0x1.0p-55) * xrow[t];
        row[t] = sigma * std::bit_cast<double>(
                             std::bit_cast<std::uint64_t>(mag) ^ sgn);
        // Single-! on the accept test (not a branch): reject when the
        // magnitude is NOT strictly inside the next layer's rectangle.
        const std::uint64_t rj =
            static_cast<std::uint64_t>(!(mag < x1row[t]));
        rrow[t] = rj;
        lane_rej[t] |= rj;
      }
    }
    std::uint64_t any = 0;
    for (std::size_t t = 0; t < w; ++t) any |= lane_rej[t];
    if (any != 0) {
      for (std::size_t t = 0; t < w; ++t) {
        if (lane_rej[t] == 0) continue;
        // Up to the lane's FIRST rejection the chunk's bits match the
        // scalar stream, so those rows' stored values are already right
        // and the warmup below only re-steps the engine (a pure int
        // dependency chain, no branches).  normal_slow consumes extra
        // draws, so from the rejection on the stream has diverged from
        // pass A's bits: every later row is recomputed as a full scalar
        // draw.  Its accept path uses the same sign-XOR form as the
        // vector pass (bitwise the scalar `neg ? -mag : mag`) — the sign
        // bit is a coin flip no branch predictor can learn.
        std::size_t r_first = 0;
        while (rej[r_first * w + t] == 0) ++r_first;
        std::uint64_t s[4] = {save0[t], save1[t], save2[t], save3[t]};
        for (std::size_t r = 0; r < r_first; ++r)
          (void)xoshiro_step(s[0], s[1], s[2], s[3]);
        {
          const std::uint64_t b = xoshiro_step(s[0], s[1], s[2], s[3]);
          out[(c + r_first) * stride + t] =
              sigma * ziggurat::normal_slow(b, s);
        }
        for (std::size_t r = r_first + 1; r < rows; ++r) {
          const std::uint64_t b = xoshiro_step(s[0], s[1], s[2], s[3]);
          const std::size_t idx = static_cast<std::size_t>(b & 0xFF);
          const double u = static_cast<double>(b >> 9) * 0x1.0p-55;
          const double mag = u * zx[idx];
          double* slot = out + (c + r) * stride + t;
          if (mag < zx[idx + 1])
            *slot = sigma *
                    std::bit_cast<double>(std::bit_cast<std::uint64_t>(mag) ^
                                          ((b & 0x100ULL) << 55));
          else
            *slot = sigma * ziggurat::normal_slow(b, s);
        }
        s0[t] = s[0];
        s1[t] = s[1];
        s2[t] = s[2];
        s3[t] = s[3];
      }
    }
  }
}

std::size_t sta_block_walk(const StaWalkArgs& a) {
  const std::size_t W = a.width;
  // Hoist the scratch rows into __restrict locals: through the struct
  // members gcc must assume every a.* pointer may alias every other and
  // refuses to vectorize the lane loops ("latch block not empty" on the
  // pow sweep); the caller (sta/sta.cpp) owns these as distinct vectors.
  double* __restrict dvth = a.dvth;
  double* __restrict dl = a.dl;
  double* __restrict vf = a.vf;
  const double drive0 = a.drive0;
  const double alpha = a.alpha;
  const double min_ratio = a.min_ratio;
  const double max_ratio = a.max_ratio;
  for (std::size_t gi = 0; gi < a.n_gates; ++gi) {
    double* out = a.arrival + a.gate_ids[gi] * W;
    // in_arr per lane: the scalar fanin fold with the lane loop innermost —
    // same max sequence per die, contiguous lane rows.
    for (std::size_t j = 0; j < W; ++j) out[j] = 0.0;
    for (std::size_t fi = a.fanin_begin[gi]; fi < a.fanin_begin[gi + 1];
         ++fi) {
      const double* fa = a.arrival + a.fanins[fi] * W;
      for (std::size_t j = 0; j < W; ++j) out[j] = std::max(out[j], fa[j]);
    }
    const std::size_t site = a.site[gi];
    const double nominal = a.nominal[gi];
    const double sqrt_size = a.sqrt_size[gi];
    // Per-lane parameter shifts: the DieSample accessor sums, SoA-gathered.
    for (std::size_t j = 0; j < W; ++j) dvth[j] = a.dvth_inter[j];
    if (a.dvth_sys != nullptr) {
      const double* row = a.dvth_sys + site * W;
      for (std::size_t j = 0; j < W; ++j) dvth[j] += row[j];
    }
    if (a.dvth_rnd != nullptr) {
      const double* row = a.dvth_rnd + site * W;
      for (std::size_t j = 0; j < W; ++j) dvth[j] += row[j] / sqrt_size;
    }
    for (std::size_t j = 0; j < W; ++j) dl[j] = a.dl_inter[j];
    if (a.dl_sys != nullptr) {
      const double* row = a.dl_sys + site * W;
      for (std::size_t j = 0; j < W; ++j) dl[j] += row[j];
    }
    // Domain checks for this gate's lane row, hoisted out of the pow sweep
    // (and completed before it runs), matching the scalar variation_factor's
    // per-lane check order: saturation, channel length, drive-ratio window.
    // Branch-free accumulation — an early per-lane return would both keep
    // the loop from vectorizing and leak which lane tripped, which the
    // caller must not depend on (it rescans lane-ascending anyway).  On a
    // violating row the walk stops; the caller rebuilds the exact scalar
    // exception from the shifts left in a.dvth / a.dl.
    int bad = 0;
    for (std::size_t j = 0; j < W; ++j) {
      const double drive = drive0 - dvth[j];
      const double ratio = drive0 / drive;
      // Single-& conjunction, not &&: short-circuit evaluation is control
      // flow inside the lane loop and blocks vectorization.
      const int in_window = static_cast<int>(ratio >= min_ratio) &
                            static_cast<int>(ratio <= max_ratio);
      bad |= static_cast<int>(drive <= 0.0) |
             static_cast<int>(1.0 + dl[j] <= 0.0) | (1 - in_window);
    }
    if (bad != 0) return gi;
    // One vectorized pow sweep over the lane row — the kernel that was
    // ~80% of the block walk as W scalar std::pow calls.  Delegated to this
    // backend's own variation_factor_lanes: identical arithmetic, and the
    // clean pointer-argument loop is the shape gcc's vectorizer accepts.
    variation_factor_lanes(drive0, alpha, dvth, dl, W, vf);
    for (std::size_t j = 0; j < W; ++j) out[j] += nominal * vf[j];
  }

  double* __restrict critical = a.critical;
  for (std::size_t j = 0; j < W; ++j) critical[j] = 0.0;
  for (std::size_t o = 0; o < a.n_outputs; ++o) {
    const double* oa = a.arrival + a.outputs[o] * W;
    for (std::size_t j = 0; j < W; ++j)
      critical[j] = lanes::select(oa[j] >= critical[j], oa[j], critical[j]);
  }
  return kNoFault;
}

}  // namespace STATPIPE_SIMD_NS
}  // namespace statpipe::stats::simd
