// Runtime backend selection for the SIMD lane-kernel layer (stats/simd.h).
//
// Selection policy, applied once on the first kernels() call:
//   1. STATPIPE_SIMD set  -> that backend, or throw std::invalid_argument
//      (unknown name, or named backend not runnable on this CPU) with a
//      message listing what this machine detected — a forced backend that
//      silently fell back would defeat the point of forcing it;
//   2. otherwise          -> the most preferred detected backend
//      (scalar < sse42 < avx2 < avx512 on x86-64; scalar < neon on arm64).
//
// Detection uses gcc/clang's __builtin_cpu_supports on x86-64 (CPUID under
// the hood).  On AArch64 no probe is needed: Advanced SIMD is mandated by
// the architecture, so the auxv hwcap check other projects do would be
// read-and-ignore here.  The scalar reference backend is always present.
#include "stats/simd.h"

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "stats/lanes.h"

namespace statpipe::stats::simd {

namespace {

const KernelTable* table_of(Backend b) noexcept {
  switch (b) {
    case Backend::kScalar: return detail::scalar_table();
    case Backend::kSse42: return detail::sse42_table();
    case Backend::kAvx2: return detail::avx2_table();
    case Backend::kAvx512: return detail::avx512_table();
    case Backend::kNeon: return detail::neon_table();
  }
  return nullptr;
}

bool cpu_runs(Backend b) noexcept {
  switch (b) {
    case Backend::kScalar:
      return true;
#if defined(__x86_64__) && defined(__GNUC__)
    case Backend::kSse42:
      return __builtin_cpu_supports("sse4.2");
    case Backend::kAvx2:
      return __builtin_cpu_supports("avx2");
    case Backend::kAvx512:
      // The kernel TU is compiled with F+DQ+BW+VL; all four must be present.
      return __builtin_cpu_supports("avx512f") &&
             __builtin_cpu_supports("avx512dq") &&
             __builtin_cpu_supports("avx512bw") &&
             __builtin_cpu_supports("avx512vl");
#endif
#if defined(__aarch64__)
    case Backend::kNeon:
      return true;  // Advanced SIMD is architecturally mandatory on AArch64.
#endif
    default:
      return false;
  }
}

std::string detected_list() {
  std::string s;
  for (Backend d : detected_backends()) {
    if (!s.empty()) s += ", ";
    s += backend_name(d);
  }
  return s;
}

// kernels() resolution, run once under the magic-static lock.
const KernelTable& resolve_active() {
  if (const char* env = std::getenv("STATPIPE_SIMD"); env != nullptr)
    return resolve_env(env);
  const auto avail = detected_backends();
  return *table_of(avail.back());  // most preferred; scalar at worst
}

// Test-only override; null means "use the env/CPU resolution".
std::atomic<const KernelTable*> g_forced{nullptr};

}  // namespace

const char* backend_name(Backend b) noexcept {
  switch (b) {
    case Backend::kScalar: return "scalar";
    case Backend::kSse42: return "sse42";
    case Backend::kAvx2: return "avx2";
    case Backend::kAvx512: return "avx512";
    case Backend::kNeon: return "neon";
  }
  return "?";
}

std::vector<Backend> detected_backends() {
#if defined(__x86_64__) && defined(__GNUC__)
  __builtin_cpu_init();
#endif
  std::vector<Backend> v;
  for (Backend b : {Backend::kScalar, Backend::kSse42, Backend::kAvx2,
                    Backend::kAvx512, Backend::kNeon})
    if (table_of(b) != nullptr && cpu_runs(b)) v.push_back(b);
  return v;
}

Backend parse_backend(const char* name) {
  const std::string s(name == nullptr ? "" : name);
  if (s == "scalar") return Backend::kScalar;
  if (s == "sse42") return Backend::kSse42;
  if (s == "avx2") return Backend::kAvx2;
  if (s == "avx512") return Backend::kAvx512;
  if (s == "neon") return Backend::kNeon;
  throw std::invalid_argument(
      "unknown SIMD backend '" + s +
      "' (valid: scalar, sse42, avx2, avx512, neon)");
}

const KernelTable* kernels_for(Backend b) noexcept {
  const KernelTable* t = table_of(b);
  return (t != nullptr && cpu_runs(b)) ? t : nullptr;
}

const KernelTable& kernels() {
  if (const KernelTable* f = g_forced.load(std::memory_order_acquire))
    return *f;
  static const KernelTable& active = resolve_active();
  return active;
}

const KernelTable& resolve_env(const char* value) {
  Backend b;
  try {
    b = parse_backend(value);
  } catch (const std::invalid_argument&) {
    throw std::invalid_argument(
        "STATPIPE_SIMD=" + std::string(value == nullptr ? "" : value) +
        ": unknown SIMD backend (valid: scalar, sse42, avx2, avx512, neon);"
        " detected on this machine: " +
        detected_list());
  }
  const KernelTable* t = kernels_for(b);
  if (t == nullptr)
    throw std::invalid_argument(
        "STATPIPE_SIMD=" + std::string(value) +
        ": backend not usable on this machine; detected: " + detected_list());
  return *t;
}

void force_backend_for_testing(Backend b) {
  const KernelTable* t = kernels_for(b);
  if (t == nullptr)
    throw std::invalid_argument(
        std::string("force_backend_for_testing: backend '") +
        backend_name(b) + "' not usable on this machine");
  g_forced.store(t, std::memory_order_release);
}

void clear_forced_backend_for_testing() noexcept {
  g_forced.store(nullptr, std::memory_order_release);
}

}  // namespace statpipe::stats::simd

namespace statpipe::stats::lanes {

std::size_t max_width() { return simd::kernels().max_width; }

std::size_t preferred_width() { return simd::kernels().default_width; }

std::size_t validated_width(std::size_t w) {
  const simd::KernelTable& t = simd::kernels();
  if (w == 0 || w > t.max_width)
    throw std::invalid_argument(
        "block width " + std::to_string(w) + " outside [1, " +
        std::to_string(t.max_width) + "] (SIMD backend '" +
        std::string(t.name) + "'; absolute cap " + std::to_string(kMaxWidth) +
        ")");
  return w;
}

}  // namespace statpipe::stats::lanes
