// NEON backend (arm64 only): 2 doubles per register.  Advanced SIMD is
// architecturally mandatory on AArch64, so this backend needs no extra -m
// flags and no runtime CPU check — it is simply the aarch64 baseline
// compile of the kernels, named so dispatch, STATPIPE_SIMD forcing and
// bench metadata treat both architectures uniformly.  AArch64's baseline
// ISA includes fused multiply-add, so the project-wide -ffp-contract=off
// (CMakeLists.txt) is what keeps contraction out of this backend — and out
// of the aarch64 scalar reference — preserving the bitwise contract.
//
// Width policy mirrors the SSE4.2 backend (same register width): max 16,
// default 8.
#if defined(__aarch64__) || defined(_M_ARM64)

#define STATPIPE_SIMD_NS neon
#include "stats/lanes_kernels.inl"

namespace statpipe::stats::simd::detail {

const KernelTable* neon_table() noexcept {
  static constexpr KernelTable t{
      Backend::kNeon,
      "neon",
      /*max_width=*/16,
      /*default_width=*/8,
      &neon::pow_pos_lanes,
      &neon::variation_factor_lanes,
      &neon::clark_max_lanes,
      &neon::chol_field_lanes,
      &neon::uniform_u64_lanes,
      &neon::normal_fill_lanes,
      &neon::sta_block_walk,
  };
  return &t;
}

}  // namespace statpipe::stats::simd::detail

#else  // non-arm64: backend compiled out

#include "stats/simd.h"

namespace statpipe::stats::simd::detail {
const KernelTable* neon_table() noexcept { return nullptr; }
}  // namespace statpipe::stats::simd::detail

#endif
