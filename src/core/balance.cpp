#include "core/balance.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace statpipe::core {

BalanceAnalyzer::BalanceAnalyzer(std::vector<StageFamily> stages,
                                 LatchOverhead latch, double t_target)
    : stages_(std::move(stages)), latch_(latch), t_target_(t_target) {
  if (stages_.empty())
    throw std::invalid_argument("BalanceAnalyzer: no stages");
  if (t_target_ <= 0.0)
    throw std::invalid_argument("BalanceAnalyzer: t_target <= 0");
  for (const auto& s : stages_)
    if (!s.sigma_of_mu)
      throw std::invalid_argument("BalanceAnalyzer: stage '" + s.name +
                                  "' missing sigma model");
}

PipelineModel BalanceAnalyzer::pipeline_at(
    const std::vector<double>& stage_delays) const {
  if (stage_delays.size() != stages_.size())
    throw std::invalid_argument("pipeline_at: delay count mismatch");
  std::vector<StageModel> models;
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    const double mu = stage_delays[i];
    const auto& fam = stages_[i];
    if (mu < fam.curve.min_delay() - 1e-9 ||
        mu > fam.curve.max_delay() + 1e-9)
      throw std::invalid_argument("pipeline_at: delay for stage '" +
                                  fam.name + "' outside its curve range");
    const double sigma = fam.sigma_of_mu(mu);
    if (sigma <= 0.0)
      throw std::domain_error("pipeline_at: sigma model returned <= 0");
    models.emplace_back(fam.name, stats::Gaussian{mu, sigma},
                        std::clamp(fam.inter_fraction, 0.0, 1.0) * sigma,
                        fam.curve.area_at(mu));
  }
  return PipelineModel(std::move(models), latch_);
}

BalanceResult BalanceAnalyzer::evaluate(
    const std::vector<double>& stage_delays) const {
  PipelineModel pipe = pipeline_at(stage_delays);
  BalanceResult r;
  r.stage_delays = stage_delays;
  for (const auto& s : pipe.stages()) {
    r.stage_areas.push_back(s.area);
    r.total_area += s.area;
  }
  r.pipeline_delay = pipe.delay_distribution();
  r.yield = pipe.yield(t_target_);
  for (std::size_t i = 0; i < pipe.stage_count(); ++i)
    r.stage_yields.push_back(pipe.stage_delay(i).cdf(t_target_));
  return r;
}

BalanceResult BalanceAnalyzer::balanced(double d0) const {
  return evaluate(std::vector<double>(stages_.size(), d0));
}

std::vector<double> BalanceAnalyzer::elasticities(
    const std::vector<double>& delays) const {
  if (delays.size() != stages_.size())
    throw std::invalid_argument("elasticities: delay count mismatch");
  std::vector<double> out;
  out.reserve(stages_.size());
  for (std::size_t i = 0; i < stages_.size(); ++i)
    out.push_back(stages_[i].curve.elasticity_at(delays[i]));
  return out;
}

BalanceResult BalanceAnalyzer::move_area(const BalanceResult& from,
                                         std::size_t donor,
                                         std::size_t receiver,
                                         double d_area) const {
  std::vector<double> delays = from.stage_delays;
  const auto& dc = stages_[donor].curve;
  const auto& rc = stages_[receiver].curve;
  // Donor gives up d_area (moves to larger delay), receiver gains it.
  const double donor_area = from.stage_areas[donor] - d_area;
  const double recv_area = from.stage_areas[receiver] + d_area;
  delays[donor] = dc.delay_at_area(donor_area);
  delays[receiver] = rc.delay_at_area(recv_area);
  return evaluate(delays);
}

namespace {

/// Shared hill-climbing loop; `better(a, b)` = "a strictly improves on b".
template <typename Cmp>
BalanceResult climb(const BalanceAnalyzer& an, BalanceResult cur,
                    std::size_t n_stages, double area_step,
                    std::size_t max_moves, Cmp better,
                    const std::function<BalanceResult(
                        const BalanceResult&, std::size_t, std::size_t,
                        double)>& mover) {
  const double quantum = cur.total_area * area_step;
  for (std::size_t move = 0; move < max_moves; ++move) {
    bool improved = false;
    BalanceResult best = cur;
    for (std::size_t d = 0; d < n_stages; ++d) {
      for (std::size_t r = 0; r < n_stages; ++r) {
        if (d == r) continue;
        BalanceResult cand;
        try {
          cand = mover(cur, d, r, quantum);
        } catch (const std::exception&) {
          continue;  // move ran off a curve end — infeasible, skip
        }
        // Keep total area equal (curve clamping can leak a little).
        if (std::abs(cand.total_area - cur.total_area) >
            1e-6 * cur.total_area)
          continue;
        if (better(cand, best)) {
          best = cand;
          improved = true;
        }
      }
    }
    if (!improved) break;
    cur = best;
  }
  (void)an;
  return cur;
}

}  // namespace

BalanceResult BalanceAnalyzer::rebalance_for_yield(
    const std::vector<double>& start, double area_step,
    std::size_t max_moves) const {
  auto mover = [this](const BalanceResult& f, std::size_t d, std::size_t r,
                      double a) { return move_area(f, d, r, a); };
  return climb(
      *this, evaluate(start), stages_.size(), area_step, max_moves,
      [](const BalanceResult& a, const BalanceResult& b) {
        return a.yield > b.yield + 1e-12;
      },
      mover);
}

BalanceResult BalanceAnalyzer::unbalance_worst(const std::vector<double>& start,
                                               double area_step,
                                               std::size_t max_moves) const {
  auto mover = [this](const BalanceResult& f, std::size_t d, std::size_t r,
                      double a) { return move_area(f, d, r, a); };
  return climb(
      *this, evaluate(start), stages_.size(), area_step, max_moves,
      [](const BalanceResult& a, const BalanceResult& b) {
        return a.yield < b.yield - 1e-12;
      },
      mover);
}

}  // namespace statpipe::core
