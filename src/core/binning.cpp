#include "core/binning.h"

#include <algorithm>
#include <stdexcept>

namespace statpipe::core {

std::vector<FrequencyBin> bin_dies(const stats::Gaussian& tp_ps,
                                   std::vector<double> speed_grades_ghz) {
  if (speed_grades_ghz.empty())
    throw std::invalid_argument("bin_dies: no speed grades");
  for (double f : speed_grades_ghz)
    if (f <= 0.0) throw std::invalid_argument("bin_dies: grade <= 0");
  std::sort(speed_grades_ghz.begin(), speed_grades_ghz.end(),
            std::greater<>());

  std::vector<FrequencyBin> bins;
  double prev_cum = 0.0;  // Pr{f >= previous (faster) grade}
  for (double f : speed_grades_ghz) {
    const double cum = tp_ps.cdf(1000.0 / f);  // Pr{T_P <= period(f)}
    bins.push_back({f, cum - prev_cum});
    prev_cum = cum;
  }
  bins.push_back({0.0, 1.0 - prev_cum});  // scrap
  return bins;
}

double expected_revenue(const std::vector<FrequencyBin>& bins,
                        const std::vector<double>& prices) {
  if (bins.empty() || prices.size() + 1 != bins.size())
    throw std::invalid_argument(
        "expected_revenue: need one price per sellable bin");
  double r = 0.0;
  for (std::size_t i = 0; i < prices.size(); ++i)
    r += bins[i].fraction * prices[i];
  return r;
}

double marketable_frequency_ghz(const stats::Gaussian& tp_ps, double yield) {
  if (!(yield > 0.0 && yield < 1.0))
    throw std::invalid_argument("marketable_frequency_ghz: yield in (0,1)");
  const double t = tp_ps.quantile(yield);
  if (t <= 0.0)
    throw std::domain_error("marketable_frequency_ghz: nonpositive period");
  return 1000.0 / t;
}

}  // namespace statpipe::core
