// Area-vs-delay trade-off curve of one pipe stage — the object behind
// Fig. 8 and the R_i ordering heuristic of eq. (14).
//
// A stage sized for speed sits on the steep part of its curve (large
// |dA/dD|: giving back a lot of area costs little delay); a stage sized
// for area sits on the flat part.  The paper compares the *elasticity*
//
//   R_i = -(dA/dD) * (D/A)        (normalized slope at the operating point)
//
// against 1 to pick donors (R_i > 1) and receivers (R_i < 1) of area.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <vector>

namespace statpipe::core {

class AreaDelayCurve {
 public:
  struct Point {
    double delay;  ///< stage delay at this sizing [ps]
    double area;   ///< stage area at this sizing [min-inv areas]
  };

  /// Points in any order; sorted internally by delay.  Requires >= 2
  /// points and a strictly monotone decreasing area-vs-delay relation
  /// (non-monotone sweeps indicate a broken sizing run — rejected).
  explicit AreaDelayCurve(std::vector<Point> points);

  const std::vector<Point>& points() const noexcept { return pts_; }
  double min_delay() const noexcept { return pts_.front().delay; }
  double max_delay() const noexcept { return pts_.back().delay; }

  /// Linear interpolation of area at `delay` (clamped to the curve ends).
  double area_at(double delay) const;

  /// Inverse: delay at which the stage costs `area` (clamped).
  double delay_at_area(double area) const;

  /// Local slope dA/dD at `delay` (central difference on the polyline;
  /// always <= 0 by monotonicity).
  double slope_at(double delay) const;

  /// Elasticity R = -(dA/dD)*(D/A) at `delay` — the paper's R_i (eq. 14).
  double elasticity_at(double delay) const;

 private:
  std::vector<Point> pts_;
};

/// Classification used by the global optimizer's stage ordering.
enum class RebalanceRole {
  kDonor,     ///< R_i > 1: cut area here (small delay penalty)
  kReceiver,  ///< R_i < 1: spend area here (big delay improvement)
  kNeutral,   ///< R_i ~ 1
};

RebalanceRole classify_stage(double elasticity, double tolerance = 0.05);

}  // namespace statpipe::core
