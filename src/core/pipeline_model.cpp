#include "core/pipeline_model.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace statpipe::core {

StageModel::StageModel(std::string n, stats::Gaussian c, double s_inter,
                       double a)
    : name(std::move(n)), comb(c), sigma_inter(s_inter), area(a) {
  if (comb.sigma < 0.0)
    throw std::invalid_argument("StageModel: negative sigma");
  if (sigma_inter < 0.0 || sigma_inter > comb.sigma + 1e-12)
    throw std::invalid_argument(
        "StageModel: sigma_inter must lie in [0, sigma]");
}

double StageModel::sigma_private() const {
  const double v = comb.variance() - sigma_inter * sigma_inter;
  return v > 0.0 ? std::sqrt(v) : 0.0;
}

PipelineModel::PipelineModel(std::vector<StageModel> stages,
                             LatchOverhead latch)
    : stages_(std::move(stages)), latch_(latch) {
  if (stages_.empty())
    throw std::invalid_argument("PipelineModel: no stages");
  if (latch_.mean < 0.0 || latch_.sigma_inter < 0.0 || latch_.sigma_random < 0.0)
    throw std::invalid_argument("PipelineModel: negative latch parameter");
}

void PipelineModel::set_uniform_correlation(double rho) {
  if (rho < 0.0 || rho > 1.0)
    throw std::invalid_argument("set_uniform_correlation: rho outside [0,1]");
  rho_override_ = rho;
}

void PipelineModel::clear_correlation_override() { rho_override_.reset(); }

stats::Gaussian PipelineModel::stage_delay(std::size_t i) const {
  const StageModel& s = stages_.at(i);
  const double mu = latch_.mean + s.comb.mean;
  // Shared components add linearly (same Z_inter); private in quadrature.
  const double s_inter = latch_.sigma_inter + s.sigma_inter;
  const double sp = s.sigma_private();
  const double s_priv2 =
      sp * sp + latch_.sigma_random * latch_.sigma_random;
  return {mu, std::sqrt(s_inter * s_inter + s_priv2)};
}

std::vector<stats::Gaussian> PipelineModel::stage_delays() const {
  std::vector<stats::Gaussian> v;
  v.reserve(stages_.size());
  for (std::size_t i = 0; i < stages_.size(); ++i) v.push_back(stage_delay(i));
  return v;
}

stats::Matrix PipelineModel::correlation() const {
  const std::size_t n = stages_.size();
  if (rho_override_) return stats::uniform_correlation(n, *rho_override_);
  stats::Matrix m = stats::Matrix::identity(n);
  const auto sds = stage_delays();
  for (std::size_t i = 0; i < n; ++i) {
    const double si_inter = latch_.sigma_inter + stages_[i].sigma_inter;
    for (std::size_t j = i + 1; j < n; ++j) {
      const double sj_inter = latch_.sigma_inter + stages_[j].sigma_inter;
      const double denom = sds[i].sigma * sds[j].sigma;
      const double rho =
          denom > 0.0 ? std::clamp(si_inter * sj_inter / denom, 0.0, 1.0) : 0.0;
      m(i, j) = m(j, i) = rho;
    }
  }
  return m;
}

stats::Gaussian PipelineModel::delay_distribution(
    stats::ClarkOrdering ordering) const {
  return stats::clark_max_n(stage_delays(), correlation(), ordering);
}

double PipelineModel::yield(double t_target) const {
  const auto tp = delay_distribution();
  if (tp.sigma <= 0.0) return t_target >= tp.mean ? 1.0 : 0.0;
  return stats::normal_cdf((t_target - tp.mean) / tp.sigma);
}

double PipelineModel::yield_independent(double t_target) const {
  double y = 1.0;
  for (const auto& sd : stage_delays()) y *= sd.cdf(t_target);
  return y;
}

double PipelineModel::target_delay_for_yield(double y) const {
  if (!(y > 0.0 && y < 1.0))
    throw std::invalid_argument("target_delay_for_yield: y outside (0,1)");
  const auto tp = delay_distribution();
  return tp.mean + tp.sigma * stats::normal_icdf(y);
}

double PipelineModel::total_area() const {
  double a = 0.0;
  for (const auto& s : stages_) a += s.area;
  return a;
}

double PipelineModel::mean_lower_bound() const {
  double m = 0.0;
  for (std::size_t i = 0; i < stages_.size(); ++i)
    m = std::max(m, stage_delay(i).mean);
  return m;
}

}  // namespace statpipe::core
