#include "core/design_space.h"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace statpipe::core {

DesignSpace::DesignSpace(double t_target, double yield)
    : t_target_(t_target), yield_(yield) {
  if (t_target <= 0.0)
    throw std::invalid_argument("DesignSpace: t_target must be > 0");
  if (!(yield > 0.0 && yield < 1.0))
    throw std::invalid_argument("DesignSpace: yield must lie in (0,1)");
}

double DesignSpace::mean_upper_bound(double sigma_t) const {
  if (sigma_t < 0.0)
    throw std::invalid_argument("mean_upper_bound: negative sigma_t");
  return t_target_ - sigma_t * stats::normal_icdf(yield_);
}

double DesignSpace::relaxed_sigma_bound(double mu) const {
  const double z = stats::normal_icdf(yield_);
  if (z <= 0.0) return std::numeric_limits<double>::infinity();
  const double s = (t_target_ - mu) / z;
  return s > 0.0 ? s : 0.0;
}

double DesignSpace::per_stage_yield(std::size_t n_stages) const {
  if (n_stages == 0) throw std::invalid_argument("per_stage_yield: 0 stages");
  return std::pow(yield_, 1.0 / static_cast<double>(n_stages));
}

double DesignSpace::equality_sigma_bound(double mu,
                                         std::size_t n_stages) const {
  const double z = stats::normal_icdf(per_stage_yield(n_stages));
  if (z <= 0.0) return std::numeric_limits<double>::infinity();
  const double s = (t_target_ - mu) / z;
  return s > 0.0 ? s : 0.0;
}

double DesignSpace::realizable_sigma(double mu, const stats::Gaussian& unit) {
  if (unit.mean <= 0.0 || unit.sigma < 0.0)
    throw std::invalid_argument("realizable_sigma: bad unit cell");
  if (mu < 0.0) throw std::invalid_argument("realizable_sigma: negative mu");
  // sigma = sigma_0 * sqrt(N_L),  N_L = mu / mu_0   (eq. 13)
  return unit.sigma * std::sqrt(mu / unit.mean);
}

bool DesignSpace::admissible_relaxed(double mu, double sigma) const {
  if (sigma < 0.0) return false;
  return mu + sigma * stats::normal_icdf(yield_) <= t_target_ + 1e-12;
}

bool DesignSpace::admissible_equality(double mu, double sigma,
                                      std::size_t n_stages) const {
  if (sigma < 0.0) return false;
  return mu + sigma * stats::normal_icdf(per_stage_yield(n_stages)) <=
         t_target_ + 1e-12;
}

std::vector<DesignSpace::RegionPoint> DesignSpace::sweep(
    double mu_lo, double mu_hi, std::size_t steps, std::size_t n1,
    std::size_t n2, const stats::Gaussian& unit_min,
    const stats::Gaussian& unit_max) const {
  if (steps < 2) throw std::invalid_argument("sweep: need >= 2 steps");
  if (!(mu_hi > mu_lo)) throw std::invalid_argument("sweep: mu_hi <= mu_lo");
  std::vector<RegionPoint> out;
  out.reserve(steps);
  for (std::size_t k = 0; k < steps; ++k) {
    const double mu =
        mu_lo + (mu_hi - mu_lo) * static_cast<double>(k) /
                    static_cast<double>(steps - 1);
    RegionPoint p{};
    p.mu = mu;
    p.relaxed_sigma = relaxed_sigma_bound(mu);
    p.equality_sigma_n1 = equality_sigma_bound(mu, n1);
    p.equality_sigma_n2 = equality_sigma_bound(mu, n2);
    // Larger unit cells have smaller relative variability: the max-size
    // curve is the *lower* realizable edge, min-size the upper.
    p.realizable_lo_sigma = realizable_sigma(mu, unit_max);
    p.realizable_hi_sigma = realizable_sigma(mu, unit_min);
    out.push_back(p);
  }
  return out;
}

}  // namespace statpipe::core
