#include "core/area_delay.h"

#include <algorithm>
#include <cmath>

namespace statpipe::core {

AreaDelayCurve::AreaDelayCurve(std::vector<Point> points)
    : pts_(std::move(points)) {
  if (pts_.size() < 2)
    throw std::invalid_argument("AreaDelayCurve: need >= 2 points");
  std::sort(pts_.begin(), pts_.end(),
            [](const Point& a, const Point& b) { return a.delay < b.delay; });
  for (std::size_t i = 1; i < pts_.size(); ++i) {
    if (pts_[i].delay <= pts_[i - 1].delay)
      throw std::invalid_argument("AreaDelayCurve: duplicate delay point");
    if (pts_[i].area > pts_[i - 1].area + 1e-9)
      throw std::invalid_argument(
          "AreaDelayCurve: area must decrease as delay increases");
  }
  for (const auto& p : pts_)
    if (p.delay <= 0.0 || p.area <= 0.0)
      throw std::invalid_argument("AreaDelayCurve: nonpositive point");
}

double AreaDelayCurve::area_at(double delay) const {
  if (delay <= pts_.front().delay) return pts_.front().area;
  if (delay >= pts_.back().delay) return pts_.back().area;
  const auto it = std::lower_bound(
      pts_.begin(), pts_.end(), delay,
      [](const Point& p, double d) { return p.delay < d; });
  const Point& hi = *it;
  const Point& lo = *(it - 1);
  const double t = (delay - lo.delay) / (hi.delay - lo.delay);
  return lo.area + t * (hi.area - lo.area);
}

double AreaDelayCurve::delay_at_area(double area) const {
  // Area decreases with delay, so search from the fast (big-area) end.
  if (area >= pts_.front().area) return pts_.front().delay;
  if (area <= pts_.back().area) return pts_.back().delay;
  for (std::size_t i = 1; i < pts_.size(); ++i) {
    if (pts_[i].area <= area) {
      const Point& lo = pts_[i - 1];  // larger area, smaller delay
      const Point& hi = pts_[i];
      const double t = (lo.area - area) / (lo.area - hi.area);
      return lo.delay + t * (hi.delay - lo.delay);
    }
  }
  return pts_.back().delay;  // unreachable by the guards above
}

double AreaDelayCurve::slope_at(double delay) const {
  const double d = std::clamp(delay, pts_.front().delay, pts_.back().delay);
  const double h =
      std::max((pts_.back().delay - pts_.front().delay) * 1e-3, 1e-9);
  const double lo = std::max(d - h, pts_.front().delay);
  const double hi = std::min(d + h, pts_.back().delay);
  return (area_at(hi) - area_at(lo)) / (hi - lo);
}

double AreaDelayCurve::elasticity_at(double delay) const {
  const double d = std::clamp(delay, pts_.front().delay, pts_.back().delay);
  const double a = area_at(d);
  return -slope_at(d) * d / a;
}

RebalanceRole classify_stage(double elasticity, double tolerance) {
  if (elasticity > 1.0 + tolerance) return RebalanceRole::kDonor;
  if (elasticity < 1.0 - tolerance) return RebalanceRole::kReceiver;
  return RebalanceRole::kNeutral;
}

}  // namespace statpipe::core
