// Section 3.1: the logic-depth vs number-of-stages trade-off.
//
// Stage-delay composition for a chain of N_L identical gates whose unit
// delay has components (mu_g; s_inter, s_sys, s_rand):
//
//   mu_stage      = N_L * mu_g
//   s_inter,stage = N_L * s_inter        (perfectly correlated: adds linearly)
//   s_sys,stage   ~ N_L * s_sys * f      (spatially correlated within stage;
//                                         f in [1/sqrt(N_L), 1] by corr length)
//   s_rand,stage  = sqrt(N_L) * s_rand   (independent: adds in quadrature)
//
// so variability sigma/mu *falls* with logic depth when the random part
// dominates (cancellation) and is flat when correlated parts dominate —
// Fig. 5(a).  Composing stages through the max() reduces pipeline
// variability with stage count, but less so as stages correlate —
// Fig. 5(b,c).
#pragma once

#include <cstddef>
#include <vector>

#include "stats/gaussian.h"

namespace statpipe::core {

/// Variation components of one gate's delay [ps].
struct GateDelayComponents {
  double mu = 0.0;
  double sigma_inter = 0.0;   ///< die-shared
  double sigma_sys = 0.0;     ///< spatially correlated across the die
  double sigma_rand = 0.0;    ///< independent per gate (RDF)

  double sigma() const;
  stats::Gaussian as_gaussian() const;
};

/// Composition of a stage as a chain of `logic_depth` identical gates.
/// `sys_correlation_within` in [0,1]: 1 = fully correlated within the stage
/// (adds linearly), 0 = uncorrelated (adds in quadrature).
GateDelayComponents stage_from_chain(const GateDelayComponents& gate,
                                     std::size_t logic_depth,
                                     double sys_correlation_within = 1.0);

/// sigma/mu of a stage vs logic depth — the Fig. 5(a) series.
std::vector<double> stage_variability_sweep(
    const GateDelayComponents& gate, const std::vector<std::size_t>& depths,
    double sys_correlation_within = 1.0);

/// sigma/mu of a pipeline of `n_stages` iid stages with uniform stage
/// correlation `rho`, via Clark's reduction — the Fig. 5(b) series.
double pipeline_variability(const stats::Gaussian& stage_delay,
                            std::size_t n_stages, double rho);

/// Fig. 5(c): total logic depth fixed (N_S * N_L = total_depth); returns
/// sigma/mu of the pipeline delay for each stage count.  Stage correlation
/// follows from the gate components (shared inter variance over total).
struct DepthStagePoint {
  std::size_t n_stages;
  std::size_t logic_depth;
  double stage_variability;
  double pipeline_variability;
  double stage_correlation;
};
std::vector<DepthStagePoint> fixed_total_depth_sweep(
    const GateDelayComponents& gate, std::size_t total_depth,
    const std::vector<std::size_t>& stage_counts,
    double latch_overhead_mean = 0.0);

}  // namespace statpipe::core
