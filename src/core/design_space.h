// Design-space characterization for per-stage (mu_i, sigma_i) under a
// target delay and yield — section 2.5 / Fig. 4 of the paper.
//
// Bounds implemented:
//   eq. (10)  mean upper bound from the pipeline-level Gaussian:
//             mu_i <= T_target - sigma_T * Phi^-1(P_D)
//   eq. (11)  relaxed per-stage bound (all other stages assumed perfect):
//             mu_i + sigma_i * Phi^-1(P_D) <= T_target
//   eq. (12)  equality bound for N_S equal-delay uncorrelated stages:
//             mu_i + sigma_i * Phi^-1(P_D^(1/N_S)) <= T_target
//   eq. (13)  realizable curve from the inverter-chain relation:
//             mu = N_L mu_0,  sigma = sqrt(N_L) sigma_0
//             => sigma(mu) = sigma_0 * sqrt(mu / mu_0)
#pragma once

#include <vector>

#include "stats/gaussian.h"

namespace statpipe::core {

class DesignSpace {
 public:
  /// @param t_target  pipeline delay target [ps]
  /// @param yield     target yield P_D in (0,1)
  DesignSpace(double t_target, double yield);

  double t_target() const noexcept { return t_target_; }
  double yield() const noexcept { return yield_; }

  /// eq. (10): upper bound on any stage mean given pipeline sigma_T.
  double mean_upper_bound(double sigma_t) const;

  /// eq. (11): max sigma_i permitted at mean mu_i under the relaxed bound.
  /// Returns +inf when yield <= 0.5 (Phi^-1 <= 0 puts no upper limit).
  double relaxed_sigma_bound(double mu) const;

  /// eq. (12): max sigma_i at mean mu_i when all N_S stages are equal and
  /// uncorrelated, each needing per-stage yield P_D^(1/N_S).
  double equality_sigma_bound(double mu, std::size_t n_stages) const;

  /// Per-stage yield requirement P_D^(1/N_S) (used directly in section 3.2:
  /// (0.80)^(1/3) = 0.9283 for the 3-stage example).
  double per_stage_yield(std::size_t n_stages) const;

  /// eq. (13): sigma realizable by a chain of identical gates whose unit
  /// cell is `unit`, at stage mean mu (i.e. logic depth mu/unit.mean).
  static double realizable_sigma(double mu, const stats::Gaussian& unit);

  /// True iff (mu, sigma) satisfies the relaxed bound (eq. 11).
  bool admissible_relaxed(double mu, double sigma) const;

  /// True iff (mu, sigma) satisfies the equality bound for n_stages.
  bool admissible_equality(double mu, double sigma, std::size_t n_stages) const;

  /// One row of the Fig.-4 plot: all bound curves evaluated at mean mu.
  struct RegionPoint {
    double mu;
    double relaxed_sigma;             ///< eq. (11) curve
    double equality_sigma_n1;         ///< eq. (12), first stage count
    double equality_sigma_n2;         ///< eq. (12), second stage count
    double realizable_lo_sigma;       ///< eq. (13) with max-size unit cell
    double realizable_hi_sigma;       ///< eq. (13) with min-size unit cell
  };

  /// Sweeps mu over [mu_lo, mu_hi] and tabulates every bound curve —
  /// exactly the data Fig. 4 plots.  `unit_min`/`unit_max` are the min- and
  /// max-sized inverter delay Gaussians; n1 < n2 are the two stage counts.
  std::vector<RegionPoint> sweep(double mu_lo, double mu_hi, std::size_t steps,
                                 std::size_t n1, std::size_t n2,
                                 const stats::Gaussian& unit_min,
                                 const stats::Gaussian& unit_max) const;

 private:
  double t_target_;
  double yield_;
};

}  // namespace statpipe::core
