// Balanced vs unbalanced pipeline analysis — section 3.2 / Figs. 6-8.
//
// A balanced pipeline (all stage delays equal) maximizes throughput in the
// deterministic model, but under variation it has N equally-critical
// stages; deliberately skewing delays (resize stage 1/3 down, spend the
// recovered area speeding stage 2, Fig. 6/8) can raise the yield product
// Y1*Y2*Y3 above Y0^3 at identical total area.  BalanceAnalyzer evaluates
// and searches such equal-area delay assignments.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/area_delay.h"
#include "core/pipeline_model.h"
#include "stats/gaussian.h"

namespace statpipe::core {

/// A stage as the rebalancer sees it: its area-delay curve plus a model of
/// how its delay sigma tracks its mean delay as it is resized.
struct StageFamily {
  std::string name;
  AreaDelayCurve curve;
  /// sigma(mu): e.g. the eq.-13 relation sigma0*sqrt(mu/mu0), or an SSTA
  /// fit.  Must be positive over the curve's delay range.
  std::function<double(double)> sigma_of_mu;
  /// Fraction of sigma that is die-shared (drives stage correlation).
  double inter_fraction = 0.0;
};

struct BalanceResult {
  std::vector<double> stage_delays;   ///< mean comb delay per stage [ps]
  std::vector<double> stage_areas;    ///< area per stage
  std::vector<double> stage_yields;   ///< per-stage Pr{SD_i <= T}
  double total_area = 0.0;
  stats::Gaussian pipeline_delay;     ///< Clark (mu_T, sigma_T)
  double yield = 0.0;                 ///< eq. (9) at the target
};

class BalanceAnalyzer {
 public:
  BalanceAnalyzer(std::vector<StageFamily> stages, LatchOverhead latch,
                  double t_target);

  std::size_t stage_count() const noexcept { return stages_.size(); }
  double t_target() const noexcept { return t_target_; }

  /// Evaluates one delay assignment (areas read off the curves).
  BalanceResult evaluate(const std::vector<double>& stage_delays) const;

  /// The PipelineModel at one delay assignment — for Monte-Carlo sampling
  /// of the resulting delay distribution (Fig. 7a histograms).
  PipelineModel pipeline_at(const std::vector<double>& stage_delays) const;

  /// The balanced starting point: every stage at the same delay d0.
  BalanceResult balanced(double d0) const;

  /// Elasticity R_i (eq. 14) of each stage at the given delays.
  std::vector<double> elasticities(const std::vector<double>& delays) const;

  /// Greedy equal-area hill-climb from `start`: repeatedly shifts a small
  /// area quantum from the best donor to the best receiver while pipeline
  /// yield improves.  `area_step` is the quantum as a fraction of total
  /// area.  Returns the best assignment found.
  BalanceResult rebalance_for_yield(const std::vector<double>& start,
                                    double area_step = 0.01,
                                    std::size_t max_moves = 200) const;

  /// Equal-area hill-*descent*: the paper's "worst case unbalancing"
  /// reference series in Fig. 7(b).
  BalanceResult unbalance_worst(const std::vector<double>& start,
                                double area_step = 0.01,
                                std::size_t max_moves = 200) const;

 private:
  BalanceResult move_area(const BalanceResult& from, std::size_t donor,
                          std::size_t receiver, double d_area) const;

  std::vector<StageFamily> stages_;
  LatchOverhead latch_;
  double t_target_;
};

}  // namespace statpipe::core
