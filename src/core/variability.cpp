#include "core/variability.h"

#include <cmath>
#include <stdexcept>

#include "core/pipeline_model.h"
#include "stats/clark.h"
#include "stats/matrix.h"

namespace statpipe::core {

double GateDelayComponents::sigma() const {
  return std::sqrt(sigma_inter * sigma_inter + sigma_sys * sigma_sys +
                   sigma_rand * sigma_rand);
}

stats::Gaussian GateDelayComponents::as_gaussian() const {
  return {mu, sigma()};
}

GateDelayComponents stage_from_chain(const GateDelayComponents& gate,
                                     std::size_t logic_depth,
                                     double sys_correlation_within) {
  if (logic_depth == 0)
    throw std::invalid_argument("stage_from_chain: zero depth");
  if (sys_correlation_within < 0.0 || sys_correlation_within > 1.0)
    throw std::invalid_argument("stage_from_chain: correlation outside [0,1]");
  const double n = static_cast<double>(logic_depth);
  GateDelayComponents s;
  s.mu = n * gate.mu;
  s.sigma_inter = n * gate.sigma_inter;
  // Sum of n equicorrelated (rho = c) variables:
  // var = n*s^2 + n(n-1)*c*s^2  =>  sigma = s * sqrt(n + n(n-1)c).
  const double c = sys_correlation_within;
  s.sigma_sys = gate.sigma_sys * std::sqrt(n + n * (n - 1.0) * c);
  s.sigma_rand = std::sqrt(n) * gate.sigma_rand;
  return s;
}

std::vector<double> stage_variability_sweep(
    const GateDelayComponents& gate, const std::vector<std::size_t>& depths,
    double sys_correlation_within) {
  std::vector<double> out;
  out.reserve(depths.size());
  for (std::size_t d : depths) {
    const auto s = stage_from_chain(gate, d, sys_correlation_within);
    out.push_back(s.sigma() / s.mu);
  }
  return out;
}

double pipeline_variability(const stats::Gaussian& stage_delay,
                            std::size_t n_stages, double rho) {
  if (n_stages == 0)
    throw std::invalid_argument("pipeline_variability: zero stages");
  const std::vector<stats::Gaussian> v(n_stages, stage_delay);
  const auto tp =
      stats::clark_max_n(v, stats::uniform_correlation(n_stages, rho));
  if (tp.mean <= 0.0)
    throw std::domain_error("pipeline_variability: nonpositive mean");
  return tp.sigma / tp.mean;
}

std::vector<DepthStagePoint> fixed_total_depth_sweep(
    const GateDelayComponents& gate, std::size_t total_depth,
    const std::vector<std::size_t>& stage_counts, double latch_overhead_mean) {
  std::vector<DepthStagePoint> out;
  for (std::size_t ns : stage_counts) {
    if (ns == 0 || total_depth % ns != 0)
      throw std::invalid_argument(
          "fixed_total_depth_sweep: stage count must divide total depth");
    const std::size_t nl = total_depth / ns;
    const auto stage = stage_from_chain(gate, nl);

    // Shared-across-stages variance: inter-die only (systematic variation
    // is correlated within a stage but its stage-to-stage correlation
    // decays with distance; treated as stage-private here and quantified
    // against MC in the benches).
    const double shared = stage.sigma_inter;
    const double total_sigma = stage.sigma();
    const double rho = total_sigma > 0.0
                           ? (shared * shared) / (total_sigma * total_sigma)
                           : 0.0;

    const stats::Gaussian sd{stage.mu + latch_overhead_mean, total_sigma};
    DepthStagePoint p{};
    p.n_stages = ns;
    p.logic_depth = nl;
    p.stage_variability = stage.sigma() / stage.mu;
    p.pipeline_variability = pipeline_variability(sd, ns, rho);
    p.stage_correlation = rho;
    out.push_back(p);
  }
  return out;
}

}  // namespace statpipe::core
