#include "core/characterized_pipeline.h"

#include <stdexcept>

#include "sim/engine.h"

namespace statpipe::core {

LatchOverhead latch_overhead_from(const device::LatchModel& latch,
                                  const process::VariationSpec& spec) {
  LatchOverhead o;
  o.mean = latch.timing().nominal_overhead();
  const auto& tech = latch.timing();
  // Same decomposition as LatchModel::overhead_distribution.
  const auto dist = latch.overhead_distribution(spec);
  o.sigma_random = o.mean * tech.random_sigma_rel;
  const double v_inter = dist.variance() - o.sigma_random * o.sigma_random;
  o.sigma_inter = v_inter > 0.0 ? std::sqrt(v_inter) : 0.0;
  return o;
}

PipelineModel assemble_pipeline(
    const std::vector<const netlist::Netlist*>& stages,
    const std::vector<sta::StageCharacterization>& cs,
    const device::LatchModel& latch, const process::VariationSpec& spec) {
  if (stages.empty())
    throw std::invalid_argument("assemble_pipeline: no stages");
  if (stages.size() != cs.size())
    throw std::invalid_argument(
        "assemble_pipeline: characterization count mismatch");
  std::vector<StageModel> models;
  models.reserve(stages.size());
  for (std::size_t i = 0; i < stages.size(); ++i) {
    if (stages[i] == nullptr)
      throw std::invalid_argument("assemble_pipeline: null stage netlist");
    models.emplace_back(stages[i]->name(), cs[i].delay, cs[i].sigma_inter,
                        cs[i].area);
  }
  return PipelineModel(std::move(models), latch_overhead_from(latch, spec));
}

namespace {

template <typename CharFn>
PipelineModel build(const std::vector<const netlist::Netlist*>& stages,
                    const device::LatchModel& latch,
                    const process::VariationSpec& spec, CharFn&& characterize) {
  if (stages.empty())
    throw std::invalid_argument("build_pipeline: no stages");
  // Validate and warm the lazy topological caches serially; the fan-out
  // below then only reads shared netlists.
  for (const netlist::Netlist* nl : stages) {
    if (nl == nullptr)
      throw std::invalid_argument("build_pipeline: null stage netlist");
    (void)nl->topological_order();
  }
  std::vector<sta::StageCharacterization> cs(stages.size());
  sim::parallel_for(stages.size(), [&](std::size_t i) {
    cs[i] = characterize(*stages[i], i);
  });
  return assemble_pipeline(stages, cs, latch, spec);
}

}  // namespace

PipelineModel build_pipeline_ssta(
    const std::vector<const netlist::Netlist*>& stages,
    const device::AlphaPowerModel& model, const process::VariationSpec& spec,
    const device::LatchModel& latch, const sta::CharacterizeOptions& opt) {
  return build(stages, latch, spec,
               [&](const netlist::Netlist& nl, std::size_t) {
                 return sta::characterize_ssta(nl, model, spec, opt);
               });
}

PipelineModel build_pipeline_mc(
    const std::vector<const netlist::Netlist*>& stages,
    const device::AlphaPowerModel& model, const process::VariationSpec& spec,
    const device::LatchModel& latch, stats::Rng& rng,
    const sta::CharacterizeOptions& opt) {
  // Counter-split the caller's Rng so each stage characterizes on its own
  // stream regardless of execution order across pool workers.
  const stats::Rng root = rng.fork();
  return build(stages, latch, spec,
               [&](const netlist::Netlist& nl, std::size_t i) {
                 stats::Rng stage_rng = root.fork(i);
                 return sta::characterize_mc(nl, model, spec, stage_rng, opt);
               });
}

}  // namespace statpipe::core
