// Frequency binning: the commercial face of parametric yield.
//
// The pipeline delay distribution T_P ~ N(mu_T, sigma_T) (section 2.2)
// determines the fraction of dies that can be sold at each clock bin —
// the FMAX distribution picture of Bowman et al. [1] that motivates the
// paper.  A die with delay t runs at f = 1000/t GHz (t in ps), so the
// fraction binned at >= f is Pr{T_P <= 1000/f} — the yield of eq. (2).
#pragma once

#include <string>
#include <vector>

#include "stats/gaussian.h"

namespace statpipe::core {

struct FrequencyBin {
  double f_min_ghz;   ///< bin speed grade (lower edge); 0 = scrap bin
  double fraction;    ///< fraction of dies landing in this bin
};

/// Bins dies by maximum frequency.  `speed_grades_ghz` are the sellable
/// grades in any order; dies slower than the slowest grade land in the
/// scrap bin (f_min_ghz = 0).  Fractions sum to 1.
std::vector<FrequencyBin> bin_dies(const stats::Gaussian& tp_ps,
                                   std::vector<double> speed_grades_ghz);

/// Expected per-die revenue given a price for each sellable grade (same
/// order as the sorted descending grades used by bin_dies; scrap earns 0).
double expected_revenue(const std::vector<FrequencyBin>& bins,
                        const std::vector<double>& prices);

/// Convenience: the speed grade at which `yield` of dies bin at or above
/// (i.e. the marketable frequency at a yield target).
double marketable_frequency_ghz(const stats::Gaussian& tp_ps, double yield);

}  // namespace statpipe::core
