// Bridge from gate-level stage netlists to the analytical PipelineModel:
// characterize every stage (SSTA or Monte-Carlo), convert the latch model,
// and assemble the paper's per-stage (mu_i, sigma_i) representation.
#pragma once

#include <vector>

#include "core/pipeline_model.h"
#include "device/latch.h"
#include "netlist/netlist.h"
#include "sta/characterize.h"

namespace statpipe::core {

/// Converts a device-level latch model into the pipeline-level overhead
/// decomposition used by PipelineModel.
LatchOverhead latch_overhead_from(const device::LatchModel& latch,
                                  const process::VariationSpec& spec);

/// Assembles a PipelineModel from per-stage characterizations already in
/// hand (stage i's name is taken from stages[i]).  This is the substitution
/// path for batched candidate grids: characterize the unchanged stages once,
/// batch-characterize the changed stage's size lanes, and assemble one model
/// per lane — bitwise-equal to rebuilding the full pipeline per candidate.
/// Throws std::invalid_argument on length mismatch or null stages.
PipelineModel assemble_pipeline(
    const std::vector<const netlist::Netlist*>& stages,
    const std::vector<sta::StageCharacterization>& cs,
    const device::LatchModel& latch, const process::VariationSpec& spec);

/// Builds a PipelineModel from stage netlists using analytical SSTA
/// characterization (fast path; used inside the optimizer loop).
PipelineModel build_pipeline_ssta(
    const std::vector<const netlist::Netlist*>& stages,
    const device::AlphaPowerModel& model, const process::VariationSpec& spec,
    const device::LatchModel& latch,
    const sta::CharacterizeOptions& opt = {});

/// Same, with Monte-Carlo characterization (the SPICE-accurate path of
/// section 2.4's verification flow).
PipelineModel build_pipeline_mc(
    const std::vector<const netlist::Netlist*>& stages,
    const device::AlphaPowerModel& model, const process::VariationSpec& spec,
    const device::LatchModel& latch, stats::Rng& rng,
    const sta::CharacterizeOptions& opt = {});

}  // namespace statpipe::core
