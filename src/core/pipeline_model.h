// The paper's central object: a pipelined design whose per-stage delays are
// Gaussian random variables, analyzed statistically.
//
//   SD_i = Tc-q + T_comb,i + T_setup        (section 2.1)
//   T_P  = max_i SD_i                       (eq. 1)
//   Yield(T) = Pr{T_P <= T}                 (eq. 2)
//
// Each stage delay carries a variance decomposition into a die-shared
// (inter-die) component and a stage-private component; the implied stage
// correlation  rho_ij = s_inter,i * s_inter,j / (sigma_i * sigma_j)  feeds
// Clark's reduction (eqs. 4-6).  A uniform correlation override supports
// the paper's rho-sweep studies (Fig. 3b, 5b).
//
// Layer contract (src/core, see docs/ARCHITECTURE.md): owns the paper's
// analytical modeling — the pipeline model, the characterized-pipeline
// bridge, design space, binning and balancing.  May depend on every layer
// below (including sta's characterizations and sim's fan-out); must not
// depend on src/opt: optimizers consume core models, never the reverse.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "stats/clark.h"
#include "stats/gaussian.h"
#include "stats/matrix.h"

namespace statpipe::core {

/// One pipe stage at the abstraction the analytical model consumes.
struct StageModel {
  std::string name;
  stats::Gaussian comb;       ///< T_comb distribution [ps]
  double sigma_inter = 0.0;   ///< die-shared part of comb.sigma [ps]
  double area = 0.0;          ///< stage area [min-inv areas]

  /// Stage-private sigma: sqrt(sigma^2 - sigma_inter^2).
  double sigma_private() const;

  StageModel() = default;
  StageModel(std::string n, stats::Gaussian c, double s_inter = 0.0,
             double a = 0.0);
};

/// Latch (flip-flop) timing overhead added to every stage delay.
struct LatchOverhead {
  double mean = 0.0;          ///< Tc-q + Tsetup [ps]
  double sigma_inter = 0.0;   ///< die-shared sigma [ps]
  double sigma_random = 0.0;  ///< latch-private sigma [ps]
};

class PipelineModel {
 public:
  explicit PipelineModel(std::vector<StageModel> stages,
                         LatchOverhead latch = {});

  std::size_t stage_count() const noexcept { return stages_.size(); }
  const std::vector<StageModel>& stages() const noexcept { return stages_; }
  StageModel& stage(std::size_t i) { return stages_.at(i); }
  const StageModel& stage(std::size_t i) const { return stages_.at(i); }
  const LatchOverhead& latch() const noexcept { return latch_; }

  /// Forces rho_ij = rho for all i != j instead of the variance-derived
  /// correlation (the paper's correlation sweeps).
  void set_uniform_correlation(double rho);
  void clear_correlation_override();

  /// Total stage delay SD_i = latch + comb_i [Gaussian].
  stats::Gaussian stage_delay(std::size_t i) const;
  std::vector<stats::Gaussian> stage_delays() const;

  /// Stage-delay correlation matrix (variance-derived or override).
  stats::Matrix correlation() const;

  /// (mu_T, sigma_T) of T_P = max_i SD_i via Clark's reduction (eqs. 4-6).
  stats::Gaussian delay_distribution(
      stats::ClarkOrdering ordering =
          stats::ClarkOrdering::kIncreasingMean) const;

  /// Yield at T_TARGET from the Gaussian approximation of T_P (eq. 9).
  double yield(double t_target) const;

  /// Exact yield for *independent* stages: prod_i Phi((T-mu_i)/sigma_i)
  /// (eq. 8).  Ignores correlations by construction.
  double yield_independent(double t_target) const;

  /// Smallest T with yield(T) >= y (eq. 9 inverted).
  double target_delay_for_yield(double y) const;

  /// Sum of stage areas.
  double total_area() const;

  /// Jensen lower bound on mu_T: max_i E[SD_i] (eq. 3).
  double mean_lower_bound() const;

 private:
  std::vector<StageModel> stages_;
  LatchOverhead latch_;
  std::optional<double> rho_override_;
};

}  // namespace statpipe::core
