// Distributed worker runtime: dials the service, is granted a session
// (kWelcome), and stays RESIDENT — serving unit-range assignments for any
// number of descriptors over one connection until shutdown (wire v4).
//
// Each kSetup installs one request's workload as a UnitRangeRunner
// (dist/task.h), keyed by the request id in the frame header; kRelease
// drops it when the service is done with the request.  Per assignment the
// worker executes the contiguous unit range — Monte-Carlo shard ranges
// via GateLevelMonteCarlo::run_shard_range, SSTA grid lane ranges via
// sta::SstaBatch — and STREAMS one kResult frame per unit (unmerged,
// ascending, as units complete), finishing the range with a kRangeDone
// commit marker; every outbound frame is scoped to (session, request).
// The service stages the stream and commits it atomically on the marker,
// so a worker that dies mid-range forfeits everything it streamed and the
// run stays bitwise-deterministic.  Workload construction failures
// (unknown circuit, netlist hash mismatch, invalid grid) are reported as
// kError frames and end the session: a worker that cannot prove it holds
// the service's exact workload must not contribute results.
//
// With a shared wire key configured (WorkerOptions::auth_key) every frame
// in both directions carries an HMAC-SHA256 trailer; a coordinator on the
// wrong side of the key config is rejected, not half-trusted.
//
// Layer contract (src/dist, see docs/ARCHITECTURE.md): the distributed
// execution layer sits on top of mc/sta/sim/stats and may depend on all of
// them; nothing below src/dist may know it exists.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "dist/serialize.h"
#include "dist/task.h"

namespace statpipe::dist {

struct WorkerOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  int connect_retry_ms = 5000;  ///< keep dialing a not-yet-bound coordinator
  /// Shared wire-key passphrase ("" = authentication disabled).  Must
  /// match the coordinator's: mismatch or absence on either side is a
  /// frame authentication error, never a silent downgrade.
  std::string auth_key;
  bool verbose = false;         ///< progress lines on stderr
};

/// Maps a RunDescriptor to a unit-range runner.  The default factory
/// (task-registry-based, all task kinds) suits the statpipe-worker daemon;
/// tests inject factories that fail on purpose.
using WorkloadFactory = std::function<UnitRangeRunner(const RunDescriptor&)>;

/// The task-registry factory used by the worker daemon — dispatches on
/// desc.task_kind via dist/task.h's make_unit_runner.
WorkloadFactory default_workload_factory();

/// Runs one worker session to completion: connect, hello, welcome, then
/// serve setups/assignments/releases for any number of requests, exiting
/// on kShutdown or service disconnect.  Returns the number of ranges
/// completed.  Throws std::runtime_error on transport errors; workload
/// construction failure is reported to the service as kError and returns
/// normally.  A non-null `shutdown_received` is set to whether the
/// session ended on an explicit kShutdown (fleet wind-down) as opposed to
/// a disconnect — what the --serve reconnect loop keys its exit on.
std::size_t run_worker(const WorkerOptions& opt, const WorkloadFactory& make,
                       bool* shutdown_received = nullptr);

}  // namespace statpipe::dist
