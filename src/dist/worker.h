// Distributed worker runtime: dials the coordinator, rebuilds the
// described workload, and serves unit-range assignments until shutdown.
//
// Per assignment the worker executes the contiguous unit range through the
// task's UnitRangeRunner (dist/task.h) — Monte-Carlo shard ranges via
// GateLevelMonteCarlo::run_shard_range, SSTA grid lane ranges via
// sta::SstaBatch — and ships one serialized payload PER UNIT (unmerged,
// ascending), so the coordinator can reassemble all units of the run in
// ascending order regardless of how ranges were distributed.  Workload
// construction failures (unknown circuit, netlist hash mismatch, invalid
// grid) are reported as kError frames and end the session: a worker that
// cannot prove it holds the coordinator's exact workload must not
// contribute results.
//
// Layer contract (src/dist, see docs/ARCHITECTURE.md): the distributed
// execution layer sits on top of mc/sta/sim/stats and may depend on all of
// them; nothing below src/dist may know it exists.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "dist/serialize.h"
#include "dist/task.h"

namespace statpipe::dist {

struct WorkerOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  int connect_retry_ms = 5000;  ///< keep dialing a not-yet-bound coordinator
  bool verbose = false;         ///< progress lines on stderr
};

/// Maps a RunDescriptor to a unit-range runner.  The default factory
/// (task-registry-based, all task kinds) suits the statpipe-worker daemon;
/// tests inject factories that fail on purpose.
using WorkloadFactory = std::function<UnitRangeRunner(const RunDescriptor&)>;

/// The task-registry factory used by the worker daemon — dispatches on
/// desc.task_kind via dist/task.h's make_unit_runner.
WorkloadFactory default_workload_factory();

/// Runs one worker session to completion: connect, hello, setup, serve
/// assignments, exit on kShutdown or coordinator disconnect.  Returns the
/// number of ranges completed.  Throws std::runtime_error on transport
/// errors; workload construction failure is reported to the coordinator
/// as kError and returns normally.
std::size_t run_worker(const WorkerOptions& opt, const WorkloadFactory& make);

}  // namespace statpipe::dist
