// Distributed worker runtime: dials the coordinator, rebuilds the
// described workload, and serves shard-range assignments until shutdown.
//
// Per assignment the worker executes the contiguous shard range through
// GateLevelMonteCarlo::run_shard_range — the existing block-vectorized
// shard path on the local sim::ThreadPool — and ships one serialized
// McResult PER SHARD (unmerged, ascending), so the coordinator can fold
// all shards of the run in ascending order regardless of how ranges were
// distributed.  Workload construction failures (unknown circuit, netlist
// hash mismatch) are reported as kError frames and end the session: a
// worker that cannot prove it holds the coordinator's exact circuit must
// not contribute samples.
//
// Layer contract (src/dist, see docs/ARCHITECTURE.md): the distributed
// execution layer sits on top of mc/sim/stats and may depend on all of
// them; nothing below src/dist may know it exists.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "dist/serialize.h"
#include "mc/pipeline_mc.h"

namespace statpipe::dist {

struct WorkerOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  int connect_retry_ms = 5000;  ///< keep dialing a not-yet-bound coordinator
  bool verbose = false;         ///< progress lines on stderr
};

/// Maps a RunDescriptor to a shard-range runner.  The default factory
/// (Workload-based) suits the statpipe-worker daemon; tests inject
/// factories that fail on purpose.
using ShardRangeRunner = std::function<std::vector<mc::McResult>(
    std::size_t shard_begin, std::size_t shard_end)>;
using WorkloadFactory =
    std::function<ShardRangeRunner(const RunDescriptor&)>;

/// The Workload-registry factory used by the worker daemon.
WorkloadFactory default_workload_factory();

/// Runs one worker session to completion: connect, hello, setup, serve
/// assignments, exit on kShutdown or coordinator disconnect.  Returns the
/// number of ranges completed.  Throws std::runtime_error on transport
/// errors; workload construction failure is reported to the coordinator
/// as kError and returns normally.
std::size_t run_worker(const WorkerOptions& opt, const WorkloadFactory& make);

}  // namespace statpipe::dist
