#include "dist/scheduler.h"

#include <stdexcept>

namespace statpipe::dist {

void Scheduler::add_request(std::uint64_t rid, std::uint64_t session,
                            std::uint32_t priority) {
  if (requests_.count(rid) != 0)
    throw std::logic_error("dist: scheduler request id reused");
  auto [sit, fresh] = sessions_.try_emplace(session);
  if (fresh) sit->second.order = next_order_;
  RequestQueue q;
  q.session = session;
  q.priority = priority;
  q.order = next_order_++;
  requests_.emplace(rid, std::move(q));
}

void Scheduler::remove_request(std::uint64_t rid) {
  auto it = requests_.find(rid);
  if (it == requests_.end()) return;
  pending_ranges_ -= it->second.ranges.size();
  requests_.erase(it);
}

void Scheduler::enqueue(const SchedTask& t) {
  requests_.at(t.rid).ranges.push_back(t);
  ++pending_ranges_;
}

void Scheduler::requeue_front(const SchedTask& t) {
  requests_.at(t.rid).ranges.push_front(t);
  ++pending_ranges_;
}

std::optional<SchedTask> Scheduler::next() {
  RequestQueue* best = nullptr;
  const SessionShare* best_share = nullptr;
  for (auto& [rid, q] : requests_) {
    if (q.ranges.empty()) continue;
    const SessionShare& share = sessions_.at(q.session);
    if (best == nullptr) {
      best = &q;
      best_share = &share;
      continue;
    }
    // Rule 1: higher priority class strictly first.
    if (q.priority != best->priority) {
      if (q.priority > best->priority) {
        best = &q;
        best_share = &share;
      }
      continue;
    }
    // Rule 2: smaller session deficit first; first-seen session on ties.
    if (share.assigned_units != best_share->assigned_units) {
      if (share.assigned_units < best_share->assigned_units) {
        best = &q;
        best_share = &share;
      }
      continue;
    }
    if (q.session != best->session) {
      if (share.order < best_share->order) {
        best = &q;
        best_share = &share;
      }
      continue;
    }
    // Rule 3: FIFO within the session.
    if (q.order < best->order) {
      best = &q;
      best_share = &share;
    }
  }
  if (best == nullptr) return std::nullopt;
  SchedTask t = best->ranges.front();
  best->ranges.pop_front();
  --pending_ranges_;
  sessions_.at(best->session).assigned_units += t.end - t.begin;
  return t;
}

std::uint64_t Scheduler::session_units(std::uint64_t session) const {
  auto it = sessions_.find(session);
  return it == sessions_.end() ? 0 : it->second.assigned_units;
}

std::vector<std::uint64_t> Scheduler::sessions() const {
  std::vector<std::uint64_t> out;
  out.reserve(sessions_.size());
  for (const auto& [id, share] : sessions_) out.push_back(id);
  return out;
}

}  // namespace statpipe::dist
