// Workload registry for distributed runs: turns a RunDescriptor into the
// exact netlists and engines the coordinator described.
//
// The descriptor names the workload as a comma-separated list of ISCAS85
// circuit names ("c3540,c2670,c1908,c432"; SSTA grid tasks name exactly
// one); every process synthesizes the stages with the same deterministic
// generator and verifies the combined Netlist::structural_hash against the
// descriptor before running a single unit — a worker with a diverging
// build of the generators refuses work instead of silently contributing
// wrong results.  The Workload class below is the Monte-Carlo engine
// assembly; the grid-task assembly lives in dist/task.h on top of
// build_grid_stage.
//
// Layer contract (src/dist, see docs/ARCHITECTURE.md): the distributed
// execution layer sits on top of mc/sta/sim/stats and may depend on all of
// them; nothing below src/dist may know it exists.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "device/delay_model.h"
#include "device/latch.h"
#include "dist/serialize.h"
#include "mc/pipeline_mc.h"
#include "netlist/netlist.h"
#include "process/variation.h"
#include "sim/engine.h"

namespace statpipe::dist {

/// A fully assembled gate-level MC workload with stable addresses (the
/// engine holds pointers into stages/model for its lifetime), built from a
/// RunDescriptor.  Non-copyable, non-movable for exactly that reason.
class Workload {
 public:
  /// Builds stages from desc.workload, applies the descriptor's variation
  /// / latch / STA options and verifies desc.netlist_hash (0 = skip the
  /// check, used by the side that computes the hash in the first place).
  /// Throws std::invalid_argument on unknown circuit names or hash
  /// mismatch.
  static std::unique_ptr<Workload> make(const RunDescriptor& desc);

  Workload(const Workload&) = delete;
  Workload& operator=(const Workload&) = delete;

  const mc::GateLevelMonteCarlo& engine() const noexcept { return *engine_; }
  /// Combined structural hash of the stages (what RunDescriptor carries).
  std::uint64_t stage_hash() const noexcept { return hash_; }

  /// Execution options matching the descriptor; threads stays 0 (the local
  /// pool's choice — it never affects results).
  sim::ExecutionOptions exec(const RunDescriptor& desc) const;

 private:
  Workload() = default;

  std::vector<netlist::Netlist> stages_;
  std::unique_ptr<device::AlphaPowerModel> model_;
  std::unique_ptr<device::LatchModel> latch_;
  std::unique_ptr<mc::GateLevelMonteCarlo> engine_;
  std::uint64_t hash_ = 0;
};

/// Combined structural hash over an ordered stage list (FNV-fold of the
/// per-netlist hashes; order-sensitive, like the pipeline).
std::uint64_t hash_stages(const std::vector<netlist::Netlist>& stages);

/// Splits the descriptor's comma-separated workload field into circuit
/// names (spaces ignored).  Throws std::invalid_argument when empty.
std::vector<std::string> split_workload_names(const std::string& workload);

/// The process::VariationSpec the descriptor's spec fields encode, and
/// the write-side twin a submitter uses — keep them the single mapping so
/// a new spec field cannot be copied in one direction and forgotten in
/// the other.
process::VariationSpec descriptor_spec(const RunDescriptor& d);
void set_descriptor_spec(RunDescriptor& d, const process::VariationSpec& s);

/// The process::Technology the descriptor's tech_* fields encode — every
/// workload assembly (MC and grid, local and worker-side) builds its delay
/// model from this, so non-default technologies replay exactly.
process::Technology descriptor_technology(const RunDescriptor& d);

/// The inverse: copies a model's technology into the descriptor — what a
/// submitter does before finalizing.
void set_descriptor_technology(RunDescriptor& d,
                               const process::Technology& tech);

/// Rebuilds and validates the single stage netlist of a kSstaGrid
/// descriptor: exactly one circuit name, a non-empty size grid, every lane
/// a full per-gate size vector, and (when desc.netlist_hash != 0) a
/// structural-hash match.  Throws std::invalid_argument naming the
/// offending field; both finalize_descriptor and the worker-side grid
/// assembly (dist/task.h) go through it, so coordinator and worker agree
/// on what a valid grid is.
netlist::Netlist build_grid_stage(const RunDescriptor& desc);

/// Fills desc.netlist_hash and desc.root_seed from desc.workload and
/// desc.seed — what a coordinator does before serving the descriptor.
/// Dispatches on desc.task_kind and validates the kind's plan inputs.
void finalize_descriptor(RunDescriptor& desc);

/// Runs the descriptor's Monte-Carlo workload to completion in this
/// process (the single-process reference): exactly
/// GateLevelMonteCarlo::run with Rng(desc.seed).  The distributed
/// acceptance check is bitwise_equal against this.  Kind-generic callers
/// use dist/task.h's run_local_task instead.
mc::McResult run_local(const RunDescriptor& desc);

}  // namespace statpipe::dist
