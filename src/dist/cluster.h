// Cluster client: submit a finalized RunDescriptor to a self-hosted
// coordinator session — optionally forking a localhost worker fleet — and
// adapt the result back into the shapes the upper layers consume.
//
// This is the piece that lets the optimizer layers run their candidate
// grids on a cluster WITHOUT ever including src/dist: `opt` routes grids
// through the sta::GridCharacterizer seam (sta/ssta_batch.h), and
// grid_characterizer() below manufactures a cluster-backed implementation
// of that seam.  One hook invocation = one coordinator session (bind,
// serve, reassemble, reap), so every submission carries the full
// determinism contract: the returned lanes are bitwise-identical to the
// local SstaBatch path (docs/DETERMINISM.md, tests/test_dist.cpp).
//
// Layer contract (src/dist, see docs/ARCHITECTURE.md): the distributed
// execution layer sits on top of mc/sta/sim/stats and may depend on all of
// them; nothing below src/dist may know it exists — opt reaches it only
// through the injected sta::GridCharacterizer.
#pragma once

#include <sys/types.h>

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "dist/coordinator.h"
#include "dist/service.h"
#include "dist/task.h"
#include "netlist/netlist.h"
#include "sta/ssta_batch.h"

namespace statpipe::dist {

struct ClusterOptions {
  CoordinatorOptions coordinator;  ///< bind/port, range size, attempts, ...
  /// Fork this many localhost statpipe-worker processes per submission
  /// (the one-command cluster).  0 = workers dial in from outside against
  /// coordinator.port().
  std::size_t spawn_workers = 0;
  std::string worker_bin;          ///< required when spawn_workers > 0
  /// Result-cache byte bound for ClusterHandle fleets (0 disables; the
  /// one-shot run_cluster path never caches).  An identical resubmission
  /// — same canonical descriptor bytes, same root_seed — is answered from
  /// memory, byte-identical to a recompute.
  std::size_t cache_max_bytes = std::size_t{64} << 20;
  /// Called with the bound port right after the listener binds and before
  /// the run blocks — how a caller with spawn_workers == 0 learns the
  /// ephemeral port to announce to externally started workers.
  std::function<void(std::uint16_t)> on_listening;
  /// Called once per completed coordinator session with that session's
  /// RunMetrics.  Callers that submit many sessions through one
  /// ClusterOptions (grid_characterizer makes one session per grid) use
  /// this to aggregate what run_cluster's out-param can only report for a
  /// single call.
  std::function<void(const RunMetrics&)> on_metrics;
};

/// Forks one statpipe-worker process against `port` (posix_spawn).  A
/// non-empty `auth_key` travels as `--key` so spawned workers speak the
/// coordinator's authenticated wire; `serve` adds `--serve`, making the
/// worker reconnect and serve again after the service drops it (the
/// resident-fleet daemon mode).  Throws std::runtime_error when the
/// binary cannot be spawned.
pid_t spawn_worker_process(const std::string& worker_bin, std::uint16_t port,
                           bool quiet, const std::string& auth_key = "",
                           bool serve = false);

/// A RESIDENT cluster: one Service and one spawned worker fleet that stay
/// up across any number of submit() calls — what the optimizer's probe
/// grids use so they stop paying spawn/reap (and workload re-setup) per
/// grid.  submit() drives the service event loop on the CALLING thread
/// until that descriptor completes, so the handle adds no threads of its
/// own; it is not safe for concurrent submit() from multiple threads.
/// close() winds the fleet down (kShutdown, then reap — SIGKILL after a
/// grace period); the destructor closes if the caller did not.  The
/// one-shot run_cluster below is the spawn-per-submission wrapper kept
/// for single runs.
class ClusterHandle {
 public:
  /// Binds, spawns the fleet, returns immediately (workers connect in the
  /// background — the first submit() admits them).
  explicit ClusterHandle(ClusterOptions opt);
  ~ClusterHandle();
  ClusterHandle(const ClusterHandle&) = delete;
  ClusterHandle& operator=(const ClusterHandle&) = delete;

  std::uint16_t port() const noexcept { return svc_.port(); }

  /// One full submission: validate, schedule over the resident fleet (or
  /// answer from the result cache), return the bitwise-deterministic
  /// result.  Throws std::invalid_argument on descriptor/option
  /// validation and std::runtime_error on a failed run.  A non-null
  /// `metrics` receives the request's RunMetrics even when the run throws.
  TaskResult submit(const RunDescriptor& desc, std::uint32_t priority = 0,
                    RunMetrics* metrics = nullptr);

  /// Service-wide totals (cache hits, per-session fair-share units, ...).
  ServiceStats stats() const { return svc_.stats(); }

  /// Shuts the fleet down and reaps it; idempotent.
  void close();

 private:
  ClusterOptions opt_;
  Service svc_;
  std::vector<pid_t> kids_;
  bool closed_ = false;
};

/// One full coordinator session for a finalized descriptor: bind, spawn
/// the requested local workers, serve until every unit arrived, then reap
/// the spawned workers while draining the listener backlog.  Throws
/// std::runtime_error when the run itself fails (range attempts
/// exhausted, idle timeout) — spawned workers are killed and reaped
/// before the rethrow.  A worker that exits abnormally AFTER the run
/// completed does not discard the result (every unit was already
/// validated and reassembled); it is reported on stderr instead.
/// A non-null `metrics` receives the session's RunMetrics (ranges,
/// retries, forfeits, staging high-water, wall time) on success — how
/// statpipe-run prints its per-run dist block without obs being enabled.
TaskResult run_cluster(const RunDescriptor& desc, const ClusterOptions& opt,
                       RunMetrics* metrics = nullptr);

/// The registry workload name for a netlist the cluster can rebuild:
/// strips the generator's "_like" suffix from nl.name(), re-synthesizes
/// the circuit, transplants nl's sizes and verifies structural-hash
/// equality — so a netlist that is NOT reconstructible from the workload
/// registry (edited structure, foreign parser input) is rejected with a
/// clear error instead of silently characterizing the wrong circuit.
std::string workload_name_for(const netlist::Netlist& nl);

/// Cluster-backed sta::GridCharacterizer: each invocation packages the
/// grid as a kSstaGrid RunDescriptor (workload_name_for identity check;
/// spec, output_load and the model's technology copied into the
/// descriptor), finalizes it and runs one cluster session.  Plug it into
/// opt::SweepOptions::grid / opt::GlobalOptimizerOptions::grid to farm
/// candidate grids out; results are bitwise-identical to leaving the hook
/// empty.
sta::GridCharacterizer grid_characterizer(ClusterOptions opt);

/// Same contract, but every grid rides the RESIDENT fleet behind `handle`
/// instead of binding/spawning/reaping per invocation — repeated probe
/// grids also hit the handle's result cache.  The handle is shared
/// because sta::GridCharacterizer must be copyable.
sta::GridCharacterizer grid_characterizer(
    std::shared_ptr<ClusterHandle> handle);

/// Same contract against a REMOTE service this process does not host:
/// each grid becomes one kSubmit on the client's session and blocks until
/// its kRequestDone.  (ServiceClient is not thread-safe; callers fanning
/// out across threads need one client each.)
sta::GridCharacterizer grid_characterizer(
    std::shared_ptr<ServiceClient> client);

}  // namespace statpipe::dist
