#include "dist/service.h"

#include <poll.h>

#include <algorithm>
#include <cerrno>
#include <stdexcept>
#include <utility>

#include "obs/log.h"
#include "obs/telemetry.h"

namespace statpipe::dist {

namespace {

void log_line(const ServiceOptions& opt, const std::string& msg) {
  obs::log_info("service", msg, opt.verbose);
}

const obs::SpanId& span_range() {
  static const obs::SpanId s("dist.range");
  return s;
}

const obs::SpanId& span_request() {
  static const obs::SpanId s("dist.service.request");
  return s;
}

std::string range_str(const SchedTask& t) {
  return "[" + std::to_string(t.begin) + ", " + std::to_string(t.end) + ")";
}

}  // namespace

Service::Service(ServiceOptions opt)
    : opt_(std::move(opt)),
      auth_(FrameAuth::from_passphrase(opt_.auth_key)),
      listener_(opt_.bind_host, opt_.port),
      cache_(opt_.cache_max_bytes) {
  if (opt_.max_attempts < 1)
    throw std::invalid_argument("dist: max_attempts must be >= 1");
  log_line(opt_, "service listening on " + opt_.bind_host + ":" +
                     std::to_string(listener_.port()) +
                     (auth_.enabled ? ", authenticated wire" : ""));
}

Service::~Service() = default;

std::uint64_t Service::submit_local(const RunDescriptor& desc,
                                    std::uint32_t priority) {
  return admit_request(desc, priority, /*client_session=*/0, /*client_id=*/0);
}

std::uint64_t Service::admit_request(RunDescriptor desc,
                                     std::uint32_t priority,
                                     std::uint64_t client_session,
                                     std::uint64_t client_id) {
  // finalize_descriptor always sets a nonzero hash (FNV of a non-empty
  // stage list), and hash == 0 would additionally disable the worker-side
  // workload verification — so a zero hash means an unfinalized
  // descriptor, regardless of what seed the user picked.
  if (desc.netlist_hash == 0)
    throw std::invalid_argument(
        "dist: descriptor not finalized (netlist_hash unset; call "
        "finalize_descriptor)");
  // Validate the plan inputs with the task layer's own planner: throws on
  // zero samples / an empty grid, and gives us the unit count ranges are
  // cut from.
  const std::size_t n_units = task_unit_count(desc);
  // units_per_range is a service-wide knob.  A LOCAL submission (the
  // Coordinator path) keeps the strict v3 contract — an unsatisfiable
  // range size is a caller configuration error, rejected up front; a
  // REMOTE request merely smaller than the chunk clamps to its own size.
  if (client_session == 0 && opt_.units_per_range > n_units)
    throw std::invalid_argument(
        "dist: units_per_range " + std::to_string(opt_.units_per_range) +
        " exceeds the plan's " + std::to_string(n_units) + " unit(s)");
  // With streaming each kResult frame carries ONE unit, so the frame cap
  // bounds the unit payload, not the range.  Only a single unit too big
  // for a frame is rejected, up front rather than after a retry cascade.
  if (task_unit_wire_bytes(desc) + 64 > kMaxFramePayload)
    throw std::invalid_argument(
        "dist: samples_per_shard " + std::to_string(desc.samples_per_shard) +
        " makes a single shard's result exceed the frame payload cap; "
        "use smaller shards");
  // Fleet-poisoning guard for remote submissions: a descriptor whose
  // workload cannot be built (unknown circuit, hash mismatch, bad grid)
  // would kill every worker it reaches via kError-and-exit.  Building it
  // once service-side turns that into a submit-time rejection.  Local
  // submissions skip this (the v3 coordinator never built workloads, and
  // tests drive deliberately-unbuildable descriptors through it).
  if (client_session != 0) make_unit_runner(desc);

  const std::uint64_t rid = next_rid_++;
  Request rq;
  rq.rid = rid;
  rq.client_session = client_session;
  rq.client_id = client_id;
  rq.desc = std::move(desc);
  rq.priority = priority;
  rq.n_units = n_units;
  {
    ByteWriter w;
    write_run_descriptor(w, rq.desc);
    rq.desc_bytes = w.take();
  }
  rq.cache_key = sha256(std::span<const std::uint8_t>(rq.desc_bytes.data(),
                                                      rq.desc_bytes.size()));
  rq.submit_ns = obs::now_ns();
  rq.span_t0 = obs::enabled() ? rq.submit_ns : 0;
  rq.metrics.units = n_units;
  ++stats_.requests_submitted;
  static obs::Counter c_requests("dist.service.requests");
  c_requests.add();

  // Content-addressed cache: the canonical descriptor bytes (root_seed
  // included) are the whole identity of a run, so a hit IS the result.
  const std::vector<std::uint8_t>* hit =
      opt_.cache_max_bytes > 0 ? cache_.find(rq.cache_key) : nullptr;
  if (hit != nullptr) {
    rq.result_blob = *hit;
    rq.metrics.cache_hits = 1;
    log_line(opt_, "request " + std::to_string(rid) + " served from cache (" +
                       std::to_string(rq.result_blob.size()) + " bytes)");
    auto [it, ok] = requests_.emplace(rid, std::move(rq));
    finish_request(it->second);
    return rid;
  }
  if (opt_.cache_max_bytes > 0) rq.metrics.cache_misses = 1;

  const std::size_t per =
      opt_.units_per_range != 0
          ? std::min(opt_.units_per_range, n_units)
          : std::max<std::size_t>(1, n_units / 8);
  sched_.add_request(rid, client_session, priority);
  for (std::size_t b = 0; b < n_units; b += per) {
    sched_.enqueue({rid, b, std::min(b + per, n_units), 0});
    ++rq.metrics.ranges;
  }
  if (rq.desc.task_kind == TaskKind::kSstaGrid) {
    rq.lanes.resize(n_units);
    rq.lane_got.assign(n_units, 0);
  }
  log_line(opt_, "request " + std::to_string(rid) + " (session " +
                     std::to_string(client_session) + ", " +
                     task_kind_name(rq.desc.task_kind) + ", priority " +
                     std::to_string(priority) + "): " +
                     std::to_string(n_units) + " units in " +
                     std::to_string(rq.metrics.ranges) + " ranges");
  requests_.emplace(rid, std::move(rq));
  return rid;
}

void Service::finish_request(Request& rq) {
  rq.status = Request::Status::kDone;
  if (rq.result_blob.empty()) {
    // Serialize the fold into the canonical blob form — the cache entry,
    // the client wire payload and (via the byte-identity round-trip) the
    // local result are all this one byte string.
    if (rq.desc.task_kind == TaskKind::kSstaGrid) {
      rq.result_blob = serialize_characterizations(rq.lanes);
    } else {
      rq.mc_acc.label = "gate-level MC";
      rq.result_blob = serialize_mc_result(rq.mc_acc);
    }
    if (opt_.cache_max_bytes > 0) cache_.insert(rq.cache_key, rq.result_blob);
  }
  const std::int64_t now = obs::now_ns();
  rq.metrics.wall_ms = static_cast<double>(now - rq.submit_ns) / 1e6;
  rq.metrics.workers_admitted = stats_.workers_admitted;
  if (rq.span_t0 > 0 && obs::enabled())
    obs::record_span(span_request(), rq.span_t0, now,
                     static_cast<std::int64_t>(rq.rid));
  ++stats_.requests_completed;
  log_line(opt_, "request " + std::to_string(rq.rid) + " done (" +
                     std::to_string(rq.n_units) + " units, " +
                     (rq.metrics.cache_hits != 0 ? "cache hit" : "computed") +
                     ")");
  release_request(rq.rid);
  if (rq.client_session != 0) {
    for (Peer& p : peers_) {
      if (p.kind != Peer::Kind::kClient || p.session != rq.client_session ||
          !p.sock.valid())
        continue;
      ByteWriter w;
      w.u16(static_cast<std::uint16_t>(rq.desc.task_kind));
      w.u8(rq.metrics.cache_hits != 0 ? 1 : 0);
      w.u64(static_cast<std::uint64_t>(rq.metrics.queue_wait_ms * 1e6));
      w.append(rq.result_blob);
      try {
        send_frame(p.sock, MsgType::kRequestDone, w.bytes(), auth_, p.session,
                   rq.client_id);
      } catch (const std::exception& e) {
        log_line(opt_, "request " + std::to_string(rq.rid) +
                           " result undeliverable: " + e.what());
        p.sock.close();
      }
      break;
    }
    requests_.erase(rq.rid);  // remote request state is delivered-or-gone
  }
}

void Service::fail_request(std::uint64_t rid, const std::string& why) {
  auto it = requests_.find(rid);
  if (it == requests_.end() || it->second.status != Request::Status::kActive)
    return;
  Request& rq = it->second;
  rq.status = Request::Status::kFailed;
  rq.error = why;
  rq.metrics.wall_ms =
      static_cast<double>(obs::now_ns() - rq.submit_ns) / 1e6;
  rq.metrics.workers_admitted = stats_.workers_admitted;
  sched_.remove_request(rid);
  ++stats_.requests_completed;
  ++stats_.requests_failed;
  log_line(opt_, "request " + std::to_string(rid) + " FAILED: " + why);
  release_request(rid);
  if (rq.client_session != 0) {
    for (Peer& p : peers_) {
      if (p.kind != Peer::Kind::kClient || p.session != rq.client_session ||
          !p.sock.valid())
        continue;
      ByteWriter w;
      w.str(why);
      try {
        send_frame(p.sock, MsgType::kError, w.bytes(), auth_, p.session,
                   rq.client_id);
      } catch (const std::exception&) {
        p.sock.close();
      }
      break;
    }
    requests_.erase(rid);
  }
}

void Service::release_request(std::uint64_t rid) {
  for (Peer& p : peers_) {
    if (p.kind != Peer::Kind::kWorker || !p.sock.valid()) continue;
    if (p.setup_rids.erase(rid) == 0) continue;
    try {
      send_frame(p.sock, MsgType::kRelease, {}, auth_, p.session, rid);
    } catch (const std::exception&) {
      p.sock.close();
    }
  }
}

void Service::admit_peer() {
  Socket s = listener_.accept();
  // The hello is read synchronously — it is the first thing a real peer
  // writes — but under a timeout: a peer that connects and stays silent (a
  // port scanner, a health probe on a 0.0.0.0 bind) must not wedge the
  // event loop.
  std::optional<Frame> hello;
  try {
    s.set_recv_timeout_ms(5000);
    hello = recv_frame(s, auth_);
    // From here on the read deadline bounds every read from this peer —
    // see CoordinatorOptions::read_deadline_ms for the rationale.
    if (opt_.read_deadline_ms > 0)
      s.set_read_deadline_ms(opt_.read_deadline_ms);
    else
      s.set_recv_timeout_ms(opt_.idle_timeout_ms > 0 ? opt_.idle_timeout_ms
                                                     : 0);
  } catch (const std::exception& e) {
    log_line(opt_, std::string("rejecting connection: ") + e.what());
    return;
  }
  if (!hello || (hello->type != MsgType::kHello &&
                 hello->type != MsgType::kClientHello)) {
    log_line(opt_, "rejecting connection: no hello");
    return;
  }
  Peer p;
  p.sock = std::move(s);
  p.kind = hello->type == MsgType::kHello ? Peer::Kind::kWorker
                                          : Peer::Kind::kClient;
  p.session = next_session_++;
  {
    ByteWriter w;
    w.u64(p.session);
    try {
      send_frame(p.sock, MsgType::kWelcome, w.bytes(), auth_, p.session, 0);
    } catch (const std::exception& e) {
      log_line(opt_, std::string("welcome failed: ") + e.what());
      return;
    }
  }
  ++stats_.sessions_opened;
  static obs::Counter c_sessions("dist.service.sessions");
  c_sessions.add();
  if (p.kind == Peer::Kind::kWorker) {
    ++stats_.workers_admitted;
    static obs::Counter c_admitted("dist.workers_admitted");
    c_admitted.add();
    try_assign(p);
    log_line(opt_, "worker connected as session " +
                       std::to_string(p.session) + " (" +
                       std::to_string(stats_.workers_admitted) + " admitted)");
  } else {
    log_line(opt_, "client connected as session " + std::to_string(p.session));
  }
  peers_.push_back(std::move(p));
}

void Service::try_assign(Peer& w) {
  if (!w.sock.valid() || w.kind != Peer::Kind::kWorker || w.has_range) return;
  std::optional<SchedTask> t = sched_.next();
  if (!t) return;
  Request& rq = requests_.at(t->rid);
  t->attempts += 1;
  try {
    // Lazy per-(worker, request) setup: the descriptor travels once per
    // worker, right before that worker's first range of the request.
    if (w.setup_rids.count(t->rid) == 0) {
      send_frame(w.sock, MsgType::kSetup, rq.desc_bytes, auth_, w.session,
                 t->rid);
      w.setup_rids.insert(t->rid);
    }
    ByteWriter out;
    out.u64(t->begin);
    out.u64(t->end);
    send_frame(w.sock, MsgType::kAssign, out.bytes(), auth_, w.session,
               t->rid);
  } catch (const std::exception&) {
    // Undo fully: the attempt never reached a worker, so it must not burn
    // the range's attempt budget.  Closing the socket marks the worker for
    // removal at the top of the next event-loop iteration.
    t->attempts -= 1;
    sched_.requeue_front(*t);
    w.sock.close();
    return;
  }
  w.has_range = true;
  w.task = *t;
  w.staged_mc.clear();
  w.staged_lanes.clear();
  w.assign_ns = obs::enabled() ? obs::now_ns() : 0;
  ++rq.metrics.assigns;
  if (rq.metrics.assigns == 1)
    rq.metrics.queue_wait_ms =
        static_cast<double>(obs::now_ns() - rq.submit_ns) / 1e6;
  if (t->attempts > 1) ++rq.metrics.retries;
  static obs::Counter c_assigns("dist.assigns");
  c_assigns.add();
  log_line(opt_, "assigned units " + range_str(*t) + " of request " +
                     std::to_string(t->rid) + " to session " +
                     std::to_string(w.session) + " attempt " +
                     std::to_string(t->attempts));
}

void Service::requeue(Peer& w, const std::string& why) {
  if (w.has_range) {
    // The worker forfeits the whole range: staged units are part of an
    // uncommitted stream and are discarded with it — a partially streamed
    // range never contributes to the fold (docs/DETERMINISM.md).
    const std::size_t staged = w.staged_mc.size() + w.staged_lanes.size();
    log_line(opt_, "range " + range_str(w.task) + " of request " +
                       std::to_string(w.task.rid) + " lost (" +
                       std::to_string(staged) +
                       " staged unit(s) discarded): " + why);
    w.staged_mc.clear();
    w.staged_lanes.clear();
    const SchedTask task = w.task;
    w.has_range = false;
    auto rit = requests_.find(task.rid);
    if (rit != requests_.end() &&
        rit->second.status == Request::Status::kActive) {
      Request& rq = rit->second;
      ++rq.metrics.forfeits;
      rq.metrics.units_discarded += staged;
      rq.staged_now -= staged;
      static obs::Counter c_requeues("dist.requeues");
      c_requeues.add();
      static obs::Counter c_discarded("dist.units_discarded");
      c_discarded.add(staged);
      if (task.attempts >= opt_.max_attempts)
        // Exhausting the budget fails the REQUEST, never the service.
        fail_request(task.rid,
                     "dist: unit range " + range_str(task) + " failed " +
                         std::to_string(task.attempts) +
                         " attempt(s); last: " + why);
      else
        sched_.requeue_front(task);
    }
  }
  w.sock.close();
}

void Service::handle_unit(Peer& w, Request& rq, const Frame& f) {
  ByteReader r(f.payload);
  const std::uint64_t unit = r.u64();
  if (unit < w.task.begin || unit >= w.task.end)
    throw std::runtime_error("unit " + std::to_string(unit) +
                             " outside assigned range " + range_str(w.task));
  const bool dup = rq.desc.task_kind == TaskKind::kSstaGrid
                       ? w.staged_lanes.count(unit) != 0
                       : w.staged_mc.count(unit) != 0;
  if (dup)
    throw std::runtime_error("duplicate unit " + std::to_string(unit) +
                             " in result stream");
  // Decode on receipt, into the worker's staging area: a corrupt payload
  // forfeits the range within its attempt budget instead of failing the
  // final fold, and nothing touches the committed fold until kRangeDone.
  if (rq.desc.task_kind == TaskKind::kSstaGrid)
    w.staged_lanes.emplace(unit, read_stage_characterization(r));
  else
    w.staged_mc.emplace(unit, read_mc_result(r));
  r.expect_done();
  ++rq.staged_now;
  rq.metrics.peak_staged_units =
      std::max(rq.metrics.peak_staged_units, rq.staged_now);
  static obs::Counter c_staged("dist.units_staged");
  c_staged.add();
}

void Service::handle_range_done(Peer& w, Request& rq, const Frame& f) {
  ByteReader r(f.payload);
  const std::uint64_t begin = r.u64();
  const std::uint64_t end = r.u64();
  const std::uint64_t count = r.u64();
  r.expect_done();
  if (begin != w.task.begin || end != w.task.end)
    throw std::runtime_error("range-done echoes [" + std::to_string(begin) +
                             ", " + std::to_string(end) +
                             ") for assignment " + range_str(w.task));
  const std::size_t staged = rq.desc.task_kind == TaskKind::kSstaGrid
                                 ? w.staged_lanes.size()
                                 : w.staged_mc.size();
  if (count != end - begin || staged != end - begin)
    throw std::runtime_error(
        "range-done claims " + std::to_string(count) + " unit(s), " +
        std::to_string(staged) + " staged, for a range of " +
        std::to_string(end - begin));
  // Commit: every unit of the range is present exactly once (membership
  // and duplicates were enforced at staging, so a full-size staging map
  // IS the whole range).  MC units enter the pending map and the
  // contiguous prefix folds immediately; grid lanes place positionally.
  if (rq.desc.task_kind == TaskKind::kSstaGrid) {
    for (auto& [unit, lane] : w.staged_lanes) {
      if (rq.lane_got[unit])
        throw std::runtime_error("lane " + std::to_string(unit) +
                                 " committed twice");
      rq.lanes[unit] = lane;
      rq.lane_got[unit] = 1;
      ++rq.lanes_done;
    }
    w.staged_lanes.clear();
  } else {
    for (auto& [unit, part] : w.staged_mc) {
      if (unit < rq.folded_prefix || rq.mc_pending.count(unit) != 0)
        throw std::runtime_error("unit " + std::to_string(unit) +
                                 " committed twice");
      rq.mc_pending.emplace(unit, std::move(part));
    }
    w.staged_mc.clear();
    advance_mc_fold(rq);
  }
  w.has_range = false;
  rq.staged_now -= end - begin;
  ++rq.metrics.commits;
  static obs::Counter c_commits("dist.commits");
  c_commits.add();
  static obs::Counter c_units("dist.units_committed");
  c_units.add(end - begin);
  // Assign→commit latency for this range, closed across call sites via
  // record_span (the RAII form cannot straddle the event loop).
  if (w.assign_ns > 0 && obs::enabled())
    obs::record_span(span_range(), w.assign_ns, obs::now_ns(),
                     static_cast<std::int64_t>(begin));
  w.assign_ns = 0;
  log_line(opt_, "range [" + std::to_string(begin) + ", " +
                     std::to_string(end) + ") of request " +
                     std::to_string(rq.rid) + " committed; " +
                     std::to_string(rq.done_units()) + "/" +
                     std::to_string(rq.n_units) + " units");
}

void Service::advance_mc_fold(Request& rq) {
  // Left fold in ascending unit order — the identical fold
  // GateLevelMonteCarlo::run applies locally — consuming the pending map
  // as long as it extends the contiguous prefix.  Memory stays bounded by
  // the out-of-order window: a committed range can only wait while some
  // earlier range is still in flight.
  auto it = rq.mc_pending.begin();
  while (it != rq.mc_pending.end() && it->first == rq.folded_prefix) {
    if (rq.folded_prefix == 0)
      rq.mc_acc = std::move(it->second);
    else
      rq.mc_acc.merge(std::move(it->second));
    it = rq.mc_pending.erase(it);
    ++rq.folded_prefix;
  }
}

bool Service::service_worker(Peer& w) {
  std::optional<Frame> f;
  try {
    f = recv_frame(w.sock, auth_);
  } catch (const std::exception& e) {
    requeue(w, e.what());
    return false;
  }
  if (!f) {
    requeue(w, "worker disconnected");
    return false;
  }
  switch (f->type) {
    case MsgType::kResult:
    case MsgType::kRangeDone:
      try {
        if (!w.has_range)
          throw std::runtime_error(
              f->type == MsgType::kResult
                  ? "result frame from a worker with no assignment"
                  : "range-done frame from a worker with no assignment");
        // Session/request binding: a worker frame must be scoped to this
        // connection's session and its in-flight request — a replayed or
        // cross-wired frame forfeits the range, MAC or no MAC.
        if (f->session_id != w.session || f->request_id != w.task.rid)
          throw std::runtime_error(
              "frame scoped to session " + std::to_string(f->session_id) +
              " request " + std::to_string(f->request_id) +
              ", expected session " + std::to_string(w.session) +
              " request " + std::to_string(w.task.rid));
        auto rit = requests_.find(w.task.rid);
        const bool active = rit != requests_.end() &&
                            rit->second.status == Request::Status::kActive;
        if (f->type == MsgType::kResult) {
          if (active) handle_unit(w, rit->second, *f);
          // A range of a request that already failed is draining out:
          // discard its stream without charging anyone.
        } else if (active) {
          handle_range_done(w, rit->second, *f);
          if (rit->second.done_units() == rit->second.n_units)
            finish_request(rit->second);  // may erase the request
        } else {
          w.staged_mc.clear();
          w.staged_lanes.clear();
          w.has_range = false;
        }
      } catch (const std::exception& e) {
        // std::exception, not just runtime_error: a corrupt frame can also
        // surface as length_error/bad_alloc from the deserializer, and any
        // of those must forfeit the range (bounded by its attempt budget),
        // not abort the service.
        requeue(w, e.what());
        return false;
      }
      if (!w.has_range) try_assign(w);
      return true;
    case MsgType::kError: {
      ByteReader r(f->payload);
      requeue(w, "worker error: " + r.str());
      return false;
    }
    default:
      requeue(w, "unexpected frame type " +
                     std::to_string(static_cast<int>(f->type)));
      return false;
  }
}

bool Service::service_client(Peer& p) {
  std::optional<Frame> f;
  try {
    f = recv_frame(p.sock, auth_);
  } catch (const std::exception& e) {
    log_line(opt_, "client session " + std::to_string(p.session) +
                       " dropped: " + e.what());
    p.sock.close();
    return false;
  }
  if (!f) {
    log_line(opt_, "client session " + std::to_string(p.session) +
                       " disconnected");
    p.sock.close();
    return false;
  }
  auto reject = [&](std::uint64_t request_id, const std::string& why) {
    log_line(opt_, "client session " + std::to_string(p.session) +
                       " rejected: " + why);
    ByteWriter w;
    w.str(why);
    try {
      send_frame(p.sock, MsgType::kError, w.bytes(), auth_, p.session,
                 request_id);
    } catch (const std::exception&) {
    }
    p.sock.close();
    return false;
  };
  if (f->type != MsgType::kSubmit)
    return reject(f->request_id,
                  "dist: unexpected frame type " +
                      std::to_string(static_cast<int>(f->type)) +
                      " from a client session");
  // The replay defense: every client frame must carry the session id THIS
  // connection was welcomed with.  A frame captured from another session
  // — bit-identical MAC and all — fails here, because the id it is bound
  // to was granted to a different connection.
  if (f->session_id != p.session)
    return reject(f->request_id,
                  "dist: unknown or stale session id " +
                      std::to_string(f->session_id) + " (this connection is "
                      "session " + std::to_string(p.session) + ")");
  if (!p.client_ids.insert(f->request_id).second)
    return reject(f->request_id,
                  "dist: duplicate request id " +
                      std::to_string(f->request_id) + " in session " +
                      std::to_string(p.session));
  try {
    ByteReader r(f->payload);
    const std::uint32_t priority = r.u32();
    RunDescriptor desc = read_run_descriptor(r);
    r.expect_done();
    admit_request(std::move(desc), priority, p.session, f->request_id);
  } catch (const std::exception& e) {
    return reject(f->request_id, e.what());
  }
  return true;
}

bool Service::outstanding_requests() const {
  for (const auto& [rid, rq] : requests_)
    if (rq.status == Request::Status::kActive) return true;
  return false;
}

void Service::run(const std::function<bool()>& until) {
  while (!until()) {
    // Drop peers whose sockets died outside their service_* call (e.g. a
    // failed kAssign send) — a closed-socket entry must not linger as a
    // zombie the assignment loop keeps visiting.
    std::erase_if(peers_, [](const Peer& p) { return !p.sock.valid(); });
    // Top up idle workers first: work may have been enqueued between
    // run() calls (ClusterHandle resubmits against an already-connected
    // fleet) or freed by the previous iteration's events.
    for (Peer& p : peers_) try_assign(p);
    std::vector<pollfd> fds;
    fds.push_back({listener_.fd(), POLLIN, 0});
    for (const Peer& p : peers_) fds.push_back({p.sock.fd(), POLLIN, 0});
    const int timeout = opt_.idle_timeout_ms > 0 ? opt_.idle_timeout_ms : -1;
    const int rc = ::poll(fds.data(), fds.size(), timeout);
    if (rc < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("dist: poll failed");
    }
    if (rc == 0) {
      // Idle timeout: no event at all for idle_timeout_ms.  Every
      // outstanding request fails with the progress it had — the service
      // itself keeps serving (a later client deserves a live fleet).
      std::vector<std::uint64_t> stuck;
      for (const auto& [rid, rq] : requests_)
        if (rq.status == Request::Status::kActive) stuck.push_back(rid);
      for (std::uint64_t rid : stuck) {
        const Request& rq = requests_.at(rid);
        fail_request(rid, "dist: no worker progress for " +
                              std::to_string(opt_.idle_timeout_ms) + " ms (" +
                              std::to_string(rq.done_units()) + "/" +
                              std::to_string(rq.n_units) + " units done)");
      }
      continue;
    }
    if (fds[0].revents & POLLIN) admit_peer();
    // Service in reverse so erasing a dead peer never shifts an entry we
    // have yet to visit (fds[i+1] belongs to peers_[i] of this snapshot;
    // admit_peer only appends).
    for (std::size_t i = peers_.size(); i-- > 0;) {
      if (i + 1 >= fds.size()) continue;  // connected this iteration
      if ((fds[i + 1].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      const bool keep = peers_[i].kind == Peer::Kind::kWorker
                            ? service_worker(peers_[i])
                            : service_client(peers_[i]);
      if (!keep)
        peers_.erase(peers_.begin() + static_cast<std::ptrdiff_t>(i));
    }
  }
}

bool Service::local_done(std::uint64_t rid) const {
  auto it = requests_.find(rid);
  return it == requests_.end() ||
         it->second.status != Request::Status::kActive;
}

TaskResult Service::take_local_result(std::uint64_t rid) {
  auto it = requests_.find(rid);
  if (it == requests_.end())
    throw std::logic_error("dist: unknown or already-taken request " +
                           std::to_string(rid));
  Request& rq = it->second;
  if (rq.status == Request::Status::kActive)
    throw std::logic_error("dist: request " + std::to_string(rid) +
                           " still running");
  if (rq.status == Request::Status::kFailed) {
    const std::string err = rq.error;
    requests_.erase(it);
    throw std::runtime_error(err);
  }
  // Deserialize the canonical blob — deserialize ∘ serialize is byte
  // identity (tested), so this is bitwise the fold (or the cached copy of
  // an identical earlier fold).
  TaskResult out;
  out.kind = rq.desc.task_kind;
  if (rq.desc.task_kind == TaskKind::kSstaGrid)
    out.lanes = deserialize_characterizations(rq.result_blob);
  else
    out.mc = deserialize_mc_result(rq.result_blob);
  requests_.erase(it);
  return out;
}

const RunMetrics& Service::local_metrics(std::uint64_t rid) const {
  auto it = requests_.find(rid);
  if (it == requests_.end())
    throw std::logic_error("dist: unknown or already-taken request " +
                           std::to_string(rid));
  return it->second.metrics;
}

void Service::shutdown_workers() {
  for (Peer& p : peers_) {
    if (p.kind != Peer::Kind::kWorker || !p.sock.valid()) continue;
    try {
      send_frame(p.sock, MsgType::kShutdown, {}, auth_, p.session, 0);
    } catch (const std::exception&) {
      // Worker already gone; shutdown is best-effort.
    }
  }
}

void Service::drain_backlog() {
  for (;;) {
    pollfd lfd{listener_.fd(), POLLIN, 0};
    const int rc = ::poll(&lfd, 1, 0);
    if (rc < 0 && errno == EINTR) continue;
    if (rc <= 0 || (lfd.revents & POLLIN) == 0) break;
    try {
      Socket s = listener_.accept();
      s.set_recv_timeout_ms(5000);
      if (recv_frame(s, auth_))  // their hello
        send_frame(s, MsgType::kShutdown, {}, auth_);
    } catch (const std::exception& e) {
      log_line(opt_, std::string("backlog drain: ") + e.what());
    }
  }
}

ServiceStats Service::stats() const {
  ServiceStats s = stats_;
  s.cache_hits = cache_.hits();
  s.cache_misses = cache_.misses();
  s.cache_evictions = cache_.evictions();
  for (std::uint64_t session : sched_.sessions())
    s.session_units.emplace_back(session, sched_.session_units(session));
  return s;
}

// ---------------------------------------------------------- ServiceClient

ServiceClient::ServiceClient(const std::string& host, std::uint16_t port,
                             const std::string& auth_key,
                             int connect_retry_ms)
    : sock_(connect_to(host, port, connect_retry_ms)),
      auth_(FrameAuth::from_passphrase(auth_key)) {
  ByteWriter w;
  w.u16(kWireVersion);
  send_frame(sock_, MsgType::kClientHello, w.bytes(), auth_);
  sock_.set_recv_timeout_ms(60000);
  std::optional<Frame> f = recv_frame(sock_, auth_);
  if (!f || f->type != MsgType::kWelcome)
    throw std::runtime_error("dist: service sent no welcome");
  ByteReader r(f->payload);
  session_ = r.u64();
  r.expect_done();
  sock_.set_recv_timeout_ms(0);
}

std::uint64_t ServiceClient::submit(const RunDescriptor& desc,
                                    std::uint32_t priority) {
  const std::uint64_t id = next_id_++;
  ByteWriter w;
  w.u32(priority);
  write_run_descriptor(w, desc);
  send_frame(sock_, MsgType::kSubmit, w.bytes(), auth_, session_, id);
  return id;
}

TaskResult ServiceClient::wait(std::uint64_t id) {
  for (;;) {
    if (auto it = done_.find(id); it != done_.end()) {
      TaskResult r = std::move(it->second.first);
      done_.erase(it);
      return r;
    }
    if (auto it = failed_.find(id); it != failed_.end())
      throw std::runtime_error(it->second);
    std::optional<Frame> f = recv_frame(sock_, auth_);
    if (!f)
      throw std::runtime_error(
          "dist: service closed the connection before the result");
    if (f->session_id != session_)
      throw std::runtime_error("dist: frame for a different session");
    if (f->type == MsgType::kError) {
      ByteReader r(f->payload);
      failed_.emplace(f->request_id, r.str());
      continue;
    }
    if (f->type != MsgType::kRequestDone)
      throw std::runtime_error("dist: unexpected frame type " +
                               std::to_string(static_cast<int>(f->type)) +
                               " from the service");
    ByteReader r(f->payload);
    const TaskKind kind = static_cast<TaskKind>(r.u16());
    RequestInfo info;
    info.cache_hit = r.u8() != 0;
    info.queue_wait_ms = static_cast<double>(r.u64()) / 1e6;
    const std::vector<std::uint8_t> blob = r.rest();
    TaskResult result;
    result.kind = kind;
    if (kind == TaskKind::kSstaGrid)
      result.lanes = deserialize_characterizations(blob);
    else
      result.mc = deserialize_mc_result(blob);
    done_.emplace(f->request_id,
                  std::make_pair(std::move(result), info));
    infos_[f->request_id] = info;
  }
}

const ServiceClient::RequestInfo& ServiceClient::info(std::uint64_t id) const {
  return infos_.at(id);
}

}  // namespace statpipe::dist
