#include "dist/hmac.h"

#include <cstdlib>
#include <cstring>
#include <vector>

namespace statpipe::dist {

namespace {

// FIPS 180-4 SHA-256: straightforward scalar implementation.  The wire
// authenticates one MAC per frame, so digest throughput is irrelevant next
// to the payloads themselves; clarity wins.

constexpr std::uint32_t kInit[8] = {
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
    0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
};

constexpr std::uint32_t kRound[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
};

inline std::uint32_t rotr(std::uint32_t x, int n) {
  return (x >> n) | (x << (32 - n));
}

void compress(std::uint32_t state[8], const std::uint8_t block[64]) {
  std::uint32_t w[64];
  for (int i = 0; i < 16; ++i)
    w[i] = (static_cast<std::uint32_t>(block[4 * i]) << 24) |
           (static_cast<std::uint32_t>(block[4 * i + 1]) << 16) |
           (static_cast<std::uint32_t>(block[4 * i + 2]) << 8) |
           static_cast<std::uint32_t>(block[4 * i + 3]);
  for (int i = 16; i < 64; ++i) {
    const std::uint32_t s0 =
        rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
    const std::uint32_t s1 =
        rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }
  std::uint32_t a = state[0], b = state[1], c = state[2], d = state[3];
  std::uint32_t e = state[4], f = state[5], g = state[6], h = state[7];
  for (int i = 0; i < 64; ++i) {
    const std::uint32_t s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
    const std::uint32_t ch = (e & f) ^ (~e & g);
    const std::uint32_t t1 = h + s1 + ch + kRound[i] + w[i];
    const std::uint32_t s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
    const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    const std::uint32_t t2 = s0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + t1;
    d = c;
    c = b;
    b = a;
    a = t1 + t2;
  }
  state[0] += a;
  state[1] += b;
  state[2] += c;
  state[3] += d;
  state[4] += e;
  state[5] += f;
  state[6] += g;
  state[7] += h;
}

}  // namespace

Digest sha256(std::span<const std::uint8_t> data) {
  std::uint32_t state[8];
  std::memcpy(state, kInit, sizeof state);
  std::size_t i = 0;
  for (; i + 64 <= data.size(); i += 64) compress(state, data.data() + i);
  // Final block(s): remainder, 0x80 pad, zeros, 64-bit big-endian bit count.
  std::uint8_t block[64] = {};
  const std::size_t rem = data.size() - i;
  if (rem > 0) std::memcpy(block, data.data() + i, rem);
  block[rem] = 0x80;
  if (rem >= 56) {
    compress(state, block);
    std::memset(block, 0, sizeof block);
  }
  const std::uint64_t bits = static_cast<std::uint64_t>(data.size()) * 8;
  for (int k = 0; k < 8; ++k)
    block[56 + k] = static_cast<std::uint8_t>(bits >> (8 * (7 - k)));
  compress(state, block);
  Digest out;
  for (int k = 0; k < 8; ++k) {
    out[4 * k] = static_cast<std::uint8_t>(state[k] >> 24);
    out[4 * k + 1] = static_cast<std::uint8_t>(state[k] >> 16);
    out[4 * k + 2] = static_cast<std::uint8_t>(state[k] >> 8);
    out[4 * k + 3] = static_cast<std::uint8_t>(state[k]);
  }
  return out;
}

Digest hmac_sha256(std::span<const std::uint8_t> key,
                   std::span<const std::uint8_t> data) {
  constexpr std::size_t kBlock = 64;
  std::uint8_t k0[kBlock] = {};
  if (key.size() > kBlock) {
    const Digest kh = sha256(key);
    std::memcpy(k0, kh.data(), kh.size());
  } else if (!key.empty()) {
    std::memcpy(k0, key.data(), key.size());
  }
  std::uint8_t inner[kBlock], outer[kBlock];
  for (std::size_t i = 0; i < kBlock; ++i) {
    inner[i] = static_cast<std::uint8_t>(k0[i] ^ 0x36);
    outer[i] = static_cast<std::uint8_t>(k0[i] ^ 0x5c);
  }
  std::vector<std::uint8_t> msg;
  msg.reserve(kBlock + data.size());
  msg.insert(msg.end(), inner, inner + kBlock);
  msg.insert(msg.end(), data.begin(), data.end());
  const Digest ih = sha256(msg);
  std::vector<std::uint8_t> om;
  om.reserve(kBlock + ih.size());
  om.insert(om.end(), outer, outer + kBlock);
  om.insert(om.end(), ih.begin(), ih.end());
  return sha256(om);
}

bool digest_equal_consttime(const Digest& a, const Digest& b) noexcept {
  // Accumulate the XOR of every byte pair; branch only on the final fold so
  // the time taken is independent of where (or whether) the digests differ.
  volatile std::uint8_t acc = 0;
  for (std::size_t i = 0; i < kDigestSize; ++i)
    acc = static_cast<std::uint8_t>(acc | (a[i] ^ b[i]));
  return acc == 0;
}

FrameAuth FrameAuth::from_passphrase(const std::string& passphrase) {
  FrameAuth a;
  if (passphrase.empty()) return a;
  a.enabled = true;
  a.key = sha256(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(passphrase.data()),
      passphrase.size()));
  return a;
}

FrameAuth FrameAuth::from_env() {
  const char* v = std::getenv("STATPIPE_WIRE_KEY");
  return from_passphrase(v ? std::string(v) : std::string());
}

Digest FrameAuth::mac(std::span<const std::uint8_t> data) const {
  return hmac_sha256(std::span<const std::uint8_t>(key.data(), key.size()),
                     data);
}

}  // namespace statpipe::dist
