#include "dist/transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <thread>

#include "dist/serialize.h"
#include "obs/telemetry.h"

namespace statpipe::dist {

namespace {

// Wire-level obs counters (docs/OBSERVABILITY.md): frames/bytes both
// directions plus the two hostile-peer rejection classes.  Cheap enough to
// live on every frame: one relaxed load when telemetry is off.
obs::Counter& c_tx_frames() {
  static obs::Counter c("dist.tx_frames");
  return c;
}
obs::Counter& c_tx_bytes() {
  static obs::Counter c("dist.tx_bytes");
  return c;
}
obs::Counter& c_rx_frames() {
  static obs::Counter c("dist.rx_frames");
  return c;
}
obs::Counter& c_rx_bytes() {
  static obs::Counter c("dist.rx_bytes");
  return c;
}
obs::Counter& c_auth_rejects() {
  static obs::Counter c("dist.auth_rejects");
  return c;
}
obs::Counter& c_deadline_trips() {
  static obs::Counter c("dist.deadline_trips");
  return c;
}

/// v4 frame header: u32 magic, u16 version, u16 type, u32 flags,
/// u64 session_id, u64 request_id, u64 size.  The first 8 bytes (magic,
/// version, type) are read and validated alone so a shorter-headered v3
/// peer is rejected with the version error, never a stuck read.
constexpr std::size_t kHeaderSize = 36;
constexpr std::size_t kHeaderPrefixSize = 8;

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error("dist: " + what + ": " + std::strerror(errno));
}

sockaddr_in make_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
    throw std::runtime_error("dist: bad IPv4 address '" + host + "'");
  return addr;
}

}  // namespace

// ---------------------------------------------------------------- Socket

Socket::~Socket() { close(); }

Socket& Socket::operator=(Socket&& o) noexcept {
  if (this != &o) {
    close();
    fd_ = o.fd_;
    deadline_ms_ = o.deadline_ms_;
    fault_ = o.fault_;
    o.fd_ = -1;
    o.fault_ = nullptr;
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::set_recv_timeout_ms(int ms) {
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = (ms % 1000) * 1000;
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv) != 0)
    throw_errno("setsockopt(SO_RCVTIMEO)");
}

void Socket::set_read_deadline_ms(int ms) {
  deadline_ms_ = ms;
  // Also arm SO_RCVTIMEO at the deadline so a fully silent peer (zero
  // bytes) wakes the blocking recv; the absolute check in recv_all then
  // bounds peers that drip bytes just often enough to keep resetting it.
  if (ms > 0) set_recv_timeout_ms(ms);
}

void Socket::send_all(const void* data, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  while (n > 0) {
    std::size_t chunk = n;
    if (fault_ != nullptr) {
      if (fault_->delay_us_per_chunk > 0)
        std::this_thread::sleep_for(
            std::chrono::microseconds(fault_->delay_us_per_chunk));
      chunk = std::min(chunk, fault_->max_chunk);
      if (fault_->send_byte_budget == 0) {
        // Budget exhausted: byte-exact mid-frame disconnect.
        ::shutdown(fd_, SHUT_RDWR);
        close();
        throw std::runtime_error("dist: send budget exhausted (fault plan)");
      }
      chunk = std::min(chunk, fault_->send_byte_budget);
    }
    const ssize_t w = ::send(fd_, p, chunk, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      throw_errno("send");
    }
    if (fault_ != nullptr)
      fault_->send_byte_budget -= static_cast<std::size_t>(w);
    p += w;
    n -= static_cast<std::size_t>(w);
  }
}

bool Socket::recv_all(void* data, std::size_t n) {
  auto* p = static_cast<std::uint8_t*>(data);
  std::size_t got = 0;
  const bool deadline_armed = deadline_ms_ > 0;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(deadline_ms_);
  while (got < n) {
    std::size_t chunk = n - got;
    if (fault_ != nullptr) {
      if (fault_->delay_us_per_chunk > 0)
        std::this_thread::sleep_for(
            std::chrono::microseconds(fault_->delay_us_per_chunk));
      chunk = std::min(chunk, fault_->max_chunk);
    }
    const ssize_t r = ::recv(fd_, p + got, chunk, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        c_deadline_trips().add();
        throw std::runtime_error(
            "dist: read deadline exceeded waiting for peer (" +
            std::to_string(got) + "/" + std::to_string(n) + " bytes)");
      }
      throw_errno("recv");
    }
    if (r == 0) {
      if (got == 0) return false;  // clean close at a message boundary
      throw std::runtime_error("dist: peer closed mid-frame (" +
                               std::to_string(got) + "/" + std::to_string(n) +
                               " bytes)");
    }
    got += static_cast<std::size_t>(r);
    // Absolute per-call bound: SO_RCVTIMEO restarts on every byte, so a
    // slow-loris peer dripping one byte per period would never trip it.
    if (deadline_armed && got < n &&
        std::chrono::steady_clock::now() >= deadline) {
      c_deadline_trips().add();
      throw std::runtime_error(
          "dist: read deadline exceeded waiting for peer (" +
          std::to_string(got) + "/" + std::to_string(n) + " bytes)");
    }
  }
  return true;
}

// -------------------------------------------------------------- Listener

Listener::Listener(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  sock_ = Socket(fd);
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr = make_addr(host, port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0)
    throw_errno("bind " + host + ":" + std::to_string(port));
  if (::listen(fd, 64) != 0) throw_errno("listen");
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0)
    throw_errno("getsockname");
  port_ = ntohs(addr.sin_port);
}

Socket Listener::accept() {
  for (;;) {
    const int fd = ::accept(sock_.fd(), nullptr, nullptr);
    if (fd >= 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      return Socket(fd);
    }
    if (errno != EINTR) throw_errno("accept");
  }
}

Socket connect_to(const std::string& host, std::uint16_t port, int retry_ms) {
  const sockaddr_in addr = make_addr(host, port);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(retry_ms);
  for (;;) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) throw_errno("socket");
    Socket s(fd);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) == 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      return s;
    }
    if (std::chrono::steady_clock::now() >= deadline)
      throw_errno("connect " + host + ":" + std::to_string(port));
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
}

// ---------------------------------------------------------------- frames

std::vector<std::uint8_t> encode_frame(MsgType type,
                                       const std::vector<std::uint8_t>& payload,
                                       const FrameAuth& auth,
                                       std::uint64_t session_id,
                                       std::uint64_t request_id) {
  if (payload.size() > kMaxFramePayload)
    throw std::runtime_error("dist: frame payload too large (" +
                             std::to_string(payload.size()) + " bytes)");
  ByteWriter w;
  w.u32(kWireMagic);
  w.u16(kWireVersion);
  w.u16(static_cast<std::uint16_t>(type));
  w.u32(auth.enabled ? kFrameFlagAuthenticated : 0u);
  w.u64(session_id);
  w.u64(request_id);
  w.u64(payload.size());
  std::vector<std::uint8_t> buf = w.take();
  buf.insert(buf.end(), payload.begin(), payload.end());
  if (auth.enabled) {
    // MAC over header + payload: length, type, flags and the session /
    // request ids are all covered, so truncating, retyping, re-scoping or
    // de-authenticating a frame breaks the MAC.
    const Digest tag =
        auth.mac(std::span<const std::uint8_t>(buf.data(), buf.size()));
    buf.insert(buf.end(), tag.begin(), tag.end());
  }
  return buf;
}

void send_frame(Socket& s, MsgType type,
                const std::vector<std::uint8_t>& payload, const FrameAuth& auth,
                std::uint64_t session_id, std::uint64_t request_id) {
  const std::vector<std::uint8_t> buf =
      encode_frame(type, payload, auth, session_id, request_id);
  s.send_all(buf.data(), buf.size());
  c_tx_frames().add();
  c_tx_bytes().add(buf.size());
}

std::optional<Frame> recv_frame(Socket& s, const FrameAuth& auth) {
  std::uint8_t header[kHeaderSize];
  // Two-stage header read: validate magic + version on the 8-byte prefix
  // every version shares before asking for the rest, so a peer speaking a
  // shorter (v3) header gets the version error below instead of leaving
  // this side blocked on bytes that will never come.
  if (!s.recv_all(header, kHeaderPrefixSize)) return std::nullopt;
  {
    ByteReader pre(
        std::span<const std::uint8_t>(header, kHeaderPrefixSize));
    const std::uint32_t magic = pre.u32();
    if (magic != kWireMagic)
      throw std::runtime_error("dist: bad frame magic (not a statpipe peer)");
    const std::uint16_t version = pre.u16();
    if (version != kWireVersion)
      throw std::runtime_error("dist: peer speaks wire version " +
                               std::to_string(version) + ", this build " +
                               std::to_string(kWireVersion));
  }
  if (!s.recv_all(header + kHeaderPrefixSize, kHeaderSize - kHeaderPrefixSize))
    throw std::runtime_error("dist: peer closed mid-frame (" +
                             std::to_string(kHeaderPrefixSize) + "/" +
                             std::to_string(kHeaderSize) + " bytes)");
  ByteReader r(std::span<const std::uint8_t>(header, sizeof header));
  r.u32();  // magic, validated above
  r.u16();  // version, validated above
  Frame f;
  f.type = static_cast<MsgType>(r.u16());
  const std::uint32_t flags = r.u32();
  if ((flags & ~kFrameFlagsKnown) != 0)
    throw std::runtime_error("dist: unknown frame flag bits 0x" +
                             [&] {
                               char hex[16];
                               std::snprintf(hex, sizeof hex, "%08x",
                                             flags & ~kFrameFlagsKnown);
                               return std::string(hex);
                             }());
  const bool authenticated = (flags & kFrameFlagAuthenticated) != 0;
  // Auth policy is symmetric and strict: a configured key demands a MAC on
  // every frame, and a frame claiming a MAC under no key is equally
  // rejected — a peer on the wrong side of the key config never half-works.
  if (auth.enabled && !authenticated) {
    c_auth_rejects().add();
    throw std::runtime_error(
        "dist: authentication required but peer sent an unauthenticated "
        "frame");
  }
  if (!auth.enabled && authenticated) {
    c_auth_rejects().add();
    throw std::runtime_error(
        "dist: peer sent an authenticated frame but no wire key is "
        "configured (set STATPIPE_WIRE_KEY / --key)");
  }
  f.session_id = r.u64();
  f.request_id = r.u64();
  const std::uint64_t size = r.u64();
  if (size > kMaxFramePayload)
    throw std::runtime_error("dist: oversize frame payload (" +
                             std::to_string(size) + " bytes)");
  f.payload.resize(size);
  if (size > 0 && !s.recv_all(f.payload.data(), size))
    throw std::runtime_error("dist: peer closed before frame payload");
  if (authenticated) {
    Digest claimed{};
    if (!s.recv_all(claimed.data(), claimed.size()))
      throw std::runtime_error("dist: peer closed before frame MAC");
    std::vector<std::uint8_t> covered;
    covered.reserve(kHeaderSize + f.payload.size());
    covered.insert(covered.end(), header, header + kHeaderSize);
    covered.insert(covered.end(), f.payload.begin(), f.payload.end());
    const Digest expected = auth.mac(
        std::span<const std::uint8_t>(covered.data(), covered.size()));
    if (!digest_equal_consttime(claimed, expected)) {
      c_auth_rejects().add();
      throw std::runtime_error(
          "dist: frame authentication failed (bad HMAC — tampered frame or "
          "wrong wire key)");
    }
  }
  c_rx_frames().add();
  c_rx_bytes().add(kHeaderSize + f.payload.size() +
                   (authenticated ? kDigestSize : 0));
  return f;
}

}  // namespace statpipe::dist
