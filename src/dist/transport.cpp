#include "dist/transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>

#include "dist/serialize.h"

namespace statpipe::dist {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error("dist: " + what + ": " + std::strerror(errno));
}

sockaddr_in make_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
    throw std::runtime_error("dist: bad IPv4 address '" + host + "'");
  return addr;
}

}  // namespace

// ---------------------------------------------------------------- Socket

Socket::~Socket() { close(); }

Socket& Socket::operator=(Socket&& o) noexcept {
  if (this != &o) {
    close();
    fd_ = o.fd_;
    o.fd_ = -1;
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::set_recv_timeout_ms(int ms) {
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = (ms % 1000) * 1000;
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv) != 0)
    throw_errno("setsockopt(SO_RCVTIMEO)");
}

void Socket::send_all(const void* data, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  while (n > 0) {
    const ssize_t w = ::send(fd_, p, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      throw_errno("send");
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
}

bool Socket::recv_all(void* data, std::size_t n) {
  auto* p = static_cast<std::uint8_t*>(data);
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd_, p + got, n - got, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      throw_errno("recv");
    }
    if (r == 0) {
      if (got == 0) return false;  // clean close at a message boundary
      throw std::runtime_error("dist: peer closed mid-frame (" +
                               std::to_string(got) + "/" + std::to_string(n) +
                               " bytes)");
    }
    got += static_cast<std::size_t>(r);
  }
  return true;
}

// -------------------------------------------------------------- Listener

Listener::Listener(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  sock_ = Socket(fd);
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr = make_addr(host, port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0)
    throw_errno("bind " + host + ":" + std::to_string(port));
  if (::listen(fd, 64) != 0) throw_errno("listen");
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0)
    throw_errno("getsockname");
  port_ = ntohs(addr.sin_port);
}

Socket Listener::accept() {
  for (;;) {
    const int fd = ::accept(sock_.fd(), nullptr, nullptr);
    if (fd >= 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      return Socket(fd);
    }
    if (errno != EINTR) throw_errno("accept");
  }
}

Socket connect_to(const std::string& host, std::uint16_t port, int retry_ms) {
  const sockaddr_in addr = make_addr(host, port);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(retry_ms);
  for (;;) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) throw_errno("socket");
    Socket s(fd);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) == 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      return s;
    }
    if (std::chrono::steady_clock::now() >= deadline)
      throw_errno("connect " + host + ":" + std::to_string(port));
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
}

// ---------------------------------------------------------------- frames

void send_frame(Socket& s, MsgType type,
                const std::vector<std::uint8_t>& payload) {
  if (payload.size() > kMaxFramePayload)
    throw std::runtime_error("dist: frame payload too large (" +
                             std::to_string(payload.size()) + " bytes)");
  ByteWriter w;
  w.u32(kWireMagic);
  w.u16(kWireVersion);
  w.u16(static_cast<std::uint16_t>(type));
  w.u64(payload.size());
  std::vector<std::uint8_t> buf = w.take();
  buf.insert(buf.end(), payload.begin(), payload.end());
  s.send_all(buf.data(), buf.size());
}

std::optional<Frame> recv_frame(Socket& s) {
  std::uint8_t header[16];
  if (!s.recv_all(header, sizeof header)) return std::nullopt;
  ByteReader r(std::span<const std::uint8_t>(header, sizeof header));
  const std::uint32_t magic = r.u32();
  if (magic != kWireMagic)
    throw std::runtime_error("dist: bad frame magic (not a statpipe peer)");
  const std::uint16_t version = r.u16();
  if (version != kWireVersion)
    throw std::runtime_error("dist: peer speaks wire version " +
                             std::to_string(version) + ", this build " +
                             std::to_string(kWireVersion));
  Frame f;
  f.type = static_cast<MsgType>(r.u16());
  const std::uint64_t size = r.u64();
  if (size > kMaxFramePayload)
    throw std::runtime_error("dist: oversize frame payload (" +
                             std::to_string(size) + " bytes)");
  f.payload.resize(size);
  if (size > 0 && !s.recv_all(f.payload.data(), size))
    throw std::runtime_error("dist: peer closed before frame payload");
  return f;
}

}  // namespace statpipe::dist
