#include "dist/worker.h"

#include <map>
#include <stdexcept>
#include <utility>
#include <vector>

#include "dist/hmac.h"
#include "dist/transport.h"
#include "obs/log.h"
#include "obs/telemetry.h"
#include "sim/thread_pool.h"

namespace statpipe::dist {

namespace {

// Structured logger (obs/log.h): `verbose` toggles the console sink only;
// with telemetry enabled every line also becomes a trace instant event.
void log_line(const WorkerOptions& opt, const std::string& msg) {
  obs::log_info("worker", msg, opt.verbose);
}

void send_error(Socket& s, const std::string& msg, const FrameAuth& auth,
                std::uint64_t session, std::uint64_t rid) {
  ByteWriter w;
  w.str(msg);
  send_frame(s, MsgType::kError, w.bytes(), auth, session, rid);
}

}  // namespace

WorkloadFactory default_workload_factory() {
  return [](const RunDescriptor& desc) { return make_unit_runner(desc); };
}

std::size_t run_worker(const WorkerOptions& opt, const WorkloadFactory& make,
                       bool* shutdown_received) {
  if (shutdown_received != nullptr) *shutdown_received = false;
  const FrameAuth auth = FrameAuth::from_passphrase(opt.auth_key);
  Socket sock = connect_to(opt.host, opt.port, opt.connect_retry_ms);
  {
    ByteWriter hello;
    hello.u16(kWireVersion);
    hello.u64(sim::ThreadPool::shared().thread_count());
    send_frame(sock, MsgType::kHello, hello.bytes(), auth);
  }
  // The welcome read is bounded: a worker admitted normally is granted its
  // session within milliseconds, so a long silence means the service is
  // gone — better to fail loudly than sit forever.
  sock.set_recv_timeout_ms(60000);
  std::optional<Frame> welcome = recv_frame(sock, auth);
  sock.set_recv_timeout_ms(0);
  if (welcome && welcome->type == MsgType::kShutdown) {
    // Run already complete (we were a backlogged straggler the service is
    // politely dismissing): clean exit.
    log_line(opt, "run already complete; exiting with no work");
    if (shutdown_received != nullptr) *shutdown_received = true;
    return 0;
  }
  if (!welcome || welcome->type != MsgType::kWelcome)
    throw std::runtime_error("dist: service sent no welcome");
  std::uint64_t session = 0;
  {
    ByteReader r(welcome->payload);
    session = r.u64();
    r.expect_done();
  }
  log_line(opt, "admitted as session " + std::to_string(session));

  // Resident state: one runner per request this worker has been set up
  // for.  A worker serves any number of descriptors over one connection —
  // runners live until the service releases them (kRelease) or the
  // session ends.
  std::map<std::uint64_t, UnitRangeRunner> runners;
  std::size_t completed = 0;
  for (;;) {
    std::optional<Frame> f = recv_frame(sock, auth);
    if (!f) {
      log_line(opt, "service closed; exiting");
      return completed;
    }
    if (f->type == MsgType::kShutdown) {
      log_line(opt, "shutdown after " + std::to_string(completed) +
                        " range(s)");
      if (shutdown_received != nullptr) *shutdown_received = true;
      return completed;
    }
    // Everything past the handshake is scoped to our session; a frame
    // bound to another one means a confused (or hostile) peer.
    if (f->session_id != session)
      throw std::runtime_error("dist: frame for session " +
                               std::to_string(f->session_id) +
                               ", this worker is session " +
                               std::to_string(session));
    const std::uint64_t rid = f->request_id;
    if (f->type == MsgType::kSetup) {
      RunDescriptor desc;
      {
        ByteReader r(f->payload);
        desc = read_run_descriptor(r);
        r.expect_done();
      }
      log_line(opt, "setup request " + std::to_string(rid) + ": " +
                        task_kind_name(desc.task_kind) + " workload '" +
                        desc.workload + "', " +
                        (desc.task_kind == TaskKind::kSstaGrid
                             ? std::to_string(desc.size_grid.size()) + " lanes"
                             : std::to_string(desc.n_samples) + " samples"));
      try {
        runners[rid] = make(desc);
      } catch (const std::exception& e) {
        // A workload this worker cannot rebuild and verify: report and end
        // the session — a worker that cannot prove it holds the exact
        // workload must not contribute results, to this request or any
        // later one routed here.
        log_line(opt, std::string("workload rejected: ") + e.what());
        send_error(sock, e.what(), auth, session, rid);
        return completed;
      }
      continue;
    }
    if (f->type == MsgType::kRelease) {
      runners.erase(rid);
      log_line(opt, "released request " + std::to_string(rid) + " (" +
                        std::to_string(runners.size()) + " resident)");
      continue;
    }
    if (f->type != MsgType::kAssign)
      throw std::runtime_error("dist: unexpected frame type " +
                               std::to_string(static_cast<int>(f->type)));
    auto rit = runners.find(rid);
    if (rit == runners.end())
      throw std::runtime_error("dist: assignment for request " +
                               std::to_string(rid) + " with no setup");
    ByteReader r(f->payload);
    const std::uint64_t begin = r.u64();
    const std::uint64_t end = r.u64();
    r.expect_done();
    log_line(opt, "running units [" + std::to_string(begin) + ", " +
                      std::to_string(end) + ") of request " +
                      std::to_string(rid));
    static const obs::SpanId kRangeSpan("dist.worker.range");
    obs::ScopedSpan range_span(kRangeSpan, static_cast<std::int64_t>(begin));
    std::uint64_t emitted = 0;
    try {
      // Stream each unit the moment it completes (ascending — the runner's
      // contract): the service stages the frames and commits the range on
      // kRangeDone below, so memory on both ends is bounded by the
      // runner's chunk, not the range.
      rit->second(
          begin, end,
          [&](std::size_t unit, const std::vector<std::uint8_t>& payload) {
            ByteWriter out;
            out.u64(unit);
            out.append(payload);
            send_frame(sock, MsgType::kResult, out.bytes(), auth, session,
                       rid);
            emitted += 1;
          });
    } catch (const std::exception& e) {
      // An engine failure on this range: report and bail out — the service
      // discards whatever was streamed and re-queues the range for a
      // healthy worker.
      log_line(opt, std::string("range failed: ") + e.what());
      send_error(sock, e.what(), auth, session, rid);
      return completed;
    }
    ByteWriter done;
    done.u64(begin);
    done.u64(end);
    done.u64(emitted);
    send_frame(sock, MsgType::kRangeDone, done.bytes(), auth, session, rid);
    completed += 1;
    static obs::Counter c_ranges("dist.worker.ranges");
    c_ranges.add();
    static obs::Counter c_units("dist.worker.units");
    c_units.add(emitted);
  }
}

}  // namespace statpipe::dist
