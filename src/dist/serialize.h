// Versioned, endian-safe binary serialization for distributed runs.
//
// Everything a unit-range result or a run descriptor contains is written
// as explicit little-endian bytes (u8/u16/u32/u64 integers, doubles as
// their IEEE-754 bit patterns), so a payload produced on any host decodes
// identically on any other — and, critically for the repository-wide
// determinism contract, a stats::RunningStats, mc::McResult or
// sta::StageCharacterization that crosses a process boundary is
// reconstructed bit for bit: serialization must never be the reason a
// distributed run diverges from a local one.
//
// Framing carries a magic number and a format version (kWireVersion);
// readers reject unknown magic/versions up front with a clear error
// instead of misparsing, and the RunDescriptor leads with its TaskKind
// discriminator so an unknown task kind is reported as exactly that.
// Round-trips are byte-stable: serialize ∘ deserialize ∘ serialize is the
// identity on bytes (fuzzed in tests/test_dist.cpp).  The byte-level spec
// of every record lives in docs/WIRE_FORMAT.md; keep the two in sync.
//
// Layer contract (src/dist, see docs/ARCHITECTURE.md): the distributed
// execution layer sits on top of mc/sta/sim/stats and may depend on all of
// them; nothing below src/dist may know it exists.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "dist/protocol.h"
#include "mc/pipeline_mc.h"
#include "sta/characterize.h"
#include "stats/descriptive.h"
#include "stats/histogram.h"

namespace statpipe::dist {

/// Wire format magic ("SPD1" little-endian) and version.  Bump the version
/// on any layout change; readers reject mismatches.  v1 (PR 4) carried the
/// Monte-Carlo-only descriptor; v2 added the task-kind discriminator and
/// the SSTA grid payload; v3 (PR 7) added the frame-header flags field,
/// the optional HMAC-SHA256 frame trailer, and streaming per-unit
/// kResult frames with the kRangeDone commit marker; v4 (service wire)
/// added the session_id/request_id header fields plus the client/service
/// message types (kClientHello..kRelease) so one resident fleet serves
/// many descriptors from many concurrent sessions.
inline constexpr std::uint32_t kWireMagic = 0x31445053;
inline constexpr std::uint16_t kWireVersion = 4;

/// Append-only little-endian byte sink.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  /// IEEE-754 bit pattern, little-endian — exact, not formatted.
  void f64(double v);
  /// u64 length followed by raw bytes.
  void str(const std::string& s);
  void f64_vec(const std::vector<double>& v);
  /// Appends pre-serialized bytes verbatim (no length prefix) — how a
  /// worker splices already-encoded unit payloads into a kResult frame.
  void append(const std::vector<std::uint8_t>& b);

  const std::vector<std::uint8_t>& bytes() const noexcept { return buf_; }
  std::vector<std::uint8_t> take() noexcept { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked little-endian reader over a borrowed buffer.  Every read
/// past the end throws std::runtime_error("dist: truncated payload ...").
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  double f64();
  std::string str();
  std::vector<double> f64_vec();
  /// Every remaining byte, consumed to the end — for trailing unprefixed
  /// blob fields (e.g. the result blob inside a kRequestDone payload).
  std::vector<std::uint8_t> rest();

  std::size_t remaining() const noexcept { return data_.size() - pos_; }
  bool done() const noexcept { return pos_ == data_.size(); }
  /// Throws std::runtime_error when trailing bytes remain — a framing bug.
  void expect_done() const;

 private:
  void need(std::size_t n) const;

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

// --------------------------------------------------------------- payloads
// Field-level writers/readers compose into message payloads; each is the
// exact inverse of its counterpart.

void write_running_stats(ByteWriter& w, const stats::RunningStats& s);
stats::RunningStats read_running_stats(ByteReader& r);

// Histogram serialization has no wire message yet: it is the forward
// format for shipping delay DISTRIBUTIONS (not just samples) once ranges
// grow past what tp_samples-by-value can carry — versioned with
// kWireVersion from day one so adding that message is not a format break.
void write_histogram(ByteWriter& w, const stats::Histogram& h);
stats::Histogram read_histogram(ByteReader& r);

void write_mc_result(ByteWriter& w, const mc::McResult& r);
mc::McResult read_mc_result(ByteReader& r);

/// Six f64 fields in declaration order (48 bytes) — the unit payload of a
/// kSstaGrid lane.  Exact bit patterns, so a lane that crossed the wire is
/// indistinguishable from one computed locally.
void write_stage_characterization(ByteWriter& w,
                                  const sta::StageCharacterization& c);
sta::StageCharacterization read_stage_characterization(ByteReader& r);

/// Everything a worker needs to reconstruct a run bit for bit: the task
/// kind, the workload identity (name + structural hash, verified on the
/// worker), the RNG keys, the unit plan inputs, the sampling/timing
/// options and — for kSstaGrid — the K-lane size grid itself.
/// For Monte-Carlo, shard boundaries and stream ids depend only on
/// (root_seed, n_samples, samples_per_shard) — the process count is as
/// invisible as the thread count.  For SSTA grids the lanes carry no
/// random state at all, so any lane partitioning reproduces the local
/// batch bit for bit (docs/DETERMINISM.md).
struct RunDescriptor {
  TaskKind task_kind = TaskKind::kMonteCarlo;
  std::string workload;            ///< comma-separated ISCAS85 stage names
                                   ///< (kSstaGrid: exactly one name)
  std::uint64_t netlist_hash = 0;  ///< combined Netlist::structural_hash
  std::uint64_t seed = 0;          ///< user-facing run seed (display)
  std::uint64_t root_seed = 0;     ///< engine root key (derive_root_seed)
  std::uint64_t n_samples = 0;     ///< kMonteCarlo only; ignored for grids
  std::uint64_t samples_per_shard = 1024;
  std::uint64_t block_width = 8;
  /// kSstaGrid payload: one full per-gate size vector per sweep lane.
  /// Every lane must carry a complete vector (empty lanes are rejected —
  /// they would silently fall back to the rebuilt netlist's base sizes).
  std::vector<std::vector<double>> size_grid;
  // process::VariationSpec
  double sigma_vth_inter = 0.020;
  double sigma_vth_systematic = 0.0;
  double correlation_length = 0.5;
  std::uint8_t enable_rdf = 1;
  double sigma_l_inter_rel = 0.0;
  double sigma_l_systematic_rel = 0.0;
  // sta::StaOptions
  double output_load = 2.0;
  // device::LatchTiming
  double latch_tcq_ps = 22.0;
  double latch_tsetup_ps = 14.0;
  double latch_random_sigma_rel = 0.02;
  // process::Technology — the delay model's parameters travel too, so a
  // workload built against a non-default technology is replayed exactly
  // instead of silently falling back to defaults on the worker.  Defaults
  // mirror process::Technology's.
  double tech_vdd = 1.0;
  double tech_vth0 = 0.20;
  double tech_leff = 70e-9;
  double tech_wmin = 140e-9;
  double tech_alpha = 1.3;
  double tech_tau_ps = 4.0;
  double tech_avt = 30e-3 * 9.899494936611665e-8;
};

void write_run_descriptor(ByteWriter& w, const RunDescriptor& d);
RunDescriptor read_run_descriptor(ByteReader& r);

/// The run key GateLevelMonteCarlo::run derives from a user seed (one
/// fork() draw): run_shard_range(n, derive_root_seed(seed), ...) on any
/// process reproduces run(n, Rng(seed))'s shard streams exactly.
std::uint64_t derive_root_seed(std::uint64_t seed);

// ------------------------------------------------------------ file blobs
// Standalone blob form (magic + version header) for dumping results to
// disk or diffing runs byte for byte.

std::vector<std::uint8_t> serialize_mc_result(const mc::McResult& r);
mc::McResult deserialize_mc_result(std::span<const std::uint8_t> bytes);

/// Standalone blob form of an SSTA-grid result (all lanes, ascending lane
/// order) under the same magic + version header.
std::vector<std::uint8_t> serialize_characterizations(
    const std::vector<sta::StageCharacterization>& lanes);
std::vector<sta::StageCharacterization> deserialize_characterizations(
    std::span<const std::uint8_t> bytes);

/// True when the two results are bit-for-bit identical (samples, per-stage
/// accumulator states and label) — the acceptance predicate for
/// distributed-vs-local equality, implemented as byte equality of the
/// serialized forms.
bool bitwise_equal(const mc::McResult& a, const mc::McResult& b);

/// Lane-grid twin of the McResult predicate: bit-for-bit equality of two
/// characterization vectors (length and every f64 bit pattern).
bool bitwise_equal(const std::vector<sta::StageCharacterization>& a,
                   const std::vector<sta::StageCharacterization>& b);

}  // namespace statpipe::dist
