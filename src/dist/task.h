// Generic distributed task layer: maps a RunDescriptor's TaskKind to unit
// planning, unit-range execution and the local reference run.
//
// A task is a sequence of n_units independent work units (Monte-Carlo
// shards, SSTA grid lanes).  Workers execute contiguous unit ranges and
// STREAM one serialized payload per unit, ascending, as units complete
// (wire v3); the coordinator stages and then folds committed units in
// ascending index, which reproduces the single-process result bit for
// bit for every kind (docs/DETERMINISM.md).  This header is the one place
// that knows how each TaskKind plans, runs and folds; the coordinator,
// worker loop and transport stay kind-agnostic.
//
// Layer contract (src/dist, see docs/ARCHITECTURE.md): the distributed
// execution layer sits on top of mc/sta/sim/stats and may depend on all of
// them; nothing below src/dist may know it exists.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "dist/serialize.h"
#include "mc/pipeline_mc.h"
#include "sta/characterize.h"

namespace statpipe::dist {

/// What a completed task run holds.  Exactly one member is populated,
/// selected by `kind`: the folded Monte-Carlo result, or the K sweep-lane
/// characterizations in ascending lane order.
struct TaskResult {
  TaskKind kind = TaskKind::kMonteCarlo;
  mc::McResult mc;                                ///< kMonteCarlo
  std::vector<sta::StageCharacterization> lanes;  ///< kSstaGrid
};

/// Number of work units the descriptor's task plans: MC shard count
/// (sim::shard_count) or grid lane count.  Also validates the kind's plan
/// inputs — zero samples (MC), an empty grid, a multi-stage grid workload
/// or a lane whose size vector does not cover the netlist all throw
/// std::invalid_argument with the offending field named.
std::size_t task_unit_count(const RunDescriptor& desc);

/// Serialized per-unit payload size estimate for frame-budget checks: a
/// shard's McResult scales with samples_per_shard; a grid lane is a fixed
/// 48-byte StageCharacterization.
std::size_t task_unit_wire_bytes(const RunDescriptor& desc);

/// Receives one serialized unit payload as it completes.  The runner calls
/// the sink once per unit, STRICTLY ASCENDING in unit index over the
/// assigned range — the contract that lets the worker stream each unit as
/// its own kResult frame and the coordinator fold a contiguous prefix with
/// bounded memory (docs/DETERMINISM.md).
using UnitSink = std::function<void(std::size_t unit_index,
                                    const std::vector<std::uint8_t>& payload)>;

/// Executes units [unit_begin, unit_end) of the descriptor's task, emitting
/// each unit's serialized payload through `emit` in ascending unit order.
/// The factory front half (workload construction, hash verification)
/// happens in make_unit_runner; the returned runner only executes ranges.
/// Runners may batch execution internally (e.g. a few units per parallel
/// chunk) — batching is pure scheduling and never changes the bytes,
/// because units are independent and emitted in index order regardless.
using UnitRangeRunner = std::function<void(
    std::size_t unit_begin, std::size_t unit_end, const UnitSink& emit)>;

/// Builds the descriptor's workload (rebuilding netlists from the registry
/// and verifying the structural hash — mismatch throws, the worker reports
/// kError and contributes nothing) and returns the kind's range runner.
UnitRangeRunner make_unit_runner(const RunDescriptor& desc);

/// Runs the descriptor's task to completion in this process — the
/// single-process reference every distributed run is bitwise-compared
/// against: GateLevelMonteCarlo::run for kMonteCarlo,
/// SstaBatch::characterize over the whole grid for kSstaGrid.
TaskResult run_local_task(const RunDescriptor& desc);

/// Bitwise distributed-vs-local acceptance predicate across kinds:
/// byte equality of the serialized forms of the populated member.
bool bitwise_equal(const TaskResult& a, const TaskResult& b);

}  // namespace statpipe::dist
