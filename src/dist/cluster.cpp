#include "dist/cluster.h"

#include <signal.h>
#include <spawn.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <utility>
#include <vector>

#include "dist/workload.h"
#include "netlist/generators.h"
#include "obs/log.h"

extern char** environ;

namespace statpipe::dist {

pid_t spawn_worker_process(const std::string& worker_bin, std::uint16_t port,
                           bool quiet, const std::string& auth_key,
                           bool serve) {
  const std::string port_s = std::to_string(port);
  std::vector<char*> args;
  args.push_back(const_cast<char*>(worker_bin.c_str()));
  args.push_back(const_cast<char*>("--port"));
  args.push_back(const_cast<char*>(port_s.c_str()));
  if (quiet) args.push_back(const_cast<char*>("--quiet"));
  if (serve) args.push_back(const_cast<char*>("--serve"));
  if (!auth_key.empty()) {
    args.push_back(const_cast<char*>("--key"));
    args.push_back(const_cast<char*>(auth_key.c_str()));
  }
  args.push_back(nullptr);
  pid_t pid = -1;
  const int rc = ::posix_spawn(&pid, worker_bin.c_str(), nullptr, nullptr,
                               args.data(), environ);
  if (rc != 0)
    throw std::runtime_error("dist: cannot spawn " + worker_bin + ": " +
                             std::strerror(rc));
  return pid;
}

TaskResult run_cluster(const RunDescriptor& desc, const ClusterOptions& opt,
                       RunMetrics* metrics) {
  if (opt.spawn_workers > 0 && opt.worker_bin.empty())
    throw std::invalid_argument(
        "dist: run_cluster with spawn_workers > 0 needs a worker_bin path");
  Coordinator coord(desc, opt.coordinator);
  if (opt.on_listening) opt.on_listening(coord.port());
  std::vector<pid_t> kids;
  kids.reserve(opt.spawn_workers);
  TaskResult result;
  try {
    for (std::size_t i = 0; i < opt.spawn_workers; ++i) {
      kids.push_back(spawn_worker_process(opt.worker_bin, coord.port(),
                                          !opt.coordinator.verbose,
                                          opt.coordinator.auth_key));
      obs::log_info("cluster",
                    "spawned worker pid " + std::to_string(kids.back()),
                    opt.coordinator.verbose);
    }
    result = coord.run();
  } catch (...) {
    // A failed run (attempts exhausted, idle timeout) or a mid-fleet
    // spawn failure must not leak the workers already forked: this is
    // library code invoked per grid submission inside long-lived
    // optimizer processes, not a CLI about to exit.  Kill and reap
    // before rethrowing.
    for (pid_t pid : kids) ::kill(pid, SIGKILL);
    for (pid_t pid : kids) {
      int status = 0;
      while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
      }
    }
    throw;
  }
  // Reap spawned workers while draining the listener: a worker slow
  // enough to connect only after the run ended receives kShutdown from
  // drain_backlog and exits cleanly instead of hanging in its setup read
  // (and us in waitpid).  An abnormal exit at this point cannot taint the
  // result — every unit was validated and reassembled before coord.run()
  // returned — so it is worth a loud warning, not a discarded run.
  for (pid_t pid : kids) {
    int status = 0;
    pid_t got;
    while ((got = ::waitpid(pid, &status, WNOHANG)) == 0) {
      coord.drain_backlog();
      ::usleep(20 * 1000);
    }
    if (got < 0 || !WIFEXITED(status) || WEXITSTATUS(status) != 0)
      obs::log_warn("cluster",
                    "spawned worker " + std::to_string(pid) +
                        " exited abnormally after the run completed "
                        "(result unaffected)");
    else
      obs::log_info("cluster", "reaped worker pid " + std::to_string(pid),
                    opt.coordinator.verbose);
  }
  if (metrics != nullptr) *metrics = coord.metrics();
  if (opt.on_metrics) opt.on_metrics(coord.metrics());
  return result;
}

namespace {

ServiceOptions handle_service_options(const ClusterOptions& opt) {
  ServiceOptions s;
  s.bind_host = opt.coordinator.bind_host;
  s.port = opt.coordinator.port;
  s.units_per_range = opt.coordinator.units_per_range;
  s.max_attempts = opt.coordinator.max_attempts;
  s.idle_timeout_ms = opt.coordinator.idle_timeout_ms;
  s.read_deadline_ms = opt.coordinator.read_deadline_ms;
  s.auth_key = opt.coordinator.auth_key;
  s.cache_max_bytes = opt.cache_max_bytes;
  s.verbose = opt.coordinator.verbose;
  return s;
}

}  // namespace

ClusterHandle::ClusterHandle(ClusterOptions opt)
    : opt_(std::move(opt)), svc_(handle_service_options(opt_)) {
  if (opt_.spawn_workers > 0 && opt_.worker_bin.empty())
    throw std::invalid_argument(
        "dist: ClusterHandle with spawn_workers > 0 needs a worker_bin path");
  if (opt_.on_listening) opt_.on_listening(svc_.port());
  try {
    for (std::size_t i = 0; i < opt_.spawn_workers; ++i) {
      kids_.push_back(spawn_worker_process(opt_.worker_bin, svc_.port(),
                                           !opt_.coordinator.verbose,
                                           opt_.coordinator.auth_key));
      obs::log_info("cluster",
                    "spawned resident worker pid " +
                        std::to_string(kids_.back()),
                    opt_.coordinator.verbose);
    }
  } catch (...) {
    for (pid_t pid : kids_) ::kill(pid, SIGKILL);
    for (pid_t pid : kids_) {
      int status = 0;
      while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
      }
    }
    throw;
  }
}

ClusterHandle::~ClusterHandle() {
  try {
    close();
  } catch (...) {
    // Destructor: reap what we can, never throw.
    for (pid_t pid : kids_) ::kill(pid, SIGKILL);
    for (pid_t pid : kids_) {
      int status = 0;
      while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
      }
    }
    kids_.clear();
  }
}

TaskResult ClusterHandle::submit(const RunDescriptor& desc,
                                 std::uint32_t priority, RunMetrics* metrics) {
  if (closed_)
    throw std::logic_error("dist: submit on a closed ClusterHandle");
  const std::uint64_t rid = svc_.submit_local(desc, priority);
  svc_.run([&] { return svc_.local_done(rid); });
  // Snapshot before take: taking (or rethrowing a failure) consumes the
  // request, and the caller gets its accounting either way.
  const RunMetrics m = svc_.local_metrics(rid);
  if (metrics != nullptr) *metrics = m;
  if (opt_.on_metrics) opt_.on_metrics(m);
  return svc_.take_local_result(rid);
}

void ClusterHandle::close() {
  if (closed_) return;
  closed_ = true;
  svc_.shutdown_workers();
  // Reap with a grace period: a worker mid-range finishes its current
  // units before it reads the kShutdown, so give it a few seconds before
  // escalating to SIGKILL.  drain_backlog keeps dismissing stragglers
  // that only connect now.
  for (pid_t pid : kids_) {
    int status = 0;
    pid_t got = 0;
    for (int waited_ms = 0; waited_ms < 5000; waited_ms += 20) {
      got = ::waitpid(pid, &status, WNOHANG);
      if (got != 0) break;
      svc_.drain_backlog();
      ::usleep(20 * 1000);
    }
    if (got == 0) {
      ::kill(pid, SIGKILL);
      while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
      }
      obs::log_warn("cluster", "resident worker " + std::to_string(pid) +
                                   " ignored shutdown; killed");
    } else if (got < 0 || !WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      obs::log_warn("cluster",
                    "resident worker " + std::to_string(pid) +
                        " exited abnormally (completed results unaffected)");
    } else {
      obs::log_info("cluster", "reaped worker pid " + std::to_string(pid),
                    opt_.coordinator.verbose);
    }
  }
  kids_.clear();
}

std::string workload_name_for(const netlist::Netlist& nl) {
  std::string name = nl.name();
  constexpr const char* kSuffix = "_like";
  constexpr std::size_t kSuffixLen = 5;
  if (name.size() > kSuffixLen &&
      name.compare(name.size() - kSuffixLen, kSuffixLen, kSuffix) == 0)
    name.resize(name.size() - kSuffixLen);
  netlist::Netlist rebuilt = netlist::iscas_like(name);  // throws on unknown
  if (rebuilt.size() != nl.size())
    throw std::invalid_argument(
        "dist: netlist '" + nl.name() + "' is not the registry's '" + name +
        "' (gate count " + std::to_string(nl.size()) + " vs rebuilt " +
        std::to_string(rebuilt.size()) + ")");
  // Transplant the caller's sizes so the comparison checks structure
  // modulo sizing — the grid carries explicit per-lane size vectors, so
  // sizes are the one thing allowed to differ.
  rebuilt.set_sizes(nl.sizes());
  if (rebuilt.structural_hash() != nl.structural_hash())
    throw std::invalid_argument(
        "dist: netlist '" + nl.name() +
        "' is not reconstructible from the workload registry ('" + name +
        "' differs structurally); cluster grid submission needs a "
        "generator-built netlist");
  return name;
}

namespace {

RunDescriptor grid_descriptor_for(const netlist::Netlist& nl,
                                  const device::AlphaPowerModel& model,
                                  const std::vector<std::vector<double>>& grid,
                                  const process::VariationSpec& spec,
                                  const sta::SstaOptions& sopt) {
  RunDescriptor desc;
  desc.task_kind = TaskKind::kSstaGrid;
  desc.workload = workload_name_for(nl);
  desc.size_grid = grid;
  set_descriptor_technology(desc, model.technology());
  set_descriptor_spec(desc, spec);
  desc.output_load = sopt.output_load;
  finalize_descriptor(desc);
  return desc;
}

}  // namespace

sta::GridCharacterizer grid_characterizer(ClusterOptions opt) {
  return [opt = std::move(opt)](
             const netlist::Netlist& nl, const device::AlphaPowerModel& model,
             const std::vector<std::vector<double>>& size_grid,
             const process::VariationSpec& spec, const sta::SstaOptions& sopt)
             -> std::vector<sta::StageCharacterization> {
    TaskResult r = run_cluster(
        grid_descriptor_for(nl, model, size_grid, spec, sopt), opt);
    return std::move(r.lanes);
  };
}

sta::GridCharacterizer grid_characterizer(
    std::shared_ptr<ClusterHandle> handle) {
  return [handle = std::move(handle)](
             const netlist::Netlist& nl, const device::AlphaPowerModel& model,
             const std::vector<std::vector<double>>& size_grid,
             const process::VariationSpec& spec, const sta::SstaOptions& sopt)
             -> std::vector<sta::StageCharacterization> {
    TaskResult r =
        handle->submit(grid_descriptor_for(nl, model, size_grid, spec, sopt));
    return std::move(r.lanes);
  };
}

sta::GridCharacterizer grid_characterizer(
    std::shared_ptr<ServiceClient> client) {
  return [client = std::move(client)](
             const netlist::Netlist& nl, const device::AlphaPowerModel& model,
             const std::vector<std::vector<double>>& size_grid,
             const process::VariationSpec& spec, const sta::SstaOptions& sopt)
             -> std::vector<sta::StageCharacterization> {
    const std::uint64_t id = client->submit(
        grid_descriptor_for(nl, model, size_grid, spec, sopt));
    TaskResult r = client->wait(id);
    return std::move(r.lanes);
  };
}

}  // namespace statpipe::dist
