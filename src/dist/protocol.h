// Generic task wire protocol for distributed runs: one coordinator farms
// contiguous UNIT ranges of a task to many workers over TCP.
//
// A task is identified by a TaskKind discriminator carried in the
// RunDescriptor (dist/serialize.h); the unit of work depends on the kind:
//
//   kMonteCarlo  unit = one sim shard; unit payload = one mc::McResult
//   kSstaGrid    unit = one sweep-config lane of an sta::SstaBatch grid;
//                unit payload = one sta::StageCharacterization
//
// Every message is a frame (wire v4):
//
//   { u32 magic, u16 version, u16 type, u32 flags,
//     u64 session_id, u64 request_id, u64 payload_size }
//   payload...  [ 32-byte HMAC-SHA256 trailer when kFrameFlagAuthenticated ]
//
// (all little-endian, payload layouts in dist/serialize.h and
// docs/WIRE_FORMAT.md).  session_id names the connection's service-granted
// session (0 before kWelcome), request_id names one descriptor submission
// within it (0 for frames not scoped to a request).  The service binds
// each connection to the session id its kWelcome granted and rejects
// frames carrying any other — which is what makes a captured
// authenticated frame worthless on another connection (replay defense;
// HMAC alone cannot distinguish connections under one shared key).
//
// Worker exchange (worker is RESIDENT: it serves any number of
// descriptors over one connection until kShutdown):
//
//   worker -> service       kHello      { u16 proto_version, u64 threads }
//   service -> worker       kWelcome    { u64 session_id }
//   service -> worker       kSetup      { RunDescriptor }      (per request,
//                                       before that request's first kAssign)
//   service -> worker       kAssign     { u64 unit_begin, u64 unit_end }
//   worker -> service       kResult     { u64 unit_index, unit payload }
//                                       (one frame PER UNIT, streamed
//                                       ascending as units complete)
//   worker -> service       kRangeDone  { u64 unit_begin, u64 unit_end,
//                                         u64 count }  (commit marker)
//   worker -> service       kError      { string message }
//   service -> worker       kRelease    { }  (request done; drop its runner)
//   service -> worker       kShutdown   { }
//
// Client exchange (a client session submits descriptors and collects
// results; many client sessions multiplex over one fleet):
//
//   client -> service       kClientHello { u16 proto_version }
//   service -> client       kWelcome     { u64 session_id }
//   client -> service       kSubmit      { u32 priority, RunDescriptor }
//                                        (request_id chosen by the client,
//                                        unique within its session)
//   service -> client       kRequestDone { u16 task_kind, u8 cache_hit,
//                                          u64 queue_wait_ns, result blob }
//   service -> client       kError       { string message }
//
// Streaming commit semantics: per-unit kResult frames are STAGED by the
// coordinator and only committed when the range's kRangeDone arrives with
// the right echo and count — a worker that dies, stalls or turns hostile
// mid-range forfeits everything it streamed, and the whole range is
// re-queued (bounded by CoordinatorOptions::max_attempts).  Committed
// units fold in ascending unit index with bounded memory — for
// Monte-Carlo the same left fold the local engine applies (a contiguous
// prefix is folded into one accumulator as it completes), for SSTA grids
// positional lane placement — so the merged run is bitwise-identical to
// the single-process result no matter how ranges were split, streamed,
// retried or reassigned (docs/DETERMINISM.md).
//
// Authentication: with a shared key configured (STATPIPE_WIRE_KEY / --key)
// every frame in both directions carries an HMAC-SHA256 trailer over
// header + payload (dist/hmac.h), verified constant-time before the
// payload is parsed.  Tampered, unauthenticated-under-key and
// authenticated-without-key frames are all rejected with a distinct
// authentication error, never parsed.
//
// Layer contract (src/dist, see docs/ARCHITECTURE.md): the distributed
// execution layer sits on top of mc/sta/sim/stats and may depend on all of
// them; nothing below src/dist may know it exists.
#pragma once

#include <cstdint>

namespace statpipe::dist {

enum class MsgType : std::uint16_t {
  kHello = 1,
  kSetup = 2,
  kAssign = 3,
  kResult = 4,       ///< v3: ONE unit per frame, streamed as units complete
  kError = 5,
  kShutdown = 6,
  kRangeDone = 7,    ///< v3: commits the streamed units of one range
  kClientHello = 8,  ///< v4: client session opener
  kWelcome = 9,      ///< v4: service grants the connection its session id
  kSubmit = 10,      ///< v4: client submits one descriptor as a request
  kRequestDone = 11, ///< v4: service delivers one request's result blob
  kRelease = 12,     ///< v4: service tells a worker to drop a request's
                     ///< runner (request complete or failed)
};

/// Frame-header flag bits (u32 `flags` field, v3+).  Unknown bits are
/// rejected — a future flag must bump the version, never ride silently.
inline constexpr std::uint32_t kFrameFlagAuthenticated = 1u << 0;
inline constexpr std::uint32_t kFrameFlagsKnown = kFrameFlagAuthenticated;

/// Wire discriminator for what a RunDescriptor describes and what each
/// result unit contains.  Serialized as u16; readers reject unknown values
/// with a task-kind error, never a generic deserialize failure.
enum class TaskKind : std::uint16_t {
  kMonteCarlo = 1,  ///< gate-level MC; unit = shard, payload = McResult
  kSstaGrid = 2,    ///< SSTA sweep grid; unit = lane, payload =
                    ///< StageCharacterization
};

/// Human-readable name for error messages and CLI output.
const char* task_kind_name(TaskKind kind) noexcept;

/// True when `raw` names a TaskKind this build understands.
bool is_known_task_kind(std::uint16_t raw) noexcept;

/// Sanity cap on a single frame payload (1 GiB): a length beyond this is a
/// corrupt or hostile peer, not a big result.
inline constexpr std::uint64_t kMaxFramePayload = 1ull << 30;

}  // namespace statpipe::dist
