// Shard-range wire protocol for distributed Monte-Carlo runs.
//
// One coordinator serves many workers over TCP.  Every message is a frame:
//
//   { u32 magic, u16 version, u16 type, u64 payload_size } payload...
//
// (all little-endian, payload layouts in dist/serialize.h).  The exchange:
//
//   worker -> coordinator   kHello     { u16 proto_version, u64 threads }
//   coordinator -> worker   kSetup     { RunDescriptor }
//   coordinator -> worker   kAssign    { u64 shard_begin, u64 shard_end }
//   worker -> coordinator   kResult    { u64 shard_begin, u64 shard_end,
//                                        u64 count,
//                                        count * (u64 shard_index,
//                                                 McResult) }
//   worker -> coordinator   kError     { string message }
//   coordinator -> worker   kShutdown  { }
//
// A worker that disconnects or reports kError forfeits its in-flight
// range; the coordinator re-queues the range for another worker (bounded
// by CoordinatorOptions::max_attempts).  Results are per SHARD, not per
// range: the coordinator folds every shard's McResult in ascending shard
// index — the same left fold the local engine applies — so the merged run
// is bitwise-identical to the single-process result no matter how ranges
// were split, retried or reassigned.
//
// Layer contract (src/dist, see docs/ARCHITECTURE.md): the distributed
// execution layer sits on top of mc/sim/stats and may depend on all of
// them; nothing below src/dist may know it exists.
#pragma once

#include <cstdint>

namespace statpipe::dist {

enum class MsgType : std::uint16_t {
  kHello = 1,
  kSetup = 2,
  kAssign = 3,
  kResult = 4,
  kError = 5,
  kShutdown = 6,
};

/// Sanity cap on a single frame payload (1 GiB): a length beyond this is a
/// corrupt or hostile peer, not a big result.
inline constexpr std::uint64_t kMaxFramePayload = 1ull << 30;

}  // namespace statpipe::dist
