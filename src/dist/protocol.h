// Generic task wire protocol for distributed runs: one coordinator farms
// contiguous UNIT ranges of a task to many workers over TCP.
//
// A task is identified by a TaskKind discriminator carried in the
// RunDescriptor (dist/serialize.h); the unit of work depends on the kind:
//
//   kMonteCarlo  unit = one sim shard; unit payload = one mc::McResult
//   kSstaGrid    unit = one sweep-config lane of an sta::SstaBatch grid;
//                unit payload = one sta::StageCharacterization
//
// Every message is a frame:
//
//   { u32 magic, u16 version, u16 type, u64 payload_size } payload...
//
// (all little-endian, payload layouts in dist/serialize.h and
// docs/WIRE_FORMAT.md).  The exchange:
//
//   worker -> coordinator   kHello     { u16 proto_version, u64 threads }
//   coordinator -> worker   kSetup     { RunDescriptor }
//   coordinator -> worker   kAssign    { u64 unit_begin, u64 unit_end }
//   worker -> coordinator   kResult    { u64 unit_begin, u64 unit_end,
//                                        u64 count,
//                                        count * (u64 unit_index,
//                                                 unit payload) }
//   worker -> coordinator   kError     { string message }
//   coordinator -> worker   kShutdown  { }
//
// A worker that disconnects or reports kError forfeits its in-flight
// range; the coordinator re-queues the range for another worker (bounded
// by CoordinatorOptions::max_attempts).  Results are per UNIT, not per
// range: the coordinator folds every unit's result in ascending unit
// index — for Monte-Carlo that is the same left fold the local engine
// applies, for SSTA grids it is positional lane placement — so the merged
// run is bitwise-identical to the single-process result no matter how
// ranges were split, retried or reassigned (docs/DETERMINISM.md).
//
// Layer contract (src/dist, see docs/ARCHITECTURE.md): the distributed
// execution layer sits on top of mc/sta/sim/stats and may depend on all of
// them; nothing below src/dist may know it exists.
#pragma once

#include <cstdint>

namespace statpipe::dist {

enum class MsgType : std::uint16_t {
  kHello = 1,
  kSetup = 2,
  kAssign = 3,
  kResult = 4,
  kError = 5,
  kShutdown = 6,
};

/// Wire discriminator for what a RunDescriptor describes and what each
/// result unit contains.  Serialized as u16; readers reject unknown values
/// with a task-kind error, never a generic deserialize failure.
enum class TaskKind : std::uint16_t {
  kMonteCarlo = 1,  ///< gate-level MC; unit = shard, payload = McResult
  kSstaGrid = 2,    ///< SSTA sweep grid; unit = lane, payload =
                    ///< StageCharacterization
};

/// Human-readable name for error messages and CLI output.
const char* task_kind_name(TaskKind kind) noexcept;

/// True when `raw` names a TaskKind this build understands.
bool is_known_task_kind(std::uint16_t raw) noexcept;

/// Sanity cap on a single frame payload (1 GiB): a length beyond this is a
/// corrupt or hostile peer, not a big result.
inline constexpr std::uint64_t kMaxFramePayload = 1ull << 30;

}  // namespace statpipe::dist
