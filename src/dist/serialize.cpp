#include "dist/serialize.h"

#include <bit>
#include <cstdio>
#include <stdexcept>

#include "stats/rng.h"

namespace statpipe::dist {

// -------------------------------------------------------------- TaskKind

const char* task_kind_name(TaskKind kind) noexcept {
  switch (kind) {
    case TaskKind::kMonteCarlo:
      return "monte-carlo";
    case TaskKind::kSstaGrid:
      return "ssta-grid";
  }
  return "unknown";
}

bool is_known_task_kind(std::uint16_t raw) noexcept {
  return raw == static_cast<std::uint16_t>(TaskKind::kMonteCarlo) ||
         raw == static_cast<std::uint16_t>(TaskKind::kSstaGrid);
}

// ------------------------------------------------------------ ByteWriter

void ByteWriter::u16(std::uint16_t v) {
  for (int i = 0; i < 2; ++i) buf_.push_back((v >> (8 * i)) & 0xff);
}

void ByteWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back((v >> (8 * i)) & 0xff);
}

void ByteWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back((v >> (8 * i)) & 0xff);
}

void ByteWriter::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void ByteWriter::str(const std::string& s) {
  u64(s.size());
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void ByteWriter::f64_vec(const std::vector<double>& v) {
  u64(v.size());
  for (double d : v) f64(d);
}

void ByteWriter::append(const std::vector<std::uint8_t>& b) {
  buf_.insert(buf_.end(), b.begin(), b.end());
}

// ------------------------------------------------------------ ByteReader

void ByteReader::need(std::size_t n) const {
  if (data_.size() - pos_ < n)
    throw std::runtime_error("dist: truncated payload (need " +
                             std::to_string(n) + " bytes, have " +
                             std::to_string(data_.size() - pos_) + ")");
}

std::uint8_t ByteReader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint16_t ByteReader::u16() {
  need(2);
  std::uint16_t v = 0;
  for (int i = 0; i < 2; ++i)
    v |= static_cast<std::uint16_t>(data_[pos_++]) << (8 * i);
  return v;
}

std::uint32_t ByteReader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
  return v;
}

std::uint64_t ByteReader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
  return v;
}

double ByteReader::f64() { return std::bit_cast<double>(u64()); }

std::string ByteReader::str() {
  const std::uint64_t n = u64();
  need(n);
  std::string s(reinterpret_cast<const char*>(data_.data()) + pos_, n);
  pos_ += n;
  return s;
}

std::vector<double> ByteReader::f64_vec() {
  const std::uint64_t n = u64();
  // Overflow-safe length sanity before reserving: a hostile/corrupt length
  // must throw, not trigger a giant allocation.
  if (n > remaining() / 8)
    throw std::runtime_error("dist: truncated payload (vector of " +
                             std::to_string(n) + " doubles, " +
                             std::to_string(remaining()) + " bytes left)");
  std::vector<double> v;
  v.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) v.push_back(f64());
  return v;
}

std::vector<std::uint8_t> ByteReader::rest() {
  std::vector<std::uint8_t> out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                data_.end());
  pos_ = data_.size();
  return out;
}

void ByteReader::expect_done() const {
  if (!done())
    throw std::runtime_error("dist: " + std::to_string(remaining()) +
                             " trailing byte(s) after payload");
}

// --------------------------------------------------------------- payloads

void write_running_stats(ByteWriter& w, const stats::RunningStats& s) {
  const stats::RunningStats::State st = s.state();
  w.u64(st.n);
  w.f64(st.mean);
  w.f64(st.m2);
  w.f64(st.min);
  w.f64(st.max);
}

stats::RunningStats read_running_stats(ByteReader& r) {
  stats::RunningStats::State st;
  st.n = r.u64();
  st.mean = r.f64();
  st.m2 = r.f64();
  st.min = r.f64();
  st.max = r.f64();
  return stats::RunningStats::from_state(st);
}

void write_histogram(ByteWriter& w, const stats::Histogram& h) {
  w.f64(h.lo());
  w.f64(h.hi());
  w.u64(h.bins());
  for (std::size_t i = 0; i < h.bins(); ++i) w.u64(h.count(i));
}

stats::Histogram read_histogram(ByteReader& r) {
  const double lo = r.f64();
  const double hi = r.f64();
  const std::uint64_t bins = r.u64();
  if (bins == 0) throw std::runtime_error("dist: histogram with zero bins");
  if (bins > r.remaining() / 8)
    throw std::runtime_error("dist: truncated payload (histogram of " +
                             std::to_string(bins) + " bins, " +
                             std::to_string(r.remaining()) + " bytes left)");
  std::vector<std::size_t> counts;
  counts.reserve(bins);
  for (std::uint64_t i = 0; i < bins; ++i) counts.push_back(r.u64());
  return stats::Histogram::from_counts(lo, hi, std::move(counts));
}

void write_mc_result(ByteWriter& w, const mc::McResult& r) {
  w.str(r.label);
  w.f64_vec(r.tp_samples);
  w.u64(r.stage_stats.size());
  for (const auto& s : r.stage_stats) write_running_stats(w, s);
}

mc::McResult read_mc_result(ByteReader& r) {
  mc::McResult out;
  out.label = r.str();
  out.tp_samples = r.f64_vec();
  const std::uint64_t n_stages = r.u64();
  // A serialized RunningStats is 40 bytes; reject hostile counts before
  // reserving (same rationale as f64_vec's length guard).
  if (n_stages > r.remaining() / 40)
    throw std::runtime_error("dist: truncated payload (" +
                             std::to_string(n_stages) + " stage stats, " +
                             std::to_string(r.remaining()) + " bytes left)");
  out.stage_stats.reserve(n_stages);
  for (std::uint64_t i = 0; i < n_stages; ++i)
    out.stage_stats.push_back(read_running_stats(r));
  return out;
}

void write_stage_characterization(ByteWriter& w,
                                  const sta::StageCharacterization& c) {
  w.f64(c.delay.mean);
  w.f64(c.delay.sigma);
  w.f64(c.sigma_inter);
  w.f64(c.sigma_private);
  w.f64(c.area);
  w.f64(c.nominal_delay);
}

sta::StageCharacterization read_stage_characterization(ByteReader& r) {
  sta::StageCharacterization c;
  c.delay.mean = r.f64();
  c.delay.sigma = r.f64();
  c.sigma_inter = r.f64();
  c.sigma_private = r.f64();
  c.area = r.f64();
  c.nominal_delay = r.f64();
  return c;
}

void write_run_descriptor(ByteWriter& w, const RunDescriptor& d) {
  w.u16(static_cast<std::uint16_t>(d.task_kind));
  w.str(d.workload);
  w.u64(d.netlist_hash);
  w.u64(d.seed);
  w.u64(d.root_seed);
  w.u64(d.n_samples);
  w.u64(d.samples_per_shard);
  w.u64(d.block_width);
  w.u64(d.size_grid.size());
  for (const auto& lane : d.size_grid) w.f64_vec(lane);
  w.f64(d.sigma_vth_inter);
  w.f64(d.sigma_vth_systematic);
  w.f64(d.correlation_length);
  w.u8(d.enable_rdf);
  w.f64(d.sigma_l_inter_rel);
  w.f64(d.sigma_l_systematic_rel);
  w.f64(d.output_load);
  w.f64(d.latch_tcq_ps);
  w.f64(d.latch_tsetup_ps);
  w.f64(d.latch_random_sigma_rel);
  w.f64(d.tech_vdd);
  w.f64(d.tech_vth0);
  w.f64(d.tech_leff);
  w.f64(d.tech_wmin);
  w.f64(d.tech_alpha);
  w.f64(d.tech_tau_ps);
  w.f64(d.tech_avt);
}

RunDescriptor read_run_descriptor(ByteReader& r) {
  RunDescriptor d;
  // The discriminator leads so an unknown task kind fails as exactly that
  // — a clear capability error — instead of a generic deserialize failure
  // somewhere down the payload.
  const std::uint16_t raw_kind = r.u16();
  if (!is_known_task_kind(raw_kind))
    throw std::runtime_error(
        "dist: unknown task kind " + std::to_string(raw_kind) +
        " (this build knows monte-carlo=1, ssta-grid=2)");
  d.task_kind = static_cast<TaskKind>(raw_kind);
  d.workload = r.str();
  d.netlist_hash = r.u64();
  d.seed = r.u64();
  d.root_seed = r.u64();
  d.n_samples = r.u64();
  d.samples_per_shard = r.u64();
  d.block_width = r.u64();
  const std::uint64_t lanes = r.u64();
  // Lane-count guard before reserving: each lane is at least a u64 length
  // prefix, so a claimed count beyond remaining()/8 is hostile or corrupt.
  if (lanes > r.remaining() / 8)
    throw std::runtime_error("dist: truncated payload (size grid of " +
                             std::to_string(lanes) + " lanes, " +
                             std::to_string(r.remaining()) + " bytes left)");
  d.size_grid.reserve(lanes);
  for (std::uint64_t i = 0; i < lanes; ++i) d.size_grid.push_back(r.f64_vec());
  d.sigma_vth_inter = r.f64();
  d.sigma_vth_systematic = r.f64();
  d.correlation_length = r.f64();
  d.enable_rdf = r.u8();
  d.sigma_l_inter_rel = r.f64();
  d.sigma_l_systematic_rel = r.f64();
  d.output_load = r.f64();
  d.latch_tcq_ps = r.f64();
  d.latch_tsetup_ps = r.f64();
  d.latch_random_sigma_rel = r.f64();
  d.tech_vdd = r.f64();
  d.tech_vth0 = r.f64();
  d.tech_leff = r.f64();
  d.tech_wmin = r.f64();
  d.tech_alpha = r.f64();
  d.tech_tau_ps = r.f64();
  d.tech_avt = r.f64();
  return d;
}

std::uint64_t derive_root_seed(std::uint64_t seed) {
  stats::Rng rng(seed);
  return rng.fork().seed();
}

// ------------------------------------------------------------ file blobs

std::vector<std::uint8_t> serialize_mc_result(const mc::McResult& r) {
  ByteWriter w;
  w.u32(kWireMagic);
  w.u16(kWireVersion);
  write_mc_result(w, r);
  return w.take();
}

mc::McResult deserialize_mc_result(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  const std::uint32_t magic = r.u32();
  if (magic != kWireMagic) {
    char hex[16];
    std::snprintf(hex, sizeof hex, "0x%08x", magic);
    throw std::runtime_error("dist: bad magic " + std::string(hex) +
                             " (not a statpipe result blob)");
  }
  const std::uint16_t version = r.u16();
  if (version != kWireVersion)
    throw std::runtime_error("dist: unsupported wire version " +
                             std::to_string(version) + " (this build speaks " +
                             std::to_string(kWireVersion) + ")");
  mc::McResult out = read_mc_result(r);
  r.expect_done();
  return out;
}

std::vector<std::uint8_t> serialize_characterizations(
    const std::vector<sta::StageCharacterization>& lanes) {
  ByteWriter w;
  w.u32(kWireMagic);
  w.u16(kWireVersion);
  w.u64(lanes.size());
  for (const auto& c : lanes) write_stage_characterization(w, c);
  return w.take();
}

std::vector<sta::StageCharacterization> deserialize_characterizations(
    std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  const std::uint32_t magic = r.u32();
  if (magic != kWireMagic)
    throw std::runtime_error("dist: bad magic (not a statpipe lane blob)");
  const std::uint16_t version = r.u16();
  if (version != kWireVersion)
    throw std::runtime_error("dist: unsupported wire version " +
                             std::to_string(version) + " (this build speaks " +
                             std::to_string(kWireVersion) + ")");
  const std::uint64_t n = r.u64();
  // A serialized StageCharacterization is 48 bytes; same hostile-length
  // rationale as read_mc_result's stage count.
  if (n > r.remaining() / 48)
    throw std::runtime_error("dist: truncated payload (" + std::to_string(n) +
                             " lanes, " + std::to_string(r.remaining()) +
                             " bytes left)");
  std::vector<sta::StageCharacterization> lanes;
  lanes.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i)
    lanes.push_back(read_stage_characterization(r));
  r.expect_done();
  return lanes;
}

bool bitwise_equal(const mc::McResult& a, const mc::McResult& b) {
  return serialize_mc_result(a) == serialize_mc_result(b);
}

bool bitwise_equal(const std::vector<sta::StageCharacterization>& a,
                   const std::vector<sta::StageCharacterization>& b) {
  return serialize_characterizations(a) == serialize_characterizations(b);
}

}  // namespace statpipe::dist
