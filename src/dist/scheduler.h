// Service-side range scheduler: decides which pending unit range the next
// idle worker receives, interleaving many concurrent requests (from many
// client sessions) over one fleet.
//
// Policy, evaluated in order when next() picks among requests that still
// have pending ranges:
//
//   1. PRIORITY class — higher u32 priority strictly first;
//   2. FAIR SHARE within a class — the session with the fewest units
//      assigned so far (a deficit counter next() maintains) goes first, so
//      a session firing many small probe grids cannot starve another;
//      ties break by session first-seen order;
//   3. FIFO within a session — requests in submission order;
//   4. QUEUE ORDER within a request — ranges pop from the front;
//      requeue_front() puts a forfeited range back at the front of its
//      request's queue so retries run before fresh ranges.
//
// The scheduler is a pure data structure: no clocks, no I/O, no
// randomness.  Given the same sequence of add_request / enqueue /
// requeue_front / next calls it yields the same assignment sequence —
// unit-tested directly in tests/test_service.cpp.  Note the determinism
// contract does NOT depend on this (results are reassembled per unit
// index whatever the assignment order was; docs/DETERMINISM.md); a
// deterministic scheduler just makes service behavior reproducible and
// testable.
//
// Layer contract (src/dist, see docs/ARCHITECTURE.md): the distributed
// execution layer sits on top of mc/sta/sim/stats and may depend on all of
// them; nothing below src/dist may know it exists.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <vector>

namespace statpipe::dist {

/// One schedulable contiguous unit range of one request.  `attempts`
/// counts kAssign sends (the service increments it; the scheduler only
/// carries it through requeues).
struct SchedTask {
  std::uint64_t rid = 0;     ///< service-global request id
  std::size_t begin = 0;     ///< first unit index
  std::size_t end = 0;       ///< one past last unit index
  int attempts = 0;
};

class Scheduler {
 public:
  /// Registers a request before its ranges are enqueued.  `session` keys
  /// the fair-share deficit accounting (0 = the service's local session).
  /// Submission order is captured here — the FIFO key of rule 3.
  void add_request(std::uint64_t rid, std::uint64_t session,
                   std::uint32_t priority);

  /// Drops a request and all its still-pending ranges (request completed,
  /// failed or cancelled).  Its session's deficit counter survives — past
  /// consumption still counts against the session's share.
  void remove_request(std::uint64_t rid);

  /// Appends a range to the back of its request's queue.
  void enqueue(const SchedTask& t);

  /// Puts a forfeited range at the FRONT of its request's queue, so the
  /// retry is the next thing that request runs.
  void requeue_front(const SchedTask& t);

  /// Pops the next range per the policy above; nullopt when nothing is
  /// pending.  Charges the range's unit count to its session's deficit.
  std::optional<SchedTask> next();

  bool empty() const noexcept { return pending_ranges_ == 0; }
  std::size_t pending_ranges() const noexcept { return pending_ranges_; }

  /// Units assigned to a session so far (the fair-share deficit counter) —
  /// surfaced through Service::stats() as the per-session accounting the
  /// observability layer reports.
  std::uint64_t session_units(std::uint64_t session) const;
  std::vector<std::uint64_t> sessions() const;

 private:
  struct SessionShare {
    std::uint64_t assigned_units = 0;
    std::uint64_t order = 0;  ///< first-seen rank, the fair-share tiebreak
  };
  struct RequestQueue {
    std::uint64_t session = 0;
    std::uint32_t priority = 0;
    std::uint64_t order = 0;  ///< submission rank, the FIFO key
    std::deque<SchedTask> ranges;
  };

  std::map<std::uint64_t, SessionShare> sessions_;
  std::map<std::uint64_t, RequestQueue> requests_;
  std::uint64_t next_order_ = 0;
  std::size_t pending_ranges_ = 0;
};

}  // namespace statpipe::dist
