// Persistent multi-tenant cluster service (wire v4): one resident worker
// fleet serves MANY RunDescriptors from MANY concurrent client sessions
// over one listener.
//
// The Service is the single execution engine of src/dist.  It owns:
//
//   * SESSIONS — every connection (worker or client) is granted a session
//     id via kWelcome and is bound to it: a frame carrying any other
//     session id is rejected, which is what defeats cross-session replay
//     of captured authenticated frames (the HMAC key is shared, so the
//     MAC alone cannot tell connections apart);
//   * REQUESTS — one submitted descriptor each, local (submit_local, the
//     Coordinator wrapper's path) or remote (kSubmit from a client), with
//     per-request fold state, RunMetrics, status and result blob;
//   * the SCHEDULER (dist/scheduler.h) — priority + per-session
//     fair-share interleaving of all requests' unit ranges over the
//     fleet;
//   * the RESULT CACHE (dist/result_cache.h) — a resubmitted descriptor
//     (same canonical bytes, same root_seed) is answered from memory,
//     byte-identical to a recompute.
//
// Determinism contract, extended PER REQUEST (docs/DETERMINISM.md): the
// scheduling order of ranges across requests and workers may vary run to
// run, but every request's result bytes equal its single-process local
// reference — each request folds its own committed units in ascending
// unit order exactly as the v3 single-run coordinator did, and streams
// from different requests never mix (frames are request-scoped).
//
// Failure semantics per worker are unchanged from v3: a worker that
// disconnects, errors, stalls past the read deadline or violates the
// protocol forfeits its in-flight range including everything it staged;
// the range re-enters its request's queue front with a per-range attempt
// budget, and exhausting the budget fails THAT REQUEST, not the service.
// An idle timeout (no event at all for idle_timeout_ms while requests are
// outstanding) fails every outstanding request.
//
// Threading: the Service is single-threaded — run() owns everything.
// Clients on other threads/processes talk to it over TCP (ServiceClient).
//
// Layer contract (src/dist, see docs/ARCHITECTURE.md): the distributed
// execution layer sits on top of mc/sta/sim/stats and may depend on all of
// them; nothing below src/dist may know it exists.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "dist/hmac.h"
#include "dist/result_cache.h"
#include "dist/scheduler.h"
#include "dist/serialize.h"
#include "dist/task.h"
#include "dist/transport.h"
#include "mc/pipeline_mc.h"

namespace statpipe::dist {

struct ServiceOptions {
  std::string bind_host = "127.0.0.1";  ///< 0.0.0.0 for multi-machine runs
  std::uint16_t port = 0;               ///< 0 = ephemeral, see port()
  /// Units per assignment; 0 = auto per request (n_units / 8, min 1).  A
  /// pure scheduling knob: results are reassembled per unit, so this can
  /// never change output bytes, only load balance and fair-share grain.
  std::size_t units_per_range = 0;
  int max_attempts = 3;  ///< per range, >= 1
  /// Progress bound, 0 = wait forever: no event at all for this long
  /// while requests are outstanding fails every outstanding request.
  int idle_timeout_ms = 0;
  /// Per-connection read deadline on every admitted peer (0 = none); see
  /// CoordinatorOptions::read_deadline_ms for the slow-loris rationale.
  int read_deadline_ms = 30000;
  /// Shared wire-key passphrase ("" = authentication disabled).
  std::string auth_key;
  /// Result-cache byte bound (sum of cached result blobs); 0 disables.
  std::size_t cache_max_bytes = std::size_t{64} << 20;
  bool verbose = false;  ///< progress lines on stderr
};

/// Always-on per-REQUEST accounting, surfaced by Service::local_metrics /
/// Coordinator::metrics / run_cluster's out-param, and shipped to remote
/// clients inside kRequestDone (queue wait + cache flag).  Plain counters
/// on the event-loop control path — deterministic except the wall-clock
/// fields — so they are safe to report unconditionally, unlike the obs
/// counters which only accumulate while telemetry is enabled.
struct RunMetrics {
  std::size_t units = 0;            ///< plan size (task units)
  std::size_t ranges = 0;           ///< ranges the plan was cut into
  std::size_t assigns = 0;          ///< kAssign frames sent
  std::size_t commits = 0;          ///< ranges committed via kRangeDone
  std::size_t retries = 0;          ///< assignments beyond a range's first
  std::size_t forfeits = 0;         ///< in-flight ranges lost to dead peers
  std::size_t units_discarded = 0;  ///< staged units thrown away on forfeit
  std::size_t peak_staged_units = 0;  ///< high-water uncommitted staging
  std::size_t workers_admitted = 0;   ///< fleet size when the request ended
  double wall_ms = 0.0;             ///< submit to completion
  double queue_wait_ms = 0.0;       ///< submit to first range assignment
  std::size_t cache_hits = 0;       ///< 1 when served from the result cache
  std::size_t cache_misses = 0;     ///< 1 when computed (and then cached)
};

/// Service-wide totals, readable between run() calls (ClusterHandle and
/// the --serve CLI print them).
struct ServiceStats {
  std::size_t requests_submitted = 0;
  std::size_t requests_completed = 0;  ///< done or failed
  std::size_t requests_failed = 0;
  std::size_t sessions_opened = 0;     ///< kWelcome frames granted
  std::size_t workers_admitted = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
  /// Fair-share deficit counters: units assigned per session so far, in
  /// session-id order (the scheduler's accounting, docs/OBSERVABILITY.md).
  std::vector<std::pair<std::uint64_t, std::uint64_t>> session_units;
};

class Service {
 public:
  /// Binds the listener immediately (port() is valid before run()).
  /// Throws std::invalid_argument on max_attempts < 1.
  explicit Service(ServiceOptions opt);
  ~Service();

  std::uint16_t port() const noexcept { return listener_.port(); }

  /// Submits a descriptor from inside this process (the Coordinator /
  /// ClusterHandle path) and returns its request id.  Validates like the
  /// v3 coordinator did — unfinalized descriptor, invalid plan,
  /// unsatisfiable units_per_range and oversize unit payloads all throw
  /// std::invalid_argument before any worker sees anything.  A result
  /// cache hit completes the request immediately.
  std::uint64_t submit_local(const RunDescriptor& desc,
                             std::uint32_t priority = 0);

  /// Serves the event loop until `until` returns true (checked once per
  /// loop iteration).  Callers typically pass "local request N done" or
  /// "K requests completed".  Throws only on unrecoverable service errors
  /// (poll failure); per-request failures are stored per request.
  void run(const std::function<bool()>& until);

  /// True once the request completed OR failed.
  bool local_done(std::uint64_t rid) const;

  /// Takes a completed request's result; throws std::runtime_error with
  /// the stored failure message for a failed one.  Consumes the request.
  TaskResult take_local_result(std::uint64_t rid);

  /// The request's accounting (valid once local_done; also mid-failure).
  const RunMetrics& local_metrics(std::uint64_t rid) const;

  /// Sends kShutdown to every connected worker (best-effort) — how an
  /// owner winds the fleet down before reaping spawned processes.
  void shutdown_workers();

  /// Accepts and politely dismisses (kShutdown) every connection waiting
  /// in the listener backlog, without blocking — see
  /// Coordinator::drain_backlog for the reap-loop rationale.
  void drain_backlog();

  std::size_t requests_completed() const noexcept {
    return stats_.requests_completed;
  }
  ServiceStats stats() const;

 private:
  struct Request {
    std::uint64_t rid = 0;
    std::uint64_t client_session = 0;  ///< 0 = local submission
    std::uint64_t client_id = 0;       ///< client-facing request id
    RunDescriptor desc;
    std::vector<std::uint8_t> desc_bytes;  ///< canonical kSetup payload
    Digest cache_key{};
    std::uint32_t priority = 0;
    std::size_t n_units = 0;
    enum class Status { kActive, kDone, kFailed } status = Status::kActive;
    std::string error;
    // Bounded-memory ascending fold state (one per request; the v3
    // coordinator's, verbatim).  MC: units [0, folded_prefix) live merged
    // in mc_acc; committed units beyond the prefix wait in mc_pending.
    // Grid: lanes is the preallocated output, lane_got guards placement.
    mc::McResult mc_acc;
    std::size_t folded_prefix = 0;
    std::map<std::size_t, mc::McResult> mc_pending;
    std::vector<sta::StageCharacterization> lanes;
    std::vector<std::uint8_t> lane_got;
    std::size_t lanes_done = 0;
    std::size_t staged_now = 0;  ///< uncommitted staged units, all workers
    RunMetrics metrics;
    std::int64_t submit_ns = 0;
    std::int64_t span_t0 = 0;  ///< obs request span start (0 = obs off)
    std::vector<std::uint8_t> result_blob;  ///< serialized, for cache/wire
    std::size_t done_units() const noexcept {
      return desc.task_kind == TaskKind::kSstaGrid
                 ? lanes_done
                 : folded_prefix + mc_pending.size();
    }
  };

  struct Peer {
    Socket sock;
    enum class Kind { kWorker, kClient } kind = Kind::kWorker;
    std::uint64_t session = 0;
    // Worker state:
    bool has_range = false;
    SchedTask task;
    std::int64_t assign_ns = 0;
    std::set<std::uint64_t> setup_rids;  ///< requests this worker holds
    std::map<std::size_t, mc::McResult> staged_mc;
    std::map<std::size_t, sta::StageCharacterization> staged_lanes;
    // Client state:
    std::set<std::uint64_t> client_ids;  ///< request ids seen (dup guard)
  };

  std::uint64_t admit_request(RunDescriptor desc, std::uint32_t priority,
                              std::uint64_t client_session,
                              std::uint64_t client_id);
  void finish_request(Request& rq);
  /// By rid, not Request&: failing a REMOTE request erases it from
  /// requests_, so callers must not hold a reference across the call.
  void fail_request(std::uint64_t rid, const std::string& why);
  void admit_peer();
  void try_assign(Peer& w);
  bool service_worker(Peer& w);
  bool service_client(Peer& w);
  void handle_unit(Peer& w, Request& rq, const Frame& f);
  void handle_range_done(Peer& w, Request& rq, const Frame& f);
  void requeue(Peer& w, const std::string& why);
  void advance_mc_fold(Request& rq);
  void release_request(std::uint64_t rid);
  bool outstanding_requests() const;

  ServiceOptions opt_;
  FrameAuth auth_;
  Listener listener_;
  Scheduler sched_;
  ResultCache cache_;
  std::vector<Peer> peers_;
  std::map<std::uint64_t, Request> requests_;
  std::uint64_t next_session_ = 1;
  std::uint64_t next_rid_ = 1;
  ServiceStats stats_;
};

/// Blocking client for a running Service: one TCP connection, one session.
/// submit() assigns ascending request ids within the session; wait()
/// blocks until that request's kRequestDone (results arriving out of
/// submission order are stored until asked for).  Throws
/// std::runtime_error on transport errors, a service-side rejection
/// (kError) or a failed request.
class ServiceClient {
 public:
  ServiceClient(const std::string& host, std::uint16_t port,
                const std::string& auth_key = "", int connect_retry_ms = 5000);

  std::uint64_t session() const noexcept { return session_; }

  /// Submits one finalized descriptor; returns its request id.
  std::uint64_t submit(const RunDescriptor& desc, std::uint32_t priority = 0);

  /// Per-request service-side accounting shipped with the result.
  struct RequestInfo {
    bool cache_hit = false;
    double queue_wait_ms = 0.0;
  };

  /// Blocks until request `id` completes; returns its result (bitwise
  /// equal to the local reference — the service's contract).
  TaskResult wait(std::uint64_t id);

  /// Valid after wait(id) returned.
  const RequestInfo& info(std::uint64_t id) const;

 private:
  Socket sock_;
  FrameAuth auth_;
  std::uint64_t session_ = 0;
  std::uint64_t next_id_ = 1;
  std::map<std::uint64_t, std::pair<TaskResult, RequestInfo>> done_;
  std::map<std::uint64_t, RequestInfo> infos_;  ///< survives wait()'s take
  std::map<std::uint64_t, std::string> failed_;
};

}  // namespace statpipe::dist
