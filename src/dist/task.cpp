#include "dist/task.h"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <utility>

#include "dist/workload.h"
#include "process/variation.h"
#include "sim/engine.h"
#include "sim/thread_pool.h"
#include "sta/ssta_batch.h"

namespace statpipe::dist {

namespace {

/// Grid-task workload with stable addresses: the rebuilt stage netlist,
/// the delay model (descriptor technology, like Workload), the bound
/// SstaBatch — which keeps a pointer to the model for its lifetime — and
/// the size grid itself, owned here so the session's range runner does
/// not duplicate the K x G doubles in its closure.
struct GridWorkload {
  netlist::Netlist nl;
  device::AlphaPowerModel model;
  sta::SstaBatch batch;
  std::vector<std::vector<double>> size_grid;

  GridWorkload(netlist::Netlist n, const process::Technology& tech,
               const sta::SstaOptions& opt,
               std::vector<std::vector<double>> grid)
      : nl(std::move(n)),
        model(tech),
        batch(nl, model, opt),
        size_grid(std::move(grid)) {}
};

}  // namespace

std::size_t task_unit_count(const RunDescriptor& desc) {
  switch (desc.task_kind) {
    case TaskKind::kMonteCarlo:
      if (desc.n_samples == 0)
        throw std::invalid_argument("dist: descriptor with zero samples");
      // The engine's own planner: throws on zero samples_per_shard.
      return sim::shard_count(desc.n_samples, desc.samples_per_shard);
    case TaskKind::kSstaGrid:
      if (desc.size_grid.empty())
        throw std::invalid_argument(
            "dist: ssta-grid descriptor with an empty size grid");
      return desc.size_grid.size();
  }
  throw std::invalid_argument("dist: descriptor with unknown task kind");
}

std::size_t task_unit_wire_bytes(const RunDescriptor& desc) {
  if (desc.task_kind == TaskKind::kSstaGrid)
    return 64;  // 48-byte StageCharacterization + index and slack
  return static_cast<std::size_t>(desc.samples_per_shard) * 8;
}

UnitRangeRunner make_unit_runner(const RunDescriptor& desc) {
  if (desc.task_kind == TaskKind::kSstaGrid) {
    // shared_ptr: the runner outlives this call and the batch must keep
    // its netlist/model addresses stable for the whole session.
    sta::SstaOptions opt;
    opt.output_load = desc.output_load;
    auto wl = std::make_shared<GridWorkload>(build_grid_stage(desc),
                                             descriptor_technology(desc), opt,
                                             desc.size_grid);
    const process::VariationSpec spec = descriptor_spec(desc);
    return [wl, spec](std::size_t begin, std::size_t end,
                      const UnitSink& emit) {
      sim::check_shard_range(wl->size_grid.size(), begin, end);
      // Characterize only the assigned lanes: lane results carry no random
      // state and execute the scalar path's exact floating-point sequence
      // per lane, so a sub-grid batch is bitwise-identical to the same
      // lanes of the full local batch under any partitioning.
      std::vector<std::vector<double>> sub(
          wl->size_grid.begin() + static_cast<std::ptrdiff_t>(begin),
          wl->size_grid.begin() + static_cast<std::ptrdiff_t>(end));
      const std::vector<sta::StageCharacterization> lanes =
          wl->batch.characterize(sta::make_configs(sub, spec));
      for (std::size_t i = 0; i < lanes.size(); ++i) {
        ByteWriter w;
        write_stage_characterization(w, lanes[i]);
        emit(begin + i, w.take());
      }
    };
  }
  std::shared_ptr<Workload> wl = Workload::make(desc);
  return [wl, desc](std::size_t begin, std::size_t end, const UnitSink& emit) {
    // Execute the range in chunks of a few shards each so completed units
    // stream out while later ones still compute, keeping both worker and
    // coordinator memory bounded by the chunk, not the range.  Chunking is
    // pure scheduling: shard streams key on (root_seed, shard index) alone
    // and emission stays ascending, so the bytes cannot depend on it.
    const std::size_t chunk = std::max<std::size_t>(
        2 * sim::ThreadPool::shared().thread_count(), 8);
    for (std::size_t lo = begin; lo < end; lo += chunk) {
      const std::size_t hi = std::min(end, lo + chunk);
      const std::vector<mc::McResult> parts = wl->engine().run_shard_range(
          desc.n_samples, desc.root_seed, lo, hi, wl->exec(desc));
      for (std::size_t i = 0; i < parts.size(); ++i) {
        ByteWriter w;
        write_mc_result(w, parts[i]);
        emit(lo + i, w.take());
      }
    }
  };
}

TaskResult run_local_task(const RunDescriptor& desc) {
  TaskResult out;
  out.kind = desc.task_kind;
  if (desc.task_kind == TaskKind::kSstaGrid) {
    const netlist::Netlist nl = build_grid_stage(desc);
    const device::AlphaPowerModel model{descriptor_technology(desc)};
    sta::SstaOptions opt;
    opt.output_load = desc.output_load;
    // The exact local path the optimizer layers take with an empty hook —
    // one implementation, so reference and production cannot drift.
    out.lanes = sta::characterize_grid(nl, model, desc.size_grid,
                                       descriptor_spec(desc), opt);
    return out;
  }
  out.mc = run_local(desc);
  return out;
}

bool bitwise_equal(const TaskResult& a, const TaskResult& b) {
  if (a.kind != b.kind) return false;
  if (a.kind == TaskKind::kSstaGrid) return bitwise_equal(a.lanes, b.lanes);
  return bitwise_equal(a.mc, b.mc);
}

}  // namespace statpipe::dist
