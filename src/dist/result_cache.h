// Content-addressed result cache for the cluster service: repeated probe
// grids (the global optimizer resubmits near-identical candidate grids
// constantly) are answered from memory instead of recomputed.
//
// The key is the SHA-256 of the request's CANONICAL DESCRIPTOR BYTES —
// the exact write_run_descriptor encoding, which already carries every
// input that can change a result bit: task kind, workload name +
// structural hash, seed/root_seed, sampling plan, the full size grid,
// variation spec, timing options and all technology parameters.  Two
// descriptors differing in a single f64 bit therefore hash to different
// keys and can never alias (tested in tests/test_service.cpp).  The
// cached value is the request's serialized result blob
// (serialize_mc_result / serialize_characterizations), whose
// deserialize∘serialize round-trip is byte-identity — so a cache hit is
// bitwise-indistinguishable from a recompute (docs/DETERMINISM.md).
//
// Eviction is bounded-size LRU driven by a monotonic access sequence
// counter, NOT clocks: given the same find/insert call sequence the same
// entries are evicted, every time.  Hit/miss/eviction totals feed the
// dist.service.cache.* obs counters (docs/OBSERVABILITY.md).
//
// Layer contract (src/dist, see docs/ARCHITECTURE.md): the distributed
// execution layer sits on top of mc/sta/sim/stats and may depend on all of
// them; nothing below src/dist may know it exists.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

#include "dist/hmac.h"
#include "dist/serialize.h"

namespace statpipe::dist {

class ResultCache {
 public:
  /// `max_bytes` bounds the sum of cached blob sizes; 0 disables caching
  /// entirely (every find misses, every insert is dropped).
  explicit ResultCache(std::size_t max_bytes) : max_bytes_(max_bytes) {}

  /// Cache key: SHA-256 over the canonical descriptor bytes (which include
  /// root_seed — the full (descriptor, root_seed) identity of a run).
  static Digest key_for(const RunDescriptor& desc);

  /// Borrowed pointer to the cached blob, nullptr on miss.  Counts one
  /// hit or miss and refreshes the entry's LRU rank.  The pointer is
  /// invalidated by the next insert().
  const std::vector<std::uint8_t>* find(const Digest& key);

  /// Stores a blob under `key`, evicting least-recently-used entries until
  /// the byte bound holds.  A blob alone larger than the bound is not
  /// cached.  Re-inserting an existing key refreshes its LRU rank.
  void insert(const Digest& key, std::vector<std::uint8_t> blob);

  std::size_t entries() const noexcept { return entries_.size(); }
  std::size_t size_bytes() const noexcept { return bytes_; }
  std::uint64_t hits() const noexcept { return hits_; }
  std::uint64_t misses() const noexcept { return misses_; }
  std::uint64_t evictions() const noexcept { return evictions_; }

 private:
  void evict_for(std::size_t incoming);

  struct Entry {
    std::vector<std::uint8_t> blob;
    std::uint64_t last_used = 0;
  };

  std::map<Digest, Entry> entries_;
  std::size_t max_bytes_ = 0;
  std::size_t bytes_ = 0;
  std::uint64_t seq_ = 0;  ///< access counter — deterministic LRU clock
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace statpipe::dist
