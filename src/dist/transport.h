// Minimal TCP transport for the unit-range protocol: RAII sockets, a
// listener, and length-prefixed frame send/receive (dist/protocol.h) with
// optional shared-key frame authentication (dist/hmac.h).
//
// Deliberately boring POSIX blocking sockets: the coordinator multiplexes
// readiness with poll(2) and then reads one frame with blocking reads (a
// worker writes each frame in one piece), and workers are fully
// synchronous.  All functions throw std::runtime_error with the errno
// string on socket errors; a clean peer close surfaces as std::nullopt
// from recv_frame, never as an exception — disconnection is an expected
// event the coordinator handles, not a crash.
//
// Hardening seams on this layer:
//   * a per-connection READ DEADLINE (set_read_deadline_ms) bounds the
//     total wall-clock of any single recv_all, so a peer that stalls
//     mid-frame — or drips one byte per timeout period — surfaces as a
//     timeout error instead of wedging the caller forever;
//   * frame AUTHENTICATION (FrameAuth): with a shared key configured,
//     every frame carries an HMAC-SHA256 trailer over header + payload,
//     verified constant-time before the payload is surfaced;
//   * a FAULT-INJECTION seam (dist::testing::FaultPlan, attached per
//     socket) that the adversarial tests and the statpipe-saboteur tool
//     use to force short reads/writes, delayed bytes and byte-exact
//     mid-frame disconnects on the live socket path.
//
// Layer contract (src/dist, see docs/ARCHITECTURE.md): the distributed
// execution layer sits on top of mc/sim/stats and may depend on all of
// them; nothing below src/dist may know it exists.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "dist/hmac.h"
#include "dist/protocol.h"

namespace statpipe::dist {

namespace testing {

/// Deterministic fault plan for one socket (attach with
/// Socket::set_fault_plan; the socket borrows the plan, caller keeps it
/// alive).  Budgets are mutable counters the socket decrements, so a test
/// can cut a connection at an exact byte offset of the conversation —
/// e.g. three bytes into the second frame's header — and chunk caps force
/// the short-read/short-write paths that a loopback socket would
/// otherwise never exercise.
struct FaultPlan {
  static constexpr std::size_t kUnlimited =
      std::numeric_limits<std::size_t>::max();

  /// Total bytes this socket may still send; the next send past the
  /// budget shuts the connection down (a byte-exact mid-frame
  /// disconnect), after first transmitting whatever the budget allows.
  std::size_t send_byte_budget = kUnlimited;
  /// Largest chunk handed to one ::send / ::recv call — forces the
  /// partial-write / partial-read loops.
  std::size_t max_chunk = kUnlimited;
  /// Sleep inserted before every chunk (delayed/dribbled bytes).
  int delay_us_per_chunk = 0;
};

}  // namespace testing

/// Move-only owner of a connected socket fd.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();
  Socket(Socket&& o) noexcept
      : fd_(o.fd_), deadline_ms_(o.deadline_ms_), fault_(o.fault_) {
    o.fd_ = -1;
    o.fault_ = nullptr;
  }
  Socket& operator=(Socket&& o) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  int fd() const noexcept { return fd_; }
  bool valid() const noexcept { return fd_ >= 0; }
  void close();

  /// Receive timeout for subsequent reads (0 = block forever).  A timed-out
  /// recv throws like any other socket error — used by the coordinator to
  /// bound the synchronous hello read from a freshly accepted peer.
  void set_recv_timeout_ms(int ms);

  /// Hard wall-clock bound on any single recv_all (0 = none).  Unlike
  /// set_recv_timeout_ms — which restarts on every byte received, so a
  /// peer dripping one byte per period stays under it forever — the
  /// deadline is absolute per call: a frame that has not fully arrived
  /// within `ms` throws "read deadline exceeded", whatever the drip rate.
  /// The coordinator arms this on every admitted worker so a stalled or
  /// slow-loris peer forfeits its range instead of wedging run().
  void set_read_deadline_ms(int ms);

  /// dist::testing seam: all sends/recvs on this socket consult `plan`
  /// (borrowed; nullptr detaches).  Production code never attaches one.
  void set_fault_plan(testing::FaultPlan* plan) noexcept { fault_ = plan; }

  /// Writes exactly n bytes (MSG_NOSIGNAL; a dead peer throws, never
  /// SIGPIPEs the process).
  void send_all(const void* data, std::size_t n);
  /// Reads exactly n bytes; returns false on clean EOF at a frame
  /// boundary (n unread bytes), throws on mid-read EOF, timeouts,
  /// deadline expiry or errors.
  bool recv_all(void* data, std::size_t n);

 private:
  int fd_ = -1;
  int deadline_ms_ = 0;
  testing::FaultPlan* fault_ = nullptr;
};

/// Listening TCP socket bound to host:port (port 0 = ephemeral; port()
/// reports the actual one).
class Listener {
 public:
  Listener(const std::string& host, std::uint16_t port);

  std::uint16_t port() const noexcept { return sock_.fd() >= 0 ? port_ : 0; }
  int fd() const noexcept { return sock_.fd(); }
  Socket accept();

 private:
  Socket sock_;
  std::uint16_t port_ = 0;
};

/// Connects to host:port, retrying for up to retry_ms (workers may start
/// before the coordinator binds).  Throws on final failure.
Socket connect_to(const std::string& host, std::uint16_t port,
                  int retry_ms = 5000);

struct Frame {
  MsgType type{};
  std::uint64_t session_id = 0;  ///< v4: connection's granted session (0
                                 ///< before kWelcome)
  std::uint64_t request_id = 0;  ///< v4: request the frame is scoped to (0
                                 ///< when not request-scoped)
  std::vector<std::uint8_t> payload;
};

/// Serialized frame bytes (header + payload + HMAC trailer when auth is
/// enabled) without sending — what send_frame writes, exposed so the
/// saboteur tool and the mutation fuzz can corrupt real frames.  The MAC
/// covers the whole v4 header — session and request ids included — so a
/// spliced or re-scoped authenticated frame fails verification.
std::vector<std::uint8_t> encode_frame(MsgType type,
                                       const std::vector<std::uint8_t>& payload,
                                       const FrameAuth& auth = {},
                                       std::uint64_t session_id = 0,
                                       std::uint64_t request_id = 0);

/// Sends one framed message (header + payload + optional HMAC trailer in
/// a single buffer, one write path — a frame is never interleaved).
void send_frame(Socket& s, MsgType type,
                const std::vector<std::uint8_t>& payload,
                const FrameAuth& auth = {}, std::uint64_t session_id = 0,
                std::uint64_t request_id = 0);

/// Receives one frame; std::nullopt on clean peer close before a header
/// byte.  Throws std::runtime_error on bad magic, unsupported version,
/// unknown flags, oversize payload, mid-frame EOF — and on every
/// authentication failure: a tampered MAC, an unauthenticated frame while
/// `auth` holds a key, or an authenticated frame while it does not.  The
/// MAC is verified (constant-time) BEFORE the payload is handed to any
/// parser.  The version check happens after only the first 8 header bytes
/// (magic, version, type) arrived, so a v3 peer — whose header is 16
/// bytes shorter — gets the clear version error instead of wedging a
/// 36-byte read.
std::optional<Frame> recv_frame(Socket& s, const FrameAuth& auth = {});

}  // namespace statpipe::dist
