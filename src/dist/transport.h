// Minimal TCP transport for the shard-range protocol: RAII sockets, a
// listener, and length-prefixed frame send/receive (dist/protocol.h).
//
// Deliberately boring POSIX blocking sockets: the coordinator multiplexes
// readiness with poll(2) and then reads one frame with blocking reads (a
// worker writes each frame in one piece), and workers are fully
// synchronous.  All functions throw std::runtime_error with the errno
// string on socket errors; a clean peer close surfaces as std::nullopt
// from recv_frame, never as an exception — disconnection is an expected
// event the coordinator handles, not a crash.
//
// Layer contract (src/dist, see docs/ARCHITECTURE.md): the distributed
// execution layer sits on top of mc/sim/stats and may depend on all of
// them; nothing below src/dist may know it exists.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "dist/protocol.h"

namespace statpipe::dist {

/// Move-only owner of a connected socket fd.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();
  Socket(Socket&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  Socket& operator=(Socket&& o) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  int fd() const noexcept { return fd_; }
  bool valid() const noexcept { return fd_ >= 0; }
  void close();

  /// Receive timeout for subsequent reads (0 = block forever).  A timed-out
  /// recv throws like any other socket error — used by the coordinator to
  /// bound the synchronous hello read from a freshly accepted peer.
  void set_recv_timeout_ms(int ms);

  /// Writes exactly n bytes (MSG_NOSIGNAL; a dead peer throws, never
  /// SIGPIPEs the process).
  void send_all(const void* data, std::size_t n);
  /// Reads exactly n bytes; returns false on clean EOF at a frame
  /// boundary (n unread bytes), throws on mid-read EOF or errors.
  bool recv_all(void* data, std::size_t n);

 private:
  int fd_ = -1;
};

/// Listening TCP socket bound to host:port (port 0 = ephemeral; port()
/// reports the actual one).
class Listener {
 public:
  Listener(const std::string& host, std::uint16_t port);

  std::uint16_t port() const noexcept { return port_; }
  int fd() const noexcept { return sock_.fd(); }
  Socket accept();

 private:
  Socket sock_;
  std::uint16_t port_ = 0;
};

/// Connects to host:port, retrying for up to retry_ms (workers may start
/// before the coordinator binds).  Throws on final failure.
Socket connect_to(const std::string& host, std::uint16_t port,
                  int retry_ms = 5000);

struct Frame {
  MsgType type{};
  std::vector<std::uint8_t> payload;
};

/// Sends one framed message (header + payload in a single buffer, one
/// write path — a frame is never interleaved).
void send_frame(Socket& s, MsgType type,
                const std::vector<std::uint8_t>& payload);

/// Receives one frame; std::nullopt on clean peer close before a header
/// byte.  Throws std::runtime_error on bad magic, unsupported version,
/// oversize payload or mid-frame EOF.
std::optional<Frame> recv_frame(Socket& s);

}  // namespace statpipe::dist
