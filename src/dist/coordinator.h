// Distributed run coordinator: plans the task's units, farms contiguous
// unit ranges to TCP workers, reassigns ranges lost to worker failures,
// and folds streamed per-unit results in ascending unit order with
// bounded memory.
//
// Units are task-kind-specific (dist/task.h): Monte-Carlo shards or SSTA
// grid lanes.  Determinism invariant (extends the thread-count/block-width
// invariants of src/sim and src/mc to the PROCESS count, and to
// distributed lane ranges — docs/DETERMINISM.md): for Monte-Carlo, shard
// boundaries and RNG stream ids depend only on (root_seed, n_samples,
// samples_per_shard) — workers receive those in the RunDescriptor and
// replay the exact streams — and the coordinator folds shard results with
// the same ascending left fold the local engine uses.  For SSTA grids the
// lanes carry no random state and each lane executes the scalar path's
// exact floating-point sequence, so positional reassembly is trivially
// bitwise.  A run split across N workers (any N, any range sizes, any
// retry history, any frame interleaving across workers) is therefore
// bitwise-identical to the single-process run (tests/test_dist.cpp
// enforces it for both kinds, including under injected worker failures).
//
// Streaming fold (wire v3): workers stream one kResult frame per unit as
// units complete; the coordinator STAGES them per worker and COMMITS a
// range only on its kRangeDone marker.  Committed Monte-Carlo units merge
// into a single running accumulator as soon as they extend the contiguous
// folded prefix — out-of-order commits wait in a small pending map — so
// coordinator memory is bounded by the out-of-order window plus in-flight
// staging, never the whole run.  Grid lanes are placed positionally into
// the preallocated output.  The fold order is ascending unit index in
// every case, which is exactly the local engine's order.
//
// Failure semantics: a worker that disconnects, errors, stalls past the
// read deadline, fails frame authentication or sends an invalid frame
// forfeits its in-flight range INCLUDING everything it already streamed —
// staged units are discarded, the whole range re-enters the queue and is
// handed to the next idle worker.  Each range carries an attempt budget
// (CoordinatorOptions::max_attempts); exhausting it fails the run loudly.
// Workers may connect at any time during the run.
//
// Layer contract (src/dist, see docs/ARCHITECTURE.md): the distributed
// execution layer sits on top of mc/sta/sim/stats and may depend on all of
// them; nothing below src/dist may know it exists.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "dist/hmac.h"
#include "dist/serialize.h"
#include "dist/task.h"
#include "dist/transport.h"
#include "mc/pipeline_mc.h"

namespace statpipe::dist {

struct CoordinatorOptions {
  std::string bind_host = "127.0.0.1";  ///< 0.0.0.0 for multi-machine runs
  std::uint16_t port = 0;               ///< 0 = ephemeral, see port()
  /// Units per assignment; 0 = auto (n_units / 8, min 1 — i.e. ~8
  /// assignments total, cut once at construction).  A pure scheduling
  /// knob: results are reassembled per unit, so this can never change the
  /// output, only load balance.  Validated up front: a nonzero value must
  /// be <= the run's unit count to be satisfiable.
  std::size_t units_per_range = 0;
  int max_attempts = 3;                 ///< per range, >= 1
  /// Progress bound, 0 = wait forever: no connect/result/error at all for
  /// this long aborts the run (guards the event loop's poll).
  int idle_timeout_ms = 0;
  /// Per-connection read deadline on every admitted worker (0 = none).  A
  /// peer that goes silent — or drips bytes — mid-frame forfeits its range
  /// after this long instead of wedging run() (Socket::set_read_deadline_ms
  /// bounds even slow-loris drips).  Defaults to 30 s: long enough for any
  /// legitimate frame on a LAN, short enough that a stalled peer cannot
  /// hold a range hostage.
  int read_deadline_ms = 30000;
  /// Shared wire-key passphrase ("" = authentication disabled).  When set,
  /// every frame in both directions carries an HMAC-SHA256 trailer
  /// (dist/hmac.h) and unauthenticated or tampered peers are rejected.
  std::string auth_key;
  bool verbose = false;                 ///< progress lines on stderr
};

/// Always-on per-run coordinator accounting, surfaced by Coordinator::
/// metrics() after run() returns (and by run_cluster's out-param).  Plain
/// counters on the event-loop control path — deterministic, no clocks per
/// event (wall_ms is one clock pair around the whole run) — so they are
/// safe to report unconditionally, unlike the obs counters which only
/// accumulate while telemetry is enabled.
struct RunMetrics {
  std::size_t units = 0;            ///< plan size (task units)
  std::size_t ranges = 0;           ///< ranges the plan was cut into
  std::size_t assigns = 0;          ///< kAssign frames sent
  std::size_t commits = 0;          ///< ranges committed via kRangeDone
  std::size_t retries = 0;          ///< assignments beyond a range's first
  std::size_t forfeits = 0;         ///< in-flight ranges lost to dead peers
  std::size_t units_discarded = 0;  ///< staged units thrown away on forfeit
  std::size_t peak_staged_units = 0;  ///< high-water uncommitted staging
  std::size_t workers_admitted = 0;   ///< connections that completed setup
  double wall_ms = 0.0;             ///< run() entry to last commit
};

class Coordinator {
 public:
  /// Binds the listener immediately (so port() is valid before run());
  /// validates descriptor and options up front — zero samples / an empty
  /// grid, zero range size, or a range size exceeding the plan throw
  /// std::invalid_argument.
  Coordinator(RunDescriptor desc, CoordinatorOptions opt = {});
  ~Coordinator();

  std::uint16_t port() const noexcept { return listener_.port(); }
  const RunDescriptor& descriptor() const noexcept { return desc_; }

  /// Per-run accounting (complete once run() has returned; readable midway
  /// from the same thread, e.g. after a thrown run for post-mortems).
  const RunMetrics& metrics() const noexcept { return metrics_; }

  /// Serves workers until every unit's result arrived and committed, then
  /// returns the ascending-order fold (MC: the running left fold of shard
  /// results; grid: positional lane placement).  Throws std::runtime_error
  /// when a range exhausts its attempts or the idle timeout expires.
  TaskResult run();

  /// Accepts and politely dismisses (kShutdown) every connection waiting
  /// in the listener backlog, without blocking.  run() drains once on
  /// completion; a caller that spawned worker PROCESSES should keep
  /// calling this while reaping them, so a worker slow enough to connect
  /// only after the run ended is turned away instead of hanging in its
  /// setup read.
  void drain_backlog();

 private:
  struct Range {
    std::size_t begin = 0;  ///< first unit index
    std::size_t end = 0;    ///< one past last unit index
    int attempts = 0;
  };
  struct WorkerState {
    Socket sock;
    bool ready = false;       ///< hello'd + setup sent
    bool has_range = false;
    Range range;
    /// obs timestamp of the range's kAssign send (0 = telemetry off);
    /// closed into a dist.range span at commit.
    std::int64_t assign_ns = 0;
    // Units streamed for the in-flight range, staged until its kRangeDone
    // commits them; discarded wholesale when the worker is lost (exactly
    // one map used, selected by task kind).
    std::map<std::size_t, mc::McResult> staged_mc;
    std::map<std::size_t, sta::StageCharacterization> staged_lanes;
  };

  void admit_worker();
  void assign_if_possible(WorkerState& w);
  /// Handles one readable worker; returns false when the worker is gone
  /// (its range, if any, re-queued).
  bool service_worker(WorkerState& w);
  /// Stages one streamed unit (validates range membership and duplicates;
  /// throws on any violation — the caller requeues the range).
  void handle_unit(WorkerState& w, const Frame& f);
  /// Commits the in-flight range on a valid kRangeDone (echo + count must
  /// match; throws otherwise).
  void handle_range_done(WorkerState& w, const Frame& f);
  void requeue(WorkerState& w, const std::string& why);
  /// Folds every pending committed MC unit that extends the contiguous
  /// prefix into the running accumulator.
  void advance_mc_fold();
  std::size_t done_units() const noexcept {
    return desc_.task_kind == TaskKind::kSstaGrid
               ? lanes_done_
               : folded_prefix_ + mc_pending_.size();
  }

  RunDescriptor desc_;
  CoordinatorOptions opt_;
  FrameAuth auth_;
  Listener listener_;
  std::size_t n_units_ = 0;
  std::deque<Range> pending_;
  std::vector<WorkerState> workers_;
  // Bounded-memory ascending fold state.  Monte-Carlo: units [0,
  // folded_prefix_) live merged inside mc_acc_; committed units beyond the
  // prefix wait in mc_pending_ until the gap fills.  Grid: lanes_ is the
  // preallocated output, lane_got_ guards against double placement.
  mc::McResult mc_acc_;
  std::size_t folded_prefix_ = 0;
  std::map<std::size_t, mc::McResult> mc_pending_;
  std::vector<sta::StageCharacterization> lanes_;
  std::vector<std::uint8_t> lane_got_;
  std::size_t lanes_done_ = 0;
  RunMetrics metrics_;
  std::size_t staged_now_ = 0;  ///< uncommitted staged units, all workers
};

}  // namespace statpipe::dist
