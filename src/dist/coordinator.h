// Distributed run coordinator: plans the task's units, farms contiguous
// unit ranges to TCP workers, reassigns ranges lost to worker failures,
// and reassembles per-unit results in ascending unit order.
//
// Units are task-kind-specific (dist/task.h): Monte-Carlo shards or SSTA
// grid lanes.  Determinism invariant (extends the thread-count/block-width
// invariants of src/sim and src/mc to the PROCESS count, and to
// distributed lane ranges — docs/DETERMINISM.md): for Monte-Carlo, shard
// boundaries and RNG stream ids depend only on (root_seed, n_samples,
// samples_per_shard) — workers receive those in the RunDescriptor and
// replay the exact streams — and the coordinator folds shard results with
// the same ascending left fold the local engine uses.  For SSTA grids the
// lanes carry no random state and each lane executes the scalar path's
// exact floating-point sequence, so positional reassembly is trivially
// bitwise.  A run split across N workers (any N, any range sizes, any
// retry history) is therefore bitwise-identical to the single-process run
// (tests/test_dist.cpp enforces it for both kinds, including under
// injected worker failures).
//
// Failure semantics: a worker that disconnects, errors, or sends an
// invalid result forfeits its in-flight range; the range re-enters the
// queue and is handed to the next idle worker.  Each range carries an
// attempt budget (CoordinatorOptions::max_attempts); exhausting it fails
// the run loudly.  Workers may connect at any time during the run.
//
// Layer contract (src/dist, see docs/ARCHITECTURE.md): the distributed
// execution layer sits on top of mc/sta/sim/stats and may depend on all of
// them; nothing below src/dist may know it exists.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "dist/serialize.h"
#include "dist/task.h"
#include "dist/transport.h"
#include "mc/pipeline_mc.h"

namespace statpipe::dist {

struct CoordinatorOptions {
  std::string bind_host = "127.0.0.1";  ///< 0.0.0.0 for multi-machine runs
  std::uint16_t port = 0;               ///< 0 = ephemeral, see port()
  /// Units per assignment; 0 = auto (n_units / 8, min 1 — i.e. ~8
  /// assignments total, cut once at construction).  A pure scheduling
  /// knob: results are reassembled per unit, so this can never change the
  /// output, only load balance.  Validated up front: a nonzero value must
  /// be <= the run's unit count to be satisfiable.
  std::size_t units_per_range = 0;
  int max_attempts = 3;                 ///< per range, >= 1
  /// Progress bound, 0 = wait forever.  Caps both the event loop's poll
  /// (no connect/result/error at all for this long aborts the run) and
  /// every read from an admitted worker (a peer stalling mid-frame times
  /// out, forfeits its range to reassignment and is dropped).
  int idle_timeout_ms = 0;
  bool verbose = false;                 ///< progress lines on stderr
};

class Coordinator {
 public:
  /// Binds the listener immediately (so port() is valid before run());
  /// validates descriptor and options up front — zero samples / an empty
  /// grid, zero range size, or a range size exceeding the plan throw
  /// std::invalid_argument.
  Coordinator(RunDescriptor desc, CoordinatorOptions opt = {});
  ~Coordinator();

  std::uint16_t port() const noexcept { return listener_.port(); }
  const RunDescriptor& descriptor() const noexcept { return desc_; }

  /// Serves workers until every unit's result arrived, then returns the
  /// ascending-order reassembly (MC: left fold of shard results; grid:
  /// positional lane placement).  Throws std::runtime_error when a range
  /// exhausts its attempts or the idle timeout expires.
  TaskResult run();

  /// Accepts and politely dismisses (kShutdown) every connection waiting
  /// in the listener backlog, without blocking.  run() drains once on
  /// completion; a caller that spawned worker PROCESSES should keep
  /// calling this while reaping them, so a worker slow enough to connect
  /// only after the run ended is turned away instead of hanging in its
  /// setup read.
  void drain_backlog();

 private:
  struct Range {
    std::size_t begin = 0;  ///< first unit index
    std::size_t end = 0;    ///< one past last unit index
    int attempts = 0;
  };
  struct WorkerState {
    Socket sock;
    bool ready = false;       ///< hello'd + setup sent
    bool has_range = false;
    Range range;
  };

  void admit_worker();
  void assign_if_possible(WorkerState& w);
  /// Handles one readable worker; returns false when the worker is gone
  /// (its range, if any, re-queued).
  bool service_worker(WorkerState& w);
  void handle_result(WorkerState& w, const Frame& f);
  void requeue(WorkerState& w, const std::string& why);
  std::size_t done_units() const noexcept {
    return desc_.task_kind == TaskKind::kSstaGrid ? lane_results_.size()
                                                  : mc_results_.size();
  }

  RunDescriptor desc_;
  CoordinatorOptions opt_;
  Listener listener_;
  std::size_t n_units_ = 0;
  std::deque<Range> pending_;
  std::vector<WorkerState> workers_;
  // Decoded per-unit results, exactly one map populated per run (selected
  // by desc_.task_kind).  Decoding happens on receipt so a corrupt payload
  // forfeits the range within its attempt budget instead of failing the
  // final fold.
  std::map<std::size_t, mc::McResult> mc_results_;
  std::map<std::size_t, sta::StageCharacterization> lane_results_;
};

}  // namespace statpipe::dist
