// Distributed run coordinator: plans shards, farms contiguous shard ranges
// to TCP workers, reassigns ranges lost to worker failures, and merges
// per-shard results in ascending shard order.
//
// Determinism invariant (extends the thread-count/block-width invariants of
// src/sim and src/mc to the PROCESS count): shard boundaries and RNG
// stream ids depend only on (root_seed, n_samples, samples_per_shard) —
// workers receive those in the RunDescriptor and replay the exact streams
// — and the coordinator folds shard results with the same ascending left
// fold the local engine uses.  A run split across N workers (any N, any
// range sizes, any retry history) is therefore bitwise-identical to the
// single-process run at the same seed (tests/test_dist.cpp enforces it,
// including under injected worker failures).
//
// Failure semantics: a worker that disconnects, errors, or sends an
// invalid result forfeits its in-flight range; the range re-enters the
// queue and is handed to the next idle worker.  Each range carries an
// attempt budget (CoordinatorOptions::max_attempts); exhausting it fails
// the run loudly.  Workers may connect at any time during the run.
//
// Layer contract (src/dist, see docs/ARCHITECTURE.md): the distributed
// execution layer sits on top of mc/sim/stats and may depend on all of
// them; nothing below src/dist may know it exists.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "dist/serialize.h"
#include "dist/transport.h"
#include "mc/pipeline_mc.h"

namespace statpipe::dist {

struct CoordinatorOptions {
  std::string bind_host = "127.0.0.1";  ///< 0.0.0.0 for multi-machine runs
  std::uint16_t port = 0;               ///< 0 = ephemeral, see port()
  /// Shards per assignment; 0 = auto (n_shards / 8, min 1 — i.e. ~8
  /// assignments total, cut once at construction).  A pure scheduling
  /// knob: results are merged per shard, so this can never change the
  /// output, only load balance.  Validated up front: a nonzero value must
  /// be <= the run's shard count to be satisfiable.
  std::size_t shards_per_range = 0;
  int max_attempts = 3;                 ///< per range, >= 1
  /// Progress bound, 0 = wait forever.  Caps both the event loop's poll
  /// (no connect/result/error at all for this long aborts the run) and
  /// every read from an admitted worker (a peer stalling mid-frame times
  /// out, forfeits its range to reassignment and is dropped).
  int idle_timeout_ms = 0;
  bool verbose = false;                 ///< progress lines on stderr
};

class Coordinator {
 public:
  /// Binds the listener immediately (so port() is valid before run());
  /// validates descriptor and options up front — zero samples, zero range
  /// size, or a range size exceeding the plan throw std::invalid_argument.
  Coordinator(RunDescriptor desc, CoordinatorOptions opt = {});
  ~Coordinator();

  std::uint16_t port() const noexcept { return listener_.port(); }
  const RunDescriptor& descriptor() const noexcept { return desc_; }

  /// Serves workers until every shard's result arrived, then returns the
  /// ascending-order merge.  Throws std::runtime_error when a range
  /// exhausts its attempts or the idle timeout expires.
  mc::McResult run();

  /// Accepts and politely dismisses (kShutdown) every connection waiting
  /// in the listener backlog, without blocking.  run() drains once on
  /// completion; a caller that spawned worker PROCESSES should keep
  /// calling this while reaping them, so a worker slow enough to connect
  /// only after the run ended is turned away instead of hanging in its
  /// setup read.
  void drain_backlog();

 private:
  struct Range {
    std::size_t begin = 0;  ///< first shard index
    std::size_t end = 0;    ///< one past last shard index
    int attempts = 0;
  };
  struct WorkerState {
    Socket sock;
    bool ready = false;       ///< hello'd + setup sent
    bool has_range = false;
    Range range;
  };

  void admit_worker();
  void assign_if_possible(WorkerState& w);
  /// Handles one readable worker; returns false when the worker is gone
  /// (its range, if any, re-queued).
  bool service_worker(WorkerState& w);
  void handle_result(WorkerState& w, const Frame& f);
  void requeue(WorkerState& w, const std::string& why);

  RunDescriptor desc_;
  CoordinatorOptions opt_;
  Listener listener_;
  std::size_t n_shards_ = 0;
  std::deque<Range> pending_;
  std::vector<WorkerState> workers_;
  std::map<std::size_t, mc::McResult> results_;  ///< by shard index
};

}  // namespace statpipe::dist
