// Single-run distributed coordinator: the one-shot facade over the
// persistent Service (dist/service.h).
//
// Historically (wire v1–v3) the Coordinator WAS the engine — it owned the
// listener, the range queue and the fold.  Since wire v4 all of that lives
// in the multi-request Service; the Coordinator submits exactly one local
// request at construction and run() drives the Service's event loop until
// that request completes, preserving the original one-descriptor API and
// its validation/error contract for callers (run_cluster, statpipe-run,
// the optimizer's probe path and the adversarial tests).
//
// Determinism invariant (extends the thread-count/block-width invariants
// of src/sim and src/mc to the PROCESS count, and to distributed lane
// ranges — docs/DETERMINISM.md): for Monte-Carlo, shard boundaries and RNG
// stream ids depend only on (root_seed, n_samples, samples_per_shard) —
// workers receive those in the RunDescriptor and replay the exact streams
// — and the fold is the same ascending left fold the local engine uses.
// For SSTA grids the lanes carry no random state and each lane executes
// the scalar path's exact floating-point sequence, so positional
// reassembly is trivially bitwise.  A run split across N workers (any N,
// any range sizes, any retry history, any frame interleaving) is
// therefore bitwise-identical to the single-process run
// (tests/test_dist.cpp enforces it for both kinds, including under
// injected worker failures).
//
// Failure semantics: a worker that disconnects, errors, stalls past the
// read deadline, fails frame authentication or sends an invalid frame
// forfeits its in-flight range INCLUDING everything it already streamed;
// the range re-enters the queue front with a per-range attempt budget
// (CoordinatorOptions::max_attempts); exhausting it fails the run loudly.
// Workers may connect at any time during the run.
//
// Layer contract (src/dist, see docs/ARCHITECTURE.md): the distributed
// execution layer sits on top of mc/sta/sim/stats and may depend on all of
// them; nothing below src/dist may know it exists.
#pragma once

#include <cstdint>
#include <string>

#include "dist/serialize.h"
#include "dist/service.h"
#include "dist/task.h"

namespace statpipe::dist {

struct CoordinatorOptions {
  std::string bind_host = "127.0.0.1";  ///< 0.0.0.0 for multi-machine runs
  std::uint16_t port = 0;               ///< 0 = ephemeral, see port()
  /// Units per assignment; 0 = auto (n_units / 8, min 1 — i.e. ~8
  /// assignments total, cut once at submission).  A pure scheduling
  /// knob: results are reassembled per unit, so this can never change the
  /// output, only load balance.  Validated up front: a nonzero value must
  /// be <= the run's unit count to be satisfiable.
  std::size_t units_per_range = 0;
  int max_attempts = 3;                 ///< per range, >= 1
  /// Progress bound, 0 = wait forever: no connect/result/error at all for
  /// this long aborts the run (guards the event loop's poll).
  int idle_timeout_ms = 0;
  /// Per-connection read deadline on every admitted worker (0 = none).  A
  /// peer that goes silent — or drips bytes — mid-frame forfeits its range
  /// after this long instead of wedging run() (Socket::set_read_deadline_ms
  /// bounds even slow-loris drips).  Defaults to 30 s: long enough for any
  /// legitimate frame on a LAN, short enough that a stalled peer cannot
  /// hold a range hostage.
  int read_deadline_ms = 30000;
  /// Shared wire-key passphrase ("" = authentication disabled).  When set,
  /// every frame in both directions carries an HMAC-SHA256 trailer
  /// (dist/hmac.h) and unauthenticated or tampered peers are rejected.
  std::string auth_key;
  bool verbose = false;                 ///< progress lines on stderr
};

class Coordinator {
 public:
  /// Binds the listener immediately (so port() is valid before run());
  /// validates descriptor and options up front — zero samples / an empty
  /// grid, zero range size, or a range size exceeding the plan throw
  /// std::invalid_argument.
  Coordinator(RunDescriptor desc, CoordinatorOptions opt = {});
  ~Coordinator();

  std::uint16_t port() const noexcept { return svc_.port(); }
  const RunDescriptor& descriptor() const noexcept { return desc_; }

  /// Per-run accounting (complete once run() has returned; readable midway
  /// from the same thread, e.g. after a thrown run for post-mortems).
  const RunMetrics& metrics() const noexcept { return metrics_; }

  /// Serves workers until every unit's result arrived and committed, then
  /// returns the ascending-order fold (MC: the running left fold of shard
  /// results; grid: positional lane placement).  Throws std::runtime_error
  /// when a range exhausts its attempts or the idle timeout expires.
  TaskResult run();

  /// Accepts and politely dismisses (kShutdown) every connection waiting
  /// in the listener backlog, without blocking.  run() drains once on
  /// completion; a caller that spawned worker PROCESSES should keep
  /// calling this while reaping them, so a worker slow enough to connect
  /// only after the run ended is turned away instead of hanging in its
  /// setup read.
  void drain_backlog() { svc_.drain_backlog(); }

 private:
  RunDescriptor desc_;
  Service svc_;
  std::uint64_t rid_ = 0;
  RunMetrics metrics_;
};

}  // namespace statpipe::dist
