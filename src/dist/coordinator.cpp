#include "dist/coordinator.h"

#include <poll.h>

#include <algorithm>
#include <cerrno>
#include <stdexcept>
#include <utility>

#include "obs/log.h"
#include "obs/telemetry.h"

namespace statpipe::dist {

namespace {

// Structured logger (obs/log.h): `verbose` is purely the console-sink
// toggle; with telemetry enabled every line also lands in the Chrome trace
// as an instant event regardless of verbosity.
void log_line(const CoordinatorOptions& opt, const std::string& msg) {
  obs::log_info("coordinator", msg, opt.verbose);
}

const obs::SpanId& span_range() {
  static const obs::SpanId s("dist.range");
  return s;
}

}  // namespace

Coordinator::Coordinator(RunDescriptor desc, CoordinatorOptions opt)
    : desc_(std::move(desc)),
      opt_(std::move(opt)),
      auth_(FrameAuth::from_passphrase(opt_.auth_key)),
      listener_(opt_.bind_host, opt_.port) {
  // finalize_descriptor always sets a nonzero hash (FNV of a non-empty
  // stage list), and hash == 0 would additionally disable the worker-side
  // workload verification — so a zero hash means an unfinalized
  // descriptor, regardless of what seed the user picked.
  if (desc_.netlist_hash == 0)
    throw std::invalid_argument(
        "Coordinator: descriptor not finalized (netlist_hash unset; call "
        "finalize_descriptor)");
  if (opt_.max_attempts < 1)
    throw std::invalid_argument("Coordinator: max_attempts must be >= 1");
  // Validate the plan inputs with the task layer's own planner: throws on
  // zero samples / an empty grid, and gives us the unit count ranges are
  // cut from.
  n_units_ = task_unit_count(desc_);
  if (opt_.units_per_range > n_units_)
    throw std::invalid_argument(
        "Coordinator: units_per_range " +
        std::to_string(opt_.units_per_range) + " exceeds the plan's " +
        std::to_string(n_units_) + " unit(s)");
  // With streaming (wire v3) each kResult frame carries ONE unit, so the
  // frame cap bounds the unit payload, not the range — range size is a
  // pure scheduling knob with no wire ceiling.  Only a single unit too big
  // for a frame (for MC, ~8 bytes per sample of tp_samples) is rejected,
  // up front rather than after a retry cascade.
  if (task_unit_wire_bytes(desc_) + 64 > kMaxFramePayload)
    throw std::invalid_argument(
        "Coordinator: samples_per_shard " +
        std::to_string(desc_.samples_per_shard) +
        " makes a single shard's result exceed the frame payload cap; "
        "use smaller shards");
  const std::size_t per = opt_.units_per_range != 0
                              ? opt_.units_per_range
                              : std::max<std::size_t>(1, n_units_ / 8);
  for (std::size_t b = 0; b < n_units_; b += per)
    pending_.push_back({b, std::min(b + per, n_units_), 0});
  if (desc_.task_kind == TaskKind::kSstaGrid) {
    lanes_.resize(n_units_);
    lane_got_.assign(n_units_, 0);
  }
  metrics_.units = n_units_;
  metrics_.ranges = pending_.size();
  log_line(opt_, std::string("listening on ") + opt_.bind_host + ":" +
                     std::to_string(listener_.port()) + ", " +
                     task_kind_name(desc_.task_kind) + " task, " +
                     std::to_string(n_units_) + " units in " +
                     std::to_string(pending_.size()) + " ranges" +
                     (auth_.enabled ? ", authenticated wire" : ""));
}

Coordinator::~Coordinator() = default;

void Coordinator::admit_worker() {
  Socket s = listener_.accept();
  // Hello is read synchronously — it is the first thing a real worker
  // writes — but under a timeout: a peer that connects and stays silent (a
  // port scanner, a health probe on a 0.0.0.0 bind) must not wedge the
  // event loop.
  std::optional<Frame> hello;
  try {
    s.set_recv_timeout_ms(5000);
    hello = recv_frame(s, auth_);
    // From here on the read deadline bounds every read from this worker: a
    // peer that stalls MID-FRAME after poll() reported readability would
    // otherwise block run() forever, beyond idle_timeout_ms's reach (it
    // only guards poll), and a slow-loris drip would outlast any plain
    // recv timeout.  A deadline trip surfaces as a recv error -> requeue +
    // drop, so the range is reassigned instead of wedging.
    if (opt_.read_deadline_ms > 0)
      s.set_read_deadline_ms(opt_.read_deadline_ms);
    else
      s.set_recv_timeout_ms(opt_.idle_timeout_ms > 0 ? opt_.idle_timeout_ms
                                                     : 0);
  } catch (const std::exception& e) {
    log_line(opt_, std::string("rejecting connection: ") + e.what());
    return;
  }
  if (!hello || hello->type != MsgType::kHello) {
    log_line(opt_, "rejecting connection: no hello");
    return;
  }
  ByteWriter w;
  write_run_descriptor(w, desc_);
  WorkerState ws;
  ws.sock = std::move(s);
  try {
    send_frame(ws.sock, MsgType::kSetup, w.bytes(), auth_);
  } catch (const std::exception& e) {
    log_line(opt_, std::string("setup failed: ") + e.what());
    return;
  }
  ws.ready = true;
  ++metrics_.workers_admitted;
  static obs::Counter c_admitted("dist.workers_admitted");
  c_admitted.add();
  assign_if_possible(ws);
  workers_.push_back(std::move(ws));
  log_line(opt_, "worker connected (" + std::to_string(workers_.size()) +
                     " total)");
}

void Coordinator::assign_if_possible(WorkerState& w) {
  if (!w.sock.valid() || !w.ready || w.has_range || pending_.empty()) return;
  Range r = pending_.front();
  pending_.pop_front();
  r.attempts += 1;
  ByteWriter out;
  out.u64(r.begin);
  out.u64(r.end);
  try {
    send_frame(w.sock, MsgType::kAssign, out.bytes(), auth_);
  } catch (const std::exception&) {
    // Undo fully: the attempt never reached a worker, so it must not burn
    // the range's attempt budget.  Closing the socket marks the worker for
    // removal at the top of the next event-loop iteration.
    r.attempts -= 1;
    pending_.push_front(r);
    w.sock.close();
    return;
  }
  w.has_range = true;
  w.range = r;
  w.staged_mc.clear();
  w.staged_lanes.clear();
  w.assign_ns = obs::enabled() ? obs::now_ns() : 0;
  ++metrics_.assigns;
  if (r.attempts > 1) ++metrics_.retries;
  static obs::Counter c_assigns("dist.assigns");
  c_assigns.add();
  log_line(opt_, "assigned units [" + std::to_string(r.begin) + ", " +
                     std::to_string(r.end) + ") attempt " +
                     std::to_string(r.attempts));
}

void Coordinator::requeue(WorkerState& w, const std::string& why) {
  if (w.has_range) {
    // The worker forfeits the whole range: staged units are part of an
    // uncommitted stream and are discarded with it — a partially streamed
    // range never contributes to the fold (docs/DETERMINISM.md).
    // Info, not warn: forfeits are routine under fault injection (the chaos
    // harness triggers them by the dozen) and the run recovers by design;
    // only exhausting the attempt budget is an error, and that throws.
    const std::size_t staged = w.staged_mc.size() + w.staged_lanes.size();
    log_line(opt_, "range [" + std::to_string(w.range.begin) + ", " +
                       std::to_string(w.range.end) + ") lost (" +
                       std::to_string(staged) +
                       " staged unit(s) discarded): " + why);
    ++metrics_.forfeits;
    metrics_.units_discarded += staged;
    staged_now_ -= staged;
    static obs::Counter c_requeues("dist.requeues");
    c_requeues.add();
    static obs::Counter c_discarded("dist.units_discarded");
    c_discarded.add(staged);
    w.staged_mc.clear();
    w.staged_lanes.clear();
    if (w.range.attempts >= opt_.max_attempts)
      throw std::runtime_error(
          "dist: unit range [" + std::to_string(w.range.begin) + ", " +
          std::to_string(w.range.end) + ") failed " +
          std::to_string(w.range.attempts) + " attempt(s); last: " + why);
    pending_.push_front(w.range);
    w.has_range = false;
  }
  w.sock.close();
}

void Coordinator::handle_unit(WorkerState& w, const Frame& f) {
  if (!w.has_range)
    throw std::runtime_error("result frame from a worker with no assignment");
  ByteReader r(f.payload);
  const std::uint64_t unit = r.u64();
  if (unit < w.range.begin || unit >= w.range.end)
    throw std::runtime_error("unit " + std::to_string(unit) +
                             " outside assigned range [" +
                             std::to_string(w.range.begin) + ", " +
                             std::to_string(w.range.end) + ")");
  const bool dup = desc_.task_kind == TaskKind::kSstaGrid
                       ? w.staged_lanes.count(unit) != 0
                       : w.staged_mc.count(unit) != 0;
  if (dup)
    throw std::runtime_error("duplicate unit " + std::to_string(unit) +
                             " in result stream");
  // Decode on receipt, into the worker's staging area: a corrupt payload
  // forfeits the range within its attempt budget instead of failing the
  // final fold, and nothing touches the committed fold until kRangeDone.
  if (desc_.task_kind == TaskKind::kSstaGrid)
    w.staged_lanes.emplace(unit, read_stage_characterization(r));
  else
    w.staged_mc.emplace(unit, read_mc_result(r));
  r.expect_done();
  ++staged_now_;
  metrics_.peak_staged_units = std::max(metrics_.peak_staged_units, staged_now_);
  static obs::Counter c_staged("dist.units_staged");
  c_staged.add();
}

void Coordinator::handle_range_done(WorkerState& w, const Frame& f) {
  if (!w.has_range)
    throw std::runtime_error(
        "range-done frame from a worker with no assignment");
  ByteReader r(f.payload);
  const std::uint64_t begin = r.u64();
  const std::uint64_t end = r.u64();
  const std::uint64_t count = r.u64();
  r.expect_done();
  if (begin != w.range.begin || end != w.range.end)
    throw std::runtime_error("range-done echoes [" + std::to_string(begin) +
                             ", " + std::to_string(end) +
                             ") for assignment [" +
                             std::to_string(w.range.begin) + ", " +
                             std::to_string(w.range.end) + ")");
  const std::size_t staged = desc_.task_kind == TaskKind::kSstaGrid
                                 ? w.staged_lanes.size()
                                 : w.staged_mc.size();
  if (count != end - begin || staged != end - begin)
    throw std::runtime_error(
        "range-done claims " + std::to_string(count) + " unit(s), " +
        std::to_string(staged) + " staged, for a range of " +
        std::to_string(end - begin));
  // Commit: every unit of the range is present exactly once (membership
  // and duplicates were enforced at staging, so a full-size staging map
  // IS the whole range).  MC units enter the pending map and the
  // contiguous prefix folds immediately; grid lanes place positionally.
  if (desc_.task_kind == TaskKind::kSstaGrid) {
    for (auto& [unit, lane] : w.staged_lanes) {
      if (lane_got_[unit])
        throw std::runtime_error("lane " + std::to_string(unit) +
                                 " committed twice");
      lanes_[unit] = lane;
      lane_got_[unit] = 1;
      ++lanes_done_;
    }
    w.staged_lanes.clear();
  } else {
    for (auto& [unit, part] : w.staged_mc) {
      if (unit < folded_prefix_ || mc_pending_.count(unit) != 0)
        throw std::runtime_error("unit " + std::to_string(unit) +
                                 " committed twice");
      mc_pending_.emplace(unit, std::move(part));
    }
    w.staged_mc.clear();
    advance_mc_fold();
  }
  w.has_range = false;
  staged_now_ -= end - begin;
  ++metrics_.commits;
  static obs::Counter c_commits("dist.commits");
  c_commits.add();
  static obs::Counter c_units("dist.units_committed");
  c_units.add(end - begin);
  // Assign→commit latency for this range, closed across call sites via
  // record_span (the RAII form cannot straddle the event loop).
  if (w.assign_ns > 0 && obs::enabled())
    obs::record_span(span_range(), w.assign_ns, obs::now_ns(),
                     static_cast<std::int64_t>(begin));
  w.assign_ns = 0;
  log_line(opt_, "range [" + std::to_string(begin) + ", " +
                     std::to_string(end) + ") committed; " +
                     std::to_string(done_units()) + "/" +
                     std::to_string(n_units_) + " units (folded prefix " +
                     std::to_string(desc_.task_kind == TaskKind::kSstaGrid
                                        ? lanes_done_
                                        : folded_prefix_) +
                     ")");
}

void Coordinator::advance_mc_fold() {
  // Left fold in ascending unit order — the identical fold
  // GateLevelMonteCarlo::run applies locally — consuming the pending map
  // as long as it extends the contiguous prefix.  Memory stays bounded by
  // the out-of-order window: a committed range can only wait while some
  // earlier range is still in flight.
  auto it = mc_pending_.begin();
  while (it != mc_pending_.end() && it->first == folded_prefix_) {
    if (folded_prefix_ == 0)
      mc_acc_ = std::move(it->second);
    else
      mc_acc_.merge(std::move(it->second));
    it = mc_pending_.erase(it);
    ++folded_prefix_;
  }
}

bool Coordinator::service_worker(WorkerState& w) {
  std::optional<Frame> f;
  try {
    f = recv_frame(w.sock, auth_);
  } catch (const std::exception& e) {
    requeue(w, e.what());
    return false;
  }
  if (!f) {
    requeue(w, "worker disconnected");
    return false;
  }
  switch (f->type) {
    case MsgType::kResult:
    case MsgType::kRangeDone:
      try {
        if (f->type == MsgType::kResult)
          handle_unit(w, *f);
        else
          handle_range_done(w, *f);
      } catch (const std::exception& e) {
        // std::exception, not just runtime_error: a corrupt frame can also
        // surface as length_error/bad_alloc from the deserializer, and any
        // of those must forfeit the range (bounded by its attempt budget),
        // not abort the run.
        requeue(w, e.what());
        return false;
      }
      if (!w.has_range) assign_if_possible(w);
      return true;
    case MsgType::kError: {
      ByteReader r(f->payload);
      requeue(w, "worker error: " + r.str());
      return false;
    }
    default:
      requeue(w, "unexpected frame type " +
                     std::to_string(static_cast<int>(f->type)));
      return false;
  }
}

TaskResult Coordinator::run() {
  const std::int64_t run_t0 = obs::now_ns();
  while (done_units() < n_units_) {
    // Drop workers whose sockets died outside service_worker (e.g. a
    // failed kAssign send) — a closed-socket entry must not linger as a
    // zombie the assignment loop keeps visiting.
    std::erase_if(workers_,
                  [](const WorkerState& w) { return !w.sock.valid(); });
    std::vector<pollfd> fds;
    fds.push_back({listener_.fd(), POLLIN, 0});
    for (const WorkerState& w : workers_)
      fds.push_back({w.sock.fd(), POLLIN, 0});
    const int timeout = opt_.idle_timeout_ms > 0 ? opt_.idle_timeout_ms : -1;
    const int rc = ::poll(fds.data(), fds.size(), timeout);
    if (rc < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("dist: poll failed");
    }
    if (rc == 0)
      throw std::runtime_error(
          "dist: no worker progress for " +
          std::to_string(opt_.idle_timeout_ms) + " ms (" +
          std::to_string(done_units()) + "/" + std::to_string(n_units_) +
          " units done)");
    if (fds[0].revents & POLLIN) admit_worker();
    // Service in reverse so erasing a dead worker never shifts an entry we
    // have yet to visit (fds[i+1] belongs to workers_[i] of this snapshot;
    // admit_worker only appends).
    for (std::size_t i = workers_.size(); i-- > 0;) {
      if (i + 1 >= fds.size()) continue;  // connected this iteration
      if ((fds[i + 1].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      if (!service_worker(workers_[i]))
        workers_.erase(workers_.begin() + static_cast<std::ptrdiff_t>(i));
    }
    // A result may have freed a worker while the queue was empty at its
    // last assignment opportunity; top everyone up.
    for (WorkerState& w : workers_) assign_if_possible(w);
  }
  // Every unit committed: shut workers down politely.  The fold already
  // happened incrementally in ascending unit order (the same order the
  // local engine folds), so the result is ready the moment the last range
  // commits.
  for (WorkerState& w : workers_) {
    try {
      send_frame(w.sock, MsgType::kShutdown, {}, auth_);
    } catch (const std::exception&) {
      // Worker already gone; shutdown is best-effort.
    }
  }
  // Drain the accept backlog: a worker whose connect landed after the last
  // result would otherwise sit blocked waiting for kSetup forever while
  // its parent waits in waitpid.  Each straggler gets a kShutdown (which
  // run_worker treats as a clean no-work session) instead of silence.
  // Callers that spawned worker processes keep calling drain_backlog()
  // while reaping them, closing the residual window where a slow-starting
  // worker connects only after this first drain.
  drain_backlog();
  metrics_.wall_ms =
      static_cast<double>(obs::now_ns() - run_t0) / 1e6;
  TaskResult out;
  out.kind = desc_.task_kind;
  if (desc_.task_kind == TaskKind::kSstaGrid) {
    out.lanes = std::move(lanes_);
    return out;
  }
  mc_acc_.label = "gate-level MC";
  out.mc = std::move(mc_acc_);
  return out;
}

void Coordinator::drain_backlog() {
  for (;;) {
    pollfd lfd{listener_.fd(), POLLIN, 0};
    const int rc = ::poll(&lfd, 1, 0);
    if (rc < 0 && errno == EINTR) continue;
    if (rc <= 0 || (lfd.revents & POLLIN) == 0) break;
    try {
      Socket s = listener_.accept();
      s.set_recv_timeout_ms(5000);
      if (recv_frame(s, auth_))  // their hello
        send_frame(s, MsgType::kShutdown, {}, auth_);
    } catch (const std::exception& e) {
      log_line(opt_, std::string("backlog drain: ") + e.what());
    }
  }
}

}  // namespace statpipe::dist
