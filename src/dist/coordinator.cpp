#include "dist/coordinator.h"

#include <poll.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <stdexcept>
#include <utility>

namespace statpipe::dist {

namespace {

void log_line(const CoordinatorOptions& opt, const std::string& msg) {
  if (opt.verbose) std::fprintf(stderr, "[coordinator] %s\n", msg.c_str());
}

}  // namespace

Coordinator::Coordinator(RunDescriptor desc, CoordinatorOptions opt)
    : desc_(std::move(desc)),
      opt_(std::move(opt)),
      listener_(opt_.bind_host, opt_.port) {
  // finalize_descriptor always sets a nonzero hash (FNV of a non-empty
  // stage list), and hash == 0 would additionally disable the worker-side
  // workload verification — so a zero hash means an unfinalized
  // descriptor, regardless of what seed the user picked.
  if (desc_.netlist_hash == 0)
    throw std::invalid_argument(
        "Coordinator: descriptor not finalized (netlist_hash unset; call "
        "finalize_descriptor)");
  if (opt_.max_attempts < 1)
    throw std::invalid_argument("Coordinator: max_attempts must be >= 1");
  // Validate the plan inputs with the task layer's own planner: throws on
  // zero samples / an empty grid, and gives us the unit count ranges are
  // cut from.
  n_units_ = task_unit_count(desc_);
  if (opt_.units_per_range > n_units_)
    throw std::invalid_argument(
        "Coordinator: units_per_range " +
        std::to_string(opt_.units_per_range) + " exceeds the plan's " +
        std::to_string(n_units_) + " unit(s)");
  // Cut the unit space into contiguous ranges up front.  Range size is a
  // pure scheduling knob — results are reassembled per unit, so it can
  // never change the output, only load balance.  It IS bounded by the
  // wire: a range's kResult frame carries ~task_unit_wire_bytes per unit
  // (for MC, ~8 bytes per sample of tp_samples), so the range must fit
  // kMaxFramePayload with margin — reject an explicit size that cannot,
  // cap the auto size, and fail up front (not after a retry cascade) when
  // even one unit is too big.
  const std::size_t bytes_per_unit = task_unit_wire_bytes(desc_);
  const std::size_t cap_units =
      std::max<std::size_t>(1, (kMaxFramePayload / 2) / bytes_per_unit);
  if (bytes_per_unit > kMaxFramePayload / 2)
    throw std::invalid_argument(
        "Coordinator: samples_per_shard " +
        std::to_string(desc_.samples_per_shard) +
        " makes a single shard's result exceed the frame payload cap; "
        "use smaller shards");
  if (opt_.units_per_range > cap_units)
    throw std::invalid_argument(
        "Coordinator: units_per_range " +
        std::to_string(opt_.units_per_range) + " would exceed the " +
        std::to_string(kMaxFramePayload) +
        "-byte frame payload cap (max " + std::to_string(cap_units) +
        " units per range)");
  const std::size_t per =
      opt_.units_per_range != 0
          ? opt_.units_per_range
          : std::min(cap_units, std::max<std::size_t>(1, n_units_ / 8));
  for (std::size_t b = 0; b < n_units_; b += per)
    pending_.push_back({b, std::min(b + per, n_units_), 0});
  log_line(opt_, std::string("listening on ") + opt_.bind_host + ":" +
                     std::to_string(listener_.port()) + ", " +
                     task_kind_name(desc_.task_kind) + " task, " +
                     std::to_string(n_units_) + " units in " +
                     std::to_string(pending_.size()) + " ranges");
}

Coordinator::~Coordinator() = default;

void Coordinator::admit_worker() {
  Socket s = listener_.accept();
  // Hello is read synchronously — it is the first thing a real worker
  // writes — but under a timeout: a peer that connects and stays silent (a
  // port scanner, a health probe on a 0.0.0.0 bind) must not wedge the
  // event loop.
  std::optional<Frame> hello;
  try {
    s.set_recv_timeout_ms(5000);
    hello = recv_frame(s);
    // From here on the idle timeout bounds every read from this worker: a
    // peer that stalls MID-FRAME after poll() reported readability would
    // otherwise block run() forever, beyond idle_timeout_ms's reach (it
    // only guards poll).  A timed-out read surfaces as a recv error ->
    // requeue + drop, so the range is reassigned instead of wedging.
    s.set_recv_timeout_ms(opt_.idle_timeout_ms > 0 ? opt_.idle_timeout_ms
                                                   : 0);
  } catch (const std::exception& e) {
    log_line(opt_, std::string("rejecting connection: ") + e.what());
    return;
  }
  if (!hello || hello->type != MsgType::kHello) {
    log_line(opt_, "rejecting connection: no hello");
    return;
  }
  ByteWriter w;
  write_run_descriptor(w, desc_);
  WorkerState ws;
  ws.sock = std::move(s);
  try {
    send_frame(ws.sock, MsgType::kSetup, w.bytes());
  } catch (const std::exception& e) {
    log_line(opt_, std::string("setup failed: ") + e.what());
    return;
  }
  ws.ready = true;
  assign_if_possible(ws);
  workers_.push_back(std::move(ws));
  log_line(opt_, "worker connected (" + std::to_string(workers_.size()) +
                     " total)");
}

void Coordinator::assign_if_possible(WorkerState& w) {
  if (!w.sock.valid() || !w.ready || w.has_range || pending_.empty()) return;
  Range r = pending_.front();
  pending_.pop_front();
  r.attempts += 1;
  ByteWriter out;
  out.u64(r.begin);
  out.u64(r.end);
  try {
    send_frame(w.sock, MsgType::kAssign, out.bytes());
  } catch (const std::exception&) {
    // Undo fully: the attempt never reached a worker, so it must not burn
    // the range's attempt budget.  Closing the socket marks the worker for
    // removal at the top of the next event-loop iteration.
    r.attempts -= 1;
    pending_.push_front(r);
    w.sock.close();
    return;
  }
  w.has_range = true;
  w.range = r;
  log_line(opt_, "assigned units [" + std::to_string(r.begin) + ", " +
                     std::to_string(r.end) + ") attempt " +
                     std::to_string(r.attempts));
}

void Coordinator::requeue(WorkerState& w, const std::string& why) {
  if (w.has_range) {
    log_line(opt_, "range [" + std::to_string(w.range.begin) + ", " +
                       std::to_string(w.range.end) + ") lost: " + why);
    if (w.range.attempts >= opt_.max_attempts)
      throw std::runtime_error(
          "dist: unit range [" + std::to_string(w.range.begin) + ", " +
          std::to_string(w.range.end) + ") failed " +
          std::to_string(w.range.attempts) + " attempt(s); last: " + why);
    pending_.push_front(w.range);
    w.has_range = false;
  }
  w.sock.close();
}

void Coordinator::handle_result(WorkerState& w, const Frame& f) {
  ByteReader r(f.payload);
  const std::uint64_t begin = r.u64();
  const std::uint64_t end = r.u64();
  if (!w.has_range || begin != w.range.begin || end != w.range.end)
    throw std::runtime_error("unexpected result range [" +
                             std::to_string(begin) + ", " +
                             std::to_string(end) + ")");
  const std::uint64_t count = r.u64();
  if (count != end - begin)
    throw std::runtime_error("result carries " + std::to_string(count) +
                             " unit(s) for a range of " +
                             std::to_string(end - begin));
  // Decode into range-local staging first: a payload that turns corrupt
  // halfway through must forfeit the whole range, not leave partial units
  // behind.
  std::map<std::size_t, mc::McResult> mc_parts;
  std::map<std::size_t, sta::StageCharacterization> lane_parts;
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t unit = r.u64();
    const bool dup = desc_.task_kind == TaskKind::kSstaGrid
                         ? lane_parts.count(unit) != 0
                         : mc_parts.count(unit) != 0;
    if (unit < begin || unit >= end || dup)
      throw std::runtime_error("bad unit index " + std::to_string(unit) +
                               " in result range");
    if (desc_.task_kind == TaskKind::kSstaGrid)
      lane_parts.emplace(unit, read_stage_characterization(r));
    else
      mc_parts.emplace(unit, read_mc_result(r));
  }
  r.expect_done();
  for (auto& [unit, part] : mc_parts) mc_results_[unit] = std::move(part);
  for (auto& [unit, part] : lane_parts) lane_results_[unit] = part;
  w.has_range = false;
  log_line(opt_, "range [" + std::to_string(begin) + ", " +
                     std::to_string(end) + ") done; " +
                     std::to_string(done_units()) + "/" +
                     std::to_string(n_units_) + " units");
}

bool Coordinator::service_worker(WorkerState& w) {
  std::optional<Frame> f;
  try {
    f = recv_frame(w.sock);
  } catch (const std::exception& e) {
    requeue(w, e.what());
    return false;
  }
  if (!f) {
    requeue(w, "worker disconnected");
    return false;
  }
  switch (f->type) {
    case MsgType::kResult:
      try {
        handle_result(w, *f);
      } catch (const std::exception& e) {
        // std::exception, not just runtime_error: a corrupt frame can also
        // surface as length_error/bad_alloc from the deserializer, and any
        // of those must forfeit the range (bounded by its attempt budget),
        // not abort the run.
        requeue(w, e.what());
        return false;
      }
      assign_if_possible(w);
      return true;
    case MsgType::kError: {
      ByteReader r(f->payload);
      requeue(w, "worker error: " + r.str());
      return false;
    }
    default:
      requeue(w, "unexpected frame type " +
                     std::to_string(static_cast<int>(f->type)));
      return false;
  }
}

TaskResult Coordinator::run() {
  while (done_units() < n_units_) {
    // Drop workers whose sockets died outside service_worker (e.g. a
    // failed kAssign send) — a closed-socket entry must not linger as a
    // zombie the assignment loop keeps visiting.
    std::erase_if(workers_,
                  [](const WorkerState& w) { return !w.sock.valid(); });
    std::vector<pollfd> fds;
    fds.push_back({listener_.fd(), POLLIN, 0});
    for (const WorkerState& w : workers_)
      fds.push_back({w.sock.fd(), POLLIN, 0});
    const int timeout = opt_.idle_timeout_ms > 0 ? opt_.idle_timeout_ms : -1;
    const int rc = ::poll(fds.data(), fds.size(), timeout);
    if (rc < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("dist: poll failed");
    }
    if (rc == 0)
      throw std::runtime_error(
          "dist: no worker progress for " +
          std::to_string(opt_.idle_timeout_ms) + " ms (" +
          std::to_string(done_units()) + "/" + std::to_string(n_units_) +
          " units done)");
    if (fds[0].revents & POLLIN) admit_worker();
    // Service in reverse so erasing a dead worker never shifts an entry we
    // have yet to visit (fds[i+1] belongs to workers_[i] of this snapshot;
    // admit_worker only appends).
    for (std::size_t i = workers_.size(); i-- > 0;) {
      if (i + 1 >= fds.size()) continue;  // connected this iteration
      if ((fds[i + 1].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      if (!service_worker(workers_[i]))
        workers_.erase(workers_.begin() + static_cast<std::ptrdiff_t>(i));
    }
    // A result may have freed a worker while the queue was empty at its
    // last assignment opportunity; top everyone up.
    for (WorkerState& w : workers_) assign_if_possible(w);
  }
  // Every unit arrived: shut workers down politely, then reassemble
  // ascending — for MC the identical left fold GateLevelMonteCarlo::run
  // applies locally, for grids positional lane placement.
  for (WorkerState& w : workers_) {
    try {
      send_frame(w.sock, MsgType::kShutdown, {});
    } catch (const std::exception&) {
      // Worker already gone; shutdown is best-effort.
    }
  }
  // Drain the accept backlog: a worker whose connect landed after the last
  // result would otherwise sit blocked waiting for kSetup forever while
  // its parent waits in waitpid.  Each straggler gets a kShutdown (which
  // run_worker treats as a clean no-work session) instead of silence.
  // Callers that spawned worker processes keep calling drain_backlog()
  // while reaping them, closing the residual window where a slow-starting
  // worker connects only after this first drain.
  drain_backlog();
  TaskResult out;
  out.kind = desc_.task_kind;
  if (desc_.task_kind == TaskKind::kSstaGrid) {
    out.lanes.resize(n_units_);
    for (auto& [unit, lane] : lane_results_) out.lanes[unit] = lane;
    return out;
  }
  auto it = mc_results_.begin();
  mc::McResult acc = std::move(it->second);
  for (++it; it != mc_results_.end(); ++it) acc.merge(std::move(it->second));
  acc.label = "gate-level MC";
  out.mc = std::move(acc);
  return out;
}

void Coordinator::drain_backlog() {
  for (;;) {
    pollfd lfd{listener_.fd(), POLLIN, 0};
    const int rc = ::poll(&lfd, 1, 0);
    if (rc < 0 && errno == EINTR) continue;
    if (rc <= 0 || (lfd.revents & POLLIN) == 0) break;
    try {
      Socket s = listener_.accept();
      s.set_recv_timeout_ms(5000);
      if (recv_frame(s))  // their hello
        send_frame(s, MsgType::kShutdown, {});
    } catch (const std::exception& e) {
      log_line(opt_, std::string("backlog drain: ") + e.what());
    }
  }
}

}  // namespace statpipe::dist
