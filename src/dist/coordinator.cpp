#include "dist/coordinator.h"

#include <utility>

namespace statpipe::dist {

namespace {

ServiceOptions to_service_options(const CoordinatorOptions& opt) {
  ServiceOptions s;
  s.bind_host = opt.bind_host;
  s.port = opt.port;
  s.units_per_range = opt.units_per_range;
  s.max_attempts = opt.max_attempts;
  s.idle_timeout_ms = opt.idle_timeout_ms;
  s.read_deadline_ms = opt.read_deadline_ms;
  s.auth_key = opt.auth_key;
  // The one-shot path has no resubmission to hit a cache with, and the v3
  // semantics it preserves predate the cache — keep it out of the loop.
  s.cache_max_bytes = 0;
  s.verbose = opt.verbose;
  return s;
}

}  // namespace

Coordinator::Coordinator(RunDescriptor desc, CoordinatorOptions opt)
    : desc_(std::move(desc)), svc_(to_service_options(opt)) {
  // Submitting here (not in run()) keeps the v3 contract that every
  // descriptor/options validation throws std::invalid_argument from the
  // CONSTRUCTOR, before any worker is spawned against the port.
  rid_ = svc_.submit_local(desc_);
}

Coordinator::~Coordinator() = default;

TaskResult Coordinator::run() {
  svc_.run([this] { return svc_.local_done(rid_); });
  svc_.shutdown_workers();
  svc_.drain_backlog();
  // Snapshot before take_local_result: taking (or rethrowing a failure)
  // consumes the request, and metrics() must stay readable afterwards —
  // including for post-mortems on a thrown run.
  metrics_ = svc_.local_metrics(rid_);
  return svc_.take_local_result(rid_);
}

}  // namespace statpipe::dist
