#include "dist/workload.h"

#include <stdexcept>
#include <utility>

#include "netlist/generators.h"
#include "stats/rng.h"

namespace statpipe::dist {

namespace {

std::vector<std::string> split_names(const std::string& workload) {
  std::vector<std::string> names;
  std::string cur;
  for (char c : workload) {
    if (c == ',') {
      if (!cur.empty()) names.push_back(std::move(cur));
      cur.clear();
    } else if (c != ' ') {
      cur += c;
    }
  }
  if (!cur.empty()) names.push_back(std::move(cur));
  if (names.empty())
    throw std::invalid_argument("dist: empty workload name");
  return names;
}

process::VariationSpec spec_of(const RunDescriptor& d) {
  process::VariationSpec spec;
  spec.sigma_vth_inter = d.sigma_vth_inter;
  spec.sigma_vth_systematic = d.sigma_vth_systematic;
  spec.correlation_length = d.correlation_length;
  spec.enable_rdf = d.enable_rdf != 0;
  spec.sigma_l_inter_rel = d.sigma_l_inter_rel;
  spec.sigma_l_systematic_rel = d.sigma_l_systematic_rel;
  return spec;
}

}  // namespace

std::uint64_t hash_stages(const std::vector<netlist::Netlist>& stages) {
  // FNV-1a fold of the per-stage structural hashes: order-sensitive, so
  // swapping two pipeline stages changes the workload identity.
  std::uint64_t h = netlist::kFnvOffsetBasis;
  for (const auto& s : stages)
    h = netlist::fnv1a_fold(h, s.structural_hash());
  return h;
}

std::unique_ptr<Workload> Workload::make(const RunDescriptor& desc) {
  std::unique_ptr<Workload> w(new Workload());
  for (const std::string& name : split_names(desc.workload))
    w->stages_.push_back(netlist::iscas_like(name));  // throws on unknown
  w->hash_ = hash_stages(w->stages_);
  if (desc.netlist_hash != 0 && desc.netlist_hash != w->hash_)
    throw std::invalid_argument(
        "dist: workload '" + desc.workload + "' hash mismatch (descriptor " +
        std::to_string(desc.netlist_hash) + ", rebuilt " +
        std::to_string(w->hash_) +
        ") — coordinator and worker builds disagree on the netlist");
  w->model_ =
      std::make_unique<device::AlphaPowerModel>(process::Technology{});
  device::LatchTiming timing;
  timing.tcq_ps = desc.latch_tcq_ps;
  timing.tsetup_ps = desc.latch_tsetup_ps;
  timing.random_sigma_rel = desc.latch_random_sigma_rel;
  w->latch_ = std::make_unique<device::LatchModel>(timing, *w->model_);
  std::vector<const netlist::Netlist*> views;
  views.reserve(w->stages_.size());
  for (const auto& s : w->stages_) views.push_back(&s);
  sta::StaOptions sta_opt;
  sta_opt.output_load = desc.output_load;
  w->engine_ = std::make_unique<mc::GateLevelMonteCarlo>(
      std::move(views), *w->model_, spec_of(desc), *w->latch_, sta_opt);
  return w;
}

sim::ExecutionOptions Workload::exec(const RunDescriptor& desc) const {
  sim::ExecutionOptions e;
  e.samples_per_shard = desc.samples_per_shard;
  e.block_width = desc.block_width;
  e.threads = 0;  // local pool's width; invisible in the result
  return e;
}

void finalize_descriptor(RunDescriptor& desc) {
  if (desc.n_samples == 0)
    throw std::invalid_argument("dist: descriptor with zero samples");
  const std::unique_ptr<Workload> w = Workload::make(desc);
  desc.netlist_hash = w->stage_hash();
  desc.root_seed = derive_root_seed(desc.seed);
}

mc::McResult run_local(const RunDescriptor& desc) {
  const std::unique_ptr<Workload> w = Workload::make(desc);
  stats::Rng rng(desc.seed);
  return w->engine().run(desc.n_samples, rng, w->exec(desc));
}

}  // namespace statpipe::dist
