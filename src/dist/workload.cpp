#include "dist/workload.h"

#include <stdexcept>
#include <utility>

#include "netlist/generators.h"
#include "stats/rng.h"

namespace statpipe::dist {

std::vector<std::string> split_workload_names(const std::string& workload) {
  std::vector<std::string> names;
  std::string cur;
  for (char c : workload) {
    if (c == ',') {
      if (!cur.empty()) names.push_back(std::move(cur));
      cur.clear();
    } else if (c != ' ') {
      cur += c;
    }
  }
  if (!cur.empty()) names.push_back(std::move(cur));
  if (names.empty())
    throw std::invalid_argument("dist: empty workload name");
  return names;
}

process::Technology descriptor_technology(const RunDescriptor& d) {
  process::Technology tech;
  tech.vdd = d.tech_vdd;
  tech.vth0 = d.tech_vth0;
  tech.leff = d.tech_leff;
  tech.wmin = d.tech_wmin;
  tech.alpha = d.tech_alpha;
  tech.tau_ps = d.tech_tau_ps;
  tech.avt = d.tech_avt;
  return tech;
}

void set_descriptor_technology(RunDescriptor& d,
                               const process::Technology& tech) {
  d.tech_vdd = tech.vdd;
  d.tech_vth0 = tech.vth0;
  d.tech_leff = tech.leff;
  d.tech_wmin = tech.wmin;
  d.tech_alpha = tech.alpha;
  d.tech_tau_ps = tech.tau_ps;
  d.tech_avt = tech.avt;
}

process::VariationSpec descriptor_spec(const RunDescriptor& d) {
  process::VariationSpec spec;
  spec.sigma_vth_inter = d.sigma_vth_inter;
  spec.sigma_vth_systematic = d.sigma_vth_systematic;
  spec.correlation_length = d.correlation_length;
  spec.enable_rdf = d.enable_rdf != 0;
  spec.sigma_l_inter_rel = d.sigma_l_inter_rel;
  spec.sigma_l_systematic_rel = d.sigma_l_systematic_rel;
  return spec;
}

void set_descriptor_spec(RunDescriptor& d, const process::VariationSpec& s) {
  d.sigma_vth_inter = s.sigma_vth_inter;
  d.sigma_vth_systematic = s.sigma_vth_systematic;
  d.correlation_length = s.correlation_length;
  d.enable_rdf = s.enable_rdf ? 1 : 0;
  d.sigma_l_inter_rel = s.sigma_l_inter_rel;
  d.sigma_l_systematic_rel = s.sigma_l_systematic_rel;
}

std::uint64_t hash_stages(const std::vector<netlist::Netlist>& stages) {
  // FNV-1a fold of the per-stage structural hashes: order-sensitive, so
  // swapping two pipeline stages changes the workload identity.
  std::uint64_t h = netlist::kFnvOffsetBasis;
  for (const auto& s : stages)
    h = netlist::fnv1a_fold(h, s.structural_hash());
  return h;
}

std::unique_ptr<Workload> Workload::make(const RunDescriptor& desc) {
  std::unique_ptr<Workload> w(new Workload());
  for (const std::string& name : split_workload_names(desc.workload))
    w->stages_.push_back(netlist::iscas_like(name));  // throws on unknown
  w->hash_ = hash_stages(w->stages_);
  if (desc.netlist_hash != 0 && desc.netlist_hash != w->hash_)
    throw std::invalid_argument(
        "dist: workload '" + desc.workload + "' hash mismatch (descriptor " +
        std::to_string(desc.netlist_hash) + ", rebuilt " +
        std::to_string(w->hash_) +
        ") — coordinator and worker builds disagree on the netlist");
  w->model_ =
      std::make_unique<device::AlphaPowerModel>(descriptor_technology(desc));
  device::LatchTiming timing;
  timing.tcq_ps = desc.latch_tcq_ps;
  timing.tsetup_ps = desc.latch_tsetup_ps;
  timing.random_sigma_rel = desc.latch_random_sigma_rel;
  w->latch_ = std::make_unique<device::LatchModel>(timing, *w->model_);
  std::vector<const netlist::Netlist*> views;
  views.reserve(w->stages_.size());
  for (const auto& s : w->stages_) views.push_back(&s);
  sta::StaOptions sta_opt;
  sta_opt.output_load = desc.output_load;
  w->engine_ = std::make_unique<mc::GateLevelMonteCarlo>(
      std::move(views), *w->model_, descriptor_spec(desc), *w->latch_,
      sta_opt);
  return w;
}

netlist::Netlist build_grid_stage(const RunDescriptor& desc) {
  const auto names = split_workload_names(desc.workload);
  if (names.size() != 1)
    throw std::invalid_argument(
        "dist: ssta-grid workload must name exactly one circuit, got " +
        std::to_string(names.size()) + " ('" + desc.workload + "')");
  netlist::Netlist nl = netlist::iscas_like(names.front());  // throws unknown
  if (desc.size_grid.empty())
    throw std::invalid_argument(
        "dist: ssta-grid descriptor with an empty size grid");
  for (std::size_t k = 0; k < desc.size_grid.size(); ++k)
    if (desc.size_grid[k].size() != nl.size())
      throw std::invalid_argument(
          "dist: size grid lane " + std::to_string(k) + " carries " +
          std::to_string(desc.size_grid[k].size()) + " sizes for a netlist "
          "of " + std::to_string(nl.size()) +
          " gates (every lane must be a full size vector)");
  if (desc.netlist_hash != 0) {
    const std::uint64_t h =
        netlist::fnv1a_fold(netlist::kFnvOffsetBasis, nl.structural_hash());
    if (h != desc.netlist_hash)
      throw std::invalid_argument(
          "dist: workload '" + desc.workload + "' hash mismatch (descriptor " +
          std::to_string(desc.netlist_hash) + ", rebuilt " +
          std::to_string(h) +
          ") — coordinator and worker builds disagree on the netlist");
  }
  return nl;
}

sim::ExecutionOptions Workload::exec(const RunDescriptor& desc) const {
  sim::ExecutionOptions e;
  e.samples_per_shard = desc.samples_per_shard;
  e.block_width = desc.block_width;
  e.threads = 0;  // local pool's width; invisible in the result
  return e;
}

void finalize_descriptor(RunDescriptor& desc) {
  if (desc.task_kind == TaskKind::kSstaGrid) {
    const netlist::Netlist nl = build_grid_stage(desc);
    desc.netlist_hash =
        netlist::fnv1a_fold(netlist::kFnvOffsetBasis, nl.structural_hash());
    desc.root_seed = derive_root_seed(desc.seed);
    return;
  }
  if (desc.n_samples == 0)
    throw std::invalid_argument("dist: descriptor with zero samples");
  const std::unique_ptr<Workload> w = Workload::make(desc);
  desc.netlist_hash = w->stage_hash();
  desc.root_seed = derive_root_seed(desc.seed);
}

mc::McResult run_local(const RunDescriptor& desc) {
  const std::unique_ptr<Workload> w = Workload::make(desc);
  stats::Rng rng(desc.seed);
  return w->engine().run(desc.n_samples, rng, w->exec(desc));
}

}  // namespace statpipe::dist
