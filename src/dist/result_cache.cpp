#include "dist/result_cache.h"

#include <span>
#include <utility>

#include "obs/telemetry.h"

namespace statpipe::dist {

namespace {

obs::Counter& c_hits() {
  static obs::Counter c("dist.service.cache.hits");
  return c;
}
obs::Counter& c_misses() {
  static obs::Counter c("dist.service.cache.misses");
  return c;
}
obs::Counter& c_evictions() {
  static obs::Counter c("dist.service.cache.evictions");
  return c;
}

}  // namespace

Digest ResultCache::key_for(const RunDescriptor& desc) {
  ByteWriter w;
  write_run_descriptor(w, desc);
  return sha256(std::span<const std::uint8_t>(w.bytes().data(),
                                              w.bytes().size()));
}

const std::vector<std::uint8_t>* ResultCache::find(const Digest& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    c_misses().add();
    return nullptr;
  }
  it->second.last_used = ++seq_;
  ++hits_;
  c_hits().add();
  return &it->second.blob;
}

void ResultCache::insert(const Digest& key, std::vector<std::uint8_t> blob) {
  if (blob.size() > max_bytes_) return;  // can never fit, even alone
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    // Same key, same canonical inputs: the blob is necessarily identical
    // (determinism contract), so only the LRU rank needs refreshing.
    it->second.last_used = ++seq_;
    return;
  }
  evict_for(blob.size());
  bytes_ += blob.size();
  entries_.emplace(key, Entry{std::move(blob), ++seq_});
}

void ResultCache::evict_for(std::size_t incoming) {
  while (!entries_.empty() && bytes_ + incoming > max_bytes_) {
    auto victim = entries_.begin();
    for (auto it = entries_.begin(); it != entries_.end(); ++it)
      if (it->second.last_used < victim->second.last_used) victim = it;
    bytes_ -= victim->second.blob.size();
    entries_.erase(victim);
    ++evictions_;
    c_evictions().add();
  }
}

}  // namespace statpipe::dist
