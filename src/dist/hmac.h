// Frame authentication for the distributed wire: SHA-256, HMAC-SHA256 and
// a constant-time digest comparison, self-contained (no OpenSSL — the
// container toolchain is the only dependency this repo is allowed).
//
// Used by dist/transport.cpp to append a 32-byte HMAC trailer to every
// frame when a shared key is configured (docs/WIRE_FORMAT.md, v3): the MAC
// covers header and payload, so a tampered, truncated-then-padded or
// spliced frame fails verification instead of parsing.  Verification is
// constant-time in the digest comparison so a byte-at-a-time oracle
// cannot recover the MAC.  Scope note: this authenticates peers that hold
// the shared key; it does not encrypt, and it does not by itself prevent
// replay of a captured frame under the same key (see WIRE_FORMAT.md's
// threat-model section).
//
// Layer contract (src/dist, see docs/ARCHITECTURE.md): the distributed
// execution layer sits on top of mc/sim/stats and may depend on all of
// them; nothing below src/dist may know it exists.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

namespace statpipe::dist {

inline constexpr std::size_t kDigestSize = 32;  ///< SHA-256 output bytes

using Digest = std::array<std::uint8_t, kDigestSize>;

/// SHA-256 of `data` (FIPS 180-4).
Digest sha256(std::span<const std::uint8_t> data);

/// HMAC-SHA256 (RFC 2104) of `data` under `key`.  Keys longer than the
/// 64-byte block are hashed first, per the RFC.
Digest hmac_sha256(std::span<const std::uint8_t> key,
                   std::span<const std::uint8_t> data);

/// Constant-time equality of two digests: every byte is examined
/// regardless of where the first mismatch sits, so timing does not leak
/// the position of a forgery's first wrong byte.
bool digest_equal_consttime(const Digest& a, const Digest& b) noexcept;

/// Shared-key frame authentication context.  Disabled (no key) by
/// default; a configured key enables the HMAC trailer on every frame in
/// both directions.  The wire key is the SHA-256 of the user's passphrase
/// string, so passphrases of any length map onto one fixed-size key and
/// the raw passphrase bytes never sit in the frame pipeline.
struct FrameAuth {
  bool enabled = false;
  Digest key{};

  /// Disabled context when `passphrase` is empty, enabled otherwise.
  static FrameAuth from_passphrase(const std::string& passphrase);
  /// Context from the STATPIPE_WIRE_KEY environment variable (disabled
  /// when unset or empty).
  static FrameAuth from_env();

  Digest mac(std::span<const std::uint8_t> data) const;
};

}  // namespace statpipe::dist
