// Cell power models: dynamic (switching) and subthreshold leakage power.
//
// The paper's optimization objective is "area (hence, power)": cell area is
// the proxy for both the switched capacitance (dynamic power) and the
// leaking transistor width.  This module makes the proxy explicit so the
// optimizer's area savings can be reported in watts, and adds the part the
// area proxy misses: leakage depends *exponentially* on the same threshold
// voltage whose variation drives the delay distributions,
//
//   I_leak ~ W * exp(-Vth / (n * vT))
//
// so a fast (low-Vth) die both leaks more and runs faster — the classic
// frequency/leakage anti-correlation of Bowman's FMAX work [1].
#pragma once

#include "device/gate_library.h"
#include "process/variation.h"

namespace statpipe::device {

struct PowerParams {
  double activity = 0.1;        ///< average switching activity per cycle
  double cap_per_area_ff = 1.8; ///< switched capacitance per unit area [fF]
  double leak_per_size_nw = 5.0;///< leakage of a min inverter at nominal Vth [nW]
  double subthreshold_slope_v = 0.039;  ///< n * vT at 300K [V]
};

class PowerModel {
 public:
  PowerModel(PowerParams params, process::Technology tech)
      : params_(params), tech_(tech) {}

  const PowerParams& params() const noexcept { return params_; }

  /// Dynamic power of one cell instance at clock frequency `f_ghz` [uW]:
  /// P = alpha * C * Vdd^2 * f.
  double dynamic_uw(GateKind kind, double size, double f_ghz) const;

  /// Leakage power of one cell at threshold shift dvth [uW].
  /// Leakage *rises* when dvth < 0 (fast die) — exponentially.
  double leakage_uw(GateKind kind, double size, double dvth = 0.0) const;

  /// Multiplicative leakage factor for a Vth shift; factor(0) == 1.
  double leakage_factor(double dvth) const;

  /// Expected leakage factor over N(0, sigma_vth^2) — the lognormal mean
  /// exp(sigma^2 / (2 s^2)), always > 1: variation increases *mean*
  /// leakage even though the mean Vth shift is zero.
  double mean_leakage_factor(double sigma_vth) const;

 private:
  PowerParams params_;
  process::Technology tech_;
};

}  // namespace statpipe::device
