// Alpha-power-law gate-delay model — the SPICE stand-in.
//
// The drain saturation current of a velocity-saturated MOSFET follows
// I_dsat ~ (W/L) (Vdd - Vth)^alpha (Sakurai-Newton), so gate delay scales as
//
//   d = d_nominal * (L/L0)^2-ish * [(Vdd - Vth0)/(Vdd - Vth0 - dVth)]^alpha
//
// (the L exponent ~2 folds the mobility/short-channel dependence into one
// knob; only relative sensitivities matter for reproducing the paper).
// Composed with the logical-effort decomposition this gives, for a cell of
// kind k, size x, driving load C (inverter-cap units), at parameter shift
// (dVth, dL/L):
//
//   d = tau * (p_k + C/x) * varfactor(dVth, dL/L)      [ps]
//
// which is exactly the quantity the paper's SPICE Monte-Carlo measures per
// stage before feeding (mu_i, sigma_i) into the analytical model.
//
// Layer contract (src/device, see docs/ARCHITECTURE.md): owns cell-level
// physics — delay, power and latch models over (kind, size, load,
// parameter shift).  May depend on src/stats and src/process; must not
// know about netlists (a cell instance is described by its arguments, not
// by graph position) or any layer above.
#pragma once

#include "device/gate_library.h"
#include "process/variation.h"

namespace statpipe::device {

class AlphaPowerModel {
 public:
  /// Throws std::invalid_argument unless 0 < tech.alpha <= 3.9: the
  /// velocity-saturation index is physically 1..2, and the cap is what
  /// lets variation_factor's fixed drive-ratio window guarantee the pow
  /// core's |alpha * log2(ratio)| <= 1020 precondition (delay_model.cpp).
  explicit AlphaPowerModel(process::Technology tech);

  const process::Technology& technology() const noexcept { return tech_; }

  /// Multiplicative delay factor for threshold shift dvth [V] and relative
  /// channel-length shift dl_rel.  factor(0,0) == 1.
  /// Throws std::domain_error if dvth drives the gate out of saturation
  /// (Vdd - Vth <= 0) — a die that badly broken is a functional failure,
  /// not a timing sample.
  /// The exponentiation runs on the shared vectorizable pow core
  /// (stats::lanes::pow_pos), the same per-element function the lane form
  /// below evaluates — so the scalar and block sample-STA paths stay
  /// bitwise-identical by construction.
  double variation_factor(double dvth, double dl_rel = 0.0) const;

  /// Lane form: out[j] = variation_factor(dvth[j], dl_rel[j]) for j < n,
  /// bitwise-equal to n scalar calls (same pow core, same operation order
  /// per element) but dispatched to the active SIMD backend's vectorized
  /// kernel (stats/simd.h) — this call is the hot kernel of the block
  /// sample STA.  Domain violations are checked for every lane up front
  /// and throw std::domain_error before anything is written to `out`.
  void variation_factor_lanes(const double* dvth, const double* dl_rel,
                              std::size_t n, double* out) const;

  /// The variation-factor arithmetic flattened to plain doubles, for
  /// callers that inline the computation into a dispatched SIMD kernel
  /// (the block sample-STA walk): factor = pow_pos(drive0 / (drive0 -
  /// dvth), alpha) * (1 + dl_rel)^2, valid only while drive0 - dvth > 0,
  /// 1 + dl_rel > 0 and the drive ratio stays within [min_ratio,
  /// max_ratio] — outside that window the scalar variation_factor throws,
  /// and kernel callers must reproduce the same rejection.
  struct VariationKernelParams {
    double drive0;     ///< Vdd - Vth0
    double alpha;      ///< velocity-saturation index
    double min_ratio;  ///< drive-ratio window accepted by the pow core
    double max_ratio;
  };
  VariationKernelParams variation_kernel_params() const noexcept;

  /// Nominal (variation-free) delay of a cell instance [ps].
  /// `load_cap` in min-inverter-cap units; `size` >= minimum size.
  double nominal_delay(GateKind kind, double size, double load_cap) const;

  /// Delay under parameter shift [ps].
  double delay(GateKind kind, double size, double load_cap, double dvth,
               double dl_rel = 0.0) const;

  /// First-order sensitivity d(delay)/d(Vth) [ps/V] at the nominal point —
  /// used to map sigma_Vth into per-gate delay sigma analytically:
  ///   sigma_d ~ |d(delay)/dVth| * sigma_Vth.
  double dvth_sensitivity(GateKind kind, double size, double load_cap) const;

  /// Analytic per-gate delay sigma decomposition for a cell instance:
  /// {sigma from inter-die Vth, sigma from systematic Vth, sigma from RDF}.
  struct DelaySigmas {
    double inter = 0.0;
    double systematic = 0.0;
    double random = 0.0;
    double total() const;
  };
  DelaySigmas delay_sigmas(GateKind kind, double size, double load_cap,
                           const process::VariationSpec& spec) const;

 private:
  process::Technology tech_;
};

}  // namespace statpipe::device
