#include "device/gate_library.h"

#include <algorithm>
#include <array>
#include <cctype>
#include <stdexcept>

namespace statpipe::device {

namespace {

constexpr int kKindCount = 16;

constexpr std::array<GateTraits, kKindCount> kTraits = {{
    // g,     p,    area, fanin, pseudo
    {0.0, 0.0, 0.0, 0, true},      // kInput
    {0.0, 0.0, 0.0, 1, true},      // kOutput
    {1.0, 2.0, 2.0, 1, false},     // kBuf (two inverters lumped)
    {1.0, 1.0, 1.0, 1, false},     // kNot
    {4.0 / 3.0, 2.0, 1.6, 2, false},   // kNand2
    {5.0 / 3.0, 3.0, 2.2, 3, false},   // kNand3
    {6.0 / 3.0, 4.0, 2.8, 4, false},   // kNand4
    {5.0 / 3.0, 2.0, 1.9, 2, false},   // kNor2
    {7.0 / 3.0, 3.0, 2.7, 3, false},   // kNor3
    {9.0 / 3.0, 4.0, 3.5, 4, false},   // kNor4
    {4.0 / 3.0, 3.0, 2.6, 2, false},   // kAnd2 (nand+inv lumped)
    {5.0 / 3.0, 4.0, 3.2, 3, false},   // kAnd3
    {5.0 / 3.0, 3.0, 2.9, 2, false},   // kOr2 (nor+inv lumped)
    {7.0 / 3.0, 4.0, 3.7, 3, false},   // kOr3
    {4.0, 4.0, 4.5, 2, false},         // kXor2
    {4.0, 4.0, 4.5, 2, false},         // kXnor2
}};

constexpr std::array<std::string_view, kKindCount> kNames = {
    "INPUT", "OUTPUT", "BUFF", "NOT",  "NAND",  "NAND3", "NAND4", "NOR",
    "NOR3",  "NOR4",   "AND",  "AND3", "OR",    "OR3",   "XOR",   "XNOR"};

}  // namespace

const GateTraits& traits(GateKind kind) {
  const auto i = static_cast<std::size_t>(kind);
  if (i >= kTraits.size()) throw std::out_of_range("traits: bad GateKind");
  return kTraits[i];
}

std::string_view to_string(GateKind kind) {
  const auto i = static_cast<std::size_t>(kind);
  if (i >= kNames.size()) throw std::out_of_range("to_string: bad GateKind");
  return kNames[i];
}

GateKind gate_kind_from_string(std::string_view name) {
  std::string up(name);
  std::transform(up.begin(), up.end(), up.begin(),
                 [](unsigned char c) { return static_cast<char>(std::toupper(c)); });
  // .bench uses arity-free names; map NAND/NOR/AND/OR to the 2-input cell
  // (the parser widens to NAND3/NAND4 etc. based on actual fanin).
  if (up == "INPUT") return GateKind::kInput;
  if (up == "OUTPUT") return GateKind::kOutput;
  if (up == "BUFF" || up == "BUF") return GateKind::kBuf;
  if (up == "NOT" || up == "INV") return GateKind::kNot;
  if (up == "NAND") return GateKind::kNand2;
  if (up == "NAND3") return GateKind::kNand3;
  if (up == "NAND4") return GateKind::kNand4;
  if (up == "NOR") return GateKind::kNor2;
  if (up == "NOR3") return GateKind::kNor3;
  if (up == "NOR4") return GateKind::kNor4;
  if (up == "AND") return GateKind::kAnd2;
  if (up == "AND3") return GateKind::kAnd3;
  if (up == "OR") return GateKind::kOr2;
  if (up == "OR3") return GateKind::kOr3;
  if (up == "XOR") return GateKind::kXor2;
  if (up == "XNOR") return GateKind::kXnor2;
  throw std::invalid_argument("gate_kind_from_string: unknown gate '" +
                              std::string(name) + "'");
}

double input_cap(GateKind kind, double size) {
  const auto& t = traits(kind);
  if (t.is_pseudo) return 0.0;
  return size * t.logical_effort;
}

double cell_area(GateKind kind, double size) {
  const auto& t = traits(kind);
  if (t.is_pseudo) return 0.0;
  return size * t.area;
}

}  // namespace statpipe::device
