// Pipeline latch (master-slave flip-flop) timing model.
//
// The paper's stage delay is SD = T_C-Q + T_comb + T_setup (section 2.1),
// with the flip-flops implemented as transmission-gate master-slave FFs in
// the SPICE testbench.  Here the latch contributes a nominal clock-to-Q and
// setup time that share the die's variation factor (a slow die slows the
// latch too), plus a small independent random component of its own.
#pragma once

#include "device/delay_model.h"
#include "stats/gaussian.h"
#include "stats/rng.h"

namespace statpipe::device {

struct LatchTiming {
  double tcq_ps = 22.0;     ///< nominal clock-to-Q [ps]
  double tsetup_ps = 14.0;  ///< nominal setup time [ps]
  double random_sigma_rel = 0.02;  ///< independent random sigma, relative

  double nominal_overhead() const noexcept { return tcq_ps + tsetup_ps; }
};

class LatchModel {
 public:
  LatchModel(LatchTiming timing, const AlphaPowerModel& model)
      : timing_(timing), model_(&model) {}

  const LatchTiming& timing() const noexcept { return timing_; }

  /// Latch overhead [ps] on a die with threshold shift `dvth` (inter +
  /// local systematic at the latch site), plus an independent random draw.
  double sample_overhead(double dvth, stats::Rng& rng) const;

  /// Lane-batched sample_overhead: out[j] = overhead_at(dvth[j]) + lane j's
  /// random draw, with the draws batched through `rngs` (one normal per
  /// lane, states advanced in place).  The random sigma is lane-invariant,
  /// so lane j's value is bitwise what sample_overhead(dvth[j], rng_j)
  /// returns when rng_j holds lane j's stream — the block Monte-Carlo
  /// fold's per-stage form.  `w` must equal rngs.width().
  void sample_overhead_lanes(const double* dvth, std::size_t w,
                             stats::RngBlock& rngs, double* out) const;

  /// Analytic overhead distribution given the variation spec: mean and the
  /// (inter-die-correlated, random) sigma split.
  stats::Gaussian overhead_distribution(
      const process::VariationSpec& spec) const;

  /// Deterministic overhead at a given Vth shift (no random component).
  double overhead_at(double dvth) const;

 private:
  LatchTiming timing_;
  const AlphaPowerModel* model_;
};

}  // namespace statpipe::device
