#include "device/delay_model.h"

#include <cmath>
#include <stdexcept>

namespace statpipe::device {

double AlphaPowerModel::variation_factor(double dvth, double dl_rel) const {
  const double drive0 = tech_.vdd - tech_.vth0;
  const double drive = drive0 - dvth;
  if (drive <= 0.0)
    throw std::domain_error(
        "variation_factor: Vth shift drives gate out of saturation");
  const double lf = 1.0 + dl_rel;
  if (lf <= 0.0)
    throw std::domain_error("variation_factor: channel length <= 0");
  return std::pow(drive0 / drive, tech_.alpha) * lf * lf;
}

double AlphaPowerModel::nominal_delay(GateKind kind, double size,
                                      double load_cap) const {
  const auto& t = traits(kind);
  if (t.is_pseudo) return 0.0;
  if (size <= 0.0) throw std::invalid_argument("nominal_delay: size <= 0");
  if (load_cap < 0.0) throw std::invalid_argument("nominal_delay: load < 0");
  return tech_.tau_ps * (t.parasitic + load_cap / size);
}

double AlphaPowerModel::delay(GateKind kind, double size, double load_cap,
                              double dvth, double dl_rel) const {
  return nominal_delay(kind, size, load_cap) * variation_factor(dvth, dl_rel);
}

double AlphaPowerModel::dvth_sensitivity(GateKind kind, double size,
                                         double load_cap) const {
  // d/dVth [ (drive0/(drive0 - dvth))^alpha ] at dvth=0  =  alpha/drive0.
  const double drive0 = tech_.vdd - tech_.vth0;
  return nominal_delay(kind, size, load_cap) * tech_.alpha / drive0;
}

double AlphaPowerModel::DelaySigmas::total() const {
  return std::sqrt(inter * inter + systematic * systematic + random * random);
}

AlphaPowerModel::DelaySigmas AlphaPowerModel::delay_sigmas(
    GateKind kind, double size, double load_cap,
    const process::VariationSpec& spec) const {
  const double sens = dvth_sensitivity(kind, size, load_cap);
  DelaySigmas s;
  s.inter = sens * spec.sigma_vth_inter;
  s.systematic = sens * spec.sigma_vth_systematic;
  if (spec.enable_rdf) s.random = sens * tech_.sigma_vth_rdf(size);
  return s;
}

}  // namespace statpipe::device
