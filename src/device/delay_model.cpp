#include "device/delay_model.h"

#include <cmath>
#include <stdexcept>
#include <string>

#include "stats/lanes.h"
#include "stats/simd.h"

namespace statpipe::device {

namespace {

// Drive-ratio window accepted by the pow core: together with the
// constructor's alpha <= 3.9 cap it keeps |alpha * log2(ratio)| <= 998,
// inside pow_pos's documented |y*log2 x| <= 1020 precondition.  A die
// whose drive collapsed (or exploded) by 2^256 is a functional failure,
// not a timing sample — same rationale as the existing out-of-saturation
// rejection.
constexpr double kMinDriveRatio = 0x1p-256;
constexpr double kMaxDriveRatio = 0x1p256;
constexpr double kMaxAlpha = 3.9;

}  // namespace

AlphaPowerModel::AlphaPowerModel(process::Technology tech) : tech_(tech) {
  if (!(tech_.alpha > 0.0 && tech_.alpha <= kMaxAlpha))
    throw std::invalid_argument(
        "AlphaPowerModel: alpha must be in (0, " + std::to_string(kMaxAlpha) +
        "] (velocity saturation is physically 1..2; the cap bounds the pow "
        "core's exponent range)");
}

double AlphaPowerModel::variation_factor(double dvth, double dl_rel) const {
  const double drive0 = tech_.vdd - tech_.vth0;
  const double drive = drive0 - dvth;
  if (drive <= 0.0)
    throw std::domain_error(
        "variation_factor: Vth shift drives gate out of saturation");
  const double lf = 1.0 + dl_rel;
  if (lf <= 0.0)
    throw std::domain_error("variation_factor: channel length <= 0");
  const double ratio = drive0 / drive;
  if (!(ratio >= kMinDriveRatio && ratio <= kMaxDriveRatio))
    throw std::domain_error(
        "variation_factor: drive ratio beyond physical range");
  return stats::lanes::pow_pos(ratio, tech_.alpha) * lf * lf;
}

// The arithmetic loop is dispatched to the active SIMD backend's kernel
// (stats/simd.h), which compiled the identical straight-line C++ under
// that backend's -m flags.  FP semantics are unchanged across backends —
// the project-wide -ffp-contract=off forbids fusion and no backend is
// built with -mfma — which is what keeps the vector lanes bitwise-equal
// to the scalar variation_factor path on every backend.
void AlphaPowerModel::variation_factor_lanes(const double* dvth,
                                             const double* dl_rel,
                                             std::size_t n,
                                             double* out) const {
  const double drive0 = tech_.vdd - tech_.vth0;
  const double alpha = tech_.alpha;
  // Domain checks hoisted out of the hot loop (and completed before any
  // write) so the dispatched kernel is straight-line vectorizable code.
  for (std::size_t j = 0; j < n; ++j) {
    const double drive = drive0 - dvth[j];
    if (drive <= 0.0)
      throw std::domain_error(
          "variation_factor: Vth shift drives gate out of saturation");
    if (1.0 + dl_rel[j] <= 0.0)
      throw std::domain_error("variation_factor: channel length <= 0");
    const double ratio = drive0 / drive;
    if (!(ratio >= kMinDriveRatio && ratio <= kMaxDriveRatio))
      throw std::domain_error(
          "variation_factor: drive ratio beyond physical range");
  }
  stats::simd::kernels().variation_factor_lanes(drive0, alpha, dvth, dl_rel,
                                                n, out);
}

AlphaPowerModel::VariationKernelParams
AlphaPowerModel::variation_kernel_params() const noexcept {
  return {tech_.vdd - tech_.vth0, tech_.alpha, kMinDriveRatio,
          kMaxDriveRatio};
}

double AlphaPowerModel::nominal_delay(GateKind kind, double size,
                                      double load_cap) const {
  const auto& t = traits(kind);
  if (t.is_pseudo) return 0.0;
  if (size <= 0.0) throw std::invalid_argument("nominal_delay: size <= 0");
  if (load_cap < 0.0) throw std::invalid_argument("nominal_delay: load < 0");
  return tech_.tau_ps * (t.parasitic + load_cap / size);
}

double AlphaPowerModel::delay(GateKind kind, double size, double load_cap,
                              double dvth, double dl_rel) const {
  return nominal_delay(kind, size, load_cap) * variation_factor(dvth, dl_rel);
}

double AlphaPowerModel::dvth_sensitivity(GateKind kind, double size,
                                         double load_cap) const {
  // d/dVth [ (drive0/(drive0 - dvth))^alpha ] at dvth=0  =  alpha/drive0.
  const double drive0 = tech_.vdd - tech_.vth0;
  return nominal_delay(kind, size, load_cap) * tech_.alpha / drive0;
}

double AlphaPowerModel::DelaySigmas::total() const {
  return std::sqrt(inter * inter + systematic * systematic + random * random);
}

AlphaPowerModel::DelaySigmas AlphaPowerModel::delay_sigmas(
    GateKind kind, double size, double load_cap,
    const process::VariationSpec& spec) const {
  const double sens = dvth_sensitivity(kind, size, load_cap);
  DelaySigmas s;
  s.inter = sens * spec.sigma_vth_inter;
  s.systematic = sens * spec.sigma_vth_systematic;
  if (spec.enable_rdf) s.random = sens * tech_.sigma_vth_rdf(size);
  return s;
}

}  // namespace statpipe::device
