#include "device/delay_model.h"

#include <cmath>
#include <stdexcept>
#include <string>

#include "stats/lanes.h"

namespace statpipe::device {

namespace {

// Drive-ratio window accepted by the pow core: together with the
// constructor's alpha <= 3.9 cap it keeps |alpha * log2(ratio)| <= 998,
// inside pow_pos's documented |y*log2 x| <= 1020 precondition.  A die
// whose drive collapsed (or exploded) by 2^256 is a functional failure,
// not a timing sample — same rationale as the existing out-of-saturation
// rejection.
constexpr double kMinDriveRatio = 0x1p-256;
constexpr double kMaxDriveRatio = 0x1p256;
constexpr double kMaxAlpha = 3.9;

}  // namespace

AlphaPowerModel::AlphaPowerModel(process::Technology tech) : tech_(tech) {
  if (!(tech_.alpha > 0.0 && tech_.alpha <= kMaxAlpha))
    throw std::invalid_argument(
        "AlphaPowerModel: alpha must be in (0, " + std::to_string(kMaxAlpha) +
        "] (velocity saturation is physically 1..2; the cap bounds the pow "
        "core's exponent range)");
}

double AlphaPowerModel::variation_factor(double dvth, double dl_rel) const {
  const double drive0 = tech_.vdd - tech_.vth0;
  const double drive = drive0 - dvth;
  if (drive <= 0.0)
    throw std::domain_error(
        "variation_factor: Vth shift drives gate out of saturation");
  const double lf = 1.0 + dl_rel;
  if (lf <= 0.0)
    throw std::domain_error("variation_factor: channel length <= 0");
  const double ratio = drive0 / drive;
  if (!(ratio >= kMinDriveRatio && ratio <= kMaxDriveRatio))
    throw std::domain_error(
        "variation_factor: drive ratio beyond physical range");
  return stats::lanes::pow_pos(ratio, tech_.alpha) * lf * lf;
}

// SSE4.2 (2008-baseline, gated to x86-64 GNU-compatible compilers) supplies
// the packed int64 compare/blend ops pow_pos's bit tricks need; the generic
// x86-64 baseline lacks them and gcc falls back to scalar code.  FP
// semantics are unchanged — -std=c++20 keeps -ffp-contract=off, so no FMA
// fusion — which is what keeps the vector lanes bitwise-equal to the
// scalar variation_factor path.
#if defined(__x86_64__) && defined(__GNUC__)
__attribute__((target("sse4.2")))
#endif
void AlphaPowerModel::variation_factor_lanes(const double* dvth,
                                             const double* dl_rel,
                                             std::size_t n,
                                             double* out) const {
  const double drive0 = tech_.vdd - tech_.vth0;
  const double alpha = tech_.alpha;
  // Domain checks hoisted out of the hot loop (and completed before any
  // write) so the arithmetic below is straight-line vectorizable code.
  for (std::size_t j = 0; j < n; ++j) {
    const double drive = drive0 - dvth[j];
    if (drive <= 0.0)
      throw std::domain_error(
          "variation_factor: Vth shift drives gate out of saturation");
    if (1.0 + dl_rel[j] <= 0.0)
      throw std::domain_error("variation_factor: channel length <= 0");
    const double ratio = drive0 / drive;
    if (!(ratio >= kMinDriveRatio && ratio <= kMaxDriveRatio))
      throw std::domain_error(
          "variation_factor: drive ratio beyond physical range");
  }
  for (std::size_t j = 0; j < n; ++j) {
    const double lf = 1.0 + dl_rel[j];
    out[j] =
        stats::lanes::pow_pos(drive0 / (drive0 - dvth[j]), alpha) * lf * lf;
  }
}

double AlphaPowerModel::nominal_delay(GateKind kind, double size,
                                      double load_cap) const {
  const auto& t = traits(kind);
  if (t.is_pseudo) return 0.0;
  if (size <= 0.0) throw std::invalid_argument("nominal_delay: size <= 0");
  if (load_cap < 0.0) throw std::invalid_argument("nominal_delay: load < 0");
  return tech_.tau_ps * (t.parasitic + load_cap / size);
}

double AlphaPowerModel::delay(GateKind kind, double size, double load_cap,
                              double dvth, double dl_rel) const {
  return nominal_delay(kind, size, load_cap) * variation_factor(dvth, dl_rel);
}

double AlphaPowerModel::dvth_sensitivity(GateKind kind, double size,
                                         double load_cap) const {
  // d/dVth [ (drive0/(drive0 - dvth))^alpha ] at dvth=0  =  alpha/drive0.
  const double drive0 = tech_.vdd - tech_.vth0;
  return nominal_delay(kind, size, load_cap) * tech_.alpha / drive0;
}

double AlphaPowerModel::DelaySigmas::total() const {
  return std::sqrt(inter * inter + systematic * systematic + random * random);
}

AlphaPowerModel::DelaySigmas AlphaPowerModel::delay_sigmas(
    GateKind kind, double size, double load_cap,
    const process::VariationSpec& spec) const {
  const double sens = dvth_sensitivity(kind, size, load_cap);
  DelaySigmas s;
  s.inter = sens * spec.sigma_vth_inter;
  s.systematic = sens * spec.sigma_vth_systematic;
  if (spec.enable_rdf) s.random = sens * tech_.sigma_vth_rdf(size);
  return s;
}

}  // namespace statpipe::device
