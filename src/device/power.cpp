#include "device/power.h"

#include <cmath>
#include <stdexcept>

namespace statpipe::device {

double PowerModel::dynamic_uw(GateKind kind, double size, double f_ghz) const {
  if (f_ghz < 0.0) throw std::invalid_argument("dynamic_uw: negative f");
  const double cap_ff = params_.cap_per_area_ff * cell_area(kind, size);
  // P [uW] = a * C[fF] * Vdd^2 [V^2] * f [GHz]   (fF * GHz * V^2 == uW)
  return params_.activity * cap_ff * tech_.vdd * tech_.vdd * f_ghz;
}

double PowerModel::leakage_factor(double dvth) const {
  return std::exp(-dvth / params_.subthreshold_slope_v);
}

double PowerModel::leakage_uw(GateKind kind, double size, double dvth) const {
  if (traits(kind).is_pseudo) return 0.0;
  if (size <= 0.0) throw std::invalid_argument("leakage_uw: size <= 0");
  // Leaking width scales with size; use area as the width proxy, in units
  // of the minimum inverter.  nW -> uW.
  return 1e-3 * params_.leak_per_size_nw * cell_area(kind, size) *
         leakage_factor(dvth);
}

double PowerModel::mean_leakage_factor(double sigma_vth) const {
  if (sigma_vth < 0.0)
    throw std::invalid_argument("mean_leakage_factor: negative sigma");
  const double s = sigma_vth / params_.subthreshold_slope_v;
  return std::exp(0.5 * s * s);
}

}  // namespace statpipe::device
