// Standard-cell gate library in the logical-effort parameterization.
//
// Every combinational cell is characterized by:
//   g    logical effort      (input cap per unit drive, inverter = 1)
//   p    parasitic delay     (in units of tau, the technology constant)
//   area area per unit size  (in minimum-inverter areas)
//
// A cell instance carries a continuous size factor x >= x_min; its input
// capacitance is x*g (inverter-cap units), its drive grows with x, and its
// area is x*area.  This is the currency of the sizing optimizer: the paper's
// gate-level sizing ([3]) manipulates exactly these x's.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace statpipe::device {

enum class GateKind : std::uint8_t {
  kInput,   ///< primary-input pseudo-gate (zero delay, zero area)
  kOutput,  ///< primary-output pseudo-gate (zero delay, zero area)
  kBuf,
  kNot,
  kNand2,
  kNand3,
  kNand4,
  kNor2,
  kNor3,
  kNor4,
  kAnd2,
  kAnd3,
  kOr2,
  kOr3,
  kXor2,
  kXnor2,
};

/// Logical-effort characterization of one cell type.
struct GateTraits {
  double logical_effort;   ///< g
  double parasitic;        ///< p  [tau units]
  double area;             ///< area per unit size [min-inv areas]
  int max_fanin;           ///< arity (0 for pseudo-gates)
  bool is_pseudo;          ///< true for kInput/kOutput
};

/// Traits table lookup.  The values follow Sutherland/Sproull/Harris
/// "Logical Effort" for static CMOS (XORs modeled as the usual 2-stage
/// transmission-gate implementation lumped into one cell).
const GateTraits& traits(GateKind kind);

/// Parser/printer for the ISCAS .bench netlist dialect ("NAND", "NOT", ...).
std::string_view to_string(GateKind kind);
GateKind gate_kind_from_string(std::string_view name);

/// Input capacitance of an instance, in min-inverter-cap units.
double input_cap(GateKind kind, double size);

/// Cell area of an instance, in min-inverter areas.
double cell_area(GateKind kind, double size);

}  // namespace statpipe::device
