#include "device/latch.h"

#include <cmath>

namespace statpipe::device {

double LatchModel::overhead_at(double dvth) const {
  return timing_.nominal_overhead() * model_->variation_factor(dvth);
}

double LatchModel::sample_overhead(double dvth, stats::Rng& rng) const {
  const double nominal = overhead_at(dvth);
  const double sigma = timing_.nominal_overhead() * timing_.random_sigma_rel;
  return nominal + rng.normal(0.0, sigma);
}

stats::Gaussian LatchModel::overhead_distribution(
    const process::VariationSpec& spec) const {
  const double mean = timing_.nominal_overhead();
  // First-order: sigma from inter-die Vth via the alpha-power sensitivity.
  const double drive0 =
      model_->technology().vdd - model_->technology().vth0;
  const double sens = mean * model_->technology().alpha / drive0;
  const double s_inter = sens * spec.sigma_vth_inter;
  const double s_rand = mean * timing_.random_sigma_rel;
  return {mean, std::sqrt(s_inter * s_inter + s_rand * s_rand)};
}

}  // namespace statpipe::device
