#include "device/latch.h"

#include <cmath>
#include <stdexcept>

namespace statpipe::device {

double LatchModel::overhead_at(double dvth) const {
  return timing_.nominal_overhead() * model_->variation_factor(dvth);
}

double LatchModel::sample_overhead(double dvth, stats::Rng& rng) const {
  const double nominal = overhead_at(dvth);
  const double sigma = timing_.nominal_overhead() * timing_.random_sigma_rel;
  return nominal + rng.normal(0.0, sigma);
}

void LatchModel::sample_overhead_lanes(const double* dvth, std::size_t w,
                                       stats::RngBlock& rngs,
                                       double* out) const {
  if (w != rngs.width())
    throw std::invalid_argument(
        "LatchModel::sample_overhead_lanes: width mismatch");
  const double sigma = timing_.nominal_overhead() * timing_.random_sigma_rel;
  // Draws first (out holds sigma * z_j), then the deterministic part per
  // lane.  Bitwise vs sample_overhead: IEEE addition commutes, and the
  // scalar path's `0.0 +` inside normal(0.0, sigma) can only flush a -0.0
  // draw to +0.0, which the outer add onto the (non-negative) nominal
  // erases again — identical sums in every case.
  rngs.normal_fill(sigma, out, 1, w);
  for (std::size_t j = 0; j < w; ++j) out[j] = overhead_at(dvth[j]) + out[j];
}

stats::Gaussian LatchModel::overhead_distribution(
    const process::VariationSpec& spec) const {
  const double mean = timing_.nominal_overhead();
  // First-order: sigma from inter-die Vth via the alpha-power sensitivity.
  const double drive0 =
      model_->technology().vdd - model_->technology().vth0;
  const double sens = mean * model_->technology().alpha / drive0;
  const double s_inter = sens * spec.sigma_vth_inter;
  const double s_rand = mean * timing_.random_sigma_rel;
  return {mean, std::sqrt(s_inter * s_inter + s_rand * s_rand)};
}

}  // namespace statpipe::device
