// The paper's Fig. 1 scenario end-to-end: a 5-stage CPU pipeline
// (IF/ID/EX/MEM/WB) built from gate-level netlists, characterized by both
// Monte-Carlo ("SPICE") and analytical SSTA, with throughput analysis under
// the static and the statistical delay models.
//
// Build & run:  ./build/examples/five_stage_cpu
#include <cstdio>
#include <string>
#include <vector>

#include "core/binning.h"
#include "core/characterized_pipeline.h"
#include "mc/pipeline_mc.h"
#include "netlist/generators.h"
#include "sta/power_analysis.h"

namespace sp = statpipe;

int main() {
  const sp::device::AlphaPowerModel model{sp::process::Technology{}};
  const sp::device::LatchModel latch{{}, model};
  const auto spec = sp::process::VariationSpec::inter_intra(0.020, 0.010, 0.5);

  // Stage logic with unequal complexity, as in Fig. 1 (4/5/6/5/3 ns there).
  struct StageDef {
    const char* name;
    sp::netlist::CircuitStats stats;
    std::uint64_t seed;
  };
  const std::vector<StageDef> defs = {
      {"IF", {"ifetch", 220, 40, 32, 10}, 21},
      {"ID", {"idecode", 300, 36, 40, 12}, 22},
      {"EX", {"execute", 500, 70, 36, 15}, 23},
      {"MEM", {"memstage", 320, 48, 34, 12}, 24},
      {"WB", {"writeback", 120, 38, 32, 7}, 25},
  };
  std::vector<sp::netlist::Netlist> stages;
  for (const auto& d : defs) {
    stages.push_back(sp::netlist::synthesize_like(d.stats, d.seed));
    stages.back().set_name(d.name);
  }
  std::vector<const sp::netlist::Netlist*> views;
  for (const auto& s : stages) views.push_back(&s);

  // --- static (nominal) model: throughput = 1 / max nominal stage delay.
  std::printf("stage   gates  depth  nominal+latch [ps]\n");
  double static_max = 0.0;
  for (const auto& s : stages) {
    const double d =
        sp::sta::analyze(s, model).critical_delay +
        latch.timing().nominal_overhead();
    static_max = std::max(static_max, d);
    std::printf("%-6s  %5zu  %5zu  %8.1f\n", s.name().c_str(),
                s.gate_count(), s.depth(), d);
  }
  std::printf("static model: clock %.1f ps -> %.2f GHz\n\n", static_max,
              1000.0 / static_max);

  // --- statistical model (analytical, SSTA-characterized).
  const auto pipe = sp::core::build_pipeline_ssta(views, model, spec, latch);
  const auto tp = pipe.delay_distribution();
  std::printf("statistical model: T_P ~ N(%.1f, %.2f) ps\n", tp.mean,
              tp.sigma);
  for (double y : {0.50, 0.90, 0.99}) {
    const double t = pipe.target_delay_for_yield(y);
    std::printf("  %.0f%% yield -> clock %.1f ps (%.2f GHz)\n", 100.0 * y, t,
                1000.0 / t);
  }

  // --- gate-level Monte-Carlo cross-check (the "silicon" reference).
  sp::mc::GateLevelMonteCarlo mc(views, model, spec, latch);
  sp::stats::Rng rng(5);
  const auto r = mc.run(2000, rng);
  const auto est = r.tp_estimate();
  std::printf("\ngate-level MC (2000 dies): T_P ~ N(%.1f, %.2f) ps\n",
              est.mean, est.sigma);
  std::printf("yield at the static-model clock %.1f ps: %.1f%% +- %.1f%%\n",
              static_max, 100.0 * r.yield_at(static_max),
              100.0 * r.yield_ci95(static_max));
  // --- frequency binning: what the distribution means commercially.
  const double f_nom = 1000.0 / tp.mean;
  const std::vector<double> grades{f_nom * 1.02, f_nom, f_nom * 0.96};
  std::printf("\nfrequency bins (grades %.2f / %.2f / %.2f GHz):\n",
              grades[0], grades[1], grades[2]);
  for (const auto& b : sp::core::bin_dies(tp, grades)) {
    if (b.f_min_ghz > 0.0)
      std::printf("  >= %.2f GHz: %5.1f%%\n", b.f_min_ghz,
                  100.0 * b.fraction);
    else
      std::printf("  scrap      : %5.1f%%\n", 100.0 * b.fraction);
  }

  // --- power at the 90%-yield clock.
  const sp::device::PowerModel power{sp::device::PowerParams{},
                                     model.technology()};
  const double f90 = sp::core::marketable_frequency_ghz(tp, 0.90);
  sp::sta::PowerReport total{};
  for (const auto& s : stages) {
    const auto p = sp::sta::analyze_power(s, power, f90);
    total.dynamic_uw += p.dynamic_uw;
    total.leakage_uw += p.leakage_uw;
  }
  std::printf(
      "\npower at the %.2f GHz (90%% yield) clock: %.1f uW dynamic + %.1f "
      "uW leakage\n",
      f90, total.dynamic_uw, total.leakage_uw);

  std::printf(
      "\nMoral of Fig. 1: at the deterministic clock the parametric yield\n"
      "is far below 100%% — clocking decisions need the distribution.\n");
  return 0;
}
