// Power-aware frequency binning: the two-sided yield picture behind the
// paper's motivation [1] (Bowman's FMAX work).  Fast dies (low Vth) clock
// higher but leak exponentially more, so a die is sellable only inside a
// frequency x power window.  This example Monte-Carlos a pipeline stage's
// (delay, leakage) joint distribution and bins dies under a leakage cap.
//
// Build & run:  ./build/examples/power_aware_binning
#include <algorithm>
#include <cstdio>
#include <vector>

#include "netlist/generators.h"
#include "sta/power_analysis.h"
#include "stats/descriptive.h"

namespace sp = statpipe;

int main() {
  const sp::device::AlphaPowerModel delay_model{sp::process::Technology{}};
  const sp::device::PowerModel power{sp::device::PowerParams{},
                                     delay_model.technology()};
  const auto spec = sp::process::VariationSpec::inter_intra(0.030, 0.010, 0.5);

  const auto nl = sp::netlist::iscas_like("c880");
  sp::stats::Rng rng(99);
  const auto samples =
      sp::sta::delay_leakage_mc(nl, delay_model, power, spec, 4000, rng);

  // Summaries.
  std::vector<double> delays, leaks;
  for (const auto& s : samples) {
    delays.push_back(s.delay_ps);
    leaks.push_back(s.leakage_uw);
  }
  const double d_med = sp::stats::quantile(delays, 0.5);
  const double l_med = sp::stats::quantile(leaks, 0.5);
  std::printf("circuit %s: median delay %.1f ps, median leakage %.1f uW\n",
              nl.name().c_str(), d_med, l_med);
  std::printf("delay-leakage correlation: %.2f (fast dies leak more)\n",
              sp::stats::pearson(delays, leaks));

  // Two-sided binning: sellable iff delay <= grade period AND leakage <=
  // cap.  Sweep the cap to show the fast-bin loss.
  const double t_fast = sp::stats::quantile(delays, 0.25);  // premium grade
  const double t_std = sp::stats::quantile(delays, 0.75);   // standard grade
  std::printf("\nleak cap    premium(<=%.0fps)  standard  leaky-scrap  slow-scrap\n",
              t_fast);
  for (double cap_mult : {4.0, 2.0, 1.5, 1.2}) {
    const double cap = l_med * cap_mult;
    std::size_t premium = 0, standard = 0, leaky = 0, slow = 0;
    for (const auto& s : samples) {
      if (s.leakage_uw > cap)
        ++leaky;
      else if (s.delay_ps <= t_fast)
        ++premium;
      else if (s.delay_ps <= t_std)
        ++standard;
      else
        ++slow;
    }
    const double n = static_cast<double>(samples.size());
    std::printf("%5.1fx     %8.1f%%      %8.1f%%  %9.1f%%  %9.1f%%\n",
                cap_mult, 100.0 * premium / n, 100.0 * standard / n,
                100.0 * leaky / n, 100.0 * slow / n);
  }

  std::printf(
      "\nReading: tightening the leakage cap eats the PREMIUM bin first —\n"
      "the fastest dies are precisely the leakiest.  Delay-only yield\n"
      "(the paper's P_D) is the cap -> infinity row.\n");
  return 0;
}
