// Yield-driven gate sizing of a complete pipeline (paper section 4 /
// Fig. 9): start from independently sized stages, then run the global
// optimizer to either lift the pipeline to a yield target or recover area
// at a fixed yield.
//
// Build & run:  ./build/examples/yield_driven_sizing [ensure|minarea]
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "netlist/generators.h"
#include "opt/global_optimizer.h"

namespace sp = statpipe;

int main(int argc, char** argv) {
  const bool min_area = argc > 1 && std::strcmp(argv[1], "minarea") == 0;

  const sp::device::AlphaPowerModel model{sp::process::Technology{}};
  const sp::device::LatchModel latch{{}, model};
  const auto spec = sp::process::VariationSpec::inter_intra(0.005, 0.020, 0.3);

  // A 3-stage pipeline of moderate-size synthesized circuits.
  std::vector<sp::netlist::Netlist> stages;
  stages.push_back(sp::netlist::iscas_like("c880", 31));
  stages.push_back(sp::netlist::iscas_like("c499", 32));
  stages.push_back(sp::netlist::iscas_like("c432", 33));
  std::vector<sp::netlist::Netlist*> ptrs;
  for (auto& s : stages) ptrs.push_back(&s);

  sp::opt::GlobalPipelineOptimizer go(ptrs, model, spec, latch);

  // Pick a clock target ~10% over the slowest stage's probed speed limit.
  double worst = 0.0;
  for (auto& s : stages) {
    auto copy = s;
    sp::opt::SizerOptions so;
    so.t_target = 1e-3;
    (void)sp::opt::size_stage(copy, model, spec, so);
    worst = std::max(worst, sp::opt::stat_delay(copy, model, spec, 0.95));
  }
  const double t_target =
      worst * (min_area ? 1.06 : 1.10) + latch.timing().nominal_overhead();
  std::printf("clock target: %.1f ps\n", t_target);

  // Phase 1: conventional flow — each stage sized alone for Y^(1/N).
  const auto base = go.optimize_individually(t_target, 0.80);
  std::printf("individually optimized: area %.1f, pipeline yield %.1f%%\n",
              base.total_area(), 100.0 * base.yield(t_target));

  // Phase 2: the global Fig.-9 flow.
  sp::opt::GlobalOptimizerOptions opt;
  opt.t_target = t_target;
  opt.yield_target = 0.80;
  opt.mode = min_area ? sp::opt::OptimizationMode::kMinimizeArea
                      : sp::opt::OptimizationMode::kEnsureYield;
  opt.sweep.points = 6;
  const auto r = go.optimize(opt);

  std::printf("\n%-8s %10s %10s %10s %10s %8s\n", "stage", "area0", "yield0",
              "area1", "yield1", "R_i");
  for (const auto& s : r.stages)
    std::printf("%-8s %10.1f %9.1f%% %10.1f %9.1f%% %8.2f\n", s.name.c_str(),
                s.area_before, 100.0 * s.yield_before, s.area_after,
                100.0 * s.yield_after, s.elasticity);
  std::printf("%-8s %10.1f %9.1f%% %10.1f %9.1f%%\n", "pipeline",
              r.total_area_before, 100.0 * r.pipeline_yield_before,
              r.total_area_after, 100.0 * r.pipeline_yield_after);
  std::printf("\nmode: %s — rerun with '%s' for the other objective\n",
              min_area ? "minimize area at 80% yield"
                       : "ensure 80% yield at minimum area cost",
              min_area ? "ensure" : "minarea");
  return 0;
}
