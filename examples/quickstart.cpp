// Quickstart: the 10-minute tour of statpipe's analytical pipeline model.
//
//   1. Describe each pipe stage as a delay distribution (mu, sigma, and
//      how much of sigma is shared die-to-die).
//   2. Ask for the pipeline's overall delay distribution (Clark reduction).
//   3. Ask for yield at a clock target, or the clock for a yield target.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/pipeline_model.h"

using statpipe::core::LatchOverhead;
using statpipe::core::PipelineModel;
using statpipe::core::StageModel;
using statpipe::stats::Gaussian;

int main() {
  // A 4-stage pipeline.  Each StageModel is the combinational delay of one
  // stage: N(mean, sigma) in picoseconds, with `sigma_inter` of that sigma
  // caused by die-to-die (shared) variation, and the stage's area.
  std::vector<StageModel> stages;
  stages.emplace_back("fetch", Gaussian{140.0, 7.0}, /*sigma_inter=*/3.0,
                      /*area=*/220.0);
  stages.emplace_back("decode", Gaussian{120.0, 6.0}, 2.5, 150.0);
  stages.emplace_back("execute", Gaussian{150.0, 8.0}, 3.5, 400.0);
  stages.emplace_back("writeback", Gaussian{110.0, 5.0}, 2.0, 90.0);

  // Flip-flop overhead Tc-q + Tsetup, with its own variation split.
  const LatchOverhead latch{36.0, 1.2, 0.7};

  PipelineModel pipe(std::move(stages), latch);

  // The pipeline delay T_P = max_i SD_i is approximately Gaussian:
  const Gaussian tp = pipe.delay_distribution();
  std::printf("pipeline delay: mean %.1f ps, sigma %.2f ps\n", tp.mean,
              tp.sigma);
  std::printf("slowest stage mean (Jensen lower bound): %.1f ps\n",
              pipe.mean_lower_bound());

  // Yield at a 200 ps clock target (eq. 9 of the paper):
  std::printf("yield at 200 ps: %.1f%%\n", 100.0 * pipe.yield(200.0));

  // And the inverse: the clock you can ship at 95%% parametric yield:
  const double t95 = pipe.target_delay_for_yield(0.95);
  std::printf("clock period for 95%% yield: %.1f ps (%.2f GHz)\n", t95,
              1000.0 / t95);

  // What-if: how much does stage correlation matter?  Force independence:
  pipe.set_uniform_correlation(0.0);
  std::printf("yield at 200 ps if stages were independent: %.1f%%\n",
              100.0 * pipe.yield(200.0));
  return 0;
}
