// Design-space exploration (paper section 2.5 / Fig. 4): given a clock
// target and a yield goal, which (mu, sigma) budgets may each stage have,
// and which logic depths realize them?
//
// Build & run:  ./build/examples/design_space_explorer [target_ps] [yield]
#include <cstdio>
#include <cstdlib>

#include "core/design_space.h"
#include "device/delay_model.h"
#include "process/variation.h"

namespace sp = statpipe;

int main(int argc, char** argv) {
  const double t_target = argc > 1 ? std::atof(argv[1]) : 120.0;
  const double yield = argc > 2 ? std::atof(argv[2]) : 0.90;
  if (t_target <= 0.0 || yield <= 0.0 || yield >= 1.0) {
    std::fprintf(stderr, "usage: %s [target_ps>0] [yield in (0,1)]\n",
                 argv[0]);
    return 1;
  }

  const sp::core::DesignSpace ds(t_target, yield);
  const sp::device::AlphaPowerModel model{sp::process::Technology{}};
  const auto spec = sp::process::VariationSpec::inter_intra(0.020, 0.010, 0.5);

  // FO4-loaded inverter as the unit cell of the eq.-13 realizable relation.
  const double mu0 = model.nominal_delay(sp::device::GateKind::kNot, 1.0, 4.0);
  const auto s0 = model.delay_sigmas(sp::device::GateKind::kNot, 1.0, 4.0,
                                     spec);
  const sp::stats::Gaussian unit{mu0, s0.total()};
  std::printf("target %.0f ps at %.0f%% yield; unit cell N(%.2f, %.3f) ps\n\n",
              t_target, 100.0 * yield, unit.mean, unit.sigma);

  std::printf("stage-count tradeoff (eq. 12 + realizable eq. 13):\n");
  std::printf("N_S  per-stage-yield  max mu@realizable-sigma  max logic depth\n");
  for (std::size_t ns : {2, 3, 4, 6, 8, 12}) {
    // Find the largest mu whose realizable sigma still meets the equality
    // bound: mu + z * sigma(mu) <= T with sigma(mu) = s0*sqrt(mu/mu0).
    const double z = sp::stats::normal_icdf(ds.per_stage_yield(ns));
    double lo = 0.0, hi = t_target;
    for (int it = 0; it < 60; ++it) {
      const double mid = 0.5 * (lo + hi);
      const double s = sp::core::DesignSpace::realizable_sigma(mid, unit);
      (mid + z * s <= t_target ? lo : hi) = mid;
    }
    const auto depth = static_cast<std::size_t>(lo / unit.mean);
    std::printf("%3zu  %14.4f  %22.1f  %15zu\n", ns, ds.per_stage_yield(ns),
                lo, depth);
  }

  std::printf(
      "\nReading: more stages demand higher per-stage yield, shrinking each\n"
      "stage's permissible mean — but each stage also needs less logic.\n"
      "The usable designs are the depths above times the stage count that\n"
      "covers your total logic depth.\n");

  // Spot-check three candidate stage budgets against all bounds.
  std::printf("\nspot checks (mu, sigma) against the bounds:\n");
  const struct {
    double mu, sigma;
  } cands[] = {{0.6 * t_target, 3.0}, {0.8 * t_target, 3.0},
               {0.95 * t_target, 1.0}};
  for (const auto& c : cands) {
    std::printf("  mu=%.1f sigma=%.1f: relaxed(eq11)=%s equality(4 stages, "
                "eq12)=%s\n",
                c.mu, c.sigma,
                ds.admissible_relaxed(c.mu, c.sigma) ? "ok" : "VIOLATED",
                ds.admissible_equality(c.mu, c.sigma, 4) ? "ok" : "VIOLATED");
  }
  return 0;
}
