// Unit tests for deterministic STA, canonical-form SSTA and stage
// characterization, cross-validated against gate-level Monte-Carlo.
#include <gtest/gtest.h>

#include <cmath>

#include "device/delay_model.h"
#include "netlist/generators.h"
#include "process/variation.h"
#include "sim/engine.h"
#include "sta/characterize.h"
#include "sta/ssta.h"
#include "sta/ssta_batch.h"
#include "sta/sta.h"
#include "stats/descriptive.h"

namespace sp = statpipe;
using sp::device::AlphaPowerModel;
using sp::device::GateKind;
using sp::process::Technology;
using sp::process::VariationSpec;

namespace {

AlphaPowerModel model() { return AlphaPowerModel{Technology{}}; }

}  // namespace

// --------------------------------------------------------------------- STA

TEST(Sta, InverterChainDelayIsSumOfStages) {
  const auto nl = sp::netlist::inverter_chain(5);
  const auto m = model();
  const auto r = sp::sta::analyze(nl, m);
  // Interior inverters drive one inverter (load 1); the last drives the
  // output load 2.  d = tau*(p + load/size), p=1, tau from tech.
  const double tau = m.technology().tau_ps;
  const double expect = 4 * tau * (1.0 + 1.0) + tau * (1.0 + 2.0);
  EXPECT_NEAR(r.critical_delay, expect, 1e-9);
}

TEST(Sta, ArrivalMonotoneAlongChain) {
  const auto nl = sp::netlist::inverter_chain(8);
  const auto r = sp::sta::analyze(nl, model());
  double prev = -1.0;
  for (auto id : nl.topological_order()) {
    EXPECT_GE(r.arrival[id], prev - 1e-12);
    prev = r.arrival[id];
  }
}

TEST(Sta, CriticalPathEndsAtCriticalOutput) {
  const auto nl = sp::netlist::iscas_like("c432");
  const auto m = model();
  const auto r = sp::sta::analyze(nl, m);
  const auto path = r.critical_path(nl, m);
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(path.back(), r.critical_output);
  // Path arrival is non-decreasing.
  for (std::size_t i = 1; i < path.size(); ++i)
    EXPECT_GE(r.arrival[path[i]], r.arrival[path[i - 1]]);
}

TEST(Sta, UpsizedCircuitIsFaster) {
  auto nl = sp::netlist::iscas_like("c432");
  const auto m = model();
  const double d1 = sp::sta::analyze(nl, m).critical_delay;
  // Uniform upsizing speeds up the output stage (fixed external load).
  nl.scale_sizes(2.0);
  const double d2 = sp::sta::analyze(nl, m).critical_delay;
  EXPECT_LT(d2, d1);
}

TEST(Sta, SampleWithZeroShiftEqualsNominal) {
  const auto nl = sp::netlist::inverter_chain(6);
  const auto m = model();
  sp::process::DieSample die;  // all-zero shifts
  const auto r0 = sp::sta::analyze(nl, m);
  const auto r1 = sp::sta::analyze_sample(nl, m, die);
  EXPECT_NEAR(r0.critical_delay, r1.critical_delay, 1e-12);
}

TEST(Sta, SlowDieIsSlower) {
  const auto nl = sp::netlist::inverter_chain(6);
  const auto m = model();
  sp::process::DieSample die;
  die.dvth_inter = 0.040;
  EXPECT_GT(sp::sta::analyze_sample(nl, m, die).critical_delay,
            sp::sta::analyze(nl, m).critical_delay);
}

TEST(Sta, ThrowsWithoutOutputs) {
  sp::netlist::Netlist empty("empty");
  empty.add_input("a");
  EXPECT_THROW(sp::sta::analyze(empty, model()), std::logic_error);
}

// -------------------------------------------------------------------- SSTA

TEST(BlockSta, BitwiseMatchesScalarPerDie) {
  // critical_delay_sample_block's contract: die j of a width-W block gets
  // exactly the delay critical_delay_sample computes for that die.  Use a
  // reconvergent multi-fanin DAG and every variation component at once.
  const auto m = model();
  for (const char* which : {"c17", "grid"}) {
    const auto nl = std::string(which) == "c17"
                        ? sp::netlist::iscas_c17()
                        : sp::netlist::inverter_grid(4, 6);
    auto spec = VariationSpec::inter_intra(0.020, 0.010, 0.5);
    spec.sigma_l_inter_rel = 0.01;
    const sp::process::VariationSampler sampler(
        m.technology(), spec, sp::process::linear_sites(nl.size()));
    std::vector<std::size_t> site_map(nl.size());
    for (std::size_t i = 0; i < site_map.size(); ++i) site_map[i] = i;
    const sp::sta::StaOptions opt;

    for (const std::size_t width : {std::size_t{1}, std::size_t{8},
                                    std::size_t{16}}) {
      const sp::stats::Rng root(4321);
      std::vector<sp::stats::Rng> lane_rngs(width);
      for (std::size_t j = 0; j < width; ++j) lane_rngs[j] = root.fork(j);
      sp::process::DieBlock block;
      sp::process::BlockWorkspace bws;
      sampler.sample_block_into(lane_rngs.data(), width, block, bws);

      sp::sta::StaBlockWorkspace ws;
      std::vector<double> critical(width);
      sp::sta::critical_delay_sample_block(nl, m, block, site_map, opt, ws,
                                           critical.data());

      for (std::size_t j = 0; j < width; ++j) {
        sp::stats::Rng rng = root.fork(j);
        sp::process::DieSample die;
        sp::process::DieWorkspace dws;
        sampler.sample_into(rng, die, dws);
        sp::sta::StaWorkspace sws;
        const double scalar =
            sp::sta::critical_delay_sample(nl, m, die, site_map, opt, sws);
        EXPECT_EQ(critical[j], scalar)
            << which << " w=" << width << " die " << j;
      }
    }
  }
}

TEST(BlockSta, WorkspaceRebindsAcrossNetlists) {
  // One workspace streamed across two different stages must rebind its
  // cached structure (keyed on the netlist/site-map addresses) and still
  // match the scalar path on both.
  const auto m = model();
  const auto nl1 = sp::netlist::inverter_chain(6);
  const auto nl2 = sp::netlist::inverter_grid(3, 4);
  const auto spec = VariationSpec::intra_only();
  const sp::sta::StaOptions opt;
  sp::sta::StaBlockWorkspace ws;

  for (const auto* nl : {&nl1, &nl2, &nl1}) {
    const sp::process::VariationSampler sampler(
        m.technology(), spec, sp::process::linear_sites(nl->size()));
    std::vector<std::size_t> site_map(nl->size());
    for (std::size_t i = 0; i < site_map.size(); ++i) site_map[i] = i;
    const sp::stats::Rng root(7);
    std::vector<sp::stats::Rng> lane_rngs(4);
    for (std::size_t j = 0; j < 4; ++j) lane_rngs[j] = root.fork(j);
    sp::process::DieBlock block;
    sp::process::BlockWorkspace bws;
    sampler.sample_block_into(lane_rngs.data(), 4, block, bws);
    double critical[4];
    sp::sta::critical_delay_sample_block(*nl, m, block, site_map, opt, ws,
                                         critical);
    for (std::size_t j = 0; j < 4; ++j) {
      sp::stats::Rng rng = root.fork(j);
      sp::process::DieSample die;
      sp::process::DieWorkspace dws;
      sampler.sample_into(rng, die, dws);
      sp::sta::StaWorkspace sws;
      EXPECT_EQ(critical[j],
                sp::sta::critical_delay_sample(*nl, m, die, site_map, opt, sws))
          << nl->name() << " die " << j;
    }
  }
}

TEST(BlockSta, RejectsBadInputs) {
  const auto m = model();
  const auto nl = sp::netlist::inverter_chain(4);
  const auto spec = VariationSpec::intra_only();
  const sp::process::VariationSampler sampler(
      m.technology(), spec, sp::process::linear_sites(nl.size()));
  sp::stats::Rng rng(1);
  std::vector<sp::stats::Rng> lanes{rng.fork(0), rng.fork(1)};
  sp::process::DieBlock block;
  sp::process::BlockWorkspace bws;
  sampler.sample_block_into(lanes.data(), 2, block, bws);
  sp::sta::StaBlockWorkspace ws;
  double critical[2];
  const std::vector<std::size_t> short_map(nl.size() - 1, 0);
  EXPECT_THROW(sp::sta::critical_delay_sample_block(nl, m, block, short_map,
                                                    {}, ws, critical),
               std::invalid_argument);
  block.width = 0;
  std::vector<std::size_t> site_map(nl.size());
  for (std::size_t i = 0; i < site_map.size(); ++i) site_map[i] = i;
  EXPECT_THROW(sp::sta::critical_delay_sample_block(nl, m, block, site_map,
                                                    {}, ws, critical),
               std::invalid_argument);
}

TEST(Ssta, CanonicalArithmetic) {
  const sp::sta::CanonicalDelay a{10.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(a.sigma(), 5.0);
  const sp::sta::CanonicalDelay b{5.0, 1.0, 0.0};
  const auto s = a + b;
  EXPECT_DOUBLE_EQ(s.mu, 15.0);
  EXPECT_DOUBLE_EQ(s.b_inter, 4.0);
  EXPECT_DOUBLE_EQ(s.sigma_ind, 4.0);
}

TEST(Ssta, CorrelationFromSharedComponent) {
  const sp::sta::CanonicalDelay a{0.0, 3.0, 4.0};  // sigma 5
  const sp::sta::CanonicalDelay b{0.0, 4.0, 3.0};  // sigma 5
  EXPECT_NEAR(a.correlation(b), 12.0 / 25.0, 1e-12);
}

TEST(Ssta, MaxPreservesTotalVariance) {
  const sp::sta::CanonicalDelay a{10.0, 2.0, 1.0};
  const sp::sta::CanonicalDelay b{11.0, 1.5, 2.0};
  const auto m = sp::sta::canonical_max(a, b);
  // Total sigma of the canonical result equals the Clark sigma.
  const auto cm = sp::stats::clark_max(a.as_gaussian(), b.as_gaussian(),
                                       a.correlation(b));
  EXPECT_NEAR(m.mu, cm.max.mean, 1e-12);
  EXPECT_NEAR(m.sigma(), cm.max.sigma, 1e-9);
}

TEST(Ssta, ChainMeanMatchesDeterministicSta) {
  const auto nl = sp::netlist::inverter_chain(10);
  const auto m = model();
  const auto spec = VariationSpec::intra_only();
  const auto d = sp::sta::analyze_ssta(nl, m, spec);
  // First-order SSTA mean of a single chain equals the nominal delay
  // (no max operations on a chain).
  EXPECT_NEAR(d.mu, sp::sta::analyze(nl, m).critical_delay, 1e-9);
}

TEST(Ssta, InterOnlyChainSigmaMatchesAnalytic) {
  const auto nl = sp::netlist::inverter_chain(10);
  const auto m = model();
  const auto spec = VariationSpec::inter_only(0.040);
  const auto d = sp::sta::analyze_ssta(nl, m, spec);
  // Inter-only: every gate shifts together; sigma = sens_total * sigma_vth.
  EXPECT_EQ(d.sigma_ind, 0.0);
  EXPECT_NEAR(d.b_inter,
              d.mu * m.technology().alpha /
                  (m.technology().vdd - m.technology().vth0) * 0.040,
              1e-9);
}

TEST(Ssta, AgreesWithMonteCarloOnChain) {
  const auto nl = sp::netlist::inverter_chain(12);
  const auto m = model();
  const auto spec = VariationSpec::inter_intra(0.020, 0.010, 0.5);
  const auto d = sp::sta::analyze_ssta(nl, m, spec);

  sp::stats::Rng rng(21);
  sp::sta::CharacterizeOptions co;
  co.mc_samples = 8000;
  const auto mc = sp::sta::characterize_mc(nl, m, spec, rng, co);

  EXPECT_NEAR(d.mu, mc.delay.mean, 0.02 * mc.delay.mean);
  EXPECT_NEAR(d.sigma(), mc.delay.sigma, 0.15 * mc.delay.sigma);
}

TEST(Ssta, AgreesWithMonteCarloOnDag) {
  const auto nl = sp::netlist::iscas_like("c432");
  const auto m = model();
  const auto spec = VariationSpec::inter_intra(0.020, 0.0, 0.5);
  const auto d = sp::sta::analyze_ssta(nl, m, spec);

  sp::stats::Rng rng(22);
  sp::sta::CharacterizeOptions co;
  co.mc_samples = 4000;
  const auto mc = sp::sta::characterize_mc(nl, m, spec, rng, co);

  // Reconvergent fanout makes first-order SSTA approximate; require the
  // mean within 3% and sigma within 25%.
  EXPECT_NEAR(d.mu, mc.delay.mean, 0.03 * mc.delay.mean);
  EXPECT_NEAR(d.sigma(), mc.delay.sigma, 0.25 * mc.delay.sigma);
}

// ------------------------------------------------------------- batched SSTA

namespace {

// A K-point sizing grid around the netlist's current sizes, deterministic in
// (nl, k): lane k scales gate g by 0.6 + 0.1*((k + g) % 8).
std::vector<sp::sta::SstaConfig> sweep_grid(const sp::netlist::Netlist& nl,
                                            std::size_t k_lanes,
                                            const VariationSpec& spec) {
  std::vector<sp::sta::SstaConfig> cfgs(k_lanes);
  for (std::size_t k = 0; k < k_lanes; ++k) {
    cfgs[k].spec = spec;
    cfgs[k].sizes.resize(nl.size());
    for (std::size_t g = 0; g < nl.size(); ++g)
      cfgs[k].sizes[g] =
          nl.gate(g).size * (0.6 + 0.1 * static_cast<double>((k + g) % 8));
  }
  return cfgs;
}

void expect_bitwise_eq(const sp::sta::CanonicalDelay& a,
                       const sp::sta::CanonicalDelay& b) {
  EXPECT_EQ(a.mu, b.mu);
  EXPECT_EQ(a.b_inter, b.b_inter);
  EXPECT_EQ(a.sigma_ind, b.sigma_ind);
  EXPECT_EQ(a.b_sys, b.b_sys);
}

}  // namespace

TEST(SstaBatch, GridBitwiseEqualsScalarRuns) {
  // The PR's core invariant: a K>=8 sweep grid through SstaBatch is
  // bitwise-identical to K independent analyze_ssta runs.
  const auto nl = sp::netlist::iscas_like("c432");
  const auto m = model();
  const auto spec = VariationSpec::inter_intra(0.020, 0.010, 0.5);
  const auto cfgs = sweep_grid(nl, 9, spec);

  const auto batch = sp::sta::SstaBatch(nl, m).analyze(cfgs);
  ASSERT_EQ(batch.size(), cfgs.size());
  for (std::size_t k = 0; k < cfgs.size(); ++k) {
    auto work = nl;
    work.set_sizes(cfgs[k].sizes);
    expect_bitwise_eq(batch[k], sp::sta::analyze_ssta(work, m, cfgs[k].spec));
  }
}

TEST(SstaBatch, SingleLaneEqualsScalar) {
  const auto nl = sp::netlist::iscas_like("c880");
  const auto m = model();
  const auto spec = VariationSpec::inter_intra(0.015, 0.010, 0.4);
  const auto cfgs = sweep_grid(nl, 1, spec);
  const auto batch = sp::sta::SstaBatch(nl, m).analyze(cfgs);
  auto work = nl;
  work.set_sizes(cfgs[0].sizes);
  expect_bitwise_eq(batch[0], sp::sta::analyze_ssta(work, m, spec));
}

TEST(SstaBatch, EmptySizesUseNetlistSizes) {
  const auto nl = sp::netlist::inverter_chain(12);
  const auto m = model();
  const auto spec = VariationSpec::inter_intra(0.020, 0.010, 0.5);
  std::vector<sp::sta::SstaConfig> cfgs(2);
  cfgs[0].spec = spec;
  cfgs[1].spec = VariationSpec::inter_only(0.040);
  const auto batch = sp::sta::SstaBatch(nl, m).analyze(cfgs);
  expect_bitwise_eq(batch[0], sp::sta::analyze_ssta(nl, m, cfgs[0].spec));
  expect_bitwise_eq(batch[1], sp::sta::analyze_ssta(nl, m, cfgs[1].spec));
}

TEST(SstaBatch, ZeroVarianceLaneIsDegenerateButExact) {
  // A degenerate all-zero-variance config rides in the same batch as live
  // lanes: its canonical form collapses to the deterministic delay.
  const auto nl = sp::netlist::iscas_like("c432");
  const auto m = model();
  auto cfgs = sweep_grid(nl, 4, VariationSpec::inter_intra(0.020, 0.010, 0.5));
  VariationSpec frozen;  // every variation source off
  frozen.sigma_vth_inter = 0.0;
  frozen.sigma_vth_systematic = 0.0;
  frozen.enable_rdf = false;
  cfgs[2].spec = frozen;
  const auto batch = sp::sta::SstaBatch(nl, m).analyze(cfgs);
  for (std::size_t k = 0; k < cfgs.size(); ++k) {
    auto work = nl;
    work.set_sizes(cfgs[k].sizes);
    expect_bitwise_eq(batch[k], sp::sta::analyze_ssta(work, m, cfgs[k].spec));
  }
  EXPECT_EQ(batch[2].sigma(), 0.0);
  auto work = nl;
  work.set_sizes(cfgs[2].sizes);
  EXPECT_NEAR(batch[2].mu, sp::sta::analyze(work, m).critical_delay, 1e-9);
}

TEST(SstaBatch, CharacterizeBitwiseEqualsScalar) {
  const auto nl = sp::netlist::iscas_like("c499");
  const auto m = model();
  const auto spec = VariationSpec::inter_intra(0.020, 0.010, 0.5);
  const auto cfgs = sweep_grid(nl, 8, spec);
  const auto chars = sp::sta::SstaBatch(nl, m).characterize(cfgs);
  for (std::size_t k = 0; k < cfgs.size(); ++k) {
    auto work = nl;
    work.set_sizes(cfgs[k].sizes);
    const auto c = sp::sta::characterize_ssta(work, m, cfgs[k].spec);
    EXPECT_EQ(chars[k].delay.mean, c.delay.mean);
    EXPECT_EQ(chars[k].delay.sigma, c.delay.sigma);
    EXPECT_EQ(chars[k].sigma_inter, c.sigma_inter);
    EXPECT_EQ(chars[k].sigma_private, c.sigma_private);
    EXPECT_EQ(chars[k].area, c.area);
    EXPECT_EQ(chars[k].nominal_delay, c.nominal_delay);
  }
}

TEST(SstaBatch, ResultIndependentOfShardingAndThreads) {
  // No RNG is involved, so any (samples_per_shard, threads) pair gives the
  // same lanes bitwise.
  const auto nl = sp::netlist::iscas_like("c432");
  const auto m = model();
  const auto cfgs =
      sweep_grid(nl, 16, VariationSpec::inter_intra(0.020, 0.010, 0.5));
  const sp::sta::SstaBatch batch(nl, m);
  const auto serial = batch.analyze(cfgs, sp::sim::ExecutionOptions{1, 1024});
  const auto narrow = batch.analyze(cfgs, sp::sim::ExecutionOptions{0, 1});
  const auto chunky = batch.analyze(cfgs, sp::sim::ExecutionOptions{0, 3});
  for (std::size_t k = 0; k < cfgs.size(); ++k) {
    expect_bitwise_eq(serial[k], narrow[k]);
    expect_bitwise_eq(serial[k], chunky[k]);
  }
}

TEST(SstaBatch, RejectsBadConfigAndMissingOutputs) {
  const auto nl = sp::netlist::inverter_chain(4);
  const auto m = model();
  std::vector<sp::sta::SstaConfig> bad(1);
  bad[0].sizes = {1.0, 2.0};  // wrong length
  EXPECT_THROW(sp::sta::SstaBatch(nl, m).analyze(bad), std::invalid_argument);

  sp::netlist::Netlist empty("empty");
  empty.add_input("a");
  EXPECT_THROW(sp::sta::SstaBatch(empty, m), std::logic_error);
}

// --------------------------------------------------------- characterization

TEST(Characterize, InterOnlySplitsAllSigmaToShared) {
  const auto nl = sp::netlist::inverter_chain(8);
  const auto m = model();
  sp::stats::Rng rng(31);
  sp::sta::CharacterizeOptions co;
  co.mc_samples = 4000;
  const auto c = sp::sta::characterize_mc(
      nl, m, VariationSpec::inter_only(0.040), rng, co);
  EXPECT_GT(c.sigma_inter, 0.0);
  EXPECT_NEAR(c.sigma_private / c.delay.sigma, 0.0, 0.1);
}

TEST(Characterize, IntraOnlySplitsAllSigmaToPrivate) {
  const auto nl = sp::netlist::inverter_chain(8);
  const auto m = model();
  sp::stats::Rng rng(32);
  sp::sta::CharacterizeOptions co;
  co.mc_samples = 4000;
  const auto c =
      sp::sta::characterize_mc(nl, m, VariationSpec::intra_only(), rng, co);
  EXPECT_EQ(c.sigma_inter, 0.0);
  EXPECT_NEAR(c.sigma_private, c.delay.sigma, 1e-12);
}

TEST(Characterize, SstaAndMcAgree) {
  const auto nl = sp::netlist::inverter_chain(10);
  const auto m = model();
  const auto spec = VariationSpec::inter_intra(0.020, 0.010, 0.5);
  sp::stats::Rng rng(33);
  sp::sta::CharacterizeOptions co;
  co.mc_samples = 6000;
  const auto a = sp::sta::characterize_ssta(nl, m, spec, co);
  const auto b = sp::sta::characterize_mc(nl, m, spec, rng, co);
  EXPECT_NEAR(a.delay.mean, b.delay.mean, 0.02 * b.delay.mean);
  EXPECT_NEAR(a.delay.sigma, b.delay.sigma, 0.2 * b.delay.sigma);
  EXPECT_DOUBLE_EQ(a.area, b.area);
}

TEST(Characterize, LogicDepthReducesVariability) {
  // The paper's Fig. 5(a): with random intra-die variation only, deeper
  // logic averages out gate-level randomness.
  const auto m = model();
  const auto spec = VariationSpec::intra_only();
  sp::sta::CharacterizeOptions co;
  const auto shallow = sp::sta::characterize_ssta(
      sp::netlist::inverter_chain(5), m, spec, co);
  const auto deep = sp::sta::characterize_ssta(
      sp::netlist::inverter_chain(40), m, spec, co);
  EXPECT_GT(shallow.delay.sigma / shallow.delay.mean,
            deep.delay.sigma / deep.delay.mean);
}

TEST(Characterize, InterDieVariabilityFlatWithDepth) {
  // Fig. 5(a), inter-only series: variability independent of logic depth.
  const auto m = model();
  const auto spec = VariationSpec::inter_only(0.040);
  sp::sta::CharacterizeOptions co;
  const auto shallow = sp::sta::characterize_ssta(
      sp::netlist::inverter_chain(5), m, spec, co);
  const auto deep = sp::sta::characterize_ssta(
      sp::netlist::inverter_chain(40), m, spec, co);
  EXPECT_NEAR(shallow.delay.sigma / shallow.delay.mean,
              deep.delay.sigma / deep.delay.mean, 1e-6);
}
