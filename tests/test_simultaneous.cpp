// Tests for the simultaneous whole-pipeline sizer (the section-4 ablation
// reference).
#include <gtest/gtest.h>

#include "netlist/generators.h"
#include "opt/simultaneous.h"
#include "opt/sizer.h"

namespace sp = statpipe;

namespace {

struct Env {
  sp::device::AlphaPowerModel model{sp::process::Technology{}};
  sp::device::LatchModel latch{{}, model};
  sp::process::VariationSpec spec =
      sp::process::VariationSpec::inter_intra(0.005, 0.020, 0.3);

  std::vector<sp::netlist::Netlist> stages;
  std::vector<sp::netlist::Netlist*> ptrs;

  explicit Env(std::size_t m) {
    for (std::size_t i = 0; i < m; ++i)
      stages.push_back(sp::netlist::iscas_like("c499", 70 + i));
    for (auto& s : stages) ptrs.push_back(&s);
  }

  double reachable_target(double slack) {
    double worst = 0.0;
    for (auto& s : stages) {
      auto copy = s;
      sp::opt::SizerOptions so;
      so.t_target = 1e-3;
      (void)sp::opt::size_stage(copy, model, spec, so);
      worst = std::max(worst, sp::opt::stat_delay(copy, model, spec, 0.95));
    }
    return worst * slack + latch.timing().nominal_overhead();
  }
};

}  // namespace

TEST(Simultaneous, MeetsReachableYieldTarget) {
  Env e(3);
  sp::opt::SimultaneousOptions so;
  so.t_target = e.reachable_target(1.15);
  so.yield_target = 0.80;
  const auto r = sp::opt::size_pipeline_simultaneous(e.ptrs, e.model, e.spec,
                                                     e.latch, so);
  EXPECT_TRUE(r.feasible);
  EXPECT_GE(r.pipeline_yield, 0.80 - 1e-9);
  EXPECT_GT(r.iterations, 0u);
}

TEST(Simultaneous, InfeasibleTargetReportedHonestly) {
  Env e(2);
  sp::opt::SimultaneousOptions so;
  so.t_target = e.latch.timing().nominal_overhead() + 1.0;  // impossible
  so.yield_target = 0.80;
  const auto r = sp::opt::size_pipeline_simultaneous(e.ptrs, e.model, e.spec,
                                                     e.latch, so);
  EXPECT_FALSE(r.feasible);
  EXPECT_LT(r.pipeline_yield, 0.80);
}

TEST(Simultaneous, TighterTargetCostsMoreArea) {
  Env tight(2), loose(2);
  const double t_fast = tight.reachable_target(1.06);
  const double t_slow = tight.reachable_target(1.40);

  sp::opt::SimultaneousOptions so;
  so.yield_target = 0.80;
  so.t_target = t_fast;
  const auto rf = sp::opt::size_pipeline_simultaneous(
      tight.ptrs, tight.model, tight.spec, tight.latch, so);
  so.t_target = t_slow;
  const auto rs = sp::opt::size_pipeline_simultaneous(
      loose.ptrs, loose.model, loose.spec, loose.latch, so);
  ASSERT_TRUE(rf.feasible);
  ASSERT_TRUE(rs.feasible);
  EXPECT_GT(rf.area, rs.area);
}

TEST(Simultaneous, SizesWithinBounds) {
  Env e(2);
  sp::opt::SimultaneousOptions so;
  so.t_target = e.reachable_target(1.10);
  so.sizer.min_size = 0.5;
  so.sizer.max_size = 10.0;
  (void)sp::opt::size_pipeline_simultaneous(e.ptrs, e.model, e.spec, e.latch,
                                            so);
  for (const auto& s : e.stages)
    for (const auto& g : s.gates()) {
      if (g.is_pseudo()) continue;
      EXPECT_GE(g.size, so.sizer.min_size - 1e-9);
      EXPECT_LE(g.size, so.sizer.max_size + 1e-9);
    }
}

TEST(Simultaneous, RejectsBadInputs) {
  Env e(2);
  sp::opt::SimultaneousOptions so;
  so.yield_target = 1.2;
  EXPECT_THROW(sp::opt::size_pipeline_simultaneous(e.ptrs, e.model, e.spec,
                                                   e.latch, so),
               std::invalid_argument);
  std::vector<sp::netlist::Netlist*> empty;
  so.yield_target = 0.8;
  EXPECT_THROW(sp::opt::size_pipeline_simultaneous(empty, e.model, e.spec,
                                                   e.latch, so),
               std::invalid_argument);
}
