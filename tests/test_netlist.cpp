// Unit tests for the netlist DAG, the .bench parser and the generators.
#include <gtest/gtest.h>

#include <sstream>

#include "netlist/bench_parser.h"
#include "netlist/generators.h"
#include "netlist/netlist.h"

namespace nl = statpipe::netlist;
using statpipe::device::GateKind;

// ----------------------------------------------------------------- netlist

namespace {

nl::Netlist tiny() {
  // in -> inv -> nand(in, inv) -> out
  nl::Netlist n("tiny");
  const auto in = n.add_input("in");
  const auto inv = n.add_gate("inv", GateKind::kNot, {in});
  const auto nand = n.add_gate("nand", GateKind::kNand2, {in, inv});
  n.mark_output(nand);
  return n;
}

}  // namespace

TEST(Netlist, BasicConstruction) {
  auto n = tiny();
  EXPECT_EQ(n.size(), 3u);
  EXPECT_EQ(n.gate_count(), 2u);
  EXPECT_EQ(n.inputs().size(), 1u);
  EXPECT_EQ(n.outputs().size(), 1u);
  EXPECT_EQ(n.validate(), 3u);
}

TEST(Netlist, TopologicalOrderRespectsEdges) {
  auto n = tiny();
  const auto& topo = n.topological_order();
  std::vector<std::size_t> pos(n.size());
  for (std::size_t i = 0; i < topo.size(); ++i) pos[topo[i]] = i;
  for (std::size_t id = 0; id < n.size(); ++id)
    for (auto f : n.gate(id).fanins) EXPECT_LT(pos[f], pos[id]);
}

TEST(Netlist, LevelsAndDepth) {
  auto n = tiny();
  const auto lvl = n.levels();
  EXPECT_EQ(lvl[n.find("in")], 0u);
  EXPECT_EQ(lvl[n.find("inv")], 1u);
  EXPECT_EQ(lvl[n.find("nand")], 2u);
  EXPECT_EQ(n.depth(), 2u);
}

TEST(Netlist, AreaAndLoad) {
  auto n = tiny();
  // inv size 1 (area 1.0) + nand2 size 1 (area 1.6).
  EXPECT_NEAR(n.total_area(), 2.6, 1e-12);
  // inv drives one nand2 input: load = g_nand2 = 4/3.
  EXPECT_NEAR(n.load_of(n.find("inv")), 4.0 / 3.0, 1e-12);
  // nand drives the primary output load (default 2.0).
  EXPECT_NEAR(n.load_of(n.find("nand")), 2.0, 1e-12);
}

TEST(Netlist, ScaleSizes) {
  auto n = tiny();
  n.scale_sizes(2.0);
  EXPECT_NEAR(n.total_area(), 5.2, 1e-12);
  EXPECT_THROW(n.scale_sizes(0.0), std::invalid_argument);
}

TEST(Netlist, ValidateCatchesArityViolation) {
  nl::Netlist n("bad");
  const auto a = n.add_input("a");
  const auto b = n.add_input("b");
  const auto c = n.add_input("c");
  // NOT with 3 fanins: legal to construct, caught by validate.
  n.add_gate("bad_not", GateKind::kNot, {a, b, c});
  EXPECT_THROW(n.validate(), std::logic_error);
}

TEST(Netlist, FindMissingReturnsInvalid) {
  auto n = tiny();
  EXPECT_EQ(n.find("nonexistent"), nl::kInvalidGate);
}

TEST(Netlist, PositionsAssigned) {
  auto n = tiny();
  n.assign_linear_positions();
  EXPECT_DOUBLE_EQ(n.gate(n.topological_order().front()).position, 0.0);
  EXPECT_DOUBLE_EQ(n.gate(n.topological_order().back()).position, 1.0);
}

// ------------------------------------------------------------------- bench

TEST(BenchParser, ParsesSmallCircuit) {
  const std::string text = R"(
# small test circuit
INPUT(a)
INPUT(b)
OUTPUT(y)
n1 = NAND(a, b)
y = NOT(n1)
)";
  const auto n = nl::parse_bench_string(text, "small");
  EXPECT_EQ(n.inputs().size(), 2u);
  EXPECT_EQ(n.outputs().size(), 1u);
  EXPECT_EQ(n.gate_count(), 2u);
  EXPECT_EQ(n.gate(n.find("n1")).kind, GateKind::kNand2);
}

TEST(BenchParser, WidensArityFreeNames) {
  const std::string text = R"(
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(y)
y = NAND(a, b, c)
)";
  const auto n = nl::parse_bench_string(text);
  EXPECT_EQ(n.gate(n.find("y")).kind, GateKind::kNand3);
}

TEST(BenchParser, HandlesForwardReferences) {
  // y is defined before its fanin n1 appears — legal in .bench files.
  const std::string text = R"(
INPUT(a)
OUTPUT(y)
y = NOT(n1)
n1 = NOT(a)
)";
  const auto n = nl::parse_bench_string(text);
  EXPECT_EQ(n.gate_count(), 2u);
}

TEST(BenchParser, RejectsUndefinedSignal) {
  const std::string text = "INPUT(a)\nOUTPUT(y)\ny = NOT(ghost)\n";
  EXPECT_THROW(nl::parse_bench_string(text), std::runtime_error);
}

TEST(BenchParser, RejectsDuplicateDefinition) {
  const std::string text =
      "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\ny = BUFF(a)\n";
  EXPECT_THROW(nl::parse_bench_string(text), std::runtime_error);
}

TEST(BenchParser, RejectsDff) {
  const std::string text = "INPUT(a)\nOUTPUT(y)\ny = DFF(a)\n";
  EXPECT_THROW(nl::parse_bench_string(text), std::runtime_error);
}

TEST(BenchParser, RejectsMalformedLine) {
  EXPECT_THROW(nl::parse_bench_string("INPUT a\n"), std::runtime_error);
  EXPECT_THROW(nl::parse_bench_string("x = NAND(a\n"), std::runtime_error);
}

TEST(BenchParser, RoundTripsThroughWriter) {
  const auto original = nl::iscas_like("c432");
  const auto text = nl::write_bench(original);
  const auto reparsed = nl::parse_bench_string(text);
  EXPECT_EQ(reparsed.gate_count(), original.gate_count());
  EXPECT_EQ(reparsed.inputs().size(), original.inputs().size());
  EXPECT_EQ(reparsed.outputs().size(), original.outputs().size());
  EXPECT_EQ(reparsed.depth(), original.depth());
}

// -------------------------------------------------------------- generators

TEST(Generators, InverterChainShape) {
  const auto n = nl::inverter_chain(10);
  EXPECT_EQ(n.gate_count(), 10u);
  EXPECT_EQ(n.depth(), 10u);
  EXPECT_EQ(n.outputs().size(), 1u);
  EXPECT_EQ(n.validate(), 11u);
  EXPECT_THROW(nl::inverter_chain(0), std::invalid_argument);
}

TEST(Generators, InverterGridShape) {
  const auto n = nl::inverter_grid(4, 6);
  EXPECT_EQ(n.gate_count(), 24u);
  EXPECT_EQ(n.depth(), 6u);
  EXPECT_EQ(n.outputs().size(), 4u);
}

TEST(Generators, IscasStatsKnownValues) {
  EXPECT_EQ(nl::iscas_stats("c432").gates, 160u);
  EXPECT_EQ(nl::iscas_stats("c3540").gates, 1669u);
  // The paper's "c1980" typo maps to c1908.
  EXPECT_EQ(nl::iscas_stats("c1980").name, "c1908");
  EXPECT_THROW(nl::iscas_stats("c9999"), std::invalid_argument);
}

class IscasLikeShape : public ::testing::TestWithParam<const char*> {};

TEST_P(IscasLikeShape, MatchesPublishedStats) {
  const auto stats = nl::iscas_stats(GetParam());
  const auto n = nl::iscas_like(GetParam());
  EXPECT_EQ(n.gate_count(), stats.gates);
  EXPECT_EQ(n.inputs().size(), stats.inputs);
  EXPECT_EQ(n.outputs().size(), stats.outputs);
  EXPECT_EQ(n.depth(), stats.depth);
  EXPECT_NO_THROW(n.validate());
}

INSTANTIATE_TEST_SUITE_P(PaperCircuits, IscasLikeShape,
                         ::testing::Values("c432", "c1908", "c2670", "c3540"));

TEST(Generators, DeterministicForSeed) {
  const auto a = nl::iscas_like("c432", 7);
  const auto b = nl::iscas_like("c432", 7);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.gate(i).kind, b.gate(i).kind);
    EXPECT_EQ(a.gate(i).fanins, b.gate(i).fanins);
  }
}

TEST(Generators, DifferentSeedsDiffer) {
  const auto a = nl::iscas_like("c432", 1);
  const auto b = nl::iscas_like("c432", 2);
  bool any_diff = false;
  for (std::size_t i = 0; i < std::min(a.size(), b.size()); ++i)
    if (a.gate(i).kind != b.gate(i).kind || a.gate(i).fanins != b.gate(i).fanins)
      any_diff = true;
  EXPECT_TRUE(any_diff);
}
