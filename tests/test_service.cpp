// Persistent multi-tenant service tests (wire v4): the scheduler's
// priority/fair-share/FIFO policy and its determinism, the
// content-addressed result cache (key sensitivity down to a single f64
// bit, deterministic LRU eviction, hit/miss accounting), the v4
// adversarial surface (header truncation and per-byte mutation fuzz over
// the new session/request fields, stale sessions, duplicate request ids,
// cross-session replay of authenticated frames, the v3-peer version
// error), the resident ClusterHandle fleet — and the acceptance property:
// N concurrent client sessions interleaving MC and SSTA-grid requests
// over one resident fleet, with a worker SIGKILLed mid-stream, each
// receive results bitwise-identical to their single-process references
// (docs/DETERMINISM.md, per-request contract).
#include <gtest/gtest.h>
#include <signal.h>
#include <spawn.h>
#include <sys/socket.h>
#include <sys/wait.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "dist/cluster.h"
#include "dist/hmac.h"
#include "dist/result_cache.h"
#include "dist/scheduler.h"
#include "dist/serialize.h"
#include "dist/service.h"
#include "dist/task.h"
#include "dist/transport.h"
#include "dist/workload.h"
#include "netlist/generators.h"
#include "obs/telemetry.h"

extern char** environ;

namespace sp = statpipe;
using sp::dist::ByteReader;
using sp::dist::ByteWriter;
using sp::dist::MsgType;
using sp::dist::SchedTask;
using sp::dist::Scheduler;

namespace {

// ------------------------------------------------------------- helpers

sp::dist::RunDescriptor mc_descriptor(std::uint64_t seed = 20260808,
                                      std::uint64_t samples = 512,
                                      std::uint64_t samples_per_shard = 64) {
  sp::dist::RunDescriptor d;
  d.workload = "c432";
  d.seed = seed;
  d.n_samples = samples;
  d.samples_per_shard = samples_per_shard;
  d.block_width = 8;
  d.sigma_vth_inter = 0.020;
  d.sigma_vth_systematic = 0.0;  // keep the O(sites^2) field out of tests
  d.enable_rdf = 1;
  sp::dist::finalize_descriptor(d);
  return d;
}

sp::dist::RunDescriptor grid_descriptor(std::size_t lanes = 5,
                                        double scale_step = 0.07) {
  sp::dist::RunDescriptor d;
  d.task_kind = sp::dist::TaskKind::kSstaGrid;
  d.workload = "c432";
  d.seed = 20260808;
  const auto nl = sp::netlist::iscas_like("c432");
  d.size_grid.assign(lanes, nl.sizes());
  for (std::size_t k = 0; k < lanes; ++k)
    for (double& s : d.size_grid[k])
      s *= 1.0 + scale_step * static_cast<double>(k);
  sp::dist::finalize_descriptor(d);
  return d;
}

pid_t spawn_worker(std::uint16_t port) {
  const char* bin = STATPIPE_WORKER_BIN;
  const std::string port_s = std::to_string(port);
  std::vector<char*> args{const_cast<char*>(bin),
                          const_cast<char*>("--port"),
                          const_cast<char*>(port_s.c_str()),
                          const_cast<char*>("--quiet"), nullptr};
  pid_t pid = -1;
  const int rc =
      ::posix_spawn(&pid, bin, nullptr, nullptr, args.data(), environ);
  EXPECT_EQ(rc, 0) << "posix_spawn " << bin;
  return rc == 0 ? pid : -1;
}

// Reaps a worker while draining the service's listener backlog (see
// test_dist's reap); `expect_signal` accepts a SIGKILLed one.
void reap(sp::dist::Service& svc, pid_t pid, bool expect_signal = false) {
  if (pid < 0) return;
  int status = 0;
  pid_t got;
  while ((got = ::waitpid(pid, &status, WNOHANG)) == 0) {
    svc.drain_backlog();
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ASSERT_EQ(got, pid);
  if (expect_signal) {
    EXPECT_TRUE(WIFSIGNALED(status));
  } else {
    EXPECT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0);
  }
}

// A connected AF_UNIX pair wrapped in dist Sockets — the transport works
// on any stream fd, so frame-level adversarial tests need no listener.
std::pair<sp::dist::Socket, sp::dist::Socket> stream_pair() {
  int fds[2] = {-1, -1};
  EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  return {sp::dist::Socket(fds[0]), sp::dist::Socket(fds[1])};
}

// Drains one scheduler to a (rid, begin) assignment transcript.
std::vector<std::pair<std::uint64_t, std::size_t>> drain(Scheduler& s) {
  std::vector<std::pair<std::uint64_t, std::size_t>> out;
  while (auto t = s.next()) out.emplace_back(t->rid, t->begin);
  return out;
}

// ------------------------------------------------------------ scheduler

TEST(Scheduler, HigherPriorityClassDrainsStrictlyFirst) {
  Scheduler s;
  s.add_request(1, 100, 0);  // session 100, low priority, submitted first
  s.add_request(2, 200, 5);  // session 200, high priority
  s.enqueue({1, 0, 4, 0});
  s.enqueue({1, 4, 8, 0});
  s.enqueue({2, 0, 4, 0});
  s.enqueue({2, 4, 8, 0});
  const auto got = drain(s);
  const std::vector<std::pair<std::uint64_t, std::size_t>> want = {
      {2, 0}, {2, 4}, {1, 0}, {1, 4}};
  EXPECT_EQ(got, want);
  EXPECT_TRUE(s.empty());
}

TEST(Scheduler, FairShareAlternatesSessionsWithinAClass) {
  Scheduler s;
  s.add_request(1, 100, 0);
  s.add_request(2, 200, 0);
  for (std::size_t b = 0; b < 6; b += 2) s.enqueue({1, b, b + 2, 0});
  for (std::size_t b = 0; b < 6; b += 2) s.enqueue({2, b, b + 2, 0});
  const auto got = drain(s);
  // Equal range sizes: the deficit counters force strict alternation,
  // first-seen session order breaking the ties.
  const std::vector<std::pair<std::uint64_t, std::size_t>> want = {
      {1, 0}, {2, 0}, {1, 2}, {2, 2}, {1, 4}, {2, 4}};
  EXPECT_EQ(got, want);
  EXPECT_EQ(s.session_units(100), 6u);
  EXPECT_EQ(s.session_units(200), 6u);
}

TEST(Scheduler, FairShareBalancesByUnitsNotByRangeCount) {
  Scheduler s;
  s.add_request(1, 100, 0);  // coarse ranges: 4 units each
  s.add_request(2, 200, 0);  // fine ranges: 1 unit each
  s.enqueue({1, 0, 4, 0});
  s.enqueue({1, 4, 8, 0});
  for (std::size_t b = 0; b < 4; ++b) s.enqueue({2, b, b + 1, 0});
  const auto got = drain(s);
  // Session 100 takes 4 units in one gulp; session 200 then catches up
  // with four 1-unit ranges before 100 runs again.
  const std::vector<std::pair<std::uint64_t, std::size_t>> want = {
      {1, 0}, {2, 0}, {2, 1}, {2, 2}, {2, 3}, {1, 4}};
  EXPECT_EQ(got, want);
}

TEST(Scheduler, FifoWithinASessionAndQueueOrderWithinARequest) {
  Scheduler s;
  s.add_request(7, 100, 0);
  s.add_request(8, 100, 0);  // same session, submitted later
  s.enqueue({8, 0, 2, 0});   // enqueue order must not matter
  s.enqueue({7, 0, 2, 0});
  s.enqueue({7, 2, 4, 0});
  s.enqueue({8, 2, 4, 0});
  const auto got = drain(s);
  const std::vector<std::pair<std::uint64_t, std::size_t>> want = {
      {7, 0}, {7, 2}, {8, 0}, {8, 2}};
  EXPECT_EQ(got, want);
}

TEST(Scheduler, RequeueFrontRunsTheRetryBeforeFreshRanges) {
  Scheduler s;
  s.add_request(1, 100, 0);
  s.enqueue({1, 0, 2, 0});
  s.enqueue({1, 2, 4, 0});
  auto first = s.next();
  ASSERT_TRUE(first);
  EXPECT_EQ(first->begin, 0u);
  first->attempts = 1;
  s.requeue_front(*first);
  auto retry = s.next();
  ASSERT_TRUE(retry);
  EXPECT_EQ(retry->begin, 0u);  // the forfeited range again, not [2, 4)
  EXPECT_EQ(retry->attempts, 1);
}

TEST(Scheduler, RemoveRequestDropsItsPendingRanges) {
  Scheduler s;
  s.add_request(1, 100, 0);
  s.add_request(2, 100, 0);
  s.enqueue({1, 0, 2, 0});
  s.enqueue({2, 0, 2, 0});
  EXPECT_EQ(s.pending_ranges(), 2u);
  s.remove_request(1);
  EXPECT_EQ(s.pending_ranges(), 1u);
  const auto got = drain(s);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].first, 2u);
}

TEST(Scheduler, IdenticalCallSequencesYieldIdenticalAssignments) {
  auto build = [] {
    Scheduler s;
    s.add_request(1, 100, 2);
    s.add_request(2, 200, 0);
    s.add_request(3, 100, 0);
    for (std::size_t b = 0; b < 8; b += 2) {
      s.enqueue({1, b, b + 2, 0});
      s.enqueue({2, b, b + 1, 0});
      s.enqueue({3, b, b + 2, 0});
    }
    return s;
  };
  Scheduler a = build();
  Scheduler b = build();
  // Interleave a requeue identically on both.
  auto ta = a.next();
  auto tb = b.next();
  ASSERT_TRUE(ta && tb);
  a.requeue_front(*ta);
  b.requeue_front(*tb);
  EXPECT_EQ(drain(a), drain(b));
}

// ----------------------------------------------------------- result cache

TEST(ResultCache, KeyChangesWhenOneTechnologyF64Changes) {
  sp::dist::RunDescriptor a = mc_descriptor();
  sp::dist::RunDescriptor b = a;
  b.tech_avt = std::nextafter(b.tech_avt, 1.0);  // one f64 ulp
  const sp::dist::Digest ka = sp::dist::ResultCache::key_for(a);
  const sp::dist::Digest kb = sp::dist::ResultCache::key_for(b);
  EXPECT_TRUE(ka < kb || kb < ka) << "one-ulp technology change must rekey";

  sp::dist::RunDescriptor c = a;
  c.root_seed ^= 1;  // the (descriptor, root_seed) identity
  const sp::dist::Digest kc = sp::dist::ResultCache::key_for(c);
  EXPECT_TRUE(ka < kc || kc < ka) << "root_seed is part of the cache key";

  EXPECT_FALSE(ka < sp::dist::ResultCache::key_for(a) ||
               sp::dist::ResultCache::key_for(a) < ka);
}

TEST(ResultCache, HitMissAndDeterministicLruEviction) {
  auto key = [](char c) {
    const std::vector<std::uint8_t> bytes{static_cast<std::uint8_t>(c)};
    return sp::dist::sha256(bytes);
  };
  const std::vector<std::uint8_t> blob(40, 0xAB);

  sp::dist::ResultCache cache(100);
  EXPECT_EQ(cache.find(key('a')), nullptr);
  EXPECT_EQ(cache.misses(), 1u);
  cache.insert(key('a'), blob);
  ASSERT_NE(cache.find(key('a')), nullptr);
  EXPECT_EQ(cache.hits(), 1u);

  cache.insert(key('b'), blob);
  ASSERT_NE(cache.find(key('a')), nullptr);  // refresh a: b is now LRU
  cache.insert(key('c'), blob);              // 120 > 100: evict exactly b
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.entries(), 2u);
  EXPECT_EQ(cache.find(key('b')), nullptr);
  EXPECT_NE(cache.find(key('a')), nullptr);
  EXPECT_NE(cache.find(key('c')), nullptr);

  // Same call sequence, fresh cache: identical eviction outcome.
  sp::dist::ResultCache replay(100);
  (void)replay.find(key('a'));
  replay.insert(key('a'), blob);
  (void)replay.find(key('a'));
  replay.insert(key('b'), blob);
  (void)replay.find(key('a'));
  replay.insert(key('c'), blob);
  EXPECT_EQ(replay.evictions(), 1u);
  EXPECT_EQ(replay.find(key('b')), nullptr);
  EXPECT_NE(replay.find(key('a')), nullptr);
}

TEST(ResultCache, OversizeBlobsAndZeroBoundNeverCache) {
  const std::vector<std::uint8_t> small(8, 1);
  const std::vector<std::uint8_t> huge(200, 2);
  const auto k = sp::dist::sha256(small);

  sp::dist::ResultCache bounded(100);
  bounded.insert(k, huge);  // alone larger than the bound: dropped
  EXPECT_EQ(bounded.entries(), 0u);
  EXPECT_EQ(bounded.find(k), nullptr);

  sp::dist::ResultCache disabled(0);
  disabled.insert(k, small);
  EXPECT_EQ(disabled.entries(), 0u);
  EXPECT_EQ(disabled.find(k), nullptr);
  EXPECT_EQ(disabled.misses(), 1u);
}

// ------------------------------------------------- wire v4 frame hardening

TEST(WireV4, V3PeerGetsTheClearVersionError) {
  auto [a, b] = stream_pair();
  ByteWriter w;  // a v3-style 16-byte header: magic, u16 version=3, ...
  w.u32(sp::dist::kWireMagic);
  w.u16(3);
  w.u16(1);
  w.u64(0);
  a.send_all(w.bytes().data(), w.bytes().size());
  try {
    (void)sp::dist::recv_frame(b);
    FAIL() << "v3 header must be rejected";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("wire version 3"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("this build 4"), std::string::npos)
        << e.what();
  }
}

TEST(WireV4, EveryHeaderTruncationIsRejectedNotAccepted) {
  ByteWriter payload;
  payload.u16(sp::dist::kWireVersion);
  const std::vector<std::uint8_t> frame = sp::dist::encode_frame(
      MsgType::kClientHello, payload.bytes(), {}, 7, 9);
  ASSERT_GE(frame.size(), 36u);
  for (std::size_t len = 0; len < 36; ++len) {
    auto [a, b] = stream_pair();
    a.send_all(frame.data(), len);
    a.close();
    if (len == 0) {
      // A close at the frame boundary is the one clean disconnect.
      EXPECT_EQ(sp::dist::recv_frame(b), std::nullopt);
    } else {
      EXPECT_THROW((void)sp::dist::recv_frame(b), std::runtime_error)
          << "truncated header at " << len << " bytes";
    }
  }
  // The two-stage read names the prefix boundary precisely.
  auto [a, b] = stream_pair();
  a.send_all(frame.data(), 8);
  a.close();
  try {
    (void)sp::dist::recv_frame(b);
    FAIL() << "prefix-only header must be rejected";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("8/36"), std::string::npos)
        << e.what();
  }
}

TEST(WireV4, EveryAuthenticatedByteMutationIsRejected) {
  const sp::dist::FrameAuth auth =
      sp::dist::FrameAuth::from_passphrase("mutation-fuzz-key");
  ByteWriter payload;
  payload.u32(0);
  payload.str("request body");
  const std::vector<std::uint8_t> frame = sp::dist::encode_frame(
      MsgType::kSubmit, payload.bytes(), auth, 0x1122334455667788ull,
      0x99AABBCCDDEEFF00ull);
  // Flip one bit of every byte — header (the MAC covers the whole v4
  // header, session and request ids included), payload and trailer — so
  // no single-byte corruption may survive, and a frame can never be
  // accepted with altered routing fields.
  for (std::size_t i = 0; i < frame.size(); ++i) {
    std::vector<std::uint8_t> bad = frame;
    bad[i] ^= 0x01;
    auto [a, b] = stream_pair();
    a.send_all(bad.data(), bad.size());
    a.close();
    EXPECT_THROW((void)sp::dist::recv_frame(b, auth), std::runtime_error)
        << "mutated byte " << i << " was accepted";
  }
  // Control: the unmutated frame round-trips with its scoping intact.
  auto [a, b] = stream_pair();
  a.send_all(frame.data(), frame.size());
  const auto f = sp::dist::recv_frame(b, auth);
  ASSERT_TRUE(f);
  EXPECT_EQ(f->type, MsgType::kSubmit);
  EXPECT_EQ(f->session_id, 0x1122334455667788ull);
  EXPECT_EQ(f->request_id, 0x99AABBCCDDEEFF00ull);
}

// ------------------------------------------------- service session guards

// Hosts a Service on a background thread for adversarial client tests.
// The destructor wakes the event loop with a throwaway client hello so
// the stop predicate is observed without needing an idle timeout.
class LiveService {
 public:
  explicit LiveService(sp::dist::ServiceOptions so) : svc_(std::move(so)) {
    th_ = std::thread([this] { svc_.run([this] { return stop_.load(); }); });
  }
  ~LiveService() {
    stop_.store(true);
    try {
      // The service may observe stop_ and exit before this wake
      // connection is admitted — bound the read so the race cannot wedge
      // the destructor (the join below is safe either way).
      sp::dist::Socket s = sp::dist::connect_to("127.0.0.1", svc_.port());
      s.set_recv_timeout_ms(2000);
      ByteWriter hello;
      hello.u16(sp::dist::kWireVersion);
      sp::dist::send_frame(s, MsgType::kClientHello, hello.bytes(), auth_);
      (void)sp::dist::recv_frame(s, auth_);
    } catch (...) {
    }
    th_.join();
  }
  sp::dist::Service& svc() { return svc_; }
  void set_auth(const sp::dist::FrameAuth& a) { auth_ = a; }

 private:
  sp::dist::Service svc_;
  sp::dist::FrameAuth auth_;
  std::thread th_;
  std::atomic<bool> stop_{false};
};

// One raw v4 client handshake; returns the granted session id.
std::uint64_t client_handshake(sp::dist::Socket& s,
                               const sp::dist::FrameAuth& auth = {}) {
  ByteWriter hello;
  hello.u16(sp::dist::kWireVersion);
  sp::dist::send_frame(s, MsgType::kClientHello, hello.bytes(), auth);
  const auto welcome = sp::dist::recv_frame(s, auth);
  EXPECT_TRUE(welcome && welcome->type == MsgType::kWelcome);
  if (!welcome || welcome->type != MsgType::kWelcome) return 0;
  ByteReader r(welcome->payload);
  const std::uint64_t session = r.u64();
  r.expect_done();
  return session;
}

std::vector<std::uint8_t> submit_payload(const sp::dist::RunDescriptor& d,
                                         std::uint32_t priority = 0) {
  ByteWriter w;
  w.u32(priority);
  sp::dist::write_run_descriptor(w, d);
  return w.bytes();
}

std::string error_text(const std::optional<sp::dist::Frame>& f) {
  EXPECT_TRUE(f && f->type == MsgType::kError);
  if (!f || f->type != MsgType::kError) return {};
  ByteReader r(f->payload);
  return r.str();
}

TEST(ServiceSessions, UnknownOrStaleSessionIdIsRejected) {
  LiveService live({});
  sp::dist::Socket c = sp::dist::connect_to("127.0.0.1", live.svc().port());
  const std::uint64_t session = client_handshake(c);
  ASSERT_NE(session, 0u);
  const auto d = mc_descriptor();
  sp::dist::send_frame(c, MsgType::kSubmit, submit_payload(d), {},
                       session + 17, 1);
  const std::string why = error_text(sp::dist::recv_frame(c));
  EXPECT_NE(why.find("unknown or stale session id"), std::string::npos)
      << why;
}

TEST(ServiceSessions, DuplicateRequestIdIsRejected) {
  LiveService live({});
  sp::dist::Socket c = sp::dist::connect_to("127.0.0.1", live.svc().port());
  const std::uint64_t session = client_handshake(c);
  ASSERT_NE(session, 0u);
  const auto d = mc_descriptor();
  sp::dist::send_frame(c, MsgType::kSubmit, submit_payload(d), {}, session,
                       1);
  sp::dist::send_frame(c, MsgType::kSubmit, submit_payload(d), {}, session,
                       1);
  const std::string why = error_text(sp::dist::recv_frame(c));
  EXPECT_NE(why.find("duplicate request id"), std::string::npos) << why;
}

TEST(ServiceSessions, CrossSessionReplayOfAuthenticatedFrameIsRejected) {
  const std::string key = "replay-defense-key";
  sp::dist::ServiceOptions so;
  so.auth_key = key;
  LiveService live(std::move(so));
  const sp::dist::FrameAuth auth = sp::dist::FrameAuth::from_passphrase(key);
  live.set_auth(auth);

  // Session A submits a perfectly valid, correctly MACed request...
  sp::dist::Socket a = sp::dist::connect_to("127.0.0.1", live.svc().port());
  const std::uint64_t sa = client_handshake(a, auth);
  ASSERT_NE(sa, 0u);
  const auto d = mc_descriptor();
  const std::vector<std::uint8_t> captured = sp::dist::encode_frame(
      MsgType::kSubmit, submit_payload(d), auth, sa, 1);
  a.send_all(captured.data(), captured.size());

  // ...which an eavesdropper replays verbatim on its own session.  The
  // MAC verifies (same shared key), but the frame is bound to session A —
  // granted to a different connection — so the service refuses it.
  sp::dist::Socket b = sp::dist::connect_to("127.0.0.1", live.svc().port());
  const std::uint64_t sb = client_handshake(b, auth);
  ASSERT_NE(sb, 0u);
  ASSERT_NE(sb, sa);
  b.send_all(captured.data(), captured.size());
  const std::string why = error_text(sp::dist::recv_frame(b, auth));
  EXPECT_NE(why.find("unknown or stale session id"), std::string::npos)
      << why;
}

// ----------------------------------------------- resident cluster handle

TEST(ClusterHandleTest, ResidentFleetServesManyDescriptorsAndCaches) {
  sp::dist::ClusterOptions cl;
  cl.spawn_workers = 2;
  cl.worker_bin = STATPIPE_WORKER_BIN;
  cl.coordinator.units_per_range = 2;
  sp::dist::ClusterHandle handle(cl);

  const auto d_mc = mc_descriptor();
  const auto d_grid = grid_descriptor(5);
  const auto ref_mc = sp::dist::run_local_task(d_mc);
  const auto ref_grid = sp::dist::run_local_task(d_grid);

  sp::dist::RunMetrics m1;
  const auto r1 = handle.submit(d_mc, 0, &m1);
  EXPECT_TRUE(sp::dist::bitwise_equal(r1, ref_mc));
  EXPECT_EQ(m1.cache_hits, 0u);
  EXPECT_EQ(m1.cache_misses, 1u);

  const auto r2 = handle.submit(d_grid);
  EXPECT_TRUE(sp::dist::bitwise_equal(r2, ref_grid));

  // The resubmission is a cache hit and byte-identical to the recompute.
  sp::dist::RunMetrics m3;
  const auto r3 = handle.submit(d_mc, 0, &m3);
  EXPECT_EQ(m3.cache_hits, 1u);
  EXPECT_EQ(m3.cache_misses, 0u);
  EXPECT_TRUE(sp::dist::bitwise_equal(r3, r1));
  EXPECT_TRUE(sp::dist::bitwise_equal(r3, ref_mc));

  const sp::dist::ServiceStats st = handle.stats();
  // The fleet stayed RESIDENT: two workers admitted once, not per submit.
  EXPECT_EQ(st.workers_admitted, 2u);
  EXPECT_EQ(st.requests_completed, 3u);
  EXPECT_EQ(st.requests_failed, 0u);
  EXPECT_EQ(st.cache_hits, 1u);
  EXPECT_EQ(st.cache_misses, 2u);

  handle.close();
  handle.close();  // idempotent
  EXPECT_THROW((void)handle.submit(d_mc), std::logic_error);
}

TEST(ClusterHandleTest, CacheCountersFeedTheTelemetryLayer) {
  sp::obs::reset();
  sp::obs::set_enabled(true);
  {
    sp::dist::ClusterOptions cl;
    cl.spawn_workers = 1;
    cl.worker_bin = STATPIPE_WORKER_BIN;
    sp::dist::ClusterHandle handle(cl);
    const auto d = mc_descriptor(424242, 128, 64);
    (void)handle.submit(d);
    (void)handle.submit(d);  // the hit
    handle.close();
  }
  const std::string path = ::testing::TempDir() + "service_metrics.json";
  sp::obs::write_metrics_json(path);
  sp::obs::set_enabled(false);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string json = buf.str();
  EXPECT_NE(json.find("dist.service.cache.hits"), std::string::npos);
  EXPECT_NE(json.find("dist.service.cache.misses"), std::string::npos);
  EXPECT_NE(json.find("dist.service.requests"), std::string::npos);
  std::remove(path.c_str());
}

// -------------------------------------- concurrent multi-client property

// The service's acceptance property (scheduler determinism): concurrent
// client sessions interleave MC and SSTA-grid requests over one resident
// fleet, with randomized submission delays and one worker SIGKILLed while
// requests are in flight.  Scheduling order is explicitly allowed to
// vary; every request's RESULT BYTES must equal its single-client local
// reference.  A second wave resubmits everything against the same
// service — answered from the result cache, still byte-identical.
TEST(ServiceDeterminism, ConcurrentClientsMatchLocalReferencesUnderChurn) {
  const std::vector<sp::dist::RunDescriptor> descs = {
      mc_descriptor(1001, 2048, 64),  // 32 units: the kill lands mid-run
      mc_descriptor(1002, 1536, 48),  //
      grid_descriptor(9, 0.05),       //
      grid_descriptor(11, 0.03),
  };
  std::vector<sp::dist::TaskResult> refs;
  refs.reserve(descs.size());
  for (const auto& d : descs) refs.push_back(sp::dist::run_local_task(d));

  sp::dist::ServiceOptions so;
  so.units_per_range = 2;  // many small ranges: real interleaving
  so.max_attempts = 5;
  sp::dist::Service svc(std::move(so));

  std::vector<pid_t> kids;
  for (int i = 0; i < 3; ++i) kids.push_back(spawn_worker(svc.port()));

  // Per client: which descriptors, in which order — deliberately
  // different per session so the scheduler must interleave.
  const std::vector<std::vector<std::size_t>> plans = {
      {0, 2, 1}, {3, 0, 2}, {1, 3, 0}};
  std::size_t wave1 = 0;
  for (const auto& p : plans) wave1 += p.size();

  std::atomic<std::size_t> mismatches{0};
  auto client_wave = [&](std::uint64_t rng_seed) {
    std::vector<std::thread> clients;
    for (std::size_t ci = 0; ci < plans.size(); ++ci) {
      clients.emplace_back([&, ci, rng_seed] {
        std::mt19937_64 rng(rng_seed + ci);
        std::uniform_int_distribution<int> delay_ms(0, 7);
        std::uniform_int_distribution<std::uint32_t> prio(0, 2);
        sp::dist::ServiceClient client("127.0.0.1", svc.port());
        std::vector<std::pair<std::uint64_t, std::size_t>> ids;
        for (const std::size_t di : plans[ci]) {
          std::this_thread::sleep_for(
              std::chrono::milliseconds(delay_ms(rng)));
          ids.emplace_back(client.submit(descs[di], prio(rng)), di);
        }
        for (const auto& [id, di] : ids) {
          const sp::dist::TaskResult got = client.wait(id);
          if (!sp::dist::bitwise_equal(got, refs[di])) mismatches += 1;
        }
      });
    }
    return clients;
  };

  // Wave 1, with a worker assassinated while requests are in flight.
  std::vector<std::thread> clients = client_wave(90210);
  std::thread killer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(15));
    ::kill(kids[0], SIGKILL);
  });
  svc.run([&] { return svc.requests_completed() >= wave1; });
  for (auto& t : clients) t.join();
  killer.join();
  EXPECT_EQ(mismatches.load(), 0u) << "wave 1 diverged from local refs";

  // Wave 2: identical resubmissions against the SAME service — answered
  // from the result cache, still bitwise-identical to the references.
  std::vector<std::thread> clients2 = client_wave(424242);
  svc.run([&] { return svc.requests_completed() >= 2 * wave1; });
  for (auto& t : clients2) t.join();
  EXPECT_EQ(mismatches.load(), 0u) << "wave 2 (cached) diverged";

  const sp::dist::ServiceStats st = svc.stats();
  EXPECT_EQ(st.requests_completed, 2 * wave1);
  EXPECT_EQ(st.requests_failed, 0u);
  EXPECT_GE(st.cache_hits, wave1);  // every wave-2 submission, at least
  EXPECT_GE(st.session_units.size(), 2u);

  svc.shutdown_workers();
  reap(svc, kids[0], /*expect_signal=*/true);
  reap(svc, kids[1]);
  reap(svc, kids[2]);
}

}  // namespace
