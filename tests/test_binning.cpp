// Tests for frequency binning and the embedded c17 reference netlist.
#include <gtest/gtest.h>

#include <numeric>

#include "core/binning.h"
#include "device/delay_model.h"
#include "netlist/bench_parser.h"
#include "netlist/generators.h"
#include "sta/sta.h"

namespace sp = statpipe;
using sp::stats::Gaussian;

// ------------------------------------------------------------------ binning

TEST(Binning, FractionsSumToOne) {
  const Gaussian tp{500.0, 25.0};
  const auto bins = sp::core::bin_dies(tp, {2.2, 2.0, 1.8});
  ASSERT_EQ(bins.size(), 4u);  // 3 grades + scrap
  double total = 0.0;
  for (const auto& b : bins) {
    EXPECT_GE(b.fraction, 0.0);
    total += b.fraction;
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Binning, GradesSortedFastestFirst) {
  const Gaussian tp{500.0, 25.0};
  const auto bins = sp::core::bin_dies(tp, {1.8, 2.2, 2.0});  // any order in
  EXPECT_DOUBLE_EQ(bins[0].f_min_ghz, 2.2);
  EXPECT_DOUBLE_EQ(bins[1].f_min_ghz, 2.0);
  EXPECT_DOUBLE_EQ(bins[2].f_min_ghz, 1.8);
  EXPECT_DOUBLE_EQ(bins[3].f_min_ghz, 0.0);
}

TEST(Binning, FractionsMatchYieldDifferences) {
  const Gaussian tp{500.0, 25.0};
  const auto bins = sp::core::bin_dies(tp, {2.2, 2.0});
  // Top bin = Pr{T <= 1000/2.2}; second = Pr{T <= 500} - top.
  EXPECT_NEAR(bins[0].fraction, tp.cdf(1000.0 / 2.2), 1e-12);
  EXPECT_NEAR(bins[1].fraction, tp.cdf(500.0) - tp.cdf(1000.0 / 2.2), 1e-12);
}

TEST(Binning, TighterDistributionEarnsMoreUnderConcavePrices) {
  // Speed-grade price ladders are concave (the top grade carries a small
  // premium, the slow grades a big discount), so spreading dies away from
  // the mid bin loses money: lower sigma earns more at the same mean.
  const std::vector<double> grades{2.2, 2.0, 1.8};
  const std::vector<double> prices{250.0, 200.0, 100.0};
  const double r_tight = sp::core::expected_revenue(
      sp::core::bin_dies({475.0, 8.0}, grades), prices);
  const double r_wide = sp::core::expected_revenue(
      sp::core::bin_dies({475.0, 40.0}, grades), prices);
  EXPECT_GT(r_tight, r_wide);
}

TEST(Binning, TighterDistributionScrapsFewer) {
  // With the mean comfortably above the slowest grade, scrap is a pure
  // tail loss: lower sigma always scraps fewer dies.
  const std::vector<double> grades{2.2, 2.0, 1.8};
  const double scrap_tight =
      sp::core::bin_dies({475.0, 8.0}, grades).back().fraction;
  const double scrap_wide =
      sp::core::bin_dies({475.0, 40.0}, grades).back().fraction;
  EXPECT_LT(scrap_tight, scrap_wide);
}

TEST(Binning, MarketableFrequencyInvertsYield) {
  const Gaussian tp{500.0, 25.0};
  const double f90 = sp::core::marketable_frequency_ghz(tp, 0.90);
  // 90% of dies meet the period 1000/f90.
  EXPECT_NEAR(tp.cdf(1000.0 / f90), 0.90, 1e-9);
  // Higher yield demand -> slower marketable grade.
  EXPECT_LT(sp::core::marketable_frequency_ghz(tp, 0.99), f90);
}

TEST(Binning, RejectsBadInputs) {
  const Gaussian tp{500.0, 25.0};
  EXPECT_THROW(sp::core::bin_dies(tp, {}), std::invalid_argument);
  EXPECT_THROW(sp::core::bin_dies(tp, {0.0}), std::invalid_argument);
  EXPECT_THROW(sp::core::expected_revenue(sp::core::bin_dies(tp, {2.0}),
                                          {1.0, 2.0}),
               std::invalid_argument);
  EXPECT_THROW(sp::core::marketable_frequency_ghz(tp, 1.0),
               std::invalid_argument);
}

// ---------------------------------------------------------------------- c17

TEST(C17, MatchesPublishedStructure) {
  const auto nl = sp::netlist::iscas_c17();
  EXPECT_EQ(nl.gate_count(), 6u);
  EXPECT_EQ(nl.inputs().size(), 5u);
  EXPECT_EQ(nl.outputs().size(), 2u);
  EXPECT_EQ(nl.depth(), 3u);
  for (const auto& g : nl.gates()) {
    if (!g.is_pseudo()) {
      EXPECT_EQ(g.kind, sp::device::GateKind::kNand2);
    }
  }
}

TEST(C17, RoundTripsThroughBenchFormat) {
  const auto nl = sp::netlist::iscas_c17();
  const auto reparsed =
      sp::netlist::parse_bench_string(sp::netlist::write_bench(nl));
  EXPECT_EQ(reparsed.gate_count(), 6u);
  const sp::device::AlphaPowerModel m{sp::process::Technology{}};
  EXPECT_NEAR(sp::sta::analyze(nl, m).critical_delay,
              sp::sta::analyze(reparsed, m).critical_delay, 1e-12);
}

TEST(C17, CriticalPathIsThreeNands) {
  const auto nl = sp::netlist::iscas_c17();
  const sp::device::AlphaPowerModel m{sp::process::Technology{}};
  const auto r = sp::sta::analyze(nl, m);
  const auto path = r.critical_path(nl, m);
  // input + 3 levels of NAND2.
  EXPECT_EQ(path.size(), 4u);
}
