// Unit tests for the process-variation model and the alpha-power device
// delay model (the SPICE stand-in).
#include <gtest/gtest.h>

#include <cmath>

#include "device/delay_model.h"
#include "device/gate_library.h"
#include "device/latch.h"
#include "process/variation.h"
#include "stats/descriptive.h"
#include "stats/rng.h"

namespace sp = statpipe;
using sp::device::AlphaPowerModel;
using sp::device::GateKind;
using sp::process::Technology;
using sp::process::VariationSpec;

// ----------------------------------------------------------------- process

TEST(Technology, RdfSigmaScalesInverseSqrtWidth) {
  Technology t;
  const double s1 = t.sigma_vth_rdf(1.0);
  const double s4 = t.sigma_vth_rdf(4.0);
  EXPECT_NEAR(s1 / s4, 2.0, 1e-12);
  EXPECT_NEAR(s1, 0.030, 1e-4);  // calibrated to ~30mV at min size
  EXPECT_THROW(t.sigma_vth_rdf(0.0), std::invalid_argument);
}

TEST(VariationSpec, Presets) {
  const auto intra = VariationSpec::intra_only();
  EXPECT_EQ(intra.sigma_vth_inter, 0.0);
  EXPECT_TRUE(intra.enable_rdf);

  const auto inter = VariationSpec::inter_only(0.040);
  EXPECT_DOUBLE_EQ(inter.sigma_vth_inter, 0.040);
  EXPECT_FALSE(inter.enable_rdf);

  const auto both = VariationSpec::inter_intra(0.020, 0.010, 0.5);
  EXPECT_DOUBLE_EQ(both.sigma_vth_inter, 0.020);
  EXPECT_DOUBLE_EQ(both.sigma_vth_systematic, 0.010);
  EXPECT_TRUE(both.enable_rdf);
}

TEST(VariationSampler, InterDieShiftSharedAcrossSites) {
  Technology tech;
  sp::process::VariationSampler s(tech, VariationSpec::inter_only(0.040),
                                  sp::process::linear_sites(8));
  sp::stats::Rng rng(1);
  const auto die = s.sample(rng);
  // Inter-only: every site sees exactly the same shift.
  for (std::size_t i = 0; i < 8; ++i)
    EXPECT_DOUBLE_EQ(die.dvth_at(i, 1.0), die.dvth_inter);
}

TEST(VariationSampler, InterDieSigmaMatchesSpec) {
  Technology tech;
  sp::process::VariationSampler s(tech, VariationSpec::inter_only(0.040),
                                  sp::process::linear_sites(2));
  sp::stats::Rng rng(2);
  sp::stats::RunningStats rs;
  for (int i = 0; i < 20000; ++i) rs.add(s.sample(rng).dvth_inter);
  EXPECT_NEAR(rs.mean(), 0.0, 1e-3);
  EXPECT_NEAR(rs.stddev(), 0.040, 1e-3);
}

TEST(VariationSampler, RdfIndependentAcrossSites) {
  Technology tech;
  sp::process::VariationSampler s(tech, VariationSpec::intra_only(),
                                  sp::process::linear_sites(2));
  sp::stats::Rng rng(3);
  std::vector<double> a, b;
  for (int i = 0; i < 20000; ++i) {
    const auto die = s.sample(rng);
    a.push_back(die.dvth_random[0]);
    b.push_back(die.dvth_random[1]);
  }
  EXPECT_NEAR(sp::stats::pearson(a, b), 0.0, 0.02);
  EXPECT_NEAR(sp::stats::stddev(a), tech.sigma_vth_rdf(1.0), 0.001);
}

TEST(VariationSampler, SystematicFieldSpatiallyCorrelated) {
  Technology tech;
  auto spec = VariationSpec::inter_intra(0.0, 0.020, 0.5);
  spec.enable_rdf = false;
  sp::process::VariationSampler s(tech, spec, sp::process::linear_sites(10));
  sp::stats::Rng rng(4);
  std::vector<double> first, second, last;
  for (int i = 0; i < 20000; ++i) {
    const auto die = s.sample(rng);
    first.push_back(die.dvth_systematic[0]);
    second.push_back(die.dvth_systematic[1]);
    last.push_back(die.dvth_systematic[9]);
  }
  const double rho_near = sp::stats::pearson(first, second);
  const double rho_far = sp::stats::pearson(first, last);
  EXPECT_GT(rho_near, 0.7);           // neighbours strongly correlated
  EXPECT_LT(rho_far, rho_near - 0.2); // correlation decays with distance
  EXPECT_NEAR(rho_far, std::exp(-2.0), 0.1);  // exp(-d/L), d=1, L=0.5
}

TEST(VariationSampler, RdfScalesWithDeviceWidth) {
  Technology tech;
  sp::process::VariationSampler s(tech, VariationSpec::intra_only(),
                                  sp::process::linear_sites(1));
  sp::stats::Rng rng(5);
  const auto die = s.sample(rng);
  EXPECT_NEAR(die.dvth_at(0, 4.0), die.dvth_random[0] / 2.0, 1e-15);
}

TEST(VariationBlock, BlockSamplingBitwiseMatchesScalarLanes) {
  // sample_block_into's contract: lane j of a width-W block, drawn from
  // lane_rngs[j], is bitwise-identical to one scalar sample_into call on an
  // identically forked Rng.  Exercise every component at once (inter Vth+L,
  // systematic Vth+L, RDF) across widths 1/8/16.
  Technology tech;
  auto spec = VariationSpec::inter_intra(0.020, 0.010, 0.5);
  spec.sigma_l_inter_rel = 0.015;
  spec.sigma_l_systematic_rel = 0.008;
  const auto sites = sp::process::linear_sites(9);
  const sp::process::VariationSampler sampler(tech, spec, sites);

  for (const std::size_t width : {std::size_t{1}, std::size_t{8},
                                  std::size_t{16}}) {
    const sp::stats::Rng root(77);
    std::vector<sp::stats::Rng> lane_rngs(width);
    for (std::size_t j = 0; j < width; ++j) lane_rngs[j] = root.fork(j);

    sp::process::DieBlock block;
    sp::process::BlockWorkspace ws;
    sampler.sample_block_into(lane_rngs.data(), width, block, ws);
    ASSERT_EQ(block.width, width);
    ASSERT_EQ(block.sites, sites.size());

    for (std::size_t j = 0; j < width; ++j) {
      sp::stats::Rng scalar_rng = root.fork(j);
      sp::process::DieSample die;
      sp::process::DieWorkspace die_ws;
      sampler.sample_into(scalar_rng, die, die_ws);
      for (std::size_t i = 0; i < sites.size(); ++i) {
        EXPECT_EQ(block.dvth_at(i, j, 1.0), die.dvth_at(i, 1.0))
            << "w=" << width << " lane " << j << " site " << i;
        EXPECT_EQ(block.dvth_at(i, j, 2.5), die.dvth_at(i, 2.5));
        EXPECT_EQ(block.dvth_shared_at(i, j), die.dvth_shared_at(i));
        EXPECT_EQ(block.dl_rel_at(i, j), die.dl_rel_at(i));
      }
    }
  }
}

TEST(VariationBlock, ComponentPresenceMirrorsSpec) {
  Technology tech;
  const auto spec = VariationSpec::inter_only(0.040);  // no RDF, no field
  const sp::process::VariationSampler sampler(tech, spec,
                                              sp::process::linear_sites(4));
  sp::stats::Rng rng(5);
  std::vector<sp::stats::Rng> lanes{rng.fork(0), rng.fork(1)};
  sp::process::DieBlock block;
  sp::process::BlockWorkspace ws;
  sampler.sample_block_into(lanes.data(), 2, block, ws);
  EXPECT_TRUE(block.dvth_systematic.empty());
  EXPECT_TRUE(block.dvth_random.empty());
  EXPECT_TRUE(block.dl_systematic_rel.empty());
  EXPECT_EQ(block.dvth_inter.size(), 2u);

  EXPECT_THROW(sampler.sample_block_into(lanes.data(), 0, block, ws),
               std::invalid_argument);
  EXPECT_THROW(
      sampler.sample_block_into(lanes.data(),
                                statpipe::stats::lanes::max_width() + 1,
                                block, ws),
      std::invalid_argument);
}

TEST(LinearSites, EvenSpacing) {
  const auto p = sp::process::linear_sites(5);
  EXPECT_DOUBLE_EQ(p.front(), 0.0);
  EXPECT_DOUBLE_EQ(p.back(), 1.0);
  EXPECT_DOUBLE_EQ(p[2], 0.5);
  EXPECT_THROW(sp::process::linear_sites(0), std::invalid_argument);
}

TEST(ImpliedCorrelation, VarianceRatio) {
  using sp::process::VariationSampler;
  EXPECT_DOUBLE_EQ(VariationSampler::implied_correlation(1.0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(VariationSampler::implied_correlation(0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(VariationSampler::implied_correlation(1.0, 1.0), 0.5);
}

// ------------------------------------------------------------------ device

TEST(GateLibrary, TraitsSane) {
  const auto& inv = sp::device::traits(GateKind::kNot);
  EXPECT_DOUBLE_EQ(inv.logical_effort, 1.0);
  EXPECT_DOUBLE_EQ(inv.area, 1.0);
  // NAND2 has higher effort than inverter, NOR2 higher still.
  EXPECT_GT(sp::device::traits(GateKind::kNand2).logical_effort, 1.0);
  EXPECT_GT(sp::device::traits(GateKind::kNor2).logical_effort,
            sp::device::traits(GateKind::kNand2).logical_effort);
}

TEST(GateLibrary, NameRoundTrip) {
  for (auto k : {GateKind::kNot, GateKind::kNand2, GateKind::kNand3,
                 GateKind::kNor2, GateKind::kXor2, GateKind::kBuf}) {
    EXPECT_EQ(sp::device::gate_kind_from_string(
                  std::string(sp::device::to_string(k))),
              k);
  }
  EXPECT_THROW(sp::device::gate_kind_from_string("FROB"),
               std::invalid_argument);
}

TEST(GateLibrary, CapAndAreaScaleWithSize) {
  EXPECT_DOUBLE_EQ(sp::device::input_cap(GateKind::kNot, 3.0), 3.0);
  EXPECT_DOUBLE_EQ(sp::device::cell_area(GateKind::kNot, 3.0), 3.0);
  EXPECT_DOUBLE_EQ(sp::device::input_cap(GateKind::kInput, 5.0), 0.0);
}

TEST(AlphaPower, NominalFactorIsOne) {
  AlphaPowerModel m{Technology{}};
  EXPECT_DOUBLE_EQ(m.variation_factor(0.0, 0.0), 1.0);
}

TEST(AlphaPower, RejectsUnphysicalAlpha) {
  // The constructor's alpha cap is what makes variation_factor's fixed
  // drive-ratio window a sound guard for the pow core's exponent range.
  Technology t;
  t.alpha = 5.0;
  EXPECT_THROW(AlphaPowerModel{t}, std::invalid_argument);
  t.alpha = 0.0;
  EXPECT_THROW(AlphaPowerModel{t}, std::invalid_argument);
  t.alpha = -1.3;
  EXPECT_THROW(AlphaPowerModel{t}, std::invalid_argument);
  t.alpha = 2.0;
  EXPECT_NO_THROW(AlphaPowerModel{t});
}

TEST(AlphaPower, SlowsWithHigherVthFasterWithLower) {
  AlphaPowerModel m{Technology{}};
  EXPECT_GT(m.variation_factor(+0.040), 1.0);
  EXPECT_LT(m.variation_factor(-0.040), 1.0);
  EXPECT_GT(m.variation_factor(+0.040), 1.0 / m.variation_factor(-0.040) - 0.05);
}

TEST(AlphaPower, LengthIncreasesDelayQuadratically) {
  AlphaPowerModel m{Technology{}};
  EXPECT_NEAR(m.variation_factor(0.0, 0.10), 1.21, 1e-12);
}

TEST(AlphaPower, ThrowsOutOfSaturation) {
  AlphaPowerModel m{Technology{}};
  EXPECT_THROW(m.variation_factor(0.9), std::domain_error);
  EXPECT_THROW(m.variation_factor(0.0, -1.0), std::domain_error);
}

TEST(AlphaPower, LaneFactorBitwiseEqualsScalar) {
  // The vectorized pow sweep must be indistinguishable from n scalar
  // calls — this is the contract that lets the block sample STA share the
  // scalar path's results bit for bit.
  AlphaPowerModel m{Technology{}};
  sp::stats::Rng rng(31415);
  constexpr std::size_t kN = 16;
  double dvth[kN], dl[kN], out[kN];
  for (int rep = 0; rep < 200; ++rep) {
    for (std::size_t j = 0; j < kN; ++j) {
      dvth[j] = rng.normal(0.0, 0.030);
      dl[j] = rng.normal(0.0, 0.04);
    }
    m.variation_factor_lanes(dvth, dl, kN, out);
    for (std::size_t j = 0; j < kN; ++j)
      ASSERT_EQ(out[j], m.variation_factor(dvth[j], dl[j]));
  }
}

TEST(AlphaPower, LaneFactorRejectsBadLaneBeforeWriting) {
  AlphaPowerModel m{Technology{}};
  double dvth[4] = {0.0, 0.01, 0.9, 0.0};  // lane 2 out of saturation
  double dl[4] = {0.0, 0.0, 0.0, 0.0};
  double out[4] = {-1.0, -1.0, -1.0, -1.0};
  EXPECT_THROW(m.variation_factor_lanes(dvth, dl, 4, out), std::domain_error);
  for (double v : out) EXPECT_EQ(v, -1.0);  // nothing written
  dvth[2] = 0.0;
  dl[1] = -1.5;  // lane 1: negative channel length
  EXPECT_THROW(m.variation_factor_lanes(dvth, dl, 4, out), std::domain_error);
}

TEST(AlphaPower, FactorAgreesWithLibmPow) {
  // variation_factor now runs on the shared polynomial pow core; it must
  // still track the libm formula to ~1e-13 relative over the sampling
  // domain.
  AlphaPowerModel m{Technology{}};
  const Technology t{};
  sp::stats::Rng rng(2718);
  for (int i = 0; i < 20000; ++i) {
    const double dvth = rng.normal(0.0, 0.040);
    const double drive0 = t.vdd - t.vth0;
    if (drive0 - dvth <= 0.0) continue;
    const double ref = std::pow(drive0 / (drive0 - dvth), t.alpha);
    EXPECT_NEAR(m.variation_factor(dvth), ref, 1e-13 * ref);
  }
}

TEST(AlphaPower, DelayDecreasesWithSizeIncreasesWithLoad) {
  AlphaPowerModel m{Technology{}};
  const double d1 = m.nominal_delay(GateKind::kNot, 1.0, 4.0);
  const double d2 = m.nominal_delay(GateKind::kNot, 2.0, 4.0);
  const double d3 = m.nominal_delay(GateKind::kNot, 1.0, 8.0);
  EXPECT_LT(d2, d1);
  EXPECT_GT(d3, d1);
  EXPECT_THROW(m.nominal_delay(GateKind::kNot, 0.0, 1.0),
               std::invalid_argument);
}

TEST(AlphaPower, SensitivityMatchesFiniteDifference) {
  AlphaPowerModel m{Technology{}};
  const double d0 = m.nominal_delay(GateKind::kNand2, 2.0, 6.0);
  const double eps = 1e-5;
  const double fd =
      (m.delay(GateKind::kNand2, 2.0, 6.0, eps) - d0) / eps;
  EXPECT_NEAR(m.dvth_sensitivity(GateKind::kNand2, 2.0, 6.0), fd,
              std::abs(fd) * 1e-3);
}

TEST(AlphaPower, SigmaDecompositionRespectsSpec) {
  AlphaPowerModel m{Technology{}};
  const auto s_intra =
      m.delay_sigmas(GateKind::kNot, 1.0, 4.0, VariationSpec::intra_only());
  EXPECT_EQ(s_intra.inter, 0.0);
  EXPECT_GT(s_intra.random, 0.0);

  const auto s_inter = m.delay_sigmas(GateKind::kNot, 1.0, 4.0,
                                      VariationSpec::inter_only(0.040));
  EXPECT_GT(s_inter.inter, 0.0);
  EXPECT_EQ(s_inter.random, 0.0);
  EXPECT_NEAR(s_inter.total(), s_inter.inter, 1e-15);
}

TEST(AlphaPower, UpsizingShrinksRandomSigma) {
  AlphaPowerModel m{Technology{}};
  const auto spec = VariationSpec::intra_only();
  // Compare relative (per-ps) random sigma: RDF falls as 1/sqrt(size).
  const auto s1 = m.delay_sigmas(GateKind::kNot, 1.0, 4.0, spec);
  const auto s4 = m.delay_sigmas(GateKind::kNot, 4.0, 4.0, spec);
  const double rel1 = s1.random / m.nominal_delay(GateKind::kNot, 1.0, 4.0);
  const double rel4 = s4.random / m.nominal_delay(GateKind::kNot, 4.0, 4.0);
  EXPECT_NEAR(rel1 / rel4, 2.0, 1e-9);
}

// ------------------------------------------------------------------- latch

TEST(Latch, OverheadScalesWithVth) {
  AlphaPowerModel m{Technology{}};
  sp::device::LatchModel latch({}, m);
  const double nominal = latch.timing().nominal_overhead();
  EXPECT_DOUBLE_EQ(latch.overhead_at(0.0), nominal);
  EXPECT_GT(latch.overhead_at(0.040), nominal);
}

TEST(Latch, DistributionDecomposition) {
  AlphaPowerModel m{Technology{}};
  sp::device::LatchModel latch({}, m);
  const auto d = latch.overhead_distribution(VariationSpec::inter_only(0.040));
  EXPECT_DOUBLE_EQ(d.mean, latch.timing().nominal_overhead());
  EXPECT_GT(d.sigma, 0.0);
  // With no inter-die variation only the private component remains.
  const auto d0 = latch.overhead_distribution(VariationSpec::intra_only());
  EXPECT_NEAR(d0.sigma,
              latch.timing().nominal_overhead() *
                  latch.timing().random_sigma_rel,
              1e-12);
  EXPECT_LT(d0.sigma, d.sigma);
}

TEST(Latch, SampledOverheadMatchesDistribution) {
  AlphaPowerModel m{Technology{}};
  sp::device::LatchModel latch({}, m);
  sp::stats::Rng rng(77);
  sp::stats::RunningStats rs;
  for (int i = 0; i < 20000; ++i) rs.add(latch.sample_overhead(0.0, rng));
  EXPECT_NEAR(rs.mean(), latch.timing().nominal_overhead(), 0.05);
  EXPECT_NEAR(rs.stddev(),
              latch.timing().nominal_overhead() *
                  latch.timing().random_sigma_rel,
              0.02);
}
