// Unit tests for the stats substrate: Gaussian primitives, Clark's
// operator, matrices, samplers, histograms, KS distance.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

#include "stats/clark.h"
#include "stats/descriptive.h"
#include "stats/gaussian.h"
#include "stats/histogram.h"
#include "stats/ks.h"
#include "stats/lanes.h"
#include "stats/matrix.h"
#include "stats/rng.h"

namespace sp = statpipe::stats;

// ---------------------------------------------------------------- Gaussian

TEST(Gaussian, PdfMatchesKnownValues) {
  EXPECT_NEAR(sp::normal_pdf(0.0), 0.3989422804014327, 1e-15);
  EXPECT_NEAR(sp::normal_pdf(1.0), 0.24197072451914337, 1e-15);
  EXPECT_NEAR(sp::normal_pdf(-1.0), sp::normal_pdf(1.0), 1e-18);
}

TEST(Gaussian, CdfMatchesKnownValues) {
  EXPECT_NEAR(sp::normal_cdf(0.0), 0.5, 1e-15);
  EXPECT_NEAR(sp::normal_cdf(1.0), 0.8413447460685429, 1e-12);
  EXPECT_NEAR(sp::normal_cdf(-1.96), 0.024997895148220435, 1e-12);
  EXPECT_NEAR(sp::normal_cdf(6.0), 1.0 - 9.865876e-10, 1e-12);
}

TEST(Gaussian, SfIsComplementAndTailAccurate) {
  EXPECT_NEAR(sp::normal_sf(1.0), 1.0 - sp::normal_cdf(1.0), 1e-15);
  // Deep tail: Phi(-10) ~ 7.62e-24; naive 1-Phi(10) would round to 0.
  EXPECT_NEAR(sp::normal_sf(10.0) / 7.619853024160527e-24, 1.0, 1e-9);
}

TEST(Gaussian, IcdfRoundTrips) {
  for (double p : {1e-9, 1e-4, 0.01, 0.2, 0.5, 0.8, 0.9283, 0.99, 1.0 - 1e-9}) {
    const double x = sp::normal_icdf(p);
    EXPECT_NEAR(sp::normal_cdf(x), p, 1e-12) << "p=" << p;
  }
}

TEST(Gaussian, IcdfKnownQuantiles) {
  EXPECT_NEAR(sp::normal_icdf(0.5), 0.0, 1e-12);
  EXPECT_NEAR(sp::normal_icdf(0.8413447460685429), 1.0, 1e-9);
  EXPECT_NEAR(sp::normal_icdf(0.975), 1.959963984540054, 1e-9);
}

TEST(Gaussian, IcdfRejectsOutOfDomain) {
  EXPECT_THROW(sp::normal_icdf(0.0), std::domain_error);
  EXPECT_THROW(sp::normal_icdf(1.0), std::domain_error);
  EXPECT_THROW(sp::normal_icdf(-0.3), std::domain_error);
  EXPECT_THROW(sp::normal_icdf(1.7), std::domain_error);
}

TEST(Gaussian, StructOperations) {
  const sp::Gaussian a{10.0, 3.0}, b{20.0, 4.0};
  const auto s = a + b;
  EXPECT_DOUBLE_EQ(s.mean, 30.0);
  EXPECT_DOUBLE_EQ(s.sigma, 5.0);
  const auto sc = 2.0 * a;
  EXPECT_DOUBLE_EQ(sc.mean, 20.0);
  EXPECT_DOUBLE_EQ(sc.sigma, 6.0);
  const auto sh = a + 5.0;
  EXPECT_DOUBLE_EQ(sh.mean, 15.0);
  EXPECT_DOUBLE_EQ(sh.sigma, 3.0);
  EXPECT_NEAR(a.cdf(10.0), 0.5, 1e-15);
  EXPECT_NEAR(a.quantile(0.5), 10.0, 1e-12);
  EXPECT_NEAR(a.variability(), 0.3, 1e-15);
}

TEST(Gaussian, IidSumMatchesInverterChainRelation) {
  // eq. (13): mu = NL*mu_min, sigma = sqrt(NL)*sigma_min.
  const sp::Gaussian unit{4.0, 0.5};
  const auto chain = sp::iid_sum(unit, 16.0);
  EXPECT_DOUBLE_EQ(chain.mean, 64.0);
  EXPECT_DOUBLE_EQ(chain.sigma, 2.0);
}

TEST(Gaussian, DegenerateSigmaCdf) {
  const sp::Gaussian d{5.0, 0.0};
  EXPECT_DOUBLE_EQ(d.cdf(4.999), 0.0);
  EXPECT_DOUBLE_EQ(d.cdf(5.0), 1.0);
}

// ---------------------------------------------------------------- Clark op

TEST(Clark, EqualIndependentVariables) {
  // max of two iid N(0,1): mean = 1/sqrt(pi), var = 1 - 1/pi (exact).
  const auto cm = sp::clark_max({0.0, 1.0}, {0.0, 1.0}, 0.0);
  EXPECT_NEAR(cm.max.mean, 1.0 / std::sqrt(M_PI), 1e-12);
  EXPECT_NEAR(cm.max.sigma * cm.max.sigma, 1.0 - 1.0 / M_PI, 1e-12);
}

TEST(Clark, DominantVariableWins) {
  // When X1 >> X2 the max is X1.
  const auto cm = sp::clark_max({100.0, 1.0}, {0.0, 1.0}, 0.0);
  EXPECT_NEAR(cm.max.mean, 100.0, 1e-9);
  EXPECT_NEAR(cm.max.sigma, 1.0, 1e-9);
}

TEST(Clark, PerfectlyCorrelatedEqualSigmaIsExact) {
  // rho=1, equal sigma: X1-X2 deterministic, max = larger-mean input.
  const auto cm = sp::clark_max({10.0, 2.0}, {12.0, 2.0}, 1.0);
  EXPECT_DOUBLE_EQ(cm.max.mean, 12.0);
  EXPECT_DOUBLE_EQ(cm.max.sigma, 2.0);
}

TEST(Clark, SymmetricInArguments) {
  const auto ab = sp::clark_max({5.0, 1.0}, {6.0, 2.0}, 0.3);
  const auto ba = sp::clark_max({6.0, 2.0}, {5.0, 1.0}, 0.3);
  EXPECT_NEAR(ab.max.mean, ba.max.mean, 1e-12);
  EXPECT_NEAR(ab.max.sigma, ba.max.sigma, 1e-12);
}

TEST(Clark, MeanAboveJensenLowerBound) {
  // E[max] >= max(E[X1], E[X2]) (eq. 3).
  const auto cm = sp::clark_max({10.0, 2.0}, {10.5, 3.0}, 0.2);
  EXPECT_GE(cm.max.mean, 10.5);
}

TEST(Clark, CorrelationIncreasesReducesMaxMean) {
  // More correlation -> less independent "spread" -> smaller E[max].
  double prev = 1e9;
  for (double rho : {0.0, 0.3, 0.6, 0.9}) {
    const auto cm = sp::clark_max({10.0, 2.0}, {10.0, 2.0}, rho);
    EXPECT_LT(cm.max.mean, prev);
    prev = cm.max.mean;
  }
}

TEST(Clark, RejectsBadInputs) {
  EXPECT_THROW(sp::clark_max({0.0, -1.0}, {0.0, 1.0}, 0.0),
               std::invalid_argument);
  EXPECT_THROW(sp::clark_max({0.0, 1.0}, {0.0, 1.0}, 1.5),
               std::invalid_argument);
}

TEST(ClarkLanes, BitwiseMatchesScalarIncludingEdgeLanes) {
  // One lane per regime the scalar operator distinguishes, including every
  // degenerate route: zero-variance inputs and rho = ±1 pairs that collapse
  // a = sd(X1 - X2) to zero.
  const std::vector<sp::Gaussian> x1 = {
      {100.0, 5.0},  // generic independent
      {100.0, 4.0},  // rho = +1, equal sigma: degenerate, X1 wins on mean
      {90.0, 4.0},   // rho = +1, equal sigma: degenerate, X2 wins on mean
      {100.0, 5.0},  // rho = +1, unequal sigma: NOT degenerate
      {100.0, 3.0},  // rho = -1: anticorrelated, a = s1 + s2
      {100.0, 0.0},  // zero-variance vs zero-variance: degenerate
      {100.0, 0.0},  // zero variance vs live variable
      {100.0, 5.0},  // equal means, alpha = 0
  };
  const std::vector<sp::Gaussian> x2 = {
      {102.0, 4.0}, {95.0, 4.0},  {95.0, 4.0}, {99.0, 2.0},
      {101.0, 2.0}, {99.0, 0.0},  {98.0, 3.0}, {100.0, 7.0},
  };
  const std::vector<double> rho = {0.3, 1.0, 1.0, 1.0, -1.0, 0.0, 0.0, 0.0};
  const std::size_t n = x1.size();

  std::vector<double> mu1(n), s1(n), mu2(n), s2(n);
  for (std::size_t k = 0; k < n; ++k) {
    mu1[k] = x1[k].mean;
    s1[k] = x1[k].sigma;
    mu2[k] = x2[k].mean;
    s2[k] = x2[k].sigma;
  }
  std::vector<double> mean(n), sigma(n), alpha(n), a(n), phi(n);
  sp::clark_max_lanes({mu1.data(), s1.data()}, {mu2.data(), s2.data()},
                      rho.data(), n,
                      {mean.data(), sigma.data(), alpha.data(), a.data(),
                       phi.data()});

  for (std::size_t k = 0; k < n; ++k) {
    const auto scalar = sp::clark_max(x1[k], x2[k], rho[k]);
    EXPECT_EQ(mean[k], scalar.max.mean) << "lane " << k;
    EXPECT_EQ(sigma[k], scalar.max.sigma) << "lane " << k;
    EXPECT_EQ(alpha[k], scalar.alpha) << "lane " << k;
    EXPECT_EQ(a[k], scalar.a) << "lane " << k;
    EXPECT_EQ(phi[k], scalar.phi_a) << "lane " << k;
  }
}

TEST(ClarkLanes, RejectsInvalidLanesLikeScalar) {
  double mu1[2] = {1.0, 2.0}, s1[2] = {1.0, 1.0};
  double mu2[2] = {0.0, 0.0}, s2[2] = {1.0, 1.0};
  double out_m[2], out_s[2], out_al[2], out_a[2], out_p[2];
  const sp::ClarkLanes out{out_m, out_s, out_al, out_a, out_p};

  double bad_rho[2] = {0.0, 1.5};
  EXPECT_THROW(sp::clark_max_lanes({mu1, s1}, {mu2, s2}, bad_rho, 2, out),
               std::invalid_argument);
  double ok_rho[2] = {0.0, 0.0};
  double bad_s[2] = {1.0, -0.5};
  EXPECT_THROW(sp::clark_max_lanes({mu1, bad_s}, {mu2, s2}, ok_rho, 2, out),
               std::invalid_argument);
}

TEST(Rng, ZigguratNormalMomentsAndTails) {
  // The ziggurat sampler must reproduce the standard normal's body AND its
  // tails (yield estimates live at 3 sigma).  200k draws: the tolerances
  // below sit 4+ sampling sigmas from the true values.
  sp::Rng rng(2718);
  const std::size_t n = 200000;
  sp::RunningStats rs;
  std::size_t beyond3 = 0, beyond4 = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = rng.normal();
    rs.add(x);
    if (std::abs(x) > 3.0) ++beyond3;
    if (std::abs(x) > 4.0) ++beyond4;
  }
  EXPECT_NEAR(rs.mean(), 0.0, 0.01);
  EXPECT_NEAR(rs.stddev(), 1.0, 0.01);
  // P(|X| > 3) = 2.6998e-3 -> expect ~540 of 200k, sd ~23.
  EXPECT_NEAR(static_cast<double>(beyond3), 2.6998e-3 * n, 100.0);
  // P(|X| > 4) = 6.334e-5 -> expect ~12.7 of 200k.
  EXPECT_GT(beyond4, 0u);
  EXPECT_LT(beyond4, 40u);
}

// Golden pins: the first 64 raw engine words and the first 64 ziggurat
// normals for seed 42, captured from this implementation.  These freeze the
// bit-exact stream contract every reproducibility guarantee in the library
// rests on — any change to splitmix64 seeding, the xoshiro256** recurrence,
// the ziggurat tables, or the accept/reject structure trips them.
TEST(Rng, GoldenXoshiroStream) {
  static constexpr std::uint64_t kExpected[64] = {
      0x15780b2e0c2ec716ULL, 0x6104d9866d113a7eULL, 0xae17533239e499a1ULL,
      0xecb8ad4703b360a1ULL, 0xfde6dc7fe2ec5e64ULL, 0xc50da53101795238ULL,
      0xb82154855a65ddb2ULL, 0xd99a2743ebe60087ULL, 0xc2e96e726e97647eULL,
      0x9556615f775fbc3dULL, 0xaeb53b340c103971ULL, 0x4a69db9873af8965ULL,
      0xcd0feda93006c6b6ULL, 0x52480865a4b42742ULL, 0xb60dec3bf2d887cdULL,
      0xe0b55a68b96677faULL, 0x9de4159eda9cef95ULL, 0xd9f4b354ec3844d4ULL,
      0xb5215f43ed431a77ULL, 0xb5344cbe421f4f3aULL, 0x17c5ad539dbb98d9ULL,
      0x2dd4705aaba5de2bULL, 0x6faa904a94c529bdULL, 0x9a1da25458817417ULL,
      0x5061938da99c7af0ULL, 0x7d3babc0d1e23440ULL, 0x6624536f5ad584d4ULL,
      0xca03e50015c044b8ULL, 0xa293144f4f3bd3faULL, 0x3b38bd77133b0bdaULL,
      0x6a0da881492d3bfdULL, 0x9f6b51d30d502b3aULL, 0xdcf83ab9a2b09168ULL,
      0xf1dbbb3e7caf8512ULL, 0xd06fa2c515268d8aULL, 0xbf3b601241d6460cULL,
      0xc8dac160a4cf65b7ULL, 0x0b79e57de69e68a1ULL, 0x77ffe08aaffca9f2ULL,
      0xf8dae1deeb08090bULL, 0x896c10e1f50e7c45ULL, 0xb35f3c33364236adULL,
      0xcdb713a2484aba0dULL, 0xd17557ee842fc622ULL, 0xe5fa6d9f51a65be7ULL,
      0x202a8f768818eb71ULL, 0x90a2b65696578132ULL, 0x8de344cfe2c7f797ULL,
      0xdb73c7b4d941a5a9ULL, 0xd3e1718bf28e10a9ULL, 0x850b3263a0953dbbULL,
      0x51466fd43f32a0ecULL, 0x3130eb9b89d02158ULL, 0xa4d4d91162b2d044ULL,
      0x0752374ea697b934ULL, 0x5bb7058b670da327ULL, 0x91be7d3d72cec5d7ULL,
      0xc687f6037de59e9cULL, 0x81dbd737ae287209ULL, 0x9eb080fc911ead60ULL,
      0xf3759893228a56ecULL, 0xf18b1a75d5c9a1abULL, 0x3818ca12dc164711ULL,
      0xc990d448a6cc309eULL};
  sp::Xoshiro256 eng(42);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(eng(), kExpected[i]) << "word " << i;
}

TEST(Rng, GoldenZigguratNormals) {
  static constexpr double kExpected[64] = {
      -0x1.b93c3f928ef82p-3, 0x1.2c8cd6d008acep-1,  -0x1.c978a68362547p-1,
      0x1.37064cee8dd3dp+0,  0x1.b7b487499e928p+0,  0x1.9e7f1b2747d3p+0,
      -0x1.b8dda3d900f8dp-1, 0x1.43d0e95e533bp+0,   0x1.2de7621c8bf97p+0,
      0x1.32c153d93c17cp+0,  -0x1.1e470a857fe1p+0,  -0x1.00a57e28ab7f8p-1,
      0x1.df62de591627fp-1,  -0x1.4a512c63322p-1,   -0x1.6a586baaecae7p-1,
      -0x1.89419a36e23ffp-2, -0x1.b8545a2543115p-1, 0x1.983355bc5c7efp-1,
      0x1.213e09041428dp+0,  -0x1.79855e9ba9dd5p+0, 0x1.5338abcb97cp-4,
      0x1.9bfcc2c9a88p-2,    -0x1.f38117e4e1f87p-2, 0x1.88e00de5a01f2p+0,
      0x1.96741e2684a4p-3,   0x1.fb5f71ef3673fp-1,  0x1.7e983d04d49acp-2,
      0x1.d27c6ccee03a2p-1,  -0x1.1c8473ce2e1c2p-2, -0x1.a229a65a9ee4bp-3,
      -0x1.1cd9456c79112p-3, -0x1.4c224a734b622p+0, -0x1.783bb7c5bce79p+0,
      -0x1.4138da836e374p+1, -0x1.31facbc2ea8bcp+0, 0x1.0de982db9c8c3p+1,
      -0x1.d2aef3117872bp-1, 0x1.e281d3ed61958p-5,  -0x1.208770a18024bp-2,
      -0x1.6381b34f86e91p+1, 0x1.101e1ede56192p+0,  0x1.b9f8213c28dd6p-1,
      0x1.1f113f778e4b9p+1,  0x1.efa0cf5ae83ffp+0,  -0x1.588890bab2fa5p-1,
      -0x1.a5a99d168048fp-3, -0x1.39619957c0f6dp+0, -0x1.87e76d273e94p-1,
      -0x1.146761b6c74cbp+0, 0x1.0ade0399c3eccp+0,  -0x1.2d73f54bb73cap-1,
      0x1.bf2ffe65455c1p-3,  -0x1.66991b598fcfbp-2, 0x1.47de00f2b0b96p+0,
      -0x1.f68b3487b2b7bp-5, -0x1.a57897b13283bp-1, -0x1.094031034395p-1,
      0x1.0b871c4d07dcdp+0,  0x1.7d0d9fea54817p+0,  -0x1.17857a792721cp+0,
      0x1.4ee316702013p-1,   -0x1.2ce966078583bp+0, -0x1.2cbc9cbeb70d5p-1,
      0x1.0ce8922c11833p+0};
  sp::Rng rng(42);
  for (int i = 0; i < 64; ++i) {
    const double v = rng.normal();
    EXPECT_EQ(std::bit_cast<std::uint64_t>(v),
              std::bit_cast<std::uint64_t>(kExpected[i]))
        << "draw " << i;
  }
}

// ---------------------------------------------------------------- RngBlock

TEST(RngBlock, PackUnpackRoundTripsEngineState) {
  const std::size_t w = 8;
  std::vector<sp::Rng> lanes;
  sp::Rng root(1234);
  for (std::size_t j = 0; j < w; ++j) lanes.push_back(root.fork(j));

  sp::RngBlock rb;
  rb.pack(lanes.data(), w);
  ASSERT_EQ(rb.width(), w);

  // Unpack into fresh Rngs: they must continue each lane's stream exactly.
  std::vector<sp::Rng> out(w, sp::Rng(0));
  rb.unpack(out.data());
  for (std::size_t j = 0; j < w; ++j) {
    sp::Rng ref = root.fork(j);
    for (int i = 0; i < 16; ++i)
      EXPECT_EQ(std::bit_cast<std::uint64_t>(out[j].normal()),
                std::bit_cast<std::uint64_t>(ref.normal()))
          << "lane " << j << " draw " << i;
  }
}

TEST(RngBlock, PackRejectsBadWidths) {
  sp::Rng one(1);
  sp::RngBlock rb;
  EXPECT_THROW(rb.pack(&one, 0), std::invalid_argument);
  EXPECT_THROW(rb.pack(&one, sp::lanes::kMaxWidth + 1), std::invalid_argument);
  // Unpacked block refuses to draw.
  double x = 0.0;
  EXPECT_THROW(rb.normal_fill(1.0, &x, 1, 1), std::logic_error);
}

TEST(RngBlock, NormalFillMatchesPerLaneScalarBitwise) {
  // Per-lane stream identity: lane j of the block draw must be bitwise the
  // sequence Rng lane j produces scalar-side.  n*w large enough that the
  // ~1.2% ziggurat slow path (tail + wedge) fires many times per lane.
  for (std::size_t w : {std::size_t{1}, std::size_t{8}, std::size_t{16}}) {
    const std::size_t n = 4096;
    sp::Rng root(777);
    std::vector<sp::Rng> lanes, ref;
    for (std::size_t j = 0; j < w; ++j) lanes.push_back(root.fork(j));
    ref = lanes;

    sp::RngBlock rb;
    rb.pack(lanes.data(), w);
    std::vector<double> got(n * w);
    rb.normal_fill(1.75, got.data(), n, w);
    rb.unpack(lanes.data());

    std::size_t tail_draws = 0;
    for (std::size_t j = 0; j < w; ++j) {
      std::vector<double> want(n);
      ref[j].normal_fill_scaled(1.75, want.data(), n);
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(std::bit_cast<std::uint64_t>(got[i * w + j]),
                  std::bit_cast<std::uint64_t>(want[i]))
            << "w=" << w << " lane " << j << " draw " << i;
        if (std::abs(want[i]) > 1.75 * sp::ziggurat::kR) ++tail_draws;
      }
      // The advanced lane states must agree too: next draws line up.
      EXPECT_EQ(std::bit_cast<std::uint64_t>(lanes[j].normal()),
                std::bit_cast<std::uint64_t>(ref[j].normal()));
    }
    // Make sure this test actually exercised the rejection fallback.
    if (w * n >= 4096) EXPECT_GT(tail_draws, 0u);
  }
}

TEST(RngBlock, NormalFillStridedLeavesGapsUntouched) {
  const std::size_t w = 8, n = 32, stride = 13;  // stride > width
  sp::Rng root(31337);
  std::vector<sp::Rng> lanes;
  for (std::size_t j = 0; j < w; ++j) lanes.push_back(root.fork(j));
  auto ref = lanes;

  sp::RngBlock rb;
  rb.pack(lanes.data(), w);
  std::vector<double> got(n * stride, -99.0);
  rb.normal_fill(1.0, got.data(), n, stride);

  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < w; ++j)
      EXPECT_EQ(std::bit_cast<std::uint64_t>(got[i * stride + j]),
                std::bit_cast<std::uint64_t>(ref[j].normal()));
    for (std::size_t j = w; j < stride; ++j)
      EXPECT_EQ(got[i * stride + j], -99.0);  // padding untouched
  }
}

TEST(RngBlock, UniformU64MatchesPerLaneEngine) {
  const std::size_t w = 8, n = 64;
  sp::Rng root(99);
  std::vector<sp::Rng> lanes;
  for (std::size_t j = 0; j < w; ++j) lanes.push_back(root.fork(j));
  std::vector<sp::Xoshiro256> engines;
  for (std::size_t j = 0; j < w; ++j) engines.push_back(lanes[j].engine());

  sp::RngBlock rb;
  rb.pack(lanes.data(), w);
  std::vector<std::uint64_t> got(n * w);
  rb.uniform_u64(got.data(), n, w);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < w; ++j)
      EXPECT_EQ(got[i * w + j], engines[j]()) << "lane " << j << " row " << i;
}

TEST(Rng, NormalFillVariantsShareOneCore) {
  // normal_vector / normal_fill / normal_fill_scaled(1.0, ...) are one
  // strided core: identical draws from identical states.
  sp::Rng a(5), b(5), c(5);
  const std::size_t n = 512;
  const auto v = a.normal_vector(n);
  std::vector<double> f, s(n);
  b.normal_fill(f, n);
  c.normal_fill_scaled(1.0, s.data(), n);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(v[i]),
              std::bit_cast<std::uint64_t>(f[i]));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(f[i]),
              std::bit_cast<std::uint64_t>(s[i]));
  }
}

TEST(Clark, NWayMatchesPairwiseForTwo) {
  const std::vector<sp::Gaussian> v{{10.0, 2.0}, {11.0, 1.5}};
  const auto m2 = sp::clark_max_n(v);
  const auto cm = sp::clark_max(v[0], v[1], 0.0);
  EXPECT_NEAR(m2.mean, cm.max.mean, 1e-12);
  EXPECT_NEAR(m2.sigma, cm.max.sigma, 1e-12);
}

TEST(Clark, NWaySingleVariableIsIdentity) {
  const std::vector<sp::Gaussian> v{{7.0, 0.5}};
  const auto m = sp::clark_max_n(v);
  EXPECT_DOUBLE_EQ(m.mean, 7.0);
  EXPECT_DOUBLE_EQ(m.sigma, 0.5);
}

TEST(Clark, NWayPerfectCorrelationEqualStages) {
  // N identical, perfectly correlated stages: max == any one stage.
  const std::vector<sp::Gaussian> v(5, sp::Gaussian{40.0, 6.0});
  const auto m = sp::clark_max_n(v, sp::uniform_correlation(5, 1.0));
  EXPECT_NEAR(m.mean, 40.0, 1e-9);
  EXPECT_NEAR(m.sigma, 6.0, 1e-9);
}

TEST(Clark, NWayAgainstMonteCarlo_Independent) {
  const std::vector<sp::Gaussian> v{
      {40.0, 3.0}, {42.0, 2.0}, {39.0, 4.0}, {41.0, 2.5}, {40.5, 3.5}};
  const auto analytic = sp::clark_max_n(v);

  sp::Rng rng(42);
  sp::RunningStats rs;
  for (int i = 0; i < 200000; ++i) {
    double mx = -1e300;
    for (const auto& g : v) mx = std::max(mx, rng.normal(g.mean, g.sigma));
    rs.add(mx);
  }
  EXPECT_NEAR(analytic.mean, rs.mean(), 0.05);
  // Heterogeneous sigmas (2..4 ps) stress the Gaussian-max assumption; the
  // sigma error is larger than the paper's homogeneous configs (Fig. 3).
  EXPECT_NEAR(analytic.sigma, rs.stddev(), 0.08 * rs.stddev());
}

TEST(Clark, NWayAgainstMonteCarlo_HomogeneousSigma) {
  // The paper's configurations: equal stage sigmas.  Error < ~3% (Fig 3a).
  std::vector<sp::Gaussian> v;
  for (int i = 0; i < 8; ++i) v.push_back({40.0 + 0.5 * i, 3.0});
  const auto analytic = sp::clark_max_n(v);

  sp::Rng rng(99);
  sp::RunningStats rs;
  for (int i = 0; i < 300000; ++i) {
    double mx = -1e300;
    for (const auto& g : v) mx = std::max(mx, rng.normal(g.mean, g.sigma));
    rs.add(mx);
  }
  EXPECT_NEAR(analytic.mean, rs.mean(), 0.002 * rs.mean());
  // Clark underestimates sigma when many near-equal variables overlap; the
  // paper's own Table I shows the same bias (model 2.72 vs MC 3.27 for the
  // 5x8 config, -17%).  Bound the error rather than expect a perfect match.
  EXPECT_NEAR(analytic.sigma, rs.stddev(), 0.06 * rs.stddev());
}

TEST(Clark, NWayAgainstMonteCarlo_Correlated) {
  const std::vector<sp::Gaussian> v{
      {40.0, 3.0}, {42.0, 2.0}, {39.0, 4.0}, {41.0, 2.5}};
  const auto corr = sp::uniform_correlation(4, 0.5);
  const auto analytic = sp::clark_max_n(v, corr);

  std::vector<double> means, sigmas;
  for (const auto& g : v) {
    means.push_back(g.mean);
    sigmas.push_back(g.sigma);
  }
  sp::CorrelatedNormalSampler sampler(means, sigmas, corr);
  sp::Rng rng(7);
  sp::RunningStats rs;
  for (int i = 0; i < 200000; ++i) {
    const auto x = sampler.sample(rng);
    rs.add(*std::max_element(x.begin(), x.end()));
  }
  EXPECT_NEAR(analytic.mean, rs.mean(), 0.05);
  // sigma error grows with correlation (paper Fig. 3b); allow 3%.
  EXPECT_NEAR(analytic.sigma, rs.stddev(), 0.03 * rs.stddev() + 0.02);
}

TEST(Clark, OrderingPolicyChangesResultOnlySlightly) {
  std::vector<sp::Gaussian> v;
  for (int i = 0; i < 12; ++i)
    v.push_back({40.0 + i * 0.7, 2.0 + 0.1 * (i % 4)});
  const auto inc = sp::clark_max_n(v, sp::ClarkOrdering::kIncreasingMean);
  const auto dec = sp::clark_max_n(v, sp::ClarkOrdering::kDecreasingMean);
  const auto doc = sp::clark_max_n(v, sp::ClarkOrdering::kAsGiven);
  EXPECT_NEAR(inc.mean, dec.mean, 0.1);
  EXPECT_NEAR(inc.mean, doc.mean, 0.1);
  EXPECT_NEAR(inc.sigma, doc.sigma, 0.1);
}

TEST(Clark, EmptyInputThrows) {
  EXPECT_THROW(sp::clark_max_n({}), std::invalid_argument);
}

// Property sweep: Clark mean must always dominate the Jensen bound and be
// below the sum-based upper bound, for a grid of (spread, rho).
class ClarkProperty : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(ClarkProperty, JensenAndUpperBoundsHold) {
  const auto [spread, rho] = GetParam();
  std::vector<sp::Gaussian> v;
  for (int i = 0; i < 6; ++i) v.push_back({50.0 + spread * i, 3.0});
  const auto corr = sp::uniform_correlation(6, rho);
  const auto m = sp::clark_max_n(v, corr);
  double mu_max = 0.0, mu_sum = 0.0;
  for (const auto& g : v) {
    mu_max = std::max(mu_max, g.mean);
    mu_sum += g.mean + g.sigma;  // crude but valid upper bound on E[max]
  }
  EXPECT_GE(m.mean, mu_max - 1e-9);
  EXPECT_LE(m.mean, mu_sum);
  EXPECT_GE(m.sigma, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    SpreadRhoGrid, ClarkProperty,
    ::testing::Combine(::testing::Values(0.0, 0.5, 2.0, 10.0),
                       ::testing::Values(0.0, 0.2, 0.5, 0.8, 0.99)));

// ---------------------------------------------------------------- matrices

TEST(Matrix, CholeskyOfIdentity) {
  const auto l = sp::cholesky(sp::Matrix::identity(4));
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 4; ++j)
      EXPECT_NEAR(l(i, j), i == j ? 1.0 : 0.0, 1e-15);
}

TEST(Matrix, CholeskyReconstructs) {
  auto a = sp::uniform_correlation(5, 0.4);
  const auto l = sp::cholesky(a);
  for (std::size_t i = 0; i < 5; ++i)
    for (std::size_t j = 0; j < 5; ++j) {
      double s = 0.0;
      for (std::size_t k = 0; k < 5; ++k) s += l(i, k) * l(j, k);
      EXPECT_NEAR(s, a(i, j), 1e-12);
    }
}

TEST(Matrix, CholeskyRejectsIndefinite) {
  sp::Matrix m(2);
  m(0, 0) = 1.0;
  m(1, 1) = 1.0;
  m(0, 1) = m(1, 0) = 1.5;  // |rho| > 1: indefinite
  EXPECT_THROW(sp::cholesky(m), std::domain_error);
}

TEST(Matrix, CholeskyPsdHandlesPerfectCorrelation) {
  const auto m = sp::uniform_correlation(4, 1.0);
  EXPECT_NO_THROW(sp::cholesky_psd(m));
}

TEST(Matrix, UniformCorrelationBounds) {
  EXPECT_THROW(sp::uniform_correlation(3, 1.2), std::invalid_argument);
  EXPECT_THROW(sp::uniform_correlation(3, -0.9), std::invalid_argument);
  EXPECT_NO_THROW(sp::uniform_correlation(3, -0.4));
}

TEST(Matrix, SpatialCorrelationDecays) {
  const auto m = sp::spatial_correlation({0.0, 0.5, 1.0}, 0.5);
  EXPECT_NEAR(m(0, 1), std::exp(-1.0), 1e-12);
  EXPECT_NEAR(m(0, 2), std::exp(-2.0), 1e-12);
  EXPECT_GT(m(0, 1), m(0, 2));
  EXPECT_TRUE(sp::is_valid_correlation(m));
}

TEST(Matrix, ValidityChecks) {
  EXPECT_TRUE(sp::is_valid_correlation(sp::uniform_correlation(6, 0.3)));
  sp::Matrix bad(2);
  bad(0, 0) = 1.0;
  bad(1, 1) = 2.0;  // diagonal != 1
  bad(0, 1) = bad(1, 0) = 0.1;
  EXPECT_FALSE(sp::is_valid_correlation(bad));
}

// ---------------------------------------------------------------- sampler

TEST(Sampler, CorrelatedDrawsMatchTargetCorrelation) {
  const auto corr = sp::uniform_correlation(3, 0.6);
  sp::CorrelatedNormalSampler s({10.0, 20.0, 30.0}, {1.0, 2.0, 3.0}, corr);
  sp::Rng rng(123);
  std::vector<double> a, b, c;
  for (int i = 0; i < 50000; ++i) {
    const auto x = s.sample(rng);
    a.push_back(x[0]);
    b.push_back(x[1]);
    c.push_back(x[2]);
  }
  EXPECT_NEAR(sp::mean(a), 10.0, 0.05);
  EXPECT_NEAR(sp::stddev(b), 2.0, 0.05);
  EXPECT_NEAR(sp::pearson(a, b), 0.6, 0.02);
  EXPECT_NEAR(sp::pearson(a, c), 0.6, 0.02);
}

TEST(Sampler, SizeMismatchThrows) {
  EXPECT_THROW(sp::CorrelatedNormalSampler({1.0}, {1.0, 2.0},
                                           sp::Matrix::identity(2)),
               std::invalid_argument);
}

// ------------------------------------------------------------- descriptive

TEST(Descriptive, RunningStatsMatchesBatch) {
  sp::Rng rng(5);
  std::vector<double> xs;
  sp::RunningStats rs;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 2.0);
    xs.push_back(x);
    rs.add(x);
  }
  EXPECT_NEAR(rs.mean(), sp::mean(xs), 1e-12);
  EXPECT_NEAR(rs.variance(), sp::variance(xs), 1e-9);
}

TEST(Descriptive, RunningStatsMerge) {
  sp::Rng rng(6);
  sp::RunningStats all, a, b;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.normal();
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Descriptive, QuantileInterpolates) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(sp::quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(sp::quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(sp::quantile(xs, 0.5), 2.5);
}

TEST(Descriptive, EmpiricalCdfCountsInclusive) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(sp::empirical_cdf_at(xs, 2.0), 0.5);
  EXPECT_DOUBLE_EQ(sp::empirical_cdf_at(xs, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(sp::empirical_cdf_at(xs, 9.0), 1.0);
}

TEST(Descriptive, ProportionStderr) {
  EXPECT_NEAR(sp::proportion_stderr(0.5, 10000), 0.005, 1e-12);
  EXPECT_THROW(sp::proportion_stderr(0.5, 0), std::invalid_argument);
}

// ---------------------------------------------------------------- histogram

TEST(Histogram, BinsAndDensity) {
  sp::Histogram h(0.0, 10.0, 10);
  for (double x : {0.5, 1.5, 1.7, 9.5, 100.0 /*clamped*/}) h.add(x);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 2u);
  EXPECT_EQ(h.count(9), 2u);  // 9.5 and the clamped 100.0
  double integral = 0.0;
  for (std::size_t i = 0; i < h.bins(); ++i)
    integral += h.density(i) * h.bin_width();
  EXPECT_NEAR(integral, 1.0, 1e-12);
}

TEST(Histogram, FromSamplesCoversRange) {
  sp::Rng rng(9);
  std::vector<double> xs;
  for (int i = 0; i < 1000; ++i) xs.push_back(rng.normal(50.0, 5.0));
  const auto h = sp::Histogram::from_samples(xs, 32);
  EXPECT_EQ(h.total(), xs.size());
  EXPECT_LT(h.lo(), *std::min_element(xs.begin(), xs.end()));
  EXPECT_GT(h.hi(), *std::max_element(xs.begin(), xs.end()));
}

TEST(Histogram, CsvHasHeaderAndRows) {
  sp::Histogram h(0.0, 1.0, 4);
  h.add(0.1);
  const auto csv = h.to_csv("unit");
  EXPECT_NE(csv.find("center,count,density"), std::string::npos);
  EXPECT_NE(csv.find("# histogram unit"), std::string::npos);
}

TEST(Histogram, MergeFoldsCountsWithIdenticalBinning) {
  sp::Histogram a(0.0, 10.0, 5), b(0.0, 10.0, 5);
  a.add(1.0);
  a.add(3.0);
  b.add(3.5);
  b.add(9.0);
  a.merge(b);
  EXPECT_EQ(a.total(), 4u);
  EXPECT_EQ(a.count(0), 1u);
  EXPECT_EQ(a.count(1), 2u);
  EXPECT_EQ(a.count(4), 1u);
  // Self-merge doubles every bin — aliasing-safe by design.
  a.merge(a);
  EXPECT_EQ(a.total(), 8u);
  EXPECT_EQ(a.count(1), 4u);
}

TEST(Histogram, MergeRejectsMismatchedBinning) {
  sp::Histogram a(0.0, 10.0, 5);
  EXPECT_THROW(a.merge(sp::Histogram(0.0, 10.0, 6)), std::invalid_argument);
  EXPECT_THROW(a.merge(sp::Histogram(0.0, 9.0, 5)), std::invalid_argument);
  EXPECT_THROW(a.merge(sp::Histogram(0.5, 10.0, 5)), std::invalid_argument);
}

TEST(Histogram, FromCountsRebuildsExactly) {
  sp::Histogram a(5.0, 25.0, 4);
  a.add(6.0);
  a.add(24.0);
  a.add(24.5);
  const auto b = sp::Histogram::from_counts(
      a.lo(), a.hi(), {a.count(0), a.count(1), a.count(2), a.count(3)});
  EXPECT_EQ(b.total(), a.total());
  for (std::size_t i = 0; i < a.bins(); ++i) EXPECT_EQ(b.count(i), a.count(i));
  EXPECT_THROW(sp::Histogram::from_counts(0.0, 1.0, {}),
               std::invalid_argument);
}

// -------------------------------------------------------- RunningStats IO

TEST(RunningStats, StateRoundTripIsIndistinguishable) {
  sp::Rng rng(404);
  sp::RunningStats s;
  for (int i = 0; i < 1000; ++i) s.add(rng.normal(50.0, 9.0));
  const auto back = sp::RunningStats::from_state(s.state());
  EXPECT_EQ(back.count(), s.count());
  EXPECT_EQ(back.mean(), s.mean());
  EXPECT_EQ(back.variance(), s.variance());
  EXPECT_EQ(back.min(), s.min());
  EXPECT_EQ(back.max(), s.max());
  // Continuing to accumulate after the round trip matches exactly too.
  sp::RunningStats cont = back;
  sp::RunningStats orig = s;
  cont.add(123.456);
  orig.add(123.456);
  EXPECT_EQ(cont.mean(), orig.mean());
  EXPECT_EQ(cont.variance(), orig.variance());
}

// State snapshots arrive off the distributed wire (dist/serialize), so
// from_state treats every field as adversarial: any bit pattern no
// add()/merge() sequence can produce must be rejected loudly, never
// folded into an accumulator where a single NaN poisons every later
// merge.
TEST(RunningStats, FromStateRejectsAdversarialFields) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  sp::RunningStats good;
  good.add(1.5);
  good.add(4.5);
  const auto s = good.state();

  // Non-finite contamination of every floating field, individually.
  for (const double bad : {nan, inf, -inf}) {
    auto t = s;
    t.mean = bad;
    EXPECT_THROW((void)sp::RunningStats::from_state(t), std::invalid_argument);
    t = s;
    t.m2 = bad;
    EXPECT_THROW((void)sp::RunningStats::from_state(t), std::invalid_argument);
    t = s;
    t.min = bad;
    EXPECT_THROW((void)sp::RunningStats::from_state(t), std::invalid_argument);
    t = s;
    t.max = bad;
    EXPECT_THROW((void)sp::RunningStats::from_state(t), std::invalid_argument);
  }
  // Welford's m2 is a sum of squares: it can never go negative.
  {
    auto t = s;
    t.m2 = -1.0;
    EXPECT_THROW((void)sp::RunningStats::from_state(t), std::invalid_argument);
  }
  // An inverted extremum pair with samples present.
  {
    auto t = s;
    t.min = 10.0;
    t.max = 2.0;
    EXPECT_THROW((void)sp::RunningStats::from_state(t), std::invalid_argument);
  }
  // Zero samples with nonzero moments is unreachable by construction.
  {
    sp::RunningStats::State t{};
    t.mean = 1.0;
    EXPECT_THROW((void)sp::RunningStats::from_state(t), std::invalid_argument);
  }
  // The valid snapshots still pass: the populated one and the empty one.
  EXPECT_NO_THROW((void)sp::RunningStats::from_state(s));
  EXPECT_NO_THROW((void)sp::RunningStats::from_state(sp::RunningStats::State{}));
}

TEST(Histogram, RejectsNonFiniteOrUnorderedBounds) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  // +inf hi satisfies `hi > lo`, which is exactly why isfinite is checked
  // too: every bin width would be inf and binning degenerates.
  EXPECT_THROW(sp::Histogram(0.0, inf, 4), std::invalid_argument);
  EXPECT_THROW(sp::Histogram(-inf, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(sp::Histogram(nan, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(sp::Histogram(0.0, nan, 4), std::invalid_argument);
  EXPECT_THROW(sp::Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(sp::Histogram(2.0, 1.0, 4), std::invalid_argument);
  // The same gate guards the wire-deserialization path.
  EXPECT_THROW(sp::Histogram::from_counts(0.0, inf, {1, 2}),
               std::invalid_argument);
  EXPECT_THROW(sp::Histogram::from_counts(nan, 1.0, {1, 2}),
               std::invalid_argument);
  EXPECT_THROW(sp::Histogram::from_counts(2.0, 1.0, {1, 2}),
               std::invalid_argument);
}

TEST(Histogram, FromCountsRejectsOverflowingTotal) {
  const std::size_t big = std::numeric_limits<std::size_t>::max();
  // Hostile counts crafted to wrap total() (and with it every density)
  // around SIZE_MAX: overflow is a validation error, not UB.
  EXPECT_THROW(sp::Histogram::from_counts(0.0, 1.0, {big, 2}),
               std::invalid_argument);
  EXPECT_THROW(sp::Histogram::from_counts(0.0, 1.0, {big / 2, big / 2, 3}),
               std::invalid_argument);
  // The exact ceiling itself still works.
  const auto h = sp::Histogram::from_counts(0.0, 1.0, {big - 1, 1});
  EXPECT_EQ(h.total(), big);
}

// ------------------------------------------------------------------ lanes

TEST(Lanes, ValidatedWidthRejectsOutOfRange) {
  // The accepted range is the *active SIMD backend's* [1, max_width()];
  // kMaxWidth is only the absolute cap across backends.
  EXPECT_EQ(sp::lanes::validated_width(1), 1u);
  EXPECT_EQ(sp::lanes::validated_width(sp::lanes::kWidth), sp::lanes::kWidth);
  EXPECT_LE(sp::lanes::max_width(), sp::lanes::kMaxWidth);
  EXPECT_GE(sp::lanes::preferred_width(), 1u);
  EXPECT_LE(sp::lanes::preferred_width(), sp::lanes::max_width());
  EXPECT_EQ(sp::lanes::validated_width(sp::lanes::max_width()),
            sp::lanes::max_width());
  EXPECT_THROW(sp::lanes::validated_width(0), std::invalid_argument);
  EXPECT_THROW(sp::lanes::validated_width(sp::lanes::max_width() + 1),
               std::invalid_argument);
  EXPECT_THROW(sp::lanes::validated_width(sp::lanes::kMaxWidth + 1),
               std::invalid_argument);
}

TEST(Lanes, PowPosMatchesStdPowClosely) {
  // pow_pos is a distinct implementation from libm (that is the point:
  // both the scalar and lane paths share it), so agreement is to ~1e-13
  // relative over the variation-factor domain, not bitwise.
  sp::Rng rng(777);
  double worst = 0.0;
  for (int i = 0; i < 200000; ++i) {
    const double x = rng.uniform(0.05, 20.0);
    const double y = rng.uniform(-4.0, 4.0);
    const double ours = sp::lanes::pow_pos(x, y);
    const double ref = std::pow(x, y);
    worst = std::max(worst, std::abs(ours - ref) / std::abs(ref));
  }
  EXPECT_LT(worst, 1e-13);
}

TEST(Lanes, PowPosExactAnchors) {
  EXPECT_EQ(sp::lanes::pow_pos(1.0, 1.3), 1.0);
  EXPECT_EQ(sp::lanes::pow_pos(1.0, -271.25), 1.0);
  EXPECT_EQ(sp::lanes::pow_pos(17.25, 0.0), 1.0);
  // Exact powers of two with integer exponents come out exact.
  EXPECT_EQ(sp::lanes::pow_pos(2.0, 10.0), 1024.0);
  EXPECT_EQ(sp::lanes::pow_pos(4.0, -1.0), 0.25);
}

// ---------------------------------------------------------------- KS

TEST(Ks, GaussianSampleHasSmallDistance) {
  sp::Rng rng(11);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(rng.normal(100.0, 7.0));
  EXPECT_LT(sp::ks_distance(xs, sp::Gaussian{100.0, 7.0}), 0.015);
  // Against the wrong Gaussian the distance is large.
  EXPECT_GT(sp::ks_distance(xs, sp::Gaussian{110.0, 7.0}), 0.3);
}

TEST(Ks, TwoSampleSelfDistanceSmall) {
  sp::Rng rng(13);
  std::vector<double> a, b;
  for (int i = 0; i < 10000; ++i) {
    a.push_back(rng.normal());
    b.push_back(rng.normal());
  }
  EXPECT_LT(sp::ks_distance(a, b), 0.03);
}
