// Tests for the parallel simulation engine: the thread pool, the shard
// scheduler, deterministic RNG stream splitting, mergeable accumulators and
// the thread-count-invariance of the Monte-Carlo engines.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "core/pipeline_model.h"
#include "mc/pipeline_mc.h"
#include "netlist/generators.h"
#include "sim/engine.h"
#include "sim/thread_pool.h"
#include "stats/descriptive.h"
#include "stats/rng.h"

namespace sp = statpipe;
using sp::core::LatchOverhead;
using sp::core::PipelineModel;
using sp::core::StageModel;
using sp::stats::Gaussian;

// ------------------------------------------------------------- thread pool

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  sp::sim::ThreadPool pool(4);
  constexpr std::size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  pool.parallel_for(n, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, PropagatesTaskExceptions) {
  sp::sim::ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(
                   64,
                   [&](std::size_t i) {
                     if (i == 13) throw std::runtime_error("boom");
                   }),
               std::runtime_error);
}

TEST(ThreadPool, NestedCallsRunInline) {
  sp::sim::ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(64);
  pool.parallel_for(8, [&](std::size_t outer) {
    pool.parallel_for(8, [&](std::size_t inner) {
      hits[outer * 8 + inner].fetch_add(1);
    });
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SingleThreadPoolDegradesToSerial) {
  sp::sim::ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1u);
  int sum = 0;
  pool.parallel_for(10, [&](std::size_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum, 45);
}

// -------------------------------------------------- STATPIPE_THREADS parsing

TEST(ThreadPoolEnv, AcceptsPositiveIntegers) {
  EXPECT_EQ(sp::sim::parse_thread_count("1"), 1u);
  EXPECT_EQ(sp::sim::parse_thread_count("8"), 8u);
  EXPECT_EQ(sp::sim::parse_thread_count("  16  "), 16u);
  EXPECT_EQ(sp::sim::parse_thread_count("0064"), 64u);
}

TEST(ThreadPoolEnv, RejectsGarbageZeroAndNegative) {
  for (const char* bad : {"", "   ", "abc", "4x", "4 threads", "1.5", "-2",
                          "-0", "0", "0x8", "99999999999999999999999"}) {
    EXPECT_THROW(sp::sim::parse_thread_count(bad), std::invalid_argument)
        << "value: '" << bad << "'";
  }
  EXPECT_THROW(sp::sim::parse_thread_count(nullptr), std::invalid_argument);
  // The error message must name the offending value.
  try {
    sp::sim::parse_thread_count("banana");
    FAIL() << "must throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("banana"), std::string::npos)
        << e.what();
  }
}

// ---------------------------------------------------------- shard planning

TEST(Shards, CoverRangeDisjointly) {
  const auto shards = sp::sim::plan_shards(10000, 1024);
  EXPECT_EQ(shards.size(), 10u);
  std::size_t expect_begin = 0;
  for (std::size_t i = 0; i < shards.size(); ++i) {
    EXPECT_EQ(shards[i].index, i);
    EXPECT_EQ(shards[i].begin, expect_begin);
    expect_begin += shards[i].count;
  }
  EXPECT_EQ(expect_begin, 10000u);
  EXPECT_EQ(shards.back().count, 10000u - 9u * 1024u);
}

TEST(Shards, SmallRunIsOneShard) {
  const auto shards = sp::sim::plan_shards(5, 1024);
  ASSERT_EQ(shards.size(), 1u);
  EXPECT_EQ(shards[0].count, 5u);
}

TEST(Shards, RejectsDegenerateInputs) {
  EXPECT_THROW(sp::sim::plan_shards(0, 16), std::invalid_argument);
  EXPECT_THROW(sp::sim::plan_shards(16, 0), std::invalid_argument);
  EXPECT_THROW(sp::sim::shard_count(0, 16), std::invalid_argument);
  EXPECT_THROW(sp::sim::shard_count(16, 0), std::invalid_argument);
}

TEST(Shards, SubrangePlanMatchesFullPlanSlice) {
  // plan_shard_range must mint exactly the shards plan_shards would — the
  // distributed workers rely on this to replay the coordinator's plan
  // without materializing all of it.
  const std::size_t n = 10000, per = 1024;
  const auto full = sp::sim::plan_shards(n, per);
  EXPECT_EQ(sp::sim::shard_count(n, per), full.size());
  for (const auto [b, e] :
       {std::pair<std::size_t, std::size_t>{0, full.size()}, {3, 7}, {9, 10}}) {
    const auto sub = sp::sim::plan_shard_range(n, per, b, e);
    ASSERT_EQ(sub.size(), e - b);
    for (std::size_t i = 0; i < sub.size(); ++i) {
      EXPECT_EQ(sub[i].index, full[b + i].index);
      EXPECT_EQ(sub[i].begin, full[b + i].begin);
      EXPECT_EQ(sub[i].count, full[b + i].count);
    }
  }
  EXPECT_THROW(sp::sim::plan_shard_range(n, per, 5, 5),
               std::invalid_argument);
  EXPECT_THROW(sp::sim::plan_shard_range(n, per, 0, full.size() + 1),
               std::invalid_argument);
}

// ------------------------------------------------------------ RNG streams

TEST(RngStreams, ForkByIdIsReproducible) {
  sp::stats::Rng a(12345);
  (void)a.normal();  // draw position must not matter for fork(id)
  (void)a.normal();
  sp::stats::Rng b(12345);
  auto s1 = a.fork(7).normal_vector(32);
  auto s2 = b.fork(7).normal_vector(32);
  for (std::size_t i = 0; i < s1.size(); ++i) EXPECT_EQ(s1[i], s2[i]);
}

TEST(RngStreams, DistinctIdsAreUncorrelated) {
  sp::stats::Rng root(99);
  constexpr std::size_t n = 20000;
  auto a = root.fork(0).normal_vector(n);
  auto b = root.fork(1).normal_vector(n);
  // Cross-correlation of independent streams ~ N(0, 1/n): |rho| < 4/sqrt(n).
  EXPECT_LT(std::abs(sp::stats::pearson(a, b)), 4.0 / std::sqrt(double(n)));
  // And each stream is itself standard normal to sampling accuracy.
  EXPECT_NEAR(sp::stats::mean(a), 0.0, 0.03);
  EXPECT_NEAR(sp::stats::stddev(a), 1.0, 0.03);
}

TEST(RngStreams, AdjacentSeedsGiveDistinctStreams) {
  // splitmix avalanche: nearby seeds and ids must not alias.
  sp::stats::Rng r1(1), r2(2);
  auto a = r1.fork(0).normal_vector(1000);
  auto b = r2.fork(0).normal_vector(1000);
  EXPECT_LT(std::abs(sp::stats::pearson(a, b)), 0.13);
  EXPECT_NE(a[0], b[0]);
}

// --------------------------------------------------- mergeable accumulators

TEST(RunningStatsMerge, MatchesSinglePass) {
  sp::stats::Rng rng(7);
  std::vector<double> all;
  sp::stats::RunningStats whole;
  std::vector<sp::stats::RunningStats> parts(7);
  for (std::size_t i = 0; i < 10001; ++i) {
    const double x = rng.normal(3.0, 2.0) + rng.uniform();
    all.push_back(x);
    whole.add(x);
    parts[i % parts.size()].add(x);
  }
  sp::stats::RunningStats merged;
  for (const auto& p : parts) merged.merge(p);

  EXPECT_EQ(merged.count(), whole.count());
  EXPECT_NEAR(merged.mean(), whole.mean(), 1e-10 * std::abs(whole.mean()));
  EXPECT_NEAR(merged.variance(), whole.variance(),
              1e-9 * whole.variance());
  EXPECT_EQ(merged.min(), whole.min());
  EXPECT_EQ(merged.max(), whole.max());
  // And both agree with the two-pass reference.
  EXPECT_NEAR(merged.mean(), sp::stats::mean(all), 1e-9);
  EXPECT_NEAR(merged.variance(), sp::stats::variance(all), 1e-8);
}

TEST(RunningStatsMerge, EmptySidesAreNeutral) {
  sp::stats::RunningStats a, b, empty;
  a.add(1.0);
  a.add(3.0);
  b = a;
  b.merge(empty);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_EQ(b.mean(), a.mean());
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_EQ(empty.mean(), a.mean());
}

TEST(McResultMerge, CombinesSamplesAndStats) {
  sp::mc::McResult a, b;
  a.stage_stats.resize(2);
  b.stage_stats.resize(2);
  a.tp_samples = {1.0, 2.0};
  b.tp_samples = {3.0};
  a.stage_stats[0].add(1.0);
  b.stage_stats[0].add(3.0);
  a.merge(std::move(b));
  EXPECT_EQ(a.tp_samples.size(), 3u);
  EXPECT_EQ(a.stage_stats[0].count(), 2u);
  EXPECT_NEAR(a.stage_stats[0].mean(), 2.0, 1e-12);

  sp::mc::McResult mismatched;
  mismatched.stage_stats.resize(3);
  sp::mc::McResult c;
  c.stage_stats.resize(2);
  EXPECT_THROW(c.merge(std::move(mismatched)), std::invalid_argument);
}

// ------------------------------------------- degenerate-run error reporting

TEST(McResultDegenerate, EmptyRunsFailFastWithRunName) {
  sp::mc::McResult empty;
  empty.label = "smoke-run";
  EXPECT_THROW(empty.yield_at(100.0), std::logic_error);
  EXPECT_THROW(empty.yield_ci95(100.0), std::logic_error);
  try {
    empty.tp_estimate();
    FAIL() << "tp_estimate on empty run must throw";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("smoke-run"), std::string::npos)
        << "error must name the offending run: " << e.what();
  }
  empty.tp_samples.push_back(1.0);  // one sample: still too small to estimate
  EXPECT_THROW(empty.tp_estimate(), std::logic_error);
  EXPECT_NO_THROW(empty.yield_at(100.0));
}

// ------------------------------------------------ thread-count determinism

namespace {

PipelineModel small_pipeline() {
  std::vector<StageModel> s;
  for (int i = 0; i < 5; ++i)
    s.emplace_back("s" + std::to_string(i), Gaussian{150.0 + 5.0 * i, 6.0},
                   3.0, 50.0);
  return PipelineModel(std::move(s), LatchOverhead{40.0, 0.0, 0.5});
}

template <typename Mc>
void expect_bitwise_identical_runs(const Mc& mc, std::size_t n_samples) {
  // Vary thread count AND block width together: both are pure throughput
  // knobs, so the wide run (8 threads, 16-wide SoA blocks) must be
  // bitwise-equal to the serial scalar run (1 thread, width 1).
  sp::sim::ExecutionOptions serial, wide;
  serial.threads = 1;
  serial.block_width = 1;
  wide.threads = 8;
  wide.block_width = 16;
  serial.samples_per_shard = wide.samples_per_shard = 256;

  sp::stats::Rng rng1(4242), rng2(4242);
  const auto r1 = mc.run(n_samples, rng1, serial);
  const auto r2 = mc.run(n_samples, rng2, wide);

  ASSERT_EQ(r1.tp_samples.size(), n_samples);
  ASSERT_EQ(r2.tp_samples.size(), n_samples);
  for (std::size_t i = 0; i < n_samples; ++i)
    ASSERT_EQ(r1.tp_samples[i], r2.tp_samples[i]) << "sample " << i;
  ASSERT_EQ(r1.stage_stats.size(), r2.stage_stats.size());
  for (std::size_t s = 0; s < r1.stage_stats.size(); ++s) {
    EXPECT_EQ(r1.stage_stats[s].count(), r2.stage_stats[s].count());
    EXPECT_EQ(r1.stage_stats[s].mean(), r2.stage_stats[s].mean());
    EXPECT_EQ(r1.stage_stats[s].variance(), r2.stage_stats[s].variance());
    EXPECT_EQ(r1.stage_stats[s].min(), r2.stage_stats[s].min());
    EXPECT_EQ(r1.stage_stats[s].max(), r2.stage_stats[s].max());
  }
}

}  // namespace

TEST(Determinism, StageLevelMcIsThreadCountInvariant) {
  const auto p = small_pipeline();
  sp::mc::StageLevelMonteCarlo mc(p);
  expect_bitwise_identical_runs(mc, 5000);
}

TEST(Determinism, GateLevelMcIsThreadCountInvariant) {
  std::vector<sp::netlist::Netlist> stages;
  for (int i = 0; i < 3; ++i) stages.push_back(sp::netlist::inverter_chain(6));
  std::vector<const sp::netlist::Netlist*> views;
  for (const auto& s : stages) views.push_back(&s);
  const sp::device::AlphaPowerModel model{sp::process::Technology{}};
  const sp::device::LatchModel latch{{}, model};
  const auto spec = sp::process::VariationSpec::inter_intra(0.020, 0.010, 0.5);
  sp::mc::GateLevelMonteCarlo mc(views, model, spec, latch);
  expect_bitwise_identical_runs(mc, 1500);
}

TEST(Determinism, SameSeedSameResultAcrossShardCaps) {
  // Shard size IS part of the stream layout: identical values give
  // identical runs...
  const auto p = small_pipeline();
  sp::mc::StageLevelMonteCarlo mc(p);
  sp::sim::ExecutionOptions a, b;
  a.samples_per_shard = b.samples_per_shard = 512;
  a.threads = 2;
  b.threads = 4;
  sp::stats::Rng r1(7), r2(7);
  const auto x = mc.run(2048, r1, a);
  const auto y = mc.run(2048, r2, b);
  for (std::size_t i = 0; i < x.tp_samples.size(); ++i)
    ASSERT_EQ(x.tp_samples[i], y.tp_samples[i]);
  // ...and statistics stay sane either way.
  EXPECT_NEAR(x.tp_estimate().mean, p.delay_distribution().mean,
              0.02 * p.delay_distribution().mean);
}
