// Tests for the runtime-dispatched SIMD backend layer (stats/simd.h):
// detection and STATPIPE_SIMD resolution, and the per-backend bitwise
// self-consistency matrix — scalar reference vs. every backend this
// machine can run, at every width the backend accepts, through the ported
// kernels (pow_pos, clark_max_lanes, sample_block_into) and a full
// GateLevelMonteCarlo block run.
//
// All backends are compiled from one kernel source with IEEE-preserving
// flags only (no -mfma, -ffp-contract=off), so cross-backend equality is
// asserted *bitwise* here: any fused or reassociated arithmetic sneaking
// into a backend build is a test failure, not a tolerance.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "device/latch.h"
#include "mc/pipeline_mc.h"
#include "netlist/generators.h"
#include "process/variation.h"
#include "stats/clark.h"
#include "stats/lanes.h"
#include "stats/rng.h"
#include "stats/simd.h"

namespace sp = statpipe;
namespace simd = statpipe::stats::simd;

namespace {

/// Clears any forced backend on scope exit so a failing ASSERT inside a
/// forced region cannot leak the forcing into later tests.
struct BackendGuard {
  explicit BackendGuard(simd::Backend b) { simd::force_backend_for_testing(b); }
  ~BackendGuard() { simd::clear_forced_backend_for_testing(); }
};

/// Widths the self-consistency matrix probes, clipped to a backend's max.
std::vector<std::size_t> matrix_widths(std::size_t max_width) {
  std::vector<std::size_t> w;
  for (std::size_t c : {std::size_t{1}, std::size_t{8}, std::size_t{16},
                        std::size_t{32}, std::size_t{64}})
    if (c <= max_width) w.push_back(c);
  return w;
}

}  // namespace

// -------------------------------------------------------------- detection

TEST(SimdDetect, ScalarAlwaysPresentAndPreferenceOrdered) {
  const auto det = simd::detected_backends();
  ASSERT_FALSE(det.empty());
  EXPECT_EQ(det.front(), simd::Backend::kScalar);
  for (simd::Backend b : det) {
    const simd::KernelTable* t = simd::kernels_for(b);
    ASSERT_NE(t, nullptr) << simd::backend_name(b);
    EXPECT_EQ(t->backend, b);
    EXPECT_STREQ(t->name, simd::backend_name(b));
    EXPECT_GE(t->max_width, std::size_t{8});
    EXPECT_LE(t->max_width, sp::stats::lanes::kMaxWidth);
    EXPECT_LE(t->default_width, t->max_width);
  }
  // The active table is one of the detected ones.
  const simd::KernelTable& active = simd::kernels();
  EXPECT_NE(std::find(det.begin(), det.end(), active.backend), det.end());
}

TEST(SimdDetect, ForcingSwitchesActiveTableAndWidthCaps) {
  for (simd::Backend b : simd::detected_backends()) {
    BackendGuard guard(b);
    EXPECT_EQ(simd::kernels().backend, b);
    EXPECT_EQ(sp::stats::lanes::max_width(), simd::kernels_for(b)->max_width);
    // validated_width tracks the forced backend's cap.
    EXPECT_EQ(sp::stats::lanes::validated_width(sp::stats::lanes::max_width()),
              sp::stats::lanes::max_width());
    EXPECT_THROW(
        sp::stats::lanes::validated_width(sp::stats::lanes::max_width() + 1),
        std::invalid_argument);
  }
}

// ------------------------------------------------------------- resolution

TEST(SimdResolve, KnownNamesParse) {
  EXPECT_EQ(simd::parse_backend("scalar"), simd::Backend::kScalar);
  EXPECT_EQ(simd::parse_backend("sse42"), simd::Backend::kSse42);
  EXPECT_EQ(simd::parse_backend("avx2"), simd::Backend::kAvx2);
  EXPECT_EQ(simd::parse_backend("avx512"), simd::Backend::kAvx512);
  EXPECT_EQ(simd::parse_backend("neon"), simd::Backend::kNeon);
  EXPECT_THROW(simd::parse_backend("AVX2"), std::invalid_argument);
  EXPECT_THROW(simd::parse_backend(""), std::invalid_argument);
}

TEST(SimdResolve, UnknownEnvValueThrowsListingDetectedBackends) {
  // STATPIPE_SIMD=<garbage> must fail loudly, and the message must tell
  // the user what this machine actually supports.
  try {
    (void)simd::resolve_env("altivec");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("altivec"), std::string::npos) << msg;
    for (simd::Backend b : simd::detected_backends())
      EXPECT_NE(msg.find(simd::backend_name(b)), std::string::npos) << msg;
  }
}

TEST(SimdResolve, UnsupportedBackendThrowsListingDetectedBackends) {
  // On any one machine at least one named backend is unusable (neon and
  // avx512 are never both runnable); forcing it must throw, not fall back.
  const auto det = simd::detected_backends();
  for (simd::Backend b : {simd::Backend::kSse42, simd::Backend::kAvx2,
                          simd::Backend::kAvx512, simd::Backend::kNeon}) {
    if (std::find(det.begin(), det.end(), b) != det.end()) continue;
    try {
      (void)simd::resolve_env(simd::backend_name(b));
      FAIL() << "expected std::invalid_argument for "
             << simd::backend_name(b);
    } catch (const std::invalid_argument& e) {
      const std::string msg = e.what();
      EXPECT_NE(msg.find("not usable"), std::string::npos) << msg;
      EXPECT_NE(msg.find("scalar"), std::string::npos) << msg;
    }
    return;  // one unusable backend exercised is enough
  }
  FAIL() << "no unusable backend found — detection list is implausible";
}

TEST(SimdResolve, SupportedNamesResolveToTheirTables) {
  for (simd::Backend b : simd::detected_backends())
    EXPECT_EQ(simd::resolve_env(simd::backend_name(b)).backend, b);
}

// --------------------------------------- per-backend bitwise consistency

TEST(SimdMatrix, PowPosLanesMatchesScalarReferenceBitwise) {
  sp::stats::Rng rng(4242);
  for (simd::Backend b : simd::detected_backends()) {
    const simd::KernelTable* t = simd::kernels_for(b);
    for (std::size_t w : matrix_widths(t->max_width)) {
      std::vector<double> x(w), out(w);
      for (double y : {-3.5, -1.0, 0.0, 0.5, 1.3, 3.9}) {
        for (std::size_t j = 0; j < w; ++j) x[j] = rng.uniform(0.05, 20.0);
        t->pow_pos_lanes(x.data(), y, w, out.data());
        for (std::size_t j = 0; j < w; ++j)
          ASSERT_EQ(out[j], sp::stats::lanes::pow_pos(x[j], y))
              << simd::backend_name(b) << " w=" << w << " lane " << j;
      }
    }
  }
}

TEST(SimdMatrix, ClarkMaxLanesMatchesScalarClarkBitwise) {
  sp::stats::Rng rng(777);
  for (simd::Backend b : simd::detected_backends()) {
    BackendGuard guard(b);
    const std::size_t maxw = simd::kernels().max_width;
    for (std::size_t w : matrix_widths(maxw)) {
      std::vector<double> m1(w), s1(w), m2(w), s2(w), rho(w);
      std::vector<double> om(w), os(w), oa(w), oaa(w), op(w);
      for (std::size_t j = 0; j < w; ++j) {
        m1[j] = rng.uniform(-5.0, 5.0);
        m2[j] = rng.uniform(-5.0, 5.0);
        s1[j] = rng.uniform(0.0, 3.0);
        s2[j] = rng.uniform(0.0, 3.0);
        rho[j] = rng.uniform(-1.0, 1.0);
      }
      // Exercise the degenerate select path in a couple of lanes too.
      if (w >= 2) {
        s1[0] = s2[0] = 0.0;
        rho[0] = 0.0;
        s1[1] = s2[1] = 1.0;
        rho[1] = 1.0;
      }
      sp::stats::clark_max_lanes({m1.data(), s1.data()},
                                 {m2.data(), s2.data()}, rho.data(), w,
                                 {om.data(), os.data(), oa.data(),
                                  oaa.data(), op.data()});
      for (std::size_t j = 0; j < w; ++j) {
        const auto cm = sp::stats::clark_max({m1[j], s1[j]}, {m2[j], s2[j]},
                                             rho[j]);
        ASSERT_EQ(om[j], cm.max.mean)
            << simd::backend_name(b) << " w=" << w << " lane " << j;
        ASSERT_EQ(os[j], cm.max.sigma);
        ASSERT_EQ(oa[j], cm.alpha);
        ASSERT_EQ(oaa[j], cm.a);
        ASSERT_EQ(op[j], cm.phi_a);
      }
    }
  }
}

TEST(SimdMatrix, SampleBlockIntoIsBackendInvariantBitwise) {
  // Same seeds, same width -> every backend must produce the identical
  // DieBlock (the field multiply is dispatched; draws are per-lane Rngs).
  sp::process::Technology tech;
  const auto spec = sp::process::VariationSpec::inter_intra(0.020, 0.010);
  const sp::process::VariationSampler sampler(
      tech, spec, sp::process::linear_sites(37));
  const auto det = simd::detected_backends();
  for (std::size_t w : matrix_widths(sp::stats::lanes::kMaxWidth)) {
    // Reference block from the scalar backend.
    sp::process::DieBlock ref;
    {
      BackendGuard guard(simd::Backend::kScalar);
      if (w > sp::stats::lanes::max_width()) continue;
      sp::stats::Rng root(99);
      std::vector<sp::stats::Rng> rngs;
      for (std::size_t j = 0; j < w; ++j) rngs.push_back(root.fork(j));
      sp::process::BlockWorkspace ws;
      sampler.sample_block_into(rngs.data(), w, ref, ws);
    }
    for (simd::Backend b : det) {
      BackendGuard guard(b);
      if (w > sp::stats::lanes::max_width()) continue;
      sp::stats::Rng root(99);
      std::vector<sp::stats::Rng> rngs;
      for (std::size_t j = 0; j < w; ++j) rngs.push_back(root.fork(j));
      sp::process::DieBlock blk;
      sp::process::BlockWorkspace ws;
      sampler.sample_block_into(rngs.data(), w, blk, ws);
      ASSERT_EQ(blk.dvth_systematic.size(), ref.dvth_systematic.size());
      for (std::size_t i = 0; i < ref.dvth_systematic.size(); ++i)
        ASSERT_EQ(blk.dvth_systematic[i], ref.dvth_systematic[i])
            << simd::backend_name(b) << " w=" << w << " elem " << i;
      for (std::size_t i = 0; i < ref.dvth_random.size(); ++i)
        ASSERT_EQ(blk.dvth_random[i], ref.dvth_random[i]);
      for (std::size_t j = 0; j < w; ++j) {
        ASSERT_EQ(blk.dvth_inter[j], ref.dvth_inter[j]);
        ASSERT_EQ(blk.dl_inter_rel[j], ref.dl_inter_rel[j]);
      }
    }
  }
}

TEST(SimdMatrix, GateLevelMcBlockRunIsBackendAndWidthInvariantBitwise) {
  // End-to-end: full gate-level MC through the dispatched walk kernel.
  // Fix (seed, samples, shard size); sweep backend x width; every run must
  // produce the identical sample stream.
  std::vector<sp::netlist::Netlist> stages;
  for (std::size_t i = 0; i < 2; ++i) {
    stages.push_back(sp::netlist::inverter_chain(6));
    stages.back().set_name("stage" + std::to_string(i));
  }
  std::vector<const sp::netlist::Netlist*> views;
  for (const auto& s : stages) views.push_back(&s);
  const sp::device::AlphaPowerModel model{sp::process::Technology{}};
  const sp::device::LatchModel latch{{}, model};
  const auto spec = sp::process::VariationSpec::inter_intra(0.020, 0.010);
  const sp::mc::GateLevelMonteCarlo mc(views, model, spec, latch);

  std::vector<double> ref;  // scalar backend, width 1
  {
    BackendGuard guard(simd::Backend::kScalar);
    sp::sim::ExecutionOptions exec;
    exec.threads = 1;
    exec.block_width = 1;
    sp::stats::Rng rng(31337);
    ref = mc.run(500, rng, exec).tp_samples;
  }
  ASSERT_EQ(ref.size(), 500u);

  for (simd::Backend b : simd::detected_backends()) {
    BackendGuard guard(b);
    for (std::size_t w : matrix_widths(simd::kernels().max_width)) {
      sp::sim::ExecutionOptions exec;
      exec.threads = 2;
      exec.block_width = w;
      sp::stats::Rng rng(31337);
      const auto r = mc.run(500, rng, exec);
      ASSERT_EQ(r.tp_samples.size(), ref.size());
      for (std::size_t i = 0; i < ref.size(); ++i)
        ASSERT_EQ(r.tp_samples[i], ref[i])
            << simd::backend_name(b) << " w=" << w << " sample " << i;
    }
  }
}

TEST(SimdMatrix, RngDrawKernelsMatchScalarReferenceBitwise) {
  // The lane-batched draw kernels (uniform_u64_lanes / normal_fill_lanes)
  // must reproduce each lane's scalar stream bitwise on every backend at
  // every width — including through the masked ziggurat fast path and the
  // per-lane rejection fallback.  n is big enough that the ~1.2% slow path
  // (tail + wedge) fires on every (backend, width) cell.
  const std::size_t n = 2048;
  std::size_t tail_draws = 0;
  for (simd::Backend b : simd::detected_backends()) {
    BackendGuard guard(b);
    for (std::size_t w : matrix_widths(simd::kernels().max_width)) {
      sp::stats::Rng root(424242);
      std::vector<sp::stats::Rng> lanes, ref;
      for (std::size_t j = 0; j < w; ++j) lanes.push_back(root.fork(j));
      ref = lanes;
      std::vector<sp::stats::Xoshiro256> engines;
      for (std::size_t j = 0; j < w; ++j) engines.push_back(ref[j].engine());

      sp::stats::RngBlock rb;
      rb.pack(lanes.data(), w);
      std::vector<std::uint64_t> words(n * w);
      rb.uniform_u64(words.data(), n, w);
      for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < w; ++j)
          ASSERT_EQ(words[i * w + j], engines[j]())
              << simd::backend_name(b) << " w=" << w << " lane " << j;

      // Re-pack fresh streams for the normal kernel (the uniform pass above
      // advanced the block's states).
      for (std::size_t j = 0; j < w; ++j) lanes[j] = root.fork(j);
      ref = lanes;
      rb.pack(lanes.data(), w);
      std::vector<double> got(n * w);
      rb.normal_fill(0.35, got.data(), n, w);
      for (std::size_t j = 0; j < w; ++j) {
        std::vector<double> want(n);
        ref[j].normal_fill_scaled(0.35, want.data(), n);
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_EQ(got[i * w + j], want[i])
              << simd::backend_name(b) << " w=" << w << " lane " << j
              << " draw " << i;
          if (std::abs(want[i]) > 0.35 * sp::stats::ziggurat::kR)
            ++tail_draws;
        }
      }
    }
  }
  // The matrix must actually have exercised the rejection fallback.
  EXPECT_GT(tail_draws, 0u);
}

TEST(SimdMatrix, GateLevelMcBlockRunTailHeavySeedInvariant) {
  // Second end-to-end seed for the block-run matrix, sized so the ziggurat
  // slow path fires hundreds of times per run (~1.2% of draws; one die
  // draws one normal per site plus latch overheads): the lanes that hit
  // rejection re-enter the scalar path mid-block, and the equality below
  // proves they rejoin their streams bit for bit on every backend x width.
  std::vector<sp::netlist::Netlist> stages;
  for (std::size_t i = 0; i < 2; ++i) {
    stages.push_back(sp::netlist::inverter_chain(12));
    stages.back().set_name("tail_stage" + std::to_string(i));
  }
  std::vector<const sp::netlist::Netlist*> views;
  for (const auto& s : stages) views.push_back(&s);
  const sp::device::AlphaPowerModel model{sp::process::Technology{}};
  const sp::device::LatchModel latch{{}, model};
  const auto spec = sp::process::VariationSpec::inter_intra(0.030, 0.015);
  const sp::mc::GateLevelMonteCarlo mc(views, model, spec, latch);

  std::vector<double> ref;  // scalar backend, width 1
  {
    BackendGuard guard(simd::Backend::kScalar);
    sp::sim::ExecutionOptions exec;
    exec.threads = 1;
    exec.block_width = 1;
    sp::stats::Rng rng(0xD1CEBA11);
    ref = mc.run(1000, rng, exec).tp_samples;
  }
  ASSERT_EQ(ref.size(), 1000u);

  for (simd::Backend b : simd::detected_backends()) {
    BackendGuard guard(b);
    for (std::size_t w : matrix_widths(simd::kernels().max_width)) {
      sp::sim::ExecutionOptions exec;
      exec.threads = 2;
      exec.block_width = w;
      sp::stats::Rng rng(0xD1CEBA11);
      const auto r = mc.run(1000, rng, exec);
      ASSERT_EQ(r.tp_samples.size(), ref.size());
      for (std::size_t i = 0; i < ref.size(); ++i)
        ASSERT_EQ(r.tp_samples[i], ref[i])
            << simd::backend_name(b) << " w=" << w << " sample " << i;
    }
  }
}

TEST(SimdMatrix, WalkDomainFaultThrowsTheScalarError) {
  // A die far out of saturation must produce the same std::domain_error
  // through the dispatched walk as through the scalar variation_factor,
  // on every backend.
  for (simd::Backend b : simd::detected_backends()) {
    BackendGuard guard(b);
    const sp::device::AlphaPowerModel model{sp::process::Technology{}};
    std::vector<double> dvth{0.0, 5.0};  // lane 1: Vth shift >> Vdd
    std::vector<double> dl{0.0, 0.0};
    std::vector<double> out(2);
    try {
      model.variation_factor_lanes(dvth.data(), dl.data(), 2, out.data());
      FAIL() << "expected std::domain_error on " << simd::backend_name(b);
    } catch (const std::domain_error& e) {
      EXPECT_NE(std::string(e.what()).find("out of saturation"),
                std::string::npos);
    }
  }
}
