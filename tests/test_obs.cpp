// Telemetry subsystem tests (src/obs): the out-of-band contract.  The
// load-bearing property is INVARIANCE — results are bitwise-identical with
// telemetry enabled and disabled at every thread count, block width and
// process count (docs/OBSERVABILITY.md, docs/DETERMINISM.md) — plus exact
// counter folding under concurrent increments, span aggregate arithmetic,
// Chrome trace-event well-formedness and the pinned
// "statpipe-metrics-v1" snapshot schema.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "dist/cluster.h"
#include "dist/serialize.h"
#include "dist/task.h"
#include "dist/workload.h"
#include "mc/pipeline_mc.h"
#include "netlist/generators.h"
#include "obs/log.h"
#include "obs/telemetry.h"
#include "sim/engine.h"
#include "stats/rng.h"

namespace sp = statpipe;

namespace {

// Every test starts from a clean, DISABLED telemetry state and leaves it
// that way: obs state is process-global, and a leaked enable would make
// later tests measure each other.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sp::obs::set_enabled(false);
    sp::obs::reset();
  }
  void TearDown() override {
    sp::obs::set_enabled(false);
    sp::obs::reset();
  }
};

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string temp_path(const std::string& stem) {
  return ::testing::TempDir() + stem + "." + std::to_string(::getpid());
}

// Minimal structural JSON validator: strings (with escapes) are skipped,
// braces/brackets must nest and match.  Not a grammar check — it is the
// cheap well-formedness gate; tools/trace_check.py does the full parse in
// CI with a real JSON library.
bool json_balanced(const std::string& text) {
  std::vector<char> stack;
  bool in_string = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_string) {
      if (c == '\\') ++i;  // skip the escaped char
      else if (c == '"') in_string = false;
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': case '[': stack.push_back(c); break;
      case '}':
        if (stack.empty() || stack.back() != '{') return false;
        stack.pop_back();
        break;
      case ']':
        if (stack.empty() || stack.back() != '[') return false;
        stack.pop_back();
        break;
      default: break;
    }
  }
  return !in_string && stack.empty();
}

sp::mc::McResult run_mc(const sp::netlist::Netlist& nl, std::size_t threads,
                        std::size_t width) {
  const sp::device::AlphaPowerModel model{sp::process::Technology{}};
  const sp::device::LatchModel latch{{}, model};
  sp::process::VariationSpec spec;
  spec.sigma_vth_inter = 0.020;
  spec.sigma_vth_systematic = 0.010;  // exercise mc.chol spans too
  spec.enable_rdf = true;
  const std::vector<const sp::netlist::Netlist*> stages{&nl};
  const sp::mc::GateLevelMonteCarlo mc(stages, model, spec, latch);
  sp::sim::ExecutionOptions exec;
  exec.threads = threads;
  exec.samples_per_shard = 128;
  exec.block_width = width;
  sp::stats::Rng rng(20260808);
  return mc.run(1024, rng, exec);
}

sp::dist::RunDescriptor small_descriptor() {
  sp::dist::RunDescriptor d;
  d.workload = "c432";
  d.seed = 20260808;
  d.n_samples = 512;
  d.samples_per_shard = 64;
  d.block_width = 8;
  d.sigma_vth_inter = 0.020;
  d.sigma_vth_systematic = 0.0;  // keep the O(sites^2) field out of tests
  d.enable_rdf = 1;
  sp::dist::finalize_descriptor(d);
  return d;
}

}  // namespace

// ------------------------------------------------------ counters & spans

// The fold is exact under concurrent increments: N threads hammering one
// counter (and one private counter each) must sum to exactly what was
// added — per-thread cells are single-writer, so nothing can be lost.
TEST_F(ObsTest, CounterFoldExactUnderConcurrentIncrements) {
  sp::obs::set_enabled(true);
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 100000;
  static sp::obs::Counter shared("test.obs.shared");
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t)
    ts.emplace_back([&] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) shared.add();
    });
  for (auto& t : ts) t.join();
  const auto snap = sp::obs::snapshot();
  EXPECT_EQ(snap.counter("test.obs.shared"), kThreads * kPerThread);
}

// add(n) accumulates weights, counters from exited threads are retained,
// and reset() zeroes values without unregistering names.
TEST_F(ObsTest, CounterWeightsAndRetiredThreadsAndReset) {
  sp::obs::set_enabled(true);
  static sp::obs::Counter c("test.obs.weighted");
  std::thread([&] { c.add(40); }).join();  // exits before the snapshot
  c.add(2);
  EXPECT_EQ(sp::obs::snapshot().counter("test.obs.weighted"), 42u);
  sp::obs::reset();
  const auto snap = sp::obs::snapshot();
  // Still registered (full-vocabulary snapshots), but zeroed.
  bool found = false;
  for (const auto& cv : snap.counters)
    if (cv.name == "test.obs.weighted") found = true;
  EXPECT_TRUE(found);
  EXPECT_EQ(snap.counter("test.obs.weighted"), 0u);
}

// Disabled telemetry records nothing — the single-branch no-op contract.
TEST_F(ObsTest, DisabledRecordsNothing) {
  static sp::obs::Counter c("test.obs.gated");
  static const sp::obs::SpanId kSpan("test.obs.gated_span");
  c.add(7);
  {
    sp::obs::ScopedSpan span(kSpan);
  }
  const auto snap = sp::obs::snapshot();
  EXPECT_EQ(snap.counter("test.obs.gated"), 0u);
  EXPECT_EQ(snap.span("test.obs.gated_span").count, 0u);
}

// Span aggregates fold count/total/min/max exactly from explicit
// timestamps (record_span is the cross-scope entry ScopedSpan wraps).
TEST_F(ObsTest, SpanAggregateArithmetic) {
  sp::obs::set_enabled(true);
  static const sp::obs::SpanId kSpan("test.obs.span_math");
  sp::obs::record_span(kSpan, 1000, 1500);         // 500 ns
  sp::obs::record_span(kSpan, 2000, 2100, 3);      // 100 ns, lane 3
  sp::obs::record_span(kSpan, 5000, 5900, -1, false);  // 900 ns, no trace
  const auto st = sp::obs::snapshot().span("test.obs.span_math");
  EXPECT_EQ(st.count, 3u);
  EXPECT_EQ(st.total_ns, 1500u);
  EXPECT_EQ(st.min_ns, 100u);
  EXPECT_EQ(st.max_ns, 900u);
}

// ------------------------------------------------------------- exporters

// The metrics snapshot schema is pinned: "statpipe-metrics-v1" with
// name-keyed counters and {count,total_ns,min_ns,max_ns} span objects.
// Downstream consumers (tools/trace_check.py --metrics, bench records,
// CI artifacts) parse this shape; changing it is a versioned event.
TEST_F(ObsTest, MetricsJsonSchemaPin) {
  sp::obs::set_enabled(true);
  static sp::obs::Counter c("test.obs.schema_counter");
  static const sp::obs::SpanId kSpan("test.obs.schema_span");
  c.add(5);
  sp::obs::record_span(kSpan, 100, 350);
  const std::string json = sp::obs::metrics_json(sp::obs::snapshot());
  EXPECT_TRUE(json_balanced(json)) << json;
  EXPECT_NE(json.find("{\"schema\":\"statpipe-metrics-v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"counters\":{"), std::string::npos);
  EXPECT_NE(json.find("\"spans\":{"), std::string::npos);
  EXPECT_NE(json.find("\"test.obs.schema_counter\":5"), std::string::npos);
  EXPECT_NE(json.find("\"test.obs.schema_span\":{\"count\":1,"
                      "\"total_ns\":250,\"min_ns\":250,\"max_ns\":250}"),
            std::string::npos);
  // write_metrics_json produces the same bytes (plus trailing newline).
  const std::string path = temp_path("metrics_pin.json");
  sp::obs::write_metrics_json(path);
  EXPECT_EQ(read_file(path), json + "\n");
  std::remove(path.c_str());
}

// A trace exported from a real instrumented MC run is structurally valid
// Chrome trace-event JSON carrying the span vocabulary the engine emits.
TEST_F(ObsTest, ChromeTraceWellFormedFromEngineRun) {
  sp::obs::set_enabled(true);
  const auto nl = sp::netlist::iscas_like("c432");
  run_mc(nl, 2, 8);
  sp::obs::log_warn("test", "instant \"event\" with\nescapes\t\\");
  const std::string path = temp_path("trace.json");
  sp::obs::write_chrome_trace(path);
  const std::string trace = read_file(path);
  std::remove(path.c_str());
  ASSERT_FALSE(trace.empty());
  EXPECT_TRUE(json_balanced(trace)) << "unbalanced trace JSON";
  EXPECT_EQ(trace.rfind("{\"traceEvents\":[", 0), 0u);
  for (const char* needle :
       {"\"ph\":\"M\"", "\"ph\":\"X\"", "\"ph\":\"i\"", "\"name\":\"mc.draw\"",
        "\"name\":\"mc.chol\"", "\"name\":\"mc.walk\"",
        "\"name\":\"mc.fold\"", "\"args\":{\"lane\":"})
    EXPECT_NE(trace.find(needle), std::string::npos) << needle;
}

// ------------------------------------------------- the invariance matrix

// THE tentpole property: enabling telemetry changes no result bit.  Same
// seed, {1,8} threads x {1,16} block widths, each run twice — telemetry
// off, then on (counters, spans and trace events all live) — and every
// pair must be bitwise-identical.  All eight runs must also agree with
// each other (the existing thread/width invariance, now under telemetry).
TEST_F(ObsTest, EnabledDisabledBitwiseInvarianceMatrix) {
  const auto nl = sp::netlist::iscas_like("c432");
  sp::mc::McResult reference;
  bool have_reference = false;
  for (std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    for (std::size_t width : {std::size_t{1}, std::size_t{16}}) {
      sp::obs::set_enabled(false);
      const sp::mc::McResult off = run_mc(nl, threads, width);
      sp::obs::set_enabled(true);
      sp::obs::reset();
      const sp::mc::McResult on = run_mc(nl, threads, width);
      // Telemetry actually recorded something in the "on" leg... (width 1
      // runs the scalar per-sample path, which has no block draw spans)
      const auto snap = sp::obs::snapshot();
      EXPECT_EQ(snap.counter("mc.samples"), 1024u);
      if (width > 1) EXPECT_GT(snap.span("mc.draw").count, 0u);
      EXPECT_GT(snap.span("mc.shard").count, 0u);
      sp::obs::set_enabled(false);
      // ...and changed nothing.
      EXPECT_TRUE(sp::dist::bitwise_equal(off, on))
          << "telemetry changed results at threads=" << threads
          << " width=" << width;
      if (!have_reference) {
        reference = off;
        have_reference = true;
      } else {
        EXPECT_TRUE(sp::dist::bitwise_equal(reference, off))
            << "thread/width variance at threads=" << threads
            << " width=" << width;
      }
    }
  }
}

// Process-count leg of the matrix: a 2-worker cluster run with telemetry
// fully enabled on the coordinator side reassembles to the exact bytes of
// both the local reference and a telemetry-off cluster run.  Also checks
// the always-on RunMetrics accounting a healthy run must report.
TEST_F(ObsTest, TwoProcessClusterBitwiseInvariant) {
  const auto desc = small_descriptor();
  const sp::mc::McResult local = sp::dist::run_local(desc);

  sp::dist::ClusterOptions opt;
  opt.spawn_workers = 2;
  opt.worker_bin = STATPIPE_WORKER_BIN;
  opt.coordinator.units_per_range = 2;
  opt.coordinator.idle_timeout_ms = 120000;

  sp::obs::set_enabled(false);
  sp::dist::RunMetrics rm_off;
  const sp::dist::TaskResult off = sp::dist::run_cluster(desc, opt, &rm_off);

  sp::obs::set_enabled(true);
  sp::obs::reset();
  sp::dist::RunMetrics rm_on;
  const sp::dist::TaskResult on = sp::dist::run_cluster(desc, opt, &rm_on);
  const auto snap = sp::obs::snapshot();
  sp::obs::set_enabled(false);

  EXPECT_TRUE(sp::dist::bitwise_equal(off.mc, local));
  EXPECT_TRUE(sp::dist::bitwise_equal(on.mc, local))
      << "telemetry changed the distributed result";

  // RunMetrics is always on — both legs account identically.
  for (const auto* rm : {&rm_off, &rm_on}) {
    EXPECT_EQ(rm->units, 8u);   // 512 samples / 64 per shard
    EXPECT_EQ(rm->ranges, 4u);  // units_per_range = 2
    EXPECT_EQ(rm->commits, rm->ranges);
    EXPECT_GE(rm->assigns, rm->ranges);
    EXPECT_EQ(rm->forfeits, 0u);
    EXPECT_EQ(rm->units_discarded, 0u);
    EXPECT_EQ(rm->workers_admitted, 2u);
    EXPECT_GE(rm->peak_staged_units, 1u);
    EXPECT_GT(rm->wall_ms, 0.0);
  }
  // The obs layer saw the coordinator's traffic in the enabled leg.
  EXPECT_EQ(snap.counter("dist.commits"), 4u);
  EXPECT_EQ(snap.counter("dist.units_committed"), 8u);
  EXPECT_EQ(snap.span("dist.range").count, 4u);
  EXPECT_GT(snap.counter("dist.tx_frames"), 0u);
  EXPECT_GT(snap.counter("dist.rx_bytes"), 0u);
}
