// Distributed execution subsystem tests: serialization round-trips (byte
// stability, version gating, truncation/hostile-length fuzz — including
// the v2 task-kind discriminator and the SSTA grid payload), protocol/
// transport behavior, and the acceptance contract — a c3540-class
// gate-level MC run AND an SSTA sweep grid sharded across real worker
// PROCESSES over localhost TCP are bitwise-identical to the
// single-process runs, including under injected worker failures and
// reassignment (docs/DETERMINISM.md).
#include <gtest/gtest.h>
#include <spawn.h>
#include <sys/wait.h>

#include <chrono>
#include <cstdint>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "dist/cluster.h"
#include "dist/coordinator.h"
#include "dist/serialize.h"
#include "dist/task.h"
#include "dist/transport.h"
#include "dist/worker.h"
#include "dist/workload.h"
#include "mc/pipeline_mc.h"
#include "netlist/generators.h"
#include "opt/sweep.h"
#include "sta/ssta_batch.h"
#include "stats/rng.h"

extern char** environ;

namespace sp = statpipe;
using sp::dist::ByteReader;
using sp::dist::ByteWriter;

namespace {

// ------------------------------------------------------------- helpers

sp::dist::RunDescriptor small_descriptor(
    const std::string& workload = "c432", std::uint64_t samples = 1024,
    std::uint64_t samples_per_shard = 128) {
  sp::dist::RunDescriptor d;
  d.workload = workload;
  d.seed = 20260729;
  d.n_samples = samples;
  d.samples_per_shard = samples_per_shard;
  d.block_width = 8;
  d.sigma_vth_inter = 0.020;
  d.sigma_vth_systematic = 0.0;  // keep the O(sites^2) field out of tests
  d.enable_rdf = 1;
  sp::dist::finalize_descriptor(d);
  return d;
}

pid_t spawn_worker_process(std::uint16_t port) {
  const char* bin = STATPIPE_WORKER_BIN;
  const std::string port_s = std::to_string(port);
  std::vector<char*> args{const_cast<char*>(bin),
                          const_cast<char*>("--port"),
                          const_cast<char*>(port_s.c_str()),
                          const_cast<char*>("--quiet"), nullptr};
  pid_t pid = -1;
  const int rc = ::posix_spawn(&pid, bin, nullptr, nullptr, args.data(),
                               environ);
  EXPECT_EQ(rc, 0) << "posix_spawn " << bin;
  return rc == 0 ? pid : -1;
}

// Reaps a spawned worker while draining the coordinator's listener
// backlog, so a worker that connected only after the run completed is
// dismissed with kShutdown instead of hanging in its setup read.
void reap(sp::dist::Coordinator& coord, pid_t pid) {
  if (pid < 0) return;
  int status = 0;
  pid_t got;
  while ((got = ::waitpid(pid, &status, WNOHANG)) == 0) {
    coord.drain_backlog();
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ASSERT_EQ(got, pid);
  EXPECT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

// A small SSTA sweep-grid descriptor: `lanes` uniformly scaled copies of
// the circuit's base sizes (every lane a full size vector, as the wire
// format requires).
sp::dist::RunDescriptor grid_descriptor(const std::string& name = "c432",
                                        std::size_t lanes = 6) {
  sp::dist::RunDescriptor d;
  d.task_kind = sp::dist::TaskKind::kSstaGrid;
  d.workload = name;
  d.seed = 20260729;
  const auto nl = sp::netlist::iscas_like(name);
  d.size_grid.assign(lanes, nl.sizes());
  for (std::size_t k = 0; k < lanes; ++k)
    for (double& s : d.size_grid[k]) s *= 1.0 + 0.07 * static_cast<double>(k);
  sp::dist::finalize_descriptor(d);
  return d;
}

sp::stats::RunningStats random_stats(std::mt19937_64& g, std::size_t n) {
  std::normal_distribution<double> d(250.0, 40.0);
  sp::stats::RunningStats s;
  for (std::size_t i = 0; i < n; ++i) s.add(d(g));
  return s;
}

// ---------------------------------------------------------- serialization

TEST(DistSerialize, PrimitivesRoundTripLittleEndian) {
  ByteWriter w;
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.f64(-1234.5678e-9);
  w.str("shard range");
  // Wire bytes are defined, not host-dependent: check u16's layout.
  EXPECT_EQ(w.bytes()[1], 0x34);  // low byte first
  EXPECT_EQ(w.bytes()[2], 0x12);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.f64(), -1234.5678e-9);
  EXPECT_EQ(r.str(), "shard range");
  EXPECT_TRUE(r.done());
}

TEST(DistSerialize, TruncatedPayloadThrows) {
  ByteWriter w;
  w.u64(7);
  std::vector<std::uint8_t> bytes = w.bytes();
  bytes.pop_back();
  ByteReader r(bytes);
  EXPECT_THROW(r.u64(), std::runtime_error);
  // Hostile vector length must throw, not allocate.
  ByteWriter w2;
  w2.u64(~0ULL);
  ByteReader r2(w2.bytes());
  EXPECT_THROW(r2.f64_vec(), std::runtime_error);
}

TEST(DistSerialize, RunningStatsRoundTripIsExact) {
  std::mt19937_64 g(42);
  for (int rep = 0; rep < 50; ++rep) {
    const auto s = random_stats(g, 1 + static_cast<std::size_t>(g() % 500));
    ByteWriter w;
    sp::dist::write_running_stats(w, s);
    ByteReader r(w.bytes());
    const auto back = sp::dist::read_running_stats(r);
    EXPECT_TRUE(r.done());
    // Exact, not approximate: every internal field crosses the wire as its
    // bit pattern.
    EXPECT_EQ(back.count(), s.count());
    EXPECT_EQ(back.mean(), s.mean());
    EXPECT_EQ(back.variance(), s.variance());
    EXPECT_EQ(back.min(), s.min());
    EXPECT_EQ(back.max(), s.max());
    // Byte-stable: serialize(deserialize(b)) == b.
    ByteWriter w2;
    sp::dist::write_running_stats(w2, back);
    EXPECT_EQ(w.bytes(), w2.bytes());
  }
}

TEST(DistSerialize, HistogramRoundTrip) {
  sp::stats::Histogram h(100.0, 300.0, 32);
  std::mt19937_64 g(7);
  std::normal_distribution<double> d(200.0, 30.0);
  for (int i = 0; i < 5000; ++i) h.add(d(g));
  ByteWriter w;
  sp::dist::write_histogram(w, h);
  ByteReader r(w.bytes());
  const auto back = sp::dist::read_histogram(r);
  EXPECT_TRUE(r.done());
  EXPECT_EQ(back.lo(), h.lo());
  EXPECT_EQ(back.hi(), h.hi());
  EXPECT_EQ(back.bins(), h.bins());
  EXPECT_EQ(back.total(), h.total());
  for (std::size_t i = 0; i < h.bins(); ++i)
    EXPECT_EQ(back.count(i), h.count(i));
}

TEST(DistSerialize, McResultRoundTripFuzzIsByteStable) {
  std::mt19937_64 g(1234);
  std::normal_distribution<double> d(250.0, 40.0);
  for (int rep = 0; rep < 25; ++rep) {
    sp::mc::McResult m;
    m.label = rep % 3 == 0 ? "" : "fuzz run " + std::to_string(rep);
    const std::size_t n = g() % 200;
    for (std::size_t i = 0; i < n; ++i) m.tp_samples.push_back(d(g));
    m.stage_stats.resize(g() % 5);
    for (auto& s : m.stage_stats) s = random_stats(g, g() % 100);
    const auto bytes = sp::dist::serialize_mc_result(m);
    const auto back = sp::dist::deserialize_mc_result(bytes);
    EXPECT_EQ(sp::dist::serialize_mc_result(back), bytes);
    EXPECT_TRUE(sp::dist::bitwise_equal(m, back));
  }
}

TEST(DistSerialize, HostileStageCountThrowsInsteadOfAllocating) {
  ByteWriter w;
  w.str("evil");
  w.f64_vec({});             // no samples
  w.u64(1ULL << 60);         // claimed stage count
  ByteReader r(w.bytes());
  EXPECT_THROW(sp::dist::read_mc_result(r), std::runtime_error);
}

TEST(DistSerialize, ResultBlobRejectsBadMagicAndVersion) {
  sp::mc::McResult m;
  m.tp_samples = {1.0, 2.0};
  m.stage_stats.resize(1);
  auto bytes = sp::dist::serialize_mc_result(m);
  auto corrupt = bytes;
  corrupt[0] ^= 0xff;
  EXPECT_THROW(sp::dist::deserialize_mc_result(corrupt), std::runtime_error);
  auto future = bytes;
  future[4] = 0x7f;  // version low byte
  EXPECT_THROW(sp::dist::deserialize_mc_result(future), std::runtime_error);
}

TEST(DistSerialize, RunDescriptorRoundTrip) {
  const auto d = small_descriptor("c432,c880", 2048, 256);
  ByteWriter w;
  sp::dist::write_run_descriptor(w, d);
  ByteReader r(w.bytes());
  const auto back = sp::dist::read_run_descriptor(r);
  r.expect_done();
  EXPECT_EQ(back.workload, d.workload);
  EXPECT_EQ(back.netlist_hash, d.netlist_hash);
  EXPECT_EQ(back.seed, d.seed);
  EXPECT_EQ(back.root_seed, d.root_seed);
  EXPECT_EQ(back.n_samples, d.n_samples);
  EXPECT_EQ(back.samples_per_shard, d.samples_per_shard);
  EXPECT_EQ(back.block_width, d.block_width);
  EXPECT_EQ(back.sigma_vth_inter, d.sigma_vth_inter);
  EXPECT_EQ(back.enable_rdf, d.enable_rdf);
  EXPECT_EQ(back.output_load, d.output_load);
  EXPECT_EQ(back.latch_tcq_ps, d.latch_tcq_ps);
}

// ------------------------------------------------------------- workload

TEST(DistWorkload, HashMismatchIsRejected) {
  auto d = small_descriptor();
  d.netlist_hash ^= 1;
  EXPECT_THROW(sp::dist::Workload::make(d), std::invalid_argument);
}

TEST(DistWorkload, UnknownCircuitIsRejected) {
  sp::dist::RunDescriptor d;
  d.workload = "c9999";
  d.n_samples = 16;
  EXPECT_THROW(sp::dist::finalize_descriptor(d), std::invalid_argument);
}

TEST(DistWorkload, StructuralHashDetectsStageEdits) {
  auto a = sp::netlist::iscas_like("c432");
  auto b = sp::netlist::iscas_like("c432");
  EXPECT_EQ(a.structural_hash(), b.structural_hash());
  b.gate(b.topological_order().back()).size *= 1.5;
  EXPECT_NE(a.structural_hash(), b.structural_hash());
}

// ----------------------------------------------- run_shard_range contract

TEST(DistEngine, ShardRangePartsFoldToLocalRun) {
  const auto desc = small_descriptor("c432", 1024, 128);  // 8 shards
  const auto wl = sp::dist::Workload::make(desc);
  const sp::mc::McResult local = sp::dist::run_local(desc);
  // Recompute the run in arbitrary contiguous pieces; fold ascending.
  std::vector<sp::mc::McResult> parts;
  for (const auto [b, e] :
       {std::pair<std::size_t, std::size_t>{0, 3}, {3, 4}, {4, 8}}) {
    auto range = wl->engine().run_shard_range(desc.n_samples, desc.root_seed,
                                              b, e, wl->exec(desc));
    for (auto& p : range) parts.push_back(std::move(p));
  }
  sp::mc::McResult acc = std::move(parts.front());
  for (std::size_t i = 1; i < parts.size(); ++i)
    acc.merge(std::move(parts[i]));
  acc.label = local.label;
  EXPECT_TRUE(sp::dist::bitwise_equal(acc, local));
}

TEST(DistEngine, ShardRangeValidatesUpFront) {
  const auto desc = small_descriptor("c432", 1024, 128);  // 8 shards
  const auto wl = sp::dist::Workload::make(desc);
  auto exec = wl->exec(desc);
  EXPECT_THROW(wl->engine().run_shard_range(desc.n_samples, desc.root_seed,
                                            3, 3, exec),
               std::invalid_argument);
  EXPECT_THROW(wl->engine().run_shard_range(desc.n_samples, desc.root_seed,
                                            0, 9, exec),
               std::invalid_argument);
  exec.block_width = 0;
  EXPECT_THROW(wl->engine().run_shard_range(desc.n_samples, desc.root_seed,
                                            0, 8, exec),
               std::invalid_argument);
}

// ------------------------------------------------------- coordinator/CLI

TEST(DistCoordinator, ValidatesRangeSizeUpFront) {
  auto desc = small_descriptor("c432", 1024, 128);  // 8 shards
  sp::dist::CoordinatorOptions opt;
  opt.units_per_range = 9;  // more than the plan holds
  EXPECT_THROW(sp::dist::Coordinator(desc, opt), std::invalid_argument);
  opt.units_per_range = 0;
  opt.max_attempts = 0;
  EXPECT_THROW(sp::dist::Coordinator(desc, opt), std::invalid_argument);
}

// The acceptance contract: a c3540-class run split across TWO worker
// PROCESSES (localhost TCP) merges to the exact bytes of the
// single-process, single-thread run at the same seed.
TEST(DistEndToEnd, TwoWorkerProcessesMatchLocalBitwise) {
  const auto desc = small_descriptor("c3540", 1024, 128);  // 8 shards
  sp::dist::CoordinatorOptions opt;
  opt.units_per_range = 2;  // 4 assignments across 2 workers
  opt.idle_timeout_ms = 120000;
  sp::dist::Coordinator coord(desc, opt);

  const pid_t w1 = spawn_worker_process(coord.port());
  const pid_t w2 = spawn_worker_process(coord.port());
  const sp::mc::McResult dist_result = coord.run().mc;
  reap(coord, w1);
  reap(coord, w2);

  // Single-process, single-thread reference.
  const auto wl = sp::dist::Workload::make(desc);
  auto exec = wl->exec(desc);
  exec.threads = 1;
  sp::stats::Rng rng(desc.seed);
  const auto local = wl->engine().run(desc.n_samples, rng, exec);
  EXPECT_TRUE(sp::dist::bitwise_equal(dist_result, local));
  EXPECT_EQ(dist_result.tp_samples.size(), desc.n_samples);
}

// N=1 over localhost: the degenerate cluster is still exactly the local
// run.
TEST(DistEndToEnd, SingleWorkerProcessMatchesLocalBitwise) {
  const auto desc = small_descriptor("c432", 512, 64);  // 8 shards
  sp::dist::CoordinatorOptions opt;
  opt.idle_timeout_ms = 120000;
  sp::dist::Coordinator coord(desc, opt);
  const pid_t w1 = spawn_worker_process(coord.port());
  const sp::mc::McResult dist_result = coord.run().mc;
  reap(coord, w1);
  EXPECT_TRUE(sp::dist::bitwise_equal(dist_result, sp::dist::run_local(desc)));
}

// Worker failure: a fake worker handshakes, takes an assignment, and dies.
// The coordinator reassigns the forfeited range to a healthy process and
// the merged result is still bitwise-identical.  The coordinator runs on a
// thread so the failure can be sequenced deterministically BEFORE the
// healthy worker exists.
TEST(DistEndToEnd, WorkerFailureReassignmentStaysBitwiseIdentical) {
  const auto desc = small_descriptor("c432", 1024, 128);
  sp::dist::CoordinatorOptions opt;
  opt.units_per_range = 2;
  opt.idle_timeout_ms = 120000;
  sp::dist::Coordinator coord(desc, opt);

  sp::mc::McResult dist_result;
  std::thread serving([&] { dist_result = coord.run().mc; });

  // Saboteur (inline): hello, read setup, accept one assignment, vanish
  // without producing it.
  {
    auto sock = sp::dist::connect_to("127.0.0.1", coord.port());
    sp::dist::ByteWriter hello;
    hello.u16(sp::dist::kWireVersion);
    hello.u64(1);
    sp::dist::send_frame(sock, sp::dist::MsgType::kHello, hello.bytes());
    auto setup = sp::dist::recv_frame(sock);
    ASSERT_TRUE(setup && setup->type == sp::dist::MsgType::kSetup);
    auto assign = sp::dist::recv_frame(sock);
    ASSERT_TRUE(assign && assign->type == sp::dist::MsgType::kAssign);
    sock.close();  // forfeits the range
  }

  const pid_t w1 = spawn_worker_process(coord.port());
  serving.join();
  reap(coord, w1);
  EXPECT_TRUE(sp::dist::bitwise_equal(dist_result, sp::dist::run_local(desc)));
}

// A worker whose workload build fails reports kError and contributes
// nothing; the run completes on the healthy worker that arrives after.
TEST(DistEndToEnd, WorkloadRejectionIsReportedNotFatal) {
  const auto desc = small_descriptor("c432", 256, 64);
  sp::dist::CoordinatorOptions opt;
  opt.idle_timeout_ms = 120000;
  sp::dist::Coordinator coord(desc, opt);

  sp::mc::McResult dist_result;
  std::thread serving([&] { dist_result = coord.run().mc; });

  sp::dist::WorkerOptions wopt;
  wopt.port = coord.port();
  const std::size_t done = sp::dist::run_worker(
      wopt, [](const sp::dist::RunDescriptor&) -> sp::dist::UnitRangeRunner {
        throw std::invalid_argument("injected workload failure");
      });
  EXPECT_EQ(done, 0u);

  const pid_t w1 = spawn_worker_process(coord.port());
  serving.join();
  reap(coord, w1);
  EXPECT_TRUE(sp::dist::bitwise_equal(dist_result, sp::dist::run_local(desc)));
}

// -------------------------------------------------- generic task layer

TEST(DistSerialize, StageCharacterizationRoundTripFuzzIsByteStable) {
  std::mt19937_64 g(777);
  std::normal_distribution<double> d(120.0, 55.0);
  for (int rep = 0; rep < 50; ++rep) {
    sp::sta::StageCharacterization c;
    c.delay = {d(g), std::abs(d(g))};
    c.sigma_inter = std::abs(d(g));
    c.sigma_private = std::abs(d(g));
    c.area = std::abs(d(g));
    c.nominal_delay = d(g);
    ByteWriter w;
    sp::dist::write_stage_characterization(w, c);
    EXPECT_EQ(w.bytes().size(), 48u);  // the documented fixed record size
    ByteReader r(w.bytes());
    const auto back = sp::dist::read_stage_characterization(r);
    EXPECT_TRUE(r.done());
    ByteWriter w2;
    sp::dist::write_stage_characterization(w2, back);
    EXPECT_EQ(w.bytes(), w2.bytes());
  }
}

TEST(DistSerialize, GridDescriptorRoundTripCarriesTaskKindAndGrid) {
  const auto d = grid_descriptor("c432", 5);
  ByteWriter w;
  sp::dist::write_run_descriptor(w, d);
  ByteReader r(w.bytes());
  const auto back = sp::dist::read_run_descriptor(r);
  r.expect_done();
  EXPECT_EQ(back.task_kind, sp::dist::TaskKind::kSstaGrid);
  EXPECT_EQ(back.workload, d.workload);
  EXPECT_EQ(back.netlist_hash, d.netlist_hash);
  EXPECT_EQ(back.size_grid, d.size_grid);
  // Byte-stable: serialize(deserialize(b)) == b.
  ByteWriter w2;
  sp::dist::write_run_descriptor(w2, back);
  EXPECT_EQ(w.bytes(), w2.bytes());
}

// Every truncated prefix of a v2 descriptor must fail loudly as a
// truncation (or task-kind) error — never parse, never crash.
TEST(DistSerialize, GridDescriptorTruncationFuzzAlwaysThrows) {
  const auto d = grid_descriptor("c432", 3);
  ByteWriter w;
  sp::dist::write_run_descriptor(w, d);
  const auto& bytes = w.bytes();
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    ByteReader r(std::span<const std::uint8_t>(bytes.data(), len));
    EXPECT_THROW((void)sp::dist::read_run_descriptor(r), std::runtime_error)
        << "prefix of " << len << " bytes parsed";
  }
}

TEST(DistSerialize, UnknownTaskKindIsRejectedAsTaskKindError) {
  auto d = grid_descriptor("c432", 2);
  ByteWriter w;
  sp::dist::write_run_descriptor(w, d);
  auto bytes = w.bytes();
  bytes[0] = 0x07;  // task-kind low byte: unknown kind 7
  bytes[1] = 0x00;
  ByteReader r(bytes);
  try {
    (void)sp::dist::read_run_descriptor(r);
    FAIL() << "unknown task kind parsed";
  } catch (const std::runtime_error& e) {
    // The satellite contract: a clear task-kind error naming what this
    // build knows, not a generic deserialize failure downstream.
    EXPECT_NE(std::string(e.what()).find("task kind"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("ssta-grid"), std::string::npos)
        << e.what();
  }
}

TEST(DistSerialize, HostileGridLaneCountThrowsInsteadOfAllocating) {
  ByteWriter w;
  w.u16(static_cast<std::uint16_t>(sp::dist::TaskKind::kSstaGrid));
  w.str("c432");
  for (int i = 0; i < 6; ++i) w.u64(1);  // hash..block_width
  w.u64(1ULL << 60);                     // claimed lane count
  ByteReader r(w.bytes());
  EXPECT_THROW((void)sp::dist::read_run_descriptor(r), std::runtime_error);
}

TEST(DistSerialize, CharacterizationBlobRejectsBadMagicAndVersion) {
  const auto local = sp::dist::run_local_task(grid_descriptor("c432", 3));
  auto bytes = sp::dist::serialize_characterizations(local.lanes);
  EXPECT_EQ(sp::dist::deserialize_characterizations(bytes).size(), 3u);
  auto corrupt = bytes;
  corrupt[0] ^= 0xff;
  EXPECT_THROW((void)sp::dist::deserialize_characterizations(corrupt),
               std::runtime_error);
  auto future = bytes;
  future[4] = 0x7f;  // version low byte
  EXPECT_THROW((void)sp::dist::deserialize_characterizations(future),
               std::runtime_error);
}

TEST(DistWorkload, GridDescriptorValidation) {
  // Multi-circuit grid workloads are rejected: one grid = one stage.
  {
    auto d = grid_descriptor("c432", 2);
    d.workload = "c432,c880";
    EXPECT_THROW(sp::dist::build_grid_stage(d), std::invalid_argument);
  }
  // Empty grid.
  {
    auto d = grid_descriptor("c432", 2);
    d.size_grid.clear();
    EXPECT_THROW(sp::dist::build_grid_stage(d), std::invalid_argument);
  }
  // A lane that is not a full size vector (empty or wrong length) would
  // silently fall back to rebuilt base sizes on the worker — rejected.
  {
    auto d = grid_descriptor("c432", 2);
    d.size_grid[1].pop_back();
    EXPECT_THROW(sp::dist::build_grid_stage(d), std::invalid_argument);
    d.size_grid[1].clear();
    EXPECT_THROW(sp::dist::build_grid_stage(d), std::invalid_argument);
  }
  // Hash mismatch (diverging generator builds).
  {
    auto d = grid_descriptor("c432", 2);
    d.netlist_hash ^= 1;
    EXPECT_THROW(sp::dist::build_grid_stage(d), std::invalid_argument);
  }
}

TEST(DistCluster, WorkloadNameForVerifiesStructure) {
  auto nl = sp::netlist::iscas_like("c432");
  EXPECT_EQ(sp::dist::workload_name_for(nl), "c432");
  // Resizing is fine — grids carry explicit size lanes.
  auto sizes = nl.sizes();
  for (double& s : sizes) s *= 1.3;
  nl.set_sizes(sizes);
  EXPECT_EQ(sp::dist::workload_name_for(nl), "c432");
  // A structural edit (not just sizes) must be rejected.
  sp::netlist::Netlist renamed = sp::netlist::iscas_like("c880");
  renamed.set_name("c432_like");
  EXPECT_THROW(sp::dist::workload_name_for(renamed), std::invalid_argument);
}

// The grid acceptance contract: a sweep grid split across TWO worker
// PROCESSES reassembles to the exact bytes of the local SstaBatch run —
// both the run_local_task reference and a caller-side batch at the same
// configs.
TEST(DistEndToEnd, TwoWorkerSstaGridMatchesLocalBatchBitwise) {
  const auto desc = grid_descriptor("c432", 6);
  sp::dist::CoordinatorOptions opt;
  opt.units_per_range = 2;  // 3 assignments across 2 workers
  opt.idle_timeout_ms = 120000;
  sp::dist::Coordinator coord(desc, opt);

  const pid_t w1 = spawn_worker_process(coord.port());
  const pid_t w2 = spawn_worker_process(coord.port());
  const sp::dist::TaskResult dist_result = coord.run();
  reap(coord, w1);
  reap(coord, w2);

  ASSERT_EQ(dist_result.kind, sp::dist::TaskKind::kSstaGrid);
  ASSERT_EQ(dist_result.lanes.size(), desc.size_grid.size());
  const sp::dist::TaskResult local = sp::dist::run_local_task(desc);
  EXPECT_TRUE(sp::dist::bitwise_equal(dist_result, local));

  // And against a directly-bound batch, the way an optimizer would see it.
  const auto nl = sp::netlist::iscas_like("c432");
  const sp::device::AlphaPowerModel model{sp::process::Technology{}};
  sp::sta::SstaOptions sopt;
  sopt.output_load = desc.output_load;
  const sp::sta::SstaBatch batch(nl, model, sopt);
  const auto direct = batch.characterize(sp::sta::make_configs(
      desc.size_grid, sp::dist::descriptor_spec(desc)));
  EXPECT_TRUE(sp::dist::bitwise_equal(dist_result.lanes, direct));
}

// A non-default technology must replay exactly on the worker: the
// descriptor carries the delay model's parameters, so a grid submitted
// from a tweaked-technology optimizer is not silently characterized with
// registry defaults.
TEST(DistEndToEnd, NonDefaultTechnologyCrossesTheWire) {
  sp::process::Technology tech;
  tech.tau_ps = 5.5;   // slower inverter
  tech.alpha = 1.45;   // different velocity-saturation index
  auto desc = grid_descriptor("c432", 4);
  sp::dist::set_descriptor_technology(desc, tech);

  sp::dist::CoordinatorOptions opt;
  opt.idle_timeout_ms = 120000;
  sp::dist::Coordinator coord(desc, opt);
  const pid_t w1 = spawn_worker_process(coord.port());
  const sp::dist::TaskResult dist_result = coord.run();
  reap(coord, w1);

  const sp::device::AlphaPowerModel model{tech};
  const auto nl = sp::netlist::iscas_like("c432");
  sp::sta::SstaOptions sopt;
  sopt.output_load = desc.output_load;
  const sp::sta::SstaBatch batch(nl, model, sopt);
  const auto direct = batch.characterize(sp::sta::make_configs(
      desc.size_grid, sp::dist::descriptor_spec(desc)));
  EXPECT_TRUE(sp::dist::bitwise_equal(dist_result.lanes, direct));
  // And the tweaked technology actually changes the numbers (the test
  // would be vacuous if defaults happened to match).
  const sp::device::AlphaPowerModel default_model{sp::process::Technology{}};
  const sp::sta::SstaBatch default_batch(nl, default_model, sopt);
  const auto with_defaults = default_batch.characterize(sp::sta::make_configs(
      desc.size_grid, sp::dist::descriptor_spec(desc)));
  EXPECT_FALSE(sp::dist::bitwise_equal(dist_result.lanes, with_defaults));
}

// Worker failure on a grid task: a saboteur takes a lane range and dies;
// the reassigned reassembly is still bitwise-identical.
TEST(DistEndToEnd, SstaGridWorkerFailureReassignmentStaysBitwise) {
  const auto desc = grid_descriptor("c432", 8);
  sp::dist::CoordinatorOptions opt;
  opt.units_per_range = 2;
  opt.idle_timeout_ms = 120000;
  sp::dist::Coordinator coord(desc, opt);

  sp::dist::TaskResult dist_result;
  std::thread serving([&] { dist_result = coord.run(); });

  {
    auto sock = sp::dist::connect_to("127.0.0.1", coord.port());
    sp::dist::ByteWriter hello;
    hello.u16(sp::dist::kWireVersion);
    hello.u64(1);
    sp::dist::send_frame(sock, sp::dist::MsgType::kHello, hello.bytes());
    auto setup = sp::dist::recv_frame(sock);
    ASSERT_TRUE(setup && setup->type == sp::dist::MsgType::kSetup);
    auto assign = sp::dist::recv_frame(sock);
    ASSERT_TRUE(assign && assign->type == sp::dist::MsgType::kAssign);
    sock.close();  // forfeits the lane range
  }

  const pid_t w1 = spawn_worker_process(coord.port());
  serving.join();
  reap(coord, w1);
  EXPECT_TRUE(
      sp::dist::bitwise_equal(dist_result, sp::dist::run_local_task(desc)));
}

// The tentpole acceptance contract: opt::area_delay_sweep with its grid
// submitted to a 2-process cluster — WITH an injected worker failure
// mid-run — produces bitwise-identical results to the single-process
// SstaBatch path.
TEST(DistEndToEnd, DistributedSweepWithWorkerFailureMatchesLocalBitwise) {
  const sp::device::AlphaPowerModel model{sp::process::Technology{}};
  sp::process::VariationSpec spec;
  spec.sigma_vth_inter = 0.020;
  spec.sigma_vth_systematic = 0.0;

  sp::opt::SweepOptions sw;
  sw.points = 6;

  // Local reference first (the hook left empty = SstaBatch path).
  sp::netlist::Netlist nl_local = sp::netlist::iscas_like("c432");
  const auto local = sp::opt::area_delay_sweep(nl_local, model, spec, sw);

  // Cluster-backed sweep: the hook runs one coordinator session per grid,
  // sabotaged by a fake worker that takes a range and dies before two
  // healthy worker processes finish the job.
  sw.grid = [](const sp::netlist::Netlist& nl,
               const sp::device::AlphaPowerModel& hook_model,
               const std::vector<std::vector<double>>& grid,
               const sp::process::VariationSpec& sp_spec,
               const sp::sta::SstaOptions& sopt) {
    sp::dist::RunDescriptor d;
    d.task_kind = sp::dist::TaskKind::kSstaGrid;
    d.workload = sp::dist::workload_name_for(nl);
    d.size_grid = grid;
    sp::dist::set_descriptor_technology(d, hook_model.technology());
    sp::dist::set_descriptor_spec(d, sp_spec);
    d.output_load = sopt.output_load;
    sp::dist::finalize_descriptor(d);

    sp::dist::CoordinatorOptions copt;
    copt.units_per_range = 2;
    copt.idle_timeout_ms = 120000;
    sp::dist::Coordinator coord(d, copt);

    sp::dist::TaskResult res;
    std::thread serving([&] { res = coord.run(); });
    {
      auto sock = sp::dist::connect_to("127.0.0.1", coord.port());
      sp::dist::ByteWriter hello;
      hello.u16(sp::dist::kWireVersion);
      hello.u64(1);
      sp::dist::send_frame(sock, sp::dist::MsgType::kHello, hello.bytes());
      auto setup = sp::dist::recv_frame(sock);
      EXPECT_TRUE(setup && setup->type == sp::dist::MsgType::kSetup);
      auto assign = sp::dist::recv_frame(sock);
      EXPECT_TRUE(assign && assign->type == sp::dist::MsgType::kAssign);
      sock.close();  // forfeits the range
    }
    const pid_t w1 = spawn_worker_process(coord.port());
    const pid_t w2 = spawn_worker_process(coord.port());
    serving.join();
    reap(coord, w1);
    reap(coord, w2);
    return res.lanes;
  };
  sp::netlist::Netlist nl_dist = sp::netlist::iscas_like("c432");
  const auto dist_sweep = sp::opt::area_delay_sweep(nl_dist, model, spec, sw);

  EXPECT_TRUE(sp::opt::bitwise_equal(dist_sweep, local));
  // The sweep leaves the netlist at the fastest point; both paths must
  // agree on that too.
  EXPECT_EQ(nl_dist.sizes(), nl_local.sizes());
}

// The public cluster API end to end: grid_characterizer + run_cluster
// spawn-and-reap their own localhost fleet and match the local sweep.
TEST(DistEndToEnd, ClusterGridCharacterizerMatchesLocalSweep) {
  const sp::device::AlphaPowerModel model{sp::process::Technology{}};
  sp::process::VariationSpec spec;
  spec.sigma_vth_inter = 0.020;
  spec.sigma_vth_systematic = 0.0;

  sp::opt::SweepOptions sw;
  sw.points = 5;
  sp::netlist::Netlist nl_local = sp::netlist::iscas_like("c880");
  const auto local = sp::opt::area_delay_sweep(nl_local, model, spec, sw);

  sp::dist::ClusterOptions cl;
  cl.coordinator.idle_timeout_ms = 120000;
  cl.spawn_workers = 2;
  cl.worker_bin = STATPIPE_WORKER_BIN;
  sw.grid = sp::dist::grid_characterizer(cl);
  sp::netlist::Netlist nl_dist = sp::netlist::iscas_like("c880");
  const auto dist_sweep = sp::opt::area_delay_sweep(nl_dist, model, spec, sw);

  EXPECT_TRUE(sp::opt::bitwise_equal(dist_sweep, local));
}

}  // namespace
