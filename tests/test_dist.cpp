// Distributed execution subsystem tests: serialization round-trips (byte
// stability, version gating, truncation/hostile-length fuzz — including
// the v2 task-kind discriminator and the SSTA grid payload), protocol/
// transport behavior (v3 streaming results, HMAC frame authentication,
// fault-injected sockets, the hostile-peer saboteur matrix), and the
// acceptance contract — a c3540-class gate-level MC run AND an SSTA sweep
// grid sharded across real worker PROCESSES over localhost TCP are
// bitwise-identical to the single-process runs, including under injected
// worker failures, hostile peers and reassignment (docs/DETERMINISM.md).
#include <gtest/gtest.h>
#include <signal.h>
#include <spawn.h>
#include <sys/socket.h>
#include <sys/wait.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <random>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "dist/cluster.h"
#include "dist/coordinator.h"
#include "dist/hmac.h"
#include "dist/serialize.h"
#include "dist/task.h"
#include "dist/transport.h"
#include "dist/worker.h"
#include "dist/workload.h"
#include "mc/pipeline_mc.h"
#include "netlist/generators.h"
#include "opt/sweep.h"
#include "sta/ssta_batch.h"
#include "stats/rng.h"

extern char** environ;

namespace sp = statpipe;
using sp::dist::ByteReader;
using sp::dist::ByteWriter;

namespace {

// ------------------------------------------------------------- helpers

sp::dist::RunDescriptor small_descriptor(
    const std::string& workload = "c432", std::uint64_t samples = 1024,
    std::uint64_t samples_per_shard = 128) {
  sp::dist::RunDescriptor d;
  d.workload = workload;
  d.seed = 20260729;
  d.n_samples = samples;
  d.samples_per_shard = samples_per_shard;
  d.block_width = 8;
  d.sigma_vth_inter = 0.020;
  d.sigma_vth_systematic = 0.0;  // keep the O(sites^2) field out of tests
  d.enable_rdf = 1;
  sp::dist::finalize_descriptor(d);
  return d;
}

pid_t spawn_worker_process(std::uint16_t port, const std::string& key = "") {
  const char* bin = STATPIPE_WORKER_BIN;
  const std::string port_s = std::to_string(port);
  std::vector<char*> args{const_cast<char*>(bin),
                          const_cast<char*>("--port"),
                          const_cast<char*>(port_s.c_str())};
  if (!key.empty()) {
    args.push_back(const_cast<char*>("--key"));
    args.push_back(const_cast<char*>(key.c_str()));
  }
  args.push_back(const_cast<char*>("--quiet"));
  args.push_back(nullptr);
  pid_t pid = -1;
  const int rc = ::posix_spawn(&pid, bin, nullptr, nullptr, args.data(),
                               environ);
  EXPECT_EQ(rc, 0) << "posix_spawn " << bin;
  return rc == 0 ? pid : -1;
}

// One hostile peer, one attack (tools/statpipe_saboteur.cpp): the chaos
// matrix spawns these against live coordinators.
pid_t spawn_saboteur_process(std::uint16_t port, const std::string& mode,
                             const std::string& key = "") {
  const char* bin = STATPIPE_SABOTEUR_BIN;
  const std::string port_s = std::to_string(port);
  std::vector<char*> args{const_cast<char*>(bin),
                          const_cast<char*>("--port"),
                          const_cast<char*>(port_s.c_str()),
                          const_cast<char*>("--mode"),
                          const_cast<char*>(mode.c_str())};
  if (!key.empty()) {
    args.push_back(const_cast<char*>("--key"));
    args.push_back(const_cast<char*>(key.c_str()));
  }
  args.push_back(nullptr);
  pid_t pid = -1;
  const int rc = ::posix_spawn(&pid, bin, nullptr, nullptr, args.data(),
                               environ);
  EXPECT_EQ(rc, 0) << "posix_spawn " << bin;
  return rc == 0 ? pid : -1;
}

// Reaps a spawned worker while draining the coordinator's listener
// backlog, so a worker that connected only after the run completed is
// dismissed with kShutdown instead of hanging in its setup read.
void reap(sp::dist::Coordinator& coord, pid_t pid, int expect_status = 0) {
  if (pid < 0) return;
  int status = 0;
  pid_t got;
  while ((got = ::waitpid(pid, &status, WNOHANG)) == 0) {
    coord.drain_backlog();
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ASSERT_EQ(got, pid);
  EXPECT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), expect_status);
}

// A small SSTA sweep-grid descriptor: `lanes` uniformly scaled copies of
// the circuit's base sizes (every lane a full size vector, as the wire
// format requires).
sp::dist::RunDescriptor grid_descriptor(const std::string& name = "c432",
                                        std::size_t lanes = 6) {
  sp::dist::RunDescriptor d;
  d.task_kind = sp::dist::TaskKind::kSstaGrid;
  d.workload = name;
  d.seed = 20260729;
  const auto nl = sp::netlist::iscas_like(name);
  d.size_grid.assign(lanes, nl.sizes());
  for (std::size_t k = 0; k < lanes; ++k)
    for (double& s : d.size_grid[k]) s *= 1.0 + 0.07 * static_cast<double>(k);
  sp::dist::finalize_descriptor(d);
  return d;
}

sp::stats::RunningStats random_stats(std::mt19937_64& g, std::size_t n) {
  std::normal_distribution<double> d(250.0, 40.0);
  sp::stats::RunningStats s;
  for (std::size_t i = 0; i < n; ++i) s.add(d(g));
  return s;
}

// ---------------------------------------------------------- serialization

TEST(DistSerialize, PrimitivesRoundTripLittleEndian) {
  ByteWriter w;
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.f64(-1234.5678e-9);
  w.str("shard range");
  // Wire bytes are defined, not host-dependent: check u16's layout.
  EXPECT_EQ(w.bytes()[1], 0x34);  // low byte first
  EXPECT_EQ(w.bytes()[2], 0x12);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.f64(), -1234.5678e-9);
  EXPECT_EQ(r.str(), "shard range");
  EXPECT_TRUE(r.done());
}

TEST(DistSerialize, TruncatedPayloadThrows) {
  ByteWriter w;
  w.u64(7);
  std::vector<std::uint8_t> bytes = w.bytes();
  bytes.pop_back();
  ByteReader r(bytes);
  EXPECT_THROW(r.u64(), std::runtime_error);
  // Hostile vector length must throw, not allocate.
  ByteWriter w2;
  w2.u64(~0ULL);
  ByteReader r2(w2.bytes());
  EXPECT_THROW(r2.f64_vec(), std::runtime_error);
}

TEST(DistSerialize, RunningStatsRoundTripIsExact) {
  std::mt19937_64 g(42);
  for (int rep = 0; rep < 50; ++rep) {
    const auto s = random_stats(g, 1 + static_cast<std::size_t>(g() % 500));
    ByteWriter w;
    sp::dist::write_running_stats(w, s);
    ByteReader r(w.bytes());
    const auto back = sp::dist::read_running_stats(r);
    EXPECT_TRUE(r.done());
    // Exact, not approximate: every internal field crosses the wire as its
    // bit pattern.
    EXPECT_EQ(back.count(), s.count());
    EXPECT_EQ(back.mean(), s.mean());
    EXPECT_EQ(back.variance(), s.variance());
    EXPECT_EQ(back.min(), s.min());
    EXPECT_EQ(back.max(), s.max());
    // Byte-stable: serialize(deserialize(b)) == b.
    ByteWriter w2;
    sp::dist::write_running_stats(w2, back);
    EXPECT_EQ(w.bytes(), w2.bytes());
  }
}

TEST(DistSerialize, HistogramRoundTrip) {
  sp::stats::Histogram h(100.0, 300.0, 32);
  std::mt19937_64 g(7);
  std::normal_distribution<double> d(200.0, 30.0);
  for (int i = 0; i < 5000; ++i) h.add(d(g));
  ByteWriter w;
  sp::dist::write_histogram(w, h);
  ByteReader r(w.bytes());
  const auto back = sp::dist::read_histogram(r);
  EXPECT_TRUE(r.done());
  EXPECT_EQ(back.lo(), h.lo());
  EXPECT_EQ(back.hi(), h.hi());
  EXPECT_EQ(back.bins(), h.bins());
  EXPECT_EQ(back.total(), h.total());
  for (std::size_t i = 0; i < h.bins(); ++i)
    EXPECT_EQ(back.count(i), h.count(i));
}

TEST(DistSerialize, McResultRoundTripFuzzIsByteStable) {
  std::mt19937_64 g(1234);
  std::normal_distribution<double> d(250.0, 40.0);
  for (int rep = 0; rep < 25; ++rep) {
    sp::mc::McResult m;
    m.label = rep % 3 == 0 ? "" : "fuzz run " + std::to_string(rep);
    const std::size_t n = g() % 200;
    for (std::size_t i = 0; i < n; ++i) m.tp_samples.push_back(d(g));
    m.stage_stats.resize(g() % 5);
    for (auto& s : m.stage_stats) s = random_stats(g, g() % 100);
    const auto bytes = sp::dist::serialize_mc_result(m);
    const auto back = sp::dist::deserialize_mc_result(bytes);
    EXPECT_EQ(sp::dist::serialize_mc_result(back), bytes);
    EXPECT_TRUE(sp::dist::bitwise_equal(m, back));
  }
}

TEST(DistSerialize, HostileStageCountThrowsInsteadOfAllocating) {
  ByteWriter w;
  w.str("evil");
  w.f64_vec({});             // no samples
  w.u64(1ULL << 60);         // claimed stage count
  ByteReader r(w.bytes());
  EXPECT_THROW(sp::dist::read_mc_result(r), std::runtime_error);
}

TEST(DistSerialize, ResultBlobRejectsBadMagicAndVersion) {
  sp::mc::McResult m;
  m.tp_samples = {1.0, 2.0};
  m.stage_stats.resize(1);
  auto bytes = sp::dist::serialize_mc_result(m);
  auto corrupt = bytes;
  corrupt[0] ^= 0xff;
  EXPECT_THROW(sp::dist::deserialize_mc_result(corrupt), std::runtime_error);
  auto future = bytes;
  future[4] = 0x7f;  // version low byte
  EXPECT_THROW(sp::dist::deserialize_mc_result(future), std::runtime_error);
}

TEST(DistSerialize, RunDescriptorRoundTrip) {
  const auto d = small_descriptor("c432,c880", 2048, 256);
  ByteWriter w;
  sp::dist::write_run_descriptor(w, d);
  ByteReader r(w.bytes());
  const auto back = sp::dist::read_run_descriptor(r);
  r.expect_done();
  EXPECT_EQ(back.workload, d.workload);
  EXPECT_EQ(back.netlist_hash, d.netlist_hash);
  EXPECT_EQ(back.seed, d.seed);
  EXPECT_EQ(back.root_seed, d.root_seed);
  EXPECT_EQ(back.n_samples, d.n_samples);
  EXPECT_EQ(back.samples_per_shard, d.samples_per_shard);
  EXPECT_EQ(back.block_width, d.block_width);
  EXPECT_EQ(back.sigma_vth_inter, d.sigma_vth_inter);
  EXPECT_EQ(back.enable_rdf, d.enable_rdf);
  EXPECT_EQ(back.output_load, d.output_load);
  EXPECT_EQ(back.latch_tcq_ps, d.latch_tcq_ps);
}

// ------------------------------------------------------------- workload

TEST(DistWorkload, HashMismatchIsRejected) {
  auto d = small_descriptor();
  d.netlist_hash ^= 1;
  EXPECT_THROW(sp::dist::Workload::make(d), std::invalid_argument);
}

TEST(DistWorkload, UnknownCircuitIsRejected) {
  sp::dist::RunDescriptor d;
  d.workload = "c9999";
  d.n_samples = 16;
  EXPECT_THROW(sp::dist::finalize_descriptor(d), std::invalid_argument);
}

TEST(DistWorkload, StructuralHashDetectsStageEdits) {
  auto a = sp::netlist::iscas_like("c432");
  auto b = sp::netlist::iscas_like("c432");
  EXPECT_EQ(a.structural_hash(), b.structural_hash());
  b.gate(b.topological_order().back()).size *= 1.5;
  EXPECT_NE(a.structural_hash(), b.structural_hash());
}

// ----------------------------------------------- run_shard_range contract

TEST(DistEngine, ShardRangePartsFoldToLocalRun) {
  const auto desc = small_descriptor("c432", 1024, 128);  // 8 shards
  const auto wl = sp::dist::Workload::make(desc);
  const sp::mc::McResult local = sp::dist::run_local(desc);
  // Recompute the run in arbitrary contiguous pieces; fold ascending.
  std::vector<sp::mc::McResult> parts;
  for (const auto [b, e] :
       {std::pair<std::size_t, std::size_t>{0, 3}, {3, 4}, {4, 8}}) {
    auto range = wl->engine().run_shard_range(desc.n_samples, desc.root_seed,
                                              b, e, wl->exec(desc));
    for (auto& p : range) parts.push_back(std::move(p));
  }
  sp::mc::McResult acc = std::move(parts.front());
  for (std::size_t i = 1; i < parts.size(); ++i)
    acc.merge(std::move(parts[i]));
  acc.label = local.label;
  EXPECT_TRUE(sp::dist::bitwise_equal(acc, local));
}

TEST(DistEngine, ShardRangeValidatesUpFront) {
  const auto desc = small_descriptor("c432", 1024, 128);  // 8 shards
  const auto wl = sp::dist::Workload::make(desc);
  auto exec = wl->exec(desc);
  EXPECT_THROW(wl->engine().run_shard_range(desc.n_samples, desc.root_seed,
                                            3, 3, exec),
               std::invalid_argument);
  EXPECT_THROW(wl->engine().run_shard_range(desc.n_samples, desc.root_seed,
                                            0, 9, exec),
               std::invalid_argument);
  exec.block_width = 0;
  EXPECT_THROW(wl->engine().run_shard_range(desc.n_samples, desc.root_seed,
                                            0, 8, exec),
               std::invalid_argument);
}

// ------------------------------------------------------- coordinator/CLI

TEST(DistCoordinator, ValidatesRangeSizeUpFront) {
  auto desc = small_descriptor("c432", 1024, 128);  // 8 shards
  sp::dist::CoordinatorOptions opt;
  opt.units_per_range = 9;  // more than the plan holds
  EXPECT_THROW(sp::dist::Coordinator(desc, opt), std::invalid_argument);
  opt.units_per_range = 0;
  opt.max_attempts = 0;
  EXPECT_THROW(sp::dist::Coordinator(desc, opt), std::invalid_argument);
}

// The acceptance contract: a c3540-class run split across TWO worker
// PROCESSES (localhost TCP) merges to the exact bytes of the
// single-process, single-thread run at the same seed.
TEST(DistEndToEnd, TwoWorkerProcessesMatchLocalBitwise) {
  const auto desc = small_descriptor("c3540", 1024, 128);  // 8 shards
  sp::dist::CoordinatorOptions opt;
  opt.units_per_range = 2;  // 4 assignments across 2 workers
  opt.idle_timeout_ms = 120000;
  sp::dist::Coordinator coord(desc, opt);

  const pid_t w1 = spawn_worker_process(coord.port());
  const pid_t w2 = spawn_worker_process(coord.port());
  const sp::mc::McResult dist_result = coord.run().mc;
  reap(coord, w1);
  reap(coord, w2);

  // Single-process, single-thread reference.
  const auto wl = sp::dist::Workload::make(desc);
  auto exec = wl->exec(desc);
  exec.threads = 1;
  sp::stats::Rng rng(desc.seed);
  const auto local = wl->engine().run(desc.n_samples, rng, exec);
  EXPECT_TRUE(sp::dist::bitwise_equal(dist_result, local));
  EXPECT_EQ(dist_result.tp_samples.size(), desc.n_samples);
}

// N=1 over localhost: the degenerate cluster is still exactly the local
// run.
TEST(DistEndToEnd, SingleWorkerProcessMatchesLocalBitwise) {
  const auto desc = small_descriptor("c432", 512, 64);  // 8 shards
  sp::dist::CoordinatorOptions opt;
  opt.idle_timeout_ms = 120000;
  sp::dist::Coordinator coord(desc, opt);
  const pid_t w1 = spawn_worker_process(coord.port());
  const sp::mc::McResult dist_result = coord.run().mc;
  reap(coord, w1);
  EXPECT_TRUE(sp::dist::bitwise_equal(dist_result, sp::dist::run_local(desc)));
}

// Worker failure: a fake worker handshakes, takes an assignment, and dies.
// The coordinator reassigns the forfeited range to a healthy process and
// the merged result is still bitwise-identical.  The coordinator runs on a
// thread so the failure can be sequenced deterministically BEFORE the
// healthy worker exists.
TEST(DistEndToEnd, WorkerFailureReassignmentStaysBitwiseIdentical) {
  const auto desc = small_descriptor("c432", 1024, 128);
  sp::dist::CoordinatorOptions opt;
  opt.units_per_range = 2;
  opt.idle_timeout_ms = 120000;
  sp::dist::Coordinator coord(desc, opt);

  sp::mc::McResult dist_result;
  std::thread serving([&] { dist_result = coord.run().mc; });

  // Saboteur (inline): hello, read setup, accept one assignment, vanish
  // without producing it.
  {
    auto sock = sp::dist::connect_to("127.0.0.1", coord.port());
    sp::dist::ByteWriter hello;
    hello.u16(sp::dist::kWireVersion);
    hello.u64(1);
    sp::dist::send_frame(sock, sp::dist::MsgType::kHello, hello.bytes());
    auto welcome = sp::dist::recv_frame(sock);
    ASSERT_TRUE(welcome && welcome->type == sp::dist::MsgType::kWelcome);
    auto setup = sp::dist::recv_frame(sock);
    ASSERT_TRUE(setup && setup->type == sp::dist::MsgType::kSetup);
    auto assign = sp::dist::recv_frame(sock);
    ASSERT_TRUE(assign && assign->type == sp::dist::MsgType::kAssign);
    sock.close();  // forfeits the range
  }

  const pid_t w1 = spawn_worker_process(coord.port());
  serving.join();
  reap(coord, w1);
  EXPECT_TRUE(sp::dist::bitwise_equal(dist_result, sp::dist::run_local(desc)));
}

// A worker whose workload build fails reports kError and contributes
// nothing; the run completes on the healthy worker that arrives after.
TEST(DistEndToEnd, WorkloadRejectionIsReportedNotFatal) {
  const auto desc = small_descriptor("c432", 256, 64);
  sp::dist::CoordinatorOptions opt;
  opt.idle_timeout_ms = 120000;
  sp::dist::Coordinator coord(desc, opt);

  sp::mc::McResult dist_result;
  std::thread serving([&] { dist_result = coord.run().mc; });

  sp::dist::WorkerOptions wopt;
  wopt.port = coord.port();
  const std::size_t done = sp::dist::run_worker(
      wopt, [](const sp::dist::RunDescriptor&) -> sp::dist::UnitRangeRunner {
        throw std::invalid_argument("injected workload failure");
      });
  EXPECT_EQ(done, 0u);

  const pid_t w1 = spawn_worker_process(coord.port());
  serving.join();
  reap(coord, w1);
  EXPECT_TRUE(sp::dist::bitwise_equal(dist_result, sp::dist::run_local(desc)));
}

// -------------------------------------------------- generic task layer

TEST(DistSerialize, StageCharacterizationRoundTripFuzzIsByteStable) {
  std::mt19937_64 g(777);
  std::normal_distribution<double> d(120.0, 55.0);
  for (int rep = 0; rep < 50; ++rep) {
    sp::sta::StageCharacterization c;
    c.delay = {d(g), std::abs(d(g))};
    c.sigma_inter = std::abs(d(g));
    c.sigma_private = std::abs(d(g));
    c.area = std::abs(d(g));
    c.nominal_delay = d(g);
    ByteWriter w;
    sp::dist::write_stage_characterization(w, c);
    EXPECT_EQ(w.bytes().size(), 48u);  // the documented fixed record size
    ByteReader r(w.bytes());
    const auto back = sp::dist::read_stage_characterization(r);
    EXPECT_TRUE(r.done());
    ByteWriter w2;
    sp::dist::write_stage_characterization(w2, back);
    EXPECT_EQ(w.bytes(), w2.bytes());
  }
}

TEST(DistSerialize, GridDescriptorRoundTripCarriesTaskKindAndGrid) {
  const auto d = grid_descriptor("c432", 5);
  ByteWriter w;
  sp::dist::write_run_descriptor(w, d);
  ByteReader r(w.bytes());
  const auto back = sp::dist::read_run_descriptor(r);
  r.expect_done();
  EXPECT_EQ(back.task_kind, sp::dist::TaskKind::kSstaGrid);
  EXPECT_EQ(back.workload, d.workload);
  EXPECT_EQ(back.netlist_hash, d.netlist_hash);
  EXPECT_EQ(back.size_grid, d.size_grid);
  // Byte-stable: serialize(deserialize(b)) == b.
  ByteWriter w2;
  sp::dist::write_run_descriptor(w2, back);
  EXPECT_EQ(w.bytes(), w2.bytes());
}

// Every truncated prefix of a v2 descriptor must fail loudly as a
// truncation (or task-kind) error — never parse, never crash.
TEST(DistSerialize, GridDescriptorTruncationFuzzAlwaysThrows) {
  const auto d = grid_descriptor("c432", 3);
  ByteWriter w;
  sp::dist::write_run_descriptor(w, d);
  const auto& bytes = w.bytes();
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    ByteReader r(std::span<const std::uint8_t>(bytes.data(), len));
    EXPECT_THROW((void)sp::dist::read_run_descriptor(r), std::runtime_error)
        << "prefix of " << len << " bytes parsed";
  }
}

TEST(DistSerialize, UnknownTaskKindIsRejectedAsTaskKindError) {
  auto d = grid_descriptor("c432", 2);
  ByteWriter w;
  sp::dist::write_run_descriptor(w, d);
  auto bytes = w.bytes();
  bytes[0] = 0x07;  // task-kind low byte: unknown kind 7
  bytes[1] = 0x00;
  ByteReader r(bytes);
  try {
    (void)sp::dist::read_run_descriptor(r);
    FAIL() << "unknown task kind parsed";
  } catch (const std::runtime_error& e) {
    // The satellite contract: a clear task-kind error naming what this
    // build knows, not a generic deserialize failure downstream.
    EXPECT_NE(std::string(e.what()).find("task kind"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("ssta-grid"), std::string::npos)
        << e.what();
  }
}

TEST(DistSerialize, HostileGridLaneCountThrowsInsteadOfAllocating) {
  ByteWriter w;
  w.u16(static_cast<std::uint16_t>(sp::dist::TaskKind::kSstaGrid));
  w.str("c432");
  for (int i = 0; i < 6; ++i) w.u64(1);  // hash..block_width
  w.u64(1ULL << 60);                     // claimed lane count
  ByteReader r(w.bytes());
  EXPECT_THROW((void)sp::dist::read_run_descriptor(r), std::runtime_error);
}

TEST(DistSerialize, CharacterizationBlobRejectsBadMagicAndVersion) {
  const auto local = sp::dist::run_local_task(grid_descriptor("c432", 3));
  auto bytes = sp::dist::serialize_characterizations(local.lanes);
  EXPECT_EQ(sp::dist::deserialize_characterizations(bytes).size(), 3u);
  auto corrupt = bytes;
  corrupt[0] ^= 0xff;
  EXPECT_THROW((void)sp::dist::deserialize_characterizations(corrupt),
               std::runtime_error);
  auto future = bytes;
  future[4] = 0x7f;  // version low byte
  EXPECT_THROW((void)sp::dist::deserialize_characterizations(future),
               std::runtime_error);
}

TEST(DistWorkload, GridDescriptorValidation) {
  // Multi-circuit grid workloads are rejected: one grid = one stage.
  {
    auto d = grid_descriptor("c432", 2);
    d.workload = "c432,c880";
    EXPECT_THROW(sp::dist::build_grid_stage(d), std::invalid_argument);
  }
  // Empty grid.
  {
    auto d = grid_descriptor("c432", 2);
    d.size_grid.clear();
    EXPECT_THROW(sp::dist::build_grid_stage(d), std::invalid_argument);
  }
  // A lane that is not a full size vector (empty or wrong length) would
  // silently fall back to rebuilt base sizes on the worker — rejected.
  {
    auto d = grid_descriptor("c432", 2);
    d.size_grid[1].pop_back();
    EXPECT_THROW(sp::dist::build_grid_stage(d), std::invalid_argument);
    d.size_grid[1].clear();
    EXPECT_THROW(sp::dist::build_grid_stage(d), std::invalid_argument);
  }
  // Hash mismatch (diverging generator builds).
  {
    auto d = grid_descriptor("c432", 2);
    d.netlist_hash ^= 1;
    EXPECT_THROW(sp::dist::build_grid_stage(d), std::invalid_argument);
  }
}

TEST(DistCluster, WorkloadNameForVerifiesStructure) {
  auto nl = sp::netlist::iscas_like("c432");
  EXPECT_EQ(sp::dist::workload_name_for(nl), "c432");
  // Resizing is fine — grids carry explicit size lanes.
  auto sizes = nl.sizes();
  for (double& s : sizes) s *= 1.3;
  nl.set_sizes(sizes);
  EXPECT_EQ(sp::dist::workload_name_for(nl), "c432");
  // A structural edit (not just sizes) must be rejected.
  sp::netlist::Netlist renamed = sp::netlist::iscas_like("c880");
  renamed.set_name("c432_like");
  EXPECT_THROW(sp::dist::workload_name_for(renamed), std::invalid_argument);
}

// The grid acceptance contract: a sweep grid split across TWO worker
// PROCESSES reassembles to the exact bytes of the local SstaBatch run —
// both the run_local_task reference and a caller-side batch at the same
// configs.
TEST(DistEndToEnd, TwoWorkerSstaGridMatchesLocalBatchBitwise) {
  const auto desc = grid_descriptor("c432", 6);
  sp::dist::CoordinatorOptions opt;
  opt.units_per_range = 2;  // 3 assignments across 2 workers
  opt.idle_timeout_ms = 120000;
  sp::dist::Coordinator coord(desc, opt);

  const pid_t w1 = spawn_worker_process(coord.port());
  const pid_t w2 = spawn_worker_process(coord.port());
  const sp::dist::TaskResult dist_result = coord.run();
  reap(coord, w1);
  reap(coord, w2);

  ASSERT_EQ(dist_result.kind, sp::dist::TaskKind::kSstaGrid);
  ASSERT_EQ(dist_result.lanes.size(), desc.size_grid.size());
  const sp::dist::TaskResult local = sp::dist::run_local_task(desc);
  EXPECT_TRUE(sp::dist::bitwise_equal(dist_result, local));

  // And against a directly-bound batch, the way an optimizer would see it.
  const auto nl = sp::netlist::iscas_like("c432");
  const sp::device::AlphaPowerModel model{sp::process::Technology{}};
  sp::sta::SstaOptions sopt;
  sopt.output_load = desc.output_load;
  const sp::sta::SstaBatch batch(nl, model, sopt);
  const auto direct = batch.characterize(sp::sta::make_configs(
      desc.size_grid, sp::dist::descriptor_spec(desc)));
  EXPECT_TRUE(sp::dist::bitwise_equal(dist_result.lanes, direct));
}

// A non-default technology must replay exactly on the worker: the
// descriptor carries the delay model's parameters, so a grid submitted
// from a tweaked-technology optimizer is not silently characterized with
// registry defaults.
TEST(DistEndToEnd, NonDefaultTechnologyCrossesTheWire) {
  sp::process::Technology tech;
  tech.tau_ps = 5.5;   // slower inverter
  tech.alpha = 1.45;   // different velocity-saturation index
  auto desc = grid_descriptor("c432", 4);
  sp::dist::set_descriptor_technology(desc, tech);

  sp::dist::CoordinatorOptions opt;
  opt.idle_timeout_ms = 120000;
  sp::dist::Coordinator coord(desc, opt);
  const pid_t w1 = spawn_worker_process(coord.port());
  const sp::dist::TaskResult dist_result = coord.run();
  reap(coord, w1);

  const sp::device::AlphaPowerModel model{tech};
  const auto nl = sp::netlist::iscas_like("c432");
  sp::sta::SstaOptions sopt;
  sopt.output_load = desc.output_load;
  const sp::sta::SstaBatch batch(nl, model, sopt);
  const auto direct = batch.characterize(sp::sta::make_configs(
      desc.size_grid, sp::dist::descriptor_spec(desc)));
  EXPECT_TRUE(sp::dist::bitwise_equal(dist_result.lanes, direct));
  // And the tweaked technology actually changes the numbers (the test
  // would be vacuous if defaults happened to match).
  const sp::device::AlphaPowerModel default_model{sp::process::Technology{}};
  const sp::sta::SstaBatch default_batch(nl, default_model, sopt);
  const auto with_defaults = default_batch.characterize(sp::sta::make_configs(
      desc.size_grid, sp::dist::descriptor_spec(desc)));
  EXPECT_FALSE(sp::dist::bitwise_equal(dist_result.lanes, with_defaults));
}

// Worker failure on a grid task: a saboteur takes a lane range and dies;
// the reassigned reassembly is still bitwise-identical.
TEST(DistEndToEnd, SstaGridWorkerFailureReassignmentStaysBitwise) {
  const auto desc = grid_descriptor("c432", 8);
  sp::dist::CoordinatorOptions opt;
  opt.units_per_range = 2;
  opt.idle_timeout_ms = 120000;
  sp::dist::Coordinator coord(desc, opt);

  sp::dist::TaskResult dist_result;
  std::thread serving([&] { dist_result = coord.run(); });

  {
    auto sock = sp::dist::connect_to("127.0.0.1", coord.port());
    sp::dist::ByteWriter hello;
    hello.u16(sp::dist::kWireVersion);
    hello.u64(1);
    sp::dist::send_frame(sock, sp::dist::MsgType::kHello, hello.bytes());
    auto welcome = sp::dist::recv_frame(sock);
    ASSERT_TRUE(welcome && welcome->type == sp::dist::MsgType::kWelcome);
    auto setup = sp::dist::recv_frame(sock);
    ASSERT_TRUE(setup && setup->type == sp::dist::MsgType::kSetup);
    auto assign = sp::dist::recv_frame(sock);
    ASSERT_TRUE(assign && assign->type == sp::dist::MsgType::kAssign);
    sock.close();  // forfeits the lane range
  }

  const pid_t w1 = spawn_worker_process(coord.port());
  serving.join();
  reap(coord, w1);
  EXPECT_TRUE(
      sp::dist::bitwise_equal(dist_result, sp::dist::run_local_task(desc)));
}

// The tentpole acceptance contract: opt::area_delay_sweep with its grid
// submitted to a 2-process cluster — WITH an injected worker failure
// mid-run — produces bitwise-identical results to the single-process
// SstaBatch path.
TEST(DistEndToEnd, DistributedSweepWithWorkerFailureMatchesLocalBitwise) {
  const sp::device::AlphaPowerModel model{sp::process::Technology{}};
  sp::process::VariationSpec spec;
  spec.sigma_vth_inter = 0.020;
  spec.sigma_vth_systematic = 0.0;

  sp::opt::SweepOptions sw;
  sw.points = 6;

  // Local reference first (the hook left empty = SstaBatch path).
  sp::netlist::Netlist nl_local = sp::netlist::iscas_like("c432");
  const auto local = sp::opt::area_delay_sweep(nl_local, model, spec, sw);

  // Cluster-backed sweep: the hook runs one coordinator session per grid,
  // sabotaged by a fake worker that takes a range and dies before two
  // healthy worker processes finish the job.
  sw.grid = [](const sp::netlist::Netlist& nl,
               const sp::device::AlphaPowerModel& hook_model,
               const std::vector<std::vector<double>>& grid,
               const sp::process::VariationSpec& sp_spec,
               const sp::sta::SstaOptions& sopt) {
    sp::dist::RunDescriptor d;
    d.task_kind = sp::dist::TaskKind::kSstaGrid;
    d.workload = sp::dist::workload_name_for(nl);
    d.size_grid = grid;
    sp::dist::set_descriptor_technology(d, hook_model.technology());
    sp::dist::set_descriptor_spec(d, sp_spec);
    d.output_load = sopt.output_load;
    sp::dist::finalize_descriptor(d);

    sp::dist::CoordinatorOptions copt;
    copt.units_per_range = 2;
    copt.idle_timeout_ms = 120000;
    sp::dist::Coordinator coord(d, copt);

    sp::dist::TaskResult res;
    std::thread serving([&] { res = coord.run(); });
    {
      auto sock = sp::dist::connect_to("127.0.0.1", coord.port());
      sp::dist::ByteWriter hello;
      hello.u16(sp::dist::kWireVersion);
      hello.u64(1);
      sp::dist::send_frame(sock, sp::dist::MsgType::kHello, hello.bytes());
      auto welcome = sp::dist::recv_frame(sock);
      EXPECT_TRUE(welcome && welcome->type == sp::dist::MsgType::kWelcome);
      auto setup = sp::dist::recv_frame(sock);
      EXPECT_TRUE(setup && setup->type == sp::dist::MsgType::kSetup);
      auto assign = sp::dist::recv_frame(sock);
      EXPECT_TRUE(assign && assign->type == sp::dist::MsgType::kAssign);
      sock.close();  // forfeits the range
    }
    const pid_t w1 = spawn_worker_process(coord.port());
    const pid_t w2 = spawn_worker_process(coord.port());
    serving.join();
    reap(coord, w1);
    reap(coord, w2);
    return res.lanes;
  };
  sp::netlist::Netlist nl_dist = sp::netlist::iscas_like("c432");
  const auto dist_sweep = sp::opt::area_delay_sweep(nl_dist, model, spec, sw);

  EXPECT_TRUE(sp::opt::bitwise_equal(dist_sweep, local));
  // The sweep leaves the netlist at the fastest point; both paths must
  // agree on that too.
  EXPECT_EQ(nl_dist.sizes(), nl_local.sizes());
}

// The public cluster API end to end: grid_characterizer + run_cluster
// spawn-and-reap their own localhost fleet and match the local sweep.
TEST(DistEndToEnd, ClusterGridCharacterizerMatchesLocalSweep) {
  const sp::device::AlphaPowerModel model{sp::process::Technology{}};
  sp::process::VariationSpec spec;
  spec.sigma_vth_inter = 0.020;
  spec.sigma_vth_systematic = 0.0;

  sp::opt::SweepOptions sw;
  sw.points = 5;
  sp::netlist::Netlist nl_local = sp::netlist::iscas_like("c880");
  const auto local = sp::opt::area_delay_sweep(nl_local, model, spec, sw);

  sp::dist::ClusterOptions cl;
  cl.coordinator.idle_timeout_ms = 120000;
  cl.spawn_workers = 2;
  cl.worker_bin = STATPIPE_WORKER_BIN;
  sw.grid = sp::dist::grid_characterizer(cl);
  sp::netlist::Netlist nl_dist = sp::netlist::iscas_like("c880");
  const auto dist_sweep = sp::opt::area_delay_sweep(nl_dist, model, spec, sw);

  EXPECT_TRUE(sp::opt::bitwise_equal(dist_sweep, local));
}

// ------------------------------------------------------- hmac primitives

sp::dist::Digest hex_digest(const std::string& hex) {
  sp::dist::Digest d{};
  for (std::size_t i = 0; i < d.size(); ++i)
    d[i] = static_cast<std::uint8_t>(
        std::stoul(hex.substr(2 * i, 2), nullptr, 16));
  return d;
}

std::vector<std::uint8_t> bytes_of(const std::string& s) {
  return {s.begin(), s.end()};
}

TEST(DistHmac, Sha256KnownAnswerVectors) {
  // FIPS 180-4 / NIST CAVP vectors: empty, one block, two blocks, and a
  // long input that crosses many block boundaries.
  EXPECT_EQ(sp::dist::sha256(bytes_of("")),
            hex_digest("e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934c"
                       "a495991b7852b855"));
  EXPECT_EQ(sp::dist::sha256(bytes_of("abc")),
            hex_digest("ba7816bf8f01cfea414140de5dae2223b00361a396177a9c"
                       "b410ff61f20015ad"));
  EXPECT_EQ(
      sp::dist::sha256(bytes_of(
          "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
      hex_digest("248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd4"
                 "19db06c1"));
  const std::vector<std::uint8_t> million(1000000, 'a');
  EXPECT_EQ(sp::dist::sha256(million),
            hex_digest("cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e"
                       "046d39ccc7112cd0"));
}

TEST(DistHmac, HmacSha256Rfc4231Vectors) {
  // RFC 4231 test cases 1-3 (short keys) and 6-7 (keys longer than the
  // 64-byte block, which must be hashed first per RFC 2104).
  EXPECT_EQ(sp::dist::hmac_sha256(std::vector<std::uint8_t>(20, 0x0b),
                                  bytes_of("Hi There")),
            hex_digest("b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da7"
                       "26e9376c2e32cff7"));
  EXPECT_EQ(sp::dist::hmac_sha256(bytes_of("Jefe"),
                                  bytes_of("what do ya want for nothing?")),
            hex_digest("5bdcc146bf60754e6a042426089575c75a003f089d273983"
                       "9dec58b964ec3843"));
  EXPECT_EQ(sp::dist::hmac_sha256(std::vector<std::uint8_t>(20, 0xaa),
                                  std::vector<std::uint8_t>(50, 0xdd)),
            hex_digest("773ea91e36800e46854db8ebd09181a72959098b3ef8c122"
                       "d9635514ced565fe"));
  EXPECT_EQ(
      sp::dist::hmac_sha256(
          std::vector<std::uint8_t>(131, 0xaa),
          bytes_of("Test Using Larger Than Block-Size Key - Hash Key First")),
      hex_digest("60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f"
                 "0ee37f54"));
  EXPECT_EQ(
      sp::dist::hmac_sha256(
          std::vector<std::uint8_t>(131, 0xaa),
          bytes_of("This is a test using a larger than block-size key and a "
                   "larger than block-size data. The key needs to be hashed "
                   "before being used by the HMAC algorithm.")),
      hex_digest("9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f5153"
                 "5c3a35e2"));
}

TEST(DistHmac, ConstantTimeCompareExaminesEveryByte) {
  const sp::dist::Digest a = sp::dist::sha256(bytes_of("left"));
  EXPECT_TRUE(sp::dist::digest_equal_consttime(a, a));
  // A single flipped bit at ANY position must be detected.
  for (std::size_t i = 0; i < a.size(); ++i) {
    sp::dist::Digest b = a;
    b[i] ^= 0x01;
    EXPECT_FALSE(sp::dist::digest_equal_consttime(a, b)) << "byte " << i;
  }
}

TEST(DistHmac, FrameAuthDerivesKeyFromPassphrase) {
  EXPECT_FALSE(sp::dist::FrameAuth::from_passphrase("").enabled);
  const auto auth = sp::dist::FrameAuth::from_passphrase("open sesame");
  EXPECT_TRUE(auth.enabled);
  // The wire key is the SHA-256 of the passphrase, not its raw bytes.
  EXPECT_EQ(auth.key, sp::dist::sha256(bytes_of("open sesame")));
  // MACs are deterministic per key and differ across keys.
  const auto other = sp::dist::FrameAuth::from_passphrase("different");
  const auto data = bytes_of("frame bytes");
  EXPECT_EQ(auth.mac(data), auth.mac(data));
  EXPECT_NE(auth.mac(data), other.mac(data));
}

// --------------------------------------------- transport authentication

std::pair<sp::dist::Socket, sp::dist::Socket> socket_pair() {
  int fds[2] = {-1, -1};
  EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  return {sp::dist::Socket(fds[0]), sp::dist::Socket(fds[1])};
}

TEST(DistAuthTransport, AuthenticatedFrameRoundTrips) {
  const auto auth = sp::dist::FrameAuth::from_passphrase("round-trip");
  ByteWriter payload;
  payload.u64(42);
  payload.str("unit body");
  // The trailer costs exactly one digest on the wire.
  EXPECT_EQ(sp::dist::encode_frame(sp::dist::MsgType::kResult,
                                   payload.bytes(), auth)
                .size(),
            sp::dist::encode_frame(sp::dist::MsgType::kResult,
                                   payload.bytes())
                    .size() +
                sp::dist::kDigestSize);
  auto [a, b] = socket_pair();
  sp::dist::send_frame(a, sp::dist::MsgType::kResult, payload.bytes(), auth);
  const auto f = sp::dist::recv_frame(b, auth);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->type, sp::dist::MsgType::kResult);
  EXPECT_EQ(f->payload, payload.bytes());
}

// The strong tamper property: with authentication on, EVERY single-bit
// flip anywhere in the frame — header, payload, or MAC trailer — must be
// rejected, because the MAC covers header + payload and the trailer
// itself is compared constant-time.
TEST(DistAuthTransport, EveryBitFlipOnAuthenticatedFrameIsRejected) {
  const auto auth = sp::dist::FrameAuth::from_passphrase("flip-key");
  ByteWriter payload;
  payload.u64(3);
  payload.str("streamed unit");
  const std::vector<std::uint8_t> frame = sp::dist::encode_frame(
      sp::dist::MsgType::kResult, payload.bytes(), auth);
  for (std::size_t byte = 0; byte < frame.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      auto [a, b] = socket_pair();
      std::vector<std::uint8_t> mutated = frame;
      mutated[byte] ^= static_cast<std::uint8_t>(1u << bit);
      a.send_all(mutated.data(), mutated.size());
      a.close();  // a size-inflating flip must hit EOF, not block
      EXPECT_THROW((void)sp::dist::recv_frame(b, auth), std::runtime_error)
          << "flip of bit " << bit << " in byte " << byte << " was accepted";
    }
  }
}

TEST(DistAuthTransport, MissingOrUnexpectedAuthIsRejectedBothWays) {
  const auto key = sp::dist::FrameAuth::from_passphrase("strict");
  {
    // Unauthenticated frame at a keyed receiver: no silent downgrade.
    auto [a, b] = socket_pair();
    sp::dist::send_frame(a, sp::dist::MsgType::kHello, {});
    try {
      (void)sp::dist::recv_frame(b, key);
      FAIL() << "unauthenticated frame accepted under a wire key";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("unauthenticated"),
                std::string::npos)
          << e.what();
    }
  }
  {
    // Authenticated frame at a keyless receiver: a loud config mismatch,
    // not an ignored trailer.
    auto [a, b] = socket_pair();
    sp::dist::send_frame(a, sp::dist::MsgType::kHello, {}, key);
    try {
      (void)sp::dist::recv_frame(b);
      FAIL() << "authenticated frame accepted without a wire key";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("no wire key"), std::string::npos)
          << e.what();
    }
  }
}

TEST(DistAuthTransport, WrongKeyFailsVerification) {
  const auto alpha = sp::dist::FrameAuth::from_passphrase("alpha");
  const auto beta = sp::dist::FrameAuth::from_passphrase("beta");
  auto [a, b] = socket_pair();
  sp::dist::send_frame(a, sp::dist::MsgType::kHello, {}, alpha);
  EXPECT_THROW((void)sp::dist::recv_frame(b, beta), std::runtime_error);
}

// ----------------------------------------------- transport hardening

TEST(DistTransportHardening, UnknownFlagBitsAreRejected) {
  auto [a, b] = socket_pair();
  std::vector<std::uint8_t> frame =
      sp::dist::encode_frame(sp::dist::MsgType::kHello, {});
  frame[8] |= 0x02;  // flags field, an undefined bit
  a.send_all(frame.data(), frame.size());
  a.close();
  try {
    (void)sp::dist::recv_frame(b);
    FAIL() << "unknown flag bits accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("flag"), std::string::npos)
        << e.what();
  }
}

// Mutation fuzz over an unauthenticated frame: any single-bit corruption
// either still parses at the frame layer (payload bits — upper layers
// validate content) or throws std::runtime_error.  Nothing may crash,
// hang, or throw anything untyped.
TEST(DistTransportHardening, FrameMutationFuzzParsesOrThrows) {
  ByteWriter payload;
  payload.u16(sp::dist::kWireVersion);
  payload.u64(4);
  const std::vector<std::uint8_t> frame =
      sp::dist::encode_frame(sp::dist::MsgType::kHello, payload.bytes());
  std::size_t parsed = 0;
  std::size_t rejected = 0;
  for (std::size_t byte = 0; byte < frame.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      auto [a, b] = socket_pair();
      std::vector<std::uint8_t> mutated = frame;
      mutated[byte] ^= static_cast<std::uint8_t>(1u << bit);
      a.send_all(mutated.data(), mutated.size());
      a.close();
      try {
        if (sp::dist::recv_frame(b))
          ++parsed;
        else
          ++rejected;  // clean-EOF reading (possible for a header flip)
      } catch (const std::runtime_error&) {
        ++rejected;
      }
    }
  }
  // Both populations must exist: header corruption is caught, payload
  // corruption is the upper layers' job.
  EXPECT_GT(rejected, 0u);
  EXPECT_GT(parsed, 0u);
}

TEST(DistTransportHardening, ReadDeadlineUnwedgesSilentMidFramePeer) {
  auto [a, b] = socket_pair();
  const std::uint32_t magic = sp::dist::kWireMagic;
  a.send_all(&magic, sizeof magic);  // 4 plausible bytes, then silence
  b.set_read_deadline_ms(300);
  const auto t0 = std::chrono::steady_clock::now();
  try {
    (void)sp::dist::recv_frame(b);
    FAIL() << "read of a stalled frame returned";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("deadline"), std::string::npos)
        << e.what();
  }
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            5000);
}

// A slow-loris drip defeats plain receive timeouts (every byte restarts
// them) but not the absolute deadline.
TEST(DistTransportHardening, ReadDeadlineBoundsSlowLorisDrip) {
  auto [a, b] = socket_pair();
  std::atomic<bool> stop{false};
  std::thread drip([&] {
    const std::uint8_t byte = 0x53;
    try {
      for (int i = 0; i < 100 && !stop.load(); ++i) {
        a.send_all(&byte, 1);
        std::this_thread::sleep_for(std::chrono::milliseconds(80));
      }
    } catch (const std::exception&) {
    }
  });
  b.set_read_deadline_ms(400);
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_THROW((void)sp::dist::recv_frame(b), std::runtime_error);
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            5000);
  stop = true;
  drip.join();
}

TEST(DistTransportHardening, FaultPlanChunksAndBudgetsAreByteExact) {
  // Chunked + delayed delivery still reassembles the exact frame.
  {
    auto [a, b] = socket_pair();
    sp::dist::testing::FaultPlan plan;
    plan.max_chunk = 3;
    plan.delay_us_per_chunk = 100;
    a.set_fault_plan(&plan);
    ByteWriter payload;
    for (std::uint64_t i = 0; i < 40; ++i) payload.u64(i);
    sp::dist::send_frame(a, sp::dist::MsgType::kResult, payload.bytes());
    const auto f = sp::dist::recv_frame(b);
    ASSERT_TRUE(f.has_value());
    EXPECT_EQ(f->payload, payload.bytes());
  }
  // Budget 0: the connection dies before the first byte — a clean EOF at
  // a frame boundary for the receiver (nullopt, not a throw).
  {
    auto [a, b] = socket_pair();
    sp::dist::testing::FaultPlan plan;
    plan.send_byte_budget = 0;
    a.set_fault_plan(&plan);
    try {
      sp::dist::send_frame(a, sp::dist::MsgType::kHello, {});
      FAIL() << "send past an exhausted budget succeeded";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("budget"), std::string::npos)
          << e.what();
    }
    EXPECT_FALSE(sp::dist::recv_frame(b).has_value());
  }
  // Budget 10: ten header bytes cross, then the cut — a mid-frame EOF the
  // receiver must surface as an error, never a short parse.
  {
    auto [a, b] = socket_pair();
    sp::dist::testing::FaultPlan plan;
    plan.send_byte_budget = 10;
    a.set_fault_plan(&plan);
    EXPECT_THROW(sp::dist::send_frame(a, sp::dist::MsgType::kHello, {}),
                 std::runtime_error);
    EXPECT_THROW((void)sp::dist::recv_frame(b), std::runtime_error);
  }
}

// --------------------------------------------- deterministic fault matrix

// An inline protocol-honest worker whose socket runs through a
// dist::testing::FaultPlan.  With a byte-exact send budget the
// conversation cuts at a chosen offset (before hello, mid-hello, at the
// hello/result boundary, mid-result ...); with chunk caps and delays it
// exercises the partial-IO paths end to end while staying honest.
void faulty_worker(std::uint16_t port, sp::dist::testing::FaultPlan plan) {
  try {
    sp::dist::Socket sock = sp::dist::connect_to("127.0.0.1", port);
    sock.set_fault_plan(&plan);
    sock.set_recv_timeout_ms(60000);
    {
      ByteWriter hello;
      hello.u16(sp::dist::kWireVersion);
      hello.u64(1);
      sp::dist::send_frame(sock, sp::dist::MsgType::kHello, hello.bytes());
    }
    const auto welcome = sp::dist::recv_frame(sock);
    if (!welcome || welcome->type != sp::dist::MsgType::kWelcome) return;
    std::uint64_t session = 0;
    {
      ByteReader r(welcome->payload);
      session = r.u64();
      r.expect_done();
    }
    const auto setup = sp::dist::recv_frame(sock);
    if (!setup || setup->type != sp::dist::MsgType::kSetup) return;
    const std::uint64_t rid = setup->request_id;
    sp::dist::RunDescriptor desc;
    {
      ByteReader r(setup->payload);
      desc = sp::dist::read_run_descriptor(r);
      r.expect_done();
    }
    const sp::dist::UnitRangeRunner runner = sp::dist::make_unit_runner(desc);
    for (;;) {
      const auto f = sp::dist::recv_frame(sock);
      if (!f || f->type != sp::dist::MsgType::kAssign) return;  // shutdown
      ByteReader r(f->payload);
      const std::uint64_t begin = r.u64();
      const std::uint64_t end = r.u64();
      std::uint64_t emitted = 0;
      runner(begin, end,
             [&](std::size_t unit, const std::vector<std::uint8_t>& payload) {
               ByteWriter out;
               out.u64(unit);
               out.append(payload);
               sp::dist::send_frame(sock, sp::dist::MsgType::kResult,
                                    out.bytes(), {}, session, rid);
               emitted += 1;
             });
      ByteWriter done;
      done.u64(begin);
      done.u64(end);
      done.u64(emitted);
      sp::dist::send_frame(sock, sp::dist::MsgType::kRangeDone, done.bytes(),
                           {}, session, rid);
    }
  } catch (const std::exception&) {
    // Budget exhaustion, or the coordinator dropping us after the cut:
    // both are the matrix's expected outcomes.
  }
}

// The satellite matrix: deterministic byte-exact disconnects at each
// stage of the conversation — before hello, inside the hello header,
// exactly at the hello/result frame boundary, inside the first result's
// header, and inside its payload.  Every case must end with the range
// reassigned to the healthy worker and the bitwise-identical result.
TEST(DistFaultMatrix, ByteExactDisconnectsAlwaysReassign) {
  const auto desc = small_descriptor();  // 8 units
  ByteWriter hello;
  hello.u16(sp::dist::kWireVersion);
  hello.u64(1);
  const std::size_t hello_bytes =
      sp::dist::encode_frame(sp::dist::MsgType::kHello, hello.bytes()).size();
  const sp::dist::TaskResult local = sp::dist::run_local_task(desc);
  const std::size_t budgets[] = {0, 7, hello_bytes, hello_bytes + 7,
                                 hello_bytes + 120};
  for (const std::size_t budget : budgets) {
    SCOPED_TRACE("send budget " + std::to_string(budget));
    sp::dist::CoordinatorOptions opt;
    opt.units_per_range = 2;
    opt.idle_timeout_ms = 120000;
    sp::dist::Coordinator coord(desc, opt);
    sp::dist::TaskResult dist_result;
    std::thread serving([&] { dist_result = coord.run(); });
    sp::dist::testing::FaultPlan plan;
    plan.send_byte_budget = budget;
    std::thread faulty([&, port = coord.port()] { faulty_worker(port, plan); });
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    const pid_t w = spawn_worker_process(coord.port());
    serving.join();
    faulty.join();
    reap(coord, w);
    EXPECT_TRUE(sp::dist::bitwise_equal(dist_result, local));
  }
}

// Short reads, short writes and delayed bytes on an HONEST worker change
// nothing: the run completes bitwise-identical through 3-byte chunks.
TEST(DistFaultMatrix, ChunkedAndDelayedIoStaysBitwise) {
  const auto desc = small_descriptor();
  sp::dist::CoordinatorOptions opt;
  opt.units_per_range = 3;
  opt.idle_timeout_ms = 120000;
  sp::dist::Coordinator coord(desc, opt);
  sp::dist::TaskResult dist_result;
  std::thread serving([&] { dist_result = coord.run(); });
  sp::dist::testing::FaultPlan plan;
  plan.max_chunk = 3;
  plan.delay_us_per_chunk = 50;
  std::thread chunked([&, port = coord.port()] { faulty_worker(port, plan); });
  serving.join();
  chunked.join();
  EXPECT_TRUE(
      sp::dist::bitwise_equal(dist_result, sp::dist::run_local_task(desc)));
}

// ------------------------------------------------- authenticated cluster

TEST(DistEndToEnd, AuthenticatedTwoWorkerRunMatchesLocalBitwise) {
  const std::string key = "e2e-wire-key";
  const auto desc = small_descriptor();
  sp::dist::CoordinatorOptions opt;
  opt.units_per_range = 2;
  opt.idle_timeout_ms = 120000;
  opt.auth_key = key;
  sp::dist::Coordinator coord(desc, opt);
  const pid_t w1 = spawn_worker_process(coord.port(), key);
  const pid_t w2 = spawn_worker_process(coord.port(), key);
  const sp::dist::TaskResult dist_result = coord.run();
  reap(coord, w1);
  reap(coord, w2);
  EXPECT_TRUE(
      sp::dist::bitwise_equal(dist_result, sp::dist::run_local_task(desc)));
}

TEST(DistEndToEnd, MismatchedKeyWorkerIsRejectedAndRunStillCompletes) {
  const auto desc = small_descriptor();
  sp::dist::CoordinatorOptions opt;
  opt.units_per_range = 2;
  opt.idle_timeout_ms = 120000;
  opt.auth_key = "right-key";
  sp::dist::Coordinator coord(desc, opt);
  // The wrong-key worker's hello fails MAC verification at admission; it
  // sees the connection close and exits 1 ("coordinator sent no setup").
  const pid_t bad = spawn_worker_process(coord.port(), "wrong-key");
  const pid_t good = spawn_worker_process(coord.port(), "right-key");
  const sp::dist::TaskResult dist_result = coord.run();
  reap(coord, bad, 1);
  reap(coord, good);
  EXPECT_TRUE(
      sp::dist::bitwise_equal(dist_result, sp::dist::run_local_task(desc)));
}

TEST(DistEndToEnd, AuthenticatedWorkerAgainstPlainCoordinatorIsRejected) {
  const auto desc = small_descriptor();
  sp::dist::CoordinatorOptions opt;
  opt.units_per_range = 2;
  opt.idle_timeout_ms = 120000;  // no auth_key: plain wire
  sp::dist::Coordinator coord(desc, opt);
  // Symmetric strictness: an authenticated hello at a keyless coordinator
  // is a loud config mismatch, not an ignored trailer.
  const pid_t keyed = spawn_worker_process(coord.port(), "stray-key");
  const pid_t plain = spawn_worker_process(coord.port());
  const sp::dist::TaskResult dist_result = coord.run();
  reap(coord, keyed, 1);
  reap(coord, plain);
  EXPECT_TRUE(
      sp::dist::bitwise_equal(dist_result, sp::dist::run_local_task(desc)));
}

// ----------------------------------------------- streaming (wire v3)

// One assignment far larger than the worker's streaming chunk: 64 units
// stream over the same connection as many kResult frames and fold into
// the bounded accumulator — bitwise-identical to the local run.
TEST(DistEndToEnd, LargeStreamedRangeSingleWorkerMatchesLocalBitwise) {
  const auto desc = small_descriptor("c432", 4096, 64);  // 64 units
  sp::dist::CoordinatorOptions opt;
  opt.units_per_range = 64;  // a single streamed assignment
  opt.idle_timeout_ms = 120000;
  sp::dist::Coordinator coord(desc, opt);
  const pid_t w = spawn_worker_process(coord.port());
  const sp::dist::TaskResult dist_result = coord.run();
  reap(coord, w);
  EXPECT_TRUE(
      sp::dist::bitwise_equal(dist_result, sp::dist::run_local_task(desc)));
}

// -------------------------------------------------- hostile-peer matrix

// Each saboteur mode attacks a live coordinator that also serves one
// honest worker.  Contract (docs/WIRE_FORMAT.md threat model): the
// coordinator never crashes or hangs, never folds a poisoned unit, the
// saboteur's range is reassigned, and the result stays bitwise-identical.
// The saboteur process itself exits 0 — it verifies its own expectations
// (e.g. that the coordinator actually dropped it).
TEST(DistChaos, SaboteurMatrixOnPlainWireNeverPoisonsTheRun) {
  const auto desc = small_descriptor();  // 8 units, 4 ranges below
  const sp::dist::TaskResult local = sp::dist::run_local_task(desc);
  const char* modes[] = {"truncate", "midframe", "oversize",
                         "garbage",  "dup-unit", "replay"};
  for (const char* mode : modes) {
    SCOPED_TRACE(mode);
    sp::dist::CoordinatorOptions opt;
    opt.units_per_range = 2;
    opt.idle_timeout_ms = 120000;
    sp::dist::Coordinator coord(desc, opt);
    sp::dist::TaskResult dist_result;
    std::thread serving([&] { dist_result = coord.run(); });
    // Saboteur first, so it wins a range assignment to attack with.
    const pid_t sab = spawn_saboteur_process(coord.port(), mode);
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
    const pid_t w = spawn_worker_process(coord.port());
    serving.join();
    reap(coord, sab);
    reap(coord, w);
    EXPECT_TRUE(sp::dist::bitwise_equal(dist_result, local));
  }
}

TEST(DistChaos, AuthenticatedWireRejectsTamperedAndUnauthenticatedPeers) {
  const auto desc = small_descriptor();
  const sp::dist::TaskResult local = sp::dist::run_local_task(desc);
  const std::string key = "chaos-wire-key";
  const char* modes[] = {"tampered-hmac", "unauthenticated"};
  for (const char* mode : modes) {
    SCOPED_TRACE(mode);
    sp::dist::CoordinatorOptions opt;
    opt.units_per_range = 2;
    opt.idle_timeout_ms = 120000;
    opt.auth_key = key;
    sp::dist::Coordinator coord(desc, opt);
    sp::dist::TaskResult dist_result;
    std::thread serving([&] { dist_result = coord.run(); });
    const bool sab_has_key = std::string(mode) == "tampered-hmac";
    const pid_t sab = spawn_saboteur_process(coord.port(), mode,
                                             sab_has_key ? key : "");
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
    const pid_t w = spawn_worker_process(coord.port(), key);
    serving.join();
    reap(coord, sab);
    reap(coord, w);
    EXPECT_TRUE(sp::dist::bitwise_equal(dist_result, local));
  }
}

// The read-deadline regression test (satellite): a peer that takes a
// range, sends four bytes and then stalls forever must forfeit the range
// after read_deadline_ms — run() completes with the correct result
// instead of wedging on the silent connection.
TEST(DistChaos, StalledPeerForfeitsRangeViaReadDeadline) {
  const auto desc = small_descriptor();
  sp::dist::CoordinatorOptions opt;
  opt.units_per_range = 2;
  opt.idle_timeout_ms = 120000;
  opt.read_deadline_ms = 1500;
  sp::dist::Coordinator coord(desc, opt);
  sp::dist::TaskResult dist_result;
  const auto t0 = std::chrono::steady_clock::now();
  std::thread serving([&] { dist_result = coord.run(); });
  const pid_t sab = spawn_saboteur_process(coord.port(), "stall");
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  const pid_t w = spawn_worker_process(coord.port());
  serving.join();
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  reap(coord, w);
  // The stalled saboteur holds its connection open until killed.
  ::kill(sab, SIGKILL);
  int status = 0;
  ASSERT_EQ(::waitpid(sab, &status, 0), sab);
  EXPECT_TRUE(WIFSIGNALED(status));
  EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(elapsed).count(),
            60);
  EXPECT_TRUE(
      sp::dist::bitwise_equal(dist_result, sp::dist::run_local_task(desc)));
}

}  // namespace
