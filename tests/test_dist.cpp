// Distributed execution subsystem tests: serialization round-trips (byte
// stability, version gating, fuzz), protocol/transport behavior, and the
// acceptance contract — a c3540-class gate-level MC run sharded across
// real worker PROCESSES over localhost TCP is bitwise-identical to the
// single-process run at the same seed, including under injected worker
// failures and reassignment.
#include <gtest/gtest.h>
#include <spawn.h>
#include <sys/wait.h>

#include <chrono>
#include <cstdint>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "dist/coordinator.h"
#include "dist/serialize.h"
#include "dist/transport.h"
#include "dist/worker.h"
#include "dist/workload.h"
#include "mc/pipeline_mc.h"
#include "netlist/generators.h"
#include "stats/rng.h"

extern char** environ;

namespace sp = statpipe;
using sp::dist::ByteReader;
using sp::dist::ByteWriter;

namespace {

// ------------------------------------------------------------- helpers

sp::dist::RunDescriptor small_descriptor(
    const std::string& workload = "c432", std::uint64_t samples = 1024,
    std::uint64_t samples_per_shard = 128) {
  sp::dist::RunDescriptor d;
  d.workload = workload;
  d.seed = 20260729;
  d.n_samples = samples;
  d.samples_per_shard = samples_per_shard;
  d.block_width = 8;
  d.sigma_vth_inter = 0.020;
  d.sigma_vth_systematic = 0.0;  // keep the O(sites^2) field out of tests
  d.enable_rdf = 1;
  sp::dist::finalize_descriptor(d);
  return d;
}

pid_t spawn_worker_process(std::uint16_t port) {
  const char* bin = STATPIPE_WORKER_BIN;
  const std::string port_s = std::to_string(port);
  std::vector<char*> args{const_cast<char*>(bin),
                          const_cast<char*>("--port"),
                          const_cast<char*>(port_s.c_str()),
                          const_cast<char*>("--quiet"), nullptr};
  pid_t pid = -1;
  const int rc = ::posix_spawn(&pid, bin, nullptr, nullptr, args.data(),
                               environ);
  EXPECT_EQ(rc, 0) << "posix_spawn " << bin;
  return rc == 0 ? pid : -1;
}

// Reaps a spawned worker while draining the coordinator's listener
// backlog, so a worker that connected only after the run completed is
// dismissed with kShutdown instead of hanging in its setup read.
void reap(sp::dist::Coordinator& coord, pid_t pid) {
  if (pid < 0) return;
  int status = 0;
  pid_t got;
  while ((got = ::waitpid(pid, &status, WNOHANG)) == 0) {
    coord.drain_backlog();
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ASSERT_EQ(got, pid);
  EXPECT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

sp::stats::RunningStats random_stats(std::mt19937_64& g, std::size_t n) {
  std::normal_distribution<double> d(250.0, 40.0);
  sp::stats::RunningStats s;
  for (std::size_t i = 0; i < n; ++i) s.add(d(g));
  return s;
}

// ---------------------------------------------------------- serialization

TEST(DistSerialize, PrimitivesRoundTripLittleEndian) {
  ByteWriter w;
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.f64(-1234.5678e-9);
  w.str("shard range");
  // Wire bytes are defined, not host-dependent: check u16's layout.
  EXPECT_EQ(w.bytes()[1], 0x34);  // low byte first
  EXPECT_EQ(w.bytes()[2], 0x12);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.f64(), -1234.5678e-9);
  EXPECT_EQ(r.str(), "shard range");
  EXPECT_TRUE(r.done());
}

TEST(DistSerialize, TruncatedPayloadThrows) {
  ByteWriter w;
  w.u64(7);
  std::vector<std::uint8_t> bytes = w.bytes();
  bytes.pop_back();
  ByteReader r(bytes);
  EXPECT_THROW(r.u64(), std::runtime_error);
  // Hostile vector length must throw, not allocate.
  ByteWriter w2;
  w2.u64(~0ULL);
  ByteReader r2(w2.bytes());
  EXPECT_THROW(r2.f64_vec(), std::runtime_error);
}

TEST(DistSerialize, RunningStatsRoundTripIsExact) {
  std::mt19937_64 g(42);
  for (int rep = 0; rep < 50; ++rep) {
    const auto s = random_stats(g, 1 + static_cast<std::size_t>(g() % 500));
    ByteWriter w;
    sp::dist::write_running_stats(w, s);
    ByteReader r(w.bytes());
    const auto back = sp::dist::read_running_stats(r);
    EXPECT_TRUE(r.done());
    // Exact, not approximate: every internal field crosses the wire as its
    // bit pattern.
    EXPECT_EQ(back.count(), s.count());
    EXPECT_EQ(back.mean(), s.mean());
    EXPECT_EQ(back.variance(), s.variance());
    EXPECT_EQ(back.min(), s.min());
    EXPECT_EQ(back.max(), s.max());
    // Byte-stable: serialize(deserialize(b)) == b.
    ByteWriter w2;
    sp::dist::write_running_stats(w2, back);
    EXPECT_EQ(w.bytes(), w2.bytes());
  }
}

TEST(DistSerialize, HistogramRoundTrip) {
  sp::stats::Histogram h(100.0, 300.0, 32);
  std::mt19937_64 g(7);
  std::normal_distribution<double> d(200.0, 30.0);
  for (int i = 0; i < 5000; ++i) h.add(d(g));
  ByteWriter w;
  sp::dist::write_histogram(w, h);
  ByteReader r(w.bytes());
  const auto back = sp::dist::read_histogram(r);
  EXPECT_TRUE(r.done());
  EXPECT_EQ(back.lo(), h.lo());
  EXPECT_EQ(back.hi(), h.hi());
  EXPECT_EQ(back.bins(), h.bins());
  EXPECT_EQ(back.total(), h.total());
  for (std::size_t i = 0; i < h.bins(); ++i)
    EXPECT_EQ(back.count(i), h.count(i));
}

TEST(DistSerialize, McResultRoundTripFuzzIsByteStable) {
  std::mt19937_64 g(1234);
  std::normal_distribution<double> d(250.0, 40.0);
  for (int rep = 0; rep < 25; ++rep) {
    sp::mc::McResult m;
    m.label = rep % 3 == 0 ? "" : "fuzz run " + std::to_string(rep);
    const std::size_t n = g() % 200;
    for (std::size_t i = 0; i < n; ++i) m.tp_samples.push_back(d(g));
    m.stage_stats.resize(g() % 5);
    for (auto& s : m.stage_stats) s = random_stats(g, g() % 100);
    const auto bytes = sp::dist::serialize_mc_result(m);
    const auto back = sp::dist::deserialize_mc_result(bytes);
    EXPECT_EQ(sp::dist::serialize_mc_result(back), bytes);
    EXPECT_TRUE(sp::dist::bitwise_equal(m, back));
  }
}

TEST(DistSerialize, HostileStageCountThrowsInsteadOfAllocating) {
  ByteWriter w;
  w.str("evil");
  w.f64_vec({});             // no samples
  w.u64(1ULL << 60);         // claimed stage count
  ByteReader r(w.bytes());
  EXPECT_THROW(sp::dist::read_mc_result(r), std::runtime_error);
}

TEST(DistSerialize, ResultBlobRejectsBadMagicAndVersion) {
  sp::mc::McResult m;
  m.tp_samples = {1.0, 2.0};
  m.stage_stats.resize(1);
  auto bytes = sp::dist::serialize_mc_result(m);
  auto corrupt = bytes;
  corrupt[0] ^= 0xff;
  EXPECT_THROW(sp::dist::deserialize_mc_result(corrupt), std::runtime_error);
  auto future = bytes;
  future[4] = 0x7f;  // version low byte
  EXPECT_THROW(sp::dist::deserialize_mc_result(future), std::runtime_error);
}

TEST(DistSerialize, RunDescriptorRoundTrip) {
  const auto d = small_descriptor("c432,c880", 2048, 256);
  ByteWriter w;
  sp::dist::write_run_descriptor(w, d);
  ByteReader r(w.bytes());
  const auto back = sp::dist::read_run_descriptor(r);
  r.expect_done();
  EXPECT_EQ(back.workload, d.workload);
  EXPECT_EQ(back.netlist_hash, d.netlist_hash);
  EXPECT_EQ(back.seed, d.seed);
  EXPECT_EQ(back.root_seed, d.root_seed);
  EXPECT_EQ(back.n_samples, d.n_samples);
  EXPECT_EQ(back.samples_per_shard, d.samples_per_shard);
  EXPECT_EQ(back.block_width, d.block_width);
  EXPECT_EQ(back.sigma_vth_inter, d.sigma_vth_inter);
  EXPECT_EQ(back.enable_rdf, d.enable_rdf);
  EXPECT_EQ(back.output_load, d.output_load);
  EXPECT_EQ(back.latch_tcq_ps, d.latch_tcq_ps);
}

// ------------------------------------------------------------- workload

TEST(DistWorkload, HashMismatchIsRejected) {
  auto d = small_descriptor();
  d.netlist_hash ^= 1;
  EXPECT_THROW(sp::dist::Workload::make(d), std::invalid_argument);
}

TEST(DistWorkload, UnknownCircuitIsRejected) {
  sp::dist::RunDescriptor d;
  d.workload = "c9999";
  d.n_samples = 16;
  EXPECT_THROW(sp::dist::finalize_descriptor(d), std::invalid_argument);
}

TEST(DistWorkload, StructuralHashDetectsStageEdits) {
  auto a = sp::netlist::iscas_like("c432");
  auto b = sp::netlist::iscas_like("c432");
  EXPECT_EQ(a.structural_hash(), b.structural_hash());
  b.gate(b.topological_order().back()).size *= 1.5;
  EXPECT_NE(a.structural_hash(), b.structural_hash());
}

// ----------------------------------------------- run_shard_range contract

TEST(DistEngine, ShardRangePartsFoldToLocalRun) {
  const auto desc = small_descriptor("c432", 1024, 128);  // 8 shards
  const auto wl = sp::dist::Workload::make(desc);
  const sp::mc::McResult local = sp::dist::run_local(desc);
  // Recompute the run in arbitrary contiguous pieces; fold ascending.
  std::vector<sp::mc::McResult> parts;
  for (const auto [b, e] :
       {std::pair<std::size_t, std::size_t>{0, 3}, {3, 4}, {4, 8}}) {
    auto range = wl->engine().run_shard_range(desc.n_samples, desc.root_seed,
                                              b, e, wl->exec(desc));
    for (auto& p : range) parts.push_back(std::move(p));
  }
  sp::mc::McResult acc = std::move(parts.front());
  for (std::size_t i = 1; i < parts.size(); ++i)
    acc.merge(std::move(parts[i]));
  acc.label = local.label;
  EXPECT_TRUE(sp::dist::bitwise_equal(acc, local));
}

TEST(DistEngine, ShardRangeValidatesUpFront) {
  const auto desc = small_descriptor("c432", 1024, 128);  // 8 shards
  const auto wl = sp::dist::Workload::make(desc);
  auto exec = wl->exec(desc);
  EXPECT_THROW(wl->engine().run_shard_range(desc.n_samples, desc.root_seed,
                                            3, 3, exec),
               std::invalid_argument);
  EXPECT_THROW(wl->engine().run_shard_range(desc.n_samples, desc.root_seed,
                                            0, 9, exec),
               std::invalid_argument);
  exec.block_width = 0;
  EXPECT_THROW(wl->engine().run_shard_range(desc.n_samples, desc.root_seed,
                                            0, 8, exec),
               std::invalid_argument);
}

// ------------------------------------------------------- coordinator/CLI

TEST(DistCoordinator, ValidatesRangeSizeUpFront) {
  auto desc = small_descriptor("c432", 1024, 128);  // 8 shards
  sp::dist::CoordinatorOptions opt;
  opt.shards_per_range = 9;  // more than the plan holds
  EXPECT_THROW(sp::dist::Coordinator(desc, opt), std::invalid_argument);
  opt.shards_per_range = 0;
  opt.max_attempts = 0;
  EXPECT_THROW(sp::dist::Coordinator(desc, opt), std::invalid_argument);
}

// The acceptance contract: a c3540-class run split across TWO worker
// PROCESSES (localhost TCP) merges to the exact bytes of the
// single-process, single-thread run at the same seed.
TEST(DistEndToEnd, TwoWorkerProcessesMatchLocalBitwise) {
  const auto desc = small_descriptor("c3540", 1024, 128);  // 8 shards
  sp::dist::CoordinatorOptions opt;
  opt.shards_per_range = 2;  // 4 assignments across 2 workers
  opt.idle_timeout_ms = 120000;
  sp::dist::Coordinator coord(desc, opt);

  const pid_t w1 = spawn_worker_process(coord.port());
  const pid_t w2 = spawn_worker_process(coord.port());
  const sp::mc::McResult dist_result = coord.run();
  reap(coord, w1);
  reap(coord, w2);

  // Single-process, single-thread reference.
  const auto wl = sp::dist::Workload::make(desc);
  auto exec = wl->exec(desc);
  exec.threads = 1;
  sp::stats::Rng rng(desc.seed);
  const auto local = wl->engine().run(desc.n_samples, rng, exec);
  EXPECT_TRUE(sp::dist::bitwise_equal(dist_result, local));
  EXPECT_EQ(dist_result.tp_samples.size(), desc.n_samples);
}

// N=1 over localhost: the degenerate cluster is still exactly the local
// run.
TEST(DistEndToEnd, SingleWorkerProcessMatchesLocalBitwise) {
  const auto desc = small_descriptor("c432", 512, 64);  // 8 shards
  sp::dist::CoordinatorOptions opt;
  opt.idle_timeout_ms = 120000;
  sp::dist::Coordinator coord(desc, opt);
  const pid_t w1 = spawn_worker_process(coord.port());
  const sp::mc::McResult dist_result = coord.run();
  reap(coord, w1);
  EXPECT_TRUE(sp::dist::bitwise_equal(dist_result, sp::dist::run_local(desc)));
}

// Worker failure: a fake worker handshakes, takes an assignment, and dies.
// The coordinator reassigns the forfeited range to a healthy process and
// the merged result is still bitwise-identical.  The coordinator runs on a
// thread so the failure can be sequenced deterministically BEFORE the
// healthy worker exists.
TEST(DistEndToEnd, WorkerFailureReassignmentStaysBitwiseIdentical) {
  const auto desc = small_descriptor("c432", 1024, 128);
  sp::dist::CoordinatorOptions opt;
  opt.shards_per_range = 2;
  opt.idle_timeout_ms = 120000;
  sp::dist::Coordinator coord(desc, opt);

  sp::mc::McResult dist_result;
  std::thread serving([&] { dist_result = coord.run(); });

  // Saboteur (inline): hello, read setup, accept one assignment, vanish
  // without producing it.
  {
    auto sock = sp::dist::connect_to("127.0.0.1", coord.port());
    sp::dist::ByteWriter hello;
    hello.u16(sp::dist::kWireVersion);
    hello.u64(1);
    sp::dist::send_frame(sock, sp::dist::MsgType::kHello, hello.bytes());
    auto setup = sp::dist::recv_frame(sock);
    ASSERT_TRUE(setup && setup->type == sp::dist::MsgType::kSetup);
    auto assign = sp::dist::recv_frame(sock);
    ASSERT_TRUE(assign && assign->type == sp::dist::MsgType::kAssign);
    sock.close();  // forfeits the range
  }

  const pid_t w1 = spawn_worker_process(coord.port());
  serving.join();
  reap(coord, w1);
  EXPECT_TRUE(sp::dist::bitwise_equal(dist_result, sp::dist::run_local(desc)));
}

// A worker whose workload build fails reports kError and contributes
// nothing; the run completes on the healthy worker that arrives after.
TEST(DistEndToEnd, WorkloadRejectionIsReportedNotFatal) {
  const auto desc = small_descriptor("c432", 256, 64);
  sp::dist::CoordinatorOptions opt;
  opt.idle_timeout_ms = 120000;
  sp::dist::Coordinator coord(desc, opt);

  sp::mc::McResult dist_result;
  std::thread serving([&] { dist_result = coord.run(); });

  sp::dist::WorkerOptions wopt;
  wopt.port = coord.port();
  const std::size_t done = sp::dist::run_worker(
      wopt, [](const sp::dist::RunDescriptor&) -> sp::dist::ShardRangeRunner {
        throw std::invalid_argument("injected workload failure");
      });
  EXPECT_EQ(done, 0u);

  const pid_t w1 = spawn_worker_process(coord.port());
  serving.join();
  reap(coord, w1);
  EXPECT_TRUE(sp::dist::bitwise_equal(dist_result, sp::dist::run_local(desc)));
}

}  // namespace
